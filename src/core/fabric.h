// SimulatedFabric: one-stop assembly of a complete DumbNet deployment inside the
// discrete-event simulator — dumb switches on every topology switch, a host agent
// on every host, and (optionally) a controller service on a chosen host. This is
// the top-level entry point examples and benchmarks use.
//
// The fabric always runs on a ShardSet. With one shard (the default) that is
// exactly the classic single simulator — shard(0) — at zero overhead. With N > 1
// shards (explicit `shards` argument, or the DUMBNET_SHARDS environment
// variable) the topology is partitioned by ShardPlan, every node's events run on
// its shard's simulator, and Run()/RunUntil() advance the shards in conservative
// lookahead windows (src/sim/shard_set.h). Drive sharded fabrics through the
// fabric-level Run()/RunUntil()/Now() facade, not fabric.sim() — the latter is
// only shard 0.
#ifndef DUMBNET_SRC_CORE_FABRIC_H_
#define DUMBNET_SRC_CORE_FABRIC_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/analysis/invariant_auditor.h"
#include "src/ctrl/controller.h"
#include "src/host/host_agent.h"
#include "src/net/network.h"
#include "src/net/shard_plan.h"
#include "src/sim/shard_set.h"
#include "src/sim/simulator.h"
#include "src/switch/dumb_switch.h"
#include "src/topo/topology.h"

namespace dumbnet {

class SimulatedFabric {
 public:
  // `shards` == 0 reads DUMBNET_SHARDS (unset/invalid -> 1). Values above the
  // switch count are clamped by the plan.
  explicit SimulatedFabric(Topology topo, HostAgentConfig agent_config = HostAgentConfig(),
                           DumbSwitchConfig switch_config = DumbSwitchConfig(),
                           NetworkConfig net_config = NetworkConfig(),
                           uint32_t shards = 0);

  // The shard count DUMBNET_SHARDS requests (1 when unset or unparsable).
  static uint32_t DefaultShards();
  // The worker-thread override DUMBNET_SHARD_THREADS requests (0 = let the
  // ShardSet pick min(shards, hardware_concurrency)). Set it to 1 to force the
  // sequential reference execution regardless of core count.
  static uint32_t DefaultShardThreads();

  // Installs a controller service on host `host_index`.
  ControllerService& AddController(uint32_t host_index,
                                   ControllerConfig config = ControllerConfig(),
                                   DiscoveryConfig discovery = DiscoveryConfig());

  // Convenience: AddController + Start (with discovery) + run the simulation
  // until the controller reports ready. Returns false if bring-up never completed.
  bool BringUp(uint32_t controller_host, ControllerConfig config = ControllerConfig(),
               DiscoveryConfig discovery = DiscoveryConfig());

  // Like BringUp but adopts the ground-truth topology instead of probing — instant,
  // for experiments that are not about discovery.
  void BringUpAdopted(uint32_t controller_host, ControllerConfig config = ControllerConfig());

  // --- Simulation facade (works for any shard count) ---------------------------
  uint64_t Run() { return shard_set_->Run(); }
  uint64_t RunUntil(TimeNs deadline) { return shard_set_->RunUntil(deadline); }
  uint64_t RunSteps(uint64_t steps) { return shard_set_->RunSteps(steps); }
  TimeNs Now() const { return shard_set_->Now(); }
  uint64_t executed_events() const { return shard_set_->executed_events(); }

  // Audited mode: registers the whole invariant catalog (topology validity, every
  // host's TopoCache↔PathTable coherence, controller db vs ground truth when a
  // controller exists) and re-runs it every `every_events` simulator events.
  // Call after AddController/BringUp so the controller invariants are included.
  // Sharded runs audit at window barriers instead of event boundaries (the only
  // point where cross-shard state is quiescent), at the same event cadence.
  // Returns the auditor so tests can assert auditor.clean() afterwards.
  InvariantAuditor& EnableAuditing(uint64_t every_events = 256);
  InvariantAuditor* auditor() { return auditor_.get(); }

  // Opts the run into footprint race detection: same-timestamp event pairs with
  // conflicting declared footprints are reported through the simulator's default
  // hazard path (DN_WARN + flight-recorder dump on the first hit). Returns false
  // when footprint tracking is compiled out (-DDUMBNET_FOOTPRINTS=OFF), in which
  // case nothing is recorded. dumbnet-explore drives the same machinery with its
  // own hook instead.
  bool EnableRaceDetection();

  Topology& topo() { return topo_; }
  // Shard 0's simulator. With one shard this is the whole simulation (the
  // pre-sharding API); with several it is only one slice — use the facade.
  Simulator& sim() { return shard_set_->shard(0); }
  ShardSet& shard_set() { return *shard_set_; }
  const ShardPlan& shard_plan() const { return plan_; }
  uint32_t shard_count() const { return shard_set_->shard_count(); }
  Network& net() { return *net_; }
  HostAgent& agent(uint32_t h) { return *agents_[h]; }
  DumbSwitch& dumb_switch(uint32_t s) { return *switches_[s]; }
  ControllerService& controller() { return *controller_; }
  bool has_controller() const { return controller_ != nullptr; }
  size_t host_count() const { return agents_.size(); }
  size_t switch_count() const { return switches_.size(); }

 private:
  Topology topo_;
  ShardPlan plan_;
  std::unique_ptr<ShardSet> shard_set_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<DumbSwitch>> switches_;
  std::vector<std::unique_ptr<HostAgent>> agents_;
  std::unique_ptr<ControllerService> controller_;
  std::unique_ptr<InvariantAuditor> auditor_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_CORE_FABRIC_H_
