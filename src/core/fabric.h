// SimulatedFabric: one-stop assembly of a complete DumbNet deployment inside the
// discrete-event simulator — dumb switches on every topology switch, a host agent
// on every host, and (optionally) a controller service on a chosen host. This is
// the top-level entry point examples and benchmarks use.
#ifndef DUMBNET_SRC_CORE_FABRIC_H_
#define DUMBNET_SRC_CORE_FABRIC_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/analysis/invariant_auditor.h"
#include "src/ctrl/controller.h"
#include "src/host/host_agent.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/switch/dumb_switch.h"
#include "src/topo/topology.h"

namespace dumbnet {

class SimulatedFabric {
 public:
  explicit SimulatedFabric(Topology topo, HostAgentConfig agent_config = HostAgentConfig(),
                           DumbSwitchConfig switch_config = DumbSwitchConfig(),
                           NetworkConfig net_config = NetworkConfig());

  // Installs a controller service on host `host_index`.
  ControllerService& AddController(uint32_t host_index,
                                   ControllerConfig config = ControllerConfig(),
                                   DiscoveryConfig discovery = DiscoveryConfig());

  // Convenience: AddController + Start (with discovery) + run the simulator until
  // the controller reports ready. Returns false if bring-up never completed.
  bool BringUp(uint32_t controller_host, ControllerConfig config = ControllerConfig(),
               DiscoveryConfig discovery = DiscoveryConfig());

  // Like BringUp but adopts the ground-truth topology instead of probing — instant,
  // for experiments that are not about discovery.
  void BringUpAdopted(uint32_t controller_host, ControllerConfig config = ControllerConfig());

  // Audited mode: registers the whole invariant catalog (topology validity, every
  // host's TopoCache↔PathTable coherence, controller db vs ground truth when a
  // controller exists) and re-runs it every `every_events` simulator events.
  // Call after AddController/BringUp so the controller invariants are included.
  // Returns the auditor so tests can assert auditor.clean() afterwards.
  InvariantAuditor& EnableAuditing(uint64_t every_events = 256);
  InvariantAuditor* auditor() { return auditor_.get(); }

  // Opts the run into footprint race detection: same-timestamp event pairs with
  // conflicting declared footprints are reported through the simulator's default
  // hazard path (DN_WARN + flight-recorder dump on the first hit). Returns false
  // when footprint tracking is compiled out (-DDUMBNET_FOOTPRINTS=OFF), in which
  // case nothing is recorded. dumbnet-explore drives the same machinery with its
  // own hook instead.
  bool EnableRaceDetection();

  Topology& topo() { return topo_; }
  Simulator& sim() { return sim_; }
  Network& net() { return *net_; }
  HostAgent& agent(uint32_t h) { return *agents_[h]; }
  DumbSwitch& dumb_switch(uint32_t s) { return *switches_[s]; }
  ControllerService& controller() { return *controller_; }
  bool has_controller() const { return controller_ != nullptr; }
  size_t host_count() const { return agents_.size(); }
  size_t switch_count() const { return switches_.size(); }

 private:
  Topology topo_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<DumbSwitch>> switches_;
  std::vector<std::unique_ptr<HostAgent>> agents_;
  std::unique_ptr<ControllerService> controller_;
  std::unique_ptr<InvariantAuditor> auditor_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_CORE_FABRIC_H_
