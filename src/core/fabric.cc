#include "src/core/fabric.h"

#include <cstdlib>

#include "src/analysis/invariants.h"

namespace dumbnet {

uint32_t SimulatedFabric::DefaultShards() {
  // dn-lint: allow(wall-clock, reads configuration, not time)
  const char* env = std::getenv("DUMBNET_SHARDS");
  if (env == nullptr) {
    return 1;
  }
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 1024) {
    return 1;
  }
  return static_cast<uint32_t>(v);
}

uint32_t SimulatedFabric::DefaultShardThreads() {
  // dn-lint: allow(wall-clock, reads configuration, not time)
  const char* env = std::getenv("DUMBNET_SHARD_THREADS");
  if (env == nullptr) {
    return 0;
  }
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 1024) {
    return 0;
  }
  return static_cast<uint32_t>(v);
}

SimulatedFabric::SimulatedFabric(Topology topo, HostAgentConfig agent_config,
                                 DumbSwitchConfig switch_config, NetworkConfig net_config,
                                 uint32_t shards)
    : topo_(std::move(topo)) {
  if (shards == 0) {
    shards = DefaultShards();
  }
  plan_ = ShardPlan::Build(topo_, shards);
  ShardSetConfig shard_config;
  shard_config.shards = plan_.shard_count;
  shard_config.lookahead =
      plan_.lookahead == ShardPlan::kNoCrossLinks ? Ms(1) : plan_.lookahead;
  shard_config.threads = DefaultShardThreads();
  shard_set_ = std::make_unique<ShardSet>(shard_config);
  net_ = std::make_unique<Network>(&shard_set_->shard(0), &topo_, net_config);
  if (plan_.shard_count > 1) {
    net_->AttachShards(shard_set_.get(), &plan_);
  }
  for (uint32_t s = 0; s < topo_.switch_count(); ++s) {
    switches_.push_back(std::make_unique<DumbSwitch>(net_.get(), s, switch_config));
  }
  for (uint32_t h = 0; h < topo_.host_count(); ++h) {
    agents_.push_back(std::make_unique<HostAgent>(net_.get(), h, agent_config));
  }
}

ControllerService& SimulatedFabric::AddController(uint32_t host_index,
                                                  ControllerConfig config,
                                                  DiscoveryConfig discovery) {
  controller_ = std::make_unique<ControllerService>(agents_[host_index].get(), config,
                                                    discovery);
  return *controller_;
}

bool SimulatedFabric::BringUp(uint32_t controller_host, ControllerConfig config,
                              DiscoveryConfig discovery) {
  AddController(controller_host, config, discovery);
  bool ready = false;
  controller_->Start([&ready] { ready = true; });
  Run();
  return ready;
}

InvariantAuditor& SimulatedFabric::EnableAuditing(uint64_t every_events) {
  auditor_ = std::make_unique<InvariantAuditor>();
  RegisterTopologyInvariants(*auditor_, &topo_);
  for (uint32_t h = 0; h < agents_.size(); ++h) {
    RegisterCacheInvariants(*auditor_, &agents_[h]->topo_cache(),
                            &agents_[h]->path_table(), h);
  }
  if (controller_ != nullptr) {
    RegisterTopoDbInvariants(*auditor_, &controller_->db(), &topo_);
  }
  if (shard_count() == 1) {
    auditor_->AttachTo(&sim(), every_events);
  } else {
    InvariantAuditor* auditor = auditor_.get();
    shard_set_->SetBarrierHook([auditor] { auditor->RunAll(); }, every_events);
  }
  return *auditor_;
}

bool SimulatedFabric::EnableRaceDetection() {
  footprint::SetEnabled(true);
  return footprint::kCompiledIn;
}

void SimulatedFabric::BringUpAdopted(uint32_t controller_host, ControllerConfig config) {
  AddController(controller_host, config);
  controller_->AdoptTopology(topo_);
  Run();
}

}  // namespace dumbnet
