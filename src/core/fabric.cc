#include "src/core/fabric.h"

#include "src/analysis/invariants.h"

namespace dumbnet {

SimulatedFabric::SimulatedFabric(Topology topo, HostAgentConfig agent_config,
                                 DumbSwitchConfig switch_config, NetworkConfig net_config)
    : topo_(std::move(topo)) {
  net_ = std::make_unique<Network>(&sim_, &topo_, net_config);
  for (uint32_t s = 0; s < topo_.switch_count(); ++s) {
    switches_.push_back(std::make_unique<DumbSwitch>(net_.get(), s, switch_config));
  }
  for (uint32_t h = 0; h < topo_.host_count(); ++h) {
    agents_.push_back(std::make_unique<HostAgent>(net_.get(), h, agent_config));
  }
}

ControllerService& SimulatedFabric::AddController(uint32_t host_index,
                                                  ControllerConfig config,
                                                  DiscoveryConfig discovery) {
  controller_ = std::make_unique<ControllerService>(agents_[host_index].get(), config,
                                                    discovery);
  return *controller_;
}

bool SimulatedFabric::BringUp(uint32_t controller_host, ControllerConfig config,
                              DiscoveryConfig discovery) {
  AddController(controller_host, config, discovery);
  bool ready = false;
  controller_->Start([&ready] { ready = true; });
  sim_.Run();
  return ready;
}

InvariantAuditor& SimulatedFabric::EnableAuditing(uint64_t every_events) {
  auditor_ = std::make_unique<InvariantAuditor>();
  RegisterTopologyInvariants(*auditor_, &topo_);
  for (uint32_t h = 0; h < agents_.size(); ++h) {
    RegisterCacheInvariants(*auditor_, &agents_[h]->topo_cache(),
                            &agents_[h]->path_table(), h);
  }
  if (controller_ != nullptr) {
    RegisterTopoDbInvariants(*auditor_, &controller_->db(), &topo_);
  }
  auditor_->AttachTo(&sim_, every_events);
  return *auditor_;
}

bool SimulatedFabric::EnableRaceDetection() {
  footprint::SetEnabled(true);
  return footprint::kCompiledIn;
}

void SimulatedFabric::BringUpAdopted(uint32_t controller_host, ControllerConfig config) {
  AddController(controller_host, config);
  controller_->AdoptTopology(topo_);
  sim_.Run();
}

}  // namespace dumbnet
