// Per-source shortest-path-tree cache for the controller's hot query paths.
//
// The controller answers many queries between topology changes: tags to each host
// for bootstraps and responses, and batched path-graph precomputes. All of those
// start with a Dijkstra run from some source switch. This cache keeps one SsspTree
// per source, keyed by a topology version number (TopoDb::version()); any mutation
// bumps the version and the next Get() drops every cached tree.
#ifndef DUMBNET_SRC_ROUTING_SSSP_CACHE_H_
#define DUMBNET_SRC_ROUTING_SSSP_CACHE_H_

#include <cstdint>
#include <unordered_map>

#include "src/routing/shortest_path.h"
#include "src/util/rng.h"

namespace dumbnet {

class SsspCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  // The tree rooted at `src` over `graph`, rebuilt iff `version` differs from the
  // version of the cached contents (or `src` has no cached tree yet). `graph` must
  // be the snapshot matching `version`. Equal-cost tie-breaks of a rebuilt tree
  // draw from `rng`. The reference is valid until the next Get()/Invalidate().
  const SsspTree& Get(const SwitchGraph& graph, uint64_t version, uint32_t src, Rng* rng);

  // Drops everything; the next Get() rebuilds regardless of version. Needed when
  // the database object itself is replaced (a fresh TopoDb restarts version
  // numbering, so version comparison alone cannot be trusted).
  void Invalidate();

  const Stats& stats() const { return stats_; }

 private:
  static constexpr uint64_t kNoVersion = UINT64_MAX;

  std::unordered_map<uint32_t, SsspTree> trees_;
  uint64_t version_ = kNoVersion;
  SsspScratch scratch_;
  Stats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_SSSP_CACHE_H_
