#include "src/routing/tags.h"

#include "src/analysis/audit.h"

namespace dumbnet {
namespace {

// Finds the output port on `from` of an up link to `to`; kPathEndTag if none.
PortNum OutPortTo(const Topology& topo, uint32_t from, uint32_t to) {
  const SwitchInfo& sw = topo.switch_at(from);
  for (PortNum p = 1; p <= sw.num_ports; ++p) {
    LinkIndex li = sw.port_link[p];
    if (li == kInvalidLink) {
      continue;
    }
    const Link& l = topo.link_at(li);
    if (!l.up) {
      continue;
    }
    const Endpoint& peer = l.Peer(NodeId::Switch(from));
    if (peer.node.is_switch() && peer.node.index == to) {
      return p;
    }
  }
  return kPathEndTag;
}

}  // namespace

Result<TagList> CompileSwitchTags(const Topology& topo, const SwitchPath& path) {
  if (path.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty path");
  }
  TagList tags;
  tags.reserve(path.size());
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    PortNum p = OutPortTo(topo, path[i], path[i + 1]);
    if (p == kPathEndTag) {
      return Error(ErrorCode::kUnavailable,
                   "no up link S" + std::to_string(path[i]) + "->S" +
                       std::to_string(path[i + 1]));
    }
    tags.push_back(p);
  }
  return tags;
}

Result<TagList> CompilePathTags(const Topology& topo, uint32_t src_host,
                                const SwitchPath& path, uint32_t dst_host) {
  auto src_up = topo.HostUplink(src_host);
  if (!src_up.ok()) {
    return src_up.error();
  }
  auto dst_up = topo.HostUplink(dst_host);
  if (!dst_up.ok()) {
    return dst_up.error();
  }
  if (path.empty() || src_up.value().node.index != path.front()) {
    return Error(ErrorCode::kInvalidArgument, "path does not start at source's switch");
  }
  if (dst_up.value().node.index != path.back()) {
    return Error(ErrorCode::kInvalidArgument, "path does not end at destination's switch");
  }
  auto tags = CompileSwitchTags(topo, path);
  if (!tags.ok()) {
    return tags;
  }
  TagList out = std::move(tags.value());
  out.push_back(dst_up.value().port);  // final hop: last switch -> destination host
  // +1 for the ø terminator the packet layer appends.
  DUMBNET_AUDIT(out.size() + 1 <= audit::kMaxTagStackDepth,
                "compiled path exceeds the one-byte header budget");
  return out;
}

std::string TagsToString(const TagList& tags) {
  std::string s;
  for (PortNum t : tags) {
    if (t == kIdQueryTag) {
      s += "0-";
    } else {
      s += std::to_string(static_cast<int>(t)) + "-";
    }
  }
  s += "\xC3\xB8";  // UTF-8 ø
  return s;
}

}  // namespace dumbnet
