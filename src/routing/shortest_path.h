// Shortest-path primitives: BFS hop distances, Dijkstra with randomized equal-cost
// tie-breaking (the paper's primary-path generator), and Yen's k-shortest paths
// (what TopoCache computes over its cached subgraph).
//
// Hot-path variants take an SsspScratch: epoch-stamped reusable buffers so repeated
// queries do zero O(V) allocation or clearing. Full single-source trees (SsspTree)
// let one Dijkstra run serve path extractions to every destination — the
// controller's per-source cache (sssp_cache.h) is built on them.
#ifndef DUMBNET_SRC_ROUTING_SHORTEST_PATH_H_
#define DUMBNET_SRC_ROUTING_SHORTEST_PATH_H_

#include <cstdint>
#include <vector>

#include "src/routing/graph.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace dumbnet {

// A path as a sequence of switch indices (src switch first, dst switch last).
using SwitchPath = std::vector<uint32_t>;

// Reusable scratch space for BFS/Dijkstra. Prepare() bumps an epoch instead of
// clearing, so per-query setup is O(1); arrays grow to the largest graph seen and
// are then reused. Not thread-safe: use one scratch per thread.
class SsspScratch {
 public:
  // Must be called (by the algorithm) before each query.
  void Prepare(size_t vertices) {
    if (stamp_.size() < vertices) {
      stamp_.resize(vertices, 0);
      done_stamp_.resize(vertices, 0);
      cost_.resize(vertices);
      parent_.resize(vertices);
      hops_.resize(vertices);
    }
    if (++epoch_ == 0) {  // wrapped: all stamps are stale garbage, really clear
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      std::fill(done_stamp_.begin(), done_stamp_.end(), 0u);
      epoch_ = 1;
    }
    touched_.clear();
    heap_.clear();
  }

  bool Seen(uint32_t v) const { return stamp_[v] == epoch_; }
  void Touch(uint32_t v) {
    stamp_[v] = epoch_;
    touched_.push_back(v);
  }

  double CostOr(uint32_t v, double fallback) const { return Seen(v) ? cost_[v] : fallback; }
  uint32_t HopsOr(uint32_t v, uint32_t fallback) const { return Seen(v) ? hops_[v] : fallback; }
  uint32_t ParentOr(uint32_t v, uint32_t fallback) const {
    return Seen(v) ? parent_[v] : fallback;
  }

  // Vertices reached by the last query, in visit order.
  const std::vector<uint32_t>& touched() const { return touched_; }

 private:
  friend class SsspAccess;  // algorithm-side accessor (shortest_path.cc)

  struct HeapItem {
    double cost;
    uint64_t tiebreak;
    uint32_t vertex;
  };

  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> done_stamp_;  // Dijkstra finalization marks (see DijkstraInto)
  std::vector<double> cost_;
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> hops_;
  std::vector<uint32_t> touched_;
  std::vector<HeapItem> heap_;
  uint32_t epoch_ = 0;
};

// A full shortest-path tree from one source: extract a path to any destination in
// O(path length) with PathFromTree. `parent[v]` is kNoVertex for the source and
// unreachable vertices; `cost[v]` is kInfCost when unreachable.
struct SsspTree {
  uint32_t src = kNoVertex;
  std::vector<double> cost;
  std::vector<uint32_t> parent;
};

// Unweighted hop distances from `src` to every switch (kNoVertex-reachable entries
// are UINT32_MAX).
std::vector<uint32_t> BfsDistances(const SwitchGraph& graph, uint32_t src);

// Scratch-based BFS, optionally truncated at `max_hops` (vertices further than
// that are simply left unreached — exact distances are still produced inside the
// horizon). Read results via scratch.HopsOr()/touched().
void BfsDistancesInto(const SwitchGraph& graph, uint32_t src, SsspScratch& scratch,
                      uint32_t max_hops = UINT32_MAX);

// Dijkstra. When `rng` is non-null, ties between equal-cost relaxations are broken
// uniformly at random, so repeated calls spread over ECMP paths (Section 4.3:
// "randomizes the choice for equal cost links"). Returns an error if dst is
// unreachable.
Result<SwitchPath> ShortestPath(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                Rng* rng = nullptr);

// Scratch-based point-to-point Dijkstra with an optional per-link weight
// multiplier (`link_scale`, indexed by LinkIndex; entries default to 1.0 — pass
// nullptr for none). The multiplier is how backup paths are repelled from primary
// links without copying the graph.
Result<SwitchPath> ShortestPathScaled(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                      Rng* rng, SsspScratch& scratch,
                                      const std::vector<double>* link_scale);

// Full single-source Dijkstra (no early exit): one run answers every destination.
SsspTree BuildSsspTree(const SwitchGraph& graph, uint32_t src, Rng* rng = nullptr,
                       SsspScratch* scratch = nullptr);

// Walks parent pointers in `tree` back from `dst`. Error if unreachable.
Result<SwitchPath> PathFromTree(const SsspTree& tree, uint32_t dst);

// Yen's algorithm: up to k loop-free shortest paths in nondecreasing cost order.
// Returns at least one path or an error if src/dst are disconnected.
Result<std::vector<SwitchPath>> KShortestPaths(const SwitchGraph& graph, uint32_t src,
                                               uint32_t dst, uint32_t k);

// Total weight of a path under `graph`; error if an edge is missing.
Result<double> PathCost(const SwitchGraph& graph, const SwitchPath& path);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_SHORTEST_PATH_H_
