// Shortest-path primitives: BFS hop distances, Dijkstra with randomized equal-cost
// tie-breaking (the paper's primary-path generator), and Yen's k-shortest paths
// (what TopoCache computes over its cached subgraph).
#ifndef DUMBNET_SRC_ROUTING_SHORTEST_PATH_H_
#define DUMBNET_SRC_ROUTING_SHORTEST_PATH_H_

#include <cstdint>
#include <vector>

#include "src/routing/graph.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace dumbnet {

// A path as a sequence of switch indices (src switch first, dst switch last).
using SwitchPath = std::vector<uint32_t>;

// Unweighted hop distances from `src` to every switch (kNoVertex-reachable entries
// are UINT32_MAX).
std::vector<uint32_t> BfsDistances(const SwitchGraph& graph, uint32_t src);

// Dijkstra. When `rng` is non-null, ties between equal-cost relaxations are broken
// uniformly at random, so repeated calls spread over ECMP paths (Section 4.3:
// "randomizes the choice for equal cost links"). Returns an error if dst is
// unreachable.
Result<SwitchPath> ShortestPath(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                Rng* rng = nullptr);

// Yen's algorithm: up to k loop-free shortest paths in nondecreasing cost order.
// Returns at least one path or an error if src/dst are disconnected.
Result<std::vector<SwitchPath>> KShortestPaths(const SwitchGraph& graph, uint32_t src,
                                               uint32_t dst, uint32_t k);

// Total weight of a path under `graph`; error if an edge is missing.
Result<double> PathCost(const SwitchGraph& graph, const SwitchPath& path);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_SHORTEST_PATH_H_
