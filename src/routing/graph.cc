#include "src/routing/graph.h"

namespace dumbnet {

SwitchGraph::SwitchGraph(const Topology& topo) {
  adj_.resize(topo.switch_count());
  for (LinkIndex li = 0; li < topo.link_count(); ++li) {
    AddLink(topo, li);
  }
}

SwitchGraph::SwitchGraph(const Topology& topo, const std::vector<LinkIndex>& allowed_links) {
  adj_.resize(topo.switch_count());
  for (LinkIndex li : allowed_links) {
    if (li < topo.link_count()) {
      AddLink(topo, li);
    }
  }
}

void SwitchGraph::AddLink(const Topology& topo, LinkIndex li) {
  const Link& l = topo.link_at(li);
  if (!l.up || !l.a.node.is_switch() || !l.b.node.is_switch()) {
    return;
  }
  adj_[l.a.node.index].push_back(AdjEdge{l.b.node.index, l.a.port, l.b.port, li, 1.0});
  adj_[l.b.node.index].push_back(AdjEdge{l.a.node.index, l.b.port, l.a.port, li, 1.0});
}

size_t SwitchGraph::edge_count() const {
  size_t n = 0;
  for (const auto& edges : adj_) {
    n += edges.size();
  }
  return n;
}

void SwitchGraph::ScaleLinkWeight(LinkIndex link, double factor) {
  for (auto& edges : adj_) {
    for (AdjEdge& e : edges) {
      if (e.link == link) {
        e.weight *= factor;
      }
    }
  }
}

}  // namespace dumbnet
