#include "src/routing/graph.h"

#include <algorithm>

namespace dumbnet {

namespace {

// A link contributes an edge pair iff it is an up inter-switch link.
inline bool Eligible(const Link& l) {
  return l.up && l.a.node.is_switch() && l.b.node.is_switch();
}

}  // namespace

SwitchGraph::SwitchGraph(const Topology& topo) { Build(topo, nullptr); }

SwitchGraph::SwitchGraph(const Topology& topo, const std::vector<LinkIndex>& allowed_links) {
  Build(topo, &allowed_links);
}

void SwitchGraph::Build(const Topology& topo, const std::vector<LinkIndex>* allowed_links) {
  const size_t n = topo.switch_count();
  offsets_.assign(n + 1, 0);

  auto for_each_link = [&](auto&& fn) {
    if (allowed_links == nullptr) {
      for (LinkIndex li = 0; li < topo.link_count(); ++li) {
        fn(li);
      }
    } else {
      for (LinkIndex li : *allowed_links) {
        if (li < topo.link_count()) {
          fn(li);
        }
      }
    }
  };

  // Pass 1: out-degrees into offsets_[v + 1].
  for_each_link([&](LinkIndex li) {
    const Link& l = topo.link_at(li);
    if (Eligible(l)) {
      ++offsets_[l.a.node.index + 1];
      ++offsets_[l.b.node.index + 1];
    }
  });
  for (size_t v = 0; v < n; ++v) {
    offsets_[v + 1] += offsets_[v];
  }

  // Pass 2: fill rows with per-vertex write cursors. Iterating links in the same
  // order as pass 1 reproduces the historical per-vertex neighbor order exactly.
  edges_.resize(offsets_[n]);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for_each_link([&](LinkIndex li) {
    const Link& l = topo.link_at(li);
    if (Eligible(l)) {
      edges_[cursor[l.a.node.index]++] =
          AdjEdge{l.b.node.index, l.a.port, l.b.port, li, 1.0};
      edges_[cursor[l.b.node.index]++] =
          AdjEdge{l.a.node.index, l.b.port, l.a.port, li, 1.0};
    }
  });
}

void SwitchGraph::ScaleLinkWeight(LinkIndex link, double factor) {
  for (AdjEdge& e : edges_) {
    if (e.link == link) {
      e.weight *= factor;
    }
  }
}

void SwitchGraph::ScaleLinkWeights(const std::vector<LinkIndex>& links, double factor) {
  if (links.empty()) {
    return;
  }
  for (AdjEdge& e : edges_) {
    if (std::find(links.begin(), links.end(), e.link) != links.end()) {
      e.weight *= factor;
    }
  }
}

}  // namespace dumbnet
