// Path graph (paper Section 4.3, Algorithm 1): the subgraph the controller hands a
// host when it asks for a route. Contains (i) a primary shortest path, (ii) "s-step,
// ε-good" local detours around every window of the primary, and (iii) a backup path
// that avoids primary links where possible.
#ifndef DUMBNET_SRC_ROUTING_PATH_GRAPH_H_
#define DUMBNET_SRC_ROUTING_PATH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/routing/graph.h"
#include "src/routing/shortest_path.h"
#include "src/topo/topology.h"
#include "src/util/rng.h"

namespace dumbnet {

struct PathGraphParams {
  // Algorithm 1's constants: windows of `s` consecutive hops may be replaced by
  // detours of length at most s + epsilon.
  uint32_t s = 2;
  uint32_t epsilon = 2;
  // Weight multiplier applied to primary-path links before computing the backup,
  // making reuse unlikely "unless it is unavoidable".
  double backup_penalty = 16.0;
};

struct PathGraph {
  uint32_t src_switch = 0;
  uint32_t dst_switch = 0;
  SwitchPath primary;
  SwitchPath backup;
  // All switches of the subgraph (primary ∪ detour sets ∪ backup), deduplicated.
  std::vector<uint32_t> vertices;
  // Induced up links among `vertices` (inter-switch only).
  std::vector<LinkIndex> links;
};

// Builds the path graph between two switches. `graph` must be a current snapshot of
// `topo`. Randomized equal-cost choices draw from `rng` when provided.
Result<PathGraph> BuildPathGraph(const Topology& topo, const SwitchGraph& graph,
                                 uint32_t src_switch, uint32_t dst_switch,
                                 const PathGraphParams& params, Rng* rng = nullptr);

// Counts distinct simple src→dst paths inside the path-graph subgraph, up to `cap`
// (the subgraph can encode combinatorially many; Figure 12 reports this count).
uint64_t CountPathsInSubgraph(const Topology& topo, const PathGraph& pg, uint64_t cap);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_PATH_GRAPH_H_
