// Path graph (paper Section 4.3, Algorithm 1): the subgraph the controller hands a
// host when it asks for a route. Contains (i) a primary shortest path, (ii) "s-step,
// ε-good" local detours around every window of the primary, and (iii) a backup path
// that avoids primary links where possible.
//
// Two construction tiers:
//   - BuildPathGraph: one (src, dst) pair. The scratch overload reuses a
//     PathGraphScratch so repeated builds do no O(V)/O(E) allocation.
//   - BuildPathGraphBatch: many destinations from one source. Primaries come from
//     a shared SSSP tree (one Dijkstra total instead of one per destination) and
//     the per-destination detour/backup work fans out over a ThreadPool.
#ifndef DUMBNET_SRC_ROUTING_PATH_GRAPH_H_
#define DUMBNET_SRC_ROUTING_PATH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/routing/graph.h"
#include "src/routing/shortest_path.h"
#include "src/topo/topology.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace dumbnet {

struct PathGraphParams {
  // Algorithm 1's constants: windows of `s` consecutive hops may be replaced by
  // detours of length at most s + epsilon.
  uint32_t s = 2;
  uint32_t epsilon = 2;
  // Weight multiplier applied to primary-path links before computing the backup,
  // making reuse unlikely "unless it is unavoidable".
  double backup_penalty = 16.0;
};

struct PathGraph {
  uint32_t src_switch = 0;
  uint32_t dst_switch = 0;
  SwitchPath primary;
  SwitchPath backup;
  // All switches of the subgraph (primary ∪ detour sets ∪ backup), deduplicated.
  std::vector<uint32_t> vertices;
  // Induced up links among `vertices` (inter-switch only).
  std::vector<LinkIndex> links;
};

// Reusable buffers for path-graph construction: Dijkstra/BFS scratch, the per-link
// weight-scale vector used to repel the backup from the primary, and an
// epoch-stamped vertex-membership set. One instance per thread.
class PathGraphScratch {
 public:
  PathGraphScratch() = default;

 private:
  friend class PathGraphBuilder;

  SsspScratch dijkstra_;
  SsspScratch bfs_a_;
  SsspScratch bfs_b_;
  std::vector<double> link_scale_;     // 1.0 except along the primary
  std::vector<LinkIndex> scaled_;      // undo list for link_scale_
  std::vector<uint32_t> member_stamp_; // vertex-set membership, epoch-stamped
  uint32_t member_epoch_ = 0;
  std::vector<uint32_t> vertices_;
  std::vector<LinkIndex> links_;
};

// Builds the path graph between two switches. `graph` must be a current snapshot of
// `topo`. Randomized equal-cost choices draw from `rng` when provided.
Result<PathGraph> BuildPathGraph(const Topology& topo, const SwitchGraph& graph,
                                 uint32_t src_switch, uint32_t dst_switch,
                                 const PathGraphParams& params, Rng* rng = nullptr);

// Allocation-free variant: identical output (given the same rng draws), all
// temporaries live in `scratch`.
Result<PathGraph> BuildPathGraph(const Topology& topo, const SwitchGraph& graph,
                                 uint32_t src_switch, uint32_t dst_switch,
                                 const PathGraphParams& params, Rng* rng,
                                 PathGraphScratch& scratch);

// Completes a path graph around an externally supplied primary path (e.g. one
// extracted from a cached SSSP tree): computes the backup, detour sets, and the
// induced subgraph. `primary` must be a valid path in `graph`.
Result<PathGraph> BuildPathGraphAround(const Topology& topo, const SwitchGraph& graph,
                                       SwitchPath primary, const PathGraphParams& params,
                                       Rng* rng, PathGraphScratch& scratch);

// Builds path graphs from one source to many destinations. Primaries are extracted
// from `tree` (which must be rooted at src_switch over `graph`); backup/detour work
// for each destination runs concurrently on `pool` (or inline when pool is null).
// Deterministic: each destination draws from its own fork of `rng`, so results do
// not depend on thread scheduling. Per-destination failures (e.g. an unreachable
// destination) yield error entries; the batch itself always succeeds.
std::vector<Result<PathGraph>> BuildPathGraphBatch(
    const Topology& topo, const SwitchGraph& graph, const SsspTree& tree,
    const std::vector<uint32_t>& dst_switches, const PathGraphParams& params, Rng* rng,
    ThreadPool* pool);

// Counts distinct simple src→dst paths inside the path-graph subgraph, up to `cap`
// (the subgraph can encode combinatorially many; Figure 12 reports this count).
uint64_t CountPathsInSubgraph(const Topology& topo, const PathGraph& pg, uint64_t cap);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_PATH_GRAPH_H_
