#include "src/routing/topo_db.h"

#include "src/routing/tags.h"

namespace dumbnet {

uint32_t TopoDb::EnsureSwitch(uint64_t uid, uint8_t num_ports) {
  (void)num_ports;  // the mirror always allocates the full port space
  auto it = uid_to_index_.find(uid);
  if (it != uid_to_index_.end()) {
    return it->second;
  }
  uint32_t index = mirror_.AddSwitch(kMaxPorts);
  uid_to_index_.emplace(uid, index);
  index_to_uid_.push_back(uid);
  ++version_;
  return index;
}

Result<LinkIndex> TopoDb::FindLinkAt(uint64_t uid, PortNum port) const {
  auto idx = IndexOf(uid);
  if (!idx.ok()) {
    return idx.error();
  }
  LinkIndex li = mirror_.LinkAtPort(idx.value(), port);
  if (li == kInvalidLink) {
    return Error(ErrorCode::kNotFound, "no link recorded at that port");
  }
  return li;
}

Status TopoDb::AddLink(const WireLink& link, bool revive) {
  uint32_t a = EnsureSwitch(link.uid_a);
  uint32_t b = EnsureSwitch(link.uid_b);

  // Idempotence / rewiring: if either port already has a link, keep it when it is
  // the same link, detach it when the wiring changed.
  for (const auto& [sw, port] : {std::pair{a, link.port_a}, std::pair{b, link.port_b}}) {
    LinkIndex existing = mirror_.LinkAtPort(sw, port);
    if (existing == kInvalidLink) {
      continue;
    }
    const Link& l = mirror_.link_at(existing);
    const Endpoint& self = l.Side(NodeId::Switch(sw));
    const Endpoint& peer = l.Peer(NodeId::Switch(sw));
    bool same = self.port == port && peer.node.is_switch() &&
                ((sw == a && peer.node.index == b && peer.port == link.port_b) ||
                 (sw == b && peer.node.index == a && peer.port == link.port_a));
    if (same) {
      if (revive && !l.up) {
        // Already known; make sure it is marked up again. No-op revives of an
        // already-up link must not bump the version: during bring-up, gossip
        // and patches re-add live links constantly, and every spurious bump
        // invalidates the routing-graph caches keyed on it.
        mirror_.SetLinkUp(existing, true);
        ++version_;
      }
      return Status::Ok();
    }
    mirror_.DetachLink(existing);
    ++version_;
  }
  auto r = mirror_.ConnectSwitches(a, link.port_a, b, link.port_b);
  if (!r.ok()) {
    return r.error();
  }
  ++version_;
  return Status::Ok();
}

void TopoDb::SetLinkState(uint64_t uid, PortNum port, bool up) {
  auto li = FindLinkAt(uid, port);
  if (li.ok() && mirror_.link_at(li.value()).up != up) {
    mirror_.SetLinkUp(li.value(), up);
    ++version_;
  }
}

void TopoDb::UpsertHost(const HostLocation& loc) {
  // Host moves do not touch the mirror, so they leave version() alone: every
  // cache keyed on it derives from the switch graph only, and host locations
  // are looked up fresh on each use.
  hosts_[loc.mac] = loc;
}

Status TopoDb::MergePathGraph(const WirePathGraph& graph) {
  for (const WireLink& l : graph.links) {
    if (Status s = AddLink(l, /*revive=*/false); !s.ok()) {
      return s;
    }
  }
  // Endpoints appear even if the graph had no links (single-switch case).
  EnsureSwitch(graph.src_uid);
  EnsureSwitch(graph.dst_uid);
  return Status::Ok();
}

Result<uint32_t> TopoDb::IndexOf(uint64_t uid) const {
  auto it = uid_to_index_.find(uid);
  if (it == uid_to_index_.end()) {
    return Error(ErrorCode::kNotFound, "unknown switch uid " + std::to_string(uid));
  }
  return it->second;
}

Result<HostLocation> TopoDb::LocateHost(uint64_t mac) const {
  auto it = hosts_.find(mac);
  if (it == hosts_.end()) {
    return Error(ErrorCode::kNotFound, "unknown host mac " + std::to_string(mac));
  }
  return it->second;
}

std::vector<HostLocation> TopoDb::Directory() const {
  std::vector<HostLocation> out;
  out.reserve(hosts_.size());
  for (const auto& [mac, loc] : hosts_) {
    out.push_back(loc);
  }
  return out;
}

bool TopoDb::HasLink(const WireLink& link) const {
  auto li = FindLinkAt(link.uid_a, link.port_a);
  if (!li.ok()) {
    return false;
  }
  const Link& l = mirror_.link_at(li.value());
  auto b = IndexOf(link.uid_b);
  if (!b.ok()) {
    return false;
  }
  const Endpoint& peer = l.Peer(NodeId::Switch(IndexOf(link.uid_a).value()));
  return peer.node.is_switch() && peer.node.index == b.value() && peer.port == link.port_b;
}

Result<WireLink> TopoDb::LinkAt(uint64_t uid, PortNum port) const {
  auto li = FindLinkAt(uid, port);
  if (!li.ok()) {
    return li.error();
  }
  const Link& l = mirror_.link_at(li.value());
  return WireLink{UidOf(l.a.node.index), l.a.port, UidOf(l.b.node.index), l.b.port};
}

std::vector<uint64_t> TopoDb::PathToUids(const std::vector<uint32_t>& path) const {
  std::vector<uint64_t> out;
  out.reserve(path.size());
  for (uint32_t i : path) {
    out.push_back(UidOf(i));
  }
  return out;
}

Result<std::vector<uint32_t>> TopoDb::PathFromUids(const std::vector<uint64_t>& path) const {
  std::vector<uint32_t> out;
  out.reserve(path.size());
  for (uint64_t uid : path) {
    auto idx = IndexOf(uid);
    if (!idx.ok()) {
      return idx.error();
    }
    out.push_back(idx.value());
  }
  return out;
}

Result<std::vector<PortNum>> TopoDb::CompileTagsForUidPath(const std::vector<uint64_t>& path,
                                                           PortNum final_port) const {
  auto indices = PathFromUids(path);
  if (!indices.ok()) {
    return indices.error();
  }
  auto tags = CompileSwitchTags(mirror_, indices.value());
  if (!tags.ok()) {
    return tags.error();
  }
  std::vector<PortNum> out = std::move(tags.value());
  out.push_back(final_port);
  return out;
}

}  // namespace dumbnet
