#include "src/routing/path_graph.h"

#include <algorithm>
#include <set>

namespace dumbnet {

Result<PathGraph> BuildPathGraph(const Topology& topo, const SwitchGraph& graph,
                                 uint32_t src_switch, uint32_t dst_switch,
                                 const PathGraphParams& params, Rng* rng) {
  PathGraph out;
  out.src_switch = src_switch;
  out.dst_switch = dst_switch;

  // (i) Primary: randomized shortest path.
  auto primary = ShortestPath(graph, src_switch, dst_switch, rng);
  if (!primary.ok()) {
    return primary.error();
  }
  out.primary = std::move(primary.value());

  // (ii) Backup: rerun with primary links made expensive.
  {
    SwitchGraph penalized = graph;
    for (size_t i = 0; i + 1 < out.primary.size(); ++i) {
      for (const AdjEdge& e : graph.Neighbors(out.primary[i])) {
        if (e.to == out.primary[i + 1]) {
          penalized.ScaleLinkWeight(e.link, params.backup_penalty);
        }
      }
    }
    auto backup = ShortestPath(penalized, src_switch, dst_switch, rng);
    if (backup.ok()) {
      out.backup = std::move(backup.value());
    }
    // A disconnected backup is not fatal: single-homed destinations have none.
  }

  // (iii) Local detours, Algorithm 1. Windows [p_i, p_{i+s}] advance by s/2; every
  // vertex x with dist(a,x) + dist(x,b) <= s + ε joins the subgraph.
  std::set<uint32_t> vertex_set(out.primary.begin(), out.primary.end());
  vertex_set.insert(out.backup.begin(), out.backup.end());

  const size_t l = out.primary.size();  // vertices on primary (hops = l-1)
  const uint32_t s = std::max<uint32_t>(1, params.s);
  const uint32_t step = std::max<uint32_t>(1, s / 2);
  for (size_t i = 0; i < l; i += step) {
    uint32_t a = out.primary[i];
    uint32_t b = out.primary[std::min(i + s, l - 1)];
    std::vector<uint32_t> da = BfsDistances(graph, a);
    std::vector<uint32_t> db = BfsDistances(graph, b);
    uint32_t budget = s + params.epsilon;
    for (uint32_t x = 0; x < graph.size(); ++x) {
      if (da[x] != UINT32_MAX && db[x] != UINT32_MAX && da[x] + db[x] <= budget) {
        vertex_set.insert(x);
      }
    }
    if (i + s >= l - 1) {
      break;  // final window reached the destination
    }
  }

  out.vertices.assign(vertex_set.begin(), vertex_set.end());

  // Induced links: both endpoints in the vertex set.
  std::set<LinkIndex> link_set;
  for (uint32_t v : out.vertices) {
    for (const AdjEdge& e : graph.Neighbors(v)) {
      if (vertex_set.count(e.to) > 0) {
        link_set.insert(e.link);
      }
    }
  }
  out.links.assign(link_set.begin(), link_set.end());
  (void)topo;
  return out;
}

namespace {

uint64_t CountPathsDfs(const SwitchGraph& g, uint32_t u, uint32_t dst,
                       std::vector<bool>& on_stack, uint64_t cap, uint64_t found) {
  if (u == dst) {
    return found + 1;
  }
  on_stack[u] = true;
  for (const AdjEdge& e : g.Neighbors(u)) {
    if (found >= cap) {
      break;
    }
    if (!on_stack[e.to]) {
      found = CountPathsDfs(g, e.to, dst, on_stack, cap, found);
    }
  }
  on_stack[u] = false;
  return found;
}

}  // namespace

uint64_t CountPathsInSubgraph(const Topology& topo, const PathGraph& pg, uint64_t cap) {
  SwitchGraph sub(topo, pg.links);
  std::vector<bool> on_stack(sub.size(), false);
  return CountPathsDfs(sub, pg.src_switch, pg.dst_switch, on_stack, cap, 0);
}

}  // namespace dumbnet
