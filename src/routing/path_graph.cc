#include "src/routing/path_graph.h"

#include <algorithm>

namespace dumbnet {

// All construction logic lives here; friend of PathGraphScratch.
class PathGraphBuilder {
 public:
  // Completes `out` (src/dst/primary already set): backup path, detour sets, and
  // the induced subgraph. Mirrors the historical allocating implementation
  // operation-for-operation so rng draws and outputs are unchanged.
  static SsspScratch& Dijkstra(PathGraphScratch& sc) { return sc.dijkstra_; }

  static void Complete(const SwitchGraph& graph, const PathGraphParams& params, Rng* rng,
                       PathGraphScratch& sc, PathGraph& out) {
    const SwitchPath& primary = out.primary;

    // (ii) Backup: rerun with primary links made expensive. A per-link weight
    // multiplier stands in for the graph copy the old code made.
    {
      const size_t scale_size = LinkScaleSize(graph);
      if (sc.link_scale_.size() < scale_size) {
        sc.link_scale_.resize(scale_size, 1.0);
      }
      for (size_t i = 0; i + 1 < primary.size(); ++i) {
        for (const AdjEdge& e : graph.Neighbors(primary[i])) {
          if (e.to == primary[i + 1]) {
            if (sc.link_scale_[e.link] == 1.0) {
              sc.scaled_.push_back(e.link);
            }
            sc.link_scale_[e.link] *= params.backup_penalty;
          }
        }
      }
      auto backup = ShortestPathScaled(graph, out.src_switch, out.dst_switch, rng,
                                       sc.dijkstra_, &sc.link_scale_);
      for (LinkIndex li : sc.scaled_) {
        sc.link_scale_[li] = 1.0;
      }
      sc.scaled_.clear();
      if (backup.ok()) {
        out.backup = std::move(backup.value());
      }
      // A disconnected backup is not fatal: single-homed destinations have none.
    }

    // (iii) Local detours, Algorithm 1. Windows [p_i, p_{i+s}] advance by s/2;
    // every vertex x with dist(a,x) + dist(x,b) <= s + ε joins the subgraph.
    // Both BFS runs are truncated at the budget: anything further can't qualify.
    BeginMemberSet(sc, graph.size());
    for (uint32_t v : primary) {
      AddMember(sc, v);
    }
    for (uint32_t v : out.backup) {
      AddMember(sc, v);
    }

    const size_t l = primary.size();  // vertices on primary (hops = l-1)
    const uint32_t s = std::max<uint32_t>(1, params.s);
    const uint32_t step = std::max<uint32_t>(1, s / 2);
    const uint32_t budget = s + params.epsilon;
    for (size_t i = 0; i < l; i += step) {
      uint32_t a = primary[i];
      uint32_t b = primary[std::min(i + s, l - 1)];
      BfsDistancesInto(graph, a, sc.bfs_a_, budget);
      BfsDistancesInto(graph, b, sc.bfs_b_, budget);
      for (uint32_t x : sc.bfs_a_.touched()) {
        const uint32_t db = sc.bfs_b_.HopsOr(x, UINT32_MAX);
        if (db != UINT32_MAX && sc.bfs_a_.HopsOr(x, UINT32_MAX) + db <= budget) {
          AddMember(sc, x);
        }
      }
      if (i + s >= l - 1) {
        break;  // final window reached the destination
      }
    }

    std::sort(sc.vertices_.begin(), sc.vertices_.end());
    out.vertices = sc.vertices_;

    // Induced links: both endpoints in the vertex set. Each qualifying link is
    // seen from both ends, so sort + unique dedups.
    sc.links_.clear();
    for (uint32_t v : out.vertices) {
      for (const AdjEdge& e : graph.Neighbors(v)) {
        if (sc.member_stamp_[e.to] == sc.member_epoch_) {
          sc.links_.push_back(e.link);
        }
      }
    }
    std::sort(sc.links_.begin(), sc.links_.end());
    sc.links_.erase(std::unique(sc.links_.begin(), sc.links_.end()), sc.links_.end());
    out.links = sc.links_;
  }

 private:
  // link_scale_ is indexed by LinkIndex; the largest index any edge can carry is
  // bounded by the number of directed edges (each link contributes two).
  static size_t LinkScaleSize(const SwitchGraph& graph) {
    size_t max_link = 0;
    for (uint32_t v = 0; v < graph.size(); ++v) {
      for (const AdjEdge& e : graph.Neighbors(v)) {
        max_link = std::max<size_t>(max_link, e.link);
      }
    }
    return graph.edge_count() == 0 ? 0 : max_link + 1;
  }

  static void BeginMemberSet(PathGraphScratch& sc, size_t vertices) {
    if (sc.member_stamp_.size() < vertices) {
      sc.member_stamp_.resize(vertices, 0);
    }
    if (++sc.member_epoch_ == 0) {
      std::fill(sc.member_stamp_.begin(), sc.member_stamp_.end(), 0u);
      sc.member_epoch_ = 1;
    }
    sc.vertices_.clear();
  }

  static void AddMember(PathGraphScratch& sc, uint32_t v) {
    if (sc.member_stamp_[v] != sc.member_epoch_) {
      sc.member_stamp_[v] = sc.member_epoch_;
      sc.vertices_.push_back(v);
    }
  }
};

Result<PathGraph> BuildPathGraph(const Topology& topo, const SwitchGraph& graph,
                                 uint32_t src_switch, uint32_t dst_switch,
                                 const PathGraphParams& params, Rng* rng) {
  PathGraphScratch scratch;
  return BuildPathGraph(topo, graph, src_switch, dst_switch, params, rng, scratch);
}

Result<PathGraph> BuildPathGraph(const Topology& topo, const SwitchGraph& graph,
                                 uint32_t src_switch, uint32_t dst_switch,
                                 const PathGraphParams& params, Rng* rng,
                                 PathGraphScratch& scratch) {
  (void)topo;
  PathGraph out;
  out.src_switch = src_switch;
  out.dst_switch = dst_switch;

  // (i) Primary: randomized shortest path.
  auto primary = ShortestPathScaled(graph, src_switch, dst_switch, rng,
                                    PathGraphBuilder::Dijkstra(scratch), nullptr);
  if (!primary.ok()) {
    return primary.error();
  }
  out.primary = std::move(primary.value());
  PathGraphBuilder::Complete(graph, params, rng, scratch, out);
  return out;
}

Result<PathGraph> BuildPathGraphAround(const Topology& topo, const SwitchGraph& graph,
                                       SwitchPath primary, const PathGraphParams& params,
                                       Rng* rng, PathGraphScratch& scratch) {
  (void)topo;
  if (primary.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty primary path");
  }
  PathGraph out;
  out.src_switch = primary.front();
  out.dst_switch = primary.back();
  out.primary = std::move(primary);
  PathGraphBuilder::Complete(graph, params, rng, scratch, out);
  return out;
}

std::vector<Result<PathGraph>> BuildPathGraphBatch(
    const Topology& topo, const SwitchGraph& graph, const SsspTree& tree,
    const std::vector<uint32_t>& dst_switches, const PathGraphParams& params, Rng* rng,
    ThreadPool* pool) {
  const size_t n = dst_switches.size();
  std::vector<Result<PathGraph>> out(
      n, Result<PathGraph>(Error(ErrorCode::kInternal, "not computed")));

  // Fork one rng per destination up front (sequentially, so the batch result is a
  // pure function of `rng`'s state, not of thread interleaving).
  std::vector<Rng> rngs;
  if (rng != nullptr) {
    rngs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rngs.push_back(rng->Fork(i));
    }
  }

  const size_t workers = pool != nullptr ? pool->concurrency() : 1;
  std::vector<PathGraphScratch> scratches(workers);

  auto build_one = [&](size_t i, size_t worker) {
    auto primary = PathFromTree(tree, dst_switches[i]);
    if (!primary.ok()) {
      out[i] = primary.error();
      return;
    }
    out[i] = BuildPathGraphAround(topo, graph, std::move(primary.value()), params,
                                  rng != nullptr ? &rngs[i] : nullptr, scratches[worker]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, build_one);
  } else {
    for (size_t i = 0; i < n; ++i) {
      build_one(i, 0);
    }
  }
  return out;
}

namespace {

uint64_t CountPathsDfs(const SwitchGraph& g, uint32_t u, uint32_t dst,
                       std::vector<bool>& on_stack, uint64_t cap, uint64_t found) {
  if (u == dst) {
    return found + 1;
  }
  on_stack[u] = true;
  for (const AdjEdge& e : g.Neighbors(u)) {
    if (found >= cap) {
      break;
    }
    if (!on_stack[e.to]) {
      found = CountPathsDfs(g, e.to, dst, on_stack, cap, found);
    }
  }
  on_stack[u] = false;
  return found;
}

}  // namespace

uint64_t CountPathsInSubgraph(const Topology& topo, const PathGraph& pg, uint64_t cap) {
  SwitchGraph sub(topo, pg.links);
  std::vector<bool> on_stack(sub.size(), false);
  return CountPathsDfs(sub, pg.src_switch, pg.dst_switch, on_stack, cap, 0);
}

}  // namespace dumbnet
