#include "src/routing/sssp_cache.h"

namespace dumbnet {

const SsspTree& SsspCache::Get(const SwitchGraph& graph, uint64_t version, uint32_t src,
                               Rng* rng) {
  if (version != version_ || version_ == kNoVersion) {
    trees_.clear();
    version_ = version;
  }
  auto it = trees_.find(src);
  if (it != trees_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  return trees_.emplace(src, BuildSsspTree(graph, src, rng, &scratch_)).first->second;
}

void SsspCache::Invalidate() {
  trees_.clear();
  version_ = kNoVersion;
}

}  // namespace dumbnet
