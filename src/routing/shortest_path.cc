#include "src/routing/shortest_path.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <set>

namespace dumbnet {

std::vector<uint32_t> BfsDistances(const SwitchGraph& graph, uint32_t src) {
  std::vector<uint32_t> dist(graph.size(), UINT32_MAX);
  if (src >= graph.size()) {
    return dist;
  }
  std::deque<uint32_t> q;
  dist[src] = 0;
  q.push_back(src);
  while (!q.empty()) {
    uint32_t u = q.front();
    q.pop_front();
    for (const AdjEdge& e : graph.Neighbors(u)) {
      if (dist[e.to] == UINT32_MAX) {
        dist[e.to] = dist[u] + 1;
        q.push_back(e.to);
      }
    }
  }
  return dist;
}

namespace {

struct DijkstraItem {
  double cost;
  uint64_t tiebreak;
  uint32_t vertex;

  bool operator>(const DijkstraItem& other) const {
    if (cost != other.cost) {
      return cost > other.cost;
    }
    return tiebreak > other.tiebreak;
  }
};

// Shared Dijkstra core with optional banned vertices/edges (for Yen's spur search).
Result<SwitchPath> DijkstraInternal(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                    Rng* rng, const std::vector<bool>* banned_vertex,
                                    const std::set<std::pair<uint32_t, uint32_t>>* banned_edge) {
  if (src >= graph.size() || dst >= graph.size()) {
    return Error(ErrorCode::kOutOfRange, "vertex out of range");
  }
  std::vector<double> cost(graph.size(), kInfCost);
  std::vector<uint32_t> parent(graph.size(), kNoVertex);
  std::priority_queue<DijkstraItem, std::vector<DijkstraItem>, std::greater<DijkstraItem>> pq;
  cost[src] = 0.0;
  pq.push({0.0, 0, src});
  while (!pq.empty()) {
    double c = pq.top().cost;
    uint32_t u = pq.top().vertex;
    pq.pop();
    if (c > cost[u]) {
      continue;
    }
    if (u == dst) {
      break;
    }
    for (const AdjEdge& e : graph.Neighbors(u)) {
      if (banned_vertex != nullptr && (*banned_vertex)[e.to]) {
        continue;
      }
      if (banned_edge != nullptr &&
          banned_edge->count({std::min(u, e.to), std::max(u, e.to)}) > 0) {
        continue;
      }
      double nc = c + e.weight;
      bool better = nc < cost[e.to];
      // Randomized tie-break: replace an equal-cost parent with probability 1/2.
      bool tie = !better && nc == cost[e.to] && rng != nullptr && rng->Bernoulli(0.5);
      if (better || tie) {
        cost[e.to] = nc;
        parent[e.to] = u;
        pq.push({nc, rng != nullptr ? rng->Next64() : 0, e.to});
      }
    }
  }
  if (cost[dst] == kInfCost) {
    return Error(ErrorCode::kUnavailable, "destination unreachable");
  }
  SwitchPath path;
  for (uint32_t v = dst; v != kNoVertex; v = parent[v]) {
    path.push_back(v);
    if (v == src) {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != src) {
    return Error(ErrorCode::kInternal, "path reconstruction failed");
  }
  return path;
}

}  // namespace

Result<SwitchPath> ShortestPath(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                Rng* rng) {
  return DijkstraInternal(graph, src, dst, rng, nullptr, nullptr);
}

Result<double> PathCost(const SwitchGraph& graph, const SwitchPath& path) {
  if (path.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty path");
  }
  double total = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    bool found = false;
    double best = kInfCost;
    for (const AdjEdge& e : graph.Neighbors(path[i])) {
      if (e.to == path[i + 1]) {
        best = std::min(best, e.weight);
        found = true;
      }
    }
    if (!found) {
      return Error(ErrorCode::kNotFound, "missing edge on path");
    }
    total += best;
  }
  return total;
}

Result<std::vector<SwitchPath>> KShortestPaths(const SwitchGraph& graph, uint32_t src,
                                               uint32_t dst, uint32_t k) {
  auto first = ShortestPath(graph, src, dst);
  if (!first.ok()) {
    return first.error();
  }
  std::vector<SwitchPath> result;
  result.push_back(std::move(first.value()));
  if (k <= 1) {
    return result;
  }

  // Candidate pool ordered by cost; set dedups identical paths.
  struct Candidate {
    double cost;
    SwitchPath path;
    bool operator>(const Candidate& other) const { return cost > other.cost; }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<Candidate>> candidates;
  std::set<SwitchPath> seen(result.begin(), result.end());

  while (result.size() < k) {
    const SwitchPath& prev = result.back();
    // Spur from every vertex of the previous path except the last.
    for (size_t i = 0; i + 1 < prev.size(); ++i) {
      uint32_t spur = prev[i];
      SwitchPath root(prev.begin(), prev.begin() + static_cast<long>(i) + 1);

      // Ban edges that would recreate an already-found path with this root, and ban
      // root vertices (except the spur) to keep paths simple.
      std::set<std::pair<uint32_t, uint32_t>> banned_edges;
      for (const SwitchPath& p : result) {
        if (p.size() > i + 1 && std::equal(root.begin(), root.end(), p.begin())) {
          banned_edges.insert({std::min(p[i], p[i + 1]), std::max(p[i], p[i + 1])});
        }
      }
      std::vector<bool> banned_vertex(graph.size(), false);
      for (size_t j = 0; j < i; ++j) {
        banned_vertex[prev[j]] = true;
      }

      auto spur_path = DijkstraInternal(graph, spur, dst, nullptr, &banned_vertex,
                                        &banned_edges);
      if (!spur_path.ok()) {
        continue;
      }
      SwitchPath total = root;
      total.insert(total.end(), spur_path.value().begin() + 1, spur_path.value().end());
      if (seen.count(total) > 0) {
        continue;
      }
      seen.insert(total);
      auto cost = PathCost(graph, total);
      if (cost.ok()) {
        candidates.push({cost.value(), std::move(total)});
      }
    }
    if (candidates.empty()) {
      break;
    }
    result.push_back(candidates.top().path);
    candidates.pop();
  }
  return result;
}

}  // namespace dumbnet
