#include "src/routing/shortest_path.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <set>

namespace dumbnet {

// Friend accessor: lets the algorithms in this file use the scratch internals
// without exposing them in the header.
class SsspAccess {
 public:
  using HeapItem = SsspScratch::HeapItem;

  static std::vector<HeapItem>& Heap(SsspScratch& s) { return s.heap_; }
  static std::vector<uint32_t>& Touched(SsspScratch& s) { return s.touched_; }
  static bool Done(const SsspScratch& s, uint32_t v) { return s.done_stamp_[v] == s.epoch_; }
  static void MarkDone(SsspScratch& s, uint32_t v) { s.done_stamp_[v] = s.epoch_; }
  static void Set(SsspScratch& s, uint32_t v, double cost, uint32_t parent, uint32_t hops) {
    if (!s.Seen(v)) {
      s.Touch(v);
    }
    s.cost_[v] = cost;
    s.parent_[v] = parent;
    s.hops_[v] = hops;
  }
};

namespace {

using HeapItem = SsspAccess::HeapItem;

// Min-heap on (cost, tiebreak).
struct HeapGreater {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    if (a.cost != b.cost) {
      return a.cost > b.cost;
    }
    return a.tiebreak > b.tiebreak;
  }
};

inline double EdgeWeight(const AdjEdge& e, const std::vector<double>* link_scale) {
  if (link_scale != nullptr && e.link < link_scale->size()) {
    return e.weight * (*link_scale)[e.link];
  }
  return e.weight;
}

// Shared scratch-based Dijkstra core. Early-exits at `dst` unless dst == kNoVertex
// (full-tree mode). Results live in `scratch` until its next Prepare().
//
// Vertices are finalized on first pop and never relaxed again. Without this,
// randomized tie-breaking cascades on high-ECMP fabrics: every accepted tie
// re-pushes an equal-cost heap entry, equal-cost pops re-expand, and those
// expansions trigger more downstream ties — on a unit-weight cube a single query
// cost ~100x the finalized version. Ties stay randomized among the candidate
// parents that reach a vertex before it is popped.
void DijkstraInto(const SwitchGraph& graph, uint32_t src, uint32_t dst, Rng* rng,
                  SsspScratch& scratch, const std::vector<double>* link_scale) {
  scratch.Prepare(graph.size());
  auto& heap = SsspAccess::Heap(scratch);
  HeapGreater greater;
  SsspAccess::Set(scratch, src, 0.0, kNoVertex, 0);
  heap.push_back(HeapItem{0.0, 0, src});
  while (!heap.empty()) {
    const HeapItem top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), greater);
    heap.pop_back();
    if (SsspAccess::Done(scratch, top.vertex)) {
      continue;  // duplicate entry; this vertex is already finalized
    }
    SsspAccess::MarkDone(scratch, top.vertex);
    if (top.vertex == dst) {
      break;
    }
    const uint32_t hops = scratch.HopsOr(top.vertex, 0) + 1;
    for (const AdjEdge& e : graph.Neighbors(top.vertex)) {
      if (SsspAccess::Done(scratch, e.to)) {
        continue;  // finalized: cost can't improve, and its parent is settled
      }
      const double nc = top.cost + EdgeWeight(e, link_scale);
      const double old = scratch.CostOr(e.to, kInfCost);
      const bool better = nc < old;
      // Randomized tie-break: replace an equal-cost parent with probability 1/2.
      const bool tie = !better && nc == old && rng != nullptr && rng->Bernoulli(0.5);
      if (better || tie) {
        SsspAccess::Set(scratch, e.to, nc, top.vertex, hops);
        heap.push_back(HeapItem{nc, rng != nullptr ? rng->Next64() : 0, e.to});
        std::push_heap(heap.begin(), heap.end(), greater);
      }
    }
  }
}

Result<SwitchPath> ExtractPath(const SsspScratch& scratch, uint32_t src, uint32_t dst) {
  if (!scratch.Seen(dst)) {
    return Error(ErrorCode::kUnavailable, "destination unreachable");
  }
  SwitchPath path;
  for (uint32_t v = dst; v != kNoVertex; v = scratch.ParentOr(v, kNoVertex)) {
    path.push_back(v);
    if (v == src) {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != src) {
    return Error(ErrorCode::kInternal, "path reconstruction failed");
  }
  return path;
}

struct DijkstraItem {
  double cost;
  uint64_t tiebreak;
  uint32_t vertex;

  bool operator>(const DijkstraItem& other) const {
    if (cost != other.cost) {
      return cost > other.cost;
    }
    return tiebreak > other.tiebreak;
  }
};

// Reusable state for Yen's spur searches. One KShortestPaths call runs
// O(k * path-length) spur Dijkstras over the same graph; allocating the cost /
// parent / ban arrays once and undoing only the touched entries between
// searches keeps each spur at O(edges relaxed) instead of O(V) setup. The
// banned-edge set is at most k-1 entries per spur, so a linear-scanned vector
// beats a node-based set on every fabric we simulate.
struct SpurScratch {
  std::vector<double> cost;
  std::vector<uint32_t> parent;
  std::vector<char> banned_vertex;
  std::vector<std::pair<uint32_t, uint32_t>> banned_edges;
  std::vector<uint32_t> touched;

  void Init(size_t n) {
    cost.assign(n, kInfCost);
    parent.assign(n, kNoVertex);
    banned_vertex.assign(n, 0);
    banned_edges.clear();
    touched.clear();
  }

  void ResetTouched() {
    for (uint32_t v : touched) {
      cost[v] = kInfCost;
      parent[v] = kNoVertex;
    }
    touched.clear();
  }
};

// Spur-path Dijkstra for Yen's algorithm: same relaxation order and lazy
// deletion as the classic allocating variant (deterministic — no randomized
// tie-break on spur paths), with bans and arrays living in SpurScratch.
// Callers must ResetTouched() between searches.
Result<SwitchPath> DijkstraSpur(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                SpurScratch& s) {
  if (src >= graph.size() || dst >= graph.size()) {
    return Error(ErrorCode::kOutOfRange, "vertex out of range");
  }
  std::priority_queue<DijkstraItem, std::vector<DijkstraItem>, std::greater<DijkstraItem>> pq;
  s.cost[src] = 0.0;
  s.touched.push_back(src);
  pq.push({0.0, 0, src});
  while (!pq.empty()) {
    double c = pq.top().cost;
    uint32_t u = pq.top().vertex;
    pq.pop();
    if (c > s.cost[u]) {
      continue;
    }
    if (u == dst) {
      break;
    }
    for (const AdjEdge& e : graph.Neighbors(u)) {
      if (s.banned_vertex[e.to] != 0) {
        continue;
      }
      const std::pair<uint32_t, uint32_t> key{std::min(u, e.to), std::max(u, e.to)};
      if (std::find(s.banned_edges.begin(), s.banned_edges.end(), key) !=
          s.banned_edges.end()) {
        continue;
      }
      double nc = c + e.weight;
      if (nc < s.cost[e.to]) {
        if (s.cost[e.to] == kInfCost) {
          s.touched.push_back(e.to);
        }
        s.cost[e.to] = nc;
        s.parent[e.to] = u;
        pq.push({nc, 0, e.to});
      }
    }
  }
  if (s.cost[dst] == kInfCost) {
    return Error(ErrorCode::kUnavailable, "destination unreachable");
  }
  SwitchPath path;
  for (uint32_t v = dst; v != kNoVertex; v = s.parent[v]) {
    path.push_back(v);
    if (v == src) {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != src) {
    return Error(ErrorCode::kInternal, "path reconstruction failed");
  }
  return path;
}

}  // namespace

std::vector<uint32_t> BfsDistances(const SwitchGraph& graph, uint32_t src) {
  std::vector<uint32_t> dist(graph.size(), UINT32_MAX);
  if (src >= graph.size()) {
    return dist;
  }
  SsspScratch scratch;
  BfsDistancesInto(graph, src, scratch);
  for (uint32_t v : scratch.touched()) {
    dist[v] = scratch.HopsOr(v, UINT32_MAX);
  }
  return dist;
}

void BfsDistancesInto(const SwitchGraph& graph, uint32_t src, SsspScratch& scratch,
                      uint32_t max_hops) {
  scratch.Prepare(graph.size());
  if (src >= graph.size()) {
    return;
  }
  // touched() doubles as the BFS queue: visit order == touch order.
  SsspAccess::Set(scratch, src, 0.0, kNoVertex, 0);
  auto& queue = SsspAccess::Touched(scratch);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const uint32_t u = queue[qi];
    const uint32_t du = scratch.HopsOr(u, 0);
    if (du >= max_hops) {
      continue;  // beyond the horizon: exact inside, unreached outside
    }
    for (const AdjEdge& e : graph.Neighbors(u)) {
      if (!scratch.Seen(e.to)) {
        SsspAccess::Set(scratch, e.to, static_cast<double>(du + 1), u, du + 1);
      }
    }
  }
}

Result<SwitchPath> ShortestPath(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                Rng* rng) {
  if (src >= graph.size() || dst >= graph.size()) {
    return Error(ErrorCode::kOutOfRange, "vertex out of range");
  }
  // Shares DijkstraInto with ShortestPathScaled so both draw from `rng`
  // identically: same seed, same graph => same path, scaled or not. The scratch
  // is thread-local so back-to-back queries (one per route install during
  // bring-up) reuse the arrays; Prepare() epoch-invalidates stale contents, so
  // results never depend on what a previous query left behind.
  static thread_local SsspScratch scratch;
  DijkstraInto(graph, src, dst, rng, scratch, nullptr);
  return ExtractPath(scratch, src, dst);
}

Result<SwitchPath> ShortestPathScaled(const SwitchGraph& graph, uint32_t src, uint32_t dst,
                                      Rng* rng, SsspScratch& scratch,
                                      const std::vector<double>* link_scale) {
  if (src >= graph.size() || dst >= graph.size()) {
    return Error(ErrorCode::kOutOfRange, "vertex out of range");
  }
  DijkstraInto(graph, src, dst, rng, scratch, link_scale);
  return ExtractPath(scratch, src, dst);
}

SsspTree BuildSsspTree(const SwitchGraph& graph, uint32_t src, Rng* rng,
                       SsspScratch* scratch) {
  SsspTree tree;
  tree.src = src;
  tree.cost.assign(graph.size(), kInfCost);
  tree.parent.assign(graph.size(), kNoVertex);
  if (src >= graph.size()) {
    return tree;
  }
  SsspScratch local;
  SsspScratch& s = scratch != nullptr ? *scratch : local;
  DijkstraInto(graph, src, kNoVertex, rng, s, nullptr);
  for (uint32_t v : s.touched()) {
    tree.cost[v] = s.CostOr(v, kInfCost);
    tree.parent[v] = s.ParentOr(v, kNoVertex);
  }
  return tree;
}

Result<SwitchPath> PathFromTree(const SsspTree& tree, uint32_t dst) {
  if (dst >= tree.cost.size() || tree.src == kNoVertex) {
    return Error(ErrorCode::kOutOfRange, "vertex out of range");
  }
  if (tree.cost[dst] == kInfCost) {
    return Error(ErrorCode::kUnavailable, "destination unreachable");
  }
  SwitchPath path;
  for (uint32_t v = dst; v != kNoVertex; v = tree.parent[v]) {
    path.push_back(v);
    if (v == tree.src) {
      break;
    }
    if (path.size() > tree.cost.size()) {
      return Error(ErrorCode::kInternal, "cycle in SSSP tree");
    }
  }
  std::reverse(path.begin(), path.end());
  if (path.front() != tree.src) {
    return Error(ErrorCode::kInternal, "path reconstruction failed");
  }
  return path;
}

Result<double> PathCost(const SwitchGraph& graph, const SwitchPath& path) {
  if (path.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty path");
  }
  double total = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    bool found = false;
    double best = kInfCost;
    for (const AdjEdge& e : graph.Neighbors(path[i])) {
      if (e.to == path[i + 1]) {
        best = std::min(best, e.weight);
        found = true;
      }
    }
    if (!found) {
      return Error(ErrorCode::kNotFound, "missing edge on path");
    }
    total += best;
  }
  return total;
}

Result<std::vector<SwitchPath>> KShortestPaths(const SwitchGraph& graph, uint32_t src,
                                               uint32_t dst, uint32_t k) {
  auto first = ShortestPath(graph, src, dst);
  if (!first.ok()) {
    return first.error();
  }
  std::vector<SwitchPath> result;
  result.push_back(std::move(first.value()));
  if (k <= 1) {
    return result;
  }

  // Candidate pool ordered by cost; set dedups identical paths.
  struct Candidate {
    double cost;
    SwitchPath path;
    bool operator>(const Candidate& other) const { return cost > other.cost; }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<Candidate>> candidates;
  std::set<SwitchPath> seen(result.begin(), result.end());
  SpurScratch scratch;
  scratch.Init(graph.size());
  SwitchPath root;

  while (result.size() < k) {
    const SwitchPath& prev = result.back();
    root.clear();
    // Spur from every vertex of the previous path except the last. The root
    // prefix prev[0..i] and the banned root vertices prev[0..i-1] both grow by
    // one element per step, so they are maintained incrementally.
    for (size_t i = 0; i + 1 < prev.size(); ++i) {
      uint32_t spur = prev[i];
      root.push_back(spur);
      if (i > 0) {
        scratch.banned_vertex[prev[i - 1]] = 1;
      }

      // Ban edges that would recreate an already-found path with this root
      // (root vertices are banned above to keep paths simple).
      scratch.banned_edges.clear();
      for (const SwitchPath& p : result) {
        if (p.size() > i + 1 && std::equal(root.begin(), root.end(), p.begin())) {
          scratch.banned_edges.push_back(
              {std::min(p[i], p[i + 1]), std::max(p[i], p[i + 1])});
        }
      }

      auto spur_path = DijkstraSpur(graph, spur, dst, scratch);
      scratch.ResetTouched();
      if (!spur_path.ok()) {
        continue;
      }
      SwitchPath total = root;
      total.insert(total.end(), spur_path.value().begin() + 1, spur_path.value().end());
      if (seen.count(total) > 0) {
        continue;
      }
      seen.insert(total);
      auto cost = PathCost(graph, total);
      if (cost.ok()) {
        candidates.push({cost.value(), std::move(total)});
      }
    }
    for (size_t j = 0; j + 2 < prev.size(); ++j) {
      scratch.banned_vertex[prev[j]] = 0;
    }
    if (candidates.empty()) {
      break;
    }
    result.push_back(candidates.top().path);
    candidates.pop();
  }
  return result;
}

}  // namespace dumbnet
