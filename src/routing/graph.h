// Switch-level graph view over a Topology, used by all routing algorithms.
// Only up links appear; hosts are not vertices (they hang off their edge switch and
// are handled at tag-compilation time).
#ifndef DUMBNET_SRC_ROUTING_GRAPH_H_
#define DUMBNET_SRC_ROUTING_GRAPH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/topo/topology.h"

namespace dumbnet {

constexpr uint32_t kNoVertex = UINT32_MAX;
constexpr double kInfCost = std::numeric_limits<double>::infinity();

struct AdjEdge {
  uint32_t to = 0;        // peer switch index
  PortNum out_port = 0;   // port on this switch
  PortNum in_port = 0;    // port on the peer
  LinkIndex link = kInvalidLink;
  double weight = 1.0;
};

// Immutable adjacency snapshot. Rebuild after topology mutations (cheap: O(V+E)).
class SwitchGraph {
 public:
  // Snapshot of all switches and all *up* inter-switch links.
  explicit SwitchGraph(const Topology& topo);

  // Subgraph snapshot: only the listed links (still only those that are up).
  SwitchGraph(const Topology& topo, const std::vector<LinkIndex>& allowed_links);

  size_t size() const { return adj_.size(); }
  const std::vector<AdjEdge>& Neighbors(uint32_t s) const { return adj_[s]; }

  // Total directed edge count (2x the undirected link count).
  size_t edge_count() const;

  // Multiplies the weight of every adjacency that uses `link` by `factor`;
  // used to repel the backup path from the primary (Section 4.3).
  void ScaleLinkWeight(LinkIndex link, double factor);

 private:
  void AddLink(const Topology& topo, LinkIndex li);

  std::vector<std::vector<AdjEdge>> adj_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_GRAPH_H_
