// Switch-level graph view over a Topology, used by all routing algorithms.
// Only up links appear; hosts are not vertices (they hang off their edge switch and
// are handled at tag-compilation time).
//
// Stored in CSR (compressed sparse row) form: one flat edge array plus per-vertex
// offsets. Neighbor iteration is a contiguous scan, and copying a graph (the
// backup-path penalisation used to copy it) is two flat memcpy-able vectors.
// Neighbor order is identical to the old vector-of-vectors layout (link iteration
// order), so all randomized tie-breaking remains bit-for-bit reproducible.
#ifndef DUMBNET_SRC_ROUTING_GRAPH_H_
#define DUMBNET_SRC_ROUTING_GRAPH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/topo/topology.h"

namespace dumbnet {

constexpr uint32_t kNoVertex = UINT32_MAX;
constexpr double kInfCost = std::numeric_limits<double>::infinity();

struct AdjEdge {
  uint32_t to = 0;        // peer switch index
  PortNum out_port = 0;   // port on this switch
  PortNum in_port = 0;    // port on the peer
  LinkIndex link = kInvalidLink;
  double weight = 1.0;
};

// Immutable adjacency snapshot. Rebuild after topology mutations (cheap: O(V+E)).
class SwitchGraph {
 public:
  // Lightweight view of one vertex's adjacency row; iterable like a vector.
  class NeighborSpan {
   public:
    NeighborSpan(const AdjEdge* begin, const AdjEdge* end) : begin_(begin), end_(end) {}
    const AdjEdge* begin() const { return begin_; }
    const AdjEdge* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    const AdjEdge& operator[](size_t i) const { return begin_[i]; }

   private:
    const AdjEdge* begin_;
    const AdjEdge* end_;
  };

  // Snapshot of all switches and all *up* inter-switch links.
  explicit SwitchGraph(const Topology& topo);

  // Subgraph snapshot: only the listed links (still only those that are up).
  SwitchGraph(const Topology& topo, const std::vector<LinkIndex>& allowed_links);

  size_t size() const { return offsets_.size() - 1; }
  NeighborSpan Neighbors(uint32_t s) const {
    return NeighborSpan(edges_.data() + offsets_[s], edges_.data() + offsets_[s + 1]);
  }

  // Total directed edge count (2x the undirected link count).
  size_t edge_count() const { return edges_.size(); }

  // Multiplies the weight of every adjacency that uses `link` by `factor`;
  // used to repel the backup path from the primary (Section 4.3).
  void ScaleLinkWeight(LinkIndex link, double factor);

  // One-pass variant for a set of links (the whole primary path at once).
  void ScaleLinkWeights(const std::vector<LinkIndex>& links, double factor);

 private:
  void Build(const Topology& topo, const std::vector<LinkIndex>* allowed_links);

  std::vector<uint32_t> offsets_;  // size() + 1 entries; row s is [offsets_[s], offsets_[s+1])
  std::vector<AdjEdge> edges_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_GRAPH_H_
