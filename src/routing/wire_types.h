// Portable control-plane types exchanged between hosts and the controller. All are
// keyed by *discovered* identifiers (switch UIDs, host MACs) — never by simulator
// indices — because that is all a real DumbNet host could know.
#ifndef DUMBNET_SRC_ROUTING_WIRE_TYPES_H_
#define DUMBNET_SRC_ROUTING_WIRE_TYPES_H_

#include <cstdint>
#include <vector>

#include "src/topo/topology.h"

namespace dumbnet {

// A link between two discovered switches.
struct WireLink {
  uint64_t uid_a = 0;
  PortNum port_a = 0;
  uint64_t uid_b = 0;
  PortNum port_b = 0;

  bool operator==(const WireLink&) const = default;
};

// Where a host lives: its edge switch and port.
struct HostLocation {
  uint64_t mac = 0;
  uint64_t switch_uid = 0;
  PortNum port = 0;

  bool operator==(const HostLocation&) const = default;
};

// Portable path graph (Section 4.3): what a PathResponse carries.
struct WirePathGraph {
  uint64_t src_uid = 0;
  uint64_t dst_uid = 0;
  std::vector<uint64_t> primary;  // switch UIDs, src first
  std::vector<uint64_t> backup;
  std::vector<WireLink> links;    // induced subgraph links
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_WIRE_TYPES_H_
