// TopoDb: a topology store keyed by discovered switch UIDs and host MACs.
//
// Both sides of the control plane use it: the controller's global topology database
// is a TopoDb fed by the discovery service; each host's TopoCache wraps a (partial)
// TopoDb fed by path-graph responses. Internally it maintains a Topology mirror so
// all routing algorithms (shortest path, k-SP, path graph) run on it unchanged.
#ifndef DUMBNET_SRC_ROUTING_TOPO_DB_H_
#define DUMBNET_SRC_ROUTING_TOPO_DB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/routing/wire_types.h"
#include "src/topo/topology.h"
#include "src/util/result.h"

namespace dumbnet {

class TopoDb {
 public:
  TopoDb() = default;

  // Registers a switch if unseen; returns its local mirror index either way.
  // `num_ports` grows a previously seen switch if a higher port shows up.
  uint32_t EnsureSwitch(uint64_t uid, uint8_t num_ports = kMaxPorts);

  // Records a link; idempotent. Both switches are auto-registered. When the link
  // is already known, `revive` controls whether it is marked up again (the
  // authoritative patch path wants that; path-graph merges must NOT resurrect a
  // link the local observation channel has marked down, or the merged-in state
  // would depend on whether the merge arrived before or after the down event).
  Status AddLink(const WireLink& link, bool revive = true);

  // Marks the link at (uid, port) up/down. Unknown attach points are ignored (a
  // notification can outrun the patch that introduces the link).
  void SetLinkState(uint64_t uid, PortNum port, bool up);

  // Records (or moves) a host.
  void UpsertHost(const HostLocation& loc);

  // Merges a path graph received from the controller: its switches and links all
  // become part of this db. New links are inserted up; links already known keep
  // their current state (link *state* flows through the observation channel —
  // gossip events and patches — never through structure merges).
  Status MergePathGraph(const WirePathGraph& graph);

  // --- Lookups ---------------------------------------------------------------
  bool KnowsSwitch(uint64_t uid) const { return uid_to_index_.count(uid) > 0; }
  Result<uint32_t> IndexOf(uint64_t uid) const;
  uint64_t UidOf(uint32_t index) const { return index_to_uid_[index]; }
  Result<HostLocation> LocateHost(uint64_t mac) const;
  std::vector<HostLocation> Directory() const;

  size_t switch_count() const { return index_to_uid_.size(); }
  size_t host_count() const { return hosts_.size(); }
  size_t link_count() const { return mirror_.link_count(); }

  // True if a link between (uid_a, port_a) and (uid_b, port_b) is recorded.
  bool HasLink(const WireLink& link) const;

  // The full link descriptor plugged into (uid, port), if any.
  Result<WireLink> LinkAt(uint64_t uid, PortNum port) const;

  // The Topology mirror routing algorithms run against. Switch indices in the
  // mirror correspond to UidOf()/IndexOf().
  const Topology& mirror() const { return mirror_; }

  // Monotonic *mirror* mutation counter: bumped exactly when the switch graph
  // changes (new switch, link added/detached, link state flipped). Host upserts
  // and no-op link re-adds/re-revives leave it alone, so caches derived from
  // the mirror (adjacency snapshots, SSSP trees, wire path graphs) stay valid
  // through the host-directory churn of a large bring-up. Note it is
  // per-instance: replacing a TopoDb wholesale resets the numbering, so caches
  // must also be dropped when the object itself changes.
  uint64_t version() const { return version_; }

  // Converts a mirror-index path to UIDs and back.
  std::vector<uint64_t> PathToUids(const std::vector<uint32_t>& path) const;
  Result<std::vector<uint32_t>> PathFromUids(const std::vector<uint64_t>& path) const;

  // Compiles a UID path into routing tags: the out-port at each switch, then
  // `final_port` (the destination host's attach port). ø not included.
  Result<std::vector<PortNum>> CompileTagsForUidPath(const std::vector<uint64_t>& path,
                                                     PortNum final_port) const;

 private:
  Result<LinkIndex> FindLinkAt(uint64_t uid, PortNum port) const;

  Topology mirror_;
  std::unordered_map<uint64_t, uint32_t> uid_to_index_;
  std::vector<uint64_t> index_to_uid_;
  std::unordered_map<uint64_t, HostLocation> hosts_;
  uint64_t version_ = 0;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_TOPO_DB_H_
