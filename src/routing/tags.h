// Compilation between switch-level paths and DumbNet tag sequences.
//
// A tag sequence is what actually rides in the packet header: the output port at
// each switch hop, ending with the port that reaches the destination host. The ø
// terminator is appended by the packet layer, not stored here.
#ifndef DUMBNET_SRC_ROUTING_TAGS_H_
#define DUMBNET_SRC_ROUTING_TAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/routing/shortest_path.h"
#include "src/topo/topology.h"
#include "src/util/result.h"

namespace dumbnet {

using TagList = std::vector<PortNum>;

// Compiles a host-to-host route: src_host's uplink switch must be path.front() and
// dst_host's uplink switch must be path.back(). Each consecutive switch pair must
// share an up link. Returns one tag per switch on the path.
Result<TagList> CompilePathTags(const Topology& topo, uint32_t src_host,
                                const SwitchPath& path, uint32_t dst_host);

// Compiles only the inter-switch portion (no final host hop); used for probe
// messages that end at a switch.
Result<TagList> CompileSwitchTags(const Topology& topo, const SwitchPath& path);

// Human-readable "2-3-5-ø" form used in logs and tests (always shows the ø).
std::string TagsToString(const TagList& tags);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ROUTING_TAGS_H_
