#include "src/ctrl/replicated_log.h"

#include <memory>

namespace dumbnet {

ReplicatedLog::ReplicatedLog(Simulator* sim, ReplicatedLogConfig config)
    : sim_(sim), config_(config) {
  size_t n = config_.num_replicas == 0 ? 1 : config_.num_replicas;
  replica_logs_.resize(n);
  alive_.assign(n, true);
}

bool ReplicatedLog::HasQuorum() const {
  size_t live = 0;
  for (bool a : alive_) {
    live += a ? 1 : 0;
  }
  return live * 2 > alive_.size();
}

uint64_t ReplicatedLog::Append(const TopoEvent& event,
                               std::function<void(uint64_t)> on_commit) {
  uint64_t index = next_index_++;
  // Leader applies immediately.
  replica_logs_[0].push_back(event);

  // Followers receive the entry after half an RTT; their acks land after a full
  // one. We count acks and fire the commit callback at majority.
  auto acks = std::make_shared<size_t>(1);  // leader's own vote
  auto committed = std::make_shared<bool>(false);
  const size_t majority = replica_logs_.size() / 2 + 1;
  auto maybe_commit = [this, acks, committed, majority, index,
                       on_commit = std::move(on_commit)]() mutable {
    if (*committed || *acks < majority) {
      return;
    }
    *committed = true;
    if (index > committed_index_) {
      committed_index_ = index;
    }
    if (on_commit) {
      on_commit(index);
    }
  };
  maybe_commit();  // single-replica configuration commits instantly

  for (size_t r = 1; r < replica_logs_.size(); ++r) {
    if (!alive_[r]) {
      continue;
    }
    sim_->ScheduleAfter(config_.replica_rtt / 2, [this, r, event] {
      if (alive_[r]) {
        replica_logs_[r].push_back(event);
      }
    });
    sim_->ScheduleAfter(config_.replica_rtt, [this, r, acks, maybe_commit]() mutable {
      if (alive_[r]) {
        ++*acks;
        maybe_commit();
      }
    });
  }
  return index;
}

void ReplicatedLog::SetReplicaAlive(size_t replica, bool alive) {
  if (replica == 0 || replica >= alive_.size()) {
    return;
  }
  alive_[replica] = alive;
}

void ReplicatedLog::ApplyTo(const std::vector<TopoEvent>& log, TopoDb& db) {
  for (const TopoEvent& ev : log) {
    switch (ev.kind) {
      case TopoEvent::Kind::kLinkAdded:
        (void)db.AddLink(ev.link);
        break;
      case TopoEvent::Kind::kLinkDown:
        db.SetLinkState(ev.link.uid_a, ev.link.port_a, false);
        break;
      case TopoEvent::Kind::kLinkUp:
        db.SetLinkState(ev.link.uid_a, ev.link.port_a, true);
        break;
      case TopoEvent::Kind::kHostMoved:
        db.UpsertHost(ev.host);
        break;
    }
  }
}

}  // namespace dumbnet
