// Topology discovery service (paper Section 4.1). Runs on the controller host and
// discovers the entire fabric — switches, links, hosts — purely with source-routed
// probe messages through the dumb switches:
//
//   * attach probe   [0, p, ø]               — find our own port and switch ID
//   * host probe     F + [p] + R + [ø]       — a host at X.p replies along R
//   * link probe     F + [p, 0, q] + R + [ø] — the switch at X.p replies its ID out
//                                              port q; if q leads back to X the
//                                              reply rides R to us
//   * verify probe   F + [p, q, 0] + R + [ø] — resolve return-path ambiguity: the
//                                              switch behind N.q must be X itself
//
// where F is the tag path controller→X and R the tag path X→controller. The
// breadth-first expansion sends O(P^2) probes per switch, matching the paper's
// complexity analysis, and all controller work is paced through a single-server CPU
// model (the paper's stated bottleneck for discovery time).
#ifndef DUMBNET_SRC_CTRL_DISCOVERY_H_
#define DUMBNET_SRC_CTRL_DISCOVERY_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/host/host_agent.h"
#include "src/routing/topo_db.h"

namespace dumbnet {

struct DiscoveryConfig {
  // Highest port number to probe ("we can pass the maximum number of ports to the
  // discovery process as an argument").
  uint8_t max_ports = 64;
  // Controller CPU cost to emit / to process one PM. Discovery time scales with
  // these (Figure 8); calibrated so a 500-switch / 64-port network discovers in
  // the paper's ~70 s.
  TimeNs pm_send_cost = Us(30);
  TimeNs pm_recv_cost = Us(30);
  // A probe with no answer after this long is considered lost (unwired port).
  TimeNs probe_timeout = Ms(200);
};

struct DiscoveryStats {
  uint64_t probes_sent = 0;
  uint64_t replies_received = 0;
  uint64_t bounces = 0;
  uint64_t verifies_sent = 0;
  uint64_t rejected_wandered = 0;  // host replies with mismatched reply path
  uint64_t rejected_ambiguous = 0; // candidates whose verification failed
  TimeNs started_at = 0;
  TimeNs finished_at = 0;
};

class DiscoveryService {
 public:
  DiscoveryService(HostAgent* agent, DiscoveryConfig config = DiscoveryConfig());

  // Begins discovery; `on_complete` fires once the BFS has quiesced.
  void Start(std::function<void()> on_complete);

  // Re-probes a single port of a known switch (used after a link-up notification:
  // "the controller will probe the ports to discover and verify the newly added
  // links"). `done` fires when the probes quiesce.
  void ReprobePort(uint64_t uid, PortNum port, std::function<void()> done = nullptr);

  bool complete() const { return complete_; }
  const DiscoveryStats& stats() const { return stats_; }

  // The discovered fabric (valid once complete, usable incrementally before).
  TopoDb& db() { return db_; }
  const TopoDb& db() const { return db_; }

  // Controller's own attach point (valid once the attach phase resolves).
  uint64_t attach_switch_uid() const { return attach_uid_; }
  PortNum attach_port() const { return attach_port_; }

 private:
  enum class ProbeKind { kAttach, kHost, kLink, kVerify };

  struct ProbeCtx {
    ProbeKind kind;
    uint64_t x_uid = 0;  // switch being expanded
    PortNum p = 0;       // port on X under probe
    PortNum q = 0;       // candidate return port on the neighbor
    uint64_t n_uid = 0;  // neighbor id (verify probes only)
  };

  struct SwitchRecord {
    TagList forward;  // controller's switch -> this switch (ø excluded)
    TagList ret;      // this switch -> controller host (ø excluded)
    bool expanded = false;
  };

  // Runs `fn` when the controller CPU frees up, charging `cost`.
  void OnCpu(TimeNs cost, std::function<void()> fn);

  void SendProbe(TagList tags, ProbeCtx ctx);
  void HandleProbeEvent(const Packet& pkt);
  void HandleAttachReply(const ProbeCtx& ctx, uint64_t switch_uid);
  void HandleHostReply(const ProbeCtx& ctx, const ProbeReplyPayload& reply);
  void HandleLinkReply(const ProbeCtx& ctx, uint64_t n_uid);
  void HandleVerifyReply(const ProbeCtx& ctx, uint64_t replied_uid);
  void ExpandSwitch(uint64_t uid);
  void MaybeFinish();

  HostAgent* agent_;
  Simulator* sim_;
  DiscoveryConfig config_;
  TopoDb db_;

  uint64_t next_probe_id_ = 1;
  std::unordered_map<uint64_t, ProbeCtx> inflight_;
  std::unordered_map<uint64_t, SwitchRecord> switches_;
  // Ports already bound to a confirmed link: keys (uid << 8 | port).
  std::unordered_set<uint64_t> bound_ports_;
  uint64_t attach_uid_ = 0;
  PortNum attach_port_ = 0;
  bool attach_resolved_ = false;
  bool complete_ = false;
  TimeNs cpu_free_ = 0;
  std::function<void()> on_complete_;
  DiscoveryStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_CTRL_DISCOVERY_H_
