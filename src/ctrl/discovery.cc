#include "src/ctrl/discovery.h"

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {
namespace {

uint64_t PortKey(uint64_t uid, PortNum port) { return (uid << 8) | port; }

// Footprint salts/families. Everything substantive in discovery runs serialized
// on the prober's CPU queue; the conflict surface at batch granularity is the
// queue-head read-modify-write at enqueue time plus first-wins probe resolution.
constexpr uint64_t kSaltDiscCpu = 0xD15C;
constexpr uint64_t kSaltInflight = 0x1F17;
constexpr const char kFpDiscCpu[] =
    "single-server fifo cpu; service order shifts latency only";
constexpr const char kFpProbeFirstWins[] = "first-wins probe resolution";

}  // namespace

DiscoveryService::DiscoveryService(HostAgent* agent, DiscoveryConfig config)
    : agent_(agent), sim_(&agent->sim()), config_(config) {}

void DiscoveryService::Start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  stats_.started_at = sim_->Now();
  agent_->SetProbeEventHandler([this](const Packet& pkt) { HandleProbeEvent(pkt); });

  // Phase 1: find our own attach port and switch ID with combined probes
  // 0-1-ø, 0-2-ø, ... (Section 4.1: "combine port number probing and switch ID
  // query"). Only the probe whose port points back at us returns.
  for (PortNum p = 1; p <= config_.max_ports; ++p) {
    ProbeCtx ctx;
    ctx.kind = ProbeKind::kAttach;
    ctx.p = p;
    SendProbe({kIdQueryTag, p}, ctx);
  }
}

void DiscoveryService::OnCpu(TimeNs cost, std::function<void()> fn) {
  DN_FP_COMMUTES(kDiscovery, footprint::FpKey(agent_->mac(), kSaltDiscCpu), kFpDiscCpu);
  TimeNs start = std::max(sim_->Now(), cpu_free_);
  cpu_free_ = start + cost;
  sim_->ScheduleAt(cpu_free_, std::move(fn));
}

void DiscoveryService::SendProbe(TagList tags, ProbeCtx ctx) {
  uint64_t id = next_probe_id_++;
  DN_FP_COMMUTES(kDiscovery, footprint::FpKey(agent_->mac(), id, kSaltInflight),
                 kFpProbeFirstWins);
  inflight_.emplace(id, ctx);
  ++stats_.probes_sent;
  DN_COUNTER_INC("ctrl.probes_sent");
  DN_TRACE_EVENT(kController, kDiscovery, sim_->Now(), id, tags.size());
  OnCpu(config_.pm_send_cost, [this, id, tags = std::move(tags)] {
    DN_FP_SCOPE("disc.probe_send", id);
    TagList with_end = tags;
    with_end.push_back(kPathEndTag);
    agent_->SendTags(tags, kBroadcastMac, ProbePayload{id, agent_->mac(), with_end});
    sim_->ScheduleAfter(config_.probe_timeout, [this, id] {
      DN_FP_SCOPE("disc.probe_timeout", id);
      // Declare the loss through the CPU queue so a reply that already arrived
      // (and is waiting behind queued sends) is processed first. Erasing here
      // directly would drop replies whenever the CPU backlog exceeds the
      // timeout — on large port counts that silently truncated discovery.
      OnCpu(0, [this, id] {
        DN_FP_SCOPE("disc.probe_expire", id);
        DN_FP_COMMUTES(kDiscovery,
                       footprint::FpKey(agent_->mac(), id, kSaltInflight),
                       kFpProbeFirstWins);
        if (inflight_.erase(id) > 0) {
          MaybeFinish();
        }
      });
    });
  });
}

void DiscoveryService::HandleProbeEvent(const Packet& pkt) {
  // All reply processing is controller CPU work.
  OnCpu(config_.pm_recv_cost, [this, pkt] {
    DN_FP_SCOPE("disc.probe_reply", agent_->mac());
    if (const auto* id_reply = pkt.As<IdReplyPayload>()) {
      auto it = inflight_.find(id_reply->probe_id);
      if (it == inflight_.end()) {
        return;
      }
      ProbeCtx ctx = it->second;
      inflight_.erase(it);
      ++stats_.replies_received;
      switch (ctx.kind) {
        case ProbeKind::kAttach:
          HandleAttachReply(ctx, id_reply->switch_uid);
          break;
        case ProbeKind::kLink:
          HandleLinkReply(ctx, id_reply->switch_uid);
          break;
        case ProbeKind::kVerify:
          HandleVerifyReply(ctx, id_reply->switch_uid);
          break;
        case ProbeKind::kHost:
          break;  // an ID reply can never answer a host probe
      }
      MaybeFinish();
      return;
    }
    if (const auto* reply = pkt.As<ProbeReplyPayload>()) {
      auto it = inflight_.find(reply->probe_id);
      if (it == inflight_.end()) {
        return;
      }
      ProbeCtx ctx = it->second;
      inflight_.erase(it);
      ++stats_.replies_received;
      if (ctx.kind == ProbeKind::kHost) {
        HandleHostReply(ctx, *reply);
      }
      MaybeFinish();
      return;
    }
    if (const auto* probe = pkt.As<ProbePayload>()) {
      // One of our own probes bounced back (scenario ii in Section 3.3).
      ++stats_.bounces;
      if (inflight_.erase(probe->probe_id) > 0) {
        MaybeFinish();
      }
      return;
    }
  });
}

void DiscoveryService::HandleAttachReply(const ProbeCtx& ctx, uint64_t switch_uid) {
  if (attach_resolved_) {
    return;
  }
  attach_resolved_ = true;
  attach_uid_ = switch_uid;
  attach_port_ = ctx.p;
  db_.EnsureSwitch(switch_uid);
  db_.UpsertHost(HostLocation{agent_->mac(), switch_uid, ctx.p});
  SwitchRecord rec;
  rec.forward = {};
  rec.ret = {ctx.p};
  switches_.emplace(switch_uid, rec);
  ExpandSwitch(switch_uid);
}

void DiscoveryService::ExpandSwitch(uint64_t uid) {
  SwitchRecord& rec = switches_[uid];
  if (rec.expanded) {
    return;
  }
  rec.expanded = true;
  const TagList& f = rec.forward;
  const TagList& r = rec.ret;
  for (PortNum p = 1; p <= config_.max_ports; ++p) {
    // Host probe: F + [p] + R. A host at (uid, p) sees exactly R + ø left over and
    // replies along it.
    {
      TagList tags = f;
      tags.push_back(p);
      tags.insert(tags.end(), r.begin(), r.end());
      ProbeCtx ctx;
      ctx.kind = ProbeKind::kHost;
      ctx.x_uid = uid;
      ctx.p = p;
      SendProbe(std::move(tags), ctx);
    }
    // Link probes: F + [p, 0, q] + R for every candidate return port q.
    for (PortNum q = 1; q <= config_.max_ports; ++q) {
      TagList tags = f;
      tags.push_back(p);
      tags.push_back(kIdQueryTag);
      tags.push_back(q);
      tags.insert(tags.end(), r.begin(), r.end());
      ProbeCtx ctx;
      ctx.kind = ProbeKind::kLink;
      ctx.x_uid = uid;
      ctx.p = p;
      ctx.q = q;
      SendProbe(std::move(tags), ctx);
    }
  }
}

void DiscoveryService::HandleHostReply(const ProbeCtx& ctx, const ProbeReplyPayload& reply) {
  // The reply path must be exactly R + ø: if the probe wandered through another
  // switch before finding a host, at least one tag of R was consumed en route and
  // the echo is shorter. Rejecting those keeps host locations sound.
  const SwitchRecord& rec = switches_[ctx.x_uid];
  TagList expected = rec.ret;
  expected.push_back(kPathEndTag);
  if (reply.reply_path != expected) {
    ++stats_.rejected_wandered;
    return;
  }
  db_.UpsertHost(HostLocation{reply.responder_mac, ctx.x_uid, ctx.p});
}

void DiscoveryService::HandleLinkReply(const ProbeCtx& ctx, uint64_t n_uid) {
  if (bound_ports_.count(PortKey(ctx.x_uid, ctx.p)) > 0 ||
      bound_ports_.count(PortKey(n_uid, ctx.q)) > 0) {
    return;  // already bound by a confirmed candidate
  }
  // Candidate link X.p <-> N.q. The return path may be ambiguous (Section 4.1's
  // S1/S2 example), so verify: ask the ID of the switch behind N.q; it must be X.
  const SwitchRecord& rec = switches_[ctx.x_uid];
  TagList tags = rec.forward;
  tags.push_back(ctx.p);
  tags.push_back(ctx.q);
  tags.push_back(kIdQueryTag);
  tags.insert(tags.end(), rec.ret.begin(), rec.ret.end());
  ProbeCtx verify;
  verify.kind = ProbeKind::kVerify;
  verify.x_uid = ctx.x_uid;
  verify.p = ctx.p;
  verify.q = ctx.q;
  verify.n_uid = n_uid;
  ++stats_.verifies_sent;
  SendProbe(std::move(tags), verify);
}

void DiscoveryService::HandleVerifyReply(const ProbeCtx& ctx, uint64_t replied_uid) {
  if (replied_uid != ctx.x_uid) {
    ++stats_.rejected_ambiguous;
    return;
  }
  if (bound_ports_.count(PortKey(ctx.x_uid, ctx.p)) > 0 ||
      bound_ports_.count(PortKey(ctx.n_uid, ctx.q)) > 0) {
    return;
  }
  bound_ports_.insert(PortKey(ctx.x_uid, ctx.p));
  bound_ports_.insert(PortKey(ctx.n_uid, ctx.q));
  (void)db_.AddLink(WireLink{ctx.x_uid, ctx.p, ctx.n_uid, ctx.q});

  if (switches_.count(ctx.n_uid) == 0) {
    const SwitchRecord& x_rec = switches_[ctx.x_uid];
    SwitchRecord n_rec;
    n_rec.forward = x_rec.forward;
    n_rec.forward.push_back(ctx.p);
    n_rec.ret = {ctx.q};
    n_rec.ret.insert(n_rec.ret.end(), x_rec.ret.begin(), x_rec.ret.end());
    switches_.emplace(ctx.n_uid, n_rec);
    ExpandSwitch(ctx.n_uid);
  }
}

void DiscoveryService::ReprobePort(uint64_t uid, PortNum port, std::function<void()> done) {
  auto it = switches_.find(uid);
  if (it == switches_.end()) {
    if (done) {
      done();
    }
    return;
  }
  complete_ = false;
  if (done) {
    // Chain, never replace: a reprobe triggered while initial discovery is
    // still in flight (a link coming up mid-bring-up) must not discard the
    // Start() completion callback — losing it strands every host
    // unbootstrapped with no retry.
    if (on_complete_) {
      on_complete_ = [prev = std::move(on_complete_), done = std::move(done)] {
        prev();
        done();
      };
    } else {
      on_complete_ = std::move(done);
    }
  }
  // Unbind both sides of whatever used to be plugged in here so the rewired link
  // can be recorded.
  auto old = db_.LinkAt(uid, port);
  if (old.ok()) {
    bound_ports_.erase((old.value().uid_a << 8) | old.value().port_a);
    bound_ports_.erase((old.value().uid_b << 8) | old.value().port_b);
  }
  bound_ports_.erase(PortKey(uid, port));

  const SwitchRecord& rec = it->second;
  {
    TagList tags = rec.forward;
    tags.push_back(port);
    tags.insert(tags.end(), rec.ret.begin(), rec.ret.end());
    ProbeCtx ctx;
    ctx.kind = ProbeKind::kHost;
    ctx.x_uid = uid;
    ctx.p = port;
    SendProbe(std::move(tags), ctx);
  }
  for (PortNum q = 1; q <= config_.max_ports; ++q) {
    TagList tags = rec.forward;
    tags.push_back(port);
    tags.push_back(kIdQueryTag);
    tags.push_back(q);
    tags.insert(tags.end(), rec.ret.begin(), rec.ret.end());
    ProbeCtx ctx;
    ctx.kind = ProbeKind::kLink;
    ctx.x_uid = uid;
    ctx.p = port;
    ctx.q = q;
    SendProbe(std::move(tags), ctx);
  }
}

void DiscoveryService::MaybeFinish() {
  if (complete_ || !attach_resolved_ || !inflight_.empty()) {
    return;
  }
  complete_ = true;
  stats_.finished_at = sim_->Now();
  DN_INFO << "discovery complete: " << db_.switch_count() << " switches, "
          << db_.link_count() << " links, " << db_.host_count() << " hosts in "
          << ToSec(stats_.finished_at - stats_.started_at) << "s ("
          << stats_.probes_sent << " PMs)";
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb();
  }
}

}  // namespace dumbnet
