// ControllerService (paper Sections 4.2, 4.3): the centralized control plane. Runs
// on one host. Maintains the global topology database, answers path queries with
// path graphs, bootstraps hosts after discovery, and implements stage 2 of failure
// handling (the asynchronous topology patch flood). Optionally mirrors every
// topology event into a ReplicatedLog so standby controllers stay consistent
// (the paper uses ZooKeeper for this).
#ifndef DUMBNET_SRC_CTRL_CONTROLLER_H_
#define DUMBNET_SRC_CTRL_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/ctrl/discovery.h"
#include "src/ctrl/replicated_log.h"
#include "src/host/host_agent.h"
#include "src/routing/path_graph.h"
#include "src/routing/topo_db.h"

namespace dumbnet {

struct ControllerConfig {
  PathGraphParams path_graph;
  // Ablation knobs: strip the detour subgraph / the backup path from responses
  // (leaving a plain single-route cache at the hosts).
  bool send_detours = true;
  bool send_backup = true;
  // CPU cost to serve one path query (single-server model; produces the paper's
  // Figure 10 cold-path tail under concurrent queries).
  TimeNs query_cost = Us(30);
  // Aggregation window before flooding a topology patch (stage 2).
  TimeNs patch_aggregation = Ms(2);
  uint64_t rng_seed = 7;
};

struct ControllerStats {
  uint64_t queries_served = 0;
  uint64_t queries_failed = 0;
  uint64_t bootstraps_sent = 0;
  uint64_t link_events = 0;
  uint64_t patches_sent = 0;
  uint64_t reprobes = 0;
};

class ControllerService {
 public:
  ControllerService(HostAgent* agent, ControllerConfig config = ControllerConfig(),
                    DiscoveryConfig discovery_config = DiscoveryConfig());

  // Full bring-up: run discovery, then bootstrap every host. `on_ready` fires when
  // all bootstraps are on the wire.
  void Start(std::function<void()> on_ready);

  // Bench/test path: adopt a ground-truth topology directly (skipping the probing
  // phase) and bootstrap hosts. The controller host is `agent`'s host.
  void AdoptTopology(const Topology& truth);

  // Failover path: a standby promotes itself with a database rebuilt from the
  // replicated log (ReplicatedLog::ApplyTo), re-bootstraps every host (they learn
  // the new controller's identity and path) and starts serving.
  void AdoptDatabase(TopoDb db);

  // Stops serving queries (simulates a controller crash; hosts' requests go
  // unanswered until a standby takes over).
  void Stop() { ready_ = false; }
  bool serving() const { return ready_; }

  TopoDb& db() { return db_; }
  DiscoveryService& discovery() { return discovery_; }
  const ControllerStats& stats() const { return stats_; }

  // Attach a replicated log: every link event and patch is appended (what the
  // paper stores in ZooKeeper for the standby controllers).
  void AttachLog(ReplicatedLog* log) { log_ = log; }

 private:
  bool HandleControl(const Packet& pkt);
  void ServePathRequest(const PathRequestPayload& req);
  void OnLinkEvent(const LinkEventPayload& ev);
  void FlushPatch();
  void BootstrapHosts();
  // Tag path from the controller to a host (compiled on the global db).
  Result<TagList> TagsToHost(const HostLocation& dst);

  HostAgent* agent_;
  Simulator* sim_;
  ControllerConfig config_;
  TopoDb db_;
  DiscoveryService discovery_;
  Rng rng_;
  ReplicatedLog* log_ = nullptr;

  uint64_t controller_switch_uid_ = 0;
  PortNum controller_port_ = 0;
  bool ready_ = false;
  TimeNs cpu_free_ = 0;

  // Pending patch accumulation.
  std::vector<WireLink> pending_removed_;
  std::vector<WireLink> pending_added_;
  TimeNs pending_origin_ = 0;
  bool patch_scheduled_ = false;
  uint64_t patch_seq_ = 0;

  ControllerStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_CTRL_CONTROLLER_H_
