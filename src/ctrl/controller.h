// ControllerService (paper Sections 4.2, 4.3): the centralized control plane. Runs
// on one host. Maintains the global topology database, answers path queries with
// path graphs, bootstraps hosts after discovery, and implements stage 2 of failure
// handling (the asynchronous topology patch flood). Optionally mirrors every
// topology event into a ReplicatedLog so standby controllers stay consistent
// (the paper uses ZooKeeper for this).
#ifndef DUMBNET_SRC_CTRL_CONTROLLER_H_
#define DUMBNET_SRC_CTRL_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/ctrl/discovery.h"
#include "src/ctrl/replicated_log.h"
#include "src/host/host_agent.h"
#include "src/routing/path_graph.h"
#include "src/routing/sssp_cache.h"
#include "src/routing/topo_db.h"
#include "src/util/thread_pool.h"

namespace dumbnet {

struct ControllerConfig {
  PathGraphParams path_graph;
  // Ablation knobs: strip the detour subgraph / the backup path from responses
  // (leaving a plain single-route cache at the hosts).
  bool send_detours = true;
  bool send_backup = true;
  // CPU cost to serve one path query (single-server model; produces the paper's
  // Figure 10 cold-path tail under concurrent queries).
  TimeNs query_cost = Us(30);
  // Aggregation window before flooding a topology patch (stage 2).
  TimeNs patch_aggregation = Ms(2);
  uint64_t rng_seed = 7;
};

struct ControllerStats {
  uint64_t queries_served = 0;
  uint64_t queries_failed = 0;
  uint64_t bootstraps_sent = 0;
  uint64_t link_events = 0;
  uint64_t patches_sent = 0;
  uint64_t reprobes = 0;
  // Served-wire-graph memoization (see ServePathRequest).
  uint64_t wire_cache_hits = 0;
  uint64_t wire_cache_misses = 0;
};

class ControllerService {
 public:
  ControllerService(HostAgent* agent, ControllerConfig config = ControllerConfig(),
                    DiscoveryConfig discovery_config = DiscoveryConfig());

  // Full bring-up: run discovery, then bootstrap every host. `on_ready` fires when
  // all bootstraps are on the wire.
  void Start(std::function<void()> on_ready);

  // Bench/test path: adopt a ground-truth topology directly (skipping the probing
  // phase) and bootstrap hosts. The controller host is `agent`'s host.
  void AdoptTopology(const Topology& truth);

  // Failover path: a standby promotes itself with a database rebuilt from the
  // replicated log (ReplicatedLog::ApplyTo), re-bootstraps every host (they learn
  // the new controller's identity and path) and starts serving.
  void AdoptDatabase(TopoDb db);

  // Stops serving queries (simulates a controller crash; hosts' requests go
  // unanswered until a standby takes over).
  void Stop() { ready_ = false; }
  bool serving() const { return ready_; }

  TopoDb& db() { return db_; }
  DiscoveryService& discovery() { return discovery_; }
  const ControllerStats& stats() const { return stats_; }

  // Attach a replicated log: every link event and patch is appended (what the
  // paper stores in ZooKeeper for the standby controllers).
  void AttachLog(ReplicatedLog* log) { log_ = log; }

  // Batch path-graph precompute: builds the wire path graph from `src_mac`'s edge
  // switch to every destination's edge switch in one pass — the primaries share a
  // single cached SSSP tree and the per-destination detour/backup work fans out
  // over an internal thread pool. Destinations that cannot be served (unknown MAC,
  // disconnected switch) are silently skipped; the returned vector holds one entry
  // per successful destination, in input order. Errors only when `src_mac` itself
  // is unknown.
  Result<std::vector<WirePathGraph>> PrecomputePathGraphs(
      uint64_t src_mac, const std::vector<uint64_t>& dst_macs);

  // Routing-cache observability (tests + benchmarks).
  const SsspCache::Stats& sssp_cache_stats() const { return sssp_cache_.stats(); }

 private:
  // The adjacency snapshot for db_.mirror(), rebuilt only when the db version
  // moved. Valid until the next db_ mutation.
  const SwitchGraph& RoutingGraph();
  // Drops the graph snapshot and all cached SSSP trees. Must be called whenever
  // db_ is *replaced* (version numbering restarts); plain mutations are caught by
  // the version check in RoutingGraph().
  void InvalidateRoutingCaches();
  // Converts a built PathGraph to its wire form under the current config.
  std::shared_ptr<WirePathGraph> MakeWireGraph(const PathGraph& pg, uint64_t src_uid,
                                               uint64_t dst_uid);
  bool HandleControl(const Packet& pkt);
  void ServePathRequest(const PathRequestPayload& req);
  void OnLinkEvent(const LinkEventPayload& ev);
  void FlushPatch();
  void BootstrapHosts();
  // Tag path from the controller to a host (compiled on the global db). `rng`
  // breaks equal-cost ties: bulk work (bootstraps) passes the shared stream,
  // query serving passes a per-query stream derived from (requester, dst,
  // attempt) so a response's content never depends on service order.
  Result<TagList> TagsToHost(const HostLocation& dst, Rng* rng);

  HostAgent* agent_;
  Simulator* sim_;
  ControllerConfig config_;
  TopoDb db_;
  DiscoveryService discovery_;
  Rng rng_;
  ReplicatedLog* log_ = nullptr;

  // Routing caches, all keyed on db_.version() (see RoutingGraph()).
  std::unique_ptr<SwitchGraph> graph_cache_;
  uint64_t graph_version_ = kNoGraphVersion;
  SsspCache sssp_cache_;
  SsspScratch tags_scratch_;
  PathGraphScratch pg_scratch_;
  // Served wire graphs memoized per (src switch, dst switch, attempt), valid for
  // one db version. Hosts behind the same edge switch asking for the same
  // destination switch share one immutable graph object. Bounded by an epoch
  // reset (full clear) at kWireCacheMaxEntries — deterministic, no LRU clocks.
  std::unordered_map<uint64_t, std::shared_ptr<WirePathGraph>> wire_cache_;
  uint64_t wire_cache_version_ = kNoGraphVersion;
  static constexpr size_t kWireCacheMaxEntries = 65536;
  std::unique_ptr<ThreadPool> pool_;  // lazily created by PrecomputePathGraphs

  static constexpr uint64_t kNoGraphVersion = UINT64_MAX;

  uint64_t controller_switch_uid_ = 0;
  PortNum controller_port_ = 0;
  bool ready_ = false;
  TimeNs cpu_free_ = 0;

  // Pending patch accumulation.
  std::vector<WireLink> pending_removed_;
  std::vector<WireLink> pending_added_;
  TimeNs pending_origin_ = 0;
  bool patch_scheduled_ = false;
  uint64_t patch_seq_ = 0;

  ControllerStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_CTRL_CONTROLLER_H_
