#include "src/ctrl/controller.h"

#include <algorithm>

#include "src/analysis/audit.h"
#include "src/analysis/invariants.h"
#include "src/routing/graph.h"
#include "src/routing/shortest_path.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {
namespace {

// Footprint entity salts/families for the controller's shared state. Entities are
// keyed by the controller host's mac so concurrent controllers never collide.
constexpr uint64_t kSaltCtrlDbVersion = 0xDBE5;
constexpr uint64_t kSaltCtrlCpu = 0xC901;
constexpr uint64_t kSaltPatchPending = 0x9A5B;
constexpr const char kFpCpuQueue[] =
    "single-server fifo cpu; service order shifts latency only";
constexpr const char kFpDbBump[] = "db version bump";
constexpr const char kFpPatchAccum[] =
    "patch accumulation; delivery is lww-merged at hosts";

uint64_t CtrlEdgeCell(uint64_t mac, const WireLink& l) {
  return footprint::FpKey(mac, footprint::FpKey(std::min(l.uid_a, l.uid_b),
                                                std::max(l.uid_a, l.uid_b)));
}

}  // namespace

ControllerService::ControllerService(HostAgent* agent, ControllerConfig config,
                                     DiscoveryConfig discovery_config)
    : agent_(agent),
      sim_(&agent->sim()),
      config_(config),
      discovery_(agent, discovery_config),
      rng_(config.rng_seed) {
  agent_->SetControlHandler([this](const Packet& pkt) { return HandleControl(pkt); });
}

void ControllerService::Start(std::function<void()> on_ready) {
  discovery_.Start([this, on_ready = std::move(on_ready)] {
    db_ = discovery_.db();  // snapshot; further updates flow through both
    InvalidateRoutingCaches();
    controller_switch_uid_ = discovery_.attach_switch_uid();
    controller_port_ = discovery_.attach_port();
    BootstrapHosts();
    DN_INFO << "controller ready: " << stats_.bootstraps_sent
            << " bootstraps sent, attach uid=" << controller_switch_uid_
            << " port=" << int{controller_port_};
    ready_ = true;
    if (on_ready) {
      on_ready();
    }
  });
}

void ControllerService::AdoptTopology(const Topology& truth) {
  for (LinkIndex li = 0; li < truth.link_count(); ++li) {
    const Link& l = truth.link_at(li);
    if (l.detached) {
      continue;
    }
    if (l.a.node.is_switch() && l.b.node.is_switch()) {
      WireLink wl{truth.switch_at(l.a.node.index).uid, l.a.port,
                  truth.switch_at(l.b.node.index).uid, l.b.port};
      (void)db_.AddLink(wl);
      if (!l.up) {
        db_.SetLinkState(wl.uid_a, wl.port_a, false);
      }
    } else {
      const Endpoint& host_end = l.a.node.is_host() ? l.a : l.b;
      const Endpoint& sw_end = l.a.node.is_host() ? l.b : l.a;
      db_.UpsertHost(HostLocation{truth.host_at(host_end.node.index).mac,
                                  truth.switch_at(sw_end.node.index).uid, sw_end.port});
    }
  }
  auto self = db_.LocateHost(agent_->mac());
  if (self.ok()) {
    controller_switch_uid_ = self.value().switch_uid;
    controller_port_ = self.value().port;
  }
  BootstrapHosts();
  ready_ = true;
}

void ControllerService::AdoptDatabase(TopoDb db) {
  db_ = std::move(db);
  InvalidateRoutingCaches();
  auto self = db_.LocateHost(agent_->mac());
  if (self.ok()) {
    controller_switch_uid_ = self.value().switch_uid;
    controller_port_ = self.value().port;
  }
  BootstrapHosts();
  ready_ = true;
}

const SwitchGraph& ControllerService::RoutingGraph() {
  if (graph_cache_ == nullptr || graph_version_ != db_.version() ||
      graph_version_ == kNoGraphVersion) {
    graph_cache_ = std::make_unique<SwitchGraph>(db_.mirror());
    graph_version_ = db_.version();
  }
  return *graph_cache_;
}

void ControllerService::InvalidateRoutingCaches() {
  graph_cache_.reset();
  graph_version_ = kNoGraphVersion;
  sssp_cache_.Invalidate();
  wire_cache_.clear();
  wire_cache_version_ = kNoGraphVersion;
}

Result<TagList> ControllerService::TagsToHost(const HostLocation& dst, Rng* rng) {
  auto src_idx = db_.IndexOf(controller_switch_uid_);
  auto dst_idx = db_.IndexOf(dst.switch_uid);
  if (!src_idx.ok() || !dst_idx.ok()) {
    return Error(ErrorCode::kNotFound, "controller or destination switch unknown");
  }
  // Per-call randomized Dijkstra (scratch-based, so no allocation): response tags
  // must re-randomize on every retry so repeated queries dodge links the
  // controller has not yet learned are dead. The SSSP-tree cache is reserved for
  // bulk work over a settled topology (bootstraps, batch precompute).
  auto path = ShortestPathScaled(RoutingGraph(), src_idx.value(), dst_idx.value(), rng,
                                 tags_scratch_, nullptr);
  if (!path.ok()) {
    return path.error();
  }
  auto tags = db_.CompileTagsForUidPath(db_.PathToUids(path.value()), dst.port);
  if (!tags.ok()) {
    return tags.error();
  }
  return tags.value();
}

void ControllerService::BootstrapHosts() {
  auto directory = std::make_shared<std::vector<HostLocation>>(db_.Directory());
  std::sort(directory->begin(), directory->end(),
            [](const HostLocation& a, const HostLocation& b) { return a.mac < b.mac; });
  HostLocation controller_loc{agent_->mac(), controller_switch_uid_, controller_port_};
  for (const HostLocation& loc : *directory) {
    BootstrapPayload boot;
    boot.self = loc;
    boot.controller_mac = agent_->mac();
    boot.controller_location = controller_loc;
    boot.directory = directory;
    if (loc.mac == agent_->mac()) {
      boot.path_to_controller = {};  // co-located
      agent_->ApplyBootstrap(boot);
      continue;
    }
    auto to_controller = db_.IndexOf(loc.switch_uid);
    auto ctrl_idx = db_.IndexOf(controller_switch_uid_);
    if (!to_controller.ok() || !ctrl_idx.ok()) {
      continue;
    }
    // Per-host randomized paths, deliberately NOT the shared SSSP tree: each
    // host's stored path-to-controller must be decorrelated from the others', or
    // one link failure strands every host's control channel at once. The cached
    // adjacency snapshot plus scratch still makes this allocation-free.
    auto path = ShortestPathScaled(RoutingGraph(), to_controller.value(), ctrl_idx.value(),
                                   &rng_, tags_scratch_, nullptr);
    if (!path.ok()) {
      continue;
    }
    auto up_tags = db_.CompileTagsForUidPath(db_.PathToUids(path.value()), controller_port_);
    if (!up_tags.ok()) {
      continue;
    }
    boot.path_to_controller = std::move(up_tags.value());

    auto down_tags = TagsToHost(loc, &rng_);
    if (!down_tags.ok()) {
      continue;
    }
    ++stats_.bootstraps_sent;
    DN_FP_COMMUTES(kCtrlCpu, footprint::FpKey(agent_->mac(), kSaltCtrlCpu),
                   kFpCpuQueue);
    TimeNs start = std::max(sim_->Now(), cpu_free_);
    cpu_free_ = start + config_.query_cost;
    sim_->ScheduleAt(cpu_free_, [this, tags = std::move(down_tags.value()), mac = loc.mac,
                                 boot = std::move(boot)] {
      agent_->SendTags(tags, mac, boot);
    });
  }
}

bool ControllerService::HandleControl(const Packet& pkt) {
  if (const auto* req = pkt.As<PathRequestPayload>()) {
    if (!ready_) {
      return true;  // swallowed; the host's retry will find us ready
    }
    PathRequestPayload copy = *req;
    // The CPU queue head is a read-modify-write, but service order only shifts
    // latency: each query's response content is derived from (requester, dst,
    // attempt), never from the shared rng stream — see ServePathRequest.
    DN_FP_COMMUTES(kCtrlCpu, footprint::FpKey(agent_->mac(), kSaltCtrlCpu),
                   kFpCpuQueue);
    TimeNs start = std::max(sim_->Now(), cpu_free_);
    cpu_free_ = start + config_.query_cost;
    sim_->ScheduleAt(cpu_free_, [this, copy] { ServePathRequest(copy); });
    return true;
  }
  if (const auto* ev = pkt.As<LinkEventPayload>()) {
    OnLinkEvent(*ev);
    return false;  // the host agent also reacts (it is a host like any other)
  }
  return false;
}

void ControllerService::ServePathRequest(const PathRequestPayload& req) {
  DN_FP_SCOPE("ctrl.path_serve", req.requester_mac);
  DN_FP_READ(kCtrlDb, footprint::FpKey(agent_->mac(), kSaltCtrlDbVersion));
  auto requester = db_.LocateHost(req.requester_mac);
  auto dst = db_.LocateHost(req.dst_mac);
  if (!requester.ok() || !dst.ok()) {
    ++stats_.queries_failed;
    return;
  }
  auto src_idx = db_.IndexOf(requester.value().switch_uid);
  auto dst_idx = db_.IndexOf(dst.value().switch_uid);
  if (!src_idx.ok() || !dst_idx.ok()) {
    ++stats_.queries_failed;
    return;
  }
  // The served graph's tie-breaks draw from a stream seeded by (src switch,
  // dst switch, attempt) — never the shared rng_, so CPU-queue service order
  // cannot leak into route content. That makes the graph a pure function of
  // (switch pair, attempt, db snapshot), and therefore memoizable: hosts behind
  // the same edge switch asking for the same destination switch get one shared
  // immutable graph. Retries still decorrelate through `attempt`, and response
  // *tags* stay per-requester below.
  const uint32_t si = src_idx.value();
  const uint32_t di = dst_idx.value();
  const bool cacheable =
      si < (1u << 24) && di < (1u << 24) && req.attempt < (1u << 16);
  uint64_t cache_key = 0;
  std::shared_ptr<WirePathGraph> wire;
  if (cacheable) {
    if (wire_cache_version_ != db_.version()) {
      wire_cache_.clear();
      wire_cache_version_ = db_.version();
    }
    cache_key = (static_cast<uint64_t>(si) << 40) | (static_cast<uint64_t>(di) << 16) |
                req.attempt;
    auto it = wire_cache_.find(cache_key);
    if (it != wire_cache_.end()) {
      ++stats_.wire_cache_hits;
      wire = it->second;
    }
  }
  if (wire == nullptr) {
    Rng graph_rng(config_.rng_seed ^
                  footprint::FpKey(requester.value().switch_uid,
                                   dst.value().switch_uid, req.attempt));
    auto pg = BuildPathGraph(db_.mirror(), RoutingGraph(), si, di, config_.path_graph,
                             &graph_rng, pg_scratch_);
    if (!pg.ok()) {
      ++stats_.queries_failed;
      return;
    }
    wire = MakeWireGraph(pg.value(), requester.value().switch_uid,
                         dst.value().switch_uid);
    if (cacheable) {
      ++stats_.wire_cache_misses;
      if (wire_cache_.size() >= kWireCacheMaxEntries) {
        wire_cache_.clear();  // epoch reset: bounded memory, still deterministic
      }
      wire_cache_.emplace(cache_key, wire);
    }
  }

  Rng query_rng(config_.rng_seed ^
                footprint::FpKey(req.requester_mac, req.dst_mac, req.attempt));
  auto tags = TagsToHost(requester.value(), &query_rng);
  if (!tags.ok()) {
    ++stats_.queries_failed;
    return;
  }
  ++stats_.queries_served;
  DN_COUNTER_INC("ctrl.queries_served");
  DN_TRACE_EVENT(kController, kPathServe, sim_->Now(), req.requester_mac, req.dst_mac);
  PathResponsePayload resp{req.dst_mac, dst.value(), std::move(wire)};
  agent_->SendTags(std::move(tags.value()), req.requester_mac, std::move(resp));
}

std::shared_ptr<WirePathGraph> ControllerService::MakeWireGraph(const PathGraph& pg,
                                                                uint64_t src_uid,
                                                                uint64_t dst_uid) {
  auto wire = std::make_shared<WirePathGraph>();
  wire->src_uid = src_uid;
  wire->dst_uid = dst_uid;
  wire->primary = db_.PathToUids(pg.primary);
  if (config_.send_backup) {
    wire->backup = db_.PathToUids(pg.backup);
  }
  auto push_link = [&](LinkIndex li) {
    const Link& l = db_.mirror().link_at(li);
    wire->links.push_back(WireLink{db_.UidOf(l.a.node.index), l.a.port,
                                   db_.UidOf(l.b.node.index), l.b.port});
  };
  if (config_.send_detours) {
    wire->links.reserve(pg.links.size());
    for (LinkIndex li : pg.links) {
      push_link(li);
    }
  } else {
    // Primary (and optional backup) edges only: no local rerouting material.
    auto push_path_links = [&](const SwitchPath& path) {
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        const SwitchInfo& sw = db_.mirror().switch_at(path[i]);
        for (PortNum p = 1; p <= sw.num_ports; ++p) {
          LinkIndex li = sw.port_link[p];
          if (li == kInvalidLink) {
            continue;
          }
          const Link& l = db_.mirror().link_at(li);
          const Endpoint& peer = l.Peer(NodeId::Switch(path[i]));
          if (l.up && peer.node.is_switch() && peer.node.index == path[i + 1]) {
            push_link(li);
            break;
          }
        }
      }
    };
    push_path_links(pg.primary);
    if (config_.send_backup) {
      push_path_links(pg.backup);
    }
  }

  // What leaves the controller must be a well-formed path graph (Section 4.3);
  // a malformed one silently blackholes the requester's traffic later. The
  // detour-stripped ablation keeps hops of the full subgraph without their
  // links, so only audit the complete form.
  DUMBNET_ASSERT(!config_.send_detours || AuditWirePathGraph(*wire).ok(),
                 "controller built a malformed path graph");
  return wire;
}

Result<std::vector<WirePathGraph>> ControllerService::PrecomputePathGraphs(
    uint64_t src_mac, const std::vector<uint64_t>& dst_macs) {
  auto src_host = db_.LocateHost(src_mac);
  if (!src_host.ok()) {
    return src_host.error();
  }
  auto src_idx = db_.IndexOf(src_host.value().switch_uid);
  if (!src_idx.ok()) {
    return src_idx.error();
  }

  // Resolve destinations first; unknown MACs are skipped, not fatal.
  std::vector<uint32_t> dst_switches;
  std::vector<uint64_t> dst_uids;
  dst_switches.reserve(dst_macs.size());
  dst_uids.reserve(dst_macs.size());
  for (uint64_t mac : dst_macs) {
    auto loc = db_.LocateHost(mac);
    if (!loc.ok()) {
      continue;
    }
    auto idx = db_.IndexOf(loc.value().switch_uid);
    if (!idx.ok()) {
      continue;
    }
    dst_switches.push_back(idx.value());
    dst_uids.push_back(loc.value().switch_uid);
  }

  const SwitchGraph& graph = RoutingGraph();
  const SsspTree& tree = sssp_cache_.Get(graph, graph_version_, src_idx.value(), &rng_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>();
  }
  auto built = BuildPathGraphBatch(db_.mirror(), graph, tree, dst_switches,
                                   config_.path_graph, &rng_, pool_.get());

  std::vector<WirePathGraph> out;
  out.reserve(built.size());
  for (size_t i = 0; i < built.size(); ++i) {
    if (!built[i].ok()) {
      continue;  // e.g. a destination cut off from the source
    }
    out.push_back(*MakeWireGraph(built[i].value(), src_host.value().switch_uid,
                                 dst_uids[i]));
  }
  return out;
}

void ControllerService::OnLinkEvent(const LinkEventPayload& ev) {
  ++stats_.link_events;
  DN_COUNTER_INC("ctrl.link_events");
  DN_TRACE_EVENT(kController, kDiscovery, sim_->Now(), ev.switch_uid, ev.port);
  DN_FP_COMMUTES(kCtrlDb, footprint::FpKey(agent_->mac(), kSaltPatchPending),
                 kFpPatchAccum);
  DN_FP_COMMUTES(kCtrlDb, footprint::FpKey(agent_->mac(), kSaltCtrlDbVersion),
                 kFpDbBump);
  if (pending_removed_.empty() && pending_added_.empty()) {
    pending_origin_ = ev.origin_time;
  }
  if (!ev.up) {
    auto link = db_.LinkAt(ev.switch_uid, ev.port);
    if (link.ok()) {
      DN_FP_WRITE(kCtrlDb, CtrlEdgeCell(agent_->mac(), link.value()));
      DN_FP_WRITE(kCtrlLog, CtrlEdgeCell(agent_->mac(), link.value()));
      db_.SetLinkState(ev.switch_uid, ev.port, false);
      discovery_.db().SetLinkState(ev.switch_uid, ev.port, false);
      pending_removed_.push_back(link.value());
      if (log_ != nullptr) {
        TopoEvent tev;
        tev.kind = TopoEvent::Kind::kLinkDown;
        tev.link = link.value();
        log_->Append(tev);
      }
    }
  } else {
    // Link-up: re-probe the port to discover/verify what is now plugged in, then
    // advertise it (Section 4.2, link addition).
    if (discovery_.db().switch_count() == 0) {
      // Adopted-topology mode (no prober): trust the notification for a link we
      // already knew about.
      auto link = db_.LinkAt(ev.switch_uid, ev.port);
      if (link.ok()) {
        DN_FP_WRITE(kCtrlDb, CtrlEdgeCell(agent_->mac(), link.value()));
        db_.SetLinkState(ev.switch_uid, ev.port, true);
        pending_added_.push_back(link.value());
        if (!patch_scheduled_) {
          patch_scheduled_ = true;
          sim_->ScheduleAfter(config_.patch_aggregation, [this] { FlushPatch(); });
        }
      }
      return;
    }
    ++stats_.reprobes;
    discovery_.ReprobePort(ev.switch_uid, ev.port, [this, uid = ev.switch_uid,
                                                    port = ev.port] {
      auto link = discovery_.db().LinkAt(uid, port);
      if (!link.ok()) {
        return;
      }
      DN_FP_WRITE(kCtrlDb, CtrlEdgeCell(agent_->mac(), link.value()));
      DN_FP_WRITE(kCtrlLog, CtrlEdgeCell(agent_->mac(), link.value()));
      DN_FP_COMMUTES(kCtrlDb, footprint::FpKey(agent_->mac(), kSaltPatchPending),
                     kFpPatchAccum);
      (void)db_.AddLink(link.value());
      pending_added_.push_back(link.value());
      if (log_ != nullptr) {
        TopoEvent tev;
        tev.kind = TopoEvent::Kind::kLinkAdded;
        tev.link = link.value();
        log_->Append(tev);
      }
      if (!patch_scheduled_) {
        patch_scheduled_ = true;
        sim_->ScheduleAfter(config_.patch_aggregation, [this] { FlushPatch(); });
      }
    });
    return;
  }
  if (!patch_scheduled_) {
    patch_scheduled_ = true;
    sim_->ScheduleAfter(config_.patch_aggregation, [this] { FlushPatch(); });
  }
}

void ControllerService::FlushPatch() {
  DN_FP_SCOPE("ctrl.patch_flush", agent_->mac());
  DN_FP_COMMUTES(kCtrlDb, footprint::FpKey(agent_->mac(), kSaltPatchPending),
                 kFpPatchAccum);
  patch_scheduled_ = false;
  if (pending_removed_.empty() && pending_added_.empty()) {
    return;
  }
  TopologyPatchPayload patch;
  patch.patch_seq = ++patch_seq_;
  patch.removed =
      std::make_shared<const std::vector<WireLink>>(std::move(pending_removed_));
  patch.added = std::make_shared<const std::vector<WireLink>>(std::move(pending_added_));
  patch.origin_time = pending_origin_;
  pending_removed_.clear();
  pending_added_.clear();
  ++stats_.patches_sent;
  DN_COUNTER_INC("ctrl.patches_sent");
  DN_TRACE_EVENT(kController, kPatch, sim_->Now(), patch.patch_seq,
                 patch.removed->size() + patch.added->size());
  DN_LOG_KV(kInfo, "ctrl.patch")
      .Kv("seq", patch.patch_seq)
      .Kv("removed", patch.removed->size())
      .Kv("added", patch.added->size());
  // Applying locally also starts the host-to-host flood from our gossip peers.
  agent_->ApplyPatchLocally(patch, agent_->mac());
}

}  // namespace dumbnet
