// ReplicatedLog: a small quorum-replicated log of topology events, standing in for
// the paper's use of Apache ZooKeeper ("we keep the replicas consistent using
// Apache ZooKeeper to store the topology changes"). The leader appends entries,
// replicas acknowledge after a network round trip, and an entry commits once a
// majority (including the leader) holds it. Each standby replica applies committed
// entries to its own TopoDb, so a failover controller starts from a consistent
// topology view.
#ifndef DUMBNET_SRC_CTRL_REPLICATED_LOG_H_
#define DUMBNET_SRC_CTRL_REPLICATED_LOG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/routing/topo_db.h"
#include "src/routing/wire_types.h"
#include "src/sim/simulator.h"

namespace dumbnet {

struct TopoEvent {
  enum class Kind : uint8_t { kLinkDown, kLinkUp, kLinkAdded, kHostMoved };

  Kind kind = Kind::kLinkDown;
  WireLink link;
  HostLocation host;

  bool operator==(const TopoEvent&) const = default;
};

struct ReplicatedLogConfig {
  size_t num_replicas = 3;    // including the leader
  TimeNs replica_rtt = Us(200);
};

class ReplicatedLog {
 public:
  ReplicatedLog(Simulator* sim, ReplicatedLogConfig config = ReplicatedLogConfig());

  // Appends an event; `on_commit` fires (with the log index) once a majority of
  // live replicas acknowledge. Returns the assigned index immediately.
  uint64_t Append(const TopoEvent& event, std::function<void(uint64_t)> on_commit = nullptr);

  // Marks a replica dead/alive (0 is the leader and cannot be killed here).
  void SetReplicaAlive(size_t replica, bool alive);

  // Entries a given replica has applied so far (leader applies at append time).
  const std::vector<TopoEvent>& ReplicaLog(size_t replica) const {
    return replica_logs_[replica];
  }

  // Applies every event in `log` to a TopoDb (what a standby does on failover).
  static void ApplyTo(const std::vector<TopoEvent>& log, TopoDb& db);

  uint64_t committed_index() const { return committed_index_; }
  size_t num_replicas() const { return replica_logs_.size(); }
  bool HasQuorum() const;

 private:
  Simulator* sim_;
  ReplicatedLogConfig config_;
  std::vector<std::vector<TopoEvent>> replica_logs_;
  std::vector<bool> alive_;
  uint64_t next_index_ = 1;
  uint64_t committed_index_ = 0;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_CTRL_REPLICATED_LOG_H_
