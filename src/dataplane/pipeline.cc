#include "src/dataplane/pipeline.h"

#include <cassert>
#include <cstring>

namespace dumbnet {
namespace {

void WriteU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v & 0xFF);
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

void WriteEthernetHeader(uint8_t* frame, uint16_t ether_type) {
  // Synthetic MACs; contents irrelevant, the write is the work.
  std::memset(frame, 0xAB, 6);
  std::memset(frame + 6, 0xCD, 6);
  WriteU16(frame + 12, ether_type);
}

}  // namespace

FramePool::FramePool(size_t frames) {
  storage_.reserve(frames);
  free_.reserve(frames);
  for (size_t i = 0; i < frames; ++i) {
    storage_.push_back(std::make_unique<uint8_t[]>(kFrameCapacity));
    free_.push_back(storage_.back().get());
  }
}

uint8_t* FramePool::Acquire() {
  assert(!free_.empty());
  uint8_t* frame = free_.back();
  free_.pop_back();
  return frame;
}

void FramePool::Release(uint8_t* frame) { free_.push_back(frame); }

SoftwarePipeline::SoftwarePipeline(PipelineMode mode, FramePool* pool)
    : mode_(mode), pool_(pool) {}

uint16_t SoftwarePipeline::Checksum(const uint8_t* data, size_t len) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<uint64_t>(ReadU16(data + i));
  }
  if (i < len) {
    sum += static_cast<uint64_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint8_t* SoftwarePipeline::ProcessTx(const uint8_t* payload, size_t payload_len,
                                     const TagList& tags, size_t* out_len) {
  uint8_t* frame = pool_->Acquire();

  // Step 1: write the plain Ethernet frame (what the application handed down).
  WriteEthernetHeader(frame, kPipelineEtherTypeIpv4);
  std::memcpy(frame + kEthHeaderLen, payload, payload_len);  // DPDK ring copy
  size_t len = kEthHeaderLen + payload_len;

  // Step 2: encapsulate. Both MPLS and DumbNet insert between the Ethernet header
  // and the payload, which costs one header copy (memmove) — the 4% of Figure 9.
  size_t insert = 0;
  switch (mode_) {
    case PipelineMode::kNoopDpdk:
      break;
    case PipelineMode::kMplsOnly:
      insert = 4;  // one constant MPLS label
      break;
    case PipelineMode::kDumbNet:
      insert = tags.size() + 1;  // tag stack + ø
      break;
  }
  if (insert > 0) {
    std::memmove(frame + kEthHeaderLen + insert, frame + kEthHeaderLen, payload_len);
    if (mode_ == PipelineMode::kMplsOnly) {
      WriteU16(frame + 12, kPipelineEtherTypeMpls);
      // Label 3 (constant), TC 0, S 1, TTL 64.
      frame[kEthHeaderLen] = 0x00;
      frame[kEthHeaderLen + 1] = 0x00;
      frame[kEthHeaderLen + 2] = 0x31;
      frame[kEthHeaderLen + 3] = 0x40;
    } else {
      WriteU16(frame + 12, kPipelineEtherTypeDumbNet);
      for (size_t i = 0; i < tags.size(); ++i) {
        frame[kEthHeaderLen + i] = tags[i];
      }
      frame[kEthHeaderLen + tags.size()] = kPathEndTag;
    }
    len += insert;
  }

  // Step 3: software checksum over the payload (DPDK does this in software; the
  // regenerated Ethernet FCS of Section 5.1). Stored after the payload.
  uint16_t csum = Checksum(frame + kEthHeaderLen + insert, payload_len);
  WriteU16(frame + len, csum);
  len += 2;

  ++stats_.tx_frames;
  stats_.bytes += len;
  *out_len = len;
  return frame;
}

Result<size_t> SoftwarePipeline::ProcessRx(uint8_t* frame, size_t len) {
  if (len < kEthHeaderLen + 2) {
    ++stats_.rx_rejected;
    return Error(ErrorCode::kMalformed, "runt frame");
  }
  uint16_t ether_type = ReadU16(frame + 12);
  size_t payload_off = kEthHeaderLen;
  switch (mode_) {
    case PipelineMode::kNoopDpdk:
      if (ether_type != kPipelineEtherTypeIpv4) {
        ++stats_.rx_rejected;
        return Error(ErrorCode::kMalformed, "unexpected ethertype");
      }
      break;
    case PipelineMode::kMplsOnly: {
      if (ether_type != kPipelineEtherTypeMpls) {
        ++stats_.rx_rejected;
        return Error(ErrorCode::kMalformed, "unexpected ethertype");
      }
      payload_off += 4;
      break;
    }
    case PipelineMode::kDumbNet: {
      if (ether_type != kPipelineEtherTypeDumbNet) {
        ++stats_.rx_rejected;
        return Error(ErrorCode::kMalformed, "unexpected ethertype");
      }
      // The kernel module's ø check: exactly one tag (the terminator) must remain.
      if (frame[payload_off] != kPathEndTag) {
        ++stats_.rx_rejected;
        return Error(ErrorCode::kMalformed, "packet arrived with unconsumed tags");
      }
      payload_off += 1;
      // Strip the tag: header copy back down (regenerates the canonical frame).
      std::memmove(frame + kEthHeaderLen, frame + payload_off, len - payload_off);
      WriteU16(frame + 12, kPipelineEtherTypeIpv4);
      len -= 1;
      payload_off = kEthHeaderLen;
      break;
    }
  }
  size_t payload_len = len - payload_off - 2;
  uint16_t want = ReadU16(frame + len - 2);
  uint16_t got = Checksum(frame + payload_off, payload_len);
  if (want != got) {
    ++stats_.rx_rejected;
    return Error(ErrorCode::kMalformed, "checksum mismatch");
  }
  ++stats_.rx_frames;
  return payload_off;
}

}  // namespace dumbnet
