// Software packet pipeline: the host data path measured in Figures 9 and 10.
//
// This module does REAL per-packet work on real buffers — header writes, header
// copies (the MPLS encap cost), tag-stack insertion/stripping, software Internet
// checksum, payload copies — so google-benchmark can measure the actual cost
// difference between a no-op DPDK pipeline, an MPLS-encap pipeline, and the full
// DumbNet pipeline, the comparison Figure 9 reports. Absolute Gbps depends on the
// CPU; the paper's claim under test is the *shape*: tags cost ≈ nothing on top of
// the MPLS header copy, which costs a few percent over no-op.
#ifndef DUMBNET_SRC_DATAPLANE_PIPELINE_H_
#define DUMBNET_SRC_DATAPLANE_PIPELINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/routing/tags.h"
#include "src/util/result.h"

namespace dumbnet {

constexpr size_t kFrameCapacity = 2048;
constexpr size_t kEthHeaderLen = 14;
constexpr uint16_t kPipelineEtherTypeDumbNet = 0x9800;
constexpr uint16_t kPipelineEtherTypeMpls = 0x8847;
constexpr uint16_t kPipelineEtherTypeIpv4 = 0x0800;

// Preallocated frame buffers, recycled LIFO (mimics a DPDK mempool; allocation is
// part of the per-packet work being measured).
class FramePool {
 public:
  explicit FramePool(size_t frames);

  uint8_t* Acquire();
  void Release(uint8_t* frame);

  size_t available() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<uint8_t[]>> storage_;
  std::vector<uint8_t*> free_;
};

enum class PipelineMode {
  kNoopDpdk,   // headers + payload copy + software checksum (the paper's baseline)
  kMplsOnly,   // + header copy to insert one constant MPLS label
  kDumbNet,    // + header copy to insert the routing tag stack (+ ø)
};

struct PipelineStats {
  uint64_t tx_frames = 0;
  uint64_t rx_frames = 0;
  uint64_t rx_rejected = 0;
  uint64_t bytes = 0;
};

class SoftwarePipeline {
 public:
  SoftwarePipeline(PipelineMode mode, FramePool* pool);

  // Builds a TX frame: acquires a buffer, copies `payload_len` bytes of payload in
  // (the DPDK copy-to-ring), writes the Ethernet header, inserts the encap (mode-
  // dependent), and computes the software checksum. Returns the frame for the
  // "NIC" (caller releases it). Tags are only read in kDumbNet mode.
  uint8_t* ProcessTx(const uint8_t* payload, size_t payload_len, const TagList& tags,
                     size_t* out_len);

  // Parses an RX frame in place: validates the EtherType, strips the encap
  // (checking ø for DumbNet), verifies the checksum, and returns the payload
  // offset. The paper's kernel module does exactly this before handing the packet
  // to the IP stack.
  Result<size_t> ProcessRx(uint8_t* frame, size_t len);

  const PipelineStats& stats() const { return stats_; }
  PipelineMode mode() const { return mode_; }

  // Internet checksum (RFC 1071) — public for tests.
  static uint16_t Checksum(const uint8_t* data, size_t len);

 private:
  PipelineMode mode_;
  FramePool* pool_;
  PipelineStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_DATAPLANE_PIPELINE_H_
