// Bounded single-producer/single-consumer channel for cross-shard events.
//
// One channel exists per ordered shard pair (src -> dst). The producer is the
// src shard's worker thread posting events *during* a conservative window; the
// consumer is the coordinator thread draining *at* the window barrier, while
// every worker is parked. The common path is therefore a classic lock-free SPSC
// ring: the producer publishes an item with a release store of the tail index,
// the consumer observes it with an acquire load — the only memory-ordering
// contract cross-shard event payloads rely on (DESIGN.md §12).
//
// The ring is bounded; overflow spills to a mutex-guarded vector instead of
// blocking, because a blocked producer inside a window would deadlock the
// barrier. FIFO is preserved across the spill: once a push spills, every later
// push in the same window spills too (the `spilled_` flag is only cleared by
// the consumer's drain), so drain order = ring items then spill items = exact
// production order.
#ifndef DUMBNET_SRC_SIM_SPSC_H_
#define DUMBNET_SRC_SIM_SPSC_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace dumbnet {

template <typename T>
class SpscChannel {
 public:
  explicit SpscChannel(size_t capacity = 1024) {
    // Power-of-two capacity keeps the index math branch-free.
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    ring_.resize(cap);
  }

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  // Producer side (one thread). Never blocks; overflow spills.
  void Push(T item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (spilled_.load(std::memory_order_relaxed) || tail - head >= ring_.size()) {
      std::lock_guard<std::mutex> lock(spill_mu_);
      spilled_.store(true, std::memory_order_relaxed);
      spill_.push_back(std::move(item));
      return;
    }
    ring_[tail & (ring_.size() - 1)] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
  }

  // Consumer side (one thread; at a barrier, with the producer quiescent, both
  // sides of that ordering established by the barrier itself). Appends all
  // pending items to `out` in production order.
  void DrainTo(std::vector<T>& out) {
    size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    while (head != tail) {
      out.push_back(std::move(ring_[head & (ring_.size() - 1)]));
      ++head;
    }
    head_.store(head, std::memory_order_release);
    if (spilled_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(spill_mu_);
      for (T& item : spill_) {
        out.push_back(std::move(item));
      }
      spill_.clear();
      spilled_.store(false, std::memory_order_relaxed);
    }
  }

  bool EmptyUnsynchronized() const {
    return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_relaxed) &&
           !spilled_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> ring_;
  alignas(64) std::atomic<size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<size_t> tail_{0};  // producer cursor
  alignas(64) std::atomic<bool> spilled_{false};
  std::mutex spill_mu_;
  std::vector<T> spill_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_SIM_SPSC_H_
