#include "src/sim/shard_set.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/sim/footprint.h"
#include "src/util/logging.h"

namespace dumbnet {

namespace {
// Which shard's window the calling thread is executing, and that window's
// deadline (the last timestamp the window may run). Set around RunUntil both by
// worker threads and by the sequential executor, so Post can route same-shard
// schedules directly and assert the conservative bound on cross-shard ones.
thread_local int tl_shard = -1;
thread_local TimeNs tl_window_deadline = 0;

constexpr const char kFpShardChannel[] =
    "SPSC cross-shard channel append; drained in fixed order at the barrier";

// DN_LOG time for sharded runs: a worker inside a window reads its own shard's
// clock (thread-local routing, no cross-thread read); anything else reads shard
// 0, which only the coordinator advances between windows.
int64_t ShardSetLogClock(const void* ctx) {
  const auto* set = static_cast<const ShardSet*>(ctx);
  const int cur = ShardSet::CurrentShard();
  return set->shard(cur >= 0 ? static_cast<uint32_t>(cur) : 0).Now();
}
}  // namespace

ShardSet::ShardSet(ShardSetConfig config) : config_(config) {
  if (config_.shards == 0) {
    config_.shards = 1;
  }
  if (config_.shards > 1 && config_.lookahead < 1) {
    // A zero-width window cannot make progress; clamp to the smallest legal
    // lookahead (single-timestamp windows) rather than dying.
    DN_WARN << "ShardSet: lookahead " << config_.lookahead
            << " invalid for " << config_.shards << " shards; clamping to 1";
    config_.lookahead = 1;
  }
  for (uint32_t s = 0; s < config_.shards; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  const uint32_t n = config_.shards;
  if (n > 1) {
    channels_.resize(static_cast<size_t>(n) * n);
    for (uint32_t dst = 0; dst < n; ++dst) {
      for (uint32_t src = 0; src < n; ++src) {
        if (src != dst) {
          channels_[static_cast<size_t>(dst) * n + src] =
              std::make_unique<SpscChannel<Posted>>(config_.channel_capacity);
        }
      }
    }
    uint32_t hw = std::thread::hardware_concurrency();
    if (hw == 0) {
      hw = 1;
    }
    threads_active_ = config_.threads != 0 ? config_.threads : std::min(n, hw);
    threads_active_ = std::min(threads_active_, n);
    if (threads_active_ > 1) {
      // One persistent worker per shard; threads beyond the shard count would
      // idle, threads below it would need work stealing for no determinism
      // benefit, so the pool is exactly one thread per shard.
      threads_active_ = n;
      workers_.reserve(n);
      for (uint32_t s = 0; s < n; ++s) {
        workers_.emplace_back([this, s] { WorkerLoop(s); });
      }
    }
    // Shard 0's constructor grabbed the first-wins log clock; replace it with
    // the shard-aware one so worker-thread DN_LOG lines read their own clock.
    SetLogClock(&ShardSetLogClock, this);
  }
}

ShardSet::~ShardSet() {
  StopWorkers();
  if (LogClockCtx() == this) {
    SetLogClock(nullptr, nullptr);
  }
}

void ShardSet::StopWorkers() {
  if (workers_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
  workers_.clear();
}

int ShardSet::CurrentShard() { return tl_shard; }

void ShardSet::Post(uint32_t src, uint32_t dst, TimeNs at, EventFn fn) {
  if (src == dst || tl_shard < 0) {
    // Same shard, or no window executing on this thread (coordinator context):
    // file directly. The caller owns the ordering argument in the second case —
    // Posts from outside a window are only legal while no window runs.
    assert(tl_shard >= 0 || !in_window_.load(std::memory_order_relaxed));
    sims_[dst]->ScheduleAt(at, std::move(fn));
    return;
  }
  assert(static_cast<uint32_t>(tl_shard) == src &&
         "cross-shard Post must come from the producing shard's window");
  assert(at > tl_window_deadline &&
         "conservative lookahead violated: cross-shard delivery inside the window");
  // The channel append commutes with every other append to the same channel:
  // FIFO order within the channel is preserved and the barrier drain order is
  // fixed, so the final schedule is independent of append timing.
  DN_FP_COMMUTES(kShardChannel, footprint::FpKey(src, dst), kFpShardChannel);
  channels_[static_cast<size_t>(dst) * config_.shards + src]->Push(
      Posted{at, std::move(fn)});
}

bool ShardSet::PeekGlobalNext(TimeNs* next) {
  bool any = false;
  TimeNs best = std::numeric_limits<TimeNs>::max();
  for (auto& sim : sims_) {
    TimeNs t = 0;
    if (sim->PeekNextTime(&t)) {
      any = true;
      best = std::min(best, t);
    }
  }
  if (any) {
    *next = best;
  }
  return any;
}

void ShardSet::WorkerLoop(uint32_t shard_index) {
  uint64_t seen_gen = 0;
  for (;;) {
    TimeNs deadline = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || work_gen_ != seen_gen; });
      if (stop_) {
        return;
      }
      seen_gen = work_gen_;
      deadline = window_deadline_;
    }
    tl_shard = static_cast<int>(shard_index);
    tl_window_deadline = deadline;
    sims_[shard_index]->RunUntil(deadline);
    tl_shard = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ShardSet::ExecuteWindow(TimeNs deadline) {
  in_window_.store(true, std::memory_order_relaxed);
  if (threads_active_ > 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      window_deadline_ = deadline;
      pending_ = shard_count();
      ++work_gen_;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  } else {
    // Sequential mode: same window, same channels, shard order 0..N-1. Shards
    // only interact through the barrier drain, so this produces bit-identical
    // results to the threaded mode — it is the reference semantics.
    for (uint32_t s = 0; s < shard_count(); ++s) {
      tl_shard = static_cast<int>(s);
      tl_window_deadline = deadline;
      sims_[s]->RunUntil(deadline);
      tl_shard = -1;
    }
  }
  in_window_.store(false, std::memory_order_relaxed);
  ++stats_.windows;
  DrainChannels();
  MaybeRunBarrierHook();
}

void ShardSet::DrainChannels() {
  const uint32_t n = shard_count();
  for (uint32_t dst = 0; dst < n; ++dst) {
    for (uint32_t src = 0; src < n; ++src) {
      if (src == dst) {
        continue;
      }
      SpscChannel<Posted>& ch = *channels_[static_cast<size_t>(dst) * n + src];
      drain_scratch_.clear();
      ch.DrainTo(drain_scratch_);
      stats_.cross_posts += drain_scratch_.size();
      for (Posted& p : drain_scratch_) {
        sims_[dst]->ScheduleAt(p.at, std::move(p.fn));
      }
    }
  }
  drain_scratch_.clear();
}

void ShardSet::MaybeRunBarrierHook() {
  if (!barrier_hook_) {
    return;
  }
  const uint64_t executed = executed_events();
  if (executed - barrier_last_executed_ >= barrier_every_events_) {
    barrier_last_executed_ = executed;
    barrier_hook_();
  }
}

uint64_t ShardSet::Run() {
  if (shard_count() == 1) {
    return sims_[0]->Run();
  }
  uint64_t ran_before = executed_events();
  TimeNs next = 0;
  while (PeekGlobalNext(&next)) {
    // Window [next, next + L): RunUntil is inclusive, so the deadline is the
    // last representable instant strictly inside the window.
    const TimeNs max_t = std::numeric_limits<TimeNs>::max();
    const TimeNs deadline =
        config_.lookahead - 1 > max_t - next ? max_t : next + config_.lookahead - 1;
    ExecuteWindow(deadline);
  }
  return executed_events() - ran_before;
}

uint64_t ShardSet::RunSteps(uint64_t steps) {
  if (shard_count() == 1) {
    return sims_[0]->RunSteps(steps);
  }
  const uint64_t ran_before = executed_events();
  TimeNs next = 0;
  while (executed_events() - ran_before < steps && PeekGlobalNext(&next)) {
    const TimeNs max_t = std::numeric_limits<TimeNs>::max();
    const TimeNs deadline =
        config_.lookahead - 1 > max_t - next ? max_t : next + config_.lookahead - 1;
    ExecuteWindow(deadline);
  }
  return executed_events() - ran_before;
}

uint64_t ShardSet::RunUntil(TimeNs deadline) {
  if (shard_count() == 1) {
    return sims_[0]->RunUntil(deadline);
  }
  uint64_t ran_before = executed_events();
  TimeNs next = 0;
  while (PeekGlobalNext(&next) && next <= deadline) {
    const TimeNs max_t = std::numeric_limits<TimeNs>::max();
    TimeNs wdeadline =
        config_.lookahead - 1 > max_t - next ? max_t : next + config_.lookahead - 1;
    wdeadline = std::min(wdeadline, deadline);
    ExecuteWindow(wdeadline);
  }
  // Parity with Simulator::RunUntil: every clock ends at exactly `deadline`
  // (there is nothing left to run at or before it, so this only moves clocks).
  for (auto& sim : sims_) {
    sim->RunUntil(deadline);
  }
  return executed_events() - ran_before;
}

bool ShardSet::Empty() const {
  for (const auto& sim : sims_) {
    if (!sim->Empty()) {
      return false;
    }
  }
  for (const auto& ch : channels_) {
    if (ch != nullptr && !ch->EmptyUnsynchronized()) {
      return false;
    }
  }
  return true;
}

uint64_t ShardSet::executed_events() const {
  uint64_t total = 0;
  for (const auto& sim : sims_) {
    total += sim->executed_events();
  }
  return total;
}

void ShardSet::SetBarrierHook(std::function<void()> hook, uint64_t every_events) {
  if (shard_count() == 1) {
    sims_[0]->SetAuditHook(std::move(hook), every_events);
    return;
  }
  barrier_hook_ = std::move(hook);
  barrier_every_events_ = every_events == 0 ? 1 : every_events;
  barrier_last_executed_ = executed_events();
}

}  // namespace dumbnet
