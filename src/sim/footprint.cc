#include "src/sim/footprint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

namespace dumbnet {
namespace footprint {

const char* FpSpaceName(FpSpace space) {
  switch (space) {
    case FpSpace::kHost:
      return "host";
    case FpSpace::kSwitch:
      return "switch";
    case FpSpace::kLink:
      return "link";
    case FpSpace::kLinkQueue:
      return "link-queue";
    case FpSpace::kPathTable:
      return "path-table";
    case FpSpace::kTopoCache:
      return "topo-cache";
    case FpSpace::kCtrlDb:
      return "ctrl-db";
    case FpSpace::kCtrlLog:
      return "ctrl-log";
    case FpSpace::kCtrlCpu:
      return "ctrl-cpu";
    case FpSpace::kDiscovery:
      return "discovery";
    case FpSpace::kFlow:
      return "flow";
    case FpSpace::kScenario:
      return "scenario";
    case FpSpace::kShardChannel:
      return "shard-channel";
  }
  return "?";
}

const char* FpAccessName(FpAccess access) {
  switch (access) {
    case FpAccess::kRead:
      return "R";
    case FpAccess::kWrite:
      return "W";
    case FpAccess::kCommute:
      return "C";
  }
  return "?";
}

#ifdef DUMBNET_FOOTPRINTS_ENABLED
namespace internal {
std::atomic<bool> g_enabled{false};
thread_local bool g_collecting = false;
}  // namespace internal

void SetEnabled(bool on) { internal::g_enabled.store(on, std::memory_order_relaxed); }
#endif

Collector& Collector::Global() {
  thread_local Collector collector;
  return collector;
}

void Collector::BeginEvent() {
  cur_.label = nullptr;
  cur_.entity = 0;
  cur_.accesses.clear();
#ifdef DUMBNET_FOOTPRINTS_ENABLED
  internal::g_collecting = true;
#endif
}

EventFootprint Collector::TakeEvent() {
#ifdef DUMBNET_FOOTPRINTS_ENABLED
  internal::g_collecting = false;
#endif
  EventFootprint out = std::move(cur_);
  cur_ = EventFootprint{};
  return out;
}

bool SameReason(const char* a, const char* b) {
  if (a == b) {
    return true;
  }
  if (a == nullptr || b == nullptr) {
    return false;
  }
  return std::strcmp(a, b) == 0;
}

FpEffect MergeEffects(const FpEffect& a, const FpEffect& b) {
  if (a.access == FpAccess::kWrite || b.access == FpAccess::kWrite) {
    return FpEffect{FpAccess::kWrite, nullptr};
  }
  if (a.access == FpAccess::kCommute && b.access == FpAccess::kCommute) {
    if (SameReason(a.reason, b.reason)) {
      return a;
    }
    // Two different commute claims in one event: no single family covers the
    // combined update, so treat it as an order-sensitive write.
    return FpEffect{FpAccess::kWrite, nullptr};
  }
  if (a.access == FpAccess::kCommute) {
    return a;
  }
  if (b.access == FpAccess::kCommute) {
    return b;
  }
  return FpEffect{FpAccess::kRead, nullptr};
}

bool EffectsConflict(const FpEffect& a, const FpEffect& b) {
  if (a.access == FpAccess::kWrite || b.access == FpAccess::kWrite) {
    return true;
  }
  if (a.access == FpAccess::kCommute && b.access == FpAccess::kCommute) {
    // Same commuting family: the annotated-benign case. Different families do
    // not commute with each other (max-merge vs set-union, say).
    return !SameReason(a.reason, b.reason);
  }
  // Read-vs-Read is trivially clean. A plain Read against a commuting write
  // still conflicts: the commute claim covers other writers, not observers.
  return a.access != b.access;
}

namespace {

// "C" / "C(reason)" / "W" / "R" — the access letter with the commute family.
void AppendAccess(FpAccess access, const char* reason, std::string& out) {
  out += FpAccessName(access);
  if (access == FpAccess::kCommute && reason != nullptr) {
    out += '(';
    out += reason;
    out += ')';
  }
}

}  // namespace

void FormatHazard(const BatchHazard& hazard, std::string& out) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "t=%" PRId64 " batch=%" PRIu64 " (size %u) pos %u vs %u: ",
                static_cast<int64_t>(hazard.at), hazard.batch_index,
                hazard.batch_size, hazard.pos_a, hazard.pos_b);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%s[0x%" PRIx64 "] ",
                hazard.label_a ? hazard.label_a : "?", hazard.entity_a);
  out += buf;
  AppendAccess(hazard.access_a, hazard.reason_a, out);
  std::snprintf(buf, sizeof(buf), " / %s[0x%" PRIx64 "] ",
                hazard.label_b ? hazard.label_b : "?", hazard.entity_b);
  out += buf;
  AppendAccess(hazard.access_b, hazard.reason_b, out);
  std::snprintf(buf, sizeof(buf), " on %s/0x%" PRIx64, FpSpaceName(hazard.space),
                hazard.id);
  out += buf;
}

}  // namespace footprint
}  // namespace dumbnet
