// Event footprint tracking: the dynamic half of the determinism toolchain.
//
// dn-lint (src/analysis/lint.cc) catches *syntactic* nondeterminism — hash-map
// iteration, raw randomness, wall clocks. This layer catches *semantic* ordering
// races: two events that fire at the same virtual timestamp, are ordered only by
// the scheduler's FIFO tie-break, and touch the same entity with at least one
// write. Such a pair is a determinism hazard — the run's result silently depends
// on an ordering the model never promised — and it is exactly what must be proven
// absent before the DES can be sharded across threads.
//
// Event handlers declare what they touch through four macros:
//
//   DN_FP_SCOPE(label, entity)        — names the running handler ("host.link_state")
//   DN_FP_READ(space, id)             — handler reads entity `id` in `space`
//   DN_FP_WRITE(space, id)            — handler writes it (order-sensitive)
//   DN_FP_COMMUTES(space, id, reason) — handler writes it, but the write commutes
//                                       with every other commuting write (max-merge,
//                                       set-union, idempotent dedup...). This is the
//                                       machine-checked form of the
//                                       `dn-explore: commutes(<reason>)` annotation.
//
// Two gates stack, mirroring DUMBNET_TELEMETRY:
//   - Compile time: CMake option DUMBNET_FOOTPRINTS (ON by default) defines
//     DUMBNET_FOOTPRINTS_ENABLED. When OFF every macro compiles away and
//     footprint::Active() is constexpr false, so the simulator's per-event hooks
//     fold to nothing — the perf_core gate holds this to within 2% of baseline.
//   - Runtime: SetEnabled(true) opts a run in (default OFF, the opposite of
//     telemetry — footprints cost per-access vector pushes, so only race-hunting
//     runs pay them). The simulator only collects within same-timestamp batches
//     of two or more events; singleton batches cannot race and cost nothing.
//
// Threading: collection state is thread-local, so each shard worker of a sharded
// run (src/sim/shard_set.h) records the footprints of its own shard's events
// independently and hazard detection stays correct per shard — a cross-shard
// send is not a same-batch hazard, it is a channel write ordered by the window
// barrier. The runtime enable bit is an atomic read by every thread. DN_FP_*
// macros must still not appear in code reachable from ThreadPool workers (e.g.
// the batched path-graph builders): a pool worker has no simulator batch open,
// so its records would silently vanish instead of being conflict-checked
// (dumbnet-lint's fp-in-pool rule flags this).
#ifndef DUMBNET_SRC_SIM_FOOTPRINT_H_
#define DUMBNET_SRC_SIM_FOOTPRINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace dumbnet {
namespace footprint {

// Entity namespaces. An entity is (space, 64-bit id); ids in different spaces
// never conflict. Compose structured ids with FpKey below.
enum class FpSpace : uint8_t {
  kHost = 0,      // per-host agent state (dedup sets, patch cursor, bootstrap)
  kSwitch,        // per-switch state (alarm suppression windows, port counters)
  kLink,          // ground-truth link state (reads by forwarding, writes by flaps)
  kLinkQueue,     // per-direction egress serialization point in Network
  kPathTable,     // one host's route cache, per destination
  kTopoCache,     // one host's topology mirror, per link
  kCtrlDb,        // controller topology database, per link / directory entry
  kCtrlLog,       // controller replicated log, per logged entity
  kCtrlCpu,       // controller single-server CPU queue (serialization point)
  kDiscovery,     // prober state: inflight probes, port bindings
  kFlow,          // one transport flow's sender/receiver state
  kScenario,      // test/CLI-injected shared state (explorer regression fixtures)
  kShardChannel,  // cross-shard SPSC channel append, per ordered shard pair
};

const char* FpSpaceName(FpSpace space);

enum class FpAccess : uint8_t {
  kRead = 0,
  kWrite,
  kCommute,  // a write asserted to commute with other commuting writes
};

const char* FpAccessName(FpAccess access);

// Mixes two (or three) ids into one entity id. Collisions only blur hazard
// attribution, they never corrupt simulation state, so a cheap mix is fine.
constexpr uint64_t FpKey(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL;
  x ^= b + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  return x ^ (x >> 27);
}
constexpr uint64_t FpKey(uint64_t a, uint64_t b, uint64_t c) {
  return FpKey(FpKey(a, b), c);
}

// One declared access.
struct FpRecord {
  FpSpace space = FpSpace::kHost;
  FpAccess access = FpAccess::kRead;
  uint64_t id = 0;
  const char* reason = nullptr;  // commute justification (string literal)
};

// Everything one event declared while it ran.
struct EventFootprint {
  const char* label = nullptr;  // DN_FP_SCOPE label (string literal), may be null
  uint64_t entity = 0;          // DN_FP_SCOPE entity (who ran: mac, uid, flow id)
  std::vector<FpRecord> accesses;
};

// A conflicting pair of same-timestamp events. Positions are *canonical*: the
// event's index within its batch sorted by scheduling seq (the order the
// untouched simulator would execute). Canonical positions are stable across
// permuted re-executions — raw seq numbers are not, because permuting one batch
// shifts every seq allocated afterwards — so schedules and hazards both speak
// in (batch_index, position).
struct BatchHazard {
  TimeNs at = 0;
  uint64_t batch_index = 0;  // index among size>=2 batches since sim start
  uint32_t batch_size = 0;
  uint32_t pos_a = 0;  // canonical positions, pos_a < pos_b
  uint32_t pos_b = 0;
  uint64_t seq_a = 0;
  uint64_t seq_b = 0;
  const char* label_a = nullptr;
  const char* label_b = nullptr;
  uint64_t entity_a = 0;
  uint64_t entity_b = 0;
  FpSpace space = FpSpace::kHost;  // the contested entity
  uint64_t id = 0;
  FpAccess access_a = FpAccess::kRead;
  FpAccess access_b = FpAccess::kRead;
  const char* reason_a = nullptr;  // commute reasons, when the access commutes
  const char* reason_b = nullptr;
};

#ifdef DUMBNET_FOOTPRINTS_ENABLED
inline constexpr bool kCompiledIn = true;
namespace internal {
// The opt-in bit is process-wide and read from every shard worker, so it is
// atomic (relaxed: flipping it mid-run only blurs which events get tracked,
// never corrupts state). Whether a tracked event is *currently* executing is a
// property of one shard's run loop, hence thread-local.
extern std::atomic<bool> g_enabled;      // runtime opt-in (default off)
extern thread_local bool g_collecting;   // a tracked event is executing here
}  // namespace internal
inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on);
inline bool Active() { return Enabled() && internal::g_collecting; }
#else
inline constexpr bool kCompiledIn = false;
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
constexpr bool Active() { return false; }
#endif

// Accumulates the running event's footprint. The Simulator brackets each event
// of a tracked batch with BeginEvent/TakeEvent; the DN_FP_* macros feed Record.
// The API exists in every build (the explorer links against it); only the macro
// call sites and the Active() fast path are compile-gated. Global() is a
// thread-local instance, so each shard worker collects its own shard's batches.
class Collector {
 public:
  static Collector& Global();

  void BeginEvent();
  EventFootprint TakeEvent();

  void SetScope(const char* label, uint64_t entity) {
    cur_.label = label;
    cur_.entity = entity;
  }
  void Record(FpSpace space, FpAccess access, uint64_t id, const char* reason) {
    cur_.accesses.push_back(FpRecord{space, access, id, reason});
  }

 private:
  EventFootprint cur_;
};

// One event's effective access to one entity after collapsing its records.
struct FpEffect {
  FpAccess access = FpAccess::kRead;
  const char* reason = nullptr;  // set iff access == kCommute
};

// Collapse rule (Write > Commute > Read): a handler that reads and then
// commute-updates an entity is asserting the whole read-modify-write commutes.
// Two commute records with *different* reasons escalate to Write — the handler
// claimed membership in two incompatible commuting families, so no single
// algebraic argument covers the combined update.
FpEffect MergeEffects(const FpEffect& a, const FpEffect& b);

// Conflict rule between two events' effective accesses: any pair involving a
// plain Write conflicts; Read-vs-Read is clean; Commute-vs-Commute is clean only
// when both claim the *same* reason (compared by string content — the commuting
// family is the reason literal, and max-merge does not commute with set-union);
// Read-vs-Commute conflicts because the commute claim covers other writers, not
// observers. Exposed for the unit tests; the Simulator applies the same rules
// per batch.
bool EffectsConflict(const FpEffect& a, const FpEffect& b);

// True when both reasons are null or both compare equal by strcmp.
bool SameReason(const char* a, const char* b);

// One-line human rendering: "host.link_state[0x2a] W topo-cache/0x... vs ...".
// Used by the default hazard report and the explorer CLI.
void FormatHazard(const BatchHazard& hazard, std::string& out);

}  // namespace footprint
}  // namespace dumbnet

// Footprint declaration macros. One predictable branch per call site when
// compiled in but runtime-disabled (or outside a tracked batch); nothing at all
// when compiled out.
#ifdef DUMBNET_FOOTPRINTS_ENABLED

#define DN_FP_SCOPE(label_, entity_)                                          \
  do {                                                                        \
    if (::dumbnet::footprint::Active()) {                                     \
      ::dumbnet::footprint::Collector::Global().SetScope((label_), (entity_)); \
    }                                                                         \
  } while (0)

#define DN_FP_READ(space_, id_)                                               \
  do {                                                                        \
    if (::dumbnet::footprint::Active()) {                                     \
      ::dumbnet::footprint::Collector::Global().Record(                       \
          ::dumbnet::footprint::FpSpace::space_,                              \
          ::dumbnet::footprint::FpAccess::kRead, (id_), nullptr);             \
    }                                                                         \
  } while (0)

#define DN_FP_WRITE(space_, id_)                                              \
  do {                                                                        \
    if (::dumbnet::footprint::Active()) {                                     \
      ::dumbnet::footprint::Collector::Global().Record(                       \
          ::dumbnet::footprint::FpSpace::space_,                              \
          ::dumbnet::footprint::FpAccess::kWrite, (id_), nullptr);            \
    }                                                                         \
  } while (0)

#define DN_FP_COMMUTES(space_, id_, reason_)                                  \
  do {                                                                        \
    if (::dumbnet::footprint::Active()) {                                     \
      ::dumbnet::footprint::Collector::Global().Record(                       \
          ::dumbnet::footprint::FpSpace::space_,                              \
          ::dumbnet::footprint::FpAccess::kCommute, (id_), (reason_));        \
    }                                                                         \
  } while (0)

#else

#define DN_FP_SCOPE(label_, entity_) \
  do {                               \
  } while (0)
#define DN_FP_READ(space_, id_) \
  do {                          \
  } while (0)
#define DN_FP_WRITE(space_, id_) \
  do {                           \
  } while (0)
#define DN_FP_COMMUTES(space_, id_, reason_) \
  do {                                       \
  } while (0)

#endif  // DUMBNET_FOOTPRINTS_ENABLED

#endif  // DUMBNET_SRC_SIM_FOOTPRINT_H_
