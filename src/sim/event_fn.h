// EventFn: the simulator's pooled callback type. A move-only, type-erased void()
// callable with small-buffer optimisation — closures whose captures fit in
// kInlineBytes are stored in place (no heap allocation per scheduled event, the
// common case for protocol timers capturing a `this` plus a few ints); larger
// closures fall back to a single heap allocation, exactly like std::function.
#ifndef DUMBNET_SRC_SIM_EVENT_FN_H_
#define DUMBNET_SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dumbnet {

class EventFn {
 public:
  // Sized so a capture of `this` + ~5 words stays inline; the event pool stores
  // EventFn by value, so growing this grows every pooled slot.
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(buf_)) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  // Precondition: non-empty. The simulator moves the EventFn out of its slot
  // before invoking, so a callback may freely schedule into the freed slot.
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Destroys the held callable (releasing captured resources) and becomes empty.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  // True when the callable lives in the inline buffer (no heap allocation).
  bool stored_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst from src, destroy src
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename Fn>
  struct InlineOps {
    static Fn* Get(void* p) { return std::launder(reinterpret_cast<Fn*>(p)); }
    static void Invoke(void* p) { (*Get(p))(); }
    static void Relocate(void* dst, void* src) {
      Fn* s = Get(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void Destroy(void* p) { Get(p)->~Fn(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, true};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Get(void* p) { return *std::launder(reinterpret_cast<Fn**>(p)); }
    static void Invoke(void* p) { (*Get(p))(); }
    static void Relocate(void* dst, void* src) {
      *reinterpret_cast<Fn**>(dst) = Get(src);
    }
    static void Destroy(void* p) { delete Get(p); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, false};
  };

  void MoveFrom(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_SIM_EVENT_FN_H_
