// Discrete-event simulation engine: a virtual clock plus a hierarchical timer
// wheel of callbacks. Single-threaded; events with equal timestamps fire in
// scheduling order so runs are deterministic bit-for-bit.
//
// Internals (see DESIGN.md "Performance architecture"): events live in a pooled
// slot array (EventFn gives closures ≤ ~48 bytes in-place storage, so the steady
// state allocates nothing per event). Slots are threaded through an 11-level
// timer wheel of 64 buckets per level (64^11 ticks covers every TimeNs), with a
// per-level occupancy bitmap so finding the next event skips empty time in O(1)
// per level instead of scanning. Cancellation is O(1): handles carry a slot
// generation, Cancel stamps the slot and the wheel reaps it when its time comes —
// no unbounded side list, no re-sorting.
#ifndef DUMBNET_SRC_SIM_SIMULATOR_H_
#define DUMBNET_SRC_SIM_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/footprint.h"
#include "src/sim/time.h"

namespace dumbnet {

// Handle that lets a scheduled event be cancelled (e.g. a retransmit timer that the
// ack beat to the punch). Cancel is O(1): the pooled slot is stamped cancelled and
// reclaimed when the wheel reaches it. Handles are generation-checked, so a handle
// to an event that already ran (or whose slot was reused) is a safe no-op.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return slot_ != UINT32_MAX; }

 private:
  friend class Simulator;
  EventHandle(uint32_t slot, uint32_t gen) : slot_(slot), gen_(gen) {}
  uint32_t slot_ = UINT32_MAX;
  uint32_t gen_ = 0;
};

// Queue-side memory accounting, exposed so tests can assert that cancel-heavy
// workloads stay bounded (the former lazily-sorted cancellation list grew without
// limit when cancels raced completions).
struct SimulatorMemStats {
  size_t pool_slots = 0;     // slot high-water mark (allocated once, then reused)
  size_t free_slots = 0;     // currently idle slots
  size_t queued_events = 0;  // scheduled, incl. cancelled-but-unreaped
};

class Simulator {
 public:
  Simulator();
  // Unregisters this simulator's log clock if it is the active one.
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `at` (>= Now()).
  EventHandle ScheduleAt(TimeNs at, EventFn fn);

  // Schedules `fn` to run `delay` ns from now.
  EventHandle ScheduleAfter(TimeNs delay, EventFn fn);

  // Cancels a pending event; no-op if it already ran or was cancelled. O(1).
  void Cancel(EventHandle handle);

  // Runs events until the queue is empty. Returns the number of events executed.
  uint64_t Run();

  // Runs events with timestamp <= deadline; the clock ends at exactly `deadline`
  // (even if the queue drains early), so periodic samplers see a full window.
  uint64_t RunUntil(TimeNs deadline);

  // Executes at most `max_events` events.
  uint64_t RunSteps(uint64_t max_events);

  // Audited mode: `hook` runs after every `every_events` executed events (and the
  // hook may inspect any simulation state — the InvariantAuditor in src/analysis
  // attaches itself this way). Pass an empty hook to detach. The hook must not
  // schedule or cancel events.
  void SetAuditHook(std::function<void()> hook, uint64_t every_events = 256);

  // Trace mode: `hook(at, seq)` fires after every executed event, where `seq` is
  // the event's global scheduling sequence number. Two runs of the same seeded
  // workload must produce identical traces (the golden-trace determinism tests
  // compare them). Pass an empty hook to detach.
  void SetTraceHook(std::function<void(TimeNs at, uint64_t seq)> hook);

  // Race-detection mode (footprint::SetEnabled(true) opts a run in): within each
  // same-timestamp batch of two or more events, the simulator collects the
  // footprints the handlers declare (DN_FP_* in src/sim/footprint.h) and, at the
  // batch boundary, reports every pair of tie-break-ordered events with
  // conflicting footprints. With no hook installed, hazards are DN_WARN-logged
  // (deduplicated by handler pair) and the first one dumps flight-recorder
  // context. The hook runs between batches and must not schedule or cancel.
  using HazardHook = std::function<void(const footprint::BatchHazard&)>;
  void SetHazardHook(HazardHook hook);
  uint64_t hazards_detected() const { return hazards_; }

  // Schedule control (the dumbnet-explore DPOR driver): whenever a batch of two
  // or more same-timestamp events is formed, `permuter(batch_index, at, order)`
  // may reorder `order` — initially the identity over canonical positions 0..n-1
  // (ascending scheduling seq, the order an untouched run executes). The batch
  // then runs in the permuted order. A non-permutation is ignored with a
  // warning. Works whether or not footprints are compiled in, so minimized
  // counterexample schedules replay on any build.
  using BatchPermuter =
      std::function<void(uint64_t batch_index, TimeNs at, std::vector<uint32_t>& order)>;
  void SetBatchPermuter(BatchPermuter permuter);
  // Batches of size >= 2 formed so far; the next such batch gets this index.
  uint64_t batches_formed() const { return batch_index_; }

  // Peeks the timestamp of the earliest queued event without executing it.
  // Returns false when the queue is empty. The reported time may belong to a
  // cancelled-but-unreaped event, so it is a lower bound on the next *executed*
  // event — exactly what the conservative-window scheduler in shard_set.h needs.
  // Advances the wheel's due batch as a side effect (an earlier insert afterwards
  // takes the documented RewindAndRefile path).
  bool PeekNextTime(TimeNs* at);

  // Consumes and returns the next scheduling sequence number without filing an
  // event. For components that replace a would-be event with lazily evaluated
  // state (the network's egress-queue drain): burning the seq keeps every
  // later event's number — and therefore every same-timestamp tie-break —
  // identical to a build that schedules the event for real.
  uint64_t AllocSeq() { return next_seq_++; }

  // Sequence number of the event currently executing, or UINT64_MAX between
  // events. Comparing a virtual event's burned seq (AllocSeq) against this
  // decides whether it would already have run: strictly earlier time, or same
  // time and smaller seq. Outside event execution everything at t <= Now()
  // counts as run, matching the Run()/RunUntil() batch boundary.
  uint64_t CurrentSeq() const { return current_seq_; }

  bool Empty() const { return queued_ == 0; }
  uint64_t executed_events() const { return executed_; }
  SimulatorMemStats mem_stats() const;

 private:
  static constexpr uint32_t kNil = UINT32_MAX;
  static constexpr int kLevelBits = 6;
  static constexpr uint32_t kSlotsPerLevel = 64;
  // 64^11 = 2^66 ticks: every representable TimeNs files into some level, so there
  // is no overflow list.
  static constexpr int kLevels = 11;

  struct Slot {
    TimeNs at = 0;
    uint64_t seq = 0;       // tie-break: FIFO among same-time events
    uint32_t gen = 0;       // bumped on reclaim; stale handles mismatch
    uint32_t next = kNil;   // intrusive bucket list
    bool cancelled = false;
    EventFn fn;
  };

  struct Level {
    uint64_t occupied = 0;  // bit b set <=> bucket b non-empty
    std::array<uint32_t, kSlotsPerLevel> head;
    std::array<uint32_t, kSlotsPerLevel> tail;
  };

  uint32_t AllocSlot();
  void ReclaimSlot(uint32_t idx);
  // Threads `idx` into the wheel relative to wheel_time_.
  void FileSlot(uint32_t idx);
  // Rewinds the wheel to `new_wheel_time` and re-files every queued event. Needed
  // when an insert lands below wheel_time_ — possible only after RunUntil/RunSteps
  // stopped with a drained-but-unexecuted future batch. O(queued), amortised over
  // the run boundary that caused it.
  void RewindAndRefile(TimeNs new_wheel_time);
  // Ensures due_ holds the next same-timestamp batch (sorted by seq). Cascades
  // higher-level buckets down as the wheel advances. False when nothing is queued.
  bool RefillDue();
  // Pops and runs the next due event if it is not cancelled. Returns true if an
  // event actually executed. Precondition: RefillDue() returned true.
  bool Step();
  // Called once per freshly refilled batch: assigns the batch index, applies the
  // permuter, and arms footprint collection for batches of size >= 2.
  void PrepareBatch();
  // Conflict-checks the completed batch's collected footprints (no-op when none
  // were collected) and routes hazards to the hook or the default report.
  void FlushBatchFootprints();
  void DefaultHazardReport(const footprint::BatchHazard& hazard);

  std::vector<Slot> pool_;
  std::vector<uint32_t> free_;
  std::array<Level, kLevels> levels_;
  std::vector<uint32_t> due_;  // slot indices, one timestamp, ascending seq
  size_t due_pos_ = 0;
  // Lower bound on every queued event's timestamp; advances only inside
  // RefillDue. Inserts are filed relative to this.
  TimeNs wheel_time_ = 0;

  std::function<void()> audit_hook_;
  uint64_t audit_every_ = 0;
  std::function<void(TimeNs, uint64_t)> trace_hook_;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t current_seq_ = UINT64_MAX;
  uint64_t executed_ = 0;
  uint64_t queued_ = 0;

  // Race detection / schedule control. All of it idles unless a permuter is
  // installed or footprint tracking is runtime-enabled; singleton batches skip
  // everything but one size check.
  struct BatchEventFp {
    uint32_t pos = 0;  // canonical position within the batch
    uint64_t seq = 0;
    footprint::EventFootprint fp;
  };
  HazardHook hazard_hook_;
  BatchPermuter permuter_;
  std::vector<uint32_t> due_canon_;   // canonical position of due_[i]
  std::vector<uint32_t> batch_scratch_;
  std::vector<BatchEventFp> batch_fps_;
  bool batch_tracking_ = false;  // current batch collects footprints
  uint64_t batch_index_ = 0;     // size>=2 batches formed so far
  uint64_t batch_cur_index_ = 0;
  uint32_t batch_size_ = 0;
  TimeNs batch_at_ = 0;
  uint64_t hazards_ = 0;
  std::unordered_set<uint64_t> hazard_sigs_;  // default-report dedup
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_SIM_SIMULATOR_H_
