// Discrete-event simulation engine: a virtual clock plus a priority queue of
// callbacks. Single-threaded; events with equal timestamps fire in scheduling order
// so runs are deterministic.
#ifndef DUMBNET_SRC_SIM_SIMULATOR_H_
#define DUMBNET_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace dumbnet {

// Handle that lets a scheduled event be cancelled (e.g. a retransmit timer that the
// ack beat to the punch). Cancellation is lazy: the event stays queued but is skipped.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute virtual time `at` (>= Now()).
  EventHandle ScheduleAt(TimeNs at, std::function<void()> fn);

  // Schedules `fn` to run `delay` ns from now.
  EventHandle ScheduleAfter(TimeNs delay, std::function<void()> fn);

  // Cancels a pending event; no-op if it already ran or was cancelled.
  void Cancel(EventHandle handle);

  // Runs events until the queue is empty. Returns the number of events executed.
  uint64_t Run();

  // Runs events with timestamp <= deadline; the clock ends at exactly `deadline`
  // (even if the queue drains early), so periodic samplers see a full window.
  uint64_t RunUntil(TimeNs deadline);

  // Executes at most `max_events` events.
  uint64_t RunSteps(uint64_t max_events);

  // Audited mode: `hook` runs after every `every_events` executed events (and the
  // hook may inspect any simulation state — the InvariantAuditor in src/analysis
  // attaches itself this way). Pass an empty hook to detach. The hook must not
  // schedule or cancel events.
  void SetAuditHook(std::function<void()> hook, uint64_t every_events = 256);

  bool Empty() const { return live_events_ == 0; }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimeNs at;
    uint64_t seq;  // tie-break: FIFO among same-time events
    uint64_t id;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  // Pops and runs the front event if it is not cancelled. Returns true if an event
  // actually executed.
  bool Step();

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<uint64_t> cancelled_;  // sorted lazily; small in practice
  std::function<void()> audit_hook_;
  uint64_t audit_every_ = 0;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t executed_ = 0;
  uint64_t live_events_ = 0;

  bool IsCancelled(uint64_t id);
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_SIM_SIMULATOR_H_
