// Sharded discrete-event simulation with conservative lookahead.
//
// A ShardSet owns N independent Simulators (each with its own timer wheel and
// event pool) and advances them in lockstep *windows* of virtual time. Window k
// covers [W, W + L) where W is the minimum next-event time across shards and L
// is the lookahead: the minimum propagation delay of any cross-shard link
// (src/net/shard_plan.h derives it). The conservative-window argument: any event
// executing at t in [W, W+L) that sends across a shard boundary produces a
// delivery no earlier than t + link propagation >= W + L, i.e. strictly after
// the window. So shards never need each other's events *inside* a window and can
// run it in parallel with no rollback.
//
// Cross-shard sends go through bounded SPSC channels (src/sim/spsc.h), one per
// ordered shard pair, written during the window by the producing shard's worker
// and drained at the barrier by the coordinator while all workers are parked.
// Drain order is fixed — destination-major, then source shard ascending, then
// channel FIFO — so scheduling sequence numbers, and therefore same-timestamp
// tie-breaks, are assigned identically on every run: an N-shard run is
// bit-identical across repeats for fixed N, threaded or not.
//
// Execution modes: with `threads > 1` each shard gets a persistent worker
// thread and windows run concurrently; with `threads == 1` (the forced default
// on single-core hosts) the coordinator runs the shards' windows sequentially
// in shard order. Both modes share the window loop and the channel drain, and
// produce identical results — the sequential mode *is* the determinism argument
// for the threaded one, since shards only interact through barrier-drained
// channels either way.
#ifndef DUMBNET_SRC_SIM_SHARD_SET_H_
#define DUMBNET_SRC_SIM_SHARD_SET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/simulator.h"
#include "src/sim/spsc.h"
#include "src/sim/time.h"

namespace dumbnet {

struct ShardSetConfig {
  uint32_t shards = 1;
  // Conservative window width: minimum cross-shard link propagation delay.
  // Required >= 1 when shards > 1 (a zero-width window cannot make progress).
  TimeNs lookahead = 0;
  // Worker threads; 0 picks min(shards, hardware_concurrency()). 1 runs the
  // window loop sequentially on the calling thread (same results, no threads).
  uint32_t threads = 0;
  // Per-channel SPSC ring capacity; overflow spills (never blocks, never drops).
  size_t channel_capacity = 4096;
};

struct ShardSetStats {
  uint64_t windows = 0;      // conservative windows executed
  uint64_t cross_posts = 0;  // events that crossed a shard boundary
};

class ShardSet {
 public:
  explicit ShardSet(ShardSetConfig config);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  uint32_t shard_count() const { return static_cast<uint32_t>(sims_.size()); }
  uint32_t thread_count() const { return threads_active_; }
  TimeNs lookahead() const { return config_.lookahead; }
  Simulator& shard(uint32_t s) { return *sims_[s]; }
  const Simulator& shard(uint32_t s) const { return *sims_[s]; }

  // Schedules `fn` at absolute time `at` on shard `dst`. Callable from shard
  // `src`'s worker while a window executes (lands in the src->dst channel and
  // is filed at the barrier), or from any single thread while no window is
  // executing (files directly). Inside a window `at` must be >= the window end —
  // guaranteed by construction when `at` is now + a cross-shard link's
  // propagation, and asserted here.
  void Post(uint32_t src, uint32_t dst, TimeNs at, EventFn fn);

  // The shard the calling thread is currently executing a window for, or -1
  // when the caller is not inside a shard window (coordinator, tests, main).
  static int CurrentShard();

  // Runs windows until every shard's queue and every channel is empty.
  // Returns the number of events executed (summed over shards).
  uint64_t Run();

  // Runs windows while the global next-event time is <= deadline; every shard's
  // clock ends at exactly `deadline`.
  uint64_t RunUntil(TimeNs deadline);

  // Runs until at least `steps` events executed (or nothing is left). With one
  // shard this is exactly `steps` events; with several, whole windows are the
  // unit of progress, so the count may overshoot to the end of the window in
  // which the target was reached (still deterministic for fixed N).
  uint64_t RunSteps(uint64_t steps);

  bool Empty() const;
  // Virtual time floor: every shard's clock (they advance in lockstep windows).
  TimeNs Now() const { return sims_[0]->Now(); }
  uint64_t executed_events() const;

  // `hook` runs on the coordinator thread at window barriers — all workers
  // parked, channels drained — the only safe place to inspect cross-shard
  // state (the InvariantAuditor attaches here in sharded runs). With a single
  // shard there are no windows; the hook is instead attached to shard 0's
  // per-event audit hook at `every_events` cadence, matching the unsharded
  // simulator exactly. For N > 1 the hook fires at the first barrier where the
  // executed-event count advanced by at least `every_events`.
  void SetBarrierHook(std::function<void()> hook, uint64_t every_events);

  const ShardSetStats& stats() const { return stats_; }

 private:
  struct Posted {
    TimeNs at = 0;
    EventFn fn;
  };

  // Runs one window: every shard executes events with at <= deadline.
  void ExecuteWindow(TimeNs deadline);
  // Files all channel contents into their destination shards, in fixed order.
  void DrainChannels();
  void MaybeRunBarrierHook();
  // True if any shard has queued events; sets *next to the minimum next time.
  bool PeekGlobalNext(TimeNs* next);
  void WorkerLoop(uint32_t shard_index);
  void StopWorkers();

  ShardSetConfig config_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  // channels_[dst * N + src]: src -> dst. Indexed destination-major so the
  // drain loop reads them in the documented fixed order.
  std::vector<std::unique_ptr<SpscChannel<Posted>>> channels_;
  std::vector<Posted> drain_scratch_;

  // Worker coordination (unused when threads_active_ == 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t work_gen_ = 0;       // bumped to release workers into a window
  TimeNs window_deadline_ = 0;  // valid while a window executes
  uint32_t pending_ = 0;        // workers still inside the current window
  bool stop_ = false;
  uint32_t threads_active_ = 1;

  // Transitions only while workers are parked; atomic so assert-path reads from
  // other threads are race-free.
  std::atomic<bool> in_window_{false};
  std::function<void()> barrier_hook_;
  uint64_t barrier_every_events_ = 0;
  uint64_t barrier_last_executed_ = 0;
  ShardSetStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_SIM_SHARD_SET_H_
