#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {

namespace {

// DN_LOG lines carry simulated time while a simulator is active.
int64_t SimulatorLogClock(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->Now();
}

// Progress heartbeat cadence for the flight recorder; power of two so the
// modulo folds to a mask.
constexpr uint64_t kProgressEvery = 4096;

// Level that can hold time `at` when the wheel stands at `wheel`: the level of the
// highest differing bit. Events share all bits above their level's bucket field
// with the wheel position, which is what makes the per-level "buckets >= current"
// scan in RefillDue exhaustive.
inline int LevelOf(uint64_t at, uint64_t wheel) {
  uint64_t diff = at ^ wheel;
  if (diff == 0) {
    return 0;
  }
  return (63 - std::countl_zero(diff)) / 6;  // kLevelBits
}

}  // namespace

Simulator::Simulator() {
  for (Level& level : levels_) {
    level.head.fill(kNil);
    level.tail.fill(kNil);
  }
  // First simulator on this thread wins: nested/sequential simulators leave an
  // already registered clock alone (the registration is thread-local, so each
  // wire-node thread timestamps its log lines with its own simulator).
  int64_t unused = 0;
  if (!CurrentLogTime(&unused)) {
    SetLogClock(&SimulatorLogClock, this);
  }
}

Simulator::~Simulator() {
  if (LogClockCtx() == this) {
    SetLogClock(nullptr, nullptr);
  }
}

uint32_t Simulator::AllocSlot() {
  if (!free_.empty()) {
    uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void Simulator::ReclaimSlot(uint32_t idx) {
  Slot& slot = pool_[idx];
  slot.fn.Reset();
  slot.cancelled = false;
  ++slot.gen;  // outstanding handles to this slot become stale
  free_.push_back(idx);
}

void Simulator::FileSlot(uint32_t idx) {
  Slot& slot = pool_[idx];
  const uint64_t at = static_cast<uint64_t>(slot.at);
  const int level_idx = LevelOf(at, static_cast<uint64_t>(wheel_time_));
  const uint32_t bucket =
      static_cast<uint32_t>(at >> (kLevelBits * level_idx)) & (kSlotsPerLevel - 1);
  Level& level = levels_[static_cast<size_t>(level_idx)];
  slot.next = kNil;
  if ((level.occupied & (1ULL << bucket)) != 0) {
    pool_[level.tail[bucket]].next = idx;
  } else {
    level.head[bucket] = idx;
    level.occupied |= 1ULL << bucket;
  }
  level.tail[bucket] = idx;
}

void Simulator::RewindAndRefile(TimeNs new_wheel_time) {
  std::vector<uint32_t> queued;
  queued.reserve(queued_);
  for (Level& level : levels_) {
    uint64_t occupied = level.occupied;
    while (occupied != 0) {
      const uint32_t bucket = static_cast<uint32_t>(std::countr_zero(occupied));
      occupied &= occupied - 1;
      for (uint32_t i = level.head[bucket]; i != kNil; i = pool_[i].next) {
        queued.push_back(i);
      }
      level.head[bucket] = kNil;
      level.tail[bucket] = kNil;
    }
    level.occupied = 0;
  }
  for (size_t i = due_pos_; i < due_.size(); ++i) {
    queued.push_back(due_[i]);
  }
  due_.clear();
  due_pos_ = 0;
  wheel_time_ = new_wheel_time;
  for (uint32_t idx : queued) {
    FileSlot(idx);
  }
}

EventHandle Simulator::ScheduleAt(TimeNs at, EventFn fn) {
  if (at < now_) {
    at = now_;  // a timestamp in the past fires immediately; time never rewinds
  }
  if (at < wheel_time_) {
    // The wheel ran ahead of the clock (an early-stopped RunUntil/RunSteps left a
    // future batch drained); rewind so this earlier event is reachable.
    RewindAndRefile(at);
  }
  uint32_t idx = AllocSlot();
  Slot& slot = pool_[idx];
  slot.at = at;
  slot.seq = next_seq_++;
  slot.fn = std::move(fn);
  FileSlot(idx);
  ++queued_;
  return EventHandle(idx, slot.gen);
}

EventHandle Simulator::ScheduleAfter(TimeNs delay, EventFn fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= pool_.size()) {
    return;
  }
  Slot& slot = pool_[handle.slot_];
  if (slot.gen != handle.gen_ || slot.cancelled) {
    return;  // already ran, already cancelled, or the slot was reused
  }
  slot.cancelled = true;
  slot.fn.Reset();  // release captured resources now, not at expiry
}

bool Simulator::RefillDue() {
  if (due_pos_ < due_.size()) {
    return true;
  }
  if (!batch_fps_.empty()) {
    FlushBatchFootprints();
  }
  batch_tracking_ = false;
  due_.clear();
  due_pos_ = 0;
  if (queued_ == 0) {
    return false;
  }
  for (;;) {
    const uint64_t wheel = static_cast<uint64_t>(wheel_time_);
    int level_idx = -1;
    uint32_t bucket = 0;
    for (int k = 0; k < kLevels; ++k) {
      const uint32_t cur =
          static_cast<uint32_t>(wheel >> (kLevelBits * k)) & (kSlotsPerLevel - 1);
      const uint64_t pending = levels_[static_cast<size_t>(k)].occupied & (~0ULL << cur);
      if (pending != 0) {
        level_idx = k;
        bucket = static_cast<uint32_t>(std::countr_zero(pending));
        break;
      }
    }
    assert(level_idx >= 0 && "queued_ > 0 but the wheel is empty");
    if (level_idx < 0) {
      return false;
    }
    Level& level = levels_[static_cast<size_t>(level_idx)];
    uint32_t head = level.head[bucket];
    level.occupied &= ~(1ULL << bucket);
    level.head[bucket] = kNil;
    level.tail[bucket] = kNil;

    if (level_idx == 0) {
      // A level-0 bucket holds exactly one timestamp: the wheel position with its
      // low bits replaced by the bucket index.
      wheel_time_ = static_cast<TimeNs>((wheel & ~static_cast<uint64_t>(kSlotsPerLevel - 1)) |
                                        bucket);
      for (uint32_t i = head; i != kNil; i = pool_[i].next) {
        assert(pool_[i].at == wheel_time_);
        due_.push_back(i);
      }
      // FIFO among same-time events, regardless of how cascades interleaved them.
      std::sort(due_.begin(), due_.end(),
                [this](uint32_t a, uint32_t b) { return pool_[a].seq < pool_[b].seq; });
      if (due_.size() > 1) {
        PrepareBatch();
      }
      return true;
    }

    // Cascade: advance the wheel to the bucket's start and re-file its events one
    // level (or more) down. Each event cascades at most kLevels times ever, so
    // this is amortised O(1) per event.
    const int shift = kLevelBits * (level_idx + 1);
    const uint64_t prefix_mask = shift >= 64 ? 0 : ~0ULL << shift;
    wheel_time_ = static_cast<TimeNs>(
        (wheel & prefix_mask) |
        (static_cast<uint64_t>(bucket) << (kLevelBits * level_idx)));
    for (uint32_t i = head; i != kNil;) {
      uint32_t next = pool_[i].next;
      FileSlot(i);
      i = next;
    }
  }
}

void Simulator::PrepareBatch() {
  const size_t n = due_.size();
  // Every size>=2 batch consumes an index, whether or not this run tracks or
  // permutes, so batch indices agree between detection, replay, and plain runs.
  const uint64_t index = batch_index_++;
  const bool track = footprint::Enabled();
  if (!track && !permuter_) {
    return;
  }
  due_canon_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    due_canon_[i] = i;
  }
  if (permuter_) {
    permuter_(index, wheel_time_, due_canon_);
    bool valid = due_canon_.size() == n;
    if (valid) {
      batch_scratch_.assign(n, 0);
      for (uint32_t p : due_canon_) {
        if (p >= n || batch_scratch_[p] != 0) {
          valid = false;
          break;
        }
        batch_scratch_[p] = 1;
      }
    }
    if (!valid) {
      DN_WARN << "batch permuter returned a non-permutation for batch " << index
              << "; keeping canonical order";
      due_canon_.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        due_canon_[i] = i;
      }
    } else {
      // due_canon_[i] now names which canonical event runs i-th; reorder due_
      // to match.
      batch_scratch_ = due_;
      for (uint32_t i = 0; i < n; ++i) {
        due_[i] = batch_scratch_[due_canon_[i]];
      }
    }
  }
  if (track) {
    batch_tracking_ = true;
    batch_fps_.clear();
    batch_cur_index_ = index;
    batch_size_ = static_cast<uint32_t>(n);
    batch_at_ = wheel_time_;
  }
}

void Simulator::FlushBatchFootprints() {
  // Collapse each event's accesses to one effective access per entity, then
  // group by entity. std::map keys keep hazard emission order deterministic.
  using EntityKey = std::pair<uint8_t, uint64_t>;
  struct Acc {
    uint32_t fp_idx;
    footprint::FpEffect effect;
  };
  std::map<EntityKey, std::vector<Acc>> by_entity;
  for (uint32_t i = 0; i < batch_fps_.size(); ++i) {
    std::map<EntityKey, footprint::FpEffect> effective;
    for (const footprint::FpRecord& r : batch_fps_[i].fp.accesses) {
      const EntityKey key{static_cast<uint8_t>(r.space), r.id};
      const footprint::FpEffect effect{r.access, r.reason};
      auto it = effective.find(key);
      if (it == effective.end()) {
        effective.emplace(key, effect);
      } else {
        it->second = footprint::MergeEffects(it->second, effect);
      }
    }
    for (const auto& [key, effect] : effective) {
      by_entity[key].push_back(Acc{i, effect});
    }
  }
  // Consecutive conflicting accessors per entity are the DPOR generator set:
  // reversing an adjacent conflicting pair reaches every reachable reordering
  // transitively, so there is no need to emit the full quadratic pair set.
  std::set<std::pair<uint32_t, uint32_t>> reported;
  for (const auto& [key, accs] : by_entity) {
    if (accs.size() < 2) {
      continue;
    }
    for (size_t k = 1; k < accs.size(); ++k) {
      const Acc& first = accs[k - 1];
      const Acc& second = accs[k];
      if (!footprint::EffectsConflict(first.effect, second.effect)) {
        continue;
      }
      const BatchEventFp& a = batch_fps_[first.fp_idx];
      const BatchEventFp& b = batch_fps_[second.fp_idx];
      const auto pos_pair = std::minmax(a.pos, b.pos);
      if (!reported.insert(pos_pair).second) {
        continue;  // this event pair already conflicted on another entity
      }
      footprint::BatchHazard hazard;
      hazard.at = batch_at_;
      hazard.batch_index = batch_cur_index_;
      hazard.batch_size = batch_size_;
      hazard.pos_a = pos_pair.first;
      hazard.pos_b = pos_pair.second;
      const bool a_first = a.pos <= b.pos;
      hazard.seq_a = a_first ? a.seq : b.seq;
      hazard.seq_b = a_first ? b.seq : a.seq;
      hazard.label_a = a_first ? a.fp.label : b.fp.label;
      hazard.label_b = a_first ? b.fp.label : a.fp.label;
      hazard.entity_a = a_first ? a.fp.entity : b.fp.entity;
      hazard.entity_b = a_first ? b.fp.entity : a.fp.entity;
      hazard.space = static_cast<footprint::FpSpace>(key.first);
      hazard.id = key.second;
      hazard.access_a = a_first ? first.effect.access : second.effect.access;
      hazard.access_b = a_first ? second.effect.access : first.effect.access;
      hazard.reason_a = a_first ? first.effect.reason : second.effect.reason;
      hazard.reason_b = a_first ? second.effect.reason : first.effect.reason;
      ++hazards_;
      if (hazard_hook_) {
        hazard_hook_(hazard);
      } else {
        DefaultHazardReport(hazard);
      }
    }
  }
  batch_fps_.clear();
}

void Simulator::DefaultHazardReport(const footprint::BatchHazard& hazard) {
  // One report per (handler pair, space): a racing pattern tends to recur once
  // per affected entity and would otherwise flood the log.
  const uint64_t sig = footprint::FpKey(
      reinterpret_cast<uint64_t>(hazard.label_a),  // dn-lint: allow(pointer-key, literal addresses are stable in-run; sig only gates log emission)
      reinterpret_cast<uint64_t>(hazard.label_b), static_cast<uint64_t>(hazard.space));
  if (!hazard_sigs_.insert(sig).second) {
    return;
  }
  std::string line;
  footprint::FormatHazard(hazard, line);
  DN_WARN << "determinism hazard: " << line;
  if (hazard_sigs_.size() == 1) {
    telemetry::FlightRecorder::Global().DumpOnFailure("determinism hazard");
  }
}

void Simulator::SetHazardHook(HazardHook hook) { hazard_hook_ = std::move(hook); }

void Simulator::SetBatchPermuter(BatchPermuter permuter) {
  permuter_ = std::move(permuter);
}

bool Simulator::Step() {
  const uint32_t idx = due_[due_pos_++];
  Slot& slot = pool_[idx];
  --queued_;
  if (slot.cancelled) {
    ReclaimSlot(idx);
    return false;
  }
  assert(slot.at >= now_);
  now_ = slot.at;
  const uint64_t seq = slot.seq;
  EventFn fn = std::move(slot.fn);
  // Reclaim before invoking: a callback cancelling its own (now stale) handle is a
  // no-op, and nested scheduling may reuse the slot immediately.
  ReclaimSlot(idx);
  current_seq_ = seq;
  if (batch_tracking_) {
    footprint::Collector::Global().BeginEvent();
    fn();
    BatchEventFp rec;
    rec.pos = due_canon_[due_pos_ - 1];
    rec.seq = seq;
    rec.fp = footprint::Collector::Global().TakeEvent();
    batch_fps_.push_back(std::move(rec));
  } else {
    fn();
  }
  current_seq_ = UINT64_MAX;
  ++executed_;
  DN_COUNTER_INC("sim.events");
  if (executed_ % kProgressEvery == 0) {
    DN_TRACE_EVENT(kSimulator, kProgress, now_, executed_, queued_);
  }
  if (trace_hook_) {
    trace_hook_(now_, seq);
  }
  if (audit_every_ != 0 && executed_ % audit_every_ == 0 && audit_hook_) {
    audit_hook_();
  }
  return true;
}

void Simulator::SetAuditHook(std::function<void()> hook, uint64_t every_events) {
  audit_hook_ = std::move(hook);
  audit_every_ = audit_hook_ ? every_events : 0;
}

void Simulator::SetTraceHook(std::function<void(TimeNs, uint64_t)> hook) {
  trace_hook_ = std::move(hook);
}

uint64_t Simulator::Run() {
  uint64_t ran = 0;
  while (RefillDue()) {
    if (Step()) {
      ++ran;
    }
  }
  return ran;
}

uint64_t Simulator::RunUntil(TimeNs deadline) {
  uint64_t ran = 0;
  while (RefillDue() && pool_[due_[due_pos_]].at <= deadline) {
    if (Step()) {
      ++ran;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return ran;
}

bool Simulator::PeekNextTime(TimeNs* at) {
  if (!RefillDue()) {
    return false;
  }
  *at = pool_[due_[due_pos_]].at;
  return true;
}

uint64_t Simulator::RunSteps(uint64_t max_events) {
  uint64_t ran = 0;
  while (ran < max_events && RefillDue()) {
    if (Step()) {
      ++ran;
    }
  }
  return ran;
}

SimulatorMemStats Simulator::mem_stats() const {
  SimulatorMemStats stats;
  stats.pool_slots = pool_.size();
  stats.free_slots = free_.size();
  stats.queued_events = queued_;
  return stats;
}

}  // namespace dumbnet
