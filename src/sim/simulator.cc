#include "src/sim/simulator.h"

#include <algorithm>
#include <cassert>

namespace dumbnet {

EventHandle Simulator::ScheduleAt(TimeNs at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;  // a timestamp in the past fires immediately; time never rewinds
  }
  uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  ++live_events_;
  return EventHandle(id);
}

EventHandle Simulator::ScheduleAfter(TimeNs delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::Cancel(EventHandle handle) {
  if (handle.id_ != 0) {
    cancelled_.push_back(handle.id_);
  }
}

bool Simulator::IsCancelled(uint64_t id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) {
    return false;
  }
  // Swap-erase: cancellation lists stay tiny (outstanding timers only).
  *it = cancelled_.back();
  cancelled_.pop_back();
  return true;
}

bool Simulator::Step() {
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  --live_events_;
  if (IsCancelled(ev.id)) {
    return false;
  }
  assert(ev.at >= now_);
  now_ = ev.at;
  ev.fn();
  ++executed_;
  if (audit_every_ != 0 && executed_ % audit_every_ == 0 && audit_hook_) {
    audit_hook_();
  }
  return true;
}

void Simulator::SetAuditHook(std::function<void()> hook, uint64_t every_events) {
  audit_hook_ = std::move(hook);
  audit_every_ = audit_hook_ ? every_events : 0;
}

uint64_t Simulator::Run() {
  uint64_t ran = 0;
  while (!queue_.empty()) {
    if (Step()) {
      ++ran;
    }
  }
  return ran;
}

uint64_t Simulator::RunUntil(TimeNs deadline) {
  uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    if (Step()) {
      ++ran;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return ran;
}

uint64_t Simulator::RunSteps(uint64_t max_events) {
  uint64_t ran = 0;
  while (!queue_.empty() && ran < max_events) {
    if (Step()) {
      ++ran;
    }
  }
  return ran;
}

}  // namespace dumbnet
