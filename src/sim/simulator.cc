#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {

namespace {

// DN_LOG lines carry simulated time while a simulator is active.
int64_t SimulatorLogClock(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->Now();
}

// Progress heartbeat cadence for the flight recorder; power of two so the
// modulo folds to a mask.
constexpr uint64_t kProgressEvery = 4096;

// Level that can hold time `at` when the wheel stands at `wheel`: the level of the
// highest differing bit. Events share all bits above their level's bucket field
// with the wheel position, which is what makes the per-level "buckets >= current"
// scan in RefillDue exhaustive.
inline int LevelOf(uint64_t at, uint64_t wheel) {
  uint64_t diff = at ^ wheel;
  if (diff == 0) {
    return 0;
  }
  return (63 - std::countl_zero(diff)) / 6;  // kLevelBits
}

}  // namespace

Simulator::Simulator() {
  for (Level& level : levels_) {
    level.head.fill(kNil);
    level.tail.fill(kNil);
  }
  // First simulator wins: nested/sequential simulators leave an already
  // registered clock alone.
  int64_t unused = 0;
  if (!CurrentLogTime(&unused)) {
    SetLogClock(&SimulatorLogClock, this);
  }
}

Simulator::~Simulator() {
  if (LogClockCtx() == this) {
    SetLogClock(nullptr, nullptr);
  }
}

uint32_t Simulator::AllocSlot() {
  if (!free_.empty()) {
    uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void Simulator::ReclaimSlot(uint32_t idx) {
  Slot& slot = pool_[idx];
  slot.fn.Reset();
  slot.cancelled = false;
  ++slot.gen;  // outstanding handles to this slot become stale
  free_.push_back(idx);
}

void Simulator::FileSlot(uint32_t idx) {
  Slot& slot = pool_[idx];
  const uint64_t at = static_cast<uint64_t>(slot.at);
  const int level_idx = LevelOf(at, static_cast<uint64_t>(wheel_time_));
  const uint32_t bucket =
      static_cast<uint32_t>(at >> (kLevelBits * level_idx)) & (kSlotsPerLevel - 1);
  Level& level = levels_[static_cast<size_t>(level_idx)];
  slot.next = kNil;
  if ((level.occupied & (1ULL << bucket)) != 0) {
    pool_[level.tail[bucket]].next = idx;
  } else {
    level.head[bucket] = idx;
    level.occupied |= 1ULL << bucket;
  }
  level.tail[bucket] = idx;
}

void Simulator::RewindAndRefile(TimeNs new_wheel_time) {
  std::vector<uint32_t> queued;
  queued.reserve(queued_);
  for (Level& level : levels_) {
    uint64_t occupied = level.occupied;
    while (occupied != 0) {
      const uint32_t bucket = static_cast<uint32_t>(std::countr_zero(occupied));
      occupied &= occupied - 1;
      for (uint32_t i = level.head[bucket]; i != kNil; i = pool_[i].next) {
        queued.push_back(i);
      }
      level.head[bucket] = kNil;
      level.tail[bucket] = kNil;
    }
    level.occupied = 0;
  }
  for (size_t i = due_pos_; i < due_.size(); ++i) {
    queued.push_back(due_[i]);
  }
  due_.clear();
  due_pos_ = 0;
  wheel_time_ = new_wheel_time;
  for (uint32_t idx : queued) {
    FileSlot(idx);
  }
}

EventHandle Simulator::ScheduleAt(TimeNs at, EventFn fn) {
  if (at < now_) {
    at = now_;  // a timestamp in the past fires immediately; time never rewinds
  }
  if (at < wheel_time_) {
    // The wheel ran ahead of the clock (an early-stopped RunUntil/RunSteps left a
    // future batch drained); rewind so this earlier event is reachable.
    RewindAndRefile(at);
  }
  uint32_t idx = AllocSlot();
  Slot& slot = pool_[idx];
  slot.at = at;
  slot.seq = next_seq_++;
  slot.fn = std::move(fn);
  FileSlot(idx);
  ++queued_;
  return EventHandle(idx, slot.gen);
}

EventHandle Simulator::ScheduleAfter(TimeNs delay, EventFn fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= pool_.size()) {
    return;
  }
  Slot& slot = pool_[handle.slot_];
  if (slot.gen != handle.gen_ || slot.cancelled) {
    return;  // already ran, already cancelled, or the slot was reused
  }
  slot.cancelled = true;
  slot.fn.Reset();  // release captured resources now, not at expiry
}

bool Simulator::RefillDue() {
  if (due_pos_ < due_.size()) {
    return true;
  }
  due_.clear();
  due_pos_ = 0;
  if (queued_ == 0) {
    return false;
  }
  for (;;) {
    const uint64_t wheel = static_cast<uint64_t>(wheel_time_);
    int level_idx = -1;
    uint32_t bucket = 0;
    for (int k = 0; k < kLevels; ++k) {
      const uint32_t cur =
          static_cast<uint32_t>(wheel >> (kLevelBits * k)) & (kSlotsPerLevel - 1);
      const uint64_t pending = levels_[static_cast<size_t>(k)].occupied & (~0ULL << cur);
      if (pending != 0) {
        level_idx = k;
        bucket = static_cast<uint32_t>(std::countr_zero(pending));
        break;
      }
    }
    assert(level_idx >= 0 && "queued_ > 0 but the wheel is empty");
    if (level_idx < 0) {
      return false;
    }
    Level& level = levels_[static_cast<size_t>(level_idx)];
    uint32_t head = level.head[bucket];
    level.occupied &= ~(1ULL << bucket);
    level.head[bucket] = kNil;
    level.tail[bucket] = kNil;

    if (level_idx == 0) {
      // A level-0 bucket holds exactly one timestamp: the wheel position with its
      // low bits replaced by the bucket index.
      wheel_time_ = static_cast<TimeNs>((wheel & ~static_cast<uint64_t>(kSlotsPerLevel - 1)) |
                                        bucket);
      for (uint32_t i = head; i != kNil; i = pool_[i].next) {
        assert(pool_[i].at == wheel_time_);
        due_.push_back(i);
      }
      // FIFO among same-time events, regardless of how cascades interleaved them.
      std::sort(due_.begin(), due_.end(),
                [this](uint32_t a, uint32_t b) { return pool_[a].seq < pool_[b].seq; });
      return true;
    }

    // Cascade: advance the wheel to the bucket's start and re-file its events one
    // level (or more) down. Each event cascades at most kLevels times ever, so
    // this is amortised O(1) per event.
    const int shift = kLevelBits * (level_idx + 1);
    const uint64_t prefix_mask = shift >= 64 ? 0 : ~0ULL << shift;
    wheel_time_ = static_cast<TimeNs>(
        (wheel & prefix_mask) |
        (static_cast<uint64_t>(bucket) << (kLevelBits * level_idx)));
    for (uint32_t i = head; i != kNil;) {
      uint32_t next = pool_[i].next;
      FileSlot(i);
      i = next;
    }
  }
}

bool Simulator::Step() {
  const uint32_t idx = due_[due_pos_++];
  Slot& slot = pool_[idx];
  --queued_;
  if (slot.cancelled) {
    ReclaimSlot(idx);
    return false;
  }
  assert(slot.at >= now_);
  now_ = slot.at;
  const uint64_t seq = slot.seq;
  EventFn fn = std::move(slot.fn);
  // Reclaim before invoking: a callback cancelling its own (now stale) handle is a
  // no-op, and nested scheduling may reuse the slot immediately.
  ReclaimSlot(idx);
  fn();
  ++executed_;
  DN_COUNTER_INC("sim.events");
  if (executed_ % kProgressEvery == 0) {
    DN_TRACE_EVENT(kSimulator, kProgress, now_, executed_, queued_);
  }
  if (trace_hook_) {
    trace_hook_(now_, seq);
  }
  if (audit_every_ != 0 && executed_ % audit_every_ == 0 && audit_hook_) {
    audit_hook_();
  }
  return true;
}

void Simulator::SetAuditHook(std::function<void()> hook, uint64_t every_events) {
  audit_hook_ = std::move(hook);
  audit_every_ = audit_hook_ ? every_events : 0;
}

void Simulator::SetTraceHook(std::function<void(TimeNs, uint64_t)> hook) {
  trace_hook_ = std::move(hook);
}

uint64_t Simulator::Run() {
  uint64_t ran = 0;
  while (RefillDue()) {
    if (Step()) {
      ++ran;
    }
  }
  return ran;
}

uint64_t Simulator::RunUntil(TimeNs deadline) {
  uint64_t ran = 0;
  while (RefillDue() && pool_[due_[due_pos_]].at <= deadline) {
    if (Step()) {
      ++ran;
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return ran;
}

uint64_t Simulator::RunSteps(uint64_t max_events) {
  uint64_t ran = 0;
  while (ran < max_events && RefillDue()) {
    if (Step()) {
      ++ran;
    }
  }
  return ran;
}

SimulatorMemStats Simulator::mem_stats() const {
  SimulatorMemStats stats;
  stats.pool_slots = pool_.size();
  stats.free_slots = free_.size();
  stats.queued_events = queued_;
  return stats;
}

}  // namespace dumbnet
