// Virtual time. All simulator timestamps are integer nanoseconds to keep event
// ordering exact and platform-independent.
#ifndef DUMBNET_SRC_SIM_TIME_H_
#define DUMBNET_SRC_SIM_TIME_H_

#include <cstdint>

namespace dumbnet {

using TimeNs = int64_t;

constexpr TimeNs kNsPerUs = 1000;
constexpr TimeNs kNsPerMs = 1000 * 1000;
constexpr TimeNs kNsPerSec = 1000 * 1000 * 1000;

constexpr TimeNs Us(int64_t us) { return us * kNsPerUs; }
constexpr TimeNs Ms(int64_t ms) { return ms * kNsPerMs; }
constexpr TimeNs Sec(int64_t s) { return s * kNsPerSec; }

constexpr double ToUs(TimeNs t) { return static_cast<double>(t) / 1e3; }
constexpr double ToMs(TimeNs t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSec(TimeNs t) { return static_cast<double>(t) / 1e9; }

// Serialization delay of `bytes` on a link of `gbps` gigabits per second.
constexpr TimeNs TransmitTimeNs(int64_t bytes, double gbps) {
  return static_cast<TimeNs>(static_cast<double>(bytes) * 8.0 / gbps);
}

}  // namespace dumbnet

#endif  // DUMBNET_SRC_SIM_TIME_H_
