#include "src/fluid/fluid_sim.h"

#include <algorithm>
#include <cmath>

namespace dumbnet {
namespace {

// Finds the directional resource id for traversing `li` from node `from`.
uint64_t DirectionalResource(const Link& l, LinkIndex li, const NodeId& from) {
  int dir = (l.a.node == from) ? 0 : 1;
  return static_cast<uint64_t>(li) * 2 + static_cast<uint64_t>(dir);
}

}  // namespace

FluidSimulator::FluidSimulator(Simulator* sim, Topology* topo) : sim_(sim), topo_(topo) {
  topo_->AddLinkObserver([this](LinkIndex, bool) {
    Settle();
    Reallocate();
  });
}

double FluidSimulator::ResourceCapacityBps(ResourceId rid) const {
  const Link& l = topo_->link_at(static_cast<LinkIndex>(rid / 2));
  if (!l.up) {
    return 0.0;
  }
  return l.bandwidth_gbps * 1e9 / 8.0;  // bytes per second
}

Result<std::vector<FluidSimulator::ResourceId>> FluidSimulator::ResourcesFor(
    uint32_t src_host, uint32_t dst_host, const SwitchPath& path) const {
  if (path.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty path");
  }
  auto src_up = topo_->HostUplink(src_host);
  auto dst_up = topo_->HostUplink(dst_host);
  if (!src_up.ok() || !dst_up.ok()) {
    return Error(ErrorCode::kNotFound, "host not attached");
  }
  if (src_up.value().node.index != path.front() ||
      dst_up.value().node.index != path.back()) {
    return Error(ErrorCode::kInvalidArgument, "path does not match host attach points");
  }
  std::vector<ResourceId> out;
  out.reserve(path.size() + 1);
  // Host uplink (host -> switch direction).
  {
    LinkIndex li = topo_->host_at(src_host).link;
    out.push_back(DirectionalResource(topo_->link_at(li), li, NodeId::Host(src_host)));
  }
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const SwitchInfo& sw = topo_->switch_at(path[i]);
    LinkIndex found = kInvalidLink;
    for (PortNum p = 1; p <= sw.num_ports; ++p) {
      LinkIndex li = sw.port_link[p];
      if (li == kInvalidLink) {
        continue;
      }
      const Link& l = topo_->link_at(li);
      if (!l.up) {
        continue;
      }
      const Endpoint& peer = l.Peer(NodeId::Switch(path[i]));
      if (peer.node.is_switch() && peer.node.index == path[i + 1]) {
        found = li;
        break;
      }
    }
    if (found == kInvalidLink) {
      return Error(ErrorCode::kUnavailable, "no up link along path");
    }
    out.push_back(
        DirectionalResource(topo_->link_at(found), found, NodeId::Switch(path[i])));
  }
  // Destination downlink (switch -> host direction).
  {
    LinkIndex li = topo_->host_at(dst_host).link;
    out.push_back(DirectionalResource(topo_->link_at(li), li,
                                      NodeId::Switch(dst_up.value().node.index)));
  }
  return out;
}

Result<uint64_t> FluidSimulator::StartFlow(uint32_t src_host, uint32_t dst_host,
                                           double bytes, const SwitchPath& path,
                                           std::function<void(uint64_t, TimeNs)> on_complete) {
  auto resources = ResourcesFor(src_host, dst_host, path);
  if (!resources.ok()) {
    return resources.error();
  }
  Settle();
  uint64_t id = next_id_++;
  Flow flow;
  flow.info.id = id;
  flow.info.src_host = src_host;
  flow.info.dst_host = dst_host;
  flow.info.bytes_remaining = bytes;
  flow.info.path = path;
  flow.resources = std::move(resources.value());
  flow.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(flow));
  Reallocate();
  return id;
}

Status FluidSimulator::RepathFlow(uint64_t id, const SwitchPath& new_path) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return Error(ErrorCode::kNotFound, "no such flow");
  }
  auto resources =
      ResourcesFor(it->second.info.src_host, it->second.info.dst_host, new_path);
  if (!resources.ok()) {
    return resources.error();
  }
  Settle();
  it->second.info.path = new_path;
  it->second.resources = std::move(resources.value());
  Reallocate();
  return Status::Ok();
}

Status FluidSimulator::StopFlow(uint64_t id) {
  Settle();
  if (flows_.erase(id) == 0) {
    return Error(ErrorCode::kNotFound, "no such flow");
  }
  Reallocate();
  return Status::Ok();
}

double FluidSimulator::FlowRateBps(uint64_t id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.info.rate_bps;
}

double FluidSimulator::BytesDelivered(uint32_t dst_host) const {
  auto it = delivered_.find(dst_host);
  return it == delivered_.end() ? 0.0 : it->second;
}

double FluidSimulator::LinkUtilization(LinkIndex li, int direction) const {
  ResourceId rid = static_cast<uint64_t>(li) * 2 + static_cast<uint64_t>(direction);
  double cap = ResourceCapacityBps(rid);
  if (cap <= 0.0) {
    return 0.0;
  }
  auto it = allocated_.find(rid);
  return it == allocated_.end() ? 0.0 : it->second / cap;
}

void FluidSimulator::Settle() {
  TimeNs now = sim_->Now();
  double dt = ToSec(now - last_settle_);
  last_settle_ = now;
  if (dt <= 0.0) {
    return;
  }
  for (auto& [id, flow] : flows_) {
    double moved = flow.info.rate_bps * dt;
    delivered_[flow.info.dst_host] += moved;
    if (std::isfinite(flow.info.bytes_remaining)) {
      flow.info.bytes_remaining = std::max(0.0, flow.info.bytes_remaining - moved);
    }
  }
}

void FluidSimulator::FinishDueFlows() {
  std::vector<uint64_t> done;
  for (auto& [id, flow] : flows_) {
    if (std::isfinite(flow.info.bytes_remaining) && flow.info.bytes_remaining <= 1e-6) {
      done.push_back(id);
    }
  }
  for (uint64_t id : done) {
    auto node = flows_.extract(id);
    if (node.mapped().on_complete) {
      node.mapped().on_complete(id, sim_->Now());
    }
  }
}

void FluidSimulator::Reallocate() {
  FinishDueFlows();
  allocated_.clear();

  // Progressive filling. Build per-resource membership.
  std::unordered_map<ResourceId, std::vector<uint64_t>> members;
  std::unordered_map<ResourceId, double> rem_cap;
  std::unordered_map<uint64_t, bool> frozen;
  for (auto& [id, flow] : flows_) {
    flow.info.rate_bps = 0.0;
    frozen[id] = false;
    for (ResourceId rid : flow.resources) {
      members[rid].push_back(id);
      rem_cap.emplace(rid, ResourceCapacityBps(rid));
    }
  }

  size_t unfrozen = flows_.size();
  std::unordered_map<ResourceId, size_t> live_count;
  for (auto& [rid, flows] : members) {
    live_count[rid] = flows.size();
  }

  while (unfrozen > 0) {
    // Find the bottleneck: min remaining fair share.
    double best_share = std::numeric_limits<double>::infinity();
    ResourceId best_rid = UINT64_MAX;
    for (auto& [rid, count] : live_count) {
      if (count == 0) {
        continue;
      }
      double share = rem_cap[rid] / static_cast<double>(count);
      if (share < best_share) {
        best_share = share;
        best_rid = rid;
      }
    }
    if (best_rid == UINT64_MAX) {
      break;  // every remaining flow crosses only dead resources
    }
    // Freeze all unfrozen flows through the bottleneck at the fair share.
    for (uint64_t id : members[best_rid]) {
      if (frozen[id]) {
        continue;
      }
      Flow& flow = flows_[id];
      flow.info.rate_bps = best_share;
      frozen[id] = true;
      --unfrozen;
      for (ResourceId rid : flow.resources) {
        rem_cap[rid] -= best_share;
        --live_count[rid];
        allocated_[rid] += best_share;
      }
    }
    live_count[best_rid] = 0;
  }

  // Schedule the next completion.
  double min_dt = std::numeric_limits<double>::infinity();
  for (auto& [id, flow] : flows_) {
    if (std::isfinite(flow.info.bytes_remaining) && flow.info.rate_bps > 0.0) {
      min_dt = std::min(min_dt, flow.info.bytes_remaining / flow.info.rate_bps);
    }
  }
  uint64_t epoch = ++alloc_epoch_;
  if (std::isfinite(min_dt)) {
    TimeNs dt_ns = static_cast<TimeNs>(min_dt * 1e9) + 1;
    sim_->ScheduleAfter(dt_ns, [this, epoch] {
      if (epoch != alloc_epoch_) {
        return;  // superseded by a newer allocation
      }
      Settle();
      Reallocate();
    });
  }
}

}  // namespace dumbnet
