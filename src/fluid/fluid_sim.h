// Fluid (flow-level) network simulator: active flows share link capacity max-min
// fairly (progressive filling), and the simulator advances directly from one flow
// completion to the next. Used for the macro benchmarks (HiBench, aggregate
// throughput) where packet-level detail would cost hours for no additional insight.
//
// Shares Topology with the packet-level world; paths come from the same routing
// library, so a routing policy evaluated here is byte-for-byte the policy the host
// agents implement.
#ifndef DUMBNET_SRC_FLUID_FLUID_SIM_H_
#define DUMBNET_SRC_FLUID_FLUID_SIM_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/routing/shortest_path.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"
#include "src/util/result.h"

namespace dumbnet {

constexpr double kOpenEndedBytes = std::numeric_limits<double>::infinity();

struct FluidFlowInfo {
  uint64_t id = 0;
  uint32_t src_host = 0;
  uint32_t dst_host = 0;
  double bytes_remaining = 0;
  double rate_bps = 0;  // bytes per second, current allocation
  SwitchPath path;
};

class FluidSimulator {
 public:
  FluidSimulator(Simulator* sim, Topology* topo);

  // Starts a flow of `bytes` along `path` (src_host's edge switch first, dst_host's
  // edge switch last). kOpenEndedBytes = runs until StopFlow. `on_complete`
  // receives (flow id, completion time).
  Result<uint64_t> StartFlow(uint32_t src_host, uint32_t dst_host, double bytes,
                             const SwitchPath& path,
                             std::function<void(uint64_t, TimeNs)> on_complete = nullptr);

  // Moves a running flow onto a new path (flowlet rerouting).
  Status RepathFlow(uint64_t id, const SwitchPath& new_path);

  Status StopFlow(uint64_t id);

  // Current max-min allocation for a flow, bytes/sec (0 if unknown or stalled).
  double FlowRateBps(uint64_t id) const;

  // Total bytes delivered to `dst` so far across all (finished and running) flows.
  double BytesDelivered(uint32_t dst_host) const;

  size_t active_flows() const { return flows_.size(); }

  // Fraction of a directional link's capacity currently allocated (direction 0:
  // a->b). For utilization reports.
  double LinkUtilization(LinkIndex li, int direction) const;

 private:
  // A directional resource: 2*link + dir.
  using ResourceId = uint64_t;

  struct Flow {
    FluidFlowInfo info;
    std::vector<ResourceId> resources;
    std::function<void(uint64_t, TimeNs)> on_complete;
  };

  Result<std::vector<ResourceId>> ResourcesFor(uint32_t src_host, uint32_t dst_host,
                                               const SwitchPath& path) const;
  double ResourceCapacityBps(ResourceId rid) const;

  // Advances all flows to Now() at their current rates.
  void Settle();
  // Recomputes the max-min allocation and schedules the next completion.
  void Reallocate();
  void FinishDueFlows();

  Simulator* sim_;
  Topology* topo_;
  std::unordered_map<uint64_t, Flow> flows_;
  std::unordered_map<uint32_t, double> delivered_;
  uint64_t next_id_ = 1;
  TimeNs last_settle_ = 0;
  uint64_t alloc_epoch_ = 0;
  std::unordered_map<ResourceId, double> allocated_;  // after Reallocate
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_FLUID_FLUID_SIM_H_
