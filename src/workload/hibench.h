// Workload models.
//
// Substitution note (DESIGN.md): the paper drives its macro evaluation with Intel
// HiBench on Hadoop, using it "to capture the flow dependencies in real-world
// applications". We model the five benchmarked workloads (Figure 13) as flow DAGs:
// sequential stages with a barrier between them, each stage a set of host-to-host
// flows whose shape (all-to-all shuffle, replicated writes, iterative rounds) and
// relative volume follow the published HiBench traffic characterization. Per-stage
// compute time is charged identically under every network policy, exactly like
// real map/reduce slots would be.
#ifndef DUMBNET_SRC_WORKLOAD_HIBENCH_H_
#define DUMBNET_SRC_WORKLOAD_HIBENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace dumbnet {

struct FlowSpec {
  uint32_t src_host = 0;
  uint32_t dst_host = 0;
  double bytes = 0;
};

// --- Generic traffic patterns (micro benchmarks & tests) ---------------------------

// Random permutation: every host sends to exactly one other host.
std::vector<FlowSpec> PermutationTraffic(const std::vector<uint32_t>& hosts, double bytes,
                                         Rng& rng);

// Full mesh: every ordered pair exchanges `bytes_per_pair`.
std::vector<FlowSpec> AllToAllTraffic(const std::vector<uint32_t>& hosts,
                                      double bytes_per_pair);

// N-to-1 incast into `sink`.
std::vector<FlowSpec> IncastTraffic(const std::vector<uint32_t>& senders, uint32_t sink,
                                    double bytes);

// --- HiBench flow-DAG models --------------------------------------------------------

enum class HiBenchWorkload {
  kAggregation,
  kJoin,
  kPagerank,
  kTerasort,
  kWordcount,
};

const char* HiBenchWorkloadName(HiBenchWorkload kind);
std::vector<HiBenchWorkload> AllHiBenchWorkloads();

struct JobStage {
  std::string name;
  std::vector<FlowSpec> flows;
  double compute_seconds = 0;  // fixed compute charged after the stage's flows finish
};

struct HiBenchJob {
  std::string name;
  std::vector<JobStage> stages;  // sequential, barrier between stages
};

struct HiBenchScale {
  // Bytes of shuffle traffic per (mapper, reducer) pair in the reference Terasort;
  // other workloads scale relative to it.
  double unit_bytes = 8e6;
  double compute_scale = 1.0;
};

// Builds the flow DAG for one workload over `hosts` (mappers and reducers are both
// spread across all hosts, as Hadoop does with its slots).
HiBenchJob MakeHiBenchJob(HiBenchWorkload kind, const std::vector<uint32_t>& hosts,
                          Rng& rng, const HiBenchScale& scale = HiBenchScale());

}  // namespace dumbnet

#endif  // DUMBNET_SRC_WORKLOAD_HIBENCH_H_
