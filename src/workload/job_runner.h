// FluidJobRunner: executes a HiBench flow DAG on the fluid simulator under a
// pluggable routing policy — the harness behind Figure 13. The three policies the
// paper compares (DumbNet flowlet TE, DumbNet single-path, conventional ECMP) are
// provided as factory functions; all use the same routing library the host agents
// run, so policy differences are real routing differences, not modelling ones.
#ifndef DUMBNET_SRC_WORKLOAD_JOB_RUNNER_H_
#define DUMBNET_SRC_WORKLOAD_JOB_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/fluid/fluid_sim.h"
#include "src/routing/shortest_path.h"
#include "src/workload/hibench.h"

namespace dumbnet {

// Chooses a switch path for (flow, flowlet). `flowlet` increments when the runner
// re-paths (0 for the first placement); a policy that ignores it is single-path.
using PathPolicy =
    std::function<Result<SwitchPath>(uint32_t src_host, uint32_t dst_host,
                                     uint64_t flow_id, uint64_t flowlet)>;

// DumbNet with flowlet TE: k shortest paths, deterministic (flow, flowlet) pick.
PathPolicy MakeFlowletPolicy(const Topology* topo, uint32_t k, uint64_t seed);
// DumbNet without TE: the flow stays on one randomly chosen shortest path.
PathPolicy MakeSinglePathPolicy(const Topology* topo, uint64_t seed);
// Conventional fabric: per-flow ECMP hash over equal-cost shortest paths.
PathPolicy MakeEcmpPolicy(const Topology* topo, uint32_t k, uint64_t seed);

struct JobRunnerConfig {
  // 0 disables re-pathing (single-path / ECMP policies); otherwise active flows
  // are re-pathed on this period, the fluid-level rendering of flowlet switching.
  TimeNs flowlet_interval = 0;
};

struct JobResult {
  std::string name;
  TimeNs duration = 0;
  std::vector<TimeNs> stage_durations;
};

class FluidJobRunner {
 public:
  FluidJobRunner(Simulator* sim, Topology* topo, FluidSimulator* fluid, PathPolicy policy,
                 JobRunnerConfig config = JobRunnerConfig());

  // Starts the job; `on_done` fires with the result when the last stage ends.
  // Only one job at a time per runner.
  void RunJob(const HiBenchJob& job, std::function<void(const JobResult&)> on_done);

 private:
  void StartStage(size_t index);
  void FinishStage(size_t index);
  void RepathTick();

  Simulator* sim_;
  Topology* topo_;
  FluidSimulator* fluid_;
  PathPolicy policy_;
  JobRunnerConfig config_;

  const HiBenchJob* job_ = nullptr;
  std::function<void(const JobResult&)> on_done_;
  JobResult result_;
  TimeNs job_start_ = 0;
  TimeNs stage_start_ = 0;
  size_t remaining_flows_ = 0;
  uint64_t next_flow_id_ = 1;
  uint64_t repath_epoch_ = 0;

  struct ActiveFlow {
    uint64_t fluid_id;
    uint32_t src;
    uint32_t dst;
    uint64_t flow_id;
    uint64_t flowlet;
  };
  std::vector<ActiveFlow> active_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_WORKLOAD_JOB_RUNNER_H_
