#include "src/workload/hibench.h"

#include <algorithm>

namespace dumbnet {

std::vector<FlowSpec> PermutationTraffic(const std::vector<uint32_t>& hosts, double bytes,
                                         Rng& rng) {
  std::vector<uint32_t> dsts = hosts;
  // Derangement-ish: shuffle until no host maps to itself (cheap for small N).
  bool ok = false;
  while (!ok) {
    rng.Shuffle(dsts);
    ok = true;
    for (size_t i = 0; i < hosts.size(); ++i) {
      if (hosts[i] == dsts[i]) {
        ok = false;
        break;
      }
    }
  }
  std::vector<FlowSpec> out;
  out.reserve(hosts.size());
  for (size_t i = 0; i < hosts.size(); ++i) {
    out.push_back(FlowSpec{hosts[i], dsts[i], bytes});
  }
  return out;
}

std::vector<FlowSpec> AllToAllTraffic(const std::vector<uint32_t>& hosts,
                                      double bytes_per_pair) {
  std::vector<FlowSpec> out;
  out.reserve(hosts.size() * (hosts.size() - 1));
  for (uint32_t src : hosts) {
    for (uint32_t dst : hosts) {
      if (src != dst) {
        out.push_back(FlowSpec{src, dst, bytes_per_pair});
      }
    }
  }
  return out;
}

std::vector<FlowSpec> IncastTraffic(const std::vector<uint32_t>& senders, uint32_t sink,
                                    double bytes) {
  std::vector<FlowSpec> out;
  for (uint32_t src : senders) {
    if (src != sink) {
      out.push_back(FlowSpec{src, sink, bytes});
    }
  }
  return out;
}

const char* HiBenchWorkloadName(HiBenchWorkload kind) {
  switch (kind) {
    case HiBenchWorkload::kAggregation:
      return "Aggregation";
    case HiBenchWorkload::kJoin:
      return "Join";
    case HiBenchWorkload::kPagerank:
      return "Pagerank";
    case HiBenchWorkload::kTerasort:
      return "Terasort";
    case HiBenchWorkload::kWordcount:
      return "Wordcount";
  }
  return "?";
}

std::vector<HiBenchWorkload> AllHiBenchWorkloads() {
  return {HiBenchWorkload::kAggregation, HiBenchWorkload::kJoin, HiBenchWorkload::kPagerank,
          HiBenchWorkload::kTerasort, HiBenchWorkload::kWordcount};
}

namespace {

// A shuffle stage: every mapper host sends to every reducer host; per-pair volume
// is `unit * volume`, skewed by a Pareto factor when `skew > 0` (hot keys).
JobStage MakeShuffle(const std::string& name, const std::vector<uint32_t>& hosts,
                     double unit, double volume, double skew, double compute, Rng& rng) {
  JobStage stage;
  stage.name = name;
  stage.compute_seconds = compute;
  for (uint32_t src : hosts) {
    for (uint32_t dst : hosts) {
      if (src == dst) {
        continue;
      }
      double factor = 1.0;
      if (skew > 0) {
        // Pareto with mean ~1: xm = (alpha-1)/alpha for alpha > 1.
        double alpha = 1.0 + 1.0 / skew;
        factor = rng.Pareto((alpha - 1.0) / alpha, alpha);
        factor = std::min(factor, 25.0);  // cap monsters so stages terminate
      }
      stage.flows.push_back(FlowSpec{src, dst, unit * volume * factor});
    }
  }
  return stage;
}

// Replicated output writes: every host streams its partition to `replicas` other
// hosts (HDFS write pipeline).
JobStage MakeReplicatedWrite(const std::string& name, const std::vector<uint32_t>& hosts,
                             double bytes, int replicas, double compute, Rng& rng) {
  JobStage stage;
  stage.name = name;
  stage.compute_seconds = compute;
  for (size_t i = 0; i < hosts.size(); ++i) {
    for (int r = 1; r <= replicas; ++r) {
      size_t dst = (i + static_cast<size_t>(rng.UniformRange(1, static_cast<int64_t>(hosts.size()) - 1))) %
                   hosts.size();
      if (hosts[dst] == hosts[i]) {
        dst = (dst + 1) % hosts.size();
      }
      stage.flows.push_back(FlowSpec{hosts[i], hosts[dst], bytes});
    }
  }
  return stage;
}

}  // namespace

HiBenchJob MakeHiBenchJob(HiBenchWorkload kind, const std::vector<uint32_t>& hosts,
                          Rng& rng, const HiBenchScale& scale) {
  HiBenchJob job;
  job.name = HiBenchWorkloadName(kind);
  const double u = scale.unit_bytes;
  const double c = scale.compute_scale;

  switch (kind) {
    case HiBenchWorkload::kAggregation:
      // Scan + heavy skewed shuffle into aggregators + small output.
      job.stages.push_back(MakeShuffle("shuffle", hosts, u, 0.8, 1.4, 8 * c, rng));
      job.stages.push_back(MakeReplicatedWrite("output", hosts, 0.1 * u, 2, 4 * c, rng));
      break;
    case HiBenchWorkload::kJoin:
      // Two tables shuffled to the join sites, then output.
      job.stages.push_back(MakeShuffle("shuffle-left", hosts, u, 0.5, 1.0, 6 * c, rng));
      job.stages.push_back(MakeShuffle("shuffle-right", hosts, u, 0.35, 1.0, 4 * c, rng));
      job.stages.push_back(MakeReplicatedWrite("output", hosts, 0.1 * u, 2, 3 * c, rng));
      break;
    case HiBenchWorkload::kPagerank:
      // Iterative: three superstep shuffles of moderate, uniform volume.
      for (int iter = 0; iter < 3; ++iter) {
        job.stages.push_back(MakeShuffle("iteration-" + std::to_string(iter), hosts, u,
                                         0.35, 0.0, 5 * c, rng));
      }
      break;
    case HiBenchWorkload::kTerasort:
      // The big one: full uniform shuffle of the whole dataset, then replicated
      // output of the sorted runs.
      job.stages.push_back(MakeShuffle("shuffle", hosts, u, 1.0, 0.6, 6 * c, rng));
      job.stages.push_back(MakeReplicatedWrite("output", hosts, 0.4 * u, 2, 4 * c, rng));
      break;
    case HiBenchWorkload::kWordcount:
      // Map-heavy: combiners shrink the shuffle to a small fraction.
      job.stages.push_back(MakeShuffle("shuffle", hosts, u, 0.12, 0.3, 14 * c, rng));
      job.stages.push_back(MakeReplicatedWrite("output", hosts, 0.05 * u, 2, 3 * c, rng));
      break;
  }
  return job;
}

}  // namespace dumbnet
