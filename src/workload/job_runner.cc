#include "src/workload/job_runner.h"

#include <algorithm>

#include "src/routing/graph.h"
#include "src/util/logging.h"

namespace dumbnet {
namespace {

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 31;
  return x;
}

// Shared plumbing for the k-shortest-path-based policies: resolves edge switches
// and computes (then memoizes) the equal-cost shortest path set per switch pair.
class KspPolicyState {
 public:
  KspPolicyState(const Topology* topo, uint32_t k) : topo_(topo), k_(k) {}

  Result<std::vector<SwitchPath>> PathsBetween(uint32_t src_host, uint32_t dst_host) {
    auto src_up = topo_->HostUplink(src_host);
    auto dst_up = topo_->HostUplink(dst_host);
    if (!src_up.ok() || !dst_up.ok()) {
      return Error(ErrorCode::kNotFound, "host not attached");
    }
    uint32_t a = src_up.value().node.index;
    uint32_t b = dst_up.value().node.index;
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      return it->second;
    }
    SwitchGraph graph(*topo_);
    auto paths = KShortestPaths(graph, a, b, k_);
    if (!paths.ok()) {
      return paths.error();
    }
    // Keep only the equal-cost minimal set: that is what ECMP and flowlet TE
    // actually spread over.
    size_t min_len = SIZE_MAX;
    for (const SwitchPath& p : paths.value()) {
      min_len = std::min(min_len, p.size());
    }
    std::vector<SwitchPath> minimal;
    for (SwitchPath& p : paths.value()) {
      if (p.size() == min_len) {
        minimal.push_back(std::move(p));
      }
    }
    cache_[key] = minimal;
    return minimal;
  }

 private:
  const Topology* topo_;
  uint32_t k_;
  std::unordered_map<uint64_t, std::vector<SwitchPath>> cache_;
};

}  // namespace

PathPolicy MakeFlowletPolicy(const Topology* topo, uint32_t k, uint64_t seed) {
  auto state = std::make_shared<KspPolicyState>(topo, k);
  return [state, seed](uint32_t src, uint32_t dst, uint64_t flow_id,
                       uint64_t flowlet) -> Result<SwitchPath> {
    auto paths = state->PathsBetween(src, dst);
    if (!paths.ok()) {
      return paths.error();
    }
    size_t pick = static_cast<size_t>(Mix(Mix(flow_id, flowlet), seed) %
                                      paths.value().size());
    return paths.value()[pick];
  };
}

PathPolicy MakeSinglePathPolicy(const Topology* topo, uint64_t seed) {
  auto state = std::make_shared<KspPolicyState>(topo, 4);
  return [state, seed](uint32_t src, uint32_t dst, uint64_t /*flow_id*/,
                       uint64_t /*flowlet*/) -> Result<SwitchPath> {
    auto paths = state->PathsBetween(src, dst);
    if (!paths.ok()) {
      return paths.error();
    }
    // One fixed path per flow for its whole life — and to model the paper's
    // "single path" variant (no per-flow spreading from the path cache), the pick
    // depends only on the host pair, not the flow.
    size_t pick = static_cast<size_t>(
        Mix(Mix(static_cast<uint64_t>(src) << 32 | dst, 0), seed) % paths.value().size());
    return paths.value()[pick];
  };
}

PathPolicy MakeEcmpPolicy(const Topology* topo, uint32_t k, uint64_t seed) {
  auto state = std::make_shared<KspPolicyState>(topo, k);
  return [state, seed](uint32_t src, uint32_t dst, uint64_t flow_id,
                       uint64_t /*flowlet*/) -> Result<SwitchPath> {
    auto paths = state->PathsBetween(src, dst);
    if (!paths.ok()) {
      return paths.error();
    }
    // Per-flow hash, sticky for the flow's lifetime (ignores flowlets).
    size_t pick =
        static_cast<size_t>(Mix(flow_id, seed ^ 0xECEC) % paths.value().size());
    return paths.value()[pick];
  };
}

FluidJobRunner::FluidJobRunner(Simulator* sim, Topology* topo, FluidSimulator* fluid,
                               PathPolicy policy, JobRunnerConfig config)
    : sim_(sim), topo_(topo), fluid_(fluid), policy_(std::move(policy)), config_(config) {}

void FluidJobRunner::RunJob(const HiBenchJob& job,
                            std::function<void(const JobResult&)> on_done) {
  job_ = &job;
  on_done_ = std::move(on_done);
  result_ = JobResult{};
  result_.name = job.name;
  job_start_ = sim_->Now();
  ++repath_epoch_;
  if (config_.flowlet_interval > 0) {
    uint64_t epoch = repath_epoch_;
    sim_->ScheduleAfter(config_.flowlet_interval, [this, epoch] {
      if (epoch == repath_epoch_) {
        RepathTick();
      }
    });
  }
  StartStage(0);
}

void FluidJobRunner::StartStage(size_t index) {
  if (index >= job_->stages.size()) {
    ++repath_epoch_;  // stop the repath ticker
    result_.duration = sim_->Now() - job_start_;
    if (on_done_) {
      on_done_(result_);
    }
    return;
  }
  const JobStage& stage = job_->stages[index];
  stage_start_ = sim_->Now();
  active_.clear();
  remaining_flows_ = stage.flows.size();
  if (remaining_flows_ == 0) {
    FinishStage(index);
    return;
  }
  for (const FlowSpec& spec : stage.flows) {
    uint64_t flow_id = next_flow_id_++;
    auto path = policy_(spec.src_host, spec.dst_host, flow_id, 0);
    if (!path.ok()) {
      DN_WARN << "job " << job_->name << ": no path for flow, skipping";
      --remaining_flows_;
      continue;
    }
    auto started = fluid_->StartFlow(
        spec.src_host, spec.dst_host, spec.bytes, path.value(),
        [this, index](uint64_t fid, TimeNs) {
          active_.erase(std::remove_if(active_.begin(), active_.end(),
                                       [fid](const ActiveFlow& f) {
                                         return f.fluid_id == fid;
                                       }),
                        active_.end());
          if (--remaining_flows_ == 0) {
            FinishStage(index);
          }
        });
    if (started.ok()) {
      active_.push_back(ActiveFlow{started.value(), spec.src_host, spec.dst_host,
                                   flow_id, 0});
    } else {
      --remaining_flows_;
    }
  }
  if (remaining_flows_ == 0 && active_.empty()) {
    FinishStage(index);
  }
}

void FluidJobRunner::FinishStage(size_t index) {
  const JobStage& stage = job_->stages[index];
  TimeNs compute = static_cast<TimeNs>(stage.compute_seconds * 1e9);
  sim_->ScheduleAfter(compute, [this, index] {
    result_.stage_durations.push_back(sim_->Now() - stage_start_);
    StartStage(index + 1);
  });
}

void FluidJobRunner::RepathTick() {
  uint64_t epoch = repath_epoch_;
  for (ActiveFlow& flow : active_) {
    ++flow.flowlet;
    auto path = policy_(flow.src, flow.dst, flow.flow_id, flow.flowlet);
    if (path.ok()) {
      (void)fluid_->RepathFlow(flow.fluid_id, path.value());
    }
  }
  sim_->ScheduleAfter(config_.flowlet_interval, [this, epoch] {
    if (epoch == repath_epoch_) {
      RepathTick();
    }
  });
}

}  // namespace dumbnet
