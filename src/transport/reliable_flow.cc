#include "src/transport/reliable_flow.h"

#include <algorithm>

#include "src/sim/footprint.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"

namespace dumbnet {

namespace {
// Footprint cells: one per flow endpoint. Transport state is annotated as
// commuting because the protocol itself recovers from reordering — cumulative
// acks are a max-merge, go-back-N retransmits are idempotent at the receiver —
// so any same-instant processing order converges to the same completed flow.
constexpr uint64_t kSaltFlowSender = 0x5E4D;
constexpr uint64_t kSaltFlowRecv = 0x4ECF;
constexpr const char kFpFlowSender[] =
    "cumulative-ack max-merge; go-back-n retransmits idempotent";
constexpr const char kFpFlowRecv[] =
    "in-order receive; reordering recovered by retransmission";
}  // namespace

// --------------------------------------------------------------------------------
// Channels

DumbNetChannel::DumbNetChannel(HostAgent* agent) : agent_(agent) {
  agent_->SetDataHandler([this](const Packet& pkt, const DataPayload& data) {
    auto it = handlers_.find(data.flow_id);
    if (it != handlers_.end()) {
      it->second(pkt.eth.src_mac, data);
    } else if (default_handler_) {
      default_handler_(pkt.eth.src_mac, data);
    }
  });
}

void DumbNetChannel::SendSegment(uint64_t dst_mac, const DataPayload& segment) {
  (void)agent_->Send(dst_mac, segment.flow_id, segment);
}

void DumbNetChannel::SetSegmentHandler(uint64_t flow_id, SegmentHandler handler) {
  handlers_[flow_id] = std::move(handler);
}

EthernetChannel::EthernetChannel(EthernetHost* host, Simulator* sim)
    : host_(host), sim_(sim) {
  host_->SetFrameHandler([this](const Packet& pkt, const DataPayload& data) {
    auto it = handlers_.find(data.flow_id);
    if (it != handlers_.end()) {
      it->second(pkt.eth.src_mac, data);
    } else if (default_handler_) {
      default_handler_(pkt.eth.src_mac, data);
    }
  });
}

void EthernetChannel::SendSegment(uint64_t dst_mac, const DataPayload& segment) {
  host_->SendFrame(dst_mac, segment);
}

void EthernetChannel::SetSegmentHandler(uint64_t flow_id, SegmentHandler handler) {
  handlers_[flow_id] = std::move(handler);
}

// --------------------------------------------------------------------------------
// Sender

ReliableFlowSender::ReliableFlowSender(TransportChannel* channel, uint64_t flow_id,
                                       uint64_t dst_mac, FlowConfig config)
    : channel_(channel),
      sim_(&channel->sim()),
      flow_id_(flow_id),
      dst_mac_(dst_mac),
      config_(config) {
  channel_->SetSegmentHandler(flow_id_, [this](uint64_t, const DataPayload& seg) {
    if (seg.is_ack) {
      OnAck(seg);
    }
  });
}

void ReliableFlowSender::Start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  running_ = true;
  PumpWindow();
  ArmTimer();
}

void ReliableFlowSender::Stop() {
  running_ = false;
  ++timer_epoch_;
}

void ReliableFlowSender::PumpWindow() {
  if (!running_) {
    return;
  }
  const uint64_t total_segments =
      config_.total_bytes == 0
          ? UINT64_MAX
          : (static_cast<uint64_t>(config_.total_bytes) +
             static_cast<uint64_t>(config_.segment_bytes) - 1) /
                static_cast<uint64_t>(config_.segment_bytes);
  while (next_seq_ < acked_seq_ + config_.window_segments && next_seq_ < total_segments) {
    SendSegmentAt(next_seq_);
    ++next_seq_;
  }
}

void ReliableFlowSender::SendSegmentAt(uint64_t seq) {
  DataPayload seg;
  seg.flow_id = flow_id_;
  seg.seq = seq;
  seg.is_ack = false;
  seg.bytes = config_.segment_bytes;
  if (seq < progress_.segments_sent) {
    ++progress_.retransmissions;
    DN_COUNTER_INC("transport.retransmissions");
    DN_TRACE_EVENT(kTransport, kRetransmit, sim_->Now(), flow_id_, seq);
  }
  progress_.segments_sent = std::max(progress_.segments_sent, seq + 1);
  channel_->SendSegment(dst_mac_, seg);
}

void ReliableFlowSender::OnAck(const DataPayload& ack) {
  DN_FP_COMMUTES(kFlow, footprint::FpKey(flow_id_, kSaltFlowSender), kFpFlowSender);
  if (!running_) {
    return;
  }
  if (ack.ecn) {
    ++progress_.ecn_acks;
  }
  if (ack.ack <= acked_seq_) {
    return;
  }
  acked_seq_ = ack.ack;
  progress_.bytes_acked =
      acked_seq_ * static_cast<uint64_t>(config_.segment_bytes);
  if (config_.total_bytes != 0 && progress_.bytes_acked >= config_.total_bytes) {
    progress_.bytes_acked = config_.total_bytes;
    progress_.finished = true;
    running_ = false;
    ++timer_epoch_;
    if (on_complete_) {
      on_complete_();
    }
    return;
  }
  ArmTimer();
  PumpWindow();
}

void ReliableFlowSender::ArmTimer() {
  uint64_t epoch = ++timer_epoch_;
  sim_->ScheduleAfter(config_.rto, [this, epoch] {
    DN_FP_SCOPE("flow.rto", flow_id_);
    DN_FP_COMMUTES(kFlow, footprint::FpKey(flow_id_, kSaltFlowSender), kFpFlowSender);
    if (epoch != timer_epoch_ || !running_) {
      return;
    }
    if (acked_seq_ < next_seq_) {
      // Go-back-N: rewind and resend the whole outstanding window.
      ++progress_.timeouts;
      DN_COUNTER_INC("transport.timeouts");
      DN_TRACE_EVENT(kTransport, kTimeout, sim_->Now(), flow_id_, acked_seq_);
      next_seq_ = acked_seq_;
      PumpWindow();
    }
    ArmTimer();
  });
}

// --------------------------------------------------------------------------------
// Receiver

ReliableFlowReceiver::ReliableFlowReceiver(TransportChannel* channel, uint64_t flow_id)
    : channel_(channel), flow_id_(flow_id) {
  channel_->SetSegmentHandler(flow_id_, [this](uint64_t src_mac, const DataPayload& seg) {
    if (!seg.is_ack) {
      OnSegment(src_mac, seg);
    }
  });
}

void ReliableFlowReceiver::OnSegment(uint64_t src_mac, const DataPayload& seg) {
  DN_FP_COMMUTES(kFlow, footprint::FpKey(flow_id_, kSaltFlowRecv), kFpFlowRecv);
  ++segments_received_;
  if (seg.seq == expected_seq_) {
    ++expected_seq_;
    bytes_received_ += static_cast<uint64_t>(seg.bytes);
    if (hook_) {
      hook_(static_cast<uint64_t>(seg.bytes));
    }
  }
  // Cumulative ack (also re-acks duplicates so a lost ack cannot wedge the flow).
  // An ECN mark on the data segment is echoed back to the sender (RFC 3168 style).
  DataPayload ack;
  ack.flow_id = flow_id_;
  ack.ack = expected_seq_;
  ack.is_ack = true;
  ack.bytes = 64;
  ack.ecn = seg.ecn;
  channel_->SendSegment(src_mac, ack);
}

}  // namespace dumbnet
