// A small reliable transport for the packet-level experiments: fixed-window,
// cumulative-ack, go-back-N retransmission. It is deliberately simpler than TCP —
// the paper's failover experiments (Figure 11b) need a transport that stalls when
// its path blackholes and resumes once the host agent fails over, which this
// captures with minimal machinery.
//
// The transport is channel-agnostic: it runs over a DumbNet host agent or a
// baseline Ethernet host through the TransportChannel interface.
#ifndef DUMBNET_SRC_TRANSPORT_RELIABLE_FLOW_H_
#define DUMBNET_SRC_TRANSPORT_RELIABLE_FLOW_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/baseline/ethernet_switch.h"
#include "src/host/host_agent.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace dumbnet {

// Abstract one-way segment pipe between two hosts.
class TransportChannel {
 public:
  virtual ~TransportChannel() = default;

  virtual void SendSegment(uint64_t dst_mac, const DataPayload& segment) = 0;
  using SegmentHandler = std::function<void(uint64_t src_mac, const DataPayload&)>;
  virtual void SetSegmentHandler(uint64_t flow_id, SegmentHandler handler) = 0;
  // Fallback for segments whose flow id has no registered handler (receivers that
  // accept flows they have not seen before, e.g. pHost).
  virtual void SetDefaultSegmentHandler(SegmentHandler handler) { (void)handler; }
  virtual Simulator& sim() = 0;
};

// Channel over a DumbNet host agent. Demuxes inbound segments by flow id. The
// agent's data handler is claimed by this channel; create one channel per host and
// register all flows with it.
class DumbNetChannel : public TransportChannel {
 public:
  explicit DumbNetChannel(HostAgent* agent);

  void SendSegment(uint64_t dst_mac, const DataPayload& segment) override;
  void SetSegmentHandler(uint64_t flow_id, SegmentHandler handler) override;
  void SetDefaultSegmentHandler(SegmentHandler handler) override {
    default_handler_ = std::move(handler);
  }
  Simulator& sim() override { return agent_->sim(); }

 private:
  HostAgent* agent_;
  std::unordered_map<uint64_t, SegmentHandler> handlers_;
  SegmentHandler default_handler_;
};

// Channel over a baseline Ethernet host.
class EthernetChannel : public TransportChannel {
 public:
  EthernetChannel(EthernetHost* host, Simulator* sim);

  void SendSegment(uint64_t dst_mac, const DataPayload& segment) override;
  void SetSegmentHandler(uint64_t flow_id, SegmentHandler handler) override;
  void SetDefaultSegmentHandler(SegmentHandler handler) override {
    default_handler_ = std::move(handler);
  }
  Simulator& sim() override { return *sim_; }

 private:
  EthernetHost* host_;
  Simulator* sim_;
  std::unordered_map<uint64_t, SegmentHandler> handlers_;
  SegmentHandler default_handler_;
};

struct FlowConfig {
  int64_t segment_bytes = 1460;
  uint32_t window_segments = 48;
  TimeNs rto = Ms(15);
  // 0 = open-ended flow (runs until Stop()).
  uint64_t total_bytes = 0;
};

struct FlowProgress {
  uint64_t bytes_acked = 0;
  uint64_t segments_sent = 0;
  uint64_t retransmissions = 0;
  uint64_t timeouts = 0;
  uint64_t ecn_acks = 0;  // acks carrying an echoed Congestion Experienced mark
  bool finished = false;
};

// Sender half. The receiver half is implicit: ReliableFlowReceiver acknowledges
// in-order segments on the reverse channel.
class ReliableFlowSender {
 public:
  ReliableFlowSender(TransportChannel* channel, uint64_t flow_id, uint64_t dst_mac,
                     FlowConfig config = FlowConfig());

  void Start(std::function<void()> on_complete = nullptr);
  void Stop();

  const FlowProgress& progress() const { return progress_; }
  uint64_t flow_id() const { return flow_id_; }

 private:
  void PumpWindow();
  void SendSegmentAt(uint64_t seq);
  void OnAck(const DataPayload& ack);
  void ArmTimer();

  TransportChannel* channel_;
  Simulator* sim_;
  uint64_t flow_id_;
  uint64_t dst_mac_;
  FlowConfig config_;

  uint64_t next_seq_ = 0;   // next new segment to send
  uint64_t acked_seq_ = 0;  // cumulative: all < acked_seq_ delivered
  uint64_t timer_epoch_ = 0;
  bool running_ = false;
  std::function<void()> on_complete_;
  FlowProgress progress_;
};

class ReliableFlowReceiver {
 public:
  ReliableFlowReceiver(TransportChannel* channel, uint64_t flow_id);

  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t segments_received() const { return segments_received_; }

  // Called on every in-order byte delivery, for throughput sampling.
  void SetProgressHook(std::function<void(uint64_t bytes)> hook) { hook_ = std::move(hook); }

 private:
  void OnSegment(uint64_t src_mac, const DataPayload& seg);

  TransportChannel* channel_;
  uint64_t flow_id_;
  uint64_t expected_seq_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t segments_received_ = 0;
  std::function<void(uint64_t)> hook_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_TRANSPORT_RELIABLE_FLOW_H_
