// pHost-style receiver-driven transport (Gao et al., CoNEXT'15), the
// source-routing-friendly datacenter transport the paper names as a natural
// DumbNet extension ("We can easily support existing source-routing based
// optimizations such as pHost on to DumbNet too", Section 3.1).
//
// Simplified faithful core:
//   * the sender announces a flow with an RTS (request-to-send) carrying its size;
//   * the receiver paces out one TOKEN per packet slot at its downlink rate,
//     multiplexing tokens between concurrent senders (shortest-remaining-first);
//   * a sender may spend a small budget of FREE tokens at flow start (one BDP) so
//     short flows finish in one RTT;
//   * each data packet answers one token; the receiver acks completion.
//
// Because the *receiver* schedules arrivals, concurrent incast senders never
// overrun the bottleneck downlink queue — the behaviour the incast test and bench
// check against the window-based ReliableFlow.
//
// Wire encoding: control messages ride DataPayload with seq/ack repurposed
// (kRts/kToken/kDone markers in `ack`), so no new payload type is needed.
#ifndef DUMBNET_SRC_TRANSPORT_PHOST_H_
#define DUMBNET_SRC_TRANSPORT_PHOST_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/transport/reliable_flow.h"

namespace dumbnet {

struct PHostConfig {
  int64_t segment_bytes = 1460;
  // Free tokens spent before the first granted token arrives (~one BDP).
  uint32_t free_tokens = 8;
  // The receiver's token pacing interval ~ segment serialization time on its
  // downlink; configure to the known access-link rate.
  double downlink_gbps = 10.0;
  // Sender gives up if nothing arrives for this long (token loss recovery).
  TimeNs retry_timeout = Ms(20);
};

// Receiver half: schedules all inbound flows on one downlink.
class PHostReceiver {
 public:
  PHostReceiver(TransportChannel* channel, uint64_t flow_id_base,
                PHostConfig config = PHostConfig());

  // Total payload bytes received across flows.
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t tokens_issued() const { return tokens_issued_; }

  // Fires when a flow's last byte arrives.
  void SetFlowCompleteHook(std::function<void(uint64_t flow_id, TimeNs now)> hook) {
    complete_hook_ = std::move(hook);
  }

 private:
  struct InboundFlow {
    uint64_t src_mac = 0;
    uint64_t total_segments = 0;
    uint64_t received_segments = 0;
    uint64_t granted = 0;       // tokens issued so far
    uint64_t next_missing = 0;  // smallest sequence number not yet received
    std::unordered_set<uint64_t> seen;  // duplicate filter
  };

  void OnSegment(uint64_t src_mac, const DataPayload& seg);
  void PaceTokens();
  void GrantOne();

  TransportChannel* channel_;
  Simulator* sim_;
  uint64_t flow_id_base_;
  PHostConfig config_;

  std::map<uint64_t, InboundFlow> flows_;  // ordered: deterministic iteration
  uint64_t bytes_received_ = 0;
  uint64_t tokens_issued_ = 0;
  bool pacing_ = false;
  std::function<void(uint64_t, TimeNs)> complete_hook_;
};

// Sender half: one flow.
class PHostSender {
 public:
  PHostSender(TransportChannel* channel, uint64_t flow_id, uint64_t dst_mac,
              uint64_t total_bytes, PHostConfig config = PHostConfig());

  void Start(std::function<void()> on_complete = nullptr);

  uint64_t segments_sent() const { return segments_sent_; }
  bool finished() const { return finished_; }

 private:
  void OnControl(const DataPayload& msg);
  void SendSegment();
  void ArmRetry();

  TransportChannel* channel_;
  Simulator* sim_;
  uint64_t flow_id_;
  uint64_t dst_mac_;
  uint64_t total_segments_;
  PHostConfig config_;

  uint64_t segments_sent_ = 0;
  uint64_t tokens_available_ = 0;
  bool finished_ = false;
  uint64_t retry_epoch_ = 0;
  std::function<void()> on_complete_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_TRANSPORT_PHOST_H_
