#include "src/transport/phost.h"

#include <algorithm>
#include <unordered_set>

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"

namespace dumbnet {
namespace {

// Control-message markers. RTS rides in DataPayload::seq; receiver->sender control
// messages ride is_ack=true with the marker in DataPayload::ack's top bits.
constexpr uint64_t kRtsSeq = UINT64_MAX;
constexpr uint64_t kTokenMark = 1ULL << 62;
constexpr uint64_t kDoneMark = 1ULL << 63;
constexpr int64_t kControlBytes = 40;

}  // namespace

// --------------------------------------------------------------------------------
// Receiver

PHostReceiver::PHostReceiver(TransportChannel* channel, uint64_t flow_id_base,
                             PHostConfig config)
    : channel_(channel), sim_(&channel->sim()), flow_id_base_(flow_id_base),
      config_(config) {
  channel_->SetDefaultSegmentHandler([this](uint64_t src_mac, const DataPayload& seg) {
    if (!seg.is_ack) {
      OnSegment(src_mac, seg);
    }
  });
}

void PHostReceiver::OnSegment(uint64_t src_mac, const DataPayload& seg) {
  if (seg.flow_id < flow_id_base_) {
    return;  // not a pHost flow
  }
  if (seg.seq == kRtsSeq) {
    // RTS (possibly a retry): (re)register the flow; on retry, re-grant from what
    // actually arrived so lost tokens/segments are re-covered.
    InboundFlow& flow = flows_[seg.flow_id];
    flow.src_mac = src_mac;
    flow.total_segments = seg.ack;
    flow.granted = std::min(flow.granted, flow.received_segments);
    // The sender spends its free tokens immediately; those segments need no grant.
    if (flow.granted < std::min<uint64_t>(config_.free_tokens, flow.total_segments)) {
      flow.granted = std::min<uint64_t>(config_.free_tokens, flow.total_segments);
    }
    if (!pacing_) {
      pacing_ = true;
      PaceTokens();
    }
    return;
  }
  auto it = flows_.find(seg.flow_id);
  if (it == flows_.end()) {
    return;  // data before RTS: drop (sender will retry)
  }
  InboundFlow& flow = it->second;
  if (!flow.seen.insert(seg.seq).second) {
    return;  // duplicate
  }
  ++flow.received_segments;
  while (flow.seen.count(flow.next_missing) > 0) {
    ++flow.next_missing;
  }
  bytes_received_ += static_cast<uint64_t>(seg.bytes);
  if (flow.received_segments >= flow.total_segments) {
    DataPayload done;
    done.flow_id = seg.flow_id;
    done.is_ack = true;
    done.ack = kDoneMark;
    done.bytes = kControlBytes;
    channel_->SendSegment(flow.src_mac, done);
    if (complete_hook_) {
      complete_hook_(seg.flow_id, sim_->Now());
    }
    flows_.erase(it);
  }
}

void PHostReceiver::PaceTokens() {
  GrantOne();
  // Keep pacing while any flow still needs grants.
  bool more = false;
  for (const auto& [id, flow] : flows_) {
    if (flow.granted < flow.total_segments) {
      more = true;
      break;
    }
  }
  if (!more) {
    pacing_ = false;
    return;
  }
  TimeNs interval = TransmitTimeNs(config_.segment_bytes + 14, config_.downlink_gbps);
  sim_->ScheduleAfter(interval, [this] { PaceTokens(); });
}

void PHostReceiver::GrantOne() {
  // SRPT: grant to the flow with the fewest remaining segments.
  InboundFlow* best = nullptr;
  uint64_t best_id = 0;
  uint64_t best_remaining = UINT64_MAX;
  for (auto& [id, flow] : flows_) {
    if (flow.granted >= flow.total_segments) {
      continue;
    }
    uint64_t remaining = flow.total_segments - flow.granted;
    if (remaining < best_remaining) {
      best_remaining = remaining;
      best = &flow;
      best_id = id;
    }
  }
  if (best == nullptr) {
    return;
  }
  ++best->granted;
  ++tokens_issued_;
  DataPayload token;
  token.flow_id = best_id;
  token.is_ack = true;
  token.ack = kTokenMark;
  // Repair hint: the smallest missing sequence number (the sender rewinds here if
  // it already sent past this point and something was lost).
  token.seq = best->next_missing;
  token.bytes = kControlBytes;
  channel_->SendSegment(best->src_mac, token);
}

// --------------------------------------------------------------------------------
// Sender

PHostSender::PHostSender(TransportChannel* channel, uint64_t flow_id, uint64_t dst_mac,
                         uint64_t total_bytes, PHostConfig config)
    : channel_(channel),
      sim_(&channel->sim()),
      flow_id_(flow_id),
      dst_mac_(dst_mac),
      total_segments_((total_bytes + static_cast<uint64_t>(config.segment_bytes) - 1) /
                      static_cast<uint64_t>(config.segment_bytes)),
      config_(config) {
  channel_->SetSegmentHandler(flow_id_, [this](uint64_t, const DataPayload& msg) {
    if (msg.is_ack) {
      OnControl(msg);
    }
  });
}

void PHostSender::Start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  DataPayload rts;
  rts.flow_id = flow_id_;
  rts.seq = UINT64_MAX;  // kRtsSeq
  rts.ack = total_segments_;
  rts.bytes = kControlBytes;
  channel_->SendSegment(dst_mac_, rts);
  // Spend the free-token budget right away (short flows finish in ~1 RTT).
  for (uint32_t i = 0; i < config_.free_tokens && segments_sent_ < total_segments_; ++i) {
    SendSegment();
  }
  ArmRetry();
}

void PHostSender::OnControl(const DataPayload& msg) {
  if (finished_) {
    return;
  }
  if (msg.ack & kDoneMark) {
    finished_ = true;
    ++retry_epoch_;
    if (on_complete_) {
      on_complete_();
    }
    return;
  }
  if (msg.ack & kTokenMark) {
    if (segments_sent_ >= total_segments_ && msg.seq < total_segments_) {
      // Everything has been sent once but the receiver is still missing
      // `msg.seq`: targeted retransmission (one token repairs one loss).
      DN_COUNTER_INC("transport.retransmissions");
      DN_TRACE_EVENT(kTransport, kRetransmit, sim_->Now(), flow_id_, msg.seq);
      DataPayload seg;
      seg.flow_id = flow_id_;
      seg.seq = msg.seq;
      seg.bytes = config_.segment_bytes;
      channel_->SendSegment(dst_mac_, seg);
    } else if (segments_sent_ < total_segments_) {
      SendSegment();
    }
    ArmRetry();
  }
}

void PHostSender::SendSegment() {
  DataPayload seg;
  seg.flow_id = flow_id_;
  seg.seq = segments_sent_++;
  seg.bytes = config_.segment_bytes;
  channel_->SendSegment(dst_mac_, seg);
}

void PHostSender::ArmRetry() {
  uint64_t epoch = ++retry_epoch_;
  sim_->ScheduleAfter(config_.retry_timeout, [this, epoch] {
    if (epoch != retry_epoch_ || finished_) {
      return;
    }
    // Stall: something was lost. Re-announce; the receiver re-grants from what it
    // actually has, and our send cursor rewinds on the next repair hint.
    DN_COUNTER_INC("transport.timeouts");
    DN_TRACE_EVENT(kTransport, kTimeout, sim_->Now(), flow_id_, segments_sent_);
    DataPayload rts;
    rts.flow_id = flow_id_;
    rts.seq = UINT64_MAX;
    rts.ack = total_segments_;
    rts.bytes = kControlBytes;
    channel_->SendSegment(dst_mac_, rts);
    ArmRetry();
  });
}

}  // namespace dumbnet
