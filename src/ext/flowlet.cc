#include "src/ext/flowlet.h"

namespace dumbnet {
namespace {

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

FlowletRouter::FlowletRouter(HostAgent* agent, FlowletConfig config)
    : agent_(agent), config_(config) {
  agent_->SetRouteChooser([this](const PathTableEntry& entry, uint64_t flow_id) {
    return ChooseRoute(entry, flow_id);
  });
}

uint64_t FlowletRouter::FlowletIdOf(uint64_t flow_id) const {
  auto it = flows_.find(flow_id);
  return it == flows_.end() ? 0 : it->second.flowlet_id;
}

size_t FlowletRouter::ChooseRoute(const PathTableEntry& entry, uint64_t flow_id) {
  if (entry.paths.empty()) {
    return SIZE_MAX;
  }
  // Deterministic pick over the minimal-length (equal-cost) subset, keyed by
  // (flow id, flowlet id): the same flowlet always maps to the same path, a new
  // flowlet usually maps to a different one.
  size_t min_len = SIZE_MAX;
  for (const CachedRoute& r : entry.paths) {
    min_len = std::min(min_len, r.uid_path.size());
  }
  size_t count = 0;
  for (const CachedRoute& r : entry.paths) {
    count += (r.uid_path.size() == min_len) ? 1u : 0u;
  }
  uint64_t flowlet_id = FlowletIdOf(flow_id);
  size_t target = static_cast<size_t>(Mix(flow_id, flowlet_id) % count);
  for (size_t i = 0; i < entry.paths.size(); ++i) {
    if (entry.paths[i].uid_path.size() == min_len && target-- == 0) {
      return i;
    }
  }
  return SIZE_MAX;
}

Status FlowletRouter::Send(uint64_t dst_mac, uint64_t flow_id, DataPayload payload) {
  FlowState& state = flows_[flow_id];
  TimeNs now = agent_->sim().Now();
  if (state.last_packet != 0 && now - state.last_packet > config_.gap) {
    // Idle gap: new flowlet, rebind so the routing function runs again.
    ++state.flowlet_id;
    ++stats_.flowlets_started;
    ++stats_.rebinds;
    agent_->RebindFlow(dst_mac, flow_id);
  } else if (state.last_packet == 0) {
    ++stats_.flowlets_started;
  }
  state.last_packet = now;
  ++stats_.packets;
  return agent_->Send(dst_mac, flow_id, payload);
}

}  // namespace dumbnet
