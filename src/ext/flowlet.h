// Flowlet-based traffic engineering (paper Section 6.2). A thin shim over the host
// agent's send path: it tracks the inter-packet gap per flow and, whenever the gap
// exceeds the flowlet timeout, bumps the flow's flowlet id and rebinds the flow —
// the pluggable routing function then deterministically maps (flow id, flowlet id)
// onto one of the k cached equal-cost paths. Idle gaps are long enough that the
// in-flight packets of the previous flowlet have drained, so reordering is avoided
// without any switch support.
#ifndef DUMBNET_SRC_EXT_FLOWLET_H_
#define DUMBNET_SRC_EXT_FLOWLET_H_

#include <cstdint>
#include <unordered_map>

#include "src/host/host_agent.h"

namespace dumbnet {

struct FlowletConfig {
  // Gap that starts a new flowlet. The paper's testbed used flowlets on 10 GbE;
  // a few hundred microseconds is the classic choice.
  TimeNs gap = Us(500);
};

struct FlowletStats {
  uint64_t packets = 0;
  uint64_t flowlets_started = 0;
  uint64_t rebinds = 0;
};

class FlowletRouter {
 public:
  // Installs itself as `agent`'s routing function. The agent must outlive this.
  FlowletRouter(HostAgent* agent, FlowletConfig config = FlowletConfig());

  // Sends application data with flowlet tracking; use instead of agent->Send().
  Status Send(uint64_t dst_mac, uint64_t flow_id, DataPayload payload);

  const FlowletStats& stats() const { return stats_; }

  // Exposed for tests: the flowlet id currently assigned to a flow.
  uint64_t FlowletIdOf(uint64_t flow_id) const;

 private:
  struct FlowState {
    TimeNs last_packet = 0;
    uint64_t flowlet_id = 0;
  };

  size_t ChooseRoute(const PathTableEntry& entry, uint64_t flow_id);

  HostAgent* agent_;
  FlowletConfig config_;
  std::unordered_map<uint64_t, FlowState> flows_;
  FlowletStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_EXT_FLOWLET_H_
