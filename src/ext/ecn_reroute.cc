#include "src/ext/ecn_reroute.h"

namespace dumbnet {

EcnRerouter::EcnRerouter(HostAgent* agent, ReliableFlowSender* sender, uint64_t dst_mac,
                         EcnRerouteConfig config)
    : agent_(agent), sender_(sender), dst_mac_(dst_mac), config_(config) {}

void EcnRerouter::Start() {
  running_ = true;
  last_ecn_acks_ = sender_->progress().ecn_acks;
  last_bytes_acked_ = sender_->progress().bytes_acked;
  agent_->sim().ScheduleAfter(config_.sample_interval, [this] { Sample(); });
}

void EcnRerouter::Sample() {
  if (!running_) {
    return;
  }
  ++stats_.samples;
  const FlowProgress& progress = sender_->progress();
  uint64_t ecn_delta = progress.ecn_acks - last_ecn_acks_;
  uint64_t acked_delta = progress.bytes_acked - last_bytes_acked_;
  // ~one ack per segment; approximate the window's ack count from bytes.
  uint64_t acks = acked_delta / 1460 + 1;
  last_ecn_acks_ = progress.ecn_acks;
  last_bytes_acked_ = progress.bytes_acked;

  TimeNs now = agent_->sim().Now();
  double fraction = static_cast<double>(ecn_delta) / static_cast<double>(acks);
  if (now >= holddown_until_ && fraction > config_.mark_fraction_threshold) {
    // The current path is congested: let the routing function re-pick among the
    // cached equal-cost paths on the next packet.
    agent_->RebindFlow(dst_mac_, sender_->flow_id());
    holddown_until_ = now + config_.holddown;
    ++stats_.reroutes;
  }
  agent_->sim().ScheduleAfter(config_.sample_interval, [this] { Sample(); });
}

}  // namespace dumbnet
