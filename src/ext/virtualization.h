// Network virtualization (paper Section 6.1): tenants receive filtered topology
// views, and the path verifier enforces that application-generated routes stay
// inside the tenant's slice — "we need to verify the paths to prevent malicious
// applications from violating the separation".
#ifndef DUMBNET_SRC_EXT_VIRTUALIZATION_H_
#define DUMBNET_SRC_EXT_VIRTUALIZATION_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/host/path_verifier.h"
#include "src/routing/topo_db.h"
#include "src/routing/wire_types.h"
#include "src/util/result.h"

namespace dumbnet {

// A tenant's slice: which switches and hosts it may see and use.
class VirtualNetwork {
 public:
  VirtualNetwork(std::unordered_set<uint64_t> switch_uids,
                 std::unordered_set<uint64_t> host_macs)
      : switches_(std::move(switch_uids)), hosts_(std::move(host_macs)) {}

  bool SwitchAllowed(uint64_t uid) const { return switches_.count(uid) > 0; }
  bool HostAllowed(uint64_t mac) const { return hosts_.count(mac) > 0; }

  // A verifier policy enforcing the slice (plug into PathVerifier).
  VerifyPolicy MakePolicy() const;

  // The tenant-visible portion of a topology: only allowed switches, links whose
  // both ends are allowed, and allowed hosts (the TopoCache interface that "may
  // offer different topologies based on permission").
  TopoDb FilterView(const TopoDb& full) const;

  // Drops disallowed vertices/links/paths from a path graph before it is handed
  // to a tenant application.
  Result<WirePathGraph> FilterPathGraph(const WirePathGraph& graph) const;

 private:
  std::unordered_set<uint64_t> switches_;
  std::unordered_set<uint64_t> hosts_;
};

// Registry of tenants, kept next to the controller.
class VirtualizationService {
 public:
  void RegisterTenant(uint32_t tenant_id, VirtualNetwork network);
  Result<const VirtualNetwork*> Tenant(uint32_t tenant_id) const;

  // Verifies a tenant-supplied path against both the slice and the topology.
  Status VerifyTenantPath(uint32_t tenant_id, const TopoDb& db,
                          const std::vector<uint64_t>& uid_path) const;

 private:
  std::unordered_map<uint32_t, VirtualNetwork> tenants_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_EXT_VIRTUALIZATION_H_
