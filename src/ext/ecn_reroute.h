// Congestion-avoiding rerouting based on ECN (paper Section 6.2 / Section 8: "we
// are implementing other typical traffic engineering approaches as future work,
// such as congestion-avoiding rerouting using early congestion notification").
//
// Switches mark Congestion Experienced on data packets that join a deep egress
// queue (soft state only); receivers echo the mark on acks; this watcher samples a
// flow's echoed-mark rate and, when it crosses a threshold, rebinds the flow so the
// routing function picks a different cached equal-cost path. All decisions are
// host-side — the fabric stays dumb.
#ifndef DUMBNET_SRC_EXT_ECN_REROUTE_H_
#define DUMBNET_SRC_EXT_ECN_REROUTE_H_

#include <cstdint>
#include <functional>

#include "src/host/host_agent.h"
#include "src/transport/reliable_flow.h"

namespace dumbnet {

struct EcnRerouteConfig {
  TimeNs sample_interval = Ms(10);
  // Rebind when more than this fraction of acks in a window carried CE.
  double mark_fraction_threshold = 0.3;
  // Cooldown after a reroute, letting queues drain before judging the new path.
  TimeNs holddown = Ms(30);
};

struct EcnRerouteStats {
  uint64_t samples = 0;
  uint64_t reroutes = 0;
};

// Watches one sender. The agent must be the flow's sending host.
class EcnRerouter {
 public:
  EcnRerouter(HostAgent* agent, ReliableFlowSender* sender, uint64_t dst_mac,
              EcnRerouteConfig config = EcnRerouteConfig());

  void Start();
  void Stop() { running_ = false; }

  const EcnRerouteStats& stats() const { return stats_; }

 private:
  void Sample();

  HostAgent* agent_;
  ReliableFlowSender* sender_;
  uint64_t dst_mac_;
  EcnRerouteConfig config_;
  bool running_ = false;
  uint64_t last_ecn_acks_ = 0;
  uint64_t last_bytes_acked_ = 0;
  TimeNs holddown_until_ = 0;
  EcnRerouteStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_EXT_ECN_REROUTE_H_
