// Layer-3 router across DumbNet subnets (paper Section 6.3): "a router is simply a
// number of host agents running on the same node, one for each subnet". Inbound
// packets whose inner destination lives in another subnet are re-tagged and sent
// out through that subnet's agent; the forwarding logic is a handful of lines, as
// the paper advertises.
#ifndef DUMBNET_SRC_EXT_L3_ROUTER_H_
#define DUMBNET_SRC_EXT_L3_ROUTER_H_

#include <cstdint>
#include <unordered_map>

#include "src/host/host_agent.h"

namespace dumbnet {

struct L3RouterStats {
  uint64_t forwarded = 0;
  uint64_t delivered_local = 0;
  uint64_t no_route = 0;
};

class Layer3Router {
 public:
  // Attaches a subnet by its agent (the router node runs one agent per subnet).
  void AttachSubnet(uint32_t subnet_id, HostAgent* agent);

  // Declares that `host_mac` lives in `subnet_id`.
  void AddHostRoute(uint64_t host_mac, uint32_t subnet_id);

  const L3RouterStats& stats() const { return stats_; }

 private:
  void OnPacket(uint32_t in_subnet, const Packet& pkt, const DataPayload& data);

  std::unordered_map<uint32_t, HostAgent*> subnets_;
  std::unordered_map<uint64_t, uint32_t> host_routes_;
  L3RouterStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_EXT_L3_ROUTER_H_
