#include "src/ext/virtualization.h"

#include <algorithm>

namespace dumbnet {

VerifyPolicy VirtualNetwork::MakePolicy() const {
  VerifyPolicy policy;
  policy.switch_allowed = [this](uint64_t uid) { return SwitchAllowed(uid); };
  return policy;
}

TopoDb VirtualNetwork::FilterView(const TopoDb& full) const {
  TopoDb view;
  const Topology& mirror = full.mirror();
  for (LinkIndex li = 0; li < mirror.link_count(); ++li) {
    const Link& l = mirror.link_at(li);
    if (l.detached || !l.a.node.is_switch() || !l.b.node.is_switch()) {
      continue;
    }
    uint64_t ua = full.UidOf(l.a.node.index);
    uint64_t ub = full.UidOf(l.b.node.index);
    if (!SwitchAllowed(ua) || !SwitchAllowed(ub)) {
      continue;
    }
    (void)view.AddLink(WireLink{ua, l.a.port, ub, l.b.port});
    if (!l.up) {
      view.SetLinkState(ua, l.a.port, false);
    }
  }
  for (const HostLocation& loc : full.Directory()) {
    if (HostAllowed(loc.mac) && SwitchAllowed(loc.switch_uid)) {
      view.UpsertHost(loc);
    }
  }
  return view;
}

Result<WirePathGraph> VirtualNetwork::FilterPathGraph(const WirePathGraph& graph) const {
  if (!SwitchAllowed(graph.src_uid) || !SwitchAllowed(graph.dst_uid)) {
    return Error(ErrorCode::kPermissionDenied, "endpoints outside the tenant slice");
  }
  WirePathGraph out;
  out.src_uid = graph.src_uid;
  out.dst_uid = graph.dst_uid;
  auto path_ok = [this](const std::vector<uint64_t>& path) {
    return std::all_of(path.begin(), path.end(),
                       [this](uint64_t uid) { return SwitchAllowed(uid); });
  };
  if (path_ok(graph.primary)) {
    out.primary = graph.primary;
  }
  if (path_ok(graph.backup)) {
    out.backup = graph.backup;
  }
  for (const WireLink& l : graph.links) {
    if (SwitchAllowed(l.uid_a) && SwitchAllowed(l.uid_b)) {
      out.links.push_back(l);
    }
  }
  if (out.primary.empty()) {
    return Error(ErrorCode::kUnavailable, "no tenant-visible primary path");
  }
  return out;
}

void VirtualizationService::RegisterTenant(uint32_t tenant_id, VirtualNetwork network) {
  tenants_.emplace(tenant_id, std::move(network));
}

Result<const VirtualNetwork*> VirtualizationService::Tenant(uint32_t tenant_id) const {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    return Error(ErrorCode::kNotFound, "unknown tenant");
  }
  return &it->second;
}

Status VirtualizationService::VerifyTenantPath(uint32_t tenant_id, const TopoDb& db,
                                               const std::vector<uint64_t>& uid_path) const {
  auto tenant = Tenant(tenant_id);
  if (!tenant.ok()) {
    return tenant.error();
  }
  PathVerifier verifier(&db, tenant.value()->MakePolicy());
  return verifier.VerifyUidPath(uid_path);
}

}  // namespace dumbnet
