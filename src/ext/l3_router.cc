#include "src/ext/l3_router.h"

namespace dumbnet {

void Layer3Router::AttachSubnet(uint32_t subnet_id, HostAgent* agent) {
  subnets_[subnet_id] = agent;
  agent->SetDataHandler([this, subnet_id](const Packet& pkt, const DataPayload& data) {
    OnPacket(subnet_id, pkt, data);
  });
}

void Layer3Router::AddHostRoute(uint64_t host_mac, uint32_t subnet_id) {
  host_routes_[host_mac] = subnet_id;
}

void Layer3Router::OnPacket(uint32_t in_subnet, const Packet& pkt, const DataPayload& data) {
  (void)pkt;
  if (data.inner_dst_mac == 0) {
    ++stats_.delivered_local;  // addressed to the router itself
    return;
  }
  auto route = host_routes_.find(data.inner_dst_mac);
  if (route == host_routes_.end()) {
    ++stats_.no_route;
    return;
  }
  auto out = subnets_.find(route->second);
  if (out == subnets_.end()) {
    ++stats_.no_route;
    return;
  }
  if (route->second == in_subnet) {
    ++stats_.no_route;  // would hairpin; the sender should have gone direct
    return;
  }
  // Re-originate in the destination subnet: the egress agent tags the packet with
  // a path from its own PathTable (querying its subnet's controller on a miss).
  DataPayload relayed = data;
  relayed.inner_dst_mac = 0;
  ++stats_.forwarded;
  (void)out->second->Send(data.inner_dst_mac, data.flow_id, relayed);
}

}  // namespace dumbnet
