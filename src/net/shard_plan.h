// Shard assignment: partitions a topology's switches and hosts into N shards
// for the sharded simulator (src/sim/shard_set.h) and derives the conservative
// lookahead from the links that cross the partition.
//
// The partition is host-weighted contiguous switch-index blocks. The topology
// generators (src/topo/generators.h) lay out pods, leaf groups and cube rows
// contiguously, so contiguous index ranges track the fabric's natural locality:
// a leaf and its hosts land together and most traffic (host <-> own leaf,
// intra-pod) stays shard-local, while spine/core links — few, and all with
// propagation delay — carry the cross-shard traffic that bounds the lookahead.
// Hosts inherit the shard of the switch they attach to, so a packet's
// host-uplink hop never crosses a shard boundary.
#ifndef DUMBNET_SRC_NET_SHARD_PLAN_H_
#define DUMBNET_SRC_NET_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"
#include "src/topo/topology.h"

namespace dumbnet {

struct ShardPlan {
  // Partitions `topo` into (at most) `shards` shards. A shard count above the
  // switch count is clamped; the result's `shard_count` is authoritative.
  static ShardPlan Build(const Topology& topo, uint32_t shards);

  uint32_t ShardOf(const NodeId& node) const {
    return node.is_switch() ? switch_shard[node.index] : host_shard[node.index];
  }

  uint32_t shard_count = 1;
  std::vector<uint32_t> switch_shard;  // by switch index
  std::vector<uint32_t> host_shard;    // by host index
  // Minimum propagation delay over links whose endpoints live in different
  // shards — the conservative window width. kNoCrossLinks when nothing crosses
  // (then the shards are fully independent and any window width is safe).
  TimeNs lookahead = kNoCrossLinks;
  uint32_t cross_shard_links = 0;

  static constexpr TimeNs kNoCrossLinks = INT64_MAX;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_NET_SHARD_PLAN_H_
