#include "src/net/shard_plan.h"

#include <algorithm>

namespace dumbnet {

ShardPlan ShardPlan::Build(const Topology& topo, uint32_t shards) {
  ShardPlan plan;
  const uint32_t switch_count = static_cast<uint32_t>(topo.switch_count());
  plan.switch_shard.assign(switch_count, 0);
  plan.host_shard.assign(topo.host_count(), 0);
  plan.shard_count = std::max<uint32_t>(1, std::min(shards, std::max(switch_count, 1u)));
  if (plan.shard_count == 1) {
    plan.lookahead = kNoCrossLinks;
    return plan;
  }

  // Weight each switch by 1 + attached hosts: host event load dominates, and a
  // leaf carries its whole rack.
  std::vector<uint64_t> weight(switch_count, 1);
  uint64_t total = switch_count;
  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    const LinkIndex li = topo.host_at(h).link;
    if (li == kInvalidLink) {
      continue;
    }
    const Link& l = topo.link_at(li);
    const NodeId sw = l.a.node.is_switch() ? l.a.node : l.b.node;
    if (sw.is_switch()) {
      ++weight[sw.index];
      ++total;
    }
  }

  // Contiguous blocks balanced by weight: cut when the running sum reaches the
  // even split, but never leave fewer switches than shards still to fill.
  uint32_t shard = 0;
  uint64_t acc = 0;
  const uint64_t target = (total + plan.shard_count - 1) / plan.shard_count;
  for (uint32_t s = 0; s < switch_count; ++s) {
    plan.switch_shard[s] = shard;
    acc += weight[s];
    const uint32_t remaining_switches = switch_count - s - 1;
    const uint32_t remaining_shards = plan.shard_count - shard - 1;
    if (shard + 1 < plan.shard_count &&
        (acc >= target || remaining_switches == remaining_shards)) {
      ++shard;
      acc = 0;
    }
  }

  // Hosts ride with their uplink switch; a detached host defaults to shard 0.
  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    const LinkIndex li = topo.host_at(h).link;
    if (li == kInvalidLink) {
      continue;
    }
    const Link& l = topo.link_at(li);
    const NodeId sw = l.a.node.is_switch() ? l.a.node : l.b.node;
    if (sw.is_switch()) {
      plan.host_shard[h] = plan.switch_shard[sw.index];
    }
  }

  // Cross-shard link classification: the minimum propagation delay over the cut
  // is the conservative lookahead (a cross-shard delivery can never land less
  // than one propagation delay after its send). Detached tombstones are skipped;
  // *down* links still count — they can come back up mid-run.
  plan.lookahead = kNoCrossLinks;
  for (LinkIndex li = 0; li < topo.link_count(); ++li) {
    const Link& l = topo.link_at(li);
    if (l.detached) {
      continue;
    }
    const uint32_t sa = l.a.node.is_switch() ? plan.switch_shard[l.a.node.index]
                                             : plan.host_shard[l.a.node.index];
    const uint32_t sb = l.b.node.is_switch() ? plan.switch_shard[l.b.node.index]
                                             : plan.host_shard[l.b.node.index];
    if (sa != sb) {
      ++plan.cross_shard_links;
      plan.lookahead = std::min(plan.lookahead, l.propagation_ns);
    }
  }
  if (plan.lookahead < 1) {
    plan.lookahead = 1;  // zero-delay cross links degenerate to per-tick windows
  }
  return plan;
}

}  // namespace dumbnet
