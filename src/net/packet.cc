#include "src/net/packet.h"

#include <sstream>

namespace dumbnet {
namespace {

// Nominal payload sizes: control messages are charged their rough encoded size so
// discovery/notification traffic consumes realistic bandwidth.
struct PayloadSizeVisitor {
  int64_t operator()(const DataPayload& p) const { return p.bytes; }
  int64_t operator()(const ProbePayload& p) const {
    return 16 + static_cast<int64_t>(p.forward_path.size());
  }
  int64_t operator()(const ProbeReplyPayload&) const { return 16; }
  int64_t operator()(const IdReplyPayload&) const { return 16; }
  int64_t operator()(const PortEventPayload&) const { return 20; }
  int64_t operator()(const PathRequestPayload&) const { return 16; }
  int64_t operator()(const PathResponsePayload& p) const {
    int64_t n = 24;
    if (p.graph != nullptr) {
      n += static_cast<int64_t>(p.graph->links.size()) * 18 +
           static_cast<int64_t>(p.graph->primary.size() + p.graph->backup.size()) * 8;
    }
    return n;
  }
  int64_t operator()(const BootstrapPayload& p) const {
    int64_t n = 32 + static_cast<int64_t>(p.path_to_controller.size());
    if (p.directory != nullptr) {
      n += static_cast<int64_t>(p.directory->size()) * 17;
    }
    return n;
  }
  int64_t operator()(const LinkEventPayload&) const { return 28; }
  int64_t operator()(const TopologyPatchPayload& p) const {
    int64_t n = 16;
    if (p.removed != nullptr) {
      n += static_cast<int64_t>(p.removed->size()) * 18;
    }
    if (p.added != nullptr) {
      n += static_cast<int64_t>(p.added->size()) * 18;
    }
    return n;
  }
  int64_t operator()(const BpduPayload&) const { return 35; }
};

struct PayloadNameVisitor {
  const char* operator()(const DataPayload& p) const { return p.is_ack ? "ack" : "data"; }
  const char* operator()(const ProbePayload&) const { return "probe"; }
  const char* operator()(const ProbeReplyPayload&) const { return "probe-reply"; }
  const char* operator()(const IdReplyPayload&) const { return "id-reply"; }
  const char* operator()(const PortEventPayload&) const { return "port-event"; }
  const char* operator()(const PathRequestPayload&) const { return "path-request"; }
  const char* operator()(const PathResponsePayload&) const { return "path-response"; }
  const char* operator()(const BootstrapPayload&) const { return "bootstrap"; }
  const char* operator()(const LinkEventPayload&) const { return "link-event"; }
  const char* operator()(const TopologyPatchPayload&) const { return "topo-patch"; }
  const char* operator()(const BpduPayload&) const { return "bpdu"; }
};

}  // namespace

int64_t Packet::WireSize() const {
  return kEthernetHeaderBytes + static_cast<int64_t>(tags.size()) +
         std::visit(PayloadSizeVisitor{}, payload);
}

std::string Packet::Describe() const {
  std::ostringstream os;
  os << std::visit(PayloadNameVisitor{}, payload) << " " << std::hex << eth.src_mac << "->"
     << eth.dst_mac << std::dec;
  if (!tags.empty()) {
    os << " tags=" << TagsToString(TagList(tags.begin(), tags.end() - 1));
  }
  return os.str();
}

Packet MakeDumbNetPacket(uint64_t src_mac, uint64_t dst_mac, TagList path_tags,
                         Payload payload) {
  Packet pkt;
  pkt.eth.src_mac = src_mac;
  pkt.eth.dst_mac = dst_mac;
  pkt.eth.ether_type = kEtherTypeDumbNet;
  pkt.tags = std::move(path_tags);
  pkt.tags.push_back(kPathEndTag);
  pkt.payload = std::move(payload);
  return pkt;
}

Packet MakeEthernetPacket(uint64_t src_mac, uint64_t dst_mac, uint16_t ether_type,
                          Payload payload) {
  Packet pkt;
  pkt.eth.src_mac = src_mac;
  pkt.eth.dst_mac = dst_mac;
  pkt.eth.ether_type = ether_type;
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace dumbnet
