#include "src/net/network.h"

#include <algorithm>

#include "src/sim/footprint.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {

namespace {
// One footprint cell per link direction. Two same-instant enqueues to the same
// direction commute up to per-packet latency: the final next_free / occupancy are
// order-independent (sums and maxes), only which packet serializes first shifts.
// Control-plane convergence must not depend on that order — the host/controller
// layers merge via LWW, so the annotation is a claim the explorer can test.
constexpr const char kFpLinkFifo[] =
    "fifo link queue; occupancy and next_free are order-independent sums";
uint64_t DirCell(LinkIndex li, bool from_a) {
  return footprint::FpKey(li, from_a ? 1 : 0);
}
}  // namespace

Network::Network(Simulator* sim, Topology* topo, NetworkConfig config)
    : sim_(sim), topo_(topo), config_(config) {
  dirs_.resize(topo_->link_count());
  switch_nodes_.assign(topo_->switch_count(), nullptr);
  host_nodes_.assign(topo_->host_count(), nullptr);
  topo_->AddLinkObserver([this](LinkIndex li, bool up) { OnLinkStateChange(li, up); });
}

void Network::RegisterSwitchNode(uint32_t sw, NetNode* node) { switch_nodes_[sw] = node; }

void Network::RegisterHostNode(uint32_t host, NetNode* node) { host_nodes_[host] = node; }

void Network::SendFromSwitch(uint32_t sw, PortNum port, Packet pkt) {
  LinkIndex li = topo_->LinkAtPort(sw, port);
  if (li == kInvalidLink) {
    ++stats_.dropped_unwired;
    return;
  }
  Transmit(li, NodeId::Switch(sw), std::move(pkt));
}

void Network::SendFromHost(uint32_t host, Packet pkt) {
  if (host >= topo_->host_count()) {
    ++stats_.dropped_unwired;
    return;
  }
  LinkIndex li = topo_->host_at(host).link;
  if (li == kInvalidLink) {
    ++stats_.dropped_unwired;
    return;
  }
  if (pkt.sent_time == 0) {
    pkt.sent_time = sim_->Now();
  }
  Transmit(li, NodeId::Host(host), std::move(pkt));
}

void Network::Transmit(LinkIndex li, const NodeId& from, Packet pkt) {
  const Link& link = topo_->link_at(li);
  if (!link.up) {
    ++stats_.dropped_link_down;
    DN_COUNTER_INC("net.dropped_link_down");
    DN_TRACE_EVENT(kNetwork, kDrop, sim_->Now(), li, 0);
    return;
  }
  const bool from_a = (link.a.node == from);
  DN_FP_COMMUTES(kLinkQueue, DirCell(li, from_a), kFpLinkFifo);
  DirState& dir = dirs_[li][from_a ? 0 : 1];

  const int64_t size = pkt.WireSize();
  if (dir.queued_bytes + size > config_.queue_capacity_bytes) {
    ++stats_.dropped_queue_full;
    DN_COUNTER_INC("net.dropped_queue_full");
    DN_TRACE_EVENT(kNetwork, kDrop, sim_->Now(), li, static_cast<uint64_t>(size));
    return;
  }

  const TimeNs now = sim_->Now();
  const TimeNs start = std::max(now, dir.next_free);
  const TimeNs tx_done = start + TransmitTimeNs(size, link.bandwidth_gbps);
  const TimeNs arrival = tx_done + link.propagation_ns;
  dir.next_free = tx_done;
  dir.queued_bytes += size;

  // Queue occupancy drains when serialization finishes.
  sim_->ScheduleAt(tx_done, [this, li, from_a, size] {
    DN_FP_SCOPE("net.queue_drain", li);
    DN_FP_COMMUTES(kLinkQueue, DirCell(li, from_a), kFpLinkFifo);
    dirs_[li][from_a ? 0 : 1].queued_bytes -= size;
  });

  const Endpoint to = from_a ? link.b : link.a;
  sim_->ScheduleAt(arrival, [this, to, pkt = std::move(pkt)] {
    DN_FP_SCOPE("net.deliver", to.node.index);
    Deliver(to, pkt);
  });
}

void Network::Deliver(const Endpoint& to, const Packet& pkt) {
  NetNode* node = to.node.is_switch() ? switch_nodes_[to.node.index]
                                      : host_nodes_[to.node.index];
  if (node == nullptr) {
    ++stats_.dropped_unwired;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += static_cast<uint64_t>(pkt.WireSize());
  node->HandlePacket(pkt, to.port);
}

int64_t Network::QueueBacklog(LinkIndex li, const NodeId& from) const {
  if (li >= dirs_.size()) {
    return 0;
  }
  const Link& link = topo_->link_at(li);
  return dirs_[li][link.a.node == from ? 0 : 1].queued_bytes;
}

void Network::OnLinkStateChange(LinkIndex li, bool up) {
  const Link link = topo_->link_at(li);
  sim_->ScheduleAfter(config_.link_detect_delay, [this, link, up] {
    DN_FP_SCOPE("net.link_detect", link.a.node.index);
    for (const Endpoint& e : {link.a, link.b}) {
      NetNode* node = e.node.is_switch() ? switch_nodes_[e.node.index]
                                         : host_nodes_[e.node.index];
      if (node != nullptr) {
        node->HandlePortChange(e.port, up);
      }
    }
  });
}

}  // namespace dumbnet
