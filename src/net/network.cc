#include "src/net/network.h"

#include <algorithm>

#include "src/analysis/contracts.h"
#include "src/sim/footprint.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace dumbnet {

namespace {
// One footprint cell per link direction. Two same-instant enqueues to the same
// direction commute up to per-packet latency: the final next_free / occupancy are
// order-independent (sums and maxes), only which packet serializes first shifts.
// Control-plane convergence must not depend on that order — the host/controller
// layers merge via LWW, so the annotation is a claim the explorer can test.
constexpr const char kFpLinkFifo[] =
    "fifo link queue; occupancy and next_free are order-independent sums";
uint64_t DirCell(LinkIndex li, bool from_a) {
  return footprint::FpKey(li, from_a ? 1 : 0);
}

// Gray-failure drop draw: a pure SplitMix64 hash of (seed, link, direction,
// packet id). Deliberately not a shared Rng and not a stream position — global
// transmit order varies with shard count and window boundaries, but a packet's
// identity does not, so each packet's fate on a lossy link direction is fixed
// by the seed alone and gray-loss schedules are shard-invariant.
uint64_t GrayDraw(uint64_t seed, LinkIndex li, bool from_a, uint64_t pkt_id) {
  SplitMix64 mix(seed ^ (static_cast<uint64_t>(li) * 0x9E3779B97F4A7C15ULL) ^
                 (from_a ? 0x5851F42D4C957F2DULL : 0) ^ pkt_id);
  return mix.Next();
}
}  // namespace

Network::Network(Simulator* sim, Topology* topo, NetworkConfig config)
    : sim_(sim), topo_(topo), config_(config) {
  dirs_.resize(topo_->link_count());
  switch_nodes_.assign(topo_->switch_count(), nullptr);
  host_nodes_.assign(topo_->host_count(), nullptr);
  switch_origin_seq_.assign(topo_->switch_count(), 0);
  host_origin_seq_.assign(topo_->host_count(), 0);
  stats_shards_.resize(1);
  topo_->AddLinkObserver([this](LinkIndex li, bool up) { OnLinkStateChange(li, up); });
}

void Network::AttachShards(ShardSet* shards, const ShardPlan* plan) {
  shards_ = shards;
  plan_ = plan;
  stats_shards_.clear();
  stats_shards_.resize(shards->shard_count());
}

void Network::RegisterSwitchNode(uint32_t sw, NetNode* node) { switch_nodes_[sw] = node; }

void Network::RegisterHostNode(uint32_t host, NetNode* node) { host_nodes_[host] = node; }

void Network::SendFromSwitch(uint32_t sw, PortNum port, Packet pkt) {
  LinkIndex li = topo_->LinkAtPort(sw, port);
  if (li == kInvalidLink) {
    ++StatsFor(NodeId::Switch(sw)).dropped_unwired;
    return;
  }
  Transmit(li, NodeId::Switch(sw), std::move(pkt));
}

void Network::SendFromHost(uint32_t host, Packet pkt) {
  if (host >= topo_->host_count()) {
    ++stats_shards_[0].stats.dropped_unwired;
    return;
  }
  LinkIndex li = topo_->host_at(host).link;
  if (li == kInvalidLink) {
    ++StatsFor(NodeId::Host(host)).dropped_unwired;
    return;
  }
  if (pkt.sent_time == 0) {
    pkt.sent_time = SimFor(NodeId::Host(host)).Now();
  }
  Transmit(li, NodeId::Host(host), std::move(pkt));
}

void Network::StampPacketId(const NodeId& from, Packet& pkt) {
  if (pkt.pkt_id != 0) {
    return;  // already in flight; keep the origin's stamp across hops
  }
  uint64_t& seq =
      from.is_switch() ? switch_origin_seq_[from.index] : host_origin_seq_[from.index];
  const uint64_t origin =
      (from.is_switch() ? 0xA11CE000000000ULL : 0xB0B000000000ULL) ^ from.index;
  SplitMix64 mix(origin * 0x9E3779B97F4A7C15ULL ^ ++seq);
  const uint64_t id = mix.Next();
  pkt.pkt_id = id != 0 ? id : 1;
}

void Network::Transmit(LinkIndex li, const NodeId& from, Packet pkt) {
  // Per-packet fast path: id stamp, queue admission, and serialization timing
  // must not allocate. The declared-cold ends are the drop branches (counter /
  // trace bookkeeping) and the tail that materializes the delivery event.
  DN_HOT_SCOPE("net.transmit");
  Simulator& sim = SimFor(from);
  StampPacketId(from, pkt);
  const Link& link = topo_->link_at(li);
  if (!link.up) {
    DN_HOT_EXEMPT("drop path: counter/trace registration may allocate");
    ++StatsFor(from).dropped_link_down;
    DN_COUNTER_INC("net.dropped_link_down");
    DN_TRACE_EVENT(kNetwork, kDrop, sim.Now(), li, 0);
    return;
  }
  const bool from_a = (link.a.node == from);
  DN_FP_COMMUTES(kLinkQueue, DirCell(li, from_a), kFpLinkFifo);
  DirState& dir = dirs_[li][from_a ? 0 : 1];

  if (link.loss_ppm > 0) {
    // Gray failure: the link is up but eats packets. The draw is keyed on the
    // packet's stamped identity, so same-instant reordering of distinct
    // transmits never reshuffles which packets die (control-plane convergence
    // must still tolerate the lost copies themselves).
    const uint64_t draw = GrayDraw(config_.gray_seed, li, from_a, pkt.pkt_id);
    if (draw % 1000000u < link.loss_ppm) {
      DN_HOT_EXEMPT("drop path: counter/trace registration may allocate");
      ++StatsFor(from).dropped_gray;
      DN_COUNTER_INC("net.dropped_gray");
      DN_TRACE_EVENT(kNetwork, kDrop, sim.Now(), li, 1);
      return;
    }
  }

  const TimeNs now = sim.Now();
  DrainDir(dir, now, sim);

  const int64_t size = pkt.WireSize();
  if (dir.queued_bytes + size > config_.queue_capacity_bytes) {
    DN_HOT_EXEMPT("drop path: counter/trace registration may allocate");
    ++StatsFor(from).dropped_queue_full;
    DN_COUNTER_INC("net.dropped_queue_full");
    DN_TRACE_EVENT(kNetwork, kDrop, now, li, static_cast<uint64_t>(size));
    return;
  }

  const TimeNs start = std::max(now, dir.next_free);
  const TimeNs tx_done = start + TransmitTimeNs(size, link.bandwidth_gbps);
  const TimeNs arrival = tx_done + link.propagation_ns;
  dir.next_free = tx_done;
  dir.queued_bytes += size;

  // Queue occupancy drains when serialization finishes. The drain is lazy
  // (see DirState in network.h); AllocSeq burns the seq the drain event used
  // to take here, so all later events keep their exact tie-break order.
  DN_HOT_EXEMPT("delivery enqueue: pending-drain record + event closure allocate");
  dir.pending.push_back({tx_done, sim.AllocSeq(), static_cast<int32_t>(size)});

  const Endpoint to = from_a ? link.b : link.a;
  EventFn deliver = [this, to, pkt = std::move(pkt)]() mutable {
    DN_FP_SCOPE("net.deliver", to.node.index);
    Deliver(to, std::move(pkt));
  };
  if (shards_ != nullptr) {
    const uint32_t src_shard = plan_->ShardOf(from);
    const uint32_t dst_shard = plan_->ShardOf(to.node);
    // Cross-shard arrival >= now + propagation >= window start + lookahead: the
    // link crosses the cut, so its propagation is >= the plan's minimum.
    shards_->Post(src_shard, dst_shard, arrival, std::move(deliver));
  } else {
    sim.ScheduleAt(arrival, std::move(deliver));
  }
}

void Network::Deliver(const Endpoint& to, Packet&& pkt) {
  NetNode* node = to.node.is_switch() ? switch_nodes_[to.node.index]
                                      : host_nodes_[to.node.index];
  NetworkStats& stats = StatsFor(to.node);
  if (node == nullptr) {
    ++stats.dropped_unwired;
    return;
  }
  ++stats.delivered;
  stats.bytes_delivered += static_cast<uint64_t>(pkt.WireSize());
  node->HandlePacket(std::move(pkt), to.port);
}

void Network::DrainDir(DirState& dir, TimeNs now, const Simulator& sim) {
  uint32_t h = dir.head;
  const uint32_t n = static_cast<uint32_t>(dir.pending.size());
  if (h == n) {
    return;
  }
  const uint64_t cur = sim.CurrentSeq();
  while (h < n && PendingDone(dir.pending[h], now, cur)) {
    dir.queued_bytes -= dir.pending[h].size;
    ++h;
  }
  if (h == n) {
    dir.pending.clear();
    dir.head = 0;
  } else {
    // Bound memory on long-lived busy directions: compact once the retired
    // prefix dominates. Pending depth is the in-flight burst, so this is rare.
    if (h >= 64 && h * 2 >= n) {
      dir.pending.erase(dir.pending.begin(), dir.pending.begin() + h);
      h = 0;
    }
    dir.head = h;
  }
}

NetworkStats Network::stats() const {
  NetworkStats total;
  for (const PaddedStats& s : stats_shards_) {
    total.delivered += s.stats.delivered;
    total.dropped_link_down += s.stats.dropped_link_down;
    total.dropped_queue_full += s.stats.dropped_queue_full;
    total.dropped_gray += s.stats.dropped_gray;
    total.dropped_unwired += s.stats.dropped_unwired;
    total.bytes_delivered += s.stats.bytes_delivered;
  }
  return total;
}

int64_t Network::QueueBacklog(LinkIndex li, const NodeId& from) const {
  if (li >= dirs_.size()) {
    return 0;
  }
  const Link& link = topo_->link_at(li);
  const DirState& dir = dirs_[li][link.a.node == from ? 0 : 1];
  if (dir.head == dir.pending.size()) {
    return dir.queued_bytes;
  }
  // Read-only view: subtract the pending entries whose virtual drain event
  // precedes the one executing now (the direction owner's shard clock — the
  // same clock the scheduled drains used to run on).
  const Simulator& sim = SimFor(from);
  const TimeNs now = sim.Now();
  const uint64_t cur = sim.CurrentSeq();
  int64_t backlog = dir.queued_bytes;
  for (size_t i = dir.head; i < dir.pending.size(); ++i) {
    if (!PendingDone(dir.pending[i], now, cur)) {
      break;
    }
    backlog -= dir.pending[i].size;
  }
  return backlog;
}

void Network::OnLinkStateChange(LinkIndex li, bool up) {
  const Link link = topo_->link_at(li);
  // One detect event per endpoint, each on the endpoint's own shard: the two
  // sides of a cross-shard link must not be notified from one shard's event.
  for (const Endpoint& e : {link.a, link.b}) {
    Simulator& sim = SimFor(e.node);
    EventFn detect = [this, e, up] {
      DN_FP_SCOPE("net.link_detect", e.node.index);
      NetNode* node = e.node.is_switch() ? switch_nodes_[e.node.index]
                                         : host_nodes_[e.node.index];
      if (node != nullptr) {
        node->HandlePortChange(e.port, up);
      }
    };
    if (shards_ != nullptr) {
      const int cur = ShardSet::CurrentShard();
      const uint32_t dst = plan_->ShardOf(e.node);
      // A flap raised inside a window (e.g. a scripted failure event) uses the
      // raising shard's clock; the detect delay (default 1 ms) dwarfs any
      // lookahead, so the conservative bound holds. Flaps raised between runs
      // (the common test pattern) file directly.
      const TimeNs at =
          (cur >= 0 ? shards_->shard(static_cast<uint32_t>(cur)).Now() : sim.Now()) +
          config_.link_detect_delay;
      shards_->Post(cur >= 0 ? static_cast<uint32_t>(cur) : dst, dst, at,
                    std::move(detect));
    } else {
      sim.ScheduleAfter(config_.link_detect_delay, std::move(detect));
    }
  }
}

}  // namespace dumbnet
