// The simulated fabric: delivers packets across links with serialization,
// propagation and bounded FIFO queueing, and tells attached nodes when their port
// state changes (the "physical signal" DumbNet switches monitor).
//
// Sharded mode (AttachShards): every node belongs to one shard of a ShardSet and
// all of its events run on that shard's simulator. The per-direction egress
// queue state is owned by the sending side, so transmit bookkeeping is always
// shard-local; only the delivery event can cross a shard boundary, and then it
// travels through the ShardSet's SPSC channel with an arrival time at least one
// propagation delay in the future — which is exactly the conservative-lookahead
// bound the window barrier relies on (DESIGN.md §12).
#ifndef DUMBNET_SRC_NET_NETWORK_H_
#define DUMBNET_SRC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/net/packet.h"
#include "src/net/shard_plan.h"
#include "src/sim/shard_set.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"

namespace dumbnet {

// Anything attached to the fabric: a switch model or a host NIC.
class NetNode {
 public:
  virtual ~NetNode() = default;

  // A packet arrived on `in_port` (hosts always see port 1).
  virtual void HandlePacket(const Packet& pkt, PortNum in_port) = 0;

  // Rvalue delivery: the fabric hands over ownership of the packet. Nodes on
  // the forwarding fast path (DumbSwitch) override this to move the packet
  // through instead of copying it; everything else falls back to the const
  // overload above.
  virtual void HandlePacket(Packet&& pkt, PortNum in_port) { HandlePacket(pkt, in_port); }

  // Physical port state changed (link failure/recovery), after detection delay.
  virtual void HandlePortChange(PortNum port, bool up) {
    (void)port;
    (void)up;
  }
};

struct NetworkConfig {
  // Per-direction egress queue capacity. 512 KB ~ a shallow commodity switch buffer.
  int64_t queue_capacity_bytes = 512 * 1024;
  // Time from a physical link dying to the endpoints noticing (loss-of-signal).
  TimeNs link_detect_delay = Ms(1);
  // Seed for the gray-failure drop stream (Link::loss_ppm). The drop decision is
  // a pure hash of (seed, link, direction, packet id), never a shared Rng or a
  // shard-local stream position: packet ids are stamped from per-origin
  // counters on first transmit, so the drop pattern is a function of which
  // packets each node sent — identical across shard counts and worker
  // interleavings, which is what makes gray-loss chaos schedules
  // shard-invariant.
  uint64_t gray_seed = 0xD0BBE701;
};

struct NetworkStats {
  uint64_t delivered = 0;
  uint64_t dropped_link_down = 0;
  uint64_t dropped_queue_full = 0;
  uint64_t dropped_gray = 0;  // eaten by an up-but-lossy link (Link::loss_ppm)
  uint64_t dropped_unwired = 0;
  uint64_t bytes_delivered = 0;
};

// The simulated transport. The send surface (SendFromSwitch / SendFromHost /
// QueueBacklog) is virtual so the same protocol objects can run over a
// different packet carrier: src/wire's WireNetAdapter overrides it to emit
// frames on real sockets while reusing the registration, topology, and
// port-change plumbing below.
class Network {
 public:
  Network(Simulator* sim, Topology* topo, NetworkConfig config = NetworkConfig());
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Switches this network to sharded mode. Must be called before any node is
  // constructed (nodes cache their shard's simulator at construction) and
  // before any traffic. `shards` and `plan` must outlive the network.
  void AttachShards(ShardSet* shards, const ShardPlan* plan);

  void RegisterSwitchNode(uint32_t sw, NetNode* node);
  void RegisterHostNode(uint32_t host, NetNode* node);

  // Emits a packet from switch `sw` out `port`. Silently drops (with stats) if the
  // port is unwired or the link is down — exactly what real hardware does.
  virtual void SendFromSwitch(uint32_t sw, PortNum port, Packet pkt);

  // Emits a packet from a host's single NIC.
  virtual void SendFromHost(uint32_t host, Packet pkt);

  // The simulator `node`'s events run on: its shard's in sharded mode, the one
  // and only simulator otherwise. Node constructors cache this.
  Simulator& SimFor(const NodeId& node) {
    return shards_ != nullptr ? shards_->shard(plan_->ShardOf(node)) : *sim_;
  }
  const Simulator& SimFor(const NodeId& node) const {
    return shards_ != nullptr ? shards_->shard(plan_->ShardOf(node)) : *sim_;
  }

  Simulator& sim() { return *sim_; }
  Topology& topo() { return *topo_; }
  const Topology& topo() const { return *topo_; }
  // Aggregated over shards (counters are kept per shard so workers never share
  // a cache line, and summed here).
  NetworkStats stats() const;

  // Bytes currently queued for transmission on the (link, direction-from-`from`)
  // egress — the physical signal ECN marking reads (no state added to switches).
  virtual int64_t QueueBacklog(LinkIndex li, const NodeId& from) const;

 protected:
  // Registered node for `id`, or nullptr. Wire adapters deliver decoded frames
  // through this — the same registration the simulated delivery path uses.
  NetNode* NodeFor(const NodeId& id) const {
    return id.is_switch() ? switch_nodes_[id.index] : host_nodes_[id.index];
  }

  // Stamps a fabric-unique packet id from `from`'s origin counter on first
  // transmit (no-op for packets already in flight). Counter cells are owned by
  // the origin's shard, and a node's emission order is shard-invariant, so ids
  // — and everything keyed on them, like the gray-loss drop stream — are too.
  void StampPacketId(const NodeId& from, Packet& pkt);

 private:
  void Transmit(LinkIndex li, const NodeId& from, Packet pkt);
  void Deliver(const Endpoint& to, Packet&& pkt);
  void OnLinkStateChange(LinkIndex li, bool up);
  // Stats bucket for events executing on `node`'s shard.
  NetworkStats& StatsFor(const NodeId& node) {
    return shards_ != nullptr ? stats_shards_[plan_->ShardOf(node)].stats
                              : stats_shards_[0].stats;
  }

  // Egress queue occupancy per link direction (0: a->b, 1: b->a). Owned by the
  // sending side's shard; the two directions of one link may belong to
  // different shards but are distinct objects.
  //
  // Occupancy is drained *lazily*: instead of scheduling one event per packet
  // to subtract its bytes at serialization end (which was ~27% of all events
  // in a large bring-up), each transmit appends a PendingTx and burns the seq
  // the drain event would have carried (Simulator::AllocSeq). The next touch
  // of the direction — a transmit or a QueueBacklog read — retires every
  // entry the scheduled event would already have run for: strictly earlier
  // `done`, or same `done` with seq below the executing event's
  // (Simulator::CurrentSeq). Observable occupancy is bit-identical to the
  // scheduling implementation, including same-nanosecond ties.
  struct PendingTx {
    TimeNs done = 0;    // serialization finish = the virtual drain event's time
    uint64_t seq = 0;   // the seq that drain event would have carried
    int32_t size = 0;
  };
  struct DirState {
    TimeNs next_free = 0;
    int64_t queued_bytes = 0;
    std::vector<PendingTx> pending;  // FIFO: `done` and `seq` both ascend
    uint32_t head = 0;               // first unretired entry
  };
  static bool PendingDone(const PendingTx& p, TimeNs now, uint64_t cur_seq) {
    return p.done < now || (p.done == now && p.seq < cur_seq);
  }
  // Retires every pending entry whose virtual drain event precedes the one
  // executing on `sim` right now.
  static void DrainDir(DirState& dir, TimeNs now, const Simulator& sim);
  struct alignas(64) PaddedStats {
    NetworkStats stats;
  };

  Simulator* sim_;
  Topology* topo_;
  NetworkConfig config_;
  ShardSet* shards_ = nullptr;
  const ShardPlan* plan_ = nullptr;
  std::vector<std::array<DirState, 2>> dirs_;
  std::vector<NetNode*> switch_nodes_;
  std::vector<NetNode*> host_nodes_;
  std::vector<PaddedStats> stats_shards_;
  // Per-origin packet-id counters (see StampPacketId). Each cell is only ever
  // touched from its node's shard.
  std::vector<uint64_t> switch_origin_seq_;
  std::vector<uint64_t> host_origin_seq_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_NET_NETWORK_H_
