// The simulated fabric: delivers packets across links with serialization,
// propagation and bounded FIFO queueing, and tells attached nodes when their port
// state changes (the "physical signal" DumbNet switches monitor).
#ifndef DUMBNET_SRC_NET_NETWORK_H_
#define DUMBNET_SRC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"

namespace dumbnet {

// Anything attached to the fabric: a switch model or a host NIC.
class NetNode {
 public:
  virtual ~NetNode() = default;

  // A packet arrived on `in_port` (hosts always see port 1).
  virtual void HandlePacket(const Packet& pkt, PortNum in_port) = 0;

  // Physical port state changed (link failure/recovery), after detection delay.
  virtual void HandlePortChange(PortNum port, bool up) {
    (void)port;
    (void)up;
  }
};

struct NetworkConfig {
  // Per-direction egress queue capacity. 512 KB ~ a shallow commodity switch buffer.
  int64_t queue_capacity_bytes = 512 * 1024;
  // Time from a physical link dying to the endpoints noticing (loss-of-signal).
  TimeNs link_detect_delay = Ms(1);
};

struct NetworkStats {
  uint64_t delivered = 0;
  uint64_t dropped_link_down = 0;
  uint64_t dropped_queue_full = 0;
  uint64_t dropped_unwired = 0;
  uint64_t bytes_delivered = 0;
};

class Network {
 public:
  Network(Simulator* sim, Topology* topo, NetworkConfig config = NetworkConfig());

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void RegisterSwitchNode(uint32_t sw, NetNode* node);
  void RegisterHostNode(uint32_t host, NetNode* node);

  // Emits a packet from switch `sw` out `port`. Silently drops (with stats) if the
  // port is unwired or the link is down — exactly what real hardware does.
  void SendFromSwitch(uint32_t sw, PortNum port, Packet pkt);

  // Emits a packet from a host's single NIC.
  void SendFromHost(uint32_t host, Packet pkt);

  Simulator& sim() { return *sim_; }
  Topology& topo() { return *topo_; }
  const NetworkStats& stats() const { return stats_; }

  // Bytes currently queued for transmission on the (link, direction-from-`from`)
  // egress — the physical signal ECN marking reads (no state added to switches).
  int64_t QueueBacklog(LinkIndex li, const NodeId& from) const;

 private:
  void Transmit(LinkIndex li, const NodeId& from, Packet pkt);
  void Deliver(const Endpoint& to, const Packet& pkt);
  void OnLinkStateChange(LinkIndex li, bool up);

  // Egress queue occupancy per link direction (0: a->b, 1: b->a).
  struct DirState {
    TimeNs next_free = 0;
    int64_t queued_bytes = 0;
  };

  Simulator* sim_;
  Topology* topo_;
  NetworkConfig config_;
  std::vector<std::array<DirState, 2>> dirs_;
  std::vector<NetNode*> switch_nodes_;
  std::vector<NetNode*> host_nodes_;
  NetworkStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_NET_NETWORK_H_
