// Packet model.
//
// Wire format (paper Figure 3): an Ethernet header with EtherType 0x9800, followed
// by the routing tag stack (one byte per hop, terminated by ø = 0xFF), followed by
// the original payload. We keep the tag stack as an explicit vector *including* the
// trailing ø, and model payloads as typed structs in a variant instead of raw bytes:
// the simulator charges wire size from `WireSize()`, while handlers get structured
// data without a serialization layer.
#ifndef DUMBNET_SRC_NET_PACKET_H_
#define DUMBNET_SRC_NET_PACKET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/routing/tags.h"
#include "src/routing/wire_types.h"
#include "src/sim/time.h"
#include "src/telemetry/provenance.h"
#include "src/topo/topology.h"

namespace dumbnet {

constexpr uint16_t kEtherTypeIpv4 = 0x0800;
constexpr uint16_t kEtherTypeDumbNet = 0x9800;
constexpr uint16_t kEtherTypeBpdu = 0x0802;  // our stand-in for 802.1D BPDU frames

constexpr uint64_t kBroadcastMac = 0xFFFF'FFFF'FFFFULL;

constexpr int64_t kEthernetHeaderBytes = 14;
constexpr int64_t kDefaultMtu = 1500;

struct EthernetHeader {
  uint64_t dst_mac = 0;
  uint64_t src_mac = 0;
  uint16_t ether_type = kEtherTypeIpv4;
};

// ---------------------------------------------------------------------------------
// Payload types

// Application/transport data; `bytes` is the nominal size charged on the wire.
// `inner_dst_mac` is the end-to-end destination for traffic relayed through a
// layer-3 router (Section 6.3); 0 for ordinary intra-subnet traffic.
struct DataPayload {
  uint64_t flow_id = 0;
  uint64_t seq = 0;
  uint64_t ack = 0;
  bool is_ack = false;
  int64_t bytes = kDefaultMtu;
  uint64_t inner_dst_mac = 0;
  // Congestion Experienced mark, set by switches when their egress queue is deep
  // (the paper's future-work ECN support; needs no switch state).
  bool ecn = false;
};

// Topology-discovery probe message (Section 4.1). Carries its origin and the full
// forward tag path so receivers can recognize bounces and derive reply paths.
struct ProbePayload {
  uint64_t probe_id = 0;
  uint64_t origin_mac = 0;
  TagList forward_path;  // as originally sent, ø included
};

// Reply to a probe that reached a host: "I am <mac>, I heard probe <probe_id>".
// `reply_path` echoes the tags the host replied along (the probe's leftover tags);
// the prober compares it against the expected return path to reject probes that
// wandered through extra switches before reaching a host.
struct ProbeReplyPayload {
  uint64_t probe_id = 0;
  uint64_t responder_mac = 0;
  TagList reply_path;
  // "...and possibly the controller if the new host knows" (Section 3.3): a
  // bootstrapped responder advertises its controller here; 0 = unknown.
  uint64_t controller_mac = 0;
};

// Reply a switch generates for a tag-0 ID query.
struct IdReplyPayload {
  uint64_t probe_id = 0;
  uint64_t switch_uid = 0;
};

// Stage-1 failure notification, broadcast by switches with a hop limit
// (Section 4.2). Not tag-routed: switches flood it out every up port.
struct PortEventPayload {
  uint64_t switch_uid = 0;
  PortNum port = 0;
  bool up = false;
  uint8_t hops_left = 5;
  uint64_t event_seq = 0;  // per-switch sequence for host-side dedup
  TimeNs origin_time = 0;
};

// Host -> controller: "give me a path graph to dst". `attempt` is the host's
// retry counter for this destination; the controller folds it into the seed of
// the per-query randomized path choice, so a response's content is a pure
// function of (requester, dst, attempt) and never of the order concurrent
// queries happened to reach the controller's CPU queue.
struct PathRequestPayload {
  uint64_t requester_mac = 0;
  uint64_t dst_mac = 0;
  uint64_t attempt = 0;
};

// Controller -> host: path graph plus the destination's attach point.
struct PathResponsePayload {
  uint64_t dst_mac = 0;
  HostLocation dst_location;
  std::shared_ptr<const WirePathGraph> graph;
};

// Controller -> host bootstrap: your location, how to reach me, who your flood
// peers are, and where every host lives.
struct BootstrapPayload {
  HostLocation self;
  uint64_t controller_mac = 0;
  HostLocation controller_location;
  TagList path_to_controller;  // ø included
  std::shared_ptr<const std::vector<HostLocation>> directory;
};

// Host-to-host flooded link event (stage 1, host side).
struct LinkEventPayload {
  uint64_t event_id = 0;  // (switch_uid, port, seq) hashed for dedup
  uint64_t switch_uid = 0;
  PortNum port = 0;
  bool up = false;
  TimeNs origin_time = 0;
};

// Controller -> all hosts: authoritative topology patch (stage 2).
struct TopologyPatchPayload {
  uint64_t patch_seq = 0;
  std::shared_ptr<const std::vector<WireLink>> removed;
  std::shared_ptr<const std::vector<WireLink>> added;
  TimeNs origin_time = 0;
};

// Spanning-tree BPDU for the baseline Ethernet fabric.
struct BpduPayload {
  uint64_t root_id = 0;
  uint32_t cost = 0;
  uint64_t sender_id = 0;
  PortNum sender_port = 0;
  bool topology_change = false;
};

using Payload =
    std::variant<DataPayload, ProbePayload, ProbeReplyPayload, IdReplyPayload,
                 PortEventPayload, PathRequestPayload, PathResponsePayload,
                 BootstrapPayload, LinkEventPayload, TopologyPatchPayload, BpduPayload>;

// ---------------------------------------------------------------------------------

struct Packet {
  EthernetHeader eth;
  // DumbNet tag stack, ø (kPathEndTag) included as the last element. Empty for
  // plain Ethernet frames (baseline fabric, pre-encap host traffic).
  TagList tags;
  Payload payload = DataPayload{};
  TimeNs sent_time = 0;  // stamped by the first transmitter, for latency stats
  // Fabric-local packet identity, stamped by the network on the packet's first
  // transmit from a per-origin counter (hosts and switches each own a stream).
  // Gray-failure drops are a pure hash of (gray_seed, link, direction, pkt_id),
  // so a packet's fate on a lossy link is a function of the packet itself —
  // never of how concurrent transmits interleaved. 0 = not yet stamped. Not
  // charged to WireSize() (a real NIC would fold this into an existing header
  // field such as IP id).
  uint64_t pkt_id = 0;
  // In-band path provenance (telemetry): the sender stamps the promised switch
  // UIDs, each switch appends the hop it actually took, the receiver compares.
  // Empty (two null vectors) unless telemetry armed it; deliberately NOT charged
  // to WireSize() so paper-figure byte counts are unaffected — see provenance.h.
  telemetry::PathProvenance provenance;

  // Nominal bytes this packet occupies on the wire.
  int64_t WireSize() const;

  template <typename T>
  const T* As() const {
    return std::get_if<T>(&payload);
  }

  std::string Describe() const;
};

// Convenience constructors ----------------------------------------------------------

// A DumbNet packet: tags = path tags + ø appended here.
Packet MakeDumbNetPacket(uint64_t src_mac, uint64_t dst_mac, TagList path_tags,
                         Payload payload);

// A plain Ethernet frame (baseline network).
Packet MakeEthernetPacket(uint64_t src_mac, uint64_t dst_mac, uint16_t ether_type,
                          Payload payload);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_NET_PACKET_H_
