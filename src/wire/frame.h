// Wire frame format: how DumbNet packets travel over real sockets.
//
// Every frame is a fixed 8-byte header followed by a length-prefixed body:
//
//   offset  size  field
//   0       2     magic 0x444E ("DN", little-endian on the wire)
//   2       1     version (kFrameVersion)
//   3       1     frame type (FrameType)
//   4       4     body length in bytes (little-endian u32, <= kMaxFrameBody)
//   8       n     body
//
// Four frame types ride a link: kHello / kHelloAck carry the link handshake
// (which physical link of the shared topology this socket realizes), kHeartbeat
// is an empty keepalive that feeds the peer's idle-timeout clock, and kPacket
// carries one serialized dumbnet::Packet — Ethernet header, tag stack, the full
// Payload variant, plus the sent_time / pkt_id / provenance sidecar fields the
// simulator normally passes by value.
//
// All integers are little-endian. Decoding is strict: unknown frame types,
// short bodies, trailing bytes, and absurd counts are kMalformed errors, and
// FrameDecoder turns any header corruption into a connection-fatal error (a
// byte stream that lost sync cannot be trusted again).
#ifndef DUMBNET_SRC_WIRE_FRAME_H_
#define DUMBNET_SRC_WIRE_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/net/packet.h"
#include "src/util/result.h"

namespace dumbnet {
namespace wire {

constexpr uint16_t kFrameMagic = 0x444E;  // "DN"
constexpr uint8_t kFrameVersion = 1;
constexpr size_t kFrameHeaderBytes = 8;
// A path response carrying a dense path graph for a large fabric is the biggest
// legitimate body by far; 8 MB leaves two orders of magnitude of headroom while
// still rejecting a desynced length field before it allocates anything silly.
constexpr uint32_t kMaxFrameBody = 8u * 1024 * 1024;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kHeartbeat = 3,
  kPacket = 4,
};

// ---------------------------------------------------------------------------------
// Bounded little-endian readers/writers shared by the codec (and reusable by
// tests to build corrupt inputs).

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bytes(const void* data, size_t len);

  size_t size() const { return buf_.size(); }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Reads from a borrowed buffer. Any out-of-bounds read latches ok() == false and
// returns zeros; callers check once at the end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------------
// Frame encoding

// Wraps a finished body in the 8-byte header.
std::string EncodeFrame(FrameType type, std::string_view body);

// Per-link handshake: the dialer announces which link of the shared topology
// this socket realizes and who it is; the acceptor echoes the link back.
struct HelloBody {
  uint32_t link_index = 0;
  bool from_switch = false;
  uint32_t node_index = 0;  // sender's switch/host index in the shared topology
  uint8_t port = 0;         // sender-side port the link plugs into

  bool operator==(const HelloBody&) const = default;
};

std::string EncodeHelloFrame(FrameType type, const HelloBody& hello);
Result<HelloBody> DecodeHelloBody(std::string_view body);

// Full Packet round-trip, covering every Payload alternative plus the
// sent_time / pkt_id / provenance sidecars.
std::string EncodePacketFrame(const Packet& pkt);
Result<Packet> DecodePacketBody(std::string_view body);

// ---------------------------------------------------------------------------------
// Incremental decoder: feed arbitrary byte slices (however recv() split them),
// pull complete frames out. One header-level violation (bad magic/version/type,
// oversized length) poisons the decoder permanently — the caller must drop the
// connection.

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string body;
};

class FrameDecoder {
 public:
  enum class Status {
    kFrame,     // *out filled with one complete frame
    kNeedMore,  // no complete frame buffered yet
    kError,     // stream is poisoned; see error()
  };

  void Feed(const char* data, size_t len);
  Status Next(Frame* out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  Status Poison(std::string reason);

  std::string buf_;
  size_t pos_ = 0;  // consumed prefix, compacted once it dominates
  bool failed_ = false;
  std::string error_;
};

}  // namespace wire
}  // namespace dumbnet

#endif  // DUMBNET_SRC_WIRE_FRAME_H_
