#include "src/wire/frame.h"

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "src/analysis/contracts.h"
#include "src/routing/wire_types.h"
#include "src/telemetry/provenance.h"

namespace dumbnet {
namespace wire {

namespace {

Error Malformed(const std::string& what) {
  return Error(ErrorCode::kMalformed, what);
}

// ---------------------------------------------------------------------------------
// Field helpers: each aggregate gets a Put/Get pair. Counts are validated
// against the reader's remaining bytes before any allocation, so a corrupt
// length can never turn into a multi-gigabyte resize.

void PutTags(ByteWriter& w, const TagList& tags) {
  w.U16(static_cast<uint16_t>(tags.size()));
  if (!tags.empty()) {
    w.Bytes(tags.data(), tags.size());
  }
}

bool GetTags(ByteReader& r, TagList* tags) {
  const size_t n = r.U16();
  if (!r.ok() || r.remaining() < n) {
    return false;
  }
  tags->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*tags)[i] = r.U8();
  }
  return r.ok();
}

void PutUidVec(ByteWriter& w, const std::vector<uint64_t>& uids) {
  w.U32(static_cast<uint32_t>(uids.size()));
  for (uint64_t uid : uids) {
    w.U64(uid);
  }
}

bool GetUidVec(ByteReader& r, std::vector<uint64_t>* uids) {
  const size_t n = r.U32();
  if (!r.ok() || r.remaining() < n * 8) {
    return false;
  }
  uids->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*uids)[i] = r.U64();
  }
  return r.ok();
}

void PutLocation(ByteWriter& w, const HostLocation& loc) {
  w.U64(loc.mac);
  w.U64(loc.switch_uid);
  w.U8(loc.port);
}

bool GetLocation(ByteReader& r, HostLocation* loc) {
  loc->mac = r.U64();
  loc->switch_uid = r.U64();
  loc->port = r.U8();
  return r.ok();
}

void PutWireLinks(ByteWriter& w, const std::vector<WireLink>& links) {
  w.U32(static_cast<uint32_t>(links.size()));
  for (const WireLink& l : links) {
    w.U64(l.uid_a);
    w.U8(l.port_a);
    w.U64(l.uid_b);
    w.U8(l.port_b);
  }
}

bool GetWireLinks(ByteReader& r, std::vector<WireLink>* links) {
  const size_t n = r.U32();
  if (!r.ok() || r.remaining() < n * 18) {
    return false;
  }
  links->resize(n);
  for (WireLink& l : *links) {
    l.uid_a = r.U64();
    l.port_a = r.U8();
    l.uid_b = r.U64();
    l.port_b = r.U8();
  }
  return r.ok();
}

void PutGraph(ByteWriter& w, const WirePathGraph& g) {
  w.U64(g.src_uid);
  w.U64(g.dst_uid);
  PutUidVec(w, g.primary);
  PutUidVec(w, g.backup);
  PutWireLinks(w, g.links);
}

bool GetGraph(ByteReader& r, WirePathGraph* g) {
  g->src_uid = r.U64();
  g->dst_uid = r.U64();
  return GetUidVec(r, &g->primary) && GetUidVec(r, &g->backup) &&
         GetWireLinks(r, &g->links);
}

// ---------------------------------------------------------------------------------
// Payload codec: the on-wire kind byte is the variant's alternative index, so
// adding a payload type is one new case in each switch (and a version bump if
// an old binary must reject it).

void PutPayload(ByteWriter& w, const Payload& payload) {
  w.U8(static_cast<uint8_t>(payload.index()));
  std::visit(
      [&w](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, DataPayload>) {
          w.U64(p.flow_id);
          w.U64(p.seq);
          w.U64(p.ack);
          w.U8(p.is_ack ? 1 : 0);
          w.I64(p.bytes);
          w.U64(p.inner_dst_mac);
          w.U8(p.ecn ? 1 : 0);
        } else if constexpr (std::is_same_v<T, ProbePayload>) {
          w.U64(p.probe_id);
          w.U64(p.origin_mac);
          PutTags(w, p.forward_path);
        } else if constexpr (std::is_same_v<T, ProbeReplyPayload>) {
          w.U64(p.probe_id);
          w.U64(p.responder_mac);
          PutTags(w, p.reply_path);
          w.U64(p.controller_mac);
        } else if constexpr (std::is_same_v<T, IdReplyPayload>) {
          w.U64(p.probe_id);
          w.U64(p.switch_uid);
        } else if constexpr (std::is_same_v<T, PortEventPayload>) {
          w.U64(p.switch_uid);
          w.U8(p.port);
          w.U8(p.up ? 1 : 0);
          w.U8(p.hops_left);
          w.U64(p.event_seq);
          w.I64(p.origin_time);
        } else if constexpr (std::is_same_v<T, PathRequestPayload>) {
          w.U64(p.requester_mac);
          w.U64(p.dst_mac);
          w.U64(p.attempt);
        } else if constexpr (std::is_same_v<T, PathResponsePayload>) {
          w.U64(p.dst_mac);
          PutLocation(w, p.dst_location);
          w.U8(p.graph != nullptr ? 1 : 0);
          if (p.graph != nullptr) {
            PutGraph(w, *p.graph);
          }
        } else if constexpr (std::is_same_v<T, BootstrapPayload>) {
          PutLocation(w, p.self);
          w.U64(p.controller_mac);
          PutLocation(w, p.controller_location);
          PutTags(w, p.path_to_controller);
          w.U8(p.directory != nullptr ? 1 : 0);
          if (p.directory != nullptr) {
            w.U32(static_cast<uint32_t>(p.directory->size()));
            for (const HostLocation& loc : *p.directory) {
              PutLocation(w, loc);
            }
          }
        } else if constexpr (std::is_same_v<T, LinkEventPayload>) {
          w.U64(p.event_id);
          w.U64(p.switch_uid);
          w.U8(p.port);
          w.U8(p.up ? 1 : 0);
          w.I64(p.origin_time);
        } else if constexpr (std::is_same_v<T, TopologyPatchPayload>) {
          w.U64(p.patch_seq);
          PutWireLinks(w, p.removed != nullptr ? *p.removed : std::vector<WireLink>{});
          PutWireLinks(w, p.added != nullptr ? *p.added : std::vector<WireLink>{});
          w.I64(p.origin_time);
        } else if constexpr (std::is_same_v<T, BpduPayload>) {
          w.U64(p.root_id);
          w.U32(p.cost);
          w.U64(p.sender_id);
          w.U8(p.sender_port);
          w.U8(p.topology_change ? 1 : 0);
        }
      },
      payload);
}

bool GetPayload(ByteReader& r, Payload* payload) {
  const uint8_t kind = r.U8();
  if (!r.ok()) {
    return false;
  }
  switch (kind) {
    case 0: {
      DataPayload p;
      p.flow_id = r.U64();
      p.seq = r.U64();
      p.ack = r.U64();
      p.is_ack = r.U8() != 0;
      p.bytes = r.I64();
      p.inner_dst_mac = r.U64();
      p.ecn = r.U8() != 0;
      *payload = p;
      break;
    }
    case 1: {
      ProbePayload p;
      p.probe_id = r.U64();
      p.origin_mac = r.U64();
      if (!GetTags(r, &p.forward_path)) {
        return false;
      }
      *payload = std::move(p);
      break;
    }
    case 2: {
      ProbeReplyPayload p;
      p.probe_id = r.U64();
      p.responder_mac = r.U64();
      if (!GetTags(r, &p.reply_path)) {
        return false;
      }
      p.controller_mac = r.U64();
      *payload = std::move(p);
      break;
    }
    case 3: {
      IdReplyPayload p;
      p.probe_id = r.U64();
      p.switch_uid = r.U64();
      *payload = p;
      break;
    }
    case 4: {
      PortEventPayload p;
      p.switch_uid = r.U64();
      p.port = r.U8();
      p.up = r.U8() != 0;
      p.hops_left = r.U8();
      p.event_seq = r.U64();
      p.origin_time = r.I64();
      *payload = p;
      break;
    }
    case 5: {
      PathRequestPayload p;
      p.requester_mac = r.U64();
      p.dst_mac = r.U64();
      p.attempt = r.U64();
      *payload = p;
      break;
    }
    case 6: {
      PathResponsePayload p;
      p.dst_mac = r.U64();
      if (!GetLocation(r, &p.dst_location)) {
        return false;
      }
      if (r.U8() != 0) {
        auto graph = std::make_shared<WirePathGraph>();
        if (!GetGraph(r, graph.get())) {
          return false;
        }
        p.graph = std::move(graph);
      }
      *payload = std::move(p);
      break;
    }
    case 7: {
      BootstrapPayload p;
      if (!GetLocation(r, &p.self)) {
        return false;
      }
      p.controller_mac = r.U64();
      if (!GetLocation(r, &p.controller_location) ||
          !GetTags(r, &p.path_to_controller)) {
        return false;
      }
      if (r.U8() != 0) {
        const size_t n = r.U32();
        if (!r.ok() || r.remaining() < n * 17) {
          return false;
        }
        auto dir = std::make_shared<std::vector<HostLocation>>(n);
        for (HostLocation& loc : *dir) {
          if (!GetLocation(r, &loc)) {
            return false;
          }
        }
        p.directory = std::move(dir);
      }
      *payload = std::move(p);
      break;
    }
    case 8: {
      LinkEventPayload p;
      p.event_id = r.U64();
      p.switch_uid = r.U64();
      p.port = r.U8();
      p.up = r.U8() != 0;
      p.origin_time = r.I64();
      *payload = p;
      break;
    }
    case 9: {
      TopologyPatchPayload p;
      p.patch_seq = r.U64();
      auto removed = std::make_shared<std::vector<WireLink>>();
      auto added = std::make_shared<std::vector<WireLink>>();
      if (!GetWireLinks(r, removed.get()) || !GetWireLinks(r, added.get())) {
        return false;
      }
      p.removed = std::move(removed);
      p.added = std::move(added);
      p.origin_time = r.I64();
      *payload = std::move(p);
      break;
    }
    case 10: {
      BpduPayload p;
      p.root_id = r.U64();
      p.cost = r.U32();
      p.sender_id = r.U64();
      p.sender_port = r.U8();
      p.topology_change = r.U8() != 0;
      *payload = p;
      break;
    }
    default:
      return false;
  }
  return r.ok();
}

}  // namespace

// ---------------------------------------------------------------------------------
// ByteWriter / ByteReader

void ByteWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<char>(v & 0xFF));
  buf_.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::Bytes(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

uint8_t ByteReader::U8() {
  if (pos_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint16_t ByteReader::U16() {
  if (pos_ + 2 > data_.size()) {
    ok_ = false;
    return 0;
  }
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<uint16_t>(v | static_cast<uint16_t>(
                                      static_cast<uint8_t>(data_[pos_++]) << (8 * i)));
  }
  return v;
}

uint32_t ByteReader::U32() {
  if (pos_ + 4 > data_.size()) {
    ok_ = false;
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

uint64_t ByteReader::U64() {
  if (pos_ + 8 > data_.size()) {
    ok_ = false;
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

// ---------------------------------------------------------------------------------
// Frames

std::string EncodeFrame(FrameType type, std::string_view body) {
  ByteWriter w;
  w.U16(kFrameMagic);
  w.U8(kFrameVersion);
  w.U8(static_cast<uint8_t>(type));
  w.U32(static_cast<uint32_t>(body.size()));
  w.Bytes(body.data(), body.size());
  return w.Take();
}

std::string EncodeHelloFrame(FrameType type, const HelloBody& hello) {
  ByteWriter w;
  w.U32(hello.link_index);
  w.U8(hello.from_switch ? 1 : 0);
  w.U32(hello.node_index);
  w.U8(hello.port);
  return EncodeFrame(type, w.Take());
}

Result<HelloBody> DecodeHelloBody(std::string_view body) {
  ByteReader r(body);
  HelloBody hello;
  hello.link_index = r.U32();
  hello.from_switch = r.U8() != 0;
  hello.node_index = r.U32();
  hello.port = r.U8();
  if (!r.ok() || !r.AtEnd()) {
    return Malformed("bad hello body");
  }
  return hello;
}

std::string EncodePacketFrame(const Packet& pkt) {
  ByteWriter w;
  w.U64(pkt.eth.dst_mac);
  w.U64(pkt.eth.src_mac);
  w.U16(pkt.eth.ether_type);
  PutTags(w, pkt.tags);
  w.I64(pkt.sent_time);
  w.U64(pkt.pkt_id);
  PutUidVec(w, pkt.provenance.promised);
  w.U32(static_cast<uint32_t>(pkt.provenance.hops.size()));
  for (const telemetry::PathHop& hop : pkt.provenance.hops) {
    w.U64(hop.switch_uid);
    w.U8(hop.ingress);
    w.U8(hop.egress);
  }
  PutPayload(w, pkt.payload);
  return EncodeFrame(FrameType::kPacket, w.Take());
}

Result<Packet> DecodePacketBody(std::string_view body) {
  ByteReader r(body);
  Packet pkt;
  pkt.eth.dst_mac = r.U64();
  pkt.eth.src_mac = r.U64();
  pkt.eth.ether_type = r.U16();
  if (!GetTags(r, &pkt.tags)) {
    return Malformed("bad packet tags");
  }
  pkt.sent_time = r.I64();
  pkt.pkt_id = r.U64();
  if (!GetUidVec(r, &pkt.provenance.promised)) {
    return Malformed("bad packet provenance promise");
  }
  const size_t n_hops = r.U32();
  if (!r.ok() || r.remaining() < n_hops * 10) {
    return Malformed("bad packet provenance hops");
  }
  pkt.provenance.hops.resize(n_hops);
  for (telemetry::PathHop& hop : pkt.provenance.hops) {
    hop.switch_uid = r.U64();
    hop.ingress = r.U8();
    hop.egress = r.U8();
  }
  if (!GetPayload(r, &pkt.payload)) {
    return Malformed("bad packet payload");
  }
  if (!r.ok() || !r.AtEnd()) {
    return Malformed("packet body has trailing bytes");
  }
  return pkt;
}

// ---------------------------------------------------------------------------------
// FrameDecoder

void FrameDecoder::Feed(const char* data, size_t len) {
  if (failed_) {
    return;  // poisoned streams eat input silently; the caller is tearing down
  }
  buf_.append(data, len);
}

FrameDecoder::Status FrameDecoder::Poison(std::string reason) {
  failed_ = true;
  error_ = std::move(reason);
  buf_.clear();
  pos_ = 0;
  return Status::kError;
}

FrameDecoder::Status FrameDecoder::Next(Frame* out) {
  // Runs once per frame on the reactor thread: header parse, validation, and
  // the copy-out into the caller's *reused* frame must not allocate in steady
  // state (the caller keeps one Frame per connection so body capacity
  // amortizes). Poison paths build an error string and are declared cold.
  DN_HOT_SCOPE("wire.frame_decode");
  if (failed_) {
    return Status::kError;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) {
    return Status::kNeedMore;
  }
  ByteReader r(std::string_view(buf_).substr(pos_, kFrameHeaderBytes));
  const uint16_t magic = r.U16();
  const uint8_t version = r.U8();
  const uint8_t type = r.U8();
  const uint32_t body_len = r.U32();
  if (magic != kFrameMagic) {
    DN_HOT_EXEMPT("poison path: error string allocates, stream is tearing down");
    return Poison("bad frame magic");
  }
  if (version != kFrameVersion) {
    DN_HOT_EXEMPT("poison path: error string allocates, stream is tearing down");
    return Poison("unsupported frame version");
  }
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kPacket)) {
    DN_HOT_EXEMPT("poison path: error string allocates, stream is tearing down");
    return Poison("unknown frame type");
  }
  if (body_len > kMaxFrameBody) {
    DN_HOT_EXEMPT("poison path: error string allocates, stream is tearing down");
    return Poison("oversized frame body");
  }
  if (avail < kFrameHeaderBytes + body_len) {
    return Status::kNeedMore;
  }
  out->type = static_cast<FrameType>(type);
  {
    // First frame bigger than any before it grows the reused buffer; after
    // that the assign reuses capacity and this block allocates nothing.
    DN_HOT_EXEMPT("body copy-out: amortized growth of the caller's reused frame");
    out->body.assign(buf_, pos_ + kFrameHeaderBytes, body_len);
  }
  pos_ += kFrameHeaderBytes + body_len;
  // Compact once the consumed prefix dominates, so long-lived connections never
  // accumulate an unbounded retired prefix.
  if (pos_ >= 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Status::kFrame;
}

}  // namespace wire
}  // namespace dumbnet
