#include "src/wire/node.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"
#include "src/wire/clock.h"

namespace dumbnet {
namespace wire {

WireAddr SwitchListenAddr(const WireNodeOptions& opts, uint32_t index) {
  WireAddr addr;
  addr.kind = opts.transport;
  if (opts.transport == TransportKind::kUds) {
    addr.uds_path = opts.uds_dir + "/sw" + std::to_string(index) + ".sock";
  } else {
    addr.tcp_port = static_cast<uint16_t>(opts.tcp_base_port + index);
  }
  return addr;
}

WireNode::WireNode(NodeId id, const Topology& topo, WireNodeOptions opts)
    : id_(id), opts_(std::move(opts)), topo_(topo) {}

WireNode::~WireNode() { Stop(); }

void WireNode::Start() {
  thread_ = std::thread([this] { ThreadMain(); });
  started_.get_future().wait();
}

void WireNode::Stop() {
  if (!thread_.joinable()) {
    return;
  }
  reactor_.Post([this] { stop_requested_ = true; });
  thread_.join();
}

int64_t WireNode::Elapsed() const { return MonotonicNowNs() - opts_.epoch_ns; }

void WireNode::ThreadMain() {
  BuildStack();
  SetupWiring();
  started_.set_value();
  const TimeNs poll_cap_ms = std::max<TimeNs>(opts_.timing.poll_cap / kNsPerMs, 1);
  for (;;) {
    // The whole loop body runs protocol code on the node thread: simulator
    // timers, posted closures, and fd handlers all share the reactor contract.
    DN_REACTOR_CONTEXT;
    reactor_.DrainPosted();
    if (stop_requested_) {
      break;
    }
    sim_->RunUntil(Elapsed());
    TimeNs next = 0;
    int timeout_ms = static_cast<int>(poll_cap_ms);
    if (sim_->PeekNextTime(&next)) {
      const TimeNs delta = next - Elapsed();
      timeout_ms = delta <= 0
                       ? 0
                       : static_cast<int>(
                             std::min<TimeNs>((delta + kNsPerMs - 1) / kNsPerMs,
                                              poll_cap_ms));
    }
    reactor_.PollOnce(timeout_ms);
  }
  TearDown();
  // Unblock any Call() posted during shutdown.
  reactor_.DrainPosted();
}

void WireNode::BuildStack() {
  sim_ = std::make_unique<Simulator>();
  // Adjacent links mirror socket liveness and start down (no connection yet).
  // Direct mutation, not SetLinkUp: no observers exist before the adapter.
  if (id_.is_switch()) {
    const SwitchInfo& info = topo_.switch_at(id_.index);
    for (PortNum port = 1; port <= info.num_ports; ++port) {
      const LinkIndex li = topo_.LinkAtPort(id_.index, port);
      if (li != kInvalidLink) {
        topo_.mutable_link(li).up = false;
      }
    }
  } else {
    const LinkIndex li = topo_.host_at(id_.index).link;
    if (li != kInvalidLink) {
      topo_.mutable_link(li).up = false;
    }
  }

  net_ = std::make_unique<WireNetAdapter>(sim_.get(), &topo_, id_, opts_.net_config);
  net_->set_send_hook(
      [this](PortNum port, const Packet& pkt) { EmitPacket(port, pkt); });

  if (id_.is_switch()) {
    switch_ = std::make_unique<DumbSwitch>(net_.get(), id_.index, opts_.switch_config);
    net_->set_backlog_probe([this](PortNum port) -> int64_t {
      return port < ports_.size() && ports_[port].conn != nullptr
                 ? ports_[port].conn->queued_bytes()
                 : 0;
    });
  } else {
    agent_ = std::make_unique<HostAgent>(net_.get(), id_.index, opts_.host_config);
    InstallPingService();
    if (opts_.run_controller) {
      controller_ = std::make_unique<ControllerService>(agent_.get(), opts_.ctrl_config,
                                                        opts_.disc_config);
    }
  }
}

void WireNode::SetupWiring() {
  const size_t num_ports =
      id_.is_switch() ? topo_.switch_at(id_.index).num_ports : size_t{1};
  ports_.resize(num_ports + 1);

  if (id_.is_switch()) {
    auto fd = ListenOn(SwitchListenAddr(opts_, id_.index));
    if (!fd.ok()) {
      DN_ERROR << "wire: " << id_.ToString()
               << " cannot listen: " << fd.error().ToString();
    } else {
      listen_fd_ = fd.value();
      reactor_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); });
    }
  }

  for (PortNum port = 1; port <= num_ports; ++port) {
    const LinkIndex li = id_.is_switch() ? topo_.LinkAtPort(id_.index, port)
                                         : topo_.host_at(id_.index).link;
    if (li == kInvalidLink || topo_.link_at(li).detached) {
      continue;
    }
    PortState& ps = ports_[port];
    ps.li = li;
    ps.port = port;
    const Endpoint peer = topo_.link_at(li).Peer(id_);
    // Hosts dial their uplink switch; between switches the higher index dials
    // the lower, so exactly one side owns the reconnect loop.
    ps.dialer = id_.is_host() ||
                (peer.node.is_switch() && id_.index > peer.node.index);
    if (ps.dialer) {
      ps.peer = SwitchListenAddr(opts_, peer.node.index);
      Dial(ps);
    }
  }
}

void WireNode::TearDown() {
  for (PortState& ps : ports_) {
    ps.conn.reset();
    ps.established = false;
  }
  pending_accepts_.clear();
  if (listen_fd_ >= 0) {
    reactor_.Del(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [seq, waiter] : pending_pings_) {
    contracts::LockGuard guard(waiter->mu);
    waiter->send_failed = true;
    waiter->error = "node stopped";
    waiter->done = true;
    waiter->cv.notify_all();
  }
  pending_pings_.clear();
  // Protocol objects hold raw pointers into net_/sim_; destroy top-down, and on
  // this thread so their state is never touched cross-thread.
  controller_.reset();
  agent_.reset();
  switch_.reset();
  net_.reset();
  sim_.reset();
}

// ---------------------------------------------------------------------------------
// Wiring

void WireNode::AcceptReady() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return;
      }
      DN_WARN << "wire: " << id_.ToString() << " accept failed: " << errno;
      return;
    }
    auto conn = std::make_unique<Connection>(&reactor_, fd);
    Connection* raw = conn.get();
    conn->set_on_frame([this, raw](FrameType type, std::string_view body) {
      if (type != FrameType::kHello) {
        pending_accepts_.erase(raw);  // protocol violation pre-handshake
        return;
      }
      auto hello = DecodeHelloBody(body);
      if (!hello.ok()) {
        pending_accepts_.erase(raw);
        return;
      }
      AdoptAccepted(raw, hello.value());
    });
    conn->set_on_close(
        [this, raw](const std::string&) { pending_accepts_.erase(raw); });
    if (!conn->RegisterAccepted()) {
      continue;  // conn destroyed, fd closed
    }
    pending_accepts_[raw] = std::move(conn);
  }
}

void WireNode::AdoptAccepted(Connection* raw, const HelloBody& hello) {
  auto it = pending_accepts_.find(raw);
  if (it == pending_accepts_.end()) {
    return;
  }
  std::unique_ptr<Connection> conn = std::move(it->second);
  pending_accepts_.erase(it);

  // The hello claims this socket realizes link `hello.link_index`. Verify the
  // claim against the local topology before adopting: the link must exist, one
  // side must be us, and the other side must be exactly who the peer says.
  if (hello.link_index >= topo_.link_count()) {
    return;  // conn dropped
  }
  const Link& link = topo_.link_at(hello.link_index);
  const NodeId claimed = hello.from_switch ? NodeId::Switch(hello.node_index)
                                           : NodeId::Host(hello.node_index);
  if (link.detached || (link.a.node != id_ && link.b.node != id_)) {
    return;
  }
  const Endpoint peer = link.Peer(id_);
  if (peer.node != claimed || peer.port != hello.port) {
    DN_WARN << "wire: " << id_.ToString() << " rejected hello for link "
            << hello.link_index << " from " << claimed.ToString();
    return;
  }
  const PortNum port = link.Side(id_).port;
  PortState& ps = ports_[port];
  if (ps.li != hello.link_index || ps.admin_down) {
    return;  // admin-down ports refuse service until ReviveLink
  }
  if (ps.conn != nullptr) {
    // A stale carrier is still attached (e.g. the peer restarted faster than
    // our idle timeout). The fresh handshake supersedes it.
    ConnLost(ps, "superseded by new connection", /*redial=*/false);
  }
  ps.conn = std::move(conn);
  ps.conn->set_on_frame([this, port](FrameType type, std::string_view body) {
    if (type == FrameType::kPacket) {
      OnPacketFrame(port, body);
    }
    // Heartbeats update last_rx in the transport; repeated hellos are ignored.
  });
  ps.conn->set_on_close([this, port](const std::string& reason) {
    ConnLost(ports_[port], reason, /*redial=*/false);
  });
  ps.conn->SendFrame(EncodeHelloFrame(
      FrameType::kHelloAck, HelloBody{ps.li, id_.is_switch(), id_.index, port}));
  Established(ps);
}

void WireNode::Dial(PortState& ps) {
  auto fd = ConnectTo(ps.peer);
  if (!fd.ok()) {
    ScheduleRedial(ps);
    return;
  }
  ps.conn = std::make_unique<Connection>(&reactor_, fd.value());
  const PortNum port = ps.port;
  ps.conn->set_on_connected([this, port] {
    PortState& state = ports_[port];
    state.conn->SendFrame(EncodeHelloFrame(
        FrameType::kHello, HelloBody{state.li, id_.is_switch(), id_.index, port}));
  });
  ps.conn->set_on_frame([this, port](FrameType type, std::string_view body) {
    PortState& state = ports_[port];
    if (type == FrameType::kHelloAck && !state.established) {
      auto ack = DecodeHelloBody(body);
      if (!ack.ok() || ack.value().link_index != state.li) {
        ConnLost(state, "bad hello ack", /*redial=*/true);
        return;
      }
      Established(state);
      return;
    }
    if (type == FrameType::kPacket) {
      OnPacketFrame(port, body);
    }
  });
  ps.conn->set_on_close([this, port](const std::string& reason) {
    ConnLost(ports_[port], reason, /*redial=*/true);
  });
  if (!ps.conn->RegisterConnecting()) {
    ps.conn.reset();
    ScheduleRedial(ps);
  }
}

void WireNode::ScheduleRedial(PortState& ps) {
  ps.backoff = ps.backoff == 0
                   ? opts_.timing.reconnect_min
                   : std::min<TimeNs>(ps.backoff * 2, opts_.timing.reconnect_max);
  const PortNum port = ps.port;
  sim_->Cancel(ps.retry_timer);
  ps.retry_timer = sim_->ScheduleAfter(ps.backoff, [this, port] {
    PortState& state = ports_[port];
    if (!state.admin_down && state.conn == nullptr && state.dialer) {
      Dial(state);
    }
  });
}

void WireNode::Established(PortState& ps) {
  ps.established = true;
  ps.backoff = 0;
  sim_->Cancel(ps.retry_timer);
  DN_COUNTER_INC("wire.links_established");
  // Raising the local link triggers the stock Network plumbing: a detect-delay
  // event on the private simulator, then the protocol object's
  // HandlePortChange — identical to a simulated port coming up.
  topo_.SetLinkUp(ps.li, true);
  const PortNum port = ps.port;
  sim_->Cancel(ps.hb_timer);
  ps.hb_timer = sim_->ScheduleAfter(opts_.timing.heartbeat_period,
                                    [this, port] { HeartbeatTick(port); });
}

void WireNode::ConnLost(PortState& ps, const std::string& reason, bool redial) {
  sim_->Cancel(ps.hb_timer);
  sim_->Cancel(ps.retry_timer);
  const bool was_connected = ps.conn != nullptr;
  ps.conn.reset();
  if (ps.established || was_connected) {
    DN_LOG_KV(kDebug, "wire.link_lost")
        .Kv("node", id_.ToString())
        .Kv("link", ps.li)
        .Kv("reason", reason);
  }
  ps.established = false;
  topo_.SetLinkUp(ps.li, false);  // loss of physical signal, locally observed
  if (redial && ps.dialer && !ps.admin_down && !stop_requested_) {
    ScheduleRedial(ps);
  }
}

void WireNode::HeartbeatTick(PortNum port) {
  PortState& ps = ports_[port];
  if (ps.conn == nullptr || !ps.established) {
    return;
  }
  if (MonotonicNowNs() - ps.conn->last_rx_ns() > opts_.timing.idle_timeout) {
    ConnLost(ps, "idle timeout", /*redial=*/true);
    return;
  }
  ps.conn->SendFrame(EncodeFrame(FrameType::kHeartbeat, std::string_view()));
  ps.hb_timer = sim_->ScheduleAfter(opts_.timing.heartbeat_period,
                                    [this, port] { HeartbeatTick(port); });
}

// ---------------------------------------------------------------------------------
// Data path

void WireNode::EmitPacket(PortNum out_port, const Packet& pkt) {
  if (out_port >= ports_.size()) {
    return;
  }
  PortState& ps = ports_[out_port];
  if (ps.conn == nullptr || !ps.established) {
    return;  // link view raced the socket teardown; equivalent to a wire drop
  }
  ps.conn->SendFrame(EncodePacketFrame(pkt));
}

void WireNode::OnPacketFrame(PortNum in_port, std::string_view body) {
  auto pkt = DecodePacketBody(body);
  if (!pkt.ok()) {
    DN_WARN << "wire: " << id_.ToString()
            << " dropped malformed packet frame: " << pkt.error().ToString();
    DN_COUNTER_INC("wire.rx_malformed");
    return;
  }
  net_->DeliverLocal(std::move(pkt.value()), in_port);
}

// ---------------------------------------------------------------------------------
// Ping service

void WireNode::InstallPingService() {
  agent_->SetDataHandler([this](const Packet& pkt, const DataPayload& data) {
    if (!data.is_ack) {
      if (pkt.sent_time != 0) {
        // Same process, same CLOCK_MONOTONIC, shared epoch: sender virtual
        // time is directly comparable with ours.
        DN_HISTOGRAM_RECORD("wire.oneway_ns", Elapsed() - pkt.sent_time);
      }
      DataPayload reply;
      reply.flow_id = data.flow_id;
      reply.ack = data.seq;
      reply.is_ack = true;
      reply.bytes = 64;
      (void)agent_->Send(pkt.eth.src_mac, data.flow_id, reply);
      return;
    }
    auto it = pending_pings_.find(data.ack);
    if (it == pending_pings_.end()) {
      return;  // late ack after timeout; harmless
    }
    std::shared_ptr<PingWaiter> waiter = it->second;
    pending_pings_.erase(it);
    contracts::LockGuard guard(waiter->mu);
    waiter->rtt_ns = MonotonicNowNs() - waiter->sent_ns;
    waiter->done = true;
    waiter->cv.notify_all();
  });
}

std::shared_ptr<PingWaiter> WireNode::SendPing(uint64_t dst_mac, uint64_t flow_id,
                                               int64_t payload_bytes,
                                               std::vector<uint64_t> uid_path) {
  auto waiter = std::make_shared<PingWaiter>();
  Post([this, waiter, dst_mac, flow_id, payload_bytes,
        uid_path = std::move(uid_path)] {
    const uint64_t seq = ++ping_seq_;
    waiter->sent_ns = MonotonicNowNs();
    pending_pings_[seq] = waiter;
    DataPayload data;
    data.flow_id = flow_id;
    data.seq = seq;
    data.bytes = payload_bytes;
    const Status status = uid_path.empty()
                              ? agent_->Send(dst_mac, flow_id, data)
                              : agent_->SendOnPath(dst_mac, uid_path, data);
    if (!status.ok()) {
      pending_pings_.erase(seq);
      contracts::LockGuard guard(waiter->mu);
      waiter->send_failed = true;
      waiter->error = status.ToString();
      waiter->done = true;
      waiter->cv.notify_all();
    }
  });
  return waiter;
}

// ---------------------------------------------------------------------------------
// Control surface

bool WireNode::FullyWired() {
  return Call([this] {
    for (const PortState& ps : ports_) {
      if (ps.li != kInvalidLink && !ps.established) {
        return false;
      }
    }
    return true;
  });
}

WireNode::PortState* WireNode::PortForLink(LinkIndex li) {
  for (PortState& ps : ports_) {
    if (ps.li == li) {
      return &ps;
    }
  }
  return nullptr;
}

void WireNode::KillLink(LinkIndex li) {
  Post([this, li] {
    PortState* ps = PortForLink(li);
    if (ps == nullptr) {
      return;
    }
    ps->admin_down = true;
    ConnLost(*ps, "admin down", /*redial=*/false);
  });
}

void WireNode::ReviveLink(LinkIndex li) {
  Post([this, li] {
    PortState* ps = PortForLink(li);
    if (ps == nullptr) {
      return;
    }
    ps->admin_down = false;
    ps->backoff = 0;
    if (ps->dialer && ps->conn == nullptr) {
      Dial(*ps);
    }
  });
}

}  // namespace wire
}  // namespace dumbnet
