#include "src/wire/wire_net.h"

#include <utility>

#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {
namespace wire {

WireNetAdapter::WireNetAdapter(Simulator* sim, Topology* topo, NodeId self,
                               NetworkConfig config)
    : Network(sim, topo, config), self_(self) {}

void WireNetAdapter::SendFromSwitch(uint32_t sw, PortNum port, Packet pkt) {
  if (NodeId::Switch(sw) != self_) {
    DN_ERROR << "wire: switch " << sw << " sent through node "
             << self_.ToString() << "'s adapter";
    return;
  }
  Emit(topo().LinkAtPort(sw, port), port, std::move(pkt));
}

void WireNetAdapter::SendFromHost(uint32_t host, Packet pkt) {
  if (NodeId::Host(host) != self_) {
    DN_ERROR << "wire: host " << host << " sent through node "
             << self_.ToString() << "'s adapter";
    return;
  }
  if (pkt.sent_time == 0) {
    pkt.sent_time = SimFor(self_).Now();
  }
  Emit(topo().host_at(host).link, 1, std::move(pkt));
}

void WireNetAdapter::Emit(LinkIndex li, PortNum out_port, Packet&& pkt) {
  if (li == kInvalidLink) {
    ++wire_stats_.dropped_unwired;
    return;
  }
  if (!topo().link_at(li).up) {
    // The local link view mirrors socket liveness, so this is "the NIC knows
    // the port is down": the packet is dropped exactly like real hardware
    // would, and recovery is the protocol's job.
    ++wire_stats_.dropped_port_down;
    DN_COUNTER_INC("wire.dropped_port_down");
    return;
  }
  StampPacketId(self_, pkt);
  ++wire_stats_.tx_packets;
  DN_COUNTER_INC("wire.tx_packets");
  if (send_hook_) {
    send_hook_(out_port, pkt);
  }
}

int64_t WireNetAdapter::QueueBacklog(LinkIndex li, const NodeId& from) const {
  (void)li;
  if (from != self_ || !backlog_probe_) {
    return 0;
  }
  // Map the link back to the local port; `li` is always adjacent to self when
  // the switch's ECN marking asks.
  if (from.is_switch()) {
    const Link& link = topo().link_at(li);
    return backlog_probe_(link.Side(from).port);
  }
  return backlog_probe_(1);
}

void WireNetAdapter::DeliverLocal(Packet&& pkt, PortNum in_port) {
  NetNode* node = self_node_ != nullptr ? self_node_ : (self_node_ = NodeFor(self_));
  if (node == nullptr) {
    ++wire_stats_.dropped_unwired;
    return;
  }
  ++wire_stats_.rx_packets;
  DN_COUNTER_INC("wire.rx_packets");
  node->HandlePacket(std::move(pkt), in_port);
}

}  // namespace wire
}  // namespace dumbnet
