#include "src/wire/runtime.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "src/util/logging.h"
#include "src/wire/clock.h"

namespace dumbnet {
namespace wire {

namespace {
constexpr TimeNs kPollInterval = Ms(5);
}  // namespace

WireFabric::WireFabric(Topology topo, WireFabricOptions opts)
    : topo_(std::move(topo)), opts_(std::move(opts)) {}

WireFabric::~WireFabric() { Shutdown(); }

Status WireFabric::Start() {
  if (started_) {
    return Status();
  }
  if (opts_.node.transport == TransportKind::kUds && opts_.node.uds_dir.empty()) {
    char tmpl[] = "/tmp/dnwire.XXXXXX";
    char* dir = mkdtemp(tmpl);
    if (dir == nullptr) {
      return Error(ErrorCode::kUnavailable, "mkdtemp failed for UDS directory");
    }
    owned_uds_dir_ = dir;
    opts_.node.uds_dir = owned_uds_dir_;
  }
  opts_.node.epoch_ns = MonotonicNowNs();
  started_ = true;

  // Switches come up first so every dialer finds its listener on the first
  // attempt (retries with backoff would still converge, just slower).
  for (uint32_t i = 0; i < topo_.switch_count(); ++i) {
    switches_.push_back(
        std::make_unique<WireNode>(NodeId::Switch(i), topo_, opts_.node));
    switches_.back()->Start();
  }
  for (uint32_t i = 0; i < topo_.host_count(); ++i) {
    WireNodeOptions host_opts = opts_.node;
    host_opts.run_controller = i == opts_.controller_host;
    hosts_.push_back(
        std::make_unique<WireNode>(NodeId::Host(i), topo_, host_opts));
    hosts_.back()->Start();
  }

  const int64_t deadline = MonotonicNowNs() + opts_.wiring_timeout;
  for (;;) {
    bool wired = true;
    for (auto& node : switches_) {
      wired = wired && node->FullyWired();
    }
    for (auto& node : hosts_) {
      wired = wired && node->FullyWired();
    }
    if (wired) {
      DN_INFO << "wire: fabric fully wired (" << switches_.size() << " switches, "
              << hosts_.size() << " hosts)";
      return Status();
    }
    if (MonotonicNowNs() > deadline) {
      return Error(ErrorCode::kUnavailable,
                   "wiring timeout: not all links completed their handshake");
    }
    SleepNs(kPollInterval);
  }
}

Status WireFabric::RunDiscovery() {
  if (!started_) {
    return Error(ErrorCode::kInternal, "fabric not started");
  }
  WireNode* ctrl_node = hosts_[opts_.controller_host].get();
  auto ready = std::make_shared<std::atomic<bool>>(false);
  ctrl_node->Post([ctrl_node, ready] {
    ctrl_node->controller()->Start([ready] { ready->store(true); });
  });

  const int64_t deadline = MonotonicNowNs() + opts_.discovery_timeout;
  for (;;) {
    if (ready->load()) {
      bool all_bootstrapped = true;
      for (auto& node : hosts_) {
        WireNode* raw = node.get();
        all_bootstrapped = all_bootstrapped &&
                           raw->Call([raw] { return raw->agent()->bootstrapped(); });
      }
      if (all_bootstrapped) {
        DN_INFO << "wire: discovery complete, all hosts bootstrapped";
        return Status();
      }
    }
    if (MonotonicNowNs() > deadline) {
      for (auto& node : hosts_) {
        WireNode* raw = node.get();
        const bool boot = raw->Call([raw] { return raw->agent()->bootstrapped(); });
        DN_WARN << "wire: host " << raw->id().index
                << (boot ? " bootstrapped" : " NOT bootstrapped");
      }
      return Error(ErrorCode::kUnavailable,
                   "discovery timeout: fabric never reached full adoption");
    }
    SleepNs(kPollInterval);
  }
}

PingOutcome WireFabric::Ping(uint32_t src, uint32_t dst, uint64_t flow_id,
                             TimeNs timeout, std::vector<uint64_t> uid_path) {
  PingOutcome outcome;
  const uint64_t dst_mac = topo_.host_at(dst).mac;
  auto waiter =
      hosts_[src]->SendPing(dst_mac, flow_id, kDefaultMtu, std::move(uid_path));
  contracts::UniqueLock lock(waiter->mu);
  // Blocks the fabric-control thread (never a node thread) until the ping
  // completes or times out.
  DN_BLOCKING_POINT("WireFabric::Ping");
  waiter->cv.wait_for(lock.std_lock(), std::chrono::nanoseconds(timeout),
                      [&] { return waiter->done; });
  if (!waiter->done) {
    outcome.timed_out = true;
    return outcome;
  }
  if (waiter->send_failed) {
    outcome.error = waiter->error;
    return outcome;
  }
  outcome.ok = true;
  outcome.rtt_ns = waiter->rtt_ns;
  return outcome;
}

void WireFabric::KillLink(LinkIndex li) {
  const Link& link = topo_.link_at(li);
  for (const Endpoint& e : {link.a, link.b}) {
    if (WireNode* node = NodeFor(e.node)) {
      node->KillLink(li);
    }
  }
}

void WireFabric::ReviveLink(LinkIndex li) {
  const Link& link = topo_.link_at(li);
  for (const Endpoint& e : {link.a, link.b}) {
    if (WireNode* node = NodeFor(e.node)) {
      node->ReviveLink(li);
    }
  }
}

HostAgentStats WireFabric::HostStats(uint32_t host) {
  WireNode* node = hosts_[host].get();
  return node->Call([node] { return node->agent()->stats(); });
}

WireNode* WireFabric::NodeFor(const NodeId& id) {
  if (id.is_switch()) {
    return id.index < switches_.size() ? switches_[id.index].get() : nullptr;
  }
  return id.index < hosts_.size() ? hosts_[id.index].get() : nullptr;
}

void WireFabric::Shutdown() {
  // Hosts first: they are the traffic sources, and a switch that dies under a
  // host merely looks like links going down.
  for (auto& node : hosts_) {
    node->Stop();
  }
  for (auto& node : switches_) {
    node->Stop();
  }
  hosts_.clear();
  switches_.clear();
  if (!owned_uds_dir_.empty()) {
    for (uint32_t i = 0; i < topo_.switch_count(); ++i) {
      ::unlink((owned_uds_dir_ + "/sw" + std::to_string(i) + ".sock").c_str());
    }
    ::rmdir(owned_uds_dir_.c_str());
    owned_uds_dir_.clear();
  }
  started_ = false;
}

}  // namespace wire
}  // namespace dumbnet
