// WireNode: one fabric element (switch or host) running as a real thread.
//
// Each node owns, privately and thread-locally:
//   * a Simulator — the protocol stack's virtual clock, continuously advanced
//     to the wall clock (RunUntil(elapsed)), so every existing protocol timer
//     (probe timeouts, patch aggregation, alarm suppression) runs in real time
//     without modification;
//   * a full Topology copy — its local ground-truth view. Links adjacent to the
//     node mirror socket liveness (down until the link's connection completes
//     its hello handshake); everything else keeps the blueprint state and is
//     learned about through the protocol, exactly like a real deployment;
//   * a WireNetAdapter and exactly one protocol object (DumbSwitch or
//     HostAgent, optionally hosting the ControllerService), constructed against
//     the adapter the same way the simulated fabric constructs them.
//
// Sockets realize links one-to-one. Switches listen (UDS path or localhost TCP
// port derived from their index); hosts dial their uplink switch; between two
// switches the higher index dials the lower. A dialer opens with
// kHello{link, who-I-am}; the acceptor validates the claim against its topology
// copy, adopts the socket as that link's carrier and answers kHelloAck. Both
// sides then raise the link in their local topology (feeding the stock
// detect-delay -> HandlePortChange plumbing), heartbeat each other, and treat
// EOF / errors / idle expiry as loss of physical signal: link down locally,
// capped-exponential-backoff redial on the dialer side. KillLink() is an
// administrative down — the socket is torn down and reconnects are suppressed
// until ReviveLink().
//
// Thread discipline: everything behind the reactor runs on the node thread.
// Other threads interact only through Post()/Call() (closure hand-off) and the
// ping waiters (mutex + condvar), so the runtime is clean under TSan.
#ifndef DUMBNET_SRC_WIRE_NODE_H_
#define DUMBNET_SRC_WIRE_NODE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ctrl/controller.h"
#include "src/host/host_agent.h"
#include "src/switch/dumb_switch.h"
#include "src/topo/topology.h"
#include "src/wire/reactor.h"
#include "src/wire/transport.h"
#include "src/wire/wire_net.h"

namespace dumbnet {
namespace wire {

// Every wall-clock knob the wire runtime runs on, in one place (these used to
// be loose literals spread across WireNodeOptions and ThreadMain). Values are
// TimeNs deltas applied to the node's continuously-advanced Simulator clock.
struct WireTimingConfig {
  TimeNs heartbeat_period = Ms(50);  // keepalive cadence per established link
  TimeNs idle_timeout = Ms(500);     // no-rx window before a link is declared dead
  TimeNs reconnect_min = Ms(5);      // dialer backoff floor
  TimeNs reconnect_max = Ms(320);    // dialer backoff cap (exponential in between)
  // Upper bound on one epoll_wait, so protocol timers stay responsive even
  // when the simulator's event queue is empty.
  TimeNs poll_cap = Ms(10);
};

struct WireNodeOptions {
  TransportKind transport = TransportKind::kUds;
  // Switch i listens at <uds_dir>/sw<i>.sock, or 127.0.0.1:<tcp_base_port>+i.
  std::string uds_dir;
  uint16_t tcp_base_port = 18300;
  // Shared MonotonicNowNs() origin: all nodes measure elapsed time from here,
  // which is what makes timestamps stamped by one node comparable at another.
  int64_t epoch_ns = 0;

  WireTimingConfig timing;

  NetworkConfig net_config;
  DumbSwitchConfig switch_config;
  HostAgentConfig host_config;
  bool run_controller = false;
  ControllerConfig ctrl_config;
  DiscoveryConfig disc_config;
};

// Listen address of switch `index` under `opts`.
WireAddr SwitchListenAddr(const WireNodeOptions& opts, uint32_t index);

// Completion state for one in-flight ping (shared between the issuing thread
// and the node thread).
struct PingWaiter {
  std::mutex mu;
  DN_MUTEX_RANK(mu, contracts::kRankWirePingWaiter);
  std::condition_variable cv;
  bool done = false;
  bool send_failed = false;
  std::string error;
  int64_t sent_ns = 0;
  int64_t rtt_ns = 0;
};

class WireNode {
 public:
  // `topo` is the shared blueprint; the node copies it. Does not start.
  WireNode(NodeId id, const Topology& topo, WireNodeOptions opts);
  ~WireNode();

  WireNode(const WireNode&) = delete;
  WireNode& operator=(const WireNode&) = delete;

  // Spawns the node thread; returns once the node is listening/dialing.
  void Start();
  // Posts a stop, joins, tears everything down on the node thread. Idempotent.
  void Stop();

  const NodeId& id() const { return id_; }

  // Runs `fn` on the node thread and returns its result. Only valid between
  // Start() and Stop(); the closure may touch any node-owned state.
  template <typename F>
  auto Call(F&& fn) -> std::invoke_result_t<std::decay_t<F>&> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> fut = task.get_future();
    reactor_.Post([&task] { task(); });
    // Blocks the *calling* thread until the node thread runs the task; calling
    // this from a reactor context would deadlock the loop on itself.
    DN_BLOCKING_POINT("WireNode::Call");
    return fut.get();
  }

  // Fire-and-forget variant of Call.
  void Post(std::function<void()> fn) { reactor_.Post(std::move(fn)); }

  // Node-owned protocol objects; dereference only from the node thread (Call).
  HostAgent* agent() { return agent_.get(); }
  DumbSwitch* dumb_switch() { return switch_.get(); }
  ControllerService* controller() { return controller_.get(); }
  WireNetAdapter* net() { return net_.get(); }

  // True once every adjacent link's connection finished its hello handshake.
  bool FullyWired();

  // Administrative link control (posted; returns immediately). The runtime
  // invokes these on both endpoints of a link.
  void KillLink(LinkIndex li);
  void ReviveLink(LinkIndex li);

  // Hosts only: issues one echo-request to `dst_mac` and returns the waiter the
  // caller blocks on. With a non-empty `uid_path` the request is pinned to that
  // explicit switch route (HostAgent::SendOnPath); otherwise the cached route /
  // controller query path is exercised (HostAgent::Send).
  std::shared_ptr<PingWaiter> SendPing(uint64_t dst_mac, uint64_t flow_id,
                                       int64_t payload_bytes,
                                       std::vector<uint64_t> uid_path = {});

 private:
  struct PortState {
    LinkIndex li = kInvalidLink;
    PortNum port = 0;
    bool dialer = false;
    WireAddr peer;  // dial target, dialers only
    std::unique_ptr<Connection> conn;
    bool established = false;
    bool admin_down = false;
    TimeNs backoff = 0;
    EventHandle retry_timer;
    EventHandle hb_timer;
  };

  void ThreadMain();
  void BuildStack();
  void SetupWiring();
  void TearDown();
  int64_t Elapsed() const;

  void AcceptReady();
  void AdoptAccepted(Connection* raw, const HelloBody& hello);
  void Dial(PortState& ps);
  void ScheduleRedial(PortState& ps);
  void Established(PortState& ps);
  void ConnLost(PortState& ps, const std::string& reason, bool redial);
  void HeartbeatTick(PortNum port);
  void EmitPacket(PortNum out_port, const Packet& pkt);
  void OnPacketFrame(PortNum in_port, std::string_view body);
  void InstallPingService();
  PortState* PortForLink(LinkIndex li);

  const NodeId id_;
  WireNodeOptions opts_;
  Topology topo_;  // private copy; adjacent links mirror socket liveness
  Reactor reactor_;

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<WireNetAdapter> net_;
  std::unique_ptr<DumbSwitch> switch_;
  std::unique_ptr<HostAgent> agent_;
  std::unique_ptr<ControllerService> controller_;

  std::thread thread_;
  std::promise<void> started_;
  bool stop_requested_ = false;  // node-thread only

  int listen_fd_ = -1;
  std::vector<PortState> ports_;  // indexed by local port number; 0 unused
  // Accepted sockets whose hello has not arrived yet.
  std::map<Connection*, std::unique_ptr<Connection>> pending_accepts_;

  // Ping service (hosts).
  uint64_t ping_seq_ = 0;
  std::unordered_map<uint64_t, std::shared_ptr<PingWaiter>> pending_pings_;
};

}  // namespace wire
}  // namespace dumbnet

#endif  // DUMBNET_SRC_WIRE_NODE_H_
