#include "src/wire/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/analysis/contracts.h"
#include "src/wire/clock.h"

namespace dumbnet {
namespace wire {

namespace {

Error Sys(const std::string& what) {
  return Error(ErrorCode::kUnavailable, what + ": " + std::strerror(errno));
}

Result<int> MakeSocket(TransportKind kind) {
  const int domain = kind == TransportKind::kUds ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Sys("socket");
  }
  if (kind == TransportKind::kTcp) {
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

// Fills a sockaddr for `addr`; returns its length, or 0 on bad input.
socklen_t FillSockaddr(const WireAddr& addr, sockaddr_storage* out) {
  std::memset(out, 0, sizeof(*out));
  if (addr.kind == TransportKind::kUds) {
    auto* sun = reinterpret_cast<sockaddr_un*>(out);
    sun->sun_family = AF_UNIX;
    if (addr.uds_path.size() + 1 > sizeof(sun->sun_path)) {
      return 0;
    }
    std::memcpy(sun->sun_path, addr.uds_path.c_str(), addr.uds_path.size() + 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  addr.uds_path.size() + 1);
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(out);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.tcp_port);
  sin->sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return sizeof(sockaddr_in);
}

}  // namespace

std::string WireAddr::ToString() const {
  if (kind == TransportKind::kUds) {
    return "uds:" + uds_path;
  }
  return "tcp:127.0.0.1:" + std::to_string(tcp_port);
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Sys("fcntl");
  }
  return Status();
}

Result<int> ListenOn(const WireAddr& addr) {
  auto fd = MakeSocket(addr.kind);
  if (!fd.ok()) {
    return fd;
  }
  if (addr.kind == TransportKind::kUds) {
    ::unlink(addr.uds_path.c_str());
  } else {
    const int one = 1;
    setsockopt(fd.value(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_storage ss;
  const socklen_t len = FillSockaddr(addr, &ss);
  if (len == 0) {
    ::close(fd.value());
    return Error(ErrorCode::kInvalidArgument, "address too long: " + addr.ToString());
  }
  if (::bind(fd.value(), reinterpret_cast<sockaddr*>(&ss), len) != 0 ||
      ::listen(fd.value(), 64) != 0) {
    ::close(fd.value());
    return Sys("bind/listen " + addr.ToString());
  }
  return fd;
}

Result<int> ConnectTo(const WireAddr& addr) {
  auto fd = MakeSocket(addr.kind);
  if (!fd.ok()) {
    return fd;
  }
  sockaddr_storage ss;
  const socklen_t len = FillSockaddr(addr, &ss);
  if (len == 0) {
    ::close(fd.value());
    return Error(ErrorCode::kInvalidArgument, "address too long: " + addr.ToString());
  }
  if (contracts::GuardedConnect(fd.value(), &ss, len) != 0 && errno != EINPROGRESS) {
    ::close(fd.value());
    return Sys("connect " + addr.ToString());
  }
  return fd;
}

// ---------------------------------------------------------------------------------
// Connection

Connection::Connection(Reactor* reactor, int fd)
    : reactor_(reactor), fd_(fd), alive_(std::make_shared<bool>(true)),
      last_rx_ns_(MonotonicNowNs()) {}

Connection::~Connection() {
  *alive_ = false;
  if (fd_ >= 0) {
    reactor_->Del(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

bool Connection::RegisterAccepted() {
  connected_ = true;
  return reactor_->Add(fd_, EPOLLIN,
                       [this](uint32_t events) { OnEvents(events); });
}

bool Connection::RegisterConnecting() {
  // EPOLLOUT reports connect completion; EPOLLIN is armed from the start so a
  // fast peer's hello is not missed.
  want_write_ = true;
  return reactor_->Add(fd_, EPOLLIN | EPOLLOUT,
                       [this](uint32_t events) { OnEvents(events); });
}

void Connection::SendFrame(std::string frame) {
  if (closed_) {
    return;
  }
  queued_bytes_ += static_cast<int64_t>(frame.size());
  outq_.push_back(std::move(frame));
  if (connected_) {
    if (!FlushWrites()) {
      return;  // Fail() ran; *this may be gone
    }
    UpdateWriteInterest();
  }
}

void Connection::OnEvents(uint32_t events) {
  // Everything below runs on the reactor thread: one blocked call here stalls
  // every socket and timer the node owns, so only guarded nonblocking I/O.
  DN_REACTOR_CONTEXT;
  std::shared_ptr<bool> alive = alive_;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && !connected_) {
    Fail("connect failed");
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (!connected_) {
      int err = 0;
      socklen_t errlen = sizeof(err);
      getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &errlen);
      if (err != 0) {
        Fail(std::string("connect failed: ") + std::strerror(err));
        return;
      }
      connected_ = true;
      if (on_connected_) {
        on_connected_();
        if (!*alive) {
          return;
        }
      }
    }
    if (!FlushWrites()) {
      return;
    }
    UpdateWriteInterest();
  }
  if ((events & EPOLLIN) != 0) {
    ReadReady();
    if (!*alive) {
      return;
    }
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && (events & EPOLLIN) == 0) {
    Fail("peer hung up");
  }
}

void Connection::ReadReady() {
  DN_REACTOR_CONTEXT;
  std::shared_ptr<bool> alive = alive_;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = contracts::GuardedRecv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      last_rx_ns_ = MonotonicNowNs();
      decoder_.Feed(buf, static_cast<size_t>(n));
      for (;;) {
        const FrameDecoder::Status st = decoder_.Next(&rx_frame_);
        if (st == FrameDecoder::Status::kNeedMore) {
          break;
        }
        if (st == FrameDecoder::Status::kError) {
          Fail("frame decode: " + decoder_.error());
          return;
        }
        if (on_frame_) {
          on_frame_(rx_frame_.type, rx_frame_.body);
          if (!*alive || closed_) {
            return;  // the frame handler tore this connection down
          }
        }
      }
      continue;
    }
    if (n == 0) {
      Fail("peer closed");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    Fail(std::string("recv: ") + std::strerror(errno));
    return;
  }
}

bool Connection::FlushWrites() {
  DN_REACTOR_CONTEXT;
  while (!outq_.empty()) {
    const std::string& front = outq_.front();
    const size_t want = front.size() - out_pos_;
    const ssize_t n =
        contracts::GuardedSend(fd_, front.data() + out_pos_, want, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<size_t>(n);
      queued_bytes_ -= n;
      if (out_pos_ == front.size()) {
        outq_.pop_front();
        out_pos_ = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    Fail(std::string("send: ") + std::strerror(errno));
    return false;
  }
  return true;
}

void Connection::UpdateWriteInterest() {
  const bool want = !outq_.empty() || !connected_;
  if (want == want_write_) {
    return;
  }
  want_write_ = want;
  reactor_->Mod(fd_, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void Connection::Fail(const std::string& reason) {
  if (closed_) {
    return;
  }
  closed_ = true;
  reactor_->Del(fd_);
  if (on_close_) {
    // Typically destroys *this; nothing after this call touches members.
    on_close_(reason);
  }
}

}  // namespace wire
}  // namespace dumbnet
