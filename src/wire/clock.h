// The wire runtime's only wall-clock source. Everything in src/wire that needs
// real time calls MonotonicNowNs() so the rest of the codebase stays on virtual
// time (Simulator::Now) and dn-lint can enforce it: this file and clock.cc are
// the sole determinism-exempt entries for src/wire (see LintOptions).
//
// Wire nodes convert the monotonic reading to a fabric-relative timeline by
// subtracting one shared epoch captured at fabric start; because every node
// thread lives in one process and CLOCK_MONOTONIC is process-wide, timestamps
// stamped by one node (Packet::sent_time) are directly comparable at another —
// that is what makes one-way latency measurable in bench/wire_latency.
#ifndef DUMBNET_SRC_WIRE_CLOCK_H_
#define DUMBNET_SRC_WIRE_CLOCK_H_

#include <cstdint>

namespace dumbnet {
namespace wire {

// CLOCK_MONOTONIC in nanoseconds. Monotone, unaffected by wall-clock steps.
int64_t MonotonicNowNs();

// Blocks the calling thread for ~ns (clamped to >= 0). Main-thread polling only;
// node threads sleep in their reactor instead.
void SleepNs(int64_t ns);

}  // namespace wire
}  // namespace dumbnet

#endif  // DUMBNET_SRC_WIRE_CLOCK_H_
