#include "src/wire/clock.h"

#include <ctime>

namespace dumbnet {
namespace wire {

int64_t MonotonicNowNs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
}

void SleepNs(int64_t ns) {
  if (ns <= 0) {
    return;
  }
  timespec req{};
  req.tv_sec = static_cast<time_t>(ns / 1000000000LL);
  req.tv_nsec = static_cast<long>(ns % 1000000000LL);  // NOLINT(google-runtime-int)
  nanosleep(&req, nullptr);
}

}  // namespace wire
}  // namespace dumbnet
