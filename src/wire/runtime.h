// WireFabric: boots a whole DumbNet deployment as real threads and sockets.
//
// Give it a Topology blueprint and it spawns one WireNode per switch and per
// host, wires every link with a socket (UDS by default, localhost TCP on
// request), runs the controller's real discovery protocol to adoption, and
// then serves as the control surface the tools drive: ping along promised tag
// paths, kill links live, read per-host protocol stats.
//
// The blueprint is exactly that — a wiring plan. No node shares state with
// another at runtime; everything an agent knows, it learned through frames on
// its sockets, which is the point of the exercise.
#ifndef DUMBNET_SRC_WIRE_RUNTIME_H_
#define DUMBNET_SRC_WIRE_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/result.h"
#include "src/wire/node.h"

namespace dumbnet {
namespace wire {

struct WireFabricOptions {
  // Per-node template: transport, timeouts, protocol configs. The fabric fills
  // epoch_ns, and uds_dir when left empty (a fresh private directory).
  WireNodeOptions node;
  // Which host runs the ControllerService.
  uint32_t controller_host = 0;
  // Wall-clock budget for all sockets to finish their hello handshakes.
  TimeNs wiring_timeout = Sec(10);
  // Wall-clock budget for discovery + bootstrap of every host.
  TimeNs discovery_timeout = Sec(120);
};

struct PingOutcome {
  bool ok = false;
  bool timed_out = false;
  std::string error;  // send-side failure, when any
  int64_t rtt_ns = 0;
};

class WireFabric {
 public:
  WireFabric(Topology topo, WireFabricOptions opts);
  ~WireFabric();

  WireFabric(const WireFabric&) = delete;
  WireFabric& operator=(const WireFabric&) = delete;

  // Spawns every node and blocks until the fabric is fully wired (every link's
  // handshake done) or the wiring timeout expires.
  Status Start();

  // Kicks off the controller's probing discovery and blocks until every host
  // is bootstrapped (tag path to controller + directory installed).
  Status RunDiscovery();

  // One echo round-trip from host `src` to host `dst`. With `uid_path` the
  // request is pinned to that explicit switch route; otherwise the cached
  // route/controller query path is used. Blocks up to `timeout` wall ns.
  PingOutcome Ping(uint32_t src, uint32_t dst, uint64_t flow_id, TimeNs timeout,
                   std::vector<uint64_t> uid_path = {});

  // Administrative link failure/recovery, applied live at both endpoints (the
  // sockets are torn down / redialed; the protocol does the rest).
  void KillLink(LinkIndex li);
  void ReviveLink(LinkIndex li);

  // Per-host protocol stats, fetched from the node thread.
  HostAgentStats HostStats(uint32_t host);

  WireNode& switch_node(uint32_t i) { return *switches_[i]; }
  WireNode& host_node(uint32_t i) { return *hosts_[i]; }
  const Topology& topo() const { return topo_; }
  size_t host_count() const { return hosts_.size(); }
  size_t switch_count() const { return switches_.size(); }

  // Stops every node thread. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  WireNode* NodeFor(const NodeId& id);

  Topology topo_;
  WireFabricOptions opts_;
  std::vector<std::unique_ptr<WireNode>> switches_;
  std::vector<std::unique_ptr<WireNode>> hosts_;
  std::string owned_uds_dir_;  // created by Start, removed by Shutdown
  bool started_ = false;
};

}  // namespace wire
}  // namespace dumbnet

#endif  // DUMBNET_SRC_WIRE_RUNTIME_H_
