#include "src/wire/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <utility>

#include "src/analysis/contracts.h"
#include "src/util/logging.h"

namespace dumbnet {
namespace wire {

Reactor::Reactor() {
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epfd_ < 0 || wake_fd_ < 0) {
    DN_ERROR << "reactor: epoll/eventfd creation failed";
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

Reactor::~Reactor() {
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
  }
  if (epfd_ >= 0) {
    ::close(epfd_);
  }
}

bool Reactor::Add(int fd, uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  const int op = handlers_.count(fd) > 0 ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (epoll_ctl(epfd_, op, fd, &ev) != 0) {
    return false;
  }
  handlers_[fd] = std::move(handler);
  return true;
}

bool Reactor::Mod(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Reactor::Del(int fd) {
  if (handlers_.erase(fd) > 0) {
    epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

int Reactor::PollOnce(int timeout_ms) {
  std::array<epoll_event, 64> events{};
  const int n = epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                           timeout_ms);
  if (n < 0) {
    return -1;  // EINTR and friends: the caller just loops
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<size_t>(i)].data.fd;
    if (fd == wake_fd_) {
      uint64_t drained = 0;
      while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
      }
      continue;
    }
    // A handler earlier in this batch may have Del()ed this fd (e.g. a peer
    // reset observed while servicing another connection); look it up fresh.
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) {
      continue;
    }
    // Copy: the handler may Del(fd) and invalidate the map slot.
    FdHandler handler = it->second;
    {
      // Handler bodies run on the epoll thread — reactor contract applies.
      DN_REACTOR_CONTEXT;
      handler(events[static_cast<size_t>(i)].events);
    }
    ++dispatched;
  }
  DrainPosted();
  return dispatched;
}

void Reactor::Post(std::function<void()> fn) {
  {
    contracts::LockGuard guard(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void Reactor::Wake() {
  const uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;  // full eventfd counter already guarantees a wakeup
}

void Reactor::DrainPosted() {
  // Closures posted while draining run in the same pass (the swap loop), so a
  // Stop() posted from another thread during teardown cannot strand.
  for (;;) {
    std::vector<std::function<void()>> batch;
    {
      contracts::LockGuard guard(post_mu_);
      if (posted_.empty()) {
        return;
      }
      batch.swap(posted_);
    }
    {
      // Posted closures run on the owner's loop thread alongside fd handlers.
      DN_REACTOR_CONTEXT;
      for (std::function<void()>& fn : batch) {
        fn();
      }
    }
  }
}

}  // namespace wire
}  // namespace dumbnet
