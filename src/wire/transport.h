// Socket transport for the wire runtime: addresses, nonblocking listen/connect
// helpers, and Connection — a buffered, frame-oriented socket bound to a
// Reactor.
//
// A Connection owns one nonblocking socket. Reads are drained to EAGAIN and fed
// through a FrameDecoder; complete frames reach the owner's on_frame callback.
// Writes go through an in-memory output queue: SendFrame appends and flushes
// opportunistically, and EPOLLOUT interest is armed only while the queue is
// nonempty (the queue depth doubles as the link's egress backlog, which is what
// WireNetAdapter reports to ECN marking). Failures of any kind — EOF, ECONNRESET,
// codec poison — funnel into one on_close(reason) call, after which the owner
// destroys the Connection; reconnect policy lives a layer up in WireNode.
//
// Everything here runs on the owning node's reactor thread; no locks.
#ifndef DUMBNET_SRC_WIRE_TRANSPORT_H_
#define DUMBNET_SRC_WIRE_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/util/result.h"
#include "src/wire/frame.h"
#include "src/wire/reactor.h"

namespace dumbnet {
namespace wire {

enum class TransportKind : uint8_t { kUds, kTcp };

// Where a node listens. UDS paths must fit sockaddr_un (~100 chars); TCP binds
// 127.0.0.1 only — the wire runtime is a localhost deployment harness, not an
// exposed service.
struct WireAddr {
  TransportKind kind = TransportKind::kUds;
  std::string uds_path;
  uint16_t tcp_port = 0;

  std::string ToString() const;
};

// Nonblocking, cloexec listen socket (backlog 64). UDS unlinks a stale path.
Result<int> ListenOn(const WireAddr& addr);

// Starts a nonblocking connect; the returned fd may still be connecting
// (EINPROGRESS) — completion is observed via EPOLLOUT. Refusal at connect()
// time is an error (the caller's retry/backoff handles it).
Result<int> ConnectTo(const WireAddr& addr);

Status SetNonBlocking(int fd);

class Connection {
 public:
  using FrameHandler = std::function<void(FrameType, std::string_view body)>;
  using CloseHandler = std::function<void(const std::string& reason)>;
  using ConnectedHandler = std::function<void()>;

  // Takes ownership of `fd` (closed on destruction).
  Connection(Reactor* reactor, int fd);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_on_frame(FrameHandler h) { on_frame_ = std::move(h); }
  void set_on_close(CloseHandler h) { on_close_ = std::move(h); }
  void set_on_connected(ConnectedHandler h) { on_connected_ = std::move(h); }

  // Registers an accepted (already-connected) socket for reads.
  bool RegisterAccepted();
  // Registers a dialing socket; on_connected fires once the connect completes.
  bool RegisterConnecting();

  // Queues one encoded frame (output of EncodeFrame/EncodePacketFrame/...) and
  // flushes as much as the socket accepts.
  void SendFrame(std::string frame);

  int fd() const { return fd_; }
  bool connected() const { return connected_; }
  // Bytes queued but not yet accepted by the kernel: the egress backlog.
  int64_t queued_bytes() const { return queued_bytes_; }
  // MonotonicNowNs() of the last byte received (heartbeat liveness input).
  int64_t last_rx_ns() const { return last_rx_ns_; }

 private:
  void OnEvents(uint32_t events);
  void ReadReady();
  bool FlushWrites();  // false when the connection died mid-flush
  void UpdateWriteInterest();
  // Tears down reactor registration and reports `reason` once. May destroy
  // `this` reentrantly (the close handler typically resets the owning pointer),
  // so callers return immediately afterwards.
  void Fail(const std::string& reason);

  Reactor* reactor_;
  int fd_;
  bool connected_ = false;
  bool want_write_ = false;
  bool closed_ = false;
  // Destruction guard: handlers invoked from the reactor check this after any
  // callback that may have destroyed the connection.
  std::shared_ptr<bool> alive_;

  FrameDecoder decoder_;
  // Reused across every ReadReady burst so the body buffer's capacity
  // amortizes: steady-state frame decode stays allocation-free (the
  // wire.frame_decode hot scope in FrameDecoder::Next counts on it).
  Frame rx_frame_;
  std::deque<std::string> outq_;
  size_t out_pos_ = 0;  // consumed prefix of outq_.front()
  int64_t queued_bytes_ = 0;
  int64_t last_rx_ns_ = 0;

  FrameHandler on_frame_;
  CloseHandler on_close_;
  ConnectedHandler on_connected_;
};

}  // namespace wire
}  // namespace dumbnet

#endif  // DUMBNET_SRC_WIRE_TRANSPORT_H_
