// Single-threaded epoll reactor: the event loop each wire node runs.
//
// One Reactor belongs to one node thread. File-descriptor handlers and posted
// closures all execute on that thread, so connection and protocol state needs
// no locking; the only cross-thread surface is Post()/Wake(), which hand a
// closure to the loop through a mutex-guarded queue plus an eventfd kick.
//
// The loop itself lives in the owner (WireNode::ThreadMain): it alternates
// between advancing the node's virtual-time Simulator to the wall clock and
// calling PollOnce() with a timeout derived from the simulator's next event, so
// protocol timers and socket readiness share one thread without busy-waiting.
#ifndef DUMBNET_SRC_WIRE_REACTOR_H_
#define DUMBNET_SRC_WIRE_REACTOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/analysis/contracts.h"

namespace dumbnet {
namespace wire {

class Reactor {
 public:
  // Called with the epoll event bitmask (EPOLLIN / EPOLLOUT / EPOLLERR / ...).
  using FdHandler = std::function<void(uint32_t events)>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Registers `fd` (must be nonblocking) for `events`. Replaces any previous
  // registration of the same fd.
  bool Add(int fd, uint32_t events, FdHandler handler);
  // Changes the interest set of a registered fd.
  bool Mod(int fd, uint32_t events);
  // Unregisters; safe to call from inside a handler (pending events for the fd
  // in the current batch are skipped). Does not close the fd.
  void Del(int fd);

  // One epoll_wait + dispatch + posted-closure drain. Returns the number of fd
  // events dispatched, or -1 on epoll failure. timeout_ms < 0 blocks.
  int PollOnce(int timeout_ms);

  // Thread-safe: enqueues `fn` to run on the loop thread and wakes the loop.
  void Post(std::function<void()> fn);
  // Thread-safe: interrupts a blocking PollOnce.
  void Wake();

  // Runs every queued posted closure on the calling thread. The owner calls
  // this once after its loop exits so blocking Call()s never strand.
  void DrainPosted();

 private:
  int epfd_ = -1;
  int wake_fd_ = -1;
  std::unordered_map<int, FdHandler> handlers_;

  std::mutex post_mu_;
  DN_MUTEX_RANK(post_mu_, contracts::kRankWireReactorPost);
  std::vector<std::function<void()>> posted_;
};

}  // namespace wire
}  // namespace dumbnet

#endif  // DUMBNET_SRC_WIRE_REACTOR_H_
