// WireNetAdapter: the Network a wire node's protocol objects run against.
//
// Each wire node (one OS thread) owns a private Simulator, a private full copy
// of the shared Topology, and exactly one protocol object — its own DumbSwitch
// or HostAgent, constructed against this adapter exactly as it would be against
// the simulated Network. The adapter overrides the virtual send surface:
//
//   * SendFromSwitch / SendFromHost no longer model serialization and
//     propagation — they stamp the packet id and sent_time like the base class,
//     check the local view of the adjacent link, and hand the packet to the
//     node's send hook, which serializes it into a kPacket frame on the port's
//     socket. Real kernels provide the queueing and the delay.
//   * QueueBacklog reports the port connection's unsent byte count, so the
//     switch's ECN marking reads real socket backpressure instead of the
//     simulated egress queue.
//
// Inbound, the node decodes kPacket frames and calls DeliverLocal(), which
// forwards to the registered NetNode — the same HandlePacket entry the
// simulator uses. Link liveness flows through the inherited plumbing: the node
// flips its local topology's adjacent links as sockets come and go, and the
// base class's link observer schedules the usual detect-delayed
// HandlePortChange on the private simulator (the non-local endpoint's node
// pointer is null and is skipped).
#ifndef DUMBNET_SRC_WIRE_WIRE_NET_H_
#define DUMBNET_SRC_WIRE_WIRE_NET_H_

#include <cstdint>
#include <functional>

#include "src/net/network.h"

namespace dumbnet {
namespace wire {

struct WireNetStats {
  uint64_t tx_packets = 0;
  uint64_t rx_packets = 0;
  uint64_t dropped_port_down = 0;  // local link view said down at send time
  uint64_t dropped_unwired = 0;
};

class WireNetAdapter : public Network {
 public:
  // `out_port` is always a port of `self`; hosts use their single NIC (port 1).
  using SendHook = std::function<void(PortNum out_port, const Packet& pkt)>;
  // Unsent bytes queued on `self`'s port connection (ECN input).
  using BacklogProbe = std::function<int64_t(PortNum port)>;

  WireNetAdapter(Simulator* sim, Topology* topo, NodeId self,
                 NetworkConfig config = NetworkConfig());

  void set_send_hook(SendHook hook) { send_hook_ = std::move(hook); }
  void set_backlog_probe(BacklogProbe probe) { backlog_probe_ = std::move(probe); }

  void SendFromSwitch(uint32_t sw, PortNum port, Packet pkt) override;
  void SendFromHost(uint32_t host, Packet pkt) override;
  int64_t QueueBacklog(LinkIndex li, const NodeId& from) const override;

  // A decoded kPacket frame arrived on `in_port` of the local node.
  void DeliverLocal(Packet&& pkt, PortNum in_port);

  const NodeId& self() const { return self_; }
  const WireNetStats& wire_stats() const { return wire_stats_; }

 private:
  // Shared tail of both send paths: link-state check, id stamp, hook.
  void Emit(LinkIndex li, PortNum out_port, Packet&& pkt);

  NodeId self_;
  NetNode* self_node_ = nullptr;  // lazily resolved after registration
  SendHook send_hook_;
  BacklogProbe backlog_probe_;
  WireNetStats wire_stats_;
};

}  // namespace wire
}  // namespace dumbnet

#endif  // DUMBNET_SRC_WIRE_WIRE_NET_H_
