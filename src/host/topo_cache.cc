#include "src/host/topo_cache.h"

#include "src/routing/graph.h"
#include "src/routing/shortest_path.h"

namespace dumbnet {

Status TopoCache::Integrate(const WirePathGraph& graph, const HostLocation& dst) {
  if (Status s = db_.MergePathGraph(graph); !s.ok()) {
    return s;
  }
  db_.UpsertHost(dst);
  if (!graph.backup.empty()) {
    backups_[dst.mac] = graph.backup;
  }
  return Status::Ok();
}

Result<std::pair<uint64_t, uint64_t>> TopoCache::ResolveEdge(uint64_t switch_uid,
                                                             PortNum port) const {
  auto idx = db_.IndexOf(switch_uid);
  if (!idx.ok()) {
    return idx.error();
  }
  LinkIndex li = db_.mirror().LinkAtPort(idx.value(), port);
  if (li == kInvalidLink) {
    return Error(ErrorCode::kNotFound, "link not cached");
  }
  const Link& l = db_.mirror().link_at(li);
  return std::pair<uint64_t, uint64_t>{db_.UidOf(l.a.node.index), db_.UidOf(l.b.node.index)};
}

Result<std::pair<uint64_t, uint64_t>> TopoCache::MarkLinkAt(uint64_t switch_uid,
                                                            PortNum port, bool up) {
  auto edge = ResolveEdge(switch_uid, port);
  if (!edge.ok()) {
    return edge;
  }
  db_.SetLinkState(switch_uid, port, up);
  return edge;
}

void TopoCache::ApplyPatch(const std::vector<WireLink>& removed,
                           const std::vector<WireLink>& added) {
  for (const WireLink& l : removed) {
    db_.SetLinkState(l.uid_a, l.port_a, false);
  }
  for (const WireLink& l : added) {
    // AddLink marks pre-existing links up again and inserts new ones.
    (void)db_.AddLink(l);
  }
}

const SwitchGraph& TopoCache::RoutingGraph() const {
  if (graph_cache_ == nullptr || graph_version_ != db_.version()) {
    graph_cache_ = std::make_shared<const SwitchGraph>(db_.mirror());
    graph_version_ = db_.version();
  }
  return *graph_cache_;
}

Result<CachedRoute> TopoCache::CompileUidPath(const std::vector<uint64_t>& uid_path,
                                              PortNum final_port) const {
  auto tags = db_.CompileTagsForUidPath(uid_path, final_port);
  if (!tags.ok()) {
    return tags.error();
  }
  CachedRoute route;
  route.uid_path = uid_path;
  route.tags = std::move(tags.value());
  return route;
}

Result<std::vector<CachedRoute>> TopoCache::ComputeRoutes(uint64_t src_uid,
                                                          uint64_t dst_mac,
                                                          uint32_t k) const {
  auto dst = db_.LocateHost(dst_mac);
  if (!dst.ok()) {
    return dst.error();
  }
  auto src_idx = db_.IndexOf(src_uid);
  if (!src_idx.ok()) {
    return src_idx.error();
  }
  auto dst_idx = db_.IndexOf(dst.value().switch_uid);
  if (!dst_idx.ok()) {
    return dst_idx.error();
  }
  auto paths = KShortestPaths(RoutingGraph(), src_idx.value(), dst_idx.value(), k);
  if (!paths.ok()) {
    return paths.error();
  }
  std::vector<CachedRoute> routes;
  for (const SwitchPath& p : paths.value()) {
    auto route = CompileUidPath(db_.PathToUids(p), dst.value().port);
    if (route.ok()) {
      routes.push_back(std::move(route.value()));
    }
  }
  if (routes.empty()) {
    return Error(ErrorCode::kUnavailable, "no compilable route in cache");
  }
  return routes;
}

Result<PathTableEntry> TopoCache::BuildEntry(uint64_t src_uid, uint64_t dst_mac,
                                             uint32_t k) const {
  auto dst = db_.LocateHost(dst_mac);
  if (!dst.ok()) {
    return dst.error();
  }
  auto routes = ComputeRoutes(src_uid, dst_mac, k);
  if (!routes.ok()) {
    return routes.error();
  }
  PathTableEntry entry;
  entry.dst = dst.value();
  entry.paths = std::move(routes.value());

  // Attach the controller-provided backup when it is still compilable (i.e. its
  // links are cached and up) and not identical to a cached primary.
  auto backup_it = backups_.find(dst_mac);
  if (backup_it != backups_.end()) {
    auto backup = CompileUidPath(backup_it->second, dst.value().port);
    if (backup.ok()) {
      bool duplicate = false;
      for (const CachedRoute& r : entry.paths) {
        if (r.uid_path == backup.value().uid_path) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        entry.backup = std::move(backup.value());
        entry.has_backup = true;
      }
    }
  }
  return entry;
}

size_t TopoCache::ApproxBytes() const {
  // Switches: uid + index maps; links: endpoints + state; hosts: location records.
  return db_.switch_count() * 24 + db_.link_count() * 20 + db_.host_count() * 24;
}

}  // namespace dumbnet
