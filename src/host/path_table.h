// PathTable: the per-destination route cache in every host's data path (paper
// Section 5.2, Figure 4). Indexed by destination MAC; holds the k shortest paths
// (for load balancing) plus the backup path, and remembers which path each flow is
// bound to so a flow stays on one path unless rerouted.
#ifndef DUMBNET_SRC_HOST_PATH_TABLE_H_
#define DUMBNET_SRC_HOST_PATH_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/routing/tags.h"
#include "src/routing/wire_types.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace dumbnet {

// One compiled route: the UID-level path (for validity checks against link events)
// and the ready-to-send tag list (ø excluded).
struct CachedRoute {
  std::vector<uint64_t> uid_path;
  TagList tags;

  // True if the route traverses the undirected switch edge (a, b).
  bool UsesEdge(uint64_t a, uint64_t b) const;
};

struct PathTableEntry {
  HostLocation dst;
  std::vector<CachedRoute> paths;  // k shortest, preference order
  CachedRoute backup;
  bool has_backup = false;
  // flow id -> index into `paths` (or SIZE_MAX = backup).
  std::unordered_map<uint64_t, size_t> flow_binding;
};

struct PathTableStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t rebinds = 0;        // flows moved after invalidation
  uint64_t backup_promotions = 0;
};

class PathTable {
 public:
  // Pluggable routing function (paper Section 6.1/6.2): picks a path index for a
  // flow from an entry. Return SIZE_MAX to fall through to the default.
  using RouteChooser = std::function<size_t(const PathTableEntry&, uint64_t flow_id)>;

  explicit PathTable(uint64_t rng_seed = 1) : rng_(rng_seed) {}

  void Install(uint64_t dst_mac, PathTableEntry entry);
  void Remove(uint64_t dst_mac) { entries_.erase(dst_mac); }

  bool Contains(uint64_t dst_mac) const { return entries_.count(dst_mac) > 0; }
  const PathTableEntry* Find(uint64_t dst_mac) const;

  // Returns the route for (dst, flow): keeps an existing binding when valid,
  // otherwise picks one (chooser first, then uniform random over k) and binds.
  // Counts a miss and returns kNotFound when no usable route exists.
  //
  // The pointer aliases table storage and is invalidated by the next Install /
  // Remove / InvalidateEdge — use it immediately (every caller compiles the
  // tags into a packet on the spot). Returning a pointer instead of a value
  // keeps the per-packet fast path copy-free: the old by-value form cloned the
  // whole uid_path vector + tag list on every lookup, which the hot-path
  // contract checker (DN_HOT_SCOPE, src/analysis/contracts.h) now forbids.
  Result<const CachedRoute*> RouteFor(uint64_t dst_mac, uint64_t flow_id);

  // Rebinds `flow_id` to a fresh path choice on next use (flowlet boundary).
  void ClearBinding(uint64_t dst_mac, uint64_t flow_id);

  void SetRouteChooser(RouteChooser chooser) { chooser_ = std::move(chooser); }

  // Drops every cached route that crosses the (a, b) switch edge; affected flows
  // rebind on next use; backup is promoted into `paths` when the primaries die.
  // Returns the destinations left with NO routes at all (caller should re-query).
  std::vector<uint64_t> InvalidateEdge(uint64_t a, uint64_t b);

  size_t size() const { return entries_.size(); }
  const PathTableStats& stats() const { return stats_; }

  // Read-only iteration over every installed entry in ascending MAC order
  // (used by the invariant-audit layer to cross-check the table against the
  // owning host's TopoCache; sorted so audit failure order is reproducible).
  void ForEachEntry(
      const std::function<void(uint64_t dst_mac, const PathTableEntry&)>& fn) const {
    std::vector<uint64_t> macs;
    macs.reserve(entries_.size());
    // dn-lint: allow(unordered-iter, order erased by the sort below)
    for (const auto& [mac, entry] : entries_) {
      macs.push_back(mac);
    }
    std::sort(macs.begin(), macs.end());
    for (uint64_t mac : macs) {
      fn(mac, entries_.at(mac));
    }
  }

 private:
  std::unordered_map<uint64_t, PathTableEntry> entries_;
  RouteChooser chooser_;
  Rng rng_;
  PathTableStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_HOST_PATH_TABLE_H_
