#include "src/host/host_agent.h"

#include <algorithm>

#include "src/analysis/contracts.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {
namespace {

constexpr int kMaxPathRequestRetries = 10;

// Footprint entity salts within this host's kHost space (see DN_FP_* below).
constexpr uint64_t kSaltSeenEvent = 0x5EE4;
constexpr uint64_t kSaltSeenPatch = 0x9A7C;
constexpr uint64_t kSaltOutstanding = 0x0075;
constexpr uint64_t kSaltBootstrap = 0xB007;
constexpr uint64_t kSaltPortObs = 0xF0B7;

// Commute families. The conflict checker compares these by content: two
// commuting writes are benign only when they claim the same family.
constexpr const char kFpDedup[] = "idempotent dedup-set insert";
constexpr const char kFpLinkObsLww[] = "lww link-observation merge";
constexpr const char kFpRouteRecompute[] = "route recompute from merged cache";
constexpr const char kFpRequestDedup[] = "first-wins path-request dedup";

// One LWW cell per physical link, independent of which endpoint reported it.
uint64_t EdgeCell(uint64_t uid_a, uint64_t uid_b) {
  return footprint::FpKey(std::min(uid_a, uid_b), std::max(uid_a, uid_b));
}

// Fallback cell for observations about a link the cache cannot resolve yet; a
// later path-graph merge that introduces the edge replays the freshest of these.
uint64_t PortObsCell(uint64_t uid, PortNum port) {
  return footprint::FpKey(uid, static_cast<uint64_t>(port), kSaltPortObs);
}

// Stable 64-bit mix for link-event dedup ids.
uint64_t MixEventId(uint64_t uid, PortNum port, uint64_t seq, bool up) {
  uint64_t x = uid * 0x9e3779b97f4a7c15ULL;
  x ^= (static_cast<uint64_t>(port) << 40) ^ (seq << 1) ^ (up ? 1 : 0);
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x;
}

}  // namespace

HostAgent::HostAgent(Network* net, uint32_t host_index, HostAgentConfig config)
    : net_(net),
      sim_(&net->SimFor(NodeId::Host(host_index))),
      host_index_(host_index),
      mac_(net->topo().host_at(host_index).mac),
      config_(config),
      rng_(config.rng_seed ^ mac_),
      path_table_(config.rng_seed ^ mac_ ^ 0xABCDULL) {
  net->RegisterHostNode(host_index, this);
}

void HostAgent::SetRouteChooser(PathTable::RouteChooser chooser) {
  path_table_.SetRouteChooser(std::move(chooser));
}

// ---------------------------------------------------------------------------------
// Data path

Status HostAgent::Send(uint64_t dst_mac, uint64_t flow_id, DataPayload payload) {
  // Per-packet forwarding decision (route lookup + tag push) is the contract-
  // checked hot region; packet materialization and event scheduling allocate
  // by design and are fenced as exempt until the zero-copy send lands.
  DN_HOT_SCOPE("host.send");
  if (dst_mac == mac_) {
    DN_HOT_EXEMPT("caller error: Error carries an allocated message");
    return Error(ErrorCode::kInvalidArgument, "loopback send");
  }
  // The flow id is authoritative path-binding state; stamp it into the payload so
  // a packet parked on a cache miss rebinds under the same identity when flushed.
  payload.flow_id = flow_id;
  auto route = path_table_.RouteFor(dst_mac, flow_id);
  if (route.ok()) {
    DN_HOT_EXEMPT("packet materialization + DES scheduling allocate by design");
    Packet pkt = MakeDumbNetPacket(mac_, dst_mac, route.value()->tags, payload);
    // Arm path provenance: promise the switch-UID sequence this route was
    // compiled from; the receiver verifies the fabric kept it.
    if (telemetry::Enabled()) {
      pkt.provenance.promised = route.value()->uid_path;
    }
    ++stats_.data_sent;
    DN_COUNTER_INC("host.data_sent");
    DN_TRACE_EVENT(kHost, kSend, sim_->Now(), mac_, flow_id);
    sim_->ScheduleAfter(config_.process_delay,
                        [this, pkt = std::move(pkt)] { net_->SendFromHost(host_index_, pkt); });
    return Status::Ok();
  }
  // Cache miss: park the packet and ask the controller (Section 5.2).
  DN_HOT_EXEMPT("cache miss: park the packet and query the controller");
  Packet pkt = MakeEthernetPacket(mac_, dst_mac, kEtherTypeDumbNet, payload);
  pending_[dst_mac].push_back(std::move(pkt));
  ++stats_.data_blocked;
  DN_COUNTER_INC("host.data_blocked");
  if (bootstrapped_) {
    RequestPath(dst_mac);
  }
  return Status::Ok();
}

Status HostAgent::SendOnPath(uint64_t dst_mac, const std::vector<uint64_t>& uid_path,
                             DataPayload payload) {
  auto dst = topo_cache_.Locate(dst_mac);
  if (!dst.ok()) {
    return dst.error();
  }
  if (config_.verify_routes) {
    PathVerifier verifier(&topo_cache_.db(), VerifyPolicy{});
    if (Status s = verifier.VerifyUidPath(uid_path); !s.ok()) {
      ++stats_.verify_failures;
      return s;
    }
  }
  auto tags = topo_cache_.db().CompileTagsForUidPath(uid_path, dst.value().port);
  if (!tags.ok()) {
    return tags.error();
  }
  ++stats_.data_sent;
  SendTags(std::move(tags.value()), dst_mac, payload);
  return Status::Ok();
}

void HostAgent::SendTags(TagList tags, uint64_t dst_mac, Payload payload) {
  Packet pkt = MakeDumbNetPacket(mac_, dst_mac, std::move(tags), std::move(payload));
  sim_->ScheduleAfter(config_.process_delay,
                      [this, pkt = std::move(pkt)] { net_->SendFromHost(host_index_, pkt); });
}

Status HostAgent::SendToController(Payload payload) {
  if (!bootstrapped_) {
    return Error(ErrorCode::kUnavailable, "not bootstrapped");
  }
  if (controller_mac_ == mac_) {
    // The controller service runs on this very host; hand the payload over
    // directly, skipping the fabric.
    Packet pkt = MakeEthernetPacket(mac_, mac_, kEtherTypeDumbNet, std::move(payload));
    if (control_handler_) {
      control_handler_(pkt);
    }
    return Status::Ok();
  }
  // Prefer a cached (and therefore failure-repaired) route to the controller; the
  // static bootstrap path is only the cold-start fallback. Without this, a failure
  // on the bootstrap path would silently blackhole every path request.
  auto route = path_table_.RouteFor(controller_mac_, /*flow_id=*/0xC0C0);
  if (route.ok()) {
    SendTags(route.value()->tags, controller_mac_, std::move(payload));
  } else {
    SendTags(controller_tags_, controller_mac_, std::move(payload));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------------
// Receive path

void HostAgent::HandlePacket(const Packet& pkt, PortNum in_port) {
  (void)in_port;  // hosts have a single NIC
  if (pkt.eth.ether_type != kEtherTypeDumbNet) {
    ++stats_.dropped_malformed;
    return;
  }
  // Hop-limited fabric broadcast (stage-1 failure notification). Handling it is
  // host software work like any other packet, so it pays the processing delay.
  if (pkt.tags.empty()) {
    if (const auto* ev_ptr = pkt.As<PortEventPayload>()) {
      PortEventPayload ev = *ev_ptr;
      sim_->ScheduleAfter(config_.process_delay, [this, ev] {
        ProcessLinkState(ev.switch_uid, ev.port, ev.up, ev.origin_time,
                         MixEventId(ev.switch_uid, ev.port, ev.event_seq, ev.up),
                         /*from_fabric=*/true, /*from_mac=*/0);
      });
    }
    return;
  }
  if (pkt.tags.size() == 1 && pkt.tags.front() == kPathEndTag) {
    // Fully consumed path: this packet is for us. Strip ø and deliver (the kernel
    // module's EtherType + ø check, Section 5.1).
    sim_->ScheduleAfter(config_.process_delay, [this, pkt] { DeliverLocal(pkt); });
    return;
  }
  // Tags remain: only discovery probes are allowed to hit a host mid-path — the
  // remaining tags are the reply path (Section 4.1).
  if (const auto* probe = pkt.As<ProbePayload>()) {
    HandleTransitProbe(pkt, *probe);
    return;
  }
  ++stats_.dropped_malformed;
}

void HostAgent::HandleTransitProbe(const Packet& pkt, const ProbePayload& probe) {
  if (probe.origin_mac == mac_) {
    // Our own probe touring back through us with leftover tags; treat as a bounce.
    if (probe_event_handler_) {
      probe_event_handler_(pkt);
    }
    return;
  }
  if (pkt.tags.front() == kIdQueryTag) {
    // A reply path cannot begin with an ID query; this is a link probe that hit a
    // host port. Stay silent.
    return;
  }
  // Reply "I am <mac>" along the remaining tags verbatim (they already end in ø).
  Packet reply;
  reply.eth.src_mac = mac_;
  reply.eth.dst_mac = probe.origin_mac;
  reply.eth.ether_type = kEtherTypeDumbNet;
  reply.tags = pkt.tags;
  reply.payload = ProbeReplyPayload{probe.probe_id, mac_, pkt.tags,
                                    bootstrapped_ ? controller_mac_ : 0};
  ++stats_.probes_replied;
  sim_->ScheduleAfter(config_.process_delay,
                      [this, reply = std::move(reply)] { net_->SendFromHost(host_index_, reply); });
}

void HostAgent::DeliverLocal(const Packet& pkt) {
  DN_FP_SCOPE("host.deliver", mac_);
  // A service running on this host (the controller) gets first refusal — except
  // for link events and patches, which the agent processes itself (deduplicated
  // link events are re-offered to the control handler by ProcessLinkState).
  const bool agent_owned = pkt.As<LinkEventPayload>() != nullptr ||
                           pkt.As<TopologyPatchPayload>() != nullptr;
  if (!agent_owned && control_handler_ && control_handler_(pkt)) {
    return;
  }
  if (const auto* data = pkt.As<DataPayload>()) {
    ++stats_.data_received;
    DN_COUNTER_INC("host.data_received");
    DN_TRACE_EVENT(kHost, kReceive, sim_->Now(), mac_, data->flow_id);
    // Verify the path taken against the sender's promise (in-band provenance).
    if (telemetry::Enabled() && pkt.provenance.armed() &&
        !telemetry::ProvenanceMatches(pkt.provenance)) {
      ++stats_.path_divergence;
      DN_COUNTER_INC("host.path_divergence");
      DN_TRACE_EVENT(kHost, kDivergence, sim_->Now(), mac_, data->flow_id);
      DN_LOG_KV(kWarn, "host.path_divergence")
          .Kv("host", mac_)
          .Kv("flow", data->flow_id)
          .Kv("detail", telemetry::DescribeProvenance(pkt.provenance));
    }
    if (data_handler_) {
      data_handler_(pkt, *data);
    }
    return;
  }
  if (const auto* probe = pkt.As<ProbePayload>()) {
    if (probe->origin_mac == mac_ && probe_event_handler_) {
      probe_event_handler_(pkt);  // bounced PM (scenario ii in Section 3.3)
    }
    // A foreign probe whose path ends exactly here has no reply path; drop.
    return;
  }
  if (pkt.As<ProbeReplyPayload>() != nullptr || pkt.As<IdReplyPayload>() != nullptr) {
    if (probe_event_handler_) {
      probe_event_handler_(pkt);
    }
    return;
  }
  if (const auto* resp = pkt.As<PathResponsePayload>()) {
    ++stats_.path_responses;
    DN_COUNTER_INC("host.path_responses");
    // Installing a response is order-sensitive state (the controller-provided
    // backup path is a plain overwrite), hence a Write — concurrent responses
    // for the same destination are a hazard worth hearing about.
    DN_FP_WRITE(kPathTable, footprint::FpKey(mac_, resp->dst_mac));
    if (resp->graph != nullptr) {
      (void)topo_cache_.Integrate(*resp->graph, resp->dst_location);
      // A merge teaches structure only; it never changes a cached link's state.
      // Replay the freshest observation that arrived before the edge was cached
      // (recorded under the port fallback cell), so "down heard before the edge
      // existed" survives the merge no matter which event ran first.
      for (const WireLink& l : resp->graph->links) {
        const uint64_t cell = EdgeCell(l.uid_a, l.uid_b);
        DN_FP_COMMUTES(kTopoCache, footprint::FpKey(mac_, cell), kFpLinkObsLww);
        uint64_t key = 0;
        if (auto it = link_obs_key_.find(PortObsCell(l.uid_a, l.port_a));
            it != link_obs_key_.end()) {
          key = std::max(key, it->second);
        }
        if (auto it = link_obs_key_.find(PortObsCell(l.uid_b, l.port_b));
            it != link_obs_key_.end()) {
          key = std::max(key, it->second);
        }
        if (key == 0) {
          continue;
        }
        auto [cit, inserted] = link_obs_key_.emplace(cell, key);
        if (!inserted && key > cit->second) {
          cit->second = key;
        }
        if ((cit->second & 1) == 0) {
          topo_cache_.db().SetLinkState(l.uid_a, l.port_a, false);
        }
      }
    } else {
      topo_cache_.UpsertHost(resp->dst_location);
    }
    DN_FP_COMMUTES(kHost, footprint::FpKey(mac_, resp->dst_mac, kSaltOutstanding),
                   kFpRequestDedup);
    outstanding_requests_.erase(resp->dst_mac);
    if (Status s = InstallRoutesFor(resp->dst_mac); s.ok()) {
      FlushPending(resp->dst_mac);
    }
    return;
  }
  if (const auto* boot = pkt.As<BootstrapPayload>()) {
    ApplyBootstrap(*boot);
    return;
  }
  if (const auto* ev = pkt.As<LinkEventPayload>()) {
    ProcessLinkState(ev->switch_uid, ev->port, ev->up, ev->origin_time, ev->event_id,
                     /*from_fabric=*/false, pkt.eth.src_mac);
    return;
  }
  if (const auto* patch = pkt.As<TopologyPatchPayload>()) {
    ApplyPatchLocally(*patch, pkt.eth.src_mac);
    return;
  }
  ++stats_.dropped_malformed;
}

void HostAgent::ApplyPatchLocally(const TopologyPatchPayload& patch, uint64_t from_mac) {
  DN_FP_SCOPE("host.patch", mac_);
  DN_FP_COMMUTES(kHost, footprint::FpKey(mac_, patch.patch_seq, kSaltSeenPatch),
                 kFpDedup);
  if (!seen_patches_.insert(patch.patch_seq).second) {
    return;  // duplicate via another flood path
  }
  // Note: NOT a monotonic cutoff. A patch overtaken on the wire by a later one
  // still applies, entry by entry, gated per link below — the old
  // `patch_seq <= last` check silently dropped its unrelated entries.
  last_patch_seq_ = std::max(last_patch_seq_, patch.patch_seq);
  ++stats_.patches_applied;
  static const std::vector<WireLink> kEmpty;
  const auto& removed = patch.removed != nullptr ? *patch.removed : kEmpty;
  const auto& added = patch.added != nullptr ? *patch.added : kEmpty;
  // Per-link LWW merge: a patch entry and a gossiped link event are the same
  // observation in different envelopes, so both funnel through
  // RecordLinkObservation keyed by the physical edge. A stale entry heard after
  // a fresher observation no longer rolls the cache back, which makes
  // patch-vs-gossip arrival order irrelevant to the converged state. (The patch
  // stamps its aggregation window's first origin on every entry — a deliberately
  // coarse attribution; see DESIGN.md §11.)
  for (const WireLink& l : removed) {
    const uint64_t cell = EdgeCell(l.uid_a, l.uid_b);
    DN_FP_COMMUTES(kTopoCache, footprint::FpKey(mac_, cell), kFpLinkObsLww);
    if (!RecordLinkObservation(cell, /*up=*/false, patch.origin_time)) {
      continue;
    }
    topo_cache_.db().SetLinkState(l.uid_a, l.port_a, false);
    RepairAfterLinkChange(l.uid_a, l.uid_b);
  }
  for (const WireLink& l : added) {
    const uint64_t cell = EdgeCell(l.uid_a, l.uid_b);
    DN_FP_COMMUTES(kTopoCache, footprint::FpKey(mac_, cell), kFpLinkObsLww);
    if (!RecordLinkObservation(cell, /*up=*/true, patch.origin_time)) {
      continue;
    }
    // AddLink marks a pre-existing link up again and inserts a new one.
    (void)topo_cache_.db().AddLink(l);
  }
  if (patch_hook_) {
    patch_hook_(patch);
  }
  FloodToPeers(patch, from_mac);
}

bool HostAgent::RecordLinkObservation(uint64_t cell, bool up, TimeNs origin_time) {
  const uint64_t key = (static_cast<uint64_t>(origin_time) << 1) | (up ? 1ULL : 0ULL);
  auto [it, inserted] = link_obs_key_.emplace(cell, key);
  if (inserted) {
    return true;
  }
  if (key <= it->second) {
    return false;
  }
  it->second = key;
  return true;
}

// ---------------------------------------------------------------------------------
// Failure handling (Section 4.2)

void HostAgent::ProcessLinkState(uint64_t switch_uid, PortNum port, bool up,
                                 TimeNs origin_time, uint64_t event_id, bool from_fabric,
                                 uint64_t from_mac) {
  if (notification_interceptor_) {
    const LinkEventPayload ev{event_id, switch_uid, port, up, origin_time};
    const TimeNs verdict = notification_interceptor_(ev, from_fabric);
    if (verdict < 0) {
      ++stats_.notifications_dropped;
      DN_COUNTER_INC("host.notifications_dropped");
      return;
    }
    if (verdict > 0) {
      // Defer the copy: it re-enters the normal pipeline later, racing fresher
      // observations — exactly the stale-notification ordering the LWW merge
      // must absorb. One deferral per copy: the deferred event bypasses the
      // interceptor, so a constant-delay interceptor cannot loop forever.
      ++stats_.notifications_delayed;
      DN_COUNTER_INC("host.notifications_delayed");
      sim_->ScheduleAfter(verdict, [this, switch_uid, port, up, origin_time, event_id,
                                    from_fabric, from_mac] {
        ProcessLinkStateNow(switch_uid, port, up, origin_time, event_id, from_fabric,
                            from_mac);
      });
      return;
    }
  }
  ProcessLinkStateNow(switch_uid, port, up, origin_time, event_id, from_fabric,
                      from_mac);
}

void HostAgent::ProcessLinkStateNow(uint64_t switch_uid, PortNum port, bool up,
                                    TimeNs origin_time, uint64_t event_id,
                                    bool from_fabric, uint64_t from_mac) {
  DN_FP_SCOPE("host.link_state", mac_);
  DN_FP_COMMUTES(kHost, footprint::FpKey(mac_, event_id, kSaltSeenEvent), kFpDedup);
  if (!seen_events_.insert(event_id).second) {
    return;  // duplicate alarm, suppressed (host side of Section 4.2)
  }
  if (from_fabric) {
    ++stats_.port_events_seen;
    DN_COUNTER_INC("host.port_events_seen");
  } else {
    ++stats_.link_events_seen;
    DN_COUNTER_INC("host.gossip_events_seen");
  }
  DN_TRACE_EVENT(kHost, kGossip, sim_->Now(), mac_, switch_uid);
  DN_LOG_KV(kDebug, "host.link_event")
      .Kv("host", mac_)
      .Kv("switch", switch_uid)
      .Kv("port", static_cast<unsigned>(port))
      .Kv("up", up ? 1 : 0);

  LinkEventPayload ev{event_id, switch_uid, port, up, origin_time};
  if (link_event_hook_) {
    link_event_hook_(ev, from_fabric);
  }

  // Update the cache and fail over *before* spending time flooding: the data path
  // recovers first. Application is gated by the per-link last-writer-wins merge:
  // a stale event arriving after a fresher one (via a longer flood path) can no
  // longer roll the cache back, so every arrival order converges to the same
  // marked state.
  auto edge = topo_cache_.ResolveEdge(switch_uid, port);
  const uint64_t cell = edge.ok()
                            ? EdgeCell(edge.value().first, edge.value().second)
                            : PortObsCell(switch_uid, port);
  DN_FP_COMMUTES(kTopoCache, footprint::FpKey(mac_, cell), kFpLinkObsLww);
  if (RecordLinkObservation(cell, up, origin_time) && edge.ok()) {
    topo_cache_.db().SetLinkState(switch_uid, port, up);
    if (!up) {
      RepairAfterLinkChange(edge.value().first, edge.value().second);
    }
  }

  // Relay to gossip peers (peer-to-peer flooding).
  FloodToPeers(ev, from_mac);

  // The controller service (if co-located) learns about it the same way.
  if (control_handler_) {
    Packet synthetic = MakeEthernetPacket(from_mac, mac_, kEtherTypeDumbNet, ev);
    control_handler_(synthetic);
  }
}

void HostAgent::RepairAfterLinkChange(uint64_t uid_a, uint64_t uid_b) {
  std::vector<uint64_t> starved = path_table_.InvalidateEdge(uid_a, uid_b);
  ++stats_.link_repairs;
  DN_COUNTER_INC("host.link_repairs");
  DN_TRACE_EVENT(kHost, kRepair, sim_->Now(), mac_, starved.size());
  for (uint64_t dst : starved) {
    // Local detours first (the cache already knows the link is down), controller
    // as a last resort.
    if (Status s = InstallRoutesFor(dst); s.ok()) {
      ++stats_.reroutes;
      DN_COUNTER_INC("host.reroutes");
      DN_TRACE_EVENT(kHost, kFailover, sim_->Now(), mac_, dst);
    } else {
      RequestPath(dst);
    }
  }
}

void HostAgent::FloodToPeers(const Payload& payload, uint64_t exclude_mac) {
  for (const HostLocation& peer : gossip_peers_) {
    if (peer.mac == exclude_mac || peer.mac == mac_) {
      continue;
    }
    if (peer.switch_uid == self_.switch_uid) {
      // Same-switch neighbors are reachable with a single tag, no cache needed.
      SendTags({peer.port}, peer.mac, payload);
      ++stats_.floods_sent;
      continue;
    }
    auto route = path_table_.RouteFor(peer.mac, /*flow_id=*/peer.mac);
    if (route.ok()) {
      SendTags(route.value()->tags, peer.mac, payload);
      ++stats_.floods_sent;
    }
    // Best effort otherwise: the ring has enough redundancy to route around one
    // unreachable peer.
  }
}

// ---------------------------------------------------------------------------------
// Bootstrap & controller protocol

void HostAgent::ApplyBootstrap(const BootstrapPayload& bootstrap) {
  DN_FP_WRITE(kHost, footprint::FpKey(mac_, kSaltBootstrap));
  self_ = bootstrap.self;
  controller_mac_ = bootstrap.controller_mac;
  controller_tags_ = bootstrap.path_to_controller;
  if (!controller_tags_.empty() && controller_tags_.back() == kPathEndTag) {
    controller_tags_.pop_back();
  }
  bootstrapped_ = true;
  topo_cache_.UpsertHost(self_);
  if (bootstrap.controller_location.mac != 0) {
    topo_cache_.UpsertHost(bootstrap.controller_location);
  }
  if (controller_mac_ != mac_) {
    // Warm a real path-graph-backed route to the controller so control traffic
    // fails over like data traffic (see SendToController).
    RequestPath(controller_mac_);
  }
  if (bootstrap.directory != nullptr) {
    for (const HostLocation& loc : *bootstrap.directory) {
      topo_cache_.UpsertHost(loc);
    }
    ComputeGossipPeers(*bootstrap.directory);
  }
  // Anything queued before bootstrap can now be requested — in MAC order, so
  // the resulting request events are independent of hash-table layout.
  std::vector<uint64_t> queued;
  queued.reserve(pending_.size());
  // dn-lint: allow(unordered-iter, order erased by the sort below)
  for (const auto& [dst, queue] : pending_) {
    if (!queue.empty()) {
      queued.push_back(dst);
    }
  }
  std::sort(queued.begin(), queued.end());
  for (uint64_t dst : queued) {
    RequestPath(dst);
  }
}

void HostAgent::ComputeGossipPeers(const std::vector<HostLocation>& directory) {
  gossip_peers_.clear();
  // All hosts on our own switch ("starts from the hosts on the same switch").
  for (const HostLocation& loc : directory) {
    if (loc.mac != mac_ && loc.switch_uid == self_.switch_uid) {
      gossip_peers_.push_back(loc);
    }
  }
  // Plus `gossip_fanout` ring successors by MAC order, skipping same-switch hosts
  // (already peers). The ring guarantees the flood reaches every switch.
  //
  // The controller hands out the directory MAC-sorted (BootstrapHosts), so the
  // common path walks it as the ring directly — no per-host re-sort, no linear
  // lookup per successor, which at 16K+ hosts dominated bootstrap CPU. Arbitrary
  // (unsorted) directories take the original sort-and-scan fallback.
  auto by_mac = [](const HostLocation& a, const HostLocation& b) { return a.mac < b.mac; };
  if (std::is_sorted(directory.begin(), directory.end(), by_mac)) {
    const size_t n = directory.size();
    const size_t start = static_cast<size_t>(
        std::lower_bound(directory.begin(), directory.end(), HostLocation{mac_, 0, 0},
                         by_mac) -
        directory.begin());
    const bool self_at_start = start < n && directory[start].mac == mac_;
    uint32_t added = 0;
    for (size_t k = 0; k < n && added < config_.gossip_fanout; ++k) {
      const HostLocation& loc =
          directory[(start + k + (self_at_start ? 1 : 0)) % n];
      if (loc.mac == mac_ || loc.switch_uid == self_.switch_uid) {
        continue;
      }
      gossip_peers_.push_back(loc);
      ++added;
      // Warm the route to this ring peer so failure floods do not stall on a
      // controller query.
      RequestPath(loc.mac);
    }
    return;
  }
  std::vector<uint64_t> macs;
  macs.reserve(directory.size() + 1);
  for (const HostLocation& loc : directory) {
    if (loc.mac != mac_) {
      macs.push_back(loc.mac);
    }
  }
  macs.push_back(mac_);
  std::sort(macs.begin(), macs.end());
  auto self_it = std::find(macs.begin(), macs.end(), mac_);
  size_t start = static_cast<size_t>(self_it - macs.begin());
  uint32_t added = 0;
  for (size_t i = 1; i < macs.size() && added < config_.gossip_fanout; ++i) {
    uint64_t mac = macs[(start + i) % macs.size()];
    if (mac == mac_) {
      continue;
    }
    auto loc = std::find_if(directory.begin(), directory.end(),
                            [mac](const HostLocation& l) { return l.mac == mac; });
    if (loc == directory.end() || loc->switch_uid == self_.switch_uid) {
      continue;
    }
    gossip_peers_.push_back(*loc);
    ++added;
    // Warm the route to this ring peer so failure floods do not stall on a
    // controller query.
    RequestPath(mac);
  }
}

void HostAgent::RequestPath(uint64_t dst_mac) {
  DN_FP_COMMUTES(kHost, footprint::FpKey(mac_, dst_mac, kSaltOutstanding),
                 kFpRequestDedup);
  if (!bootstrapped_ || outstanding_requests_.count(dst_mac) > 0) {
    return;
  }
  outstanding_requests_.insert(dst_mac);
  ++stats_.path_requests;
  DN_COUNTER_INC("host.path_requests");
  (void)SendToController(PathRequestPayload{mac_, dst_mac, /*attempt=*/0});

  // Retry loop with a bounded count; give up and drop queued packets after that.
  // The closure holds only a weak_ptr to itself (a shared self-capture would be a
  // reference cycle and leak); the pending timer events own the chain, so it is
  // freed as soon as the loop ends.
  auto retry = std::make_shared<std::function<void(int)>>();
  std::weak_ptr<std::function<void(int)>> weak_retry = retry;
  *retry = [this, dst_mac, weak_retry](int attempt) {
    DN_FP_SCOPE("host.path_retry", mac_);
    DN_FP_COMMUTES(kHost, footprint::FpKey(mac_, dst_mac, kSaltOutstanding),
                   kFpRequestDedup);
    if (outstanding_requests_.count(dst_mac) == 0) {
      return;  // answered
    }
    if (attempt >= kMaxPathRequestRetries) {
      outstanding_requests_.erase(dst_mac);
      pending_.erase(dst_mac);
      DN_WARN << "host " << mac_ << ": giving up on path to " << dst_mac;
      return;
    }
    ++stats_.path_requests;
    (void)SendToController(
        PathRequestPayload{mac_, dst_mac, static_cast<uint64_t>(attempt)});
    auto next = weak_retry.lock();  // non-null: we are executing through an owner
    sim_->ScheduleAfter(config_.request_timeout, [next, attempt] { (*next)(attempt + 1); });
  };
  sim_->ScheduleAfter(config_.request_timeout, [retry] { (*retry)(1); });
}

Status HostAgent::InstallRoutesFor(uint64_t dst_mac) {
  // Commutes: the installed entry is recomputed from the (order-converged) topo
  // cache, so concurrent recomputes for one destination land on the same routes.
  DN_FP_COMMUTES(kPathTable, footprint::FpKey(mac_, dst_mac), kFpRouteRecompute);
  auto entry = topo_cache_.BuildEntry(self_.switch_uid, dst_mac, config_.k_paths);
  if (!entry.ok()) {
    return entry.error();
  }
  if (!config_.cache_backup) {
    entry.value().has_backup = false;
    entry.value().backup = CachedRoute{};
  }
  if (config_.verify_routes) {
    PathVerifier verifier(&topo_cache_.db(), VerifyPolicy{});
    auto& paths = entry.value().paths;
    size_t kept = 0;
    for (size_t i = 0; i < paths.size(); ++i) {
      if (verifier.VerifyUidPath(paths[i].uid_path).ok()) {
        if (kept != i) {
          paths[kept] = std::move(paths[i]);
        }
        ++kept;
      } else {
        ++stats_.verify_failures;
      }
    }
    paths.resize(kept);
    if (paths.empty() && !entry.value().has_backup) {
      return Error(ErrorCode::kUnavailable, "all routes failed verification");
    }
  }
  path_table_.Install(dst_mac, std::move(entry.value()));
  return Status::Ok();
}

void HostAgent::FlushPending(uint64_t dst_mac) {
  auto it = pending_.find(dst_mac);
  if (it == pending_.end()) {
    return;
  }
  std::deque<Packet> queue = std::move(it->second);
  pending_.erase(it);
  for (Packet& pkt : queue) {
    const auto* data = pkt.As<DataPayload>();
    uint64_t flow_id = data != nullptr ? data->flow_id : 0;
    auto route = path_table_.RouteFor(dst_mac, flow_id);
    if (!route.ok()) {
      continue;
    }
    pkt.tags = route.value()->tags;
    pkt.tags.push_back(kPathEndTag);
    if (telemetry::Enabled()) {
      pkt.provenance.promised = route.value()->uid_path;
    }
    ++stats_.data_sent;
    DN_COUNTER_INC("host.data_sent");
    DN_TRACE_EVENT(kHost, kSend, sim_->Now(), mac_, flow_id);
    sim_->ScheduleAfter(config_.process_delay,
                        [this, p = std::move(pkt)] { net_->SendFromHost(host_index_, p); });
  }
}

}  // namespace dumbnet
