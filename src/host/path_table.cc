#include "src/host/path_table.h"

#include <algorithm>

#include "src/analysis/audit.h"
#include "src/analysis/contracts.h"
#include "src/telemetry/telemetry.h"

namespace dumbnet {

bool CachedRoute::UsesEdge(uint64_t a, uint64_t b) const {
  for (size_t i = 0; i + 1 < uid_path.size(); ++i) {
    if ((uid_path[i] == a && uid_path[i + 1] == b) ||
        (uid_path[i] == b && uid_path[i + 1] == a)) {
      return true;
    }
  }
  return false;
}

void PathTable::Install(uint64_t dst_mac, PathTableEntry entry) {
#ifdef DUMBNET_AUDIT_ENABLED
  // Invariant (Section 5.2): a compiled route carries one tag per switch on its
  // UID path — out-ports for every transit switch plus the final host port.
  for (const CachedRoute& r : entry.paths) {
    DUMBNET_AUDIT(r.tags.size() == r.uid_path.size(),
                  "installed route's tag count does not match its UID path");
  }
  DUMBNET_AUDIT(!entry.has_backup ||
                    entry.backup.tags.size() == entry.backup.uid_path.size(),
                "installed backup's tag count does not match its UID path");
#endif
  entries_[dst_mac] = std::move(entry);
}

const PathTableEntry* PathTable::Find(uint64_t dst_mac) const {
  auto it = entries_.find(dst_mac);
  return it == entries_.end() ? nullptr : &it->second;
}

Result<const CachedRoute*> PathTable::RouteFor(uint64_t dst_mac, uint64_t flow_id) {
  // Per-packet fast path: an existing valid binding resolves with two hash
  // finds and zero allocations (paper Figure 4 — the lookup every data packet
  // pays). Everything below the exempt markers is the declared-cold side:
  // misses, stale-binding failover, and the initial path choice.
  DN_HOT_SCOPE("path_table.route_for");
  auto it = entries_.find(dst_mac);
  if (it == entries_.end()) {
    DN_HOT_EXEMPT("cache miss: Error carries an allocated message");
    ++stats_.misses;
    return Error(ErrorCode::kNotFound, "no entry for destination");
  }
  PathTableEntry& entry = it->second;
  if (entry.paths.empty() && !entry.has_backup) {
    DN_HOT_EXEMPT("cache miss: Error carries an allocated message");
    ++stats_.misses;
    return Error(ErrorCode::kNotFound, "entry has no usable routes");
  }

  auto bound = entry.flow_binding.find(flow_id);
  if (bound != entry.flow_binding.end()) {
    if (bound->second == SIZE_MAX && entry.has_backup) {
      ++stats_.hits;
      return &entry.backup;
    }
    if (bound->second < entry.paths.size()) {
      ++stats_.hits;
      return &entry.paths[bound->second];
    }
    // Stale binding (path invalidated since); fall through and rebind. This is
    // the common failover: the flow moves to a surviving cached path.
    DN_HOT_EXEMPT("stale-binding failover: counter registration may allocate");
    entry.flow_binding.erase(bound);
    ++stats_.rebinds;
    DN_COUNTER_INC("host.reroutes");
  }

  // First packet of a flow (or post-failover rebind): chooser, RNG pick, and
  // the binding insert all may allocate — declared cold by contract.
  DN_HOT_EXEMPT("flow (re)bind: chooser + binding insert allocate");
  size_t pick = SIZE_MAX;
  if (chooser_) {
    pick = chooser_(entry, flow_id);
  }
  if (pick >= entry.paths.size()) {
    if (!entry.paths.empty()) {
      // Default policy: load-balance uniformly over the *minimal-length* cached
      // paths (the equal-cost set); longer k-shortest entries stay as failover
      // material only.
      size_t min_len = SIZE_MAX;
      for (const CachedRoute& r : entry.paths) {
        min_len = std::min(min_len, r.uid_path.size());
      }
      size_t count = 0;
      for (const CachedRoute& r : entry.paths) {
        count += (r.uid_path.size() == min_len) ? 1u : 0u;
      }
      size_t target = rng_.PickIndex(count);
      for (size_t i = 0; i < entry.paths.size(); ++i) {
        if (entry.paths[i].uid_path.size() == min_len && target-- == 0) {
          pick = i;
          break;
        }
      }
    } else {
      // Only the backup remains.
      ++stats_.backup_promotions;
      DN_COUNTER_INC("host.backup_promotions");
      entry.flow_binding[flow_id] = SIZE_MAX;
      ++stats_.hits;
      return &entry.backup;
    }
  }
  entry.flow_binding[flow_id] = pick;
  ++stats_.hits;
  return &entry.paths[pick];
}

void PathTable::ClearBinding(uint64_t dst_mac, uint64_t flow_id) {
  auto it = entries_.find(dst_mac);
  if (it != entries_.end()) {
    it->second.flow_binding.erase(flow_id);
  }
}

std::vector<uint64_t> PathTable::InvalidateEdge(uint64_t a, uint64_t b) {
  std::vector<uint64_t> starved;
  // Walk entries in ascending MAC order: the starved list drives re-query (and
  // thus event) order at the caller, so it must not depend on hash layout.
  std::vector<uint64_t> macs;
  macs.reserve(entries_.size());
  // dn-lint: allow(unordered-iter, order erased by the sort below)
  for (const auto& [mac, unused_entry] : entries_) {
    macs.push_back(mac);
  }
  std::sort(macs.begin(), macs.end());
  for (uint64_t mac : macs) {
    PathTableEntry& entry = entries_[mac];
    bool changed = false;
    auto dead = [&](const CachedRoute& r) { return r.UsesEdge(a, b); };
    size_t before = entry.paths.size();
    entry.paths.erase(std::remove_if(entry.paths.begin(), entry.paths.end(), dead),
                      entry.paths.end());
    changed = entry.paths.size() != before;
    if (entry.has_backup && dead(entry.backup)) {
      entry.has_backup = false;
      entry.backup = CachedRoute{};
      changed = true;
    }
    if (changed) {
      // All bindings into `paths` are suspect after the erase; drop them and let
      // flows rebind (counted once per entry, not per flow, to stay cheap).
      entry.flow_binding.clear();
      ++stats_.rebinds;
      DN_COUNTER_INC("host.reroutes");
    }
    if (entry.paths.empty()) {
      if (entry.has_backup) {
        // Promote the backup so the data path keeps flowing (Section 5.2:
        // "caching backup paths allows the hosts to failover fast").
        entry.paths.push_back(entry.backup);
        entry.has_backup = false;
        ++stats_.backup_promotions;
        DN_COUNTER_INC("host.backup_promotions");
      } else {
        starved.push_back(mac);
      }
    }
  }
  return starved;
}

}  // namespace dumbnet
