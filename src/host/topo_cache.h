// TopoCache: the host-side topology cache (paper Section 5.2). Aggregates every
// path graph the controller has sent this host into one partial topology, serves
// k-shortest-path computations over it, and applies link up/down marks from failure
// notifications so recomputed routes avoid dead links.
#ifndef DUMBNET_SRC_HOST_TOPO_CACHE_H_
#define DUMBNET_SRC_HOST_TOPO_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/host/path_table.h"
#include "src/routing/topo_db.h"
#include "src/routing/wire_types.h"
#include "src/util/result.h"

namespace dumbnet {

class SwitchGraph;

class TopoCache {
 public:
  TopoCache() = default;

  // Merges a controller response: the path graph's switches/links plus the
  // destination's location.
  Status Integrate(const WirePathGraph& graph, const HostLocation& dst);

  // Applies a link-state event heard from the fabric or the host flood. Unknown
  // attach points are ignored. Returns the affected edge (uid pair) when known so
  // the caller can purge its PathTable.
  Result<std::pair<uint64_t, uint64_t>> MarkLinkAt(uint64_t switch_uid, PortNum port,
                                                   bool up);

  // Resolves (switch_uid, port) to the cached edge's endpoint uid pair without
  // touching link state. The host agent keys its last-writer-wins link-observation
  // merge on this pair so the flood path and the patch path name the same cell.
  Result<std::pair<uint64_t, uint64_t>> ResolveEdge(uint64_t switch_uid,
                                                    PortNum port) const;

  // Applies a controller topology patch.
  void ApplyPatch(const std::vector<WireLink>& removed, const std::vector<WireLink>& added);

  // Computes up to k shortest routes from `src_uid` to the destination over the
  // cached (up) subgraph, compiled to tags. Fails if dst is not cached or
  // unreachable within the cache.
  Result<std::vector<CachedRoute>> ComputeRoutes(uint64_t src_uid, uint64_t dst_mac,
                                                 uint32_t k) const;

  // Builds a full PathTable entry (k paths + backup extracted from the last
  // integrated graph for that destination when still valid).
  Result<PathTableEntry> BuildEntry(uint64_t src_uid, uint64_t dst_mac, uint32_t k) const;

  Result<HostLocation> Locate(uint64_t mac) const { return db_.LocateHost(mac); }
  void UpsertHost(const HostLocation& loc) { db_.UpsertHost(loc); }

  const TopoDb& db() const { return db_; }
  TopoDb& db() { return db_; }

  // Rough memory footprint in bytes (Section 7.3 discusses cache cost).
  size_t ApproxBytes() const;

 private:
  Result<CachedRoute> CompileUidPath(const std::vector<uint64_t>& uid_path,
                                     PortNum final_port) const;
  // Adjacency snapshot for db_.mirror(), rebuilt only when the db version moved
  // (the controller's RoutingGraph() pattern). ComputeRoutes is hot during
  // bring-up — every response triggers route builds over an unchanged mirror —
  // so the snapshot is cached across those const calls.
  const SwitchGraph& RoutingGraph() const;

  TopoDb db_;
  // shared_ptr: copyable with the cache (copies share the immutable snapshot
  // until either side's db version moves on) and destructible on the forward
  // declaration alone.
  mutable std::shared_ptr<const SwitchGraph> graph_cache_;
  mutable uint64_t graph_version_ = UINT64_MAX;
  // Last backup path received per destination mac (UID form).
  std::unordered_map<uint64_t, std::vector<uint64_t>> backups_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_HOST_TOPO_CACHE_H_
