// HostAgent: the DumbNet host stack (paper Sections 4 and 5). One per host. It
// owns the data path (tag push/pop, ø validation), the two-level path cache
// (TopoCache + PathTable), failure handling (fabric notifications + host-to-host
// flooding + failover) and the client side of the controller protocol.
//
// Control-plane services that *run on* a host (the controller, the discovery
// prober) plug in through SetControlHandler / the probe callbacks rather than
// subclassing, mirroring the paper's service-daemon architecture.
#ifndef DUMBNET_SRC_HOST_HOST_AGENT_H_
#define DUMBNET_SRC_HOST_HOST_AGENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/host/path_table.h"
#include "src/host/path_verifier.h"
#include "src/host/topo_cache.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace dumbnet {

struct HostAgentConfig {
  // k shortest paths cached per destination (Section 5.2).
  uint32_t k_paths = 4;
  // Ring-gossip fanout for host-to-host failure flooding (in addition to all
  // same-switch hosts).
  uint32_t gossip_fanout = 3;
  // Host-side per-packet processing cost (DPDK pipeline).
  TimeNs process_delay = Us(2);
  // Re-issue a path request if unanswered for this long.
  TimeNs request_timeout = Ms(50);
  // Verify routes before installing them (can be disabled to measure its cost).
  bool verify_routes = true;
  // Cache the controller-provided backup path (Section 4.3). Disabling it is the
  // ablation knob for "k shortest paths only" caching.
  bool cache_backup = true;
  uint64_t rng_seed = 42;
};

struct HostAgentStats {
  uint64_t data_sent = 0;
  uint64_t data_received = 0;
  uint64_t data_blocked = 0;       // queued waiting for a path
  uint64_t path_requests = 0;
  uint64_t path_responses = 0;
  uint64_t probes_replied = 0;
  uint64_t port_events_seen = 0;   // deduplicated fabric notifications
  uint64_t link_events_seen = 0;   // deduplicated host-flood events
  uint64_t patches_applied = 0;
  uint64_t floods_sent = 0;
  uint64_t dropped_malformed = 0;
  uint64_t verify_failures = 0;
  uint64_t link_repairs = 0;       // RepairAfterLinkChange invocations
  uint64_t reroutes = 0;           // flows moved to a new route by a repair
  uint64_t path_divergence = 0;    // provenance mismatches on received data
  uint64_t notifications_delayed = 0;  // chaos interceptor deferred a copy
  uint64_t notifications_dropped = 0;  // chaos interceptor ate a copy
};

class HostAgent : public NetNode {
 public:
  HostAgent(Network* net, uint32_t host_index, HostAgentConfig config = HostAgentConfig());

  // --- Identity ----------------------------------------------------------------
  uint64_t mac() const { return mac_; }
  uint32_t host_index() const { return host_index_; }
  bool bootstrapped() const { return bootstrapped_; }
  const HostLocation& self_location() const { return self_; }

  // --- Data path -----------------------------------------------------------------
  // Sends application data to `dst_mac`. Uses the cached route bound to `flow_id`;
  // on a cache miss the packet is queued and a path request goes to the controller.
  Status Send(uint64_t dst_mac, uint64_t flow_id, DataPayload payload);

  // Delivered application data (tags fully consumed, ø checked and removed).
  using DataHandler = std::function<void(const Packet&, const DataPayload&)>;
  void SetDataHandler(DataHandler handler) { data_handler_ = std::move(handler); }

  // Pluggable routing function (Section 6.1): flowlet TE installs one.
  void SetRouteChooser(PathTable::RouteChooser chooser);

  // Rebinds a flow on its next packet (flowlet boundary).
  void RebindFlow(uint64_t dst_mac, uint64_t flow_id) {
    path_table_.ClearBinding(dst_mac, flow_id);
  }

  // Application-supplied explicit route (verified before use).
  Status SendOnPath(uint64_t dst_mac, const std::vector<uint64_t>& uid_path,
                    DataPayload payload);

  // --- Raw sends (control plane, discovery) ---------------------------------------
  // Sends a payload with explicit tags (ø appended internally).
  void SendTags(TagList tags, uint64_t dst_mac, Payload payload);
  Status SendToController(Payload payload);

  // --- Bootstrap -------------------------------------------------------------------
  // Normally arrives from the controller; also callable directly in tests.
  void ApplyBootstrap(const BootstrapPayload& bootstrap);

  // --- Control-plane plug-ins --------------------------------------------------------
  // A service on this host (controller) sees every control payload first; return
  // true to consume it.
  using ControlHandler = std::function<bool(const Packet&)>;
  void SetControlHandler(ControlHandler handler) { control_handler_ = std::move(handler); }

  // Discovery prober hooks: invoked for id replies / probe replies / own bounced
  // probes addressed to this host.
  using ProbeEventHandler = std::function<void(const Packet&)>;
  void SetProbeEventHandler(ProbeEventHandler handler) {
    probe_event_handler_ = std::move(handler);
  }

  // --- Failure handling hooks (experiments measure these) ---------------------------
  // Called once per *new* link event, with the source (fabric broadcast vs host
  // flood) and the event's origin timestamp.
  using LinkEventHook = std::function<void(const LinkEventPayload&, bool from_fabric)>;
  void SetLinkEventHook(LinkEventHook hook) { link_event_hook_ = std::move(hook); }
  using PatchHook = std::function<void(const TopologyPatchPayload&)>;
  void SetPatchHook(PatchHook hook) { patch_hook_ = std::move(hook); }

  // --- Chaos injection (adversarial notification delivery) --------------------------
  // Inspects every link-state notification copy (fabric port event or gossip
  // flood) before the agent processes it. Return 0 to process immediately, a
  // positive delay in ns to defer processing (delayed copies re-enter the normal
  // dedup/LWW pipeline, so reordering against other events is fair game), or
  // kDropNotification to drop this copy outright. The interceptor MUST be a pure
  // (seeded) function of its arguments — it runs on the host's shard and any
  // hidden shared state would break bit-for-bit reproducibility.
  static constexpr TimeNs kDropNotification = -1;
  using NotificationInterceptor =
      std::function<TimeNs(const LinkEventPayload&, bool from_fabric)>;
  void SetNotificationInterceptor(NotificationInterceptor f) {
    notification_interceptor_ = std::move(f);
  }

  // --- NetNode ------------------------------------------------------------------------
  void HandlePacket(const Packet& pkt, PortNum in_port) override;

  // --- Introspection -------------------------------------------------------------------
  TopoCache& topo_cache() { return topo_cache_; }
  PathTable& path_table() { return path_table_; }
  const HostAgentStats& stats() const { return stats_; }
  Network& net() { return *net_; }
  Simulator& sim() { return *sim_; }
  const std::vector<HostLocation>& gossip_peers() const { return gossip_peers_; }

  // Floods a link event to gossip peers (also used by the controller service to
  // disseminate patches). `exclude_mac` suppresses the echo back to the sender.
  void FloodToPeers(const Payload& payload, uint64_t exclude_mac);

  // Applies a topology patch to the local caches and re-floods it; entry point
  // both for patches arriving off the wire and for a co-located controller
  // injecting the patch it just built. `from_mac` is excluded from the re-flood.
  void ApplyPatchLocally(const TopologyPatchPayload& patch, uint64_t from_mac);

 private:
  void DeliverLocal(const Packet& pkt);
  void HandleOwnPacket(const Packet& pkt);
  void HandleTransitProbe(const Packet& pkt, const ProbePayload& probe);
  // Interceptor gate: consults notification_interceptor_ (drop / delay / pass)
  // and forwards surviving copies to ProcessLinkStateNow.
  void ProcessLinkState(uint64_t switch_uid, PortNum port, bool up, TimeNs origin_time,
                        uint64_t event_id, bool from_fabric, uint64_t from_mac);
  // The actual pipeline: dedup, LWW merge, repair, flood, controller hand-off.
  void ProcessLinkStateNow(uint64_t switch_uid, PortNum port, bool up, TimeNs origin_time,
                           uint64_t event_id, bool from_fabric, uint64_t from_mac);
  void RepairAfterLinkChange(uint64_t uid_a, uint64_t uid_b);
  // Last-writer-wins link-observation merge. `cell` names one physical link (the
  // normalized endpoint-uid pair when the edge is cached, the (switch, port)
  // fallback when not); the merge key is (origin_time << 1) | up, so the freshest
  // origin wins and "up" wins a same-instant tie. Returns true when this
  // observation is fresher than everything recorded for the cell — the caller
  // should apply it — and false for stale/duplicate observations. Because the
  // merged state is the max over a join-semilattice, the surviving state is
  // independent of arrival order: this is what makes gossip floods and patch
  // application commute.
  bool RecordLinkObservation(uint64_t cell, bool up, TimeNs origin_time);
  void RequestPath(uint64_t dst_mac);
  void FlushPending(uint64_t dst_mac);
  void ComputeGossipPeers(const std::vector<HostLocation>& directory);
  Status InstallRoutesFor(uint64_t dst_mac);

  Network* net_;
  Simulator* sim_;
  uint32_t host_index_;
  uint64_t mac_;
  HostAgentConfig config_;
  Rng rng_;

  bool bootstrapped_ = false;
  HostLocation self_;
  uint64_t controller_mac_ = 0;
  TagList controller_tags_;  // ø excluded

  TopoCache topo_cache_;
  PathTable path_table_;

  DataHandler data_handler_;
  ControlHandler control_handler_;
  ProbeEventHandler probe_event_handler_;
  LinkEventHook link_event_hook_;
  PatchHook patch_hook_;
  NotificationInterceptor notification_interceptor_;

  std::vector<HostLocation> gossip_peers_;
  std::unordered_map<uint64_t, std::deque<Packet>> pending_;  // dst -> queued packets
  std::unordered_set<uint64_t> outstanding_requests_;
  std::unordered_set<uint64_t> seen_events_;   // link-event dedup
  std::unordered_set<uint64_t> seen_patches_;  // patch re-flood dedup, by seq
  // Per-link freshest observation key, see RecordLinkObservation.
  std::unordered_map<uint64_t, uint64_t> link_obs_key_;
  uint64_t last_patch_seq_ = 0;  // high-water mark (stats/introspection only)

  HostAgentStats stats_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_HOST_HOST_AGENT_H_
