// Host join prober (paper Section 4.1: "other hosts just probe until they learn
// the location of the controller"). A freshly plugged-in host uses the same
// data-plane-only probing the controller does, but stops as soon as it knows
// (i) its own attach point (switch UID + port) and (ii) the controller's identity,
// learned from any already-bootstrapped neighbor's probe reply ("...and possibly
// the controller if the new host knows", Section 3.3).
#ifndef DUMBNET_SRC_HOST_JOIN_PROBER_H_
#define DUMBNET_SRC_HOST_JOIN_PROBER_H_

#include <cstdint>
#include <functional>

#include "src/host/host_agent.h"

namespace dumbnet {

struct JoinProberConfig {
  uint8_t max_ports = 16;
  TimeNs probe_timeout = Ms(50);
};

struct JoinResult {
  HostLocation self;           // this host's attach point (uid + port)
  uint64_t controller_mac = 0; // 0 if no neighbor knew a controller
  uint64_t probes_sent = 0;
};

class JoinProber {
 public:
  JoinProber(HostAgent* agent, JoinProberConfig config = JoinProberConfig());

  // Runs the probe sequence; `done` fires when both facts are known or the port
  // scan exhausts. Claims the agent's probe-event handler while running.
  void Start(std::function<void(const JoinResult&)> done);

 private:
  void ProbeNeighborHosts();
  void Finish();

  HostAgent* agent_;
  Simulator* sim_;
  JoinProberConfig config_;
  std::function<void(const JoinResult&)> done_;
  JoinResult result_;
  bool attach_known_ = false;
  bool finished_ = false;
  uint64_t next_probe_id_ = 0x10C4;
  std::unordered_map<uint64_t, PortNum> inflight_;  // probe id -> probed port
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_HOST_JOIN_PROBER_H_
