#include "src/host/path_verifier.h"

#include <algorithm>

namespace dumbnet {

Status PathVerifier::CheckSwitch(uint64_t uid, std::vector<uint64_t>& visited) const {
  if (policy_.switch_allowed && !policy_.switch_allowed(uid)) {
    return Error(ErrorCode::kPermissionDenied,
                 "policy forbids switch " + std::to_string(uid));
  }
  if (policy_.forbid_loops) {
    if (std::find(visited.begin(), visited.end(), uid) != visited.end()) {
      return Error(ErrorCode::kInvalidArgument, "path revisits a switch");
    }
    visited.push_back(uid);
  }
  return Status::Ok();
}

Status PathVerifier::VerifyUidPath(const std::vector<uint64_t>& uid_path) const {
  if (uid_path.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty path");
  }
  if (uid_path.size() > policy_.max_path_length) {
    return Error(ErrorCode::kOutOfRange, "path exceeds maximum length");
  }
  std::vector<uint64_t> visited;
  visited.reserve(uid_path.size());
  if (Status s = CheckSwitch(uid_path.front(), visited); !s.ok()) {
    return s;
  }
  for (size_t i = 0; i + 1 < uid_path.size(); ++i) {
    if (Status s = CheckSwitch(uid_path[i + 1], visited); !s.ok()) {
      return s;
    }
    // Consecutive switches must share an *up* link in the cached topology.
    auto a = db_->IndexOf(uid_path[i]);
    auto b = db_->IndexOf(uid_path[i + 1]);
    if (!a.ok() || !b.ok()) {
      return Error(ErrorCode::kNotFound, "path uses an unknown switch");
    }
    const Topology& mirror = db_->mirror();
    const SwitchInfo& sw = mirror.switch_at(a.value());
    bool linked = false;
    for (PortNum p = 1; p <= sw.num_ports && !linked; ++p) {
      LinkIndex li = sw.port_link[p];
      if (li == kInvalidLink) {
        continue;
      }
      const Link& l = mirror.link_at(li);
      if (!l.up) {
        continue;
      }
      const Endpoint& peer = l.Peer(NodeId::Switch(a.value()));
      linked = peer.node.is_switch() && peer.node.index == b.value();
    }
    if (!linked) {
      return Error(ErrorCode::kUnavailable, "no up link between consecutive switches");
    }
  }
  return Status::Ok();
}

Status PathVerifier::VerifyTags(uint64_t src_uid, const TagList& tags) const {
  if (tags.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty tag list");
  }
  if (tags.size() > policy_.max_path_length) {
    return Error(ErrorCode::kOutOfRange, "tag list exceeds maximum length");
  }
  auto cur = db_->IndexOf(src_uid);
  if (!cur.ok()) {
    return Error(ErrorCode::kNotFound, "unknown source switch");
  }
  const Topology& mirror = db_->mirror();
  std::vector<uint64_t> visited;
  visited.reserve(tags.size());
  uint32_t sw = cur.value();
  if (Status s = CheckSwitch(db_->UidOf(sw), visited); !s.ok()) {
    return s;
  }
  for (size_t i = 0; i < tags.size(); ++i) {
    PortNum tag = tags[i];
    if (tag == kPathEndTag) {
      return Error(ErrorCode::kMalformed, "unexpected path terminator mid-path");
    }
    if (tag == kIdQueryTag) {
      return Error(ErrorCode::kPermissionDenied, "application routes may not query IDs");
    }
    LinkIndex li = mirror.LinkAtPort(sw, tag);
    const bool last = (i + 1 == tags.size());
    if (li == kInvalidLink || !mirror.link_at(li).up) {
      if (last) {
        // Final hop exits to a host; the cached mirror does not model host links,
        // so an unwired final port is acceptable.
        return Status::Ok();
      }
      return Error(ErrorCode::kUnavailable, "tag crosses a down or unknown link");
    }
    const Endpoint& peer = mirror.link_at(li).Peer(NodeId::Switch(sw));
    if (!peer.node.is_switch()) {
      if (last) {
        return Status::Ok();
      }
      return Error(ErrorCode::kInvalidArgument, "path exits fabric before final tag");
    }
    sw = peer.node.index;
    if (Status s = CheckSwitch(db_->UidOf(sw), visited); !s.ok()) {
      return s;
    }
  }
  // All tags crossed switch-to-switch links: the "destination" is a switch, which
  // is not a valid host route.
  return Error(ErrorCode::kInvalidArgument, "path ends at a switch, not a host");
}

}  // namespace dumbnet
