// Path verifier (paper Section 6.1, item 3): checks a route before it enters the
// PathTable, so application-supplied routes (custom routing functions, tenant
// traffic in a virtualized deployment) cannot violate security policy or inject
// loops. Table 2 benchmarks this check at path length 16.
#ifndef DUMBNET_SRC_HOST_PATH_VERIFIER_H_
#define DUMBNET_SRC_HOST_PATH_VERIFIER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/routing/tags.h"
#include "src/routing/topo_db.h"
#include "src/util/result.h"

namespace dumbnet {

struct VerifyPolicy {
  size_t max_path_length = 32;
  bool forbid_loops = true;
  // Per-switch admission (network virtualization hooks in here); null = allow all.
  std::function<bool(uint64_t switch_uid)> switch_allowed;
};

class PathVerifier {
 public:
  // `db` must outlive the verifier.
  PathVerifier(const TopoDb* db, VerifyPolicy policy)
      : db_(db), policy_(std::move(policy)) {}

  // Verifies a UID-level path: consecutive switches must share an up link, the
  // path must be loop-free (if required), within length bounds, and every switch
  // admitted by policy.
  Status VerifyUidPath(const std::vector<uint64_t>& uid_path) const;

  // Verifies a raw tag list by walking it through the topology starting at
  // `src_uid` (the sender's edge switch). The final tag must leave the fabric at a
  // host port or be checked by the caller; intermediate tags must cross up links.
  Status VerifyTags(uint64_t src_uid, const TagList& tags) const;

 private:
  Status CheckSwitch(uint64_t uid, std::vector<uint64_t>& visited) const;

  const TopoDb* db_;
  VerifyPolicy policy_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_HOST_PATH_VERIFIER_H_
