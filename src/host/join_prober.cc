#include "src/host/join_prober.h"

namespace dumbnet {

JoinProber::JoinProber(HostAgent* agent, JoinProberConfig config)
    : agent_(agent), sim_(&agent->sim()), config_(config) {}

void JoinProber::Start(std::function<void(const JoinResult&)> done) {
  done_ = std::move(done);

  agent_->SetProbeEventHandler([this](const Packet& pkt) {
    if (const auto* id_reply = pkt.As<IdReplyPayload>()) {
      auto it = inflight_.find(id_reply->probe_id);
      if (it == inflight_.end() || attach_known_) {
        return;
      }
      // Phase 1 resolved: the [0, p] probe that returned tells us our port and
      // our switch's burned-in ID.
      attach_known_ = true;
      result_.self = HostLocation{agent_->mac(), id_reply->switch_uid, it->second};
      inflight_.clear();
      ProbeNeighborHosts();
      return;
    }
    if (const auto* reply = pkt.As<ProbeReplyPayload>()) {
      if (inflight_.count(reply->probe_id) == 0) {
        return;
      }
      if (reply->controller_mac != 0 && result_.controller_mac == 0) {
        result_.controller_mac = reply->controller_mac;
        Finish();
      }
    }
  });

  // Phase 1: find our own attach point with combined probes 0-p-ø.
  for (PortNum p = 1; p <= config_.max_ports; ++p) {
    uint64_t id = next_probe_id_++;
    inflight_.emplace(id, p);
    ++result_.probes_sent;
    agent_->SendTags({kIdQueryTag, p}, kBroadcastMac,
                     ProbePayload{id, agent_->mac(), {kIdQueryTag, p, kPathEndTag}});
  }
  sim_->ScheduleAfter(config_.probe_timeout * 2, [this] { Finish(); });
}

void JoinProber::ProbeNeighborHosts() {
  // Phase 2: host-probe every port of our own switch ([p, our_port]): neighbors
  // reply with their identity and, if bootstrapped, the controller they know.
  for (PortNum p = 1; p <= config_.max_ports; ++p) {
    if (p == result_.self.port) {
      continue;
    }
    uint64_t id = next_probe_id_++;
    inflight_.emplace(id, p);
    ++result_.probes_sent;
    agent_->SendTags({p, result_.self.port}, kBroadcastMac,
                     ProbePayload{id, agent_->mac(),
                                  {p, result_.self.port, kPathEndTag}});
  }
}

void JoinProber::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  agent_->SetProbeEventHandler(nullptr);
  if (done_) {
    done_(result_);
  }
}

}  // namespace dumbnet
