// Adversarial churn: deterministic, seed-driven failure-scenario generation and
// execution against a SimulatedFabric ("Ghost in the Datacenter" failure modes,
// see PAPERS.md and the ROADMAP churn item).
//
// A ChaosSchedule is a time-sorted list of ground-truth mutations:
//   - flapping links: alternating down/up transitions with exponential dwell
//     times (per-link forked Rng streams, so schedules are stable under config
//     changes to other links),
//   - gray failures: a link stays up but eats a seeded fraction of packets
//     (Link::loss_ppm; the drop stream lives in src/net),
//   - correlated outages: every inter-switch link of one victim switch dies at
//     the same virtual instant (per-spine/per-pod outage models).
//
// Schedules are *well-formed by construction*: every touched link is forced
// down at `horizon - settle` and revived in one simultaneous restore at
// `horizon`, after all gray loss has been cleared. The final "up" floods
// therefore travel over a fully healthy fabric, so a correct control plane must
// converge to the all-up state no matter which notification copies were lost
// mid-churn — which is exactly what makes end-of-run convergence checking
// sound. Delayed/reordered notification delivery is injected separately via
// HostAgent::SetNotificationInterceptor.
//
// Serialized schedules are compatible with dumbnet-explore's schedule v1 format
// (chaos actions ride in `#`-comment lines explore's parser skips), so a
// failing-seed artifact can be fed to either tool.
#ifndef DUMBNET_SRC_CHAOS_CHAOS_H_
#define DUMBNET_SRC_CHAOS_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/fabric.h"
#include "src/sim/time.h"
#include "src/topo/topology.h"
#include "src/util/result.h"

namespace dumbnet {
namespace chaos {

// One scheduled mutation of the ground-truth topology. `at` is relative to the
// moment RunSchedule starts (bring-up already consumed virtual time), so a
// schedule replays identically no matter how long bring-up took.
struct ChaosAction {
  enum class Kind : uint8_t {
    kLinkDown = 0,
    kLinkUp = 1,
    kGraySet = 2,   // loss_ppm carries the drop rate
    kGrayClear = 3,
  };

  TimeNs at = 0;
  Kind kind = Kind::kLinkDown;
  LinkIndex link = kInvalidLink;
  uint32_t loss_ppm = 0;  // kGraySet only

  bool operator==(const ChaosAction&) const = default;
};

struct ChaosSchedule {
  std::vector<ChaosAction> actions;  // sorted by `at`, stable insertion order

  bool empty() const { return actions.empty(); }
  // Links with up/down transitions (flaps + outages), deduplicated ascending.
  std::vector<LinkIndex> TouchedLinks() const;
  // Links with gray-loss actions, deduplicated ascending.
  std::vector<LinkIndex> GrayLinks() const;
};

struct FlapConfig {
  uint32_t links = 2;            // how many inter-switch links flap
  TimeNs mean_up_dwell = Ms(20);  // exponential dwell while up
  TimeNs mean_down_dwell = Ms(4); // exponential dwell while down
  TimeNs min_dwell = Ms(1);       // floor (below the 1 ms detect delay is noise)
};

struct GrayConfig {
  uint32_t links = 1;             // how many links turn gray
  uint32_t min_loss_ppm = 50000;  // 5 %
  uint32_t max_loss_ppm = 400000; // 40 %
};

struct OutageConfig {
  bool enabled = true;       // one correlated outage (all links of one switch)
  TimeNs duration = Ms(15);
};

struct ChaosConfig {
  uint64_t seed = 1;
  TimeNs start = Ms(5);     // first possible transition
  TimeNs horizon = Ms(120); // the simultaneous final restore happens here
  // Gap between the forced final downs / gray clears and the restore. Must
  // exceed the fabric's link-detect delay so the forced-down floods drain.
  TimeNs settle = Ms(2);
  FlapConfig flap;
  GrayConfig gray;
  OutageConfig outage;
};

// Builds a well-formed schedule from the seed. Deterministic: same topology and
// config, same schedule. Only inter-switch links are touched (host uplinks stay
// healthy so every host keeps hearing the control plane).
ChaosSchedule GenerateSchedule(const Topology& topo, const ChaosConfig& config);

// Text form. The header lines make the file a valid (empty) dumbnet-explore
// schedule; chaos actions are `# chaos <at_ns> <down|up|gray|grayclear> <link>
// [ppm]` comment lines. `note` (optional, e.g. "seed 17") is embedded as a
// comment for humans.
std::string SerializeSchedule(const ChaosSchedule& schedule,
                              const std::string& note = std::string());
Result<ChaosSchedule> ParseSchedule(const std::string& text);

// Hooks for RunSchedule. All callbacks run on the driving thread while every
// shard is quiescent (between windows), so they may inspect any fabric state.
struct RunHooks {
  // Called before the actions at `at` are applied (inject traffic here).
  std::function<void(TimeNs at)> on_boundary;
  // When > 0, the fabric additionally stops every `sample_period` to run
  // `on_sample` (staleness probes).
  TimeNs sample_period = 0;
  std::function<void(TimeNs at)> on_sample;
};

// Drives `fabric` through the schedule: advances virtual time boundary by
// boundary (RunUntil), applies each instant's actions from the quiescent
// driving thread (safe for any shard count / thread count), then runs the
// fabric to quiescence. Deterministic for a fixed shard count; the converged
// control-plane digest is additionally shard-count invariant for loss-free
// (flap-only) schedules.
void RunSchedule(SimulatedFabric& fabric, const ChaosSchedule& schedule,
                 const RunHooks& hooks = RunHooks());

// Applies actions[begin, end) to the ground truth. The fabric must be
// quiescent. Exposed for tests; RunSchedule is the normal driver.
void ApplyActions(SimulatedFabric& fabric, const ChaosSchedule& schedule,
                  size_t begin, size_t end);

// Counts (viewer, link) pairs whose cached mirror state disagrees with the
// ground truth right now, over `links`. Viewers are the controller database
// plus every host's TopoCache; pairs where the viewer has never cached the
// link are skipped (you cannot be stale about an edge you never learned).
// This is the instantaneous staleness-window probe.
uint32_t CountStaleEntries(SimulatedFabric& fabric, const std::vector<LinkIndex>& links);

// End-of-run convergence check over `links`: every cached copy must agree with
// the ground truth. Returns one human-readable line per violation (empty =
// converged). Run only at quiescence — mid-run disagreement is legitimate.
std::vector<std::string> CheckConvergence(SimulatedFabric& fabric,
                                          const std::vector<LinkIndex>& links);

// Greedy ddmin-style schedule reduction: repeatedly deletes action chunks while
// `still_fails` keeps returning true, halving the chunk size until single
// actions remain or `max_probes` re-executions are spent. The result is a
// subsequence of `failing` that still fails.
ChaosSchedule MinimizeSchedule(const ChaosSchedule& failing,
                               const std::function<bool(const ChaosSchedule&)>& still_fails,
                               uint64_t max_probes = 200);

}  // namespace chaos
}  // namespace dumbnet

#endif  // DUMBNET_SRC_CHAOS_CHAOS_H_
