#include "src/chaos/chaos.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/routing/topo_db.h"
#include "src/util/rng.h"

namespace dumbnet {
namespace chaos {

namespace {

const char* KindWord(ChaosAction::Kind kind) {
  switch (kind) {
    case ChaosAction::Kind::kLinkDown:
      return "down";
    case ChaosAction::Kind::kLinkUp:
      return "up";
    case ChaosAction::Kind::kGraySet:
      return "gray";
    case ChaosAction::Kind::kGrayClear:
      return "grayclear";
  }
  return "?";
}

std::vector<LinkIndex> DedupSorted(std::vector<LinkIndex> links) {
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  return links;
}

// Cached state of the link plugged into (uid_a, port_a) in `db`: 1 up, 0 down,
// -1 when the viewer never cached that edge (nothing to be stale about).
int MirrorState(const TopoDb& db, uint64_t uid_a, PortNum port_a) {
  auto idx = db.IndexOf(uid_a);
  if (!idx.ok()) {
    return -1;
  }
  const Topology& mirror = db.mirror();
  const LinkIndex mli = mirror.LinkAtPort(idx.value(), port_a);
  if (mli == kInvalidLink) {
    return -1;
  }
  const Link& l = mirror.link_at(mli);
  if (l.detached) {
    return -1;
  }
  return l.up ? 1 : 0;
}

// Walks every viewer (controller db + each host cache) over `links` and calls
// `fn(viewer, li, cached_up, truth_up)` for each cached-and-disagreeing pair.
template <typename Fn>
void ForEachStalePair(SimulatedFabric& fabric, const std::vector<LinkIndex>& links,
                      const Fn& fn) {
  const Topology& truth = fabric.topo();
  for (LinkIndex li : links) {
    const Link& l = truth.link_at(li);
    if (l.detached || !l.a.node.is_switch()) {
      continue;
    }
    const uint64_t uid_a = truth.switch_at(l.a.node.index).uid;
    const PortNum port_a = l.a.port;
    const bool truth_up = l.up;
    if (fabric.has_controller()) {
      const int s = MirrorState(fabric.controller().db(), uid_a, port_a);
      if (s >= 0 && (s == 1) != truth_up) {
        fn("controller", li, s == 1, truth_up);
      }
    }
    for (uint32_t h = 0; h < static_cast<uint32_t>(fabric.host_count()); ++h) {
      const int s = MirrorState(fabric.agent(h).topo_cache().db(), uid_a, port_a);
      if (s >= 0 && (s == 1) != truth_up) {
        fn("host", li, s == 1, truth_up);
      }
    }
  }
}

}  // namespace

std::vector<LinkIndex> ChaosSchedule::TouchedLinks() const {
  std::vector<LinkIndex> out;
  for (const ChaosAction& a : actions) {
    if (a.kind == ChaosAction::Kind::kLinkDown || a.kind == ChaosAction::Kind::kLinkUp) {
      out.push_back(a.link);
    }
  }
  return DedupSorted(std::move(out));
}

std::vector<LinkIndex> ChaosSchedule::GrayLinks() const {
  std::vector<LinkIndex> out;
  for (const ChaosAction& a : actions) {
    if (a.kind == ChaosAction::Kind::kGraySet ||
        a.kind == ChaosAction::Kind::kGrayClear) {
      out.push_back(a.link);
    }
  }
  return DedupSorted(std::move(out));
}

ChaosSchedule GenerateSchedule(const Topology& topo, const ChaosConfig& config) {
  ChaosSchedule out;
  Rng rng(config.seed);

  std::vector<LinkIndex> candidates;
  for (LinkIndex li = 0; li < static_cast<LinkIndex>(topo.link_count()); ++li) {
    const Link& l = topo.link_at(li);
    if (!l.detached && l.up && l.a.node.is_switch() && l.b.node.is_switch()) {
      candidates.push_back(li);
    }
  }
  if (candidates.empty()) {
    return out;
  }
  rng.Shuffle(candidates);

  size_t pos = 0;
  std::vector<LinkIndex> flap_links;
  for (uint32_t i = 0; i < config.flap.links && pos < candidates.size(); ++i) {
    flap_links.push_back(candidates[pos++]);
  }
  std::vector<LinkIndex> gray_links;
  for (uint32_t i = 0; i < config.gray.links && pos < candidates.size(); ++i) {
    gray_links.push_back(candidates[pos++]);
  }
  const std::set<LinkIndex> claimed(
      candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(pos));

  // The forced final downs / gray clears happen here; the simultaneous restore
  // at `horizon`. Clamp so degenerate configs still produce a valid pulse.
  const TimeNs horizon = std::max(config.horizon, config.start + 2 * config.settle);
  const TimeNs down_all = horizon - config.settle;

  // Flapping links: alternating dwell sequences on per-link forked streams.
  for (size_t i = 0; i < flap_links.size(); ++i) {
    Rng f = rng.Fork(0xF1A90000ULL + i);
    bool up = true;
    TimeNs t = config.start +
               static_cast<TimeNs>(f.Exponential(static_cast<double>(config.flap.mean_up_dwell)));
    while (t < down_all) {
      out.actions.push_back({t, up ? ChaosAction::Kind::kLinkDown : ChaosAction::Kind::kLinkUp,
                             flap_links[i], 0});
      up = !up;
      const TimeNs mean = up ? config.flap.mean_up_dwell : config.flap.mean_down_dwell;
      t += std::max(config.flap.min_dwell,
                    static_cast<TimeNs>(f.Exponential(static_cast<double>(mean))));
    }
  }

  // Gray failures: one set per link somewhere in the first half of the run, all
  // cleared at down_all — strictly before the final restore floods.
  for (size_t i = 0; i < gray_links.size(); ++i) {
    Rng g = rng.Fork(0x6A410000ULL + i);
    const TimeNs span = std::max<TimeNs>(1, (down_all - config.start) / 2);
    const TimeNs t0 = config.start + static_cast<TimeNs>(g.UniformInt(static_cast<uint64_t>(span)));
    const uint32_t ppm =
        config.gray.min_loss_ppm +
        static_cast<uint32_t>(g.UniformInt(config.gray.max_loss_ppm - config.gray.min_loss_ppm + 1));
    out.actions.push_back({t0, ChaosAction::Kind::kGraySet, gray_links[i], ppm});
    out.actions.push_back({down_all, ChaosAction::Kind::kGrayClear, gray_links[i], 0});
  }

  // Correlated outage: every inter-switch link of one victim switch dies at one
  // instant. The victim is the first switch (from a seeded starting point)
  // whose links are unclaimed by the flap/gray sets and number at least two.
  std::vector<LinkIndex> outage_links;
  if (config.outage.enabled && topo.switch_count() > 0) {
    const uint32_t n = static_cast<uint32_t>(topo.switch_count());
    const uint32_t first = static_cast<uint32_t>(rng.UniformInt(n));
    for (uint32_t k = 0; k < n && outage_links.empty(); ++k) {
      const uint32_t sw = (first + k) % n;
      std::vector<LinkIndex> mine;
      bool clash = false;
      for (LinkIndex li : candidates) {
        const Link& l = topo.link_at(li);
        if (l.a.node.index != sw && l.b.node.index != sw) {
          continue;
        }
        if (claimed.count(li) > 0) {
          clash = true;
          break;
        }
        mine.push_back(li);
      }
      if (!clash && mine.size() >= 2) {
        outage_links = std::move(mine);
      }
    }
  }
  if (!outage_links.empty()) {
    const TimeNs latest = down_all - config.outage.duration;
    const TimeNs t_o =
        latest > config.start
            ? config.start + static_cast<TimeNs>(
                                 rng.UniformInt(static_cast<uint64_t>(latest - config.start)))
            : config.start;
    for (LinkIndex li : outage_links) {
      out.actions.push_back({t_o, ChaosAction::Kind::kLinkDown, li, 0});
      out.actions.push_back({t_o + config.outage.duration, ChaosAction::Kind::kLinkUp, li, 0});
    }
  }

  // Well-formed tail: force every touched link down at down_all (idempotent for
  // links already down), then revive all of them in one simultaneous restore.
  std::vector<LinkIndex> touched = flap_links;
  touched.insert(touched.end(), outage_links.begin(), outage_links.end());
  touched = DedupSorted(std::move(touched));
  for (LinkIndex li : touched) {
    out.actions.push_back({down_all, ChaosAction::Kind::kLinkDown, li, 0});
  }
  for (LinkIndex li : touched) {
    out.actions.push_back({horizon, ChaosAction::Kind::kLinkUp, li, 0});
  }

  std::stable_sort(out.actions.begin(), out.actions.end(),
                   [](const ChaosAction& a, const ChaosAction& b) { return a.at < b.at; });
  return out;
}

std::string SerializeSchedule(const ChaosSchedule& schedule, const std::string& note) {
  std::ostringstream out;
  out << "# dumbnet-explore schedule v1\n";
  out << "# dumbnet-chaos schedule v1\n";
  if (!note.empty()) {
    out << "# chaos-note " << note << "\n";
  }
  for (const ChaosAction& a : schedule.actions) {
    out << "# chaos " << a.at << " " << KindWord(a.kind) << " " << a.link;
    if (a.kind == ChaosAction::Kind::kGraySet) {
      out << " " << a.loss_ppm;
    }
    out << "\n";
  }
  return out.str();
}

Result<ChaosSchedule> ParseSchedule(const std::string& text) {
  ChaosSchedule out;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("# chaos ", 0) != 0) {
      continue;  // explore batch lines, notes, and plain comments pass through
    }
    std::istringstream fields(line.substr(8));
    int64_t at = 0;
    std::string word;
    uint64_t link = 0;
    if (!(fields >> at >> word >> link) || at < 0) {
      return Error(ErrorCode::kMalformed, "chaos schedule line " + std::to_string(line_no) +
                                              ": expected '# chaos <at> <kind> <link>'");
    }
    ChaosAction a;
    a.at = at;
    a.link = static_cast<LinkIndex>(link);
    if (word == "down") {
      a.kind = ChaosAction::Kind::kLinkDown;
    } else if (word == "up") {
      a.kind = ChaosAction::Kind::kLinkUp;
    } else if (word == "gray") {
      a.kind = ChaosAction::Kind::kGraySet;
      uint64_t ppm = 0;
      if (!(fields >> ppm) || ppm > 1000000) {
        return Error(ErrorCode::kMalformed, "chaos schedule line " + std::to_string(line_no) +
                                                ": gray needs a ppm in [0, 1000000]");
      }
      a.loss_ppm = static_cast<uint32_t>(ppm);
    } else if (word == "grayclear") {
      a.kind = ChaosAction::Kind::kGrayClear;
    } else {
      return Error(ErrorCode::kMalformed, "chaos schedule line " + std::to_string(line_no) +
                                              ": unknown action '" + word + "'");
    }
    if (!out.actions.empty() && a.at < out.actions.back().at) {
      return Error(ErrorCode::kMalformed, "chaos schedule line " + std::to_string(line_no) +
                                              ": actions must be time-sorted");
    }
    out.actions.push_back(a);
  }
  return out;
}

void ApplyActions(SimulatedFabric& fabric, const ChaosSchedule& schedule, size_t begin,
                  size_t end) {
  Topology& topo = fabric.topo();
  for (size_t i = begin; i < end && i < schedule.actions.size(); ++i) {
    const ChaosAction& a = schedule.actions[i];
    if (a.link >= topo.link_count()) {
      continue;  // schedule built for another topology; ignore rather than crash
    }
    switch (a.kind) {
      case ChaosAction::Kind::kLinkDown:
        topo.SetLinkUp(a.link, false);
        break;
      case ChaosAction::Kind::kLinkUp:
        topo.SetLinkUp(a.link, true);
        break;
      case ChaosAction::Kind::kGraySet:
        topo.SetLinkLoss(a.link, a.loss_ppm);
        break;
      case ChaosAction::Kind::kGrayClear:
        topo.SetLinkLoss(a.link, 0);
        break;
    }
  }
}

void RunSchedule(SimulatedFabric& fabric, const ChaosSchedule& schedule,
                 const RunHooks& hooks) {
  const size_t n = schedule.actions.size();
  const TimeNs t0 = fabric.Now();  // action times are offsets from here
  TimeNs next_sample = hooks.sample_period > 0 ? t0 + hooks.sample_period : 0;
  size_t i = 0;
  while (i < n) {
    const TimeNs at = t0 + schedule.actions[i].at;
    while (hooks.sample_period > 0 && next_sample < at) {
      if (next_sample > fabric.Now()) {
        fabric.RunUntil(next_sample);
      }
      if (hooks.on_sample) {
        hooks.on_sample(next_sample);
      }
      next_sample += hooks.sample_period;
    }
    if (at > fabric.Now()) {
      fabric.RunUntil(at);
    }
    if (hooks.on_boundary) {
      hooks.on_boundary(at);
    }
    size_t j = i;
    while (j < n && t0 + schedule.actions[j].at == at) {
      ++j;
    }
    ApplyActions(fabric, schedule, i, j);
    i = j;
  }
  fabric.Run();
}

uint32_t CountStaleEntries(SimulatedFabric& fabric, const std::vector<LinkIndex>& links) {
  uint32_t stale = 0;
  ForEachStalePair(fabric, links,
                   [&stale](const char*, LinkIndex, bool, bool) { ++stale; });
  return stale;
}

std::vector<std::string> CheckConvergence(SimulatedFabric& fabric,
                                          const std::vector<LinkIndex>& links) {
  std::vector<std::string> out;
  ForEachStalePair(fabric, links,
                   [&out](const char* viewer, LinkIndex li, bool cached, bool truth) {
                     std::ostringstream msg;
                     msg << viewer << " cache believes link " << li << " is "
                         << (cached ? "up" : "down") << "; ground truth says "
                         << (truth ? "up" : "down");
                     out.push_back(msg.str());
                   });
  return out;
}

ChaosSchedule MinimizeSchedule(const ChaosSchedule& failing,
                               const std::function<bool(const ChaosSchedule&)>& still_fails,
                               uint64_t max_probes) {
  ChaosSchedule cur = failing;
  uint64_t probes = 0;
  size_t chunk = (cur.actions.size() + 1) / 2;
  while (chunk >= 1 && !cur.actions.empty() && probes < max_probes) {
    bool removed = false;
    for (size_t start = 0; start < cur.actions.size() && probes < max_probes;) {
      ChaosSchedule cand;
      const size_t stop = std::min(start + chunk, cur.actions.size());
      cand.actions.reserve(cur.actions.size() - (stop - start));
      cand.actions.insert(cand.actions.end(), cur.actions.begin(),
                          cur.actions.begin() + static_cast<long>(start));
      cand.actions.insert(cand.actions.end(), cur.actions.begin() + static_cast<long>(stop),
                          cur.actions.end());
      ++probes;
      if (still_fails(cand)) {
        cur = std::move(cand);  // keep `start`: a new chunk now occupies it
        removed = true;
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) {
      break;
    }
    chunk = removed ? std::min(chunk, (cur.actions.size() + 1) / 2) : chunk / 2;
    if (chunk == 0) {
      break;
    }
  }
  return cur;
}

}  // namespace chaos
}  // namespace dumbnet
