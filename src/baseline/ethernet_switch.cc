#include "src/baseline/ethernet_switch.h"

#include <algorithm>

#include "src/util/logging.h"

namespace dumbnet {
namespace {

// Bridge IDs reuse the switch UID space; lower wins the root election.
constexpr TimeNs kTcSuppression = Ms(10);

}  // namespace

EthernetSwitch::EthernetSwitch(Network* net, uint32_t index, EthernetSwitchConfig config)
    : net_(net),
      sim_(&net->SimFor(NodeId::Switch(index))),
      index_(index),
      bridge_id_(net->topo().switch_at(index).uid),
      num_ports_(net->topo().switch_at(index).num_ports),
      config_(config),
      root_id_(bridge_id_),
      ports_(static_cast<size_t>(num_ports_) + 1) {
  net->RegisterSwitchNode(index, this);
  if (config_.run_stp) {
    // Stagger the first hello a hair so same-time BPDU storms stay deterministic.
    sim_->ScheduleAfter(Us(10) + static_cast<TimeNs>(index % 16), [this] {
      OriginateHello();
    });
    Reelect();
  } else {
    for (PortNum p = 1; p <= num_ports_; ++p) {
      ports_[p].state = PortState::kForwarding;
    }
  }
}

bool EthernetSwitch::PortWiredAndUp(PortNum p) const {
  LinkIndex li = net_->topo().LinkAtPort(index_, p);
  return li != kInvalidLink && net_->topo().link_at(li).up;
}

bool EthernetSwitch::Better(const BpduPayload& a, const BpduPayload& b) {
  if (a.root_id != b.root_id) {
    return a.root_id < b.root_id;
  }
  if (a.cost != b.cost) {
    return a.cost < b.cost;
  }
  if (a.sender_id != b.sender_id) {
    return a.sender_id < b.sender_id;
  }
  return a.sender_port < b.sender_port;
}

void EthernetSwitch::HandlePacket(const Packet& pkt, PortNum in_port) {
  if (pkt.eth.ether_type == kEtherTypeBpdu) {
    if (const auto* bpdu = pkt.As<BpduPayload>(); bpdu != nullptr && config_.run_stp) {
      HandleBpdu(*bpdu, in_port);
    }
    return;
  }
  HandleDataFrame(pkt, in_port);
}

void EthernetSwitch::HandleBpdu(const BpduPayload& bpdu, PortNum in_port) {
  if (bpdu.topology_change) {
    // Topology-change notification: flush and relay (with suppression).
    if (sim_->Now() - last_tc_flood_ > kTcSuppression) {
      last_tc_flood_ = sim_->Now();
      ++stats_.topology_changes;
      FlushMacTable();
      FloodTopologyChange(in_port);
    }
    return;
  }
  PortInfo& port = ports_[in_port];
  const bool refresh_only =
      port.has_bpdu && bpdu.root_id == port.best.root_id && bpdu.cost == port.best.cost &&
      bpdu.sender_id == port.best.sender_id && bpdu.sender_port == port.best.sender_port;
  if (refresh_only) {
    port.heard_at = sim_->Now();  // keepalive; no re-election needed
    return;
  }
  if (!port.has_bpdu || Better(bpdu, port.best) || bpdu.sender_id == port.best.sender_id) {
    port.best = bpdu;
    port.has_bpdu = true;
    port.heard_at = sim_->Now();
    Reelect();
  }
}

void EthernetSwitch::OriginateHello() {
  // Expire stale BPDUs first.
  bool changed = false;
  for (PortNum p = 1; p <= num_ports_; ++p) {
    PortInfo& port = ports_[p];
    if (port.has_bpdu && sim_->Now() - port.heard_at > config_.max_age) {
      port.has_bpdu = false;
      changed = true;
    }
  }
  if (changed) {
    Reelect();
  }
  for (PortNum p = 1; p <= num_ports_; ++p) {
    if (ports_[p].role == PortRole::kDesignated && PortWiredAndUp(p)) {
      SendBpdu(p, false);
    }
  }
  sim_->ScheduleAfter(config_.hello_interval, [this] { OriginateHello(); });
}

void EthernetSwitch::SendBpdu(PortNum port, bool topology_change) {
  BpduPayload bpdu;
  bpdu.root_id = root_id_;
  bpdu.cost = root_cost_;
  bpdu.sender_id = bridge_id_;
  bpdu.sender_port = port;
  bpdu.topology_change = topology_change;
  Packet pkt = MakeEthernetPacket(bridge_id_, kBroadcastMac, kEtherTypeBpdu, bpdu);
  ++stats_.bpdus_sent;
  sim_->ScheduleAfter(config_.forwarding_delay,
                      [this, port, pkt = std::move(pkt)] { net_->SendFromSwitch(index_, port, pkt); });
}

void EthernetSwitch::Reelect() {
  const uint64_t old_root = root_id_;
  const PortNum old_root_port = root_port_;

  // Root-port election over valid stored BPDUs.
  root_id_ = bridge_id_;
  root_cost_ = 0;
  root_port_ = 0;
  BpduPayload best_offer;
  bool have_offer = false;
  for (PortNum p = 1; p <= num_ports_; ++p) {
    const PortInfo& port = ports_[p];
    if (!port.has_bpdu || !PortWiredAndUp(p)) {
      continue;
    }
    if (port.best.root_id >= bridge_id_) {
      continue;  // our own ID beats that offer
    }
    if (!have_offer || Better(port.best, best_offer)) {
      best_offer = port.best;
      have_offer = true;
      root_port_ = p;
    }
  }
  if (have_offer) {
    root_id_ = best_offer.root_id;
    root_cost_ = best_offer.cost + 1;
  }

  // Role assignment and state transitions.
  bool any_change = (root_id_ != old_root) || (root_port_ != old_root_port);
  for (PortNum p = 1; p <= num_ports_; ++p) {
    PortInfo& port = ports_[p];
    PortRole new_role;
    if (p == root_port_ && root_port_ != 0) {
      new_role = PortRole::kRoot;
    } else if (!port.has_bpdu) {
      new_role = PortRole::kDesignated;  // edge or silent port: we speak for it
    } else {
      BpduPayload ours;
      ours.root_id = root_id_;
      ours.cost = root_cost_;
      ours.sender_id = bridge_id_;
      ours.sender_port = p;
      new_role = Better(ours, port.best) ? PortRole::kDesignated : PortRole::kBlockedRole;
    }
    if (new_role != port.role) {
      port.role = new_role;
      any_change = true;
    }
    AdvancePort(p, new_role == PortRole::kBlockedRole ? PortState::kBlocked
                                                      : PortState::kForwarding);
  }

  if (any_change && sim_->Now() - last_tc_flood_ > kTcSuppression) {
    last_tc_flood_ = sim_->Now();
    ++stats_.topology_changes;
    FlushMacTable();
    FloodTopologyChange(0);
  }
}

void EthernetSwitch::AdvancePort(PortNum p, PortState target) {
  PortInfo& port = ports_[p];
  if (target == port.fsm_target &&
      (target == port.state || target == PortState::kForwarding)) {
    return;  // transition already satisfied or in flight; leave it alone
  }
  port.fsm_target = target;
  uint64_t epoch = ++port.fsm_epoch;
  if (target == PortState::kBlocked) {
    port.state = PortState::kBlocked;  // blocking is immediate
    return;
  }
  if (port.state == PortState::kForwarding) {
    return;  // already there
  }
  // blocked -> learning -> forwarding, one forward_delay per stage.
  if (port.state == PortState::kBlocked) {
    sim_->ScheduleAfter(config_.forward_delay, [this, p, epoch] {
      PortInfo& pi = ports_[p];
      if (pi.fsm_epoch != epoch || pi.role == PortRole::kBlockedRole) {
        return;
      }
      pi.state = PortState::kLearning;
      sim_->ScheduleAfter(config_.forward_delay, [this, p, epoch] {
        PortInfo& pj = ports_[p];
        if (pj.fsm_epoch != epoch || pj.role == PortRole::kBlockedRole) {
          return;
        }
        pj.state = PortState::kForwarding;
      });
    });
  } else if (port.state == PortState::kLearning) {
    sim_->ScheduleAfter(config_.forward_delay, [this, p, epoch] {
      PortInfo& pi = ports_[p];
      if (pi.fsm_epoch != epoch || pi.role == PortRole::kBlockedRole) {
        return;
      }
      pi.state = PortState::kForwarding;
    });
  }
}

void EthernetSwitch::HandlePortChange(PortNum port, bool up) {
  if (!config_.run_stp) {
    return;
  }
  if (!up) {
    // Link-down shortcut: the stored info on that port is dead, re-elect now.
    ports_[port].has_bpdu = false;
    ports_[port].state = PortState::kBlocked;
    ++ports_[port].fsm_epoch;
    Reelect();
  } else {
    // Fresh link starts blocked and earns its way up via BPDUs.
    ports_[port].state = PortState::kBlocked;
    ++ports_[port].fsm_epoch;
    Reelect();
  }
}

void EthernetSwitch::FlushMacTable() {
  ++stats_.mac_flushes;
  mac_table_.clear();
}

void EthernetSwitch::FloodTopologyChange(PortNum skip) {
  for (PortNum p = 1; p <= num_ports_; ++p) {
    if (p == skip || !PortWiredAndUp(p)) {
      continue;
    }
    if (ports_[p].state == PortState::kBlocked) {
      continue;
    }
    SendBpdu(p, true);
  }
}

void EthernetSwitch::HandleDataFrame(const Packet& pkt, PortNum in_port) {
  PortInfo& port = ports_[in_port];
  if (port.state == PortState::kBlocked) {
    ++stats_.dropped_blocked;
    return;
  }
  // Learn the source (learning and forwarding states both learn).
  mac_table_[pkt.eth.src_mac] = {in_port, sim_->Now()};
  if (port.state == PortState::kLearning) {
    ++stats_.dropped_blocked;
    return;
  }

  auto forward = [this, &pkt](PortNum out) {
    sim_->ScheduleAfter(config_.forwarding_delay,
                        [this, out, pkt] { net_->SendFromSwitch(index_, out, pkt); });
  };

  if (pkt.eth.dst_mac != kBroadcastMac) {
    auto it = mac_table_.find(pkt.eth.dst_mac);
    if (it != mac_table_.end() && sim_->Now() - it->second.second < config_.mac_age_time) {
      PortNum out = it->second.first;
      if (out != in_port && ports_[out].state == PortState::kForwarding &&
          PortWiredAndUp(out)) {
        ++stats_.forwarded;
        forward(out);
        return;
      }
    }
  }
  // Unknown unicast or broadcast: flood on forwarding ports.
  ++stats_.flooded;
  for (PortNum p = 1; p <= num_ports_; ++p) {
    if (p == in_port || ports_[p].state != PortState::kForwarding || !PortWiredAndUp(p)) {
      continue;
    }
    forward(p);
  }
}

// ---------------------------------------------------------------------------------

EthernetHost::EthernetHost(Network* net, uint32_t host_index)
    : net_(net), host_index_(host_index), mac_(net->topo().host_at(host_index).mac) {
  net->RegisterHostNode(host_index, this);
}

void EthernetHost::SendFrame(uint64_t dst_mac, DataPayload payload) {
  Packet pkt = MakeEthernetPacket(mac_, dst_mac, kEtherTypeIpv4, std::move(payload));
  net_->SendFromHost(host_index_, pkt);
}

void EthernetHost::HandlePacket(const Packet& pkt, PortNum in_port) {
  (void)in_port;
  if (pkt.eth.ether_type != kEtherTypeIpv4) {
    return;  // hosts ignore BPDUs
  }
  if (pkt.eth.dst_mac != mac_ && pkt.eth.dst_mac != kBroadcastMac) {
    return;  // flooded frame for someone else
  }
  if (const auto* data = pkt.As<DataPayload>(); data != nullptr && handler_) {
    handler_(pkt, *data);
  }
}

}  // namespace dumbnet
