// Baseline Ethernet fabric for the Figure 11(b) comparison: a MAC-learning switch
// running a rapid-profile spanning tree protocol. This is the conventional L2
// network DumbNet's two-stage failover is measured against.
//
// The STP model is an honest distributed protocol, not an oracle:
//   * every switch starts believing it is the root and emits BPDUs each hello;
//   * best-BPDU election per port decides root/designated/blocked roles;
//   * ports walk blocked -> learning -> forwarding, each stage taking
//     `forward_delay` (the classic listening+learning delays, collapsed to two
//     stages as in RSTP);
//   * a root-port link failure immediately invalidates the stored root info
//     (802.1D link-down shortcut) and triggers re-election plus a topology-change
//     flood that flushes MAC tables fabric-wide.
#ifndef DUMBNET_SRC_BASELINE_ETHERNET_SWITCH_H_
#define DUMBNET_SRC_BASELINE_ETHERNET_SWITCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace dumbnet {

struct EthernetSwitchConfig {
  TimeNs forwarding_delay = 500;       // per-frame pipeline latency
  TimeNs hello_interval = Ms(50);      // BPDU origination period
  TimeNs max_age = Ms(300);            // stored BPDU expiry without refresh
  TimeNs forward_delay = Ms(100);      // per port-state stage
  TimeNs mac_age_time = Sec(300);
  bool run_stp = true;                 // off => plain learning switch (loop-free topologies only)
};

struct EthernetSwitchStats {
  uint64_t forwarded = 0;
  uint64_t flooded = 0;
  uint64_t dropped_blocked = 0;
  uint64_t bpdus_sent = 0;
  uint64_t topology_changes = 0;
  uint64_t mac_flushes = 0;
};

class EthernetSwitch : public NetNode {
 public:
  enum class PortState : uint8_t { kBlocked, kLearning, kForwarding };
  enum class PortRole : uint8_t { kRoot, kDesignated, kBlockedRole };

  EthernetSwitch(Network* net, uint32_t index,
                 EthernetSwitchConfig config = EthernetSwitchConfig());

  void HandlePacket(const Packet& pkt, PortNum in_port) override;
  void HandlePortChange(PortNum port, bool up) override;

  uint64_t bridge_id() const { return bridge_id_; }
  bool IsRootBridge() const { return root_id_ == bridge_id_; }
  PortState port_state(PortNum p) const { return ports_[p].state; }
  PortRole port_role(PortNum p) const { return ports_[p].role; }
  const EthernetSwitchStats& stats() const { return stats_; }

 private:
  struct PortInfo {
    PortState state = PortState::kBlocked;
    PortRole role = PortRole::kDesignated;
    // Best BPDU heard on this port.
    bool has_bpdu = false;
    BpduPayload best;
    TimeNs heard_at = 0;
    // Pending state-machine step (generation counter defeats stale timers).
    uint64_t fsm_epoch = 0;
    PortState fsm_target = PortState::kBlocked;
  };

  void HandleBpdu(const BpduPayload& bpdu, PortNum in_port);
  void HandleDataFrame(const Packet& pkt, PortNum in_port);
  void OriginateHello();
  void Reelect();
  void SendBpdu(PortNum port, bool topology_change);
  void AdvancePort(PortNum port, PortState target);
  void FlushMacTable();
  void FloodTopologyChange(PortNum skip);
  bool PortWiredAndUp(PortNum p) const;
  // True if `a` beats `b` (lower root, then cost, then sender, then port).
  static bool Better(const BpduPayload& a, const BpduPayload& b);

  Network* net_;
  Simulator* sim_;
  uint32_t index_;
  uint64_t bridge_id_;
  uint8_t num_ports_;
  EthernetSwitchConfig config_;

  uint64_t root_id_;
  uint32_t root_cost_ = 0;
  PortNum root_port_ = 0;  // 0 = we are root

  std::vector<PortInfo> ports_;
  std::unordered_map<uint64_t, std::pair<PortNum, TimeNs>> mac_table_;
  TimeNs last_tc_flood_ = -Sec(1000);
  EthernetSwitchStats stats_;
};

// A minimal host on the baseline fabric: sends/receives plain Ethernet frames.
class EthernetHost : public NetNode {
 public:
  EthernetHost(Network* net, uint32_t host_index);

  void SendFrame(uint64_t dst_mac, DataPayload payload);

  using FrameHandler = std::function<void(const Packet&, const DataPayload&)>;
  void SetFrameHandler(FrameHandler handler) { handler_ = std::move(handler); }

  void HandlePacket(const Packet& pkt, PortNum in_port) override;

  uint64_t mac() const { return mac_; }

 private:
  Network* net_;
  uint32_t host_index_;
  uint64_t mac_;
  FrameHandler handler_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_BASELINE_ETHERNET_SWITCH_H_
