// Audit macros: executable invariant checks sprinkled through hot control-plane
// code (switch forwarding, tag compilation, cache installs). Two strengths:
//
//   DUMBNET_ASSERT(cond, msg)  hard invariant — a violation means the process
//                              state is corrupt; aborts when abort-on-failure is
//                              set (the default in audited test runs can keep it
//                              off so deliberately corrupted fixtures survive).
//   DUMBNET_AUDIT(cond, msg)   soft invariant — recorded and logged, execution
//                              continues (the fabric drops the packet anyway).
//
// Both compile to nothing unless DUMBNET_AUDIT_ENABLED is defined (CMake option
// DUMBNET_AUDITS, ON by default, OFF for release builds), so release binaries pay
// zero cost — the condition expression is not even evaluated.
//
// Failures are counted in a global AuditLog so tests can assert "no invariant
// tripped during this run" or "this corruption was caught".
#ifndef DUMBNET_SRC_ANALYSIS_AUDIT_H_
#define DUMBNET_SRC_ANALYSIS_AUDIT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace dumbnet {
namespace audit {

// Protocol budget: a DumbNet header is one byte per hop plus the ø terminator.
// Sixteen bytes bounds any sane data-center diameter (fat-tree k=64 needs 5) and
// keeps the header far below the MPLS-stack budget the Arista variant rides in.
constexpr size_t kMaxTagStackDepth = 16;

struct AuditCounters {
  // Relaxed atomics: audit points fire from every wire-node thread; the values
  // are statistics, not synchronization.
  std::atomic<uint64_t> checks{0};    // audit-point evaluations (enabled builds only)
  std::atomic<uint64_t> failures{0};  // violations recorded
};

// Global audit state, shared across all threads running protocol objects.
const AuditCounters& Counters();
void ResetCounters();

// Most recent failure message, for test diagnostics. Empty if none.
const std::string& LastFailure();

// When set, a DUMBNET_ASSERT failure aborts the process instead of recording.
void SetAbortOnFailure(bool abort_on_failure);

namespace internal {
void RecordCheck();
void RecordFailure(bool hard, const char* file, int line, const std::string& message);
}  // namespace internal

}  // namespace audit
}  // namespace dumbnet

#ifdef DUMBNET_AUDIT_ENABLED

#define DUMBNET_AUDIT_IMPL(hard, cond, msg)                                        \
  do {                                                                             \
    ::dumbnet::audit::internal::RecordCheck();                                     \
    if (!(cond)) {                                                                 \
      ::dumbnet::audit::internal::RecordFailure(hard, __FILE__, __LINE__,          \
                                                std::string(#cond) + ": " + (msg)); \
    }                                                                              \
  } while (0)

#define DUMBNET_ASSERT(cond, msg) DUMBNET_AUDIT_IMPL(true, cond, msg)
#define DUMBNET_AUDIT(cond, msg) DUMBNET_AUDIT_IMPL(false, cond, msg)

#else

#define DUMBNET_ASSERT(cond, msg) \
  do {                            \
  } while (0)
#define DUMBNET_AUDIT(cond, msg) \
  do {                           \
  } while (0)

#endif  // DUMBNET_AUDIT_ENABLED

#endif  // DUMBNET_SRC_ANALYSIS_AUDIT_H_
