#include "src/analysis/audit.h"

#include <cstdlib>
#include <mutex>

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {
namespace audit {
namespace {

AuditCounters g_counters;
std::mutex g_failure_mu;  // guards g_last_failure (failure path only)
std::string g_last_failure;
bool g_abort_on_failure = false;

}  // namespace

const AuditCounters& Counters() { return g_counters; }

void ResetCounters() {
  g_counters.checks.store(0, std::memory_order_relaxed);
  g_counters.failures.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_failure_mu);
  g_last_failure.clear();
}

// Test diagnostics; read after worker threads are joined, so no lock on read.
const std::string& LastFailure() { return g_last_failure; }

void SetAbortOnFailure(bool abort_on_failure) { g_abort_on_failure = abort_on_failure; }

namespace internal {

void RecordCheck() { g_counters.checks.fetch_add(1, std::memory_order_relaxed); }

void RecordFailure(bool hard, const char* file, int line, const std::string& message) {
  g_counters.failures.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_failure_mu);
    g_last_failure = message;
  }
  DN_ERROR << (hard ? "invariant violated" : "audit failed") << " at " << file << ":"
           << line << " — " << message;
  DN_COUNTER_INC("audit.failures");
  // The moments leading up to a violation are usually the diagnosis: dump the
  // flight recorder's tail alongside the failure itself.
  if (telemetry::Enabled()) {
    int64_t now = 0;
    (void)CurrentLogTime(&now);
    DN_TRACE_EVENT(kAudit, kAuditFailure, now, static_cast<uint64_t>(line), hard ? 1 : 0);
    telemetry::FlightRecorder::Global().DumpOnFailure(
        hard ? "invariant violated" : "audit failed");
  }
  if (hard && g_abort_on_failure) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace audit
}  // namespace dumbnet
