#include "src/analysis/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace dumbnet {
namespace {

// ---------------------------------------------------------------------------------
// Source model: original lines, a comment/string-blanked mirror (same shape, so
// token columns line up), per-line comment text, and preprocessor-line flags.

struct SourceText {
  std::vector<std::string> raw;
  std::vector<std::string> code;      // comments and literal contents blanked
  std::vector<std::string> comments;  // comment text attributed to each line
  std::vector<bool> preproc;          // directive lines, including \ continuations
};

SourceText SplitAndBlank(const std::string& content) {
  SourceText src;
  src.raw.emplace_back();
  src.code.emplace_back();
  src.comments.emplace_back();

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;          // raw-string closing delimiter ")...\""
  size_t raw_match = 0;           // chars of raw_delim matched so far
  auto put = [&](char raw_ch, char code_ch) {
    src.raw.back().push_back(raw_ch);
    src.code.back().push_back(code_ch);
  };
  auto newline = [&] {
    src.raw.emplace_back();
    src.code.emplace_back();
    src.comments.emplace_back();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        state = State::kCode;
      }
      newline();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          put(c, ' ');
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          put(c, ' ');
          put(next, ' ');
          ++i;
          break;
        }
        if (c == 'R' && next == '"') {
          // Raw string literal: R"delim( ... )delim". Only when R starts a token.
          const std::string& line = src.code.back();
          const char prev = line.empty() ? '\0' : line.back();
          if (!(std::isalnum(static_cast<unsigned char>(prev)) || prev == '_')) {
            size_t j = i + 2;
            std::string delim;
            while (j < content.size() && content[j] != '(' && content[j] != '\n') {
              delim.push_back(content[j]);
              ++j;
            }
            if (j < content.size() && content[j] == '(') {
              raw_delim = ")" + delim + "\"";
              raw_match = 0;
              for (size_t k = i; k <= j; ++k) {
                put(content[k], k == i ? 'R' : ' ');
              }
              i = j;
              state = State::kRawString;
              break;
            }
          }
          put(c, c);
          break;
        }
        if (c == '"') {
          state = State::kString;
          put(c, '"');
          break;
        }
        if (c == '\'') {
          // Digit separators (1'000'000) are not character literals.
          const std::string& line = src.code.back();
          const char prev = line.empty() ? '\0' : line.back();
          if (std::isalnum(static_cast<unsigned char>(prev)) &&
              (std::isalnum(static_cast<unsigned char>(next)) || next == '\0')) {
            put(c, c);
            break;
          }
          state = State::kChar;
          put(c, '\'');
          break;
        }
        put(c, c);
        break;
      case State::kLineComment:
        src.comments.back().push_back(c);
        put(c, ' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          put(c, ' ');
          put(next, ' ');
          ++i;
          break;
        }
        src.comments.back().push_back(c);
        put(c, ' ');
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          put(c, ' ');
          put(next, ' ');
          ++i;
          break;
        }
        if (c == '"') {
          state = State::kCode;
          put(c, '"');
          break;
        }
        put(c, ' ');
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          put(c, ' ');
          put(next, ' ');
          ++i;
          break;
        }
        if (c == '\'') {
          state = State::kCode;
          put(c, '\'');
          break;
        }
        put(c, ' ');
        break;
      case State::kRawString:
        raw_match = c == raw_delim[raw_match] ? raw_match + 1
                    : c == raw_delim[0]      ? 1
                                             : 0;
        if (raw_match == raw_delim.size()) {
          state = State::kCode;
          put(c, '"');  // make the literal read as closed in the code view
          break;
        }
        put(c, ' ');
        break;
    }
  }

  src.preproc.assign(src.code.size(), false);
  bool continued = false;
  for (size_t l = 0; l < src.code.size(); ++l) {
    const std::string& line = src.code[l];
    size_t first = line.find_first_not_of(" \t");
    bool starts = first != std::string::npos && line[first] == '#';
    src.preproc[l] = starts || continued;
    size_t last = src.raw[l].find_last_not_of(" \t");
    continued = src.preproc[l] && last != std::string::npos && src.raw[l][last] == '\\';
  }
  return src;
}

// ---------------------------------------------------------------------------------
// Tokenizer over the blanked code view.

struct Tok {
  bool ident = false;
  std::string text;
  size_t line = 0;  // 0-based internally
  size_t col = 0;
};

std::vector<Tok> Tokenize(const SourceText& src) {
  std::vector<Tok> toks;
  for (size_t l = 0; l < src.code.size(); ++l) {
    const std::string& line = src.code[l];
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i + 1;
        while (j < line.size() && (std::isalnum(static_cast<unsigned char>(line[j])) ||
                                   line[j] == '_')) {
          ++j;
        }
        toks.push_back({true, line.substr(i, j - i), l, i});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i + 1;  // numbers: swallow suffixes/exponents, never idents
        while (j < line.size() && (std::isalnum(static_cast<unsigned char>(line[j])) ||
                                   line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        toks.push_back({false, line.substr(i, j - i), l, i});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        toks.push_back({false, "::", l, i});
        i += 2;
        continue;
      }
      toks.push_back({false, std::string(1, c), l, i});
      ++i;
    }
  }
  return toks;
}

// Original text between the start of token `from` and the start of token `to`.
std::string RawBetween(const SourceText& src, const Tok& from, const Tok& to) {
  if (from.line == to.line) {
    return src.raw[from.line].substr(from.col, to.col - from.col);
  }
  std::string out = src.raw[from.line].substr(from.col);
  for (size_t l = from.line + 1; l < to.line; ++l) {
    out += "\n" + src.raw[l];
  }
  out += "\n" + src.raw[to.line].substr(0, to.col);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

// Index of the token closing the paren opened at toks[open] ('(' expected), or
// toks.size() when unbalanced.
size_t MatchParen(const std::vector<Tok>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].ident) {
      continue;
    }
    if (toks[i].text == "(") {
      ++depth;
    } else if (toks[i].text == ")") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string NormalizeSlashes(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool IsLowerDotKey(const std::string& s) {
  if (s.empty() || s.front() == '.' || s.back() == '.' ||
      s.find("..") != std::string::npos) {
    return false;
  }
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_' || c == '.')) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------------
// Suppression annotations (allow(rule-id, reason) behind the marker below).

struct Suppressions {
  // line (0-based) -> rules allowed on that line and the next.
  std::map<size_t, std::set<std::string>> allow;
};

Suppressions ParseSuppressions(const SourceText& src, const std::string& path,
                               std::vector<LintFinding>* findings) {
  static const std::string kMarker = "dn-lint:";
  Suppressions sup;
  const auto& known = KnownLintRules();
  for (size_t l = 0; l < src.comments.size(); ++l) {
    const std::string& comment = src.comments[l];
    size_t pos = comment.find(kMarker);
    while (pos != std::string::npos) {
      size_t cur = pos + kMarker.size();
      size_t open = comment.find("allow(", cur);
      if (open == std::string::npos) {
        findings->push_back({"bad-suppression", path, l + 1,
                             "dn-lint annotation without allow(rule, reason)"});
        break;
      }
      size_t close = comment.find(')', open);
      if (close == std::string::npos) {
        findings->push_back(
            {"bad-suppression", path, l + 1, "unterminated dn-lint allow(...)"});
        break;
      }
      std::string body = comment.substr(open + 6, close - open - 6);
      size_t comma = body.find(',');
      std::string rule = Trim(comma == std::string::npos ? body : body.substr(0, comma));
      std::string reason =
          comma == std::string::npos ? "" : Trim(body.substr(comma + 1));
      if (std::find(known.begin(), known.end(), rule) == known.end()) {
        findings->push_back({"bad-suppression", path, l + 1,
                             "allow() names unknown rule '" + rule + "'"});
      } else if (reason.empty()) {
        findings->push_back({"bad-suppression", path, l + 1,
                             "allow(" + rule + ") needs a reason: allow(" + rule +
                                 ", <why this is safe>)"});
      } else {
        sup.allow[l].insert(rule);
      }
      pos = comment.find(kMarker, close);
    }
  }
  return sup;
}

bool Suppressed(const Suppressions& sup, const std::string& rule, size_t line0) {
  auto covers = [&](size_t l) {
    auto it = sup.allow.find(l);
    return it != sup.allow.end() && it->second.count(rule) > 0;
  };
  return covers(line0) || (line0 > 0 && covers(line0 - 1));
}

// ---------------------------------------------------------------------------------
// Rule: raw-random / wall-clock.

const std::set<std::string>& RawRandomIdents() {
  static const std::set<std::string> kSet = {
      "rand",          "srand",        "rand_r",       "drand48",
      "lrand48",       "mrand48",      "random_device", "mt19937",
      "mt19937_64",    "minstd_rand",  "minstd_rand0", "default_random_engine",
      "random_shuffle"};
  return kSet;
}

const std::set<std::string>& WallClockIdents() {
  static const std::set<std::string> kSet = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",            "gmtime",
      "mktime"};
  return kSet;
}

void CheckDeterminism(const std::vector<Tok>& toks, const std::string& path,
                      std::vector<LintFinding>* findings) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident) {
      continue;
    }
    const std::string& t = toks[i].text;
    const bool call = i + 1 < toks.size() && toks[i + 1].text == "(";
    if (RawRandomIdents().count(t) > 0) {
      findings->push_back({"raw-random", path, toks[i].line + 1,
                           "'" + t + "' breaks run-to-run determinism; draw from " +
                               "src/util/rng.h (Rng) instead"});
    } else if (WallClockIdents().count(t) > 0 ||
               ((t == "time" || t == "clock") && call)) {
      findings->push_back({"wall-clock", path, toks[i].line + 1,
                           "'" + t + "' reads the wall clock; simulated code must " +
                               "use virtual time (Simulator::Now)"});
    }
  }
}

// ---------------------------------------------------------------------------------
// Rule: unordered-iter.

const std::set<std::string>& UnorderedTypeNames() {
  static const std::set<std::string> kSet = {"unordered_map", "unordered_set",
                                             "unordered_multimap",
                                             "unordered_multiset"};
  return kSet;
}

// Names of variables/members declared with an unordered container type, plus
// type aliases (`using Foo = std::unordered_map<...>`) so `Foo bar;` is caught.
void CollectUnorderedNames(const std::vector<Tok>& toks, std::set<std::string>* names,
                           std::set<std::string>* type_aliases) {
  auto is_unordered_type = [&](const std::string& t) {
    return UnorderedTypeNames().count(t) > 0 || type_aliases->count(t) > 0;
  };
  // Alias pass: using X = ... unordered_xxx ... ;
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!(toks[i].ident && toks[i].text == "using" && toks[i + 1].ident &&
          toks[i + 2].text == "=")) {
      continue;
    }
    for (size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
      if (toks[j].ident && UnorderedTypeNames().count(toks[j].text) > 0) {
        type_aliases->insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Declaration pass: <unordered-type> [<template-args>] [&*const]* <name>
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || !is_unordered_type(toks[i].text)) {
      continue;
    }
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") {
          ++depth;
        } else if (toks[j].text == ">") {
          if (--depth == 0) {
            ++j;
            break;
          }
        } else if (toks[j].text == ";") {
          break;  // malformed / non-declaration use
        }
      }
    }
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].ident && toks[j].text != "const") {
      names->insert(toks[j].text);
    }
  }
}

void CheckUnorderedIteration(const std::vector<Tok>& toks,
                             const std::set<std::string>& unordered_names,
                             const std::set<std::string>& aliases,
                             const std::string& path,
                             std::vector<LintFinding>* findings) {
  auto is_unordered_expr_token = [&](const Tok& t) {
    return t.ident && (unordered_names.count(t.text) > 0 ||
                       UnorderedTypeNames().count(t.text) > 0 ||
                       aliases.count(t.text) > 0);
  };
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!(toks[i].ident && toks[i].text == "for" && toks[i + 1].text == "(")) {
      continue;
    }
    const size_t open = i + 1;
    const size_t close = MatchParen(toks, open);
    if (close == toks.size()) {
      continue;
    }
    // Find the range-for ':' at paren depth 1 ("::" is its own token).
    size_t colon = close;
    int depth = 0;
    for (size_t j = open; j < close; ++j) {
      if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{") {
        ++depth;
      } else if (toks[j].text == ")" || toks[j].text == "]" || toks[j].text == "}") {
        --depth;
      } else if (toks[j].text == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    bool flagged = false;
    if (colon != close) {
      for (size_t j = colon + 1; j < close && !flagged; ++j) {
        if (is_unordered_expr_token(toks[j])) {
          findings->push_back(
              {"unordered-iter", path, toks[i].line + 1,
               "range-for over unordered container '" + toks[j].text +
                   "' in an order-sensitive layer; iterate a sorted snapshot or a "
                   "deterministic container, or annotate dn-lint: "
                   "allow(unordered-iter, <reason>)"});
          flagged = true;
        }
      }
    } else {
      for (size_t j = open + 1; j + 2 < close && !flagged; ++j) {
        if (is_unordered_expr_token(toks[j]) && toks[j + 1].text == "." &&
            (toks[j + 2].text == "begin" || toks[j + 2].text == "cbegin")) {
          findings->push_back(
              {"unordered-iter", path, toks[i].line + 1,
               "iterator loop over unordered container '" + toks[j].text +
                   "' in an order-sensitive layer; iterate a sorted snapshot or a "
                   "deterministic container, or annotate dn-lint: "
                   "allow(unordered-iter, <reason>)"});
          flagged = true;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------------
// Rule: pointer-key (order-sensitive layers only). Pointer values vary run to
// run with the allocator; a container keyed (or ordered) by them, or an address
// laundered into an integer key, silently breaks trace determinism.

const std::set<std::string>& KeyedContainerNames() {
  static const std::set<std::string> kSet = {
      "map",           "multimap",           "set",           "multiset",
      "unordered_map", "unordered_multimap", "unordered_set", "unordered_multiset"};
  return kSet;
}

void CheckPointerKeys(const std::vector<Tok>& toks, const std::string& path,
                      std::vector<LintFinding>* findings) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].ident) {
      continue;
    }
    // <container><<T>*...>: pointer in the first template argument (the key for
    // maps, the element for sets). Later arguments — mapped values, custom
    // comparators — may legitimately hold pointers.
    if (KeyedContainerNames().count(toks[i].text) > 0 && toks[i + 1].text == "<") {
      int depth = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (toks[j].ident) {
          continue;
        }
        if (t == "<") {
          ++depth;
        } else if (t == ">") {
          if (--depth == 0) {
            break;
          }
        } else if (t == ";") {
          break;  // not a type usage after all
        } else if (depth == 1 && t == ",") {
          break;
        } else if (depth == 1 && t == "*") {
          findings->push_back(
              {"pointer-key", path, toks[i].line + 1,
               "'" + toks[i].text +
                   "' keyed by a pointer: addresses vary run to run, so ordering "
                   "and iteration leak allocator state into the event stream; key "
                   "by a stable id (uid, mac, index) or annotate dn-lint: "
                   "allow(pointer-key, <why order never escapes>)"});
          break;
        }
      }
      continue;
    }
    // reinterpret_cast<integer>(...): a pointer address turned into a number.
    // Casting *to* a pointer type (has a '*' in the target) is not flagged.
    if (toks[i].text == "reinterpret_cast" && toks[i + 1].text == "<") {
      int depth = 0;
      bool to_pointer = false;
      std::string last_ident;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].ident) {
          last_ident = toks[j].text;
          continue;
        }
        const std::string& t = toks[j].text;
        if (t == "<") {
          ++depth;
        } else if (t == ">") {
          if (--depth == 0) {
            break;
          }
        } else if (t == "*" || t == "&") {
          to_pointer = true;
        } else if (t == ";") {
          break;
        }
      }
      const bool integer_target =
          last_ident == "uintptr_t" || last_ident == "intptr_t" ||
          last_ident == "size_t" || last_ident.rfind("uint", 0) == 0 ||
          last_ident.rfind("int", 0) == 0;
      if (!to_pointer && integer_target) {
        findings->push_back(
            {"pointer-key", path, toks[i].line + 1,
             "reinterpret_cast<" + last_ident +
                 "> launders a pointer address into an integer; addresses vary "
                 "run to run and must never feed keys, hashes, or ordering — use "
                 "a stable id, or annotate dn-lint: allow(pointer-key, <why the "
                 "value never affects simulation state>)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------------
// Rules: audit-message, log-kv-key.

// Top-level comma positions (token indexes) between toks[open+1, close).
// Angle brackets are deliberately NOT tracked: in expression context `<` is
// almost always a comparison (`a <= b`), and template-argument commas inside a
// macro condition are far rarer than comparisons.
std::vector<size_t> TopLevelCommas(const std::vector<Tok>& toks, size_t open,
                                   size_t close) {
  std::vector<size_t> commas;
  int depth = 0;
  for (size_t j = open; j < close; ++j) {
    const std::string& t = toks[j].text;
    if (toks[j].ident) {
      continue;
    }
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
    } else if (t == ")" || t == "]" || t == "}") {
      --depth;
    } else if (t == "," && depth == 1) {
      commas.push_back(j);
    }
  }
  return commas;
}

void CheckMacroContracts(const std::vector<Tok>& toks, const SourceText& src,
                         const std::string& path,
                         std::vector<LintFinding>* findings) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].ident || src.preproc[toks[i].line]) {
      continue;  // macro *definitions* are not call sites
    }
    const std::string& name = toks[i].text;
    const bool is_audit = name == "DUMBNET_ASSERT" || name == "DUMBNET_AUDIT";
    const bool is_logkv = name == "DN_LOG_KV";
    const bool is_kv = name == "Kv" && i > 0 && toks[i - 1].text == ".";
    if (!(is_audit || is_logkv || is_kv) || toks[i + 1].text != "(") {
      continue;
    }
    const size_t open = i + 1;
    const size_t close = MatchParen(toks, open);
    if (close == toks.size()) {
      continue;
    }
    const auto commas = TopLevelCommas(toks, open, close);
    if (is_audit) {
      if (commas.empty()) {
        findings->push_back({"audit-message", path, toks[i].line + 1,
                             name + " must carry a message: " + name +
                                 "(cond, \"what invariant failed and why it "
                                 "matters\")"});
        continue;
      }
      const std::string msg =
          Trim(RawBetween(src, toks[commas.front() + 1], toks[close]));
      if (msg.empty() || msg == "\"\"") {
        findings->push_back({"audit-message", path, toks[i].line + 1,
                             name + " message must be non-empty"});
      }
      continue;
    }
    // DN_LOG_KV(level, "event") / .Kv("key", value): the key argument must be a
    // lowercase.dot string literal.
    size_t key_begin;
    size_t key_end;
    if (is_logkv) {
      if (commas.empty()) {
        findings->push_back({"log-kv-key", path, toks[i].line + 1,
                             "DN_LOG_KV needs (level, \"event.name\")"});
        continue;
      }
      key_begin = commas.front() + 1;
      key_end = commas.size() > 1 ? commas[1] : close;
    } else {
      key_begin = open + 1;
      key_end = commas.empty() ? close : commas.front();
    }
    if (key_begin >= key_end) {
      continue;
    }
    const std::string key = Trim(RawBetween(src, toks[key_begin], toks[key_end]));
    if (key.size() < 2 || key.front() != '"' || key.back() != '"') {
      if (is_logkv) {
        findings->push_back({"log-kv-key", path, toks[i].line + 1,
                             "DN_LOG_KV event name must be a string literal"});
      }
      continue;  // .Kv with a computed key: out of scope for a token linter
    }
    const std::string inner = key.substr(1, key.size() - 2);
    if (!IsLowerDotKey(inner)) {
      findings->push_back(
          {"log-kv-key", path, toks[i].line + 1,
           std::string(is_logkv ? "DN_LOG_KV event" : ".Kv key") + " '" + inner +
               "' must be a lowercase.dot identifier ([a-z0-9_.])"});
    }
  }
}

// ---------------------------------------------------------------------------------
// Rule: fp-in-pool. Footprint collection (DN_FP_*) is thread-local and is only
// harvested on the thread executing the current simulator event (a shard worker
// in sharded runs). A DN_FP_* that executes on a ThreadPool worker records into
// that worker's collector and silently vanishes — the race detector never sees
// it, which reads as "verified race-free" when nothing was checked. This is a
// lexical check: it flags DN_FP_* tokens inside the argument list of a
// ThreadPool::ParallelFor call (the pool's only entry point). Footprints
// reached through functions *called* from the body are out of a token linter's
// sight — keep pool bodies free of footprint-collecting helpers.

void CheckFootprintInPool(const std::vector<Tok>& toks, const std::string& path,
                          std::vector<LintFinding>* findings) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].ident || toks[i].text != "ParallelFor" || toks[i + 1].text != "(") {
      continue;
    }
    const size_t open = i + 1;
    const size_t close = MatchParen(toks, open);
    for (size_t j = open + 1; j < close; ++j) {
      if (toks[j].ident && toks[j].text.rfind("DN_FP_", 0) == 0) {
        findings->push_back(
            {"fp-in-pool", path, toks[j].line + 1,
             "'" + toks[j].text +
                 "' inside a ThreadPool::ParallelFor body: footprint collection "
                 "is thread-local to the event's executing thread, so "
                 "declarations made on pool workers are silently dropped; move "
                 "the DN_FP_* to the simulation-thread caller or annotate "
                 "dn-lint: allow(fp-in-pool, <reason>)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------------
// Rules: hot-alloc, reactor-block. Flow-aware in the lexical sense: a
// DN_HOT_SCOPE(...) or DN_REACTOR_CONTEXT token opens a region reaching to the
// end of its enclosing brace block, and the rule fires on forbidden tokens
// inside it. What the region *calls into* is out of a token linter's sight —
// that half is covered by the runtime enforcement layer in
// src/analysis/contracts.cc (allocation interposer, nonblocking-fd guards).

// Allocation and container-growth identifiers forbidden in hot scopes. Method
// names only count in member-call position (after '.' or '->'); `new` always
// counts; make_shared/make_unique count in call or template position.
const std::set<std::string>& HotGrowthIdents() {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "emplace", "push_front", "emplace_front",
      "insert",    "resize",       "reserve", "append"};
  return kSet;
}

// Blocking calls forbidden in reactor context (call position required).
const std::set<std::string>& ReactorBlockingCalls() {
  static const std::set<std::string> kSet = {
      "read",    "write",   "pread",     "pwrite",    "readv",     "writev",
      "recv",    "recvfrom", "recvmsg",  "send",      "sendto",    "sendmsg",
      "connect", "accept",  "accept4",   "poll",      "ppoll",     "select",
      "pselect", "sleep",   "usleep",    "nanosleep", "sleep_for", "sleep_until",
      "wait",    "wait_for", "wait_until", "join",    "flock",     "fsync",
      "fdatasync", "system", "lock"};
  return kSet;
}

// Blocking lock types (template or constructor position).
const std::set<std::string>& ReactorBlockingTypes() {
  static const std::set<std::string> kSet = {"lock_guard", "unique_lock",
                                             "scoped_lock"};
  return kSet;
}

void CheckContractRegions(const std::vector<Tok>& toks, const SourceText& src,
                          const std::string& path,
                          std::vector<LintFinding>* findings) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || src.preproc[toks[i].line]) {
      continue;  // the macro definitions in contracts.h are not regions
    }
    const bool hot = toks[i].text == "DN_HOT_SCOPE";
    const bool reactor = toks[i].text == "DN_REACTOR_CONTEXT";
    if (!hot && !reactor) {
      continue;
    }
    size_t j = i + 1;
    if (hot) {
      if (j >= toks.size() || toks[j].text != "(") {
        continue;
      }
      j = MatchParen(toks, j);
      if (j == toks.size()) {
        continue;
      }
      ++j;
    }
    // Walk to the end of the enclosing block, skipping DN_HOT_EXEMPT
    // sub-blocks (from the marker to the end of *its* enclosing block).
    int depth = 0;
    int exempt_until = -1;  // >= 0: skipping while depth >= exempt_until
    for (; j < toks.size(); ++j) {
      const Tok& t = toks[j];
      if (!t.ident) {
        if (t.text == "{") {
          ++depth;
        } else if (t.text == "}") {
          --depth;
          if (depth < 0) {
            break;  // region (and enclosing block) ended
          }
          if (exempt_until >= 0 && depth < exempt_until) {
            exempt_until = -1;
          }
        }
        continue;
      }
      if (src.preproc[t.line]) {
        continue;
      }
      if (hot && t.text == "DN_HOT_EXEMPT" && exempt_until < 0) {
        exempt_until = depth;
        continue;
      }
      if (exempt_until >= 0) {
        continue;
      }
      const bool call = j + 1 < toks.size() && toks[j + 1].text == "(";
      const bool call_or_tmpl =
          call || (j + 1 < toks.size() && toks[j + 1].text == "<");
      const bool member =
          j > 0 && (toks[j - 1].text == "." ||
                    (toks[j - 1].text == ">" && j > 1 && toks[j - 2].text == "-"));
      if (hot) {
        const bool is_new = t.text == "new";
        const bool is_maker =
            (t.text == "make_shared" || t.text == "make_unique") && call_or_tmpl;
        const bool is_growth = HotGrowthIdents().count(t.text) > 0 && call && member;
        if (is_new || is_maker || is_growth) {
          findings->push_back(
              {"hot-alloc", path, t.line + 1,
               "'" + t.text + "' inside DN_HOT_SCOPE region opened at line " +
                   std::to_string(toks[i].line + 1) +
                   ": the annotated fast path must not allocate; hoist the "
                   "allocation out, reuse capacity, or fence a declared-cold "
                   "subpath with a DN_HOT_EXEMPT(reason) block"});
        }
      } else {
        const bool is_block_call = ReactorBlockingCalls().count(t.text) > 0 && call;
        const bool is_block_type =
            ReactorBlockingTypes().count(t.text) > 0 && call_or_tmpl;
        if (is_block_call || is_block_type) {
          findings->push_back(
              {"reactor-block", path, t.line + 1,
               "'" + t.text + "' inside DN_REACTOR_CONTEXT region opened at line " +
                   std::to_string(toks[i].line + 1) +
                   ": blocking on the epoll thread stalls every timer and "
                   "socket the node owns; use the nonblocking contracts::Guarded* "
                   "shims, post the work off-thread, or annotate dn-lint: "
                   "allow(reactor-block, <why this cannot block>)"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------------
// Rule: mutex-rank (deployment-runtime layers only). Every std::mutex member
// declared in src/wire or src/ctrl must carry a DN_MUTEX_RANK(name, rank)
// annotation in the same file, so the global lock order is total and the
// runtime inversion tracker (contracts.cc) sees every lock.

void CheckMutexRanks(const std::vector<Tok>& toks, const SourceText& src,
                     const std::string& path,
                     std::vector<LintFinding>* findings) {
  // Pass 1: names already annotated — DN_MUTEX_RANK(<name>, ...).
  std::set<std::string> ranked;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].ident && toks[i].text == "DN_MUTEX_RANK" &&
        !src.preproc[toks[i].line] && toks[i + 1].text == "(" &&
        toks[i + 2].ident) {
      ranked.insert(toks[i + 2].text);
    }
  }
  // Pass 2: declarations — `mutex <name> ;` (or brace/equals initializer).
  // References (`mutex&`), pointers, and template arguments (`<std::mutex>`)
  // never match because the token after `mutex` is not an identifier.
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].ident || toks[i].text != "mutex" || src.preproc[toks[i].line]) {
      continue;
    }
    if (!toks[i + 1].ident) {
      continue;
    }
    const std::string& term = toks[i + 2].text;
    if (term != ";" && term != "{" && term != "=") {
      continue;
    }
    const std::string& name = toks[i + 1].text;
    if (ranked.count(name) > 0) {
      continue;
    }
    findings->push_back(
        {"mutex-rank", path, toks[i].line + 1,
         "std::mutex '" + name +
             "' in the deployment runtime has no declared lock rank; add "
             "DN_MUTEX_RANK(" + name +
             ", <rank>) after the member (global order lives in "
             "src/analysis/contracts.h) so the runtime inversion tracker "
             "covers it"});
  }
}

// ---------------------------------------------------------------------------------
// Rules: include-guard, using-namespace-header.

bool IsGuardName(const std::string& name) {
  if (name.size() < 3 || !EndsWith(name, "_H_")) {
    return false;
  }
  for (char c : name) {
    if (!(std::isupper(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

void CheckHeaderHygiene(const std::vector<Tok>& toks, const SourceText& src,
                        const std::string& path,
                        std::vector<LintFinding>* findings) {
  // Gather directives: (line, keyword, first argument token text).
  struct Directive {
    size_t line;
    std::string word;
    std::string arg;
  };
  std::vector<Directive> directives;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "#" || !toks[i + 1].ident || toks[i + 1].line != toks[i].line ||
        (i > 0 && toks[i - 1].line == toks[i].line)) {
      continue;
    }
    std::string arg;
    if (i + 2 < toks.size() && toks[i + 2].ident && toks[i + 2].line == toks[i].line) {
      arg = toks[i + 2].text;
    }
    directives.push_back({toks[i].line, toks[i + 1].text, arg});
  }
  if (directives.empty() || directives.front().word != "ifndef") {
    findings->push_back({"include-guard", path, 1,
                         "header must open with an #ifndef include guard"});
  } else {
    const Directive& g = directives.front();
    if (directives.size() < 2 || directives[1].word != "define" ||
        directives[1].arg != g.arg) {
      findings->push_back({"include-guard", path, g.line + 1,
                           "#ifndef " + g.arg + " must be followed by #define " +
                               g.arg});
    } else if (!IsGuardName(g.arg)) {
      findings->push_back({"include-guard", path, g.line + 1,
                           "guard '" + g.arg +
                               "' must be an UPPER_SNAKE name ending in _H_"});
    } else if (directives.back().word != "endif") {
      findings->push_back({"include-guard", path, directives.back().line + 1,
                           "include guard is never closed by a trailing #endif"});
    }
  }
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].ident && toks[i].text == "using" && toks[i + 1].ident &&
        toks[i + 1].text == "namespace" && !src.preproc[toks[i].line]) {
      findings->push_back({"using-namespace-header", path, toks[i].line + 1,
                           "'using namespace' in a header leaks into every "
                           "includer; qualify names instead"});
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& KnownLintRules() {
  static const std::vector<std::string> kRules = {
      "raw-random",    "wall-clock",             "unordered-iter",
      "pointer-key",   "audit-message",          "log-kv-key",
      "fp-in-pool",    "hot-alloc",              "reactor-block",
      "mutex-rank",    "include-guard",          "using-namespace-header",
      "bad-suppression"};
  return kRules;
}

std::vector<LintFinding> LintSource(const std::string& path, const std::string& content,
                                    const std::string& companion_header,
                                    const LintOptions& options) {
  const std::string norm = NormalizeSlashes(path);
  const SourceText src = SplitAndBlank(content);
  const std::vector<Tok> toks = Tokenize(src);

  std::vector<LintFinding> raw_findings;
  Suppressions sup = ParseSuppressions(src, path, &raw_findings);

  bool determinism_exempt = false;
  for (const std::string& suffix : options.determinism_exempt_suffixes) {
    determinism_exempt = determinism_exempt || EndsWith(norm, suffix);
  }
  if (!determinism_exempt) {
    CheckDeterminism(toks, path, &raw_findings);
  }

  bool order_sensitive = false;
  for (const std::string& dir : options.order_sensitive_dirs) {
    order_sensitive = order_sensitive || norm.find(dir) != std::string::npos;
  }
  if (order_sensitive) {
    std::set<std::string> names;
    std::set<std::string> aliases;
    CollectUnorderedNames(toks, &names, &aliases);
    if (!companion_header.empty()) {
      const SourceText header_src = SplitAndBlank(companion_header);
      CollectUnorderedNames(Tokenize(header_src), &names, &aliases);
    }
    CheckUnorderedIteration(toks, names, aliases, path, &raw_findings);
    CheckPointerKeys(toks, path, &raw_findings);
  }

  CheckMacroContracts(toks, src, path, &raw_findings);
  CheckFootprintInPool(toks, path, &raw_findings);
  CheckContractRegions(toks, src, path, &raw_findings);

  bool mutex_ranked = false;
  for (const std::string& dir : options.mutex_rank_dirs) {
    mutex_ranked = mutex_ranked || norm.find(dir) != std::string::npos;
  }
  if (mutex_ranked) {
    CheckMutexRanks(toks, src, path, &raw_findings);
  }

  if (EndsWith(norm, ".h")) {
    CheckHeaderHygiene(toks, src, path, &raw_findings);
  }

  std::vector<LintFinding> findings;
  for (LintFinding& f : raw_findings) {
    if (f.rule != "bad-suppression" && Suppressed(sup, f.rule, f.line - 1)) {
      continue;
    }
    findings.push_back(std::move(f));
  }
  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return std::tie(a.file, a.line, a.rule, a.detail) <
                     std::tie(b.file, b.line, b.rule, b.detail);
            });
  return findings;
}

std::vector<LintFinding> LintSource(const std::string& path, const std::string& content,
                                    const LintOptions& options) {
  return LintSource(path, content, /*companion_header=*/"", options);
}

std::vector<LintFinding> LintFile(const std::string& path, const LintOptions& options) {
  auto read = [](const std::string& p, std::string* out) {
    std::ifstream in(p);
    if (!in) {
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
  };
  std::string content;
  if (!read(path, &content)) {
    return {{"io-error", path, 0, "cannot read file"}};
  }
  std::string companion;
  const std::string norm = NormalizeSlashes(path);
  for (const char* ext : {".cc", ".cpp"}) {
    if (EndsWith(norm, ext)) {
      std::string header = norm.substr(0, norm.size() - std::strlen(ext)) + ".h";
      (void)read(header, &companion);
      break;
    }
  }
  return LintSource(path, content, companion, options);
}

std::string FormatLintFindings(const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.detail << "\n";
  }
  return os.str();
}

std::string LintFindingsJson(const std::vector<LintFinding>& findings) {
  std::ostringstream os;
  os << "{\"count\":" << findings.size() << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    os << (i > 0 ? "," : "") << "{\"rule\":\"" << JsonEscape(f.rule) << "\",\"file\":\""
       << JsonEscape(f.file) << "\",\"line\":" << f.line << ",\"detail\":\""
       << JsonEscape(f.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace dumbnet
