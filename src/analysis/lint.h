// dumbnet-lint: a dependency-free, token-level source linter for project rules the
// generic toolchain cannot see. The simulator must be bit-deterministic (the
// golden-trace tests depend on it) and the invariant/telemetry layers have naming
// contracts; this lint makes both machine-checkable.
//
// Rules (stable ids, used in diagnostics and in allow-annotations):
//
//   raw-random             rand()/std::random_device/mt19937/... outside
//                          src/util/rng.{h,cc} — all randomness must flow through
//                          the seeded Rng so runs are reproducible.
//   wall-clock             system_clock/steady_clock/time()/... outside the rng
//                          and logging exemptions — simulated code must use
//                          virtual time only.
//   unordered-iter         range-for / begin() iteration over an
//                          unordered_map/unordered_set in an order-sensitive
//                          layer (sim, net, host, ctrl, switch, transport), where
//                          iteration order leaks into event order.
//   pointer-key            in the same order-sensitive layers: an associative
//                          container keyed by a pointer type, or a
//                          reinterpret_cast of a pointer to an integer —
//                          addresses vary run to run, so pointer-derived keys
//                          and orderings are hidden nondeterminism.
//   audit-message          DUMBNET_ASSERT / DUMBNET_AUDIT without a (non-empty)
//                          message argument.
//   log-kv-key             DN_LOG_KV event names and .Kv() keys must be string
//                          literals shaped like lowercase.dot.identifiers.
//   hot-alloc              allocation or container-growth tokens (new,
//                          make_shared/make_unique, push_back/insert/resize/...)
//                          lexically inside a DN_HOT_SCOPE region — the
//                          annotated no-alloc fast paths. Cold subpaths are
//                          fenced with DN_HOT_EXEMPT(reason) blocks, which the
//                          rule skips.
//   reactor-block          blocking-call tokens (read/write/recv/send/connect/
//                          poll/select/sleep*/wait*/join, mutex lock /
//                          lock_guard / unique_lock / scoped_lock) lexically
//                          inside a DN_REACTOR_CONTEXT region — code running on
//                          a wire node's epoll thread, where one blocked call
//                          stalls every timer and socket the node owns.
//   mutex-rank             a std::mutex member declared in src/wire or src/ctrl
//                          without a DN_MUTEX_RANK(name, rank) annotation in
//                          the same file — every lock in the deployment runtime
//                          must declare its place in the global lock order
//                          (src/analysis/contracts.h).
//   include-guard          headers must open with a matching
//                          #ifndef/#define ..._H_ pair and close with #endif.
//   using-namespace-header using namespace at header scope.
//   bad-suppression        a dn-lint annotation naming an unknown rule or
//                          missing its reason.
//
// Suppression: a comment of the form `dn-lint: allow(unordered-iter, reads only)`
// — i.e. allow(rule-id, reason) — on the offending line or the line directly
// above it. The reason is mandatory.
#ifndef DUMBNET_SRC_ANALYSIS_LINT_H_
#define DUMBNET_SRC_ANALYSIS_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dumbnet {

struct LintFinding {
  std::string rule;    // stable rule id, e.g. "unordered-iter"
  std::string file;    // path as given to the linter
  size_t line = 0;     // 1-based
  std::string detail;  // human-readable explanation
};

struct LintOptions {
  // Path fragments marking layers where container iteration order reaches the
  // event stream. Matched as substrings of the (slash-normalized) path.
  std::vector<std::string> order_sensitive_dirs = {
      "src/sim/", "src/net/", "src/host/",
      "src/ctrl/", "src/switch/", "src/transport/"};
  // Path fragments marking layers whose std::mutex members must carry a
  // DN_MUTEX_RANK annotation (the threaded deployment runtime).
  std::vector<std::string> mutex_rank_dirs = {"src/wire/", "src/ctrl/"};
  // Path suffixes exempt from raw-random / wall-clock (the blessed sources of
  // randomness and of real timestamps).
  std::vector<std::string> determinism_exempt_suffixes = {
      "src/util/rng.h", "src/util/rng.cc", "src/util/logging.cc",
      // The wire runtime's one blessed wall-clock source: every real-time read
      // in src/wire goes through MonotonicNowNs() so simulated code stays
      // virtual-time-only and the deployment runtime is auditable at a glance.
      "src/wire/clock.h", "src/wire/clock.cc"};
};

// Rule ids accepted in allow-annotations.
const std::vector<std::string>& KnownLintRules();

// Lints one translation unit held in memory. `path` selects which rules apply
// (header rules for *.h, layer and exemption matching). `companion_header`, when
// non-empty, is scanned for unordered-container member declarations so a .cc
// iterating a member declared in its header is still caught.
std::vector<LintFinding> LintSource(const std::string& path, const std::string& content,
                                    const std::string& companion_header,
                                    const LintOptions& options = LintOptions());
std::vector<LintFinding> LintSource(const std::string& path, const std::string& content,
                                    const LintOptions& options = LintOptions());

// Reads `path` (and `<stem>.h` next to a *.cc/*.cpp, if present) and lints it.
// Unreadable files produce a single "io-error" finding.
std::vector<LintFinding> LintFile(const std::string& path,
                                  const LintOptions& options = LintOptions());

// "file:line: [rule] detail" lines, one per finding.
std::string FormatLintFindings(const std::vector<LintFinding>& findings);

// Machine-readable form: {"count":N,"findings":[{rule,file,line,detail}...]}.
std::string LintFindingsJson(const std::vector<LintFinding>& findings);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ANALYSIS_LINT_H_
