#include "src/analysis/invariant_auditor.h"

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {

void InvariantAuditor::Register(std::string name, CheckFn check) {
  checks_.push_back(Entry{std::move(name), std::move(check)});
}

std::vector<InvariantViolation> InvariantAuditor::RunAll() {
  std::vector<InvariantViolation> found;
  for (const Entry& e : checks_) {
    if (Status s = e.check(); !s.ok()) {
      found.push_back(InvariantViolation{e.name, s.error().ToString()});
      DN_ERROR << "invariant '" << e.name << "' violated: " << s.error().ToString();
      DN_COUNTER_INC("audit.invariant_violations");
      if (telemetry::Enabled()) {
        telemetry::FlightRecorder::Global().DumpOnFailure(e.name.c_str());
      }
    }
  }
  ++runs_;
  violations_.insert(violations_.end(), found.begin(), found.end());
  return found;
}

Status InvariantAuditor::RunOne(const std::string& name) {
  for (const Entry& e : checks_) {
    if (e.name == name) {
      return e.check();
    }
  }
  return Error(ErrorCode::kNotFound, "no invariant named '" + name + "'");
}

void InvariantAuditor::AttachTo(Simulator* sim, uint64_t every_events) {
  sim->SetAuditHook([this] { RunAll(); }, every_events);
}

}  // namespace dumbnet
