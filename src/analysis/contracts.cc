#include "src/analysis/contracts.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "src/telemetry/telemetry.h"

namespace dumbnet {
namespace contracts {

namespace {

// Guarded syscall helpers shared by both build modes.
bool FdIsNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && (flags & O_NONBLOCK) != 0;
}

}  // namespace

#ifdef DUMBNET_CONTRACTS_ENABLED

namespace internal {
std::atomic<bool> g_enabled{false};
thread_local ThreadState g_tls;
}  // namespace internal

namespace {

std::atomic<uint64_t> g_hot_allocs{0};
std::atomic<uint64_t> g_rank_inversions{0};
std::atomic<uint64_t> g_reactor_blocks{0};
std::atomic<FailMode> g_fail_mode{FailMode::kCount};
std::atomic<ViolationHook> g_hook{nullptr};

// Most recent violation, rendered into fixed storage without allocating.
// Guarded by a spinlock so concurrent writers cannot interleave bytes; readers
// (tests, failure reports) race benignly against the next violation.
std::atomic_flag g_last_lock = ATOMIC_FLAG_INIT;
char g_last_message[512];

const char* KindName(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kHotAlloc:
      return "hot-alloc";
    case Violation::Kind::kRankInversion:
      return "rank-inversion";
    case Violation::Kind::kReactorBlock:
      return "reactor-block";
  }
  return "?";
}

// Records, reports, and (in kAbort mode) dies. Must not allocate on the
// kHotAlloc path: it can run inside operator new. snprintf into fixed buffers
// only. The caller has already set ts.in_hook.
void ReportViolation(const Violation& v) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "contract violation [%s] scope=%s %s (a=%llu b=%llu)",
                KindName(v.kind), v.scope != nullptr ? v.scope : "<none>",
                v.detail != nullptr ? v.detail : "",
                static_cast<unsigned long long>(v.a),
                static_cast<unsigned long long>(v.b));
  while (g_last_lock.test_and_set(std::memory_order_acquire)) {
  }
  std::strncpy(g_last_message, buf, sizeof(g_last_message) - 1);
  g_last_message[sizeof(g_last_message) - 1] = '\0';
  g_last_lock.clear(std::memory_order_release);

  const ViolationHook hook = g_hook.load(std::memory_order_relaxed);
  if (hook != nullptr) {
    hook(v);
  }
  if (g_fail_mode.load(std::memory_order_relaxed) == FailMode::kAbort) {
    const size_t len = std::strlen(buf);
    buf[len < sizeof(buf) - 1 ? len : sizeof(buf) - 2] = '\n';
    ssize_t ignored = ::write(2, buf, len + 1);
    (void)ignored;
    std::abort();
  }
}

}  // namespace

namespace internal {

void NoteHotAlloc(std::size_t bytes) {
  ThreadState& ts = g_tls;
  ts.in_hook = true;
  g_hot_allocs.fetch_add(1, std::memory_order_relaxed);
  Violation v;
  v.kind = Violation::Kind::kHotAlloc;
  const int depth = ts.hot_depth;
  const int cap = static_cast<int>(sizeof(ts.scope_names) / sizeof(ts.scope_names[0]));
  v.scope = depth > 0 && depth <= cap ? ts.scope_names[depth - 1] : "<deep>";
  v.detail = "operator new inside DN_HOT_SCOPE";
  v.a = bytes;
  ReportViolation(v);
  ts.in_hook = false;
}

}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

void SetFailMode(FailMode mode) { g_fail_mode.store(mode, std::memory_order_relaxed); }
FailMode GetFailMode() { return g_fail_mode.load(std::memory_order_relaxed); }
void SetViolationHook(ViolationHook hook) {
  g_hook.store(hook, std::memory_order_relaxed);
}

CounterSnapshot Counters() {
  CounterSnapshot s;
  s.hot_allocs = g_hot_allocs.load(std::memory_order_relaxed);
  s.rank_inversions = g_rank_inversions.load(std::memory_order_relaxed);
  s.reactor_blocks = g_reactor_blocks.load(std::memory_order_relaxed);
  return s;
}

void ResetCounters() {
  g_hot_allocs.store(0, std::memory_order_relaxed);
  g_rank_inversions.store(0, std::memory_order_relaxed);
  g_reactor_blocks.store(0, std::memory_order_relaxed);
  while (g_last_lock.test_and_set(std::memory_order_acquire)) {
  }
  g_last_message[0] = '\0';
  g_last_lock.clear(std::memory_order_release);
}

void PublishTelemetry() {
  const CounterSnapshot s = Counters();
  auto publish = [](const char* name, uint64_t value) {
    telemetry::Counter* c = telemetry::MetricsRegistry::Global().GetCounter(name);
    c->Reset();
    c->Inc(value);
  };
  publish("contracts.hot_allocs", s.hot_allocs);
  publish("contracts.rank_inversions", s.rank_inversions);
  publish("contracts.reactor_blocks", s.reactor_blocks);
}

const char* LastViolationMessage() { return g_last_message; }

int HotDepth() { return internal::g_tls.hot_depth; }
int ExemptDepth() { return internal::g_tls.exempt_depth; }
int ReactorDepth() { return internal::g_tls.reactor_depth; }

const char* CurrentHotScope() {
  const internal::ThreadState& ts = internal::g_tls;
  const int cap = static_cast<int>(sizeof(ts.scope_names) / sizeof(ts.scope_names[0]));
  if (ts.hot_depth <= 0 || ts.hot_depth > cap) {
    return nullptr;
  }
  return ts.scope_names[ts.hot_depth - 1];
}

// --- Lock ranks --------------------------------------------------------------------

namespace {

struct RankInfo {
  int rank = -1;
  const char* name = nullptr;
};

// Address -> declared rank. Mutex addresses here never feed simulation state or
// ordering visible to a run — the map exists only to diagnose lock misuse.
std::mutex& RankRegistryMu() {
  static std::mutex mu;
  return mu;
}
// dn-lint: allow(pointer-key, diagnostic registry only; order never reaches the event stream)
std::map<const void*, RankInfo>& RankRegistry() {
  static std::map<const void*, RankInfo> registry;
  return registry;
}

}  // namespace

void RegisterMutexRank(const void* mutex_addr, int rank, const char* name) {
  std::lock_guard<std::mutex> lock(RankRegistryMu());
  RankRegistry()[mutex_addr] = RankInfo{rank, name};
}

void UnregisterMutexRank(const void* mutex_addr) {
  std::lock_guard<std::mutex> lock(RankRegistryMu());
  RankRegistry().erase(mutex_addr);
}

int LookupMutexRank(const void* mutex_addr) {
  std::lock_guard<std::mutex> lock(RankRegistryMu());
  auto it = RankRegistry().find(mutex_addr);
  return it == RankRegistry().end() ? -1 : it->second.rank;
}

void NoteLockAcquire(const void* mutex_addr) {
  if (!Enabled()) {
    return;
  }
  RankInfo info;
  {
    std::lock_guard<std::mutex> lock(RankRegistryMu());
    auto it = RankRegistry().find(mutex_addr);
    if (it == RankRegistry().end()) {
      return;  // unranked mutexes are invisible to the tracker
    }
    info = it->second;
  }
  internal::ThreadState& ts = internal::g_tls;
  for (int i = 0; i < ts.held_count; ++i) {
    if (ts.held[i].rank >= info.rank) {
      g_rank_inversions.fetch_add(1, std::memory_order_relaxed);
      ts.in_hook = true;
      Violation v;
      v.kind = Violation::Kind::kRankInversion;
      v.scope = info.name;
      v.detail = "acquiring a rank at or below one already held";
      v.a = static_cast<uint64_t>(ts.held[i].rank);
      v.b = static_cast<uint64_t>(info.rank);
      ReportViolation(v);
      ts.in_hook = false;
      break;
    }
  }
  const int cap = static_cast<int>(sizeof(ts.held) / sizeof(ts.held[0]));
  if (ts.held_count < cap) {
    ts.held[ts.held_count] = {mutex_addr, info.rank, info.name};
    ++ts.held_count;
  }
}

void NoteLockRelease(const void* mutex_addr) {
  if (!kCompiledIn) {
    return;
  }
  internal::ThreadState& ts = internal::g_tls;
  for (int i = ts.held_count - 1; i >= 0; --i) {
    if (ts.held[i].addr == mutex_addr) {
      for (int j = i; j + 1 < ts.held_count; ++j) {
        ts.held[j] = ts.held[j + 1];
      }
      --ts.held_count;
      return;
    }
  }
}

// --- Reactor blocking guards -------------------------------------------------------

namespace {

void NoteReactorBlock(const char* what, const char* detail) {
  g_reactor_blocks.fetch_add(1, std::memory_order_relaxed);
  internal::ThreadState& ts = internal::g_tls;
  ts.in_hook = true;
  Violation v;
  v.kind = Violation::Kind::kReactorBlock;
  v.scope = what;
  v.detail = detail;
  ReportViolation(v);
  ts.in_hook = false;
}

void CheckReactorFd(int fd, const char* what) {
  if (!Enabled() || internal::g_tls.reactor_depth == 0) {
    return;
  }
  if (!FdIsNonBlocking(fd)) {
    NoteReactorBlock(what, "blocking fd used on the reactor thread");
  }
}

}  // namespace

void NoteBlockingPoint(const char* what) {
  if (!Enabled() || internal::g_tls.reactor_depth == 0) {
    return;
  }
  NoteReactorBlock(what, "declared blocking wait reached in reactor context");
}

long GuardedRecv(int fd, void* buf, std::size_t len, int flags) {
  CheckReactorFd(fd, "recv");
  return ::recv(fd, buf, len, flags);
}

long GuardedSend(int fd, const void* buf, std::size_t len, int flags) {
  CheckReactorFd(fd, "send");
  return ::send(fd, buf, len, flags);
}

int GuardedConnect(int fd, const void* addr, unsigned int addrlen) {
  CheckReactorFd(fd, "connect");
  return ::connect(fd, static_cast<const sockaddr*>(addr), addrlen);
}

#else  // !DUMBNET_CONTRACTS_ENABLED

void NoteBlockingPoint(const char*) {}

long GuardedRecv(int fd, void* buf, std::size_t len, int flags) {
  return ::recv(fd, buf, len, flags);
}

long GuardedSend(int fd, const void* buf, std::size_t len, int flags) {
  return ::send(fd, buf, len, flags);
}

int GuardedConnect(int fd, const void* addr, unsigned int addrlen) {
  return ::connect(fd, static_cast<const sockaddr*>(addr), addrlen);
}

#endif  // DUMBNET_CONTRACTS_ENABLED

}  // namespace contracts
}  // namespace dumbnet

// --- Global allocation interposer --------------------------------------------------
// Replaces the global operator new/delete family so every C++ allocation in a
// binary that links this TU flows through contracts::NoteAlloc. malloc-based so
// the sanitizers' malloc interceptors still see every block, and so throwing,
// nothrow, and aligned forms can share one deallocation path (free). These are
// strong definitions: referencing any contracts symbol (every DN_HOT_SCOPE call
// site does) pulls this object in and overrides the library operators
// process-wide.

#ifdef DUMBNET_CONTRACTS_ENABLED

#include <new>

namespace {

void* ContractsAlloc(std::size_t size) {
  dumbnet::contracts::NoteAlloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void* ContractsAllocAligned(std::size_t size, std::size_t align) {
  dumbnet::contracts::NoteAlloc(size);
  void* p = nullptr;
  if (align < sizeof(void*)) {
    align = sizeof(void*);
  }
  if (posix_memalign(&p, align, size != 0 ? size : 1) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = ContractsAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) {
  void* p = ContractsAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ContractsAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ContractsAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = ContractsAllocAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = ContractsAllocAligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return ContractsAllocAligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return ContractsAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // DUMBNET_CONTRACTS_ENABLED
