// Static fabric-state checker: analyses a serialized topology plus the path
// graphs hosts would cache, *without* running the simulator — the DumbNet
// analogue of static forwarding-rule analysis. Backs the `dumbnet-check` CLI.
//
// Path-graph file format (line-oriented, like src/topo/serialize.h):
//
//   # comment
//   pathgraph <src_uid> <dst_uid>
//   primary <uid> <uid> ...
//   backup <uid> ...                 # optional
//   plink <uid_a> <port_a> <uid_b> <port_b>
//   end
#ifndef DUMBNET_SRC_ANALYSIS_FABRIC_CHECK_H_
#define DUMBNET_SRC_ANALYSIS_FABRIC_CHECK_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/analysis/audit.h"
#include "src/routing/wire_types.h"
#include "src/topo/topology.h"
#include "src/util/result.h"

namespace dumbnet {

struct CheckFinding {
  std::string check;   // stable identifier, e.g. "primary-loop"
  std::string detail;  // human-readable explanation
};

// Algorithm 1 parameters the semantic verifier checks graphs against. Defaults
// mirror PathGraphParams so controller-generated graphs verify out of the box.
struct PathGraphVerifyOptions {
  uint32_t s = 2;        // detour window length (hops)
  uint32_t epsilon = 2;  // detour slack: window detours may use s + epsilon hops
  // Maximum tolerated fraction of backup edges shared with the primary. 1.0
  // (default) never fires: on single-path topologies full overlap is correct
  // ("unless it is unavoidable"); tighten for fabrics known to be multipath.
  double max_backup_overlap = 1.0;
};

struct FabricCheckOptions {
  // Tag stack budget: hop tags + destination port + ø must fit.
  size_t max_tag_depth = audit::kMaxTagStackDepth;
  // When true, RunDumbnetCheck also runs VerifyPathGraphSemantics.
  bool verify_semantics = false;
  PathGraphVerifyOptions verify;
  // When non-empty, RunDumbnetCheck writes findings as JSON to this path.
  std::string json_path;
};

// Checks the topology alone: structural validity, disconnected (unreachable)
// hosts, hosts with a down or missing uplink.
std::vector<CheckFinding> CheckTopology(const Topology& topo,
                                        const FabricCheckOptions& opts = {});

// Checks cached path graphs against the topology ground truth: malformed graphs,
// port conflicts and dangling links (links absent from or wired differently in
// the fabric), loops in primary paths, primary/backup hops over failed links,
// backups sharing a failed link with their primary, and tag stacks exceeding the
// one-byte header budget.
std::vector<CheckFinding> CheckPathGraphs(const Topology& topo,
                                          const std::vector<WirePathGraph>& graphs,
                                          const FabricCheckOptions& opts = {});

// Both of the above.
std::vector<CheckFinding> CheckFabric(const Topology& topo,
                                      const std::vector<WirePathGraph>& graphs,
                                      const FabricCheckOptions& opts = {});

// Semantic verifier (Section 4.3 / Algorithm 1): checks each graph against the
// topology ground truth for
//   pathgraph-unknown-switch  a path uid absent from the topology snapshot
//   path-broken-edge          consecutive primary/backup uids with no up link
//   backup-loop               backup path revisits a switch
//   detour-incomplete         a vertex within the window budget
//                             (dist(a,x)+dist(x,b) <= s+epsilon) is missing
//   detour-not-eps-good       the fabric admits an (s+epsilon)-hop detour around
//                             a window but the subgraph does not contain one
//   vertex-cannot-reach-dst   a subgraph vertex cannot reach dst inside the
//                             subgraph (failover could strand a packet there)
//   backup-overlap            backup shares more than max_backup_overlap of its
//                             edges with the primary
// Loop-freedom of primaries and the tag-stack budget are covered by
// CheckPathGraphs; run both for full coverage (RunDumbnetCheck does).
std::vector<CheckFinding> VerifyPathGraphSemantics(
    const Topology& topo, const std::vector<WirePathGraph>& graphs,
    const PathGraphVerifyOptions& vopts = {});

// Machine-readable form: {"count":N,"findings":[{"check":...,"detail":...}]}.
std::string CheckFindingsJson(const std::vector<CheckFinding>& findings);

// Path-graph (de)serialization in the text format above.
std::string SerializeWirePathGraphs(const std::vector<WirePathGraph>& graphs);
Result<std::vector<WirePathGraph>> ParseWirePathGraphs(const std::string& text);
Status SaveWirePathGraphs(const std::vector<WirePathGraph>& graphs,
                          const std::string& path);
Result<std::vector<WirePathGraph>> LoadWirePathGraphs(const std::string& path);

// CLI driver shared by tools/dumbnet_check.cc and tests: loads `topo_path` (and
// optional path-graph files), runs every check, reports findings to `out`.
// Returns 0 when clean, 1 when findings were reported, 2 on a load/parse error.
int RunDumbnetCheck(const std::string& topo_path,
                    const std::vector<std::string>& pathgraph_paths,
                    const FabricCheckOptions& opts, std::ostream& out);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ANALYSIS_FABRIC_CHECK_H_
