// Static fabric-state checker: analyses a serialized topology plus the path
// graphs hosts would cache, *without* running the simulator — the DumbNet
// analogue of static forwarding-rule analysis. Backs the `dumbnet-check` CLI.
//
// Path-graph file format (line-oriented, like src/topo/serialize.h):
//
//   # comment
//   pathgraph <src_uid> <dst_uid>
//   primary <uid> <uid> ...
//   backup <uid> ...                 # optional
//   plink <uid_a> <port_a> <uid_b> <port_b>
//   end
#ifndef DUMBNET_SRC_ANALYSIS_FABRIC_CHECK_H_
#define DUMBNET_SRC_ANALYSIS_FABRIC_CHECK_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/analysis/audit.h"
#include "src/routing/wire_types.h"
#include "src/topo/topology.h"
#include "src/util/result.h"

namespace dumbnet {

struct CheckFinding {
  std::string check;   // stable identifier, e.g. "primary-loop"
  std::string detail;  // human-readable explanation
};

struct FabricCheckOptions {
  // Tag stack budget: hop tags + destination port + ø must fit.
  size_t max_tag_depth = audit::kMaxTagStackDepth;
};

// Checks the topology alone: structural validity, disconnected (unreachable)
// hosts, hosts with a down or missing uplink.
std::vector<CheckFinding> CheckTopology(const Topology& topo,
                                        const FabricCheckOptions& opts = {});

// Checks cached path graphs against the topology ground truth: malformed graphs,
// port conflicts and dangling links (links absent from or wired differently in
// the fabric), loops in primary paths, primary/backup hops over failed links,
// backups sharing a failed link with their primary, and tag stacks exceeding the
// one-byte header budget.
std::vector<CheckFinding> CheckPathGraphs(const Topology& topo,
                                          const std::vector<WirePathGraph>& graphs,
                                          const FabricCheckOptions& opts = {});

// Both of the above.
std::vector<CheckFinding> CheckFabric(const Topology& topo,
                                      const std::vector<WirePathGraph>& graphs,
                                      const FabricCheckOptions& opts = {});

// Path-graph (de)serialization in the text format above.
std::string SerializeWirePathGraphs(const std::vector<WirePathGraph>& graphs);
Result<std::vector<WirePathGraph>> ParseWirePathGraphs(const std::string& text);
Status SaveWirePathGraphs(const std::vector<WirePathGraph>& graphs,
                          const std::string& path);
Result<std::vector<WirePathGraph>> LoadWirePathGraphs(const std::string& path);

// CLI driver shared by tools/dumbnet_check.cc and tests: loads `topo_path` (and
// optional path-graph files), runs every check, reports findings to `out`.
// Returns 0 when clean, 1 when findings were reported, 2 on a load/parse error.
int RunDumbnetCheck(const std::string& topo_path,
                    const std::vector<std::string>& pathgraph_paths,
                    const FabricCheckOptions& opts, std::ostream& out);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ANALYSIS_FABRIC_CHECK_H_
