// The DumbNet invariant catalog (paper Sections 4.1–4.3): pure checking functions
// over fabric state, each returning Ok or the first violation found. They are used
// three ways — directly from tests, registered on an InvariantAuditor for periodic
// audited-mode runs, and from the DUMBNET_AUDIT call sites in production code.
#ifndef DUMBNET_SRC_ANALYSIS_INVARIANTS_H_
#define DUMBNET_SRC_ANALYSIS_INVARIANTS_H_

#include <cstdint>

#include "src/analysis/audit.h"
#include "src/analysis/invariant_auditor.h"
#include "src/host/path_table.h"
#include "src/host/topo_cache.h"
#include "src/routing/path_graph.h"
#include "src/routing/tags.h"
#include "src/routing/topo_db.h"
#include "src/routing/wire_types.h"
#include "src/topo/topology.h"
#include "src/util/result.h"

namespace dumbnet {

// --- Tag stacks (Section 3.2) ----------------------------------------------------
// A well-formed on-the-wire tag stack: within the one-byte-per-hop header budget,
// every element a valid port number (1..kMaxPorts) or the reserved kIdQueryTag,
// and — when `expect_terminator` — exactly one ø, in final position.
Status AuditTagStack(const TagList& tags, bool expect_terminator,
                     size_t max_depth = audit::kMaxTagStackDepth);

// --- Path graphs (Section 4.3) ---------------------------------------------------
// Wire form: primary/backup endpoints match src_uid/dst_uid, every consecutive
// primary (and backup) hop is covered by a listed link, no self-links or duplicate
// (uid, port) attach points, and the link set is connected to src_uid — a dangling
// WireLink that touches neither path nor any detour is a corruption.
Status AuditWirePathGraph(const WirePathGraph& graph);

// Index form, against the topology it was built from: primary/backup endpoints
// match, all referenced links exist, are up, and join two subgraph vertices, and
// the primary is loop-free (Algorithm 1 output properties).
Status AuditPathGraph(const Topology& topo, const PathGraph& pg);

// --- Host caches (Section 5.2) ---------------------------------------------------
// TopoCache ↔ PathTable coherence: every installed route's UID path runs over
// switches the cache knows, its tag list is exactly one tag per switch (final host
// port included), within budget, and the entry's destination matches the cache's
// host directory.
Status AuditCacheCoherence(const TopoCache& cache, const PathTable& table);

// --- Controller database (Sections 4.1, 4.2) -------------------------------------
// TopoDb vs the live network: every discovered switch/host exists in the ground
// truth with the same attach point, and — when `require_fresh_links` — every link
// the database believes is up is really up (a stale up-mark after a failure patch
// is exactly the "ghost topology" failure class). Pass false for periodic audits
// taken mid-simulation, where a notification may legitimately still be in flight;
// pass true at quiescent points (after recovery settles).
Status AuditTopoDbAgainstTruth(const TopoDb& db, const Topology& truth,
                               bool require_fresh_links = true);

// --- Registration helpers ---------------------------------------------------------
// Register the catalog on an auditor. Pointers must outlive the auditor.
void RegisterTopologyInvariants(InvariantAuditor& auditor, const Topology* topo);
void RegisterCacheInvariants(InvariantAuditor& auditor, const TopoCache* cache,
                             const PathTable* table, uint32_t host_index);
void RegisterTopoDbInvariants(InvariantAuditor& auditor, const TopoDb* db,
                              const Topology* truth);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ANALYSIS_INVARIANTS_H_
