#include "src/analysis/bench_compare.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>

namespace dumbnet {

namespace {

// Minimal recursive-descent parser for the reporter's subset of JSON: an array
// of objects whose values are strings, numbers, or one level of string-valued
// object ("params"). No escapes beyond \" and \\ are needed or supported.
class BenchJsonParser {
 public:
  explicit BenchJsonParser(const std::string& text) : text_(text) {}

  Result<std::vector<BenchRow>> Parse() {
    std::vector<BenchRow> rows;
    SkipSpace();
    if (!Consume('[')) {
      return Fail("expected '['");
    }
    SkipSpace();
    if (Consume(']')) {
      return rows;
    }
    for (;;) {
      auto row = ParseRow();
      if (!row.ok()) {
        return row.error();
      }
      rows.push_back(std::move(row.value()));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        break;
      }
      return Fail("expected ',' or ']' after row");
    }
    return rows;
  }

 private:
  Error Fail(const std::string& what) {
    std::ostringstream os;
    os << "bench json: " << what << " at offset " << pos_;
    return Error(ErrorCode::kInvalidArgument, os.str());
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    SkipSpace();
    if (!Consume('"')) {
      return Fail("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;  // take the escaped character literally
      }
      out.push_back(text_[pos_++]);
    }
    if (!Consume('"')) {
      return Fail("unterminated string");
    }
    return out;
  }

  Result<double> ParseNumber() {
    SkipSpace();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) {
      return Fail("expected a number");
    }
    pos_ += static_cast<size_t>(end - start);
    return v;
  }

  Result<BenchRow> ParseRow() {
    SkipSpace();
    if (!Consume('{')) {
      return Fail("expected '{'");
    }
    BenchRow row;
    SkipSpace();
    if (Consume('}')) {
      return row;
    }
    for (;;) {
      auto key = ParseString();
      if (!key.ok()) {
        return key.error();
      }
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      if (key.value() == "value") {
        auto v = ParseNumber();
        if (!v.ok()) {
          return v.error();
        }
        row.value = v.value();
      } else if (key.value() == "params") {
        SkipSpace();
        if (!Consume('{')) {
          return Fail("expected '{' for params");
        }
        SkipSpace();
        if (!Consume('}')) {
          for (;;) {
            auto pk = ParseString();
            if (!pk.ok()) {
              return pk.error();
            }
            SkipSpace();
            if (!Consume(':')) {
              return Fail("expected ':' in params");
            }
            auto pv = ParseString();
            if (!pv.ok()) {
              return pv.error();
            }
            row.params.emplace_back(std::move(pk.value()), std::move(pv.value()));
            SkipSpace();
            if (Consume(',')) {
              continue;
            }
            if (Consume('}')) {
              break;
            }
            return Fail("expected ',' or '}' in params");
          }
        }
      } else {
        auto v = ParseString();
        if (!v.ok()) {
          return v.error();
        }
        if (key.value() == "bench") {
          row.bench = std::move(v.value());
        } else if (key.value() == "metric") {
          row.metric = std::move(v.value());
        } else if (key.value() == "unit") {
          row.unit = std::move(v.value());
        }  // unknown string fields are ignored
      }
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        break;
      }
      return Fail("expected ',' or '}' after field");
    }
    return row;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string BenchRow::Key() const {
  auto sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string key = bench + "/" + metric;
  for (const auto& [k, v] : sorted) {
    key += "{" + k + "=" + v + "}";
  }
  return key;
}

Result<std::vector<BenchRow>> ParseBenchJson(const std::string& text) {
  return BenchJsonParser(text).Parse();
}

bool LowerIsBetter(const std::string& unit) {
  return unit == "ns" || unit == "us" || unit == "ms" || unit == "s";
}

std::vector<CheckFinding> CompareBenchRows(const std::vector<BenchRow>& baseline,
                                           const std::vector<BenchRow>& current,
                                           double tolerance) {
  std::map<std::string, const BenchRow*> got;
  for (const BenchRow& row : current) {
    got[row.Key()] = &row;
  }
  std::vector<CheckFinding> findings;
  for (const BenchRow& base : baseline) {
    auto it = got.find(base.Key());
    if (it == got.end()) {
      findings.push_back(
          {"bench-missing", base.Key() + " present in baseline but not in this run"});
      continue;
    }
    const BenchRow& cur = *it->second;
    const bool lower_better = LowerIsBetter(base.unit);
    // Worse-than-baseline fraction; positive means regressed.
    double worse;
    if (base.value == 0.0) {
      worse = cur.value == base.value ? 0.0 : 1.0;
    } else if (lower_better) {
      worse = cur.value / base.value - 1.0;
    } else {
      worse = 1.0 - cur.value / base.value;
    }
    if (worse > tolerance) {
      std::ostringstream os;
      os << base.Key() << " regressed " << static_cast<int>(worse * 100.0 + 0.5)
         << "%: baseline " << base.value << " " << base.unit << ", now " << cur.value
         << " " << cur.unit << " (" << (lower_better ? "lower" : "higher")
         << " is better, tolerance " << static_cast<int>(tolerance * 100.0 + 0.5)
         << "%)";
      findings.push_back({"bench-regression", os.str()});
    }
  }
  return findings;
}

}  // namespace dumbnet
