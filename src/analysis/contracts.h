// Hot-path contracts: machine-checked purity of the paths the paper's latency
// claims hinge on (PathTable lookup, tag push/forward, the wire reactor loop).
//
// DumbNet moves all intelligence to hosts and the controller, so the host fast
// path must run "as fast as the hardware allows". Nothing in a conventional
// toolchain stops a future change from adding an allocation, a blocking
// syscall, or a lock-order inversion to those paths — this layer makes each a
// checked contract instead of a convention. Three annotation families:
//
//   DN_HOT_SCOPE(name)       — from here to the end of the enclosing block is a
//                              no-alloc region. The runtime interposer counts
//                              (or aborts on) any operator-new reached inside;
//                              dumbnet-lint's hot-alloc rule flags allocation
//                              and container-growth tokens lexically inside.
//   DN_HOT_EXEMPT(reason)    — declares the enclosing sub-block a cold subpath
//                              of a hot scope (cache-miss rebind, error paths).
//                              Both checkers skip it; the reason is mandatory.
//   DN_REACTOR_CONTEXT;      — this block runs on a wire node's epoll thread.
//                              Blocking syscalls here stall every timer and
//                              socket the node owns. dumbnet-lint's
//                              reactor-block rule flags blocking-call tokens;
//                              at runtime the Guarded* transport shims verify
//                              every fd touched here is O_NONBLOCK, and
//                              DN_BLOCKING_POINT(what) flags declared blocking
//                              waits (e.g. future::get) reached on the loop.
//   DN_MUTEX_RANK(m, rank)   — declares `m`'s place in the global lock order
//                              (ranks must be acquired in strictly increasing
//                              order). The runtime tracker flags an inversion
//                              the moment a contracts::LockGuard acquires a
//                              rank at or below one already held; dumbnet-lint's
//                              mutex-rank rule requires the annotation on every
//                              std::mutex member in src/wire + src/ctrl.
//
// Two gates stack, mirroring telemetry/footprints:
//   - Compile time: CMake option DUMBNET_CONTRACTS (ON by default) defines
//     DUMBNET_CONTRACTS_ENABLED. OFF compiles every macro away and removes the
//     operator-new interposer entirely; the API stays linkable.
//   - Runtime: SetEnabled(true) opts a process in (default OFF — enforcement
//     costs a TLS read per allocation and an fcntl per guarded reactor-side
//     syscall, so only gating runs pay it). Benches and the CI selftest enable
//     it; violations are counted (contracts.hot_allocs etc. after
//     PublishTelemetry) or fatal under SetFailMode(kAbort).
//
// Threading: region state is thread-local, so scopes opened on one thread never
// leak to another; violation counters are process-wide relaxed atomics.
#ifndef DUMBNET_SRC_ANALYSIS_CONTRACTS_H_
#define DUMBNET_SRC_ANALYSIS_CONTRACTS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace dumbnet {
namespace contracts {

// -----------------------------------------------------------------------------------
// Global lock-rank table. Every DN_MUTEX_RANK in the tree draws from here so the
// total order is documented in one place. Ranks are acquired strictly
// increasing; a thread holding rank R may only acquire ranks > R.
inline constexpr int kRankWirePingWaiter = 100;  // PingWaiter::mu (app <-> node)
inline constexpr int kRankWireReactorPost = 200; // Reactor::post_mu_ (innermost)

enum class FailMode : uint8_t {
  kCount = 0,  // bump counters, record the violation, keep going (default)
  kAbort,      // write a one-line report to stderr and abort() at the site
};

// One detected contract violation. Everything is a pointer to static storage or
// a plain integer — building this must not allocate (it is created inside the
// operator-new interposer).
struct Violation {
  enum class Kind : uint8_t { kHotAlloc = 0, kRankInversion, kReactorBlock };
  Kind kind = Kind::kHotAlloc;
  const char* scope = nullptr;   // innermost hot scope / blocking point / mutex name
  const char* detail = nullptr;  // static description of what tripped
  uint64_t a = 0;                // hot-alloc: bytes; rank: held rank
  uint64_t b = 0;                // rank: acquiring rank
};

// Violation totals since process start (or the last ResetCounters). perf_core
// diffs these around each bench to attribute allocations per hot scope.
struct CounterSnapshot {
  uint64_t hot_allocs = 0;
  uint64_t rank_inversions = 0;
  uint64_t reactor_blocks = 0;
};

#ifdef DUMBNET_CONTRACTS_ENABLED
inline constexpr bool kCompiledIn = true;

namespace internal {
// Process-wide opt-in bit (relaxed: flipping mid-run only blurs coverage).
extern std::atomic<bool> g_enabled;

// Per-thread region state. Deliberately a trivial, zero-initialized aggregate:
// a non-trivially-destructible thread_local would register a TLS destructor via
// __cxa_thread_atexit, which allocates — inside the allocation interposer that
// would recurse.
struct ThreadState {
  int hot_depth;
  int exempt_depth;
  int reactor_depth;
  bool in_hook;  // contracts bookkeeping is running; suppress re-entry
  const char* scope_names[16];
  struct Held {
    const void* addr;
    int rank;
    const char* name;
  } held[16];
  int held_count;
};
extern thread_local ThreadState g_tls;

void NoteHotAlloc(std::size_t bytes);
}  // namespace internal

inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on);

// Called by the global operator-new replacement on every allocation. Cheap when
// disabled or outside a hot scope: one relaxed atomic load + one TLS read.
inline void NoteAlloc(std::size_t bytes) {
  if (!Enabled()) {
    return;
  }
  internal::ThreadState& ts = internal::g_tls;
  if (ts.hot_depth == 0 || ts.exempt_depth > 0 || ts.in_hook) {
    return;
  }
  internal::NoteHotAlloc(bytes);
}

void SetFailMode(FailMode mode);
FailMode GetFailMode();

// Test/observer hook, called (with internal re-entry protection) on every
// violation. The callback must not throw; it may allocate.
using ViolationHook = void (*)(const Violation&);
void SetViolationHook(ViolationHook hook);

CounterSnapshot Counters();
void ResetCounters();

// Copies contract counters into the telemetry registry as contracts.hot_allocs,
// contracts.rank_inversions, contracts.reactor_blocks (replacing any previous
// published value). Explicit because DN_COUNTER_INC's registry lookup allocates
// on first use — it can never run inside the interposer itself.
void PublishTelemetry();

// Human rendering of the most recent violation ("" when none yet); fixed
// storage, filled without allocating. For tests and failure reports.
const char* LastViolationMessage();

// --- Region RAII (used via the DN_* macros below) ----------------------------------

class HotScope {
 public:
  explicit HotScope(const char* name) {
    if (!Enabled()) {
      return;
    }
    internal::ThreadState& ts = internal::g_tls;
    if (ts.hot_depth < static_cast<int>(sizeof(ts.scope_names) /
                                        sizeof(ts.scope_names[0]))) {
      ts.scope_names[ts.hot_depth] = name;
    }
    ++ts.hot_depth;
    entered_ = true;
  }
  ~HotScope() {
    if (entered_) {
      --internal::g_tls.hot_depth;
    }
  }
  HotScope(const HotScope&) = delete;
  HotScope& operator=(const HotScope&) = delete;

 private:
  bool entered_ = false;
};

class HotExempt {
 public:
  explicit HotExempt(const char* /*reason*/) {
    if (!Enabled()) {
      return;
    }
    ++internal::g_tls.exempt_depth;
    entered_ = true;
  }
  ~HotExempt() {
    if (entered_) {
      --internal::g_tls.exempt_depth;
    }
  }
  HotExempt(const HotExempt&) = delete;
  HotExempt& operator=(const HotExempt&) = delete;

 private:
  bool entered_ = false;
};

class ReactorScope {
 public:
  ReactorScope() {
    if (!Enabled()) {
      return;
    }
    ++internal::g_tls.reactor_depth;
    entered_ = true;
  }
  ~ReactorScope() {
    if (entered_) {
      --internal::g_tls.reactor_depth;
    }
  }
  ReactorScope(const ReactorScope&) = delete;
  ReactorScope& operator=(const ReactorScope&) = delete;

 private:
  bool entered_ = false;
};

// Depth accessors for the region-stack unit tests.
int HotDepth();
int ExemptDepth();
int ReactorDepth();
// Name of the innermost open hot scope on this thread, or nullptr.
const char* CurrentHotScope();

// --- Lock-rank tracking ------------------------------------------------------------

// Registry entry creation/removal; DN_MUTEX_RANK plants a registrar member.
void RegisterMutexRank(const void* mutex_addr, int rank, const char* name);
void UnregisterMutexRank(const void* mutex_addr);
// Rank registered for `mutex_addr`, or -1 when unranked.
int LookupMutexRank(const void* mutex_addr);

// Called by the lock wrappers around acquire/release. Acquire is checked
// *before* blocking on the mutex, so an inversion is flagged even when the
// interleaving that would deadlock never happens to run.
void NoteLockAcquire(const void* mutex_addr);
void NoteLockRelease(const void* mutex_addr);

class MutexRankRegistrar {
 public:
  MutexRankRegistrar(const void* mutex_addr, int rank, const char* name)
      : addr_(mutex_addr) {
    RegisterMutexRank(mutex_addr, rank, name);
  }
  ~MutexRankRegistrar() { UnregisterMutexRank(addr_); }
  MutexRankRegistrar(const MutexRankRegistrar&) = delete;
  MutexRankRegistrar& operator=(const MutexRankRegistrar&) = delete;

 private:
  const void* addr_;
};

#else  // !DUMBNET_CONTRACTS_ENABLED

inline constexpr bool kCompiledIn = false;
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
inline void NoteAlloc(std::size_t) {}
inline void SetFailMode(FailMode) {}
inline FailMode GetFailMode() { return FailMode::kCount; }
using ViolationHook = void (*)(const Violation&);
inline void SetViolationHook(ViolationHook) {}
inline CounterSnapshot Counters() { return CounterSnapshot{}; }
inline void ResetCounters() {}
inline void PublishTelemetry() {}
inline const char* LastViolationMessage() { return ""; }

class HotScope {
 public:
  explicit HotScope(const char*) {}
};
class HotExempt {
 public:
  explicit HotExempt(const char*) {}
};
class ReactorScope {};

inline int HotDepth() { return 0; }
inline int ExemptDepth() { return 0; }
inline int ReactorDepth() { return 0; }
inline const char* CurrentHotScope() { return nullptr; }

inline void RegisterMutexRank(const void*, int, const char*) {}
inline void UnregisterMutexRank(const void*) {}
inline int LookupMutexRank(const void*) { return -1; }
inline void NoteLockAcquire(const void*) {}
inline void NoteLockRelease(const void*) {}

class MutexRankRegistrar {
 public:
  MutexRankRegistrar(const void*, int, const char*) {}
};

#endif  // DUMBNET_CONTRACTS_ENABLED

// --- Lock wrappers (both modes; enforcement folds away when compiled out) ----------
// Drop-in for std::lock_guard / std::unique_lock on rank-annotated mutexes.
// The acquire check runs before the mutex is taken (inversions are reported at
// the site that would deadlock, not after). UniqueLock exposes the underlying
// std::unique_lock for condition_variable::wait — the rank stack keeps the
// mutex marked held across the wait, which is conservative and safe: waiting
// threads hold no *additional* rank.

class LockGuard {
 public:
  explicit LockGuard(std::mutex& m) : m_(m) {
    NoteLockAcquire(&m_);
    m_.lock();
  }
  ~LockGuard() {
    m_.unlock();
    NoteLockRelease(&m_);
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  std::mutex& m_;
};

class UniqueLock {
 public:
  explicit UniqueLock(std::mutex& m) : lk_(m) { NoteLockAcquire(&m); }
  ~UniqueLock() {
    if (lk_.owns_lock()) {
      lk_.unlock();
    }
    NoteLockRelease(lk_.mutex());
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  std::unique_lock<std::mutex>& std_lock() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

// --- Guarded transport syscalls ----------------------------------------------------
// The wire transport routes its socket I/O through these shims. In a reactor
// context with contracts enabled, each verifies the fd carries O_NONBLOCK — a
// blocking fd on the epoll thread is exactly the stall the reactor-block rule
// exists to prevent. Outside reactor context (or disabled) they are the plain
// syscalls. Signatures use void* so this header stays free of socket headers.
long GuardedRecv(int fd, void* buf, std::size_t len, int flags);
long GuardedSend(int fd, const void* buf, std::size_t len, int flags);
int GuardedConnect(int fd, const void* addr, unsigned int addrlen);

// Declared blocking wait (future::get, condvar wait with no reactor exemption):
// a violation when reached in reactor context. Always safe elsewhere.
void NoteBlockingPoint(const char* what);

}  // namespace contracts
}  // namespace dumbnet

// --- Annotation macros -------------------------------------------------------------

#define DN_CONTRACTS_CAT2(a, b) a##b
#define DN_CONTRACTS_CAT(a, b) DN_CONTRACTS_CAT2(a, b)

#ifdef DUMBNET_CONTRACTS_ENABLED

#define DN_HOT_SCOPE(name_)                       \
  ::dumbnet::contracts::HotScope DN_CONTRACTS_CAT(dn_hot_scope_, __COUNTER__) { \
    (name_)                                       \
  }

#define DN_HOT_EXEMPT(reason_)                    \
  ::dumbnet::contracts::HotExempt DN_CONTRACTS_CAT(dn_hot_exempt_, __COUNTER__) { \
    (reason_)                                     \
  }

#define DN_REACTOR_CONTEXT \
  ::dumbnet::contracts::ReactorScope DN_CONTRACTS_CAT(dn_reactor_scope_, __COUNTER__) {}

#define DN_BLOCKING_POINT(what_) ::dumbnet::contracts::NoteBlockingPoint(what_)

// Class-scope member declaration; place it directly after the mutex member it
// annotates. Registers &mutex in the rank registry for the object's lifetime.
#define DN_MUTEX_RANK(m_, rank_)                                       \
  ::dumbnet::contracts::MutexRankRegistrar DN_CONTRACTS_CAT(dn_rank_, m_) { \
    &(m_), (rank_), #m_                                                \
  }

#else

#define DN_HOT_SCOPE(name_)     \
  do {                          \
  } while (0)
#define DN_HOT_EXEMPT(reason_)  \
  do {                          \
  } while (0)
#define DN_REACTOR_CONTEXT \
  do {                     \
  } while (0)
#define DN_BLOCKING_POINT(what_) \
  do {                           \
  } while (0)
// Still a member declaration (zero-enforcement) so class bodies parse the same.
#define DN_MUTEX_RANK(m_, rank_)                                       \
  ::dumbnet::contracts::MutexRankRegistrar DN_CONTRACTS_CAT(dn_rank_, m_) { \
    &(m_), (rank_), #m_                                                \
  }

#endif  // DUMBNET_CONTRACTS_ENABLED

#endif  // DUMBNET_SRC_ANALYSIS_CONTRACTS_H_
