// DPOR schedule exploration (the engine behind tools/dumbnet-explore).
//
// The simulator executes same-timestamp events in FIFO scheduling order — one
// arbitrary linearization of a causally-concurrent batch. Footprint tracking
// (src/sim/footprint.h) flags batch pairs whose declared footprints conflict;
// this module *tests* those flags by re-executing the scenario under permuted
// batch orders and comparing terminal states. A hazard whose reorderings all
// converge is noise (and should be annotated DN_FP_COMMUTES with a reason); a
// hazard with a diverging reordering is a confirmed ordering race, and the
// minimized schedule that exposes it is a replayable counterexample.
//
// The search is dynamic partial-order reduction in spirit:
//   - Persistent sets: child schedules are generated only from *observed
//     conflicting pairs* (the simulator already restricts those to consecutive
//     accessors per entity, the transitive generator set). Batches whose events
//     never conflict are never permuted.
//   - Sleep sets: every explored schedule is signature-deduplicated, so an
//     interleaving reachable along two paths runs once.
//   - Budget: exploration is breadth-first from the canonical run and stops at
//     `max_schedules` executions, so CI can bound the cost.
//
// The engine is fabric-agnostic: callers supply a ScenarioFn that builds a fresh
// Simulator + model, runs it under the given Schedule, and returns the terminal
// state digest plus observed conflicts. Helpers below adapt a Schedule to the
// Simulator's BatchPermuter and collect hazards into conflicts.
#ifndef DUMBNET_SRC_ANALYSIS_EXPLORE_H_
#define DUMBNET_SRC_ANALYSIS_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/result.h"

namespace dumbnet {
namespace explore {

// A schedule: execution orders for selected batches, keyed by batch index (the
// running count of size>=2 same-timestamp batches — stable across permuted
// re-executions, unlike raw event seq numbers). Each order is a permutation of
// canonical positions 0..n-1; batches not listed run in canonical (FIFO) order.
struct Schedule {
  std::map<uint64_t, std::vector<uint32_t>> choices;

  bool empty() const { return choices.empty(); }
  bool operator==(const Schedule& other) const { return choices == other.choices; }
};

// Text form, replayable across builds and sessions:
//   # dumbnet-explore schedule v1
//   batch 17 order 2 0 1
std::string SerializeSchedule(const Schedule& schedule);
Result<Schedule> ParseSchedule(const std::string& text);

// One conflicting same-batch event pair observed during a run (an unannotated
// determinism hazard). Canonical positions, pos_a < pos_b.
struct Conflict {
  uint64_t batch_index = 0;
  uint32_t batch_size = 0;
  uint32_t pos_a = 0;
  uint32_t pos_b = 0;

  bool operator<(const Conflict& other) const {
    return std::tie(batch_index, pos_a, pos_b) <
           std::tie(other.batch_index, other.pos_a, other.pos_b);
  }
};

// What one scenario execution under one schedule produced.
struct RunOutcome {
  // Digest of the converged (control-plane) terminal state. Two runs of the same
  // scenario under different schedules must agree here, or the ordering raced.
  uint64_t state_hash = 0;
  uint64_t events = 0;             // executed simulator events
  uint64_t batches = 0;            // size>=2 batches formed
  std::vector<Conflict> conflicts; // deduplicated unannotated hazards
  std::vector<std::string> hazard_lines;  // human rendering, parallel-ish order
  std::vector<std::string> violations;    // invariant/audit failures, if any
};

// Re-executes the scenario from scratch under `schedule`. Must be deterministic:
// same schedule, same outcome.
using ScenarioFn = std::function<RunOutcome(const Schedule& schedule)>;

struct ExploreConfig {
  uint64_t max_schedules = 128;  // execution budget, including the base run
  bool minimize = true;          // shrink the first diverging schedule
};

struct ExploreReport {
  RunOutcome base;            // the canonical-order run
  uint64_t schedules_run = 0; // scenario executions, incl. base and minimization
  uint64_t distinct_conflicts = 0;  // unique (batch, pos, pos) pairs seen anywhere
  bool budget_exhausted = false;    // frontier remained when the budget ran out

  bool diverged = false;      // a reordering changed the terminal state
  Schedule counterexample;    // minimal diverging schedule (when diverged)
  uint64_t divergent_hash = 0;
  std::vector<std::string> divergent_violations;
};

// Breadth-first DPOR exploration from the canonical run. Divergence means: a
// different state hash, or a violation set differing from the base run's.
ExploreReport Explore(const ScenarioFn& run, const ExploreConfig& config = {});

// Adapts a Schedule to the Simulator's permuter interface. Orders whose size
// does not match the actual batch are left canonical (the simulator would also
// reject non-permutations). Capture by value: the permuter outlives the caller's
// schedule copy.
Simulator::BatchPermuter MakePermuter(Schedule schedule);

// Collects hazards from a Simulator into deduplicated Conflicts for a run.
// Install before running, Take* after. Detaches the hook on destruction.
class HazardCollector {
 public:
  explicit HazardCollector(Simulator* sim);
  ~HazardCollector();
  HazardCollector(const HazardCollector&) = delete;
  HazardCollector& operator=(const HazardCollector&) = delete;

  std::vector<Conflict> TakeConflicts() { return std::move(conflicts_); }
  std::vector<std::string> TakeLines() { return std::move(lines_); }

 private:
  Simulator* sim_;
  std::vector<Conflict> conflicts_;
  std::vector<std::string> lines_;
  std::set<Conflict> seen_;
};

}  // namespace explore
}  // namespace dumbnet

#endif  // DUMBNET_SRC_ANALYSIS_EXPLORE_H_
