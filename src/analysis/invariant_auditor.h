// InvariantAuditor: a registry of named, checkable fabric invariants. Tests (or
// long simulations) register the invariants that should hold for their deployment
// — tag-stack validity, path-graph well-formedness, TopoCache↔PathTable coherence,
// controller-database-vs-ground-truth consistency — and either run them on demand
// or attach the auditor to a Simulator so every N executed events re-verifies the
// whole catalog ("audited mode").
#ifndef DUMBNET_SRC_ANALYSIS_INVARIANT_AUDITOR_H_
#define DUMBNET_SRC_ANALYSIS_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/result.h"

namespace dumbnet {

struct InvariantViolation {
  std::string invariant;
  std::string detail;
};

class InvariantAuditor {
 public:
  // An invariant check: returns Ok when the invariant holds. Checks must be
  // side-effect free; they may run at any event boundary.
  using CheckFn = std::function<Status()>;

  void Register(std::string name, CheckFn check);

  // Runs every registered invariant once; returns the violations found (empty =
  // all hold). Also accumulates them into violations() for post-run assertions.
  std::vector<InvariantViolation> RunAll();

  // Runs one invariant by name; kNotFound if never registered.
  Status RunOne(const std::string& name);

  // Attaches to `sim`: the full catalog runs after every `every_events` executed
  // events. Only one auditor can be attached to a simulator at a time.
  void AttachTo(Simulator* sim, uint64_t every_events = 256);

  size_t invariant_count() const { return checks_.size(); }
  uint64_t runs() const { return runs_; }
  const std::vector<InvariantViolation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

 private:
  struct Entry {
    std::string name;
    CheckFn check;
  };

  std::vector<Entry> checks_;
  std::vector<InvariantViolation> violations_;
  uint64_t runs_ = 0;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ANALYSIS_INVARIANT_AUDITOR_H_
