#include "src/analysis/invariants.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dumbnet {
namespace {

std::string UidName(uint64_t uid) { return "uid=" + std::to_string(uid); }

// Undirected uid edge key for membership tests.
std::pair<uint64_t, uint64_t> EdgeKey(uint64_t a, uint64_t b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

// Exact-membership hash for (uid, uid) / (uid, port) keys. AuditWirePathGraph
// runs on every path response during bring-up (~80K calls x ~1K inserts at 16K
// hosts), where ordered sets' rebalancing dominated the whole-run profile;
// hashing is the entire point of this functor existing.
struct U64PairHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
    uint64_t h = p.first * 0x9E3779B97F4A7C15ull;
    h ^= p.second + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace

Status AuditTagStack(const TagList& tags, bool expect_terminator, size_t max_depth) {
  if (tags.size() > max_depth) {
    return Error(ErrorCode::kExhausted,
                 "tag stack depth " + std::to_string(tags.size()) +
                     " exceeds header budget " + std::to_string(max_depth));
  }
  if (expect_terminator) {
    if (tags.empty() || tags.back() != kPathEndTag) {
      return Error(ErrorCode::kMalformed, "tag stack not terminated by \xC3\xB8");
    }
  }
  for (size_t i = 0; i < tags.size(); ++i) {
    const PortNum t = tags[i];
    if (t == kPathEndTag) {
      if (!expect_terminator || i + 1 != tags.size()) {
        return Error(ErrorCode::kMalformed,
                     "\xC3\xB8 at position " + std::to_string(i) + " of " +
                         std::to_string(tags.size()) + " (truncated path)");
      }
      continue;
    }
    if (t != kIdQueryTag && t > kMaxPorts) {
      return Error(ErrorCode::kOutOfRange,
                   "tag " + std::to_string(static_cast<int>(t)) + " at position " +
                       std::to_string(i) + " is not a valid port number");
    }
  }
  return Status::Ok();
}

Status AuditWirePathGraph(const WirePathGraph& graph) {
  if (!graph.primary.empty()) {
    if (graph.primary.front() != graph.src_uid) {
      return Error(ErrorCode::kMalformed,
                   "primary starts at " + UidName(graph.primary.front()) +
                       ", expected src " + UidName(graph.src_uid));
    }
    if (graph.primary.back() != graph.dst_uid) {
      return Error(ErrorCode::kMalformed,
                   "primary ends at " + UidName(graph.primary.back()) +
                       ", expected dst " + UidName(graph.dst_uid));
    }
  }
  if (!graph.backup.empty()) {
    if (graph.backup.front() != graph.src_uid || graph.backup.back() != graph.dst_uid) {
      return Error(ErrorCode::kMalformed, "backup endpoints do not match src/dst");
    }
  }

  // Link sanity: no self-links, no two links claiming one (uid, port).
  std::unordered_set<std::pair<uint64_t, uint64_t>, U64PairHash> used_ports;
  std::unordered_set<std::pair<uint64_t, uint64_t>, U64PairHash> edges;
  used_ports.reserve(graph.links.size() * 2);
  edges.reserve(graph.links.size());
  for (const WireLink& l : graph.links) {
    if (l.uid_a == l.uid_b) {
      return Error(ErrorCode::kMalformed, "self-link at " + UidName(l.uid_a));
    }
    for (const auto& [uid, port] : {std::pair<uint64_t, uint64_t>{l.uid_a, l.port_a},
                                    std::pair<uint64_t, uint64_t>{l.uid_b, l.port_b}}) {
      if (!used_ports.insert({uid, port}).second) {
        return Error(ErrorCode::kAlreadyExists,
                     "port conflict: two links claim " + UidName(uid) + " port " +
                         std::to_string(static_cast<int>(port)));
      }
    }
    edges.insert(EdgeKey(l.uid_a, l.uid_b));
  }

  // Every consecutive hop of each path must ride a listed link.
  auto check_path_edges = [&](const std::vector<uint64_t>& path, const char* which) {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      if (edges.count(EdgeKey(path[i], path[i + 1])) == 0) {
        return Status(Error(ErrorCode::kNotFound,
                            std::string(which) + " hop " + UidName(path[i]) + "->" +
                                UidName(path[i + 1]) + " has no link in the graph"));
      }
    }
    return Status::Ok();
  };
  if (Status s = check_path_edges(graph.primary, "primary"); !s.ok()) {
    return s;
  }
  if (Status s = check_path_edges(graph.backup, "backup"); !s.ok()) {
    return s;
  }

  // Connectivity: the subgraph the controller hands out is connected (Algorithm 1
  // property), so every link must be reachable from src_uid. A dangling WireLink
  // between switches nothing else references fails here.
  if (!graph.links.empty()) {
    std::unordered_map<uint64_t, std::vector<uint64_t>> adj;
    adj.reserve(graph.links.size() + 1);
    for (const WireLink& l : graph.links) {
      adj[l.uid_a].push_back(l.uid_b);
      adj[l.uid_b].push_back(l.uid_a);
    }
    std::unordered_set<uint64_t> reached;
    reached.reserve(adj.size());
    std::vector<uint64_t> frontier{graph.src_uid};
    reached.insert(graph.src_uid);
    while (!frontier.empty()) {
      uint64_t u = frontier.back();
      frontier.pop_back();
      for (uint64_t v : adj[u]) {
        if (reached.insert(v).second) {
          frontier.push_back(v);
        }
      }
    }
    for (const auto& [uid, peers] : adj) {
      if (reached.count(uid) == 0) {
        return Error(ErrorCode::kMalformed,
                     "dangling link set around " + UidName(uid) +
                         " unreachable from src (disconnected path graph)");
      }
    }
  }
  return Status::Ok();
}

Status AuditPathGraph(const Topology& topo, const PathGraph& pg) {
  auto check_endpoints = [&](const SwitchPath& path, const char* which) {
    if (path.empty()) {
      return Status::Ok();
    }
    if (path.front() != pg.src_switch || path.back() != pg.dst_switch) {
      return Status(Error(ErrorCode::kMalformed,
                          std::string(which) + " endpoints do not match src/dst"));
    }
    return Status::Ok();
  };
  if (Status s = check_endpoints(pg.primary, "primary"); !s.ok()) {
    return s;
  }
  if (Status s = check_endpoints(pg.backup, "backup"); !s.ok()) {
    return s;
  }

  // Primary must be simple: a repeated switch is a routing loop.
  std::set<uint32_t> seen;
  for (uint32_t v : pg.primary) {
    if (!seen.insert(v).second) {
      return Error(ErrorCode::kMalformed,
                   "primary revisits S" + std::to_string(v) + " (loop)");
    }
  }

  const std::set<uint32_t> vertex_set(pg.vertices.begin(), pg.vertices.end());
  for (LinkIndex li : pg.links) {
    if (li >= topo.link_count()) {
      return Error(ErrorCode::kOutOfRange,
                   "link index " + std::to_string(li) + " out of range");
    }
    const Link& l = topo.link_at(li);
    if (l.detached || !l.up) {
      return Error(ErrorCode::kUnavailable,
                   "path graph includes down/detached link " + std::to_string(li));
    }
    if (!l.a.node.is_switch() || !l.b.node.is_switch()) {
      return Error(ErrorCode::kMalformed,
                   "path graph includes host link " + std::to_string(li));
    }
    if (vertex_set.count(l.a.node.index) == 0 || vertex_set.count(l.b.node.index) == 0) {
      return Error(ErrorCode::kMalformed,
                   "link " + std::to_string(li) + " touches a non-vertex (not induced)");
    }
  }
  return Status::Ok();
}

Status AuditCacheCoherence(const TopoCache& cache, const PathTable& table) {
  Status result = Status::Ok();
  table.ForEachEntry([&](uint64_t dst_mac, const PathTableEntry& entry) {
    if (!result.ok()) {
      return;
    }
    auto located = cache.Locate(dst_mac);
    if (!located.ok()) {
      result = Error(ErrorCode::kNotFound,
                     "PathTable entry for mac " + std::to_string(dst_mac) +
                         " has no TopoCache host record");
      return;
    }
    if (!(located.value() == entry.dst)) {
      result = Error(ErrorCode::kMalformed,
                     "PathTable destination for mac " + std::to_string(dst_mac) +
                         " disagrees with TopoCache location (stale entry)");
      return;
    }
    auto check_route = [&](const CachedRoute& route, const char* which) {
      for (uint64_t uid : route.uid_path) {
        if (!cache.db().KnowsSwitch(uid)) {
          result = Error(ErrorCode::kNotFound,
                         std::string(which) + " route crosses unknown switch " +
                             UidName(uid));
          return;
        }
      }
      // One tag per switch on the path: out-ports for all but the last switch,
      // then the destination host's attach port.
      if (route.tags.size() != route.uid_path.size()) {
        result = Error(ErrorCode::kMalformed,
                       std::string(which) + " route has " +
                           std::to_string(route.tags.size()) + " tags for " +
                           std::to_string(route.uid_path.size()) + " switches");
        return;
      }
      if (Status s = AuditTagStack(route.tags, /*expect_terminator=*/false); !s.ok()) {
        result = s;
      }
    };
    for (const CachedRoute& r : entry.paths) {
      if (!result.ok()) {
        return;
      }
      check_route(r, "primary");
    }
    if (result.ok() && entry.has_backup) {
      check_route(entry.backup, "backup");
    }
  });
  return result;
}

Status AuditTopoDbAgainstTruth(const TopoDb& db, const Topology& truth,
                               bool require_fresh_links) {
  const Topology& mirror = db.mirror();
  for (uint32_t i = 0; i < mirror.switch_count(); ++i) {
    const uint64_t uid = db.UidOf(i);
    auto truth_idx = truth.SwitchByUid(uid);
    if (!truth_idx.ok()) {
      return Error(ErrorCode::kNotFound,
                   "database switch " + UidName(uid) + " does not exist in the fabric");
    }
  }
  for (LinkIndex li = 0; li < mirror.link_count(); ++li) {
    const Link& l = mirror.link_at(li);
    if (l.detached || !l.a.node.is_switch() || !l.b.node.is_switch()) {
      continue;
    }
    const uint64_t uid_a = db.UidOf(l.a.node.index);
    const uint64_t uid_b = db.UidOf(l.b.node.index);
    auto ta = truth.SwitchByUid(uid_a);
    auto tb = truth.SwitchByUid(uid_b);
    if (!ta.ok() || !tb.ok()) {
      return Error(ErrorCode::kNotFound, "database link endpoints unknown to fabric");
    }
    LinkIndex truth_li = truth.LinkAtPort(ta.value(), l.a.port);
    if (truth_li == kInvalidLink) {
      if (l.up) {
        return Error(ErrorCode::kNotFound,
                     "database believes " + UidName(uid_a) + " port " +
                         std::to_string(static_cast<int>(l.a.port)) +
                         " is wired; fabric has nothing there");
      }
      continue;  // a down-marked record of an unplugged port is merely stale
    }
    const Link& tl = truth.link_at(truth_li);
    const Endpoint& peer = tl.Peer(NodeId::Switch(ta.value()));
    if (!peer.node.is_switch() || peer.node.index != tb.value() || peer.port != l.b.port) {
      return Error(ErrorCode::kMalformed,
                   "database link " + UidName(uid_a) + "<->" + UidName(uid_b) +
                       " is wired differently in the fabric (port conflict)");
    }
    if (require_fresh_links && l.up && !tl.up) {
      return Error(ErrorCode::kUnavailable,
                   "database believes link " + UidName(uid_a) + "<->" + UidName(uid_b) +
                       " is up; fabric has it down (stale topology)");
    }
  }
  for (const HostLocation& loc : db.Directory()) {
    auto h = truth.HostByMac(loc.mac);
    if (!h.ok()) {
      return Error(ErrorCode::kNotFound,
                   "database host mac=" + std::to_string(loc.mac) + " unknown to fabric");
    }
    auto up = truth.HostUplink(h.value());
    if (!up.ok()) {
      return Error(ErrorCode::kUnavailable,
                   "database host mac=" + std::to_string(loc.mac) + " is detached");
    }
    const uint64_t truth_sw_uid = truth.switch_at(up.value().node.index).uid;
    if (truth_sw_uid != loc.switch_uid || up.value().port != loc.port) {
      return Error(ErrorCode::kMalformed,
                   "database host mac=" + std::to_string(loc.mac) +
                       " located at " + UidName(loc.switch_uid) + " port " +
                       std::to_string(static_cast<int>(loc.port)) +
                       "; fabric attaches it elsewhere");
    }
  }
  return Status::Ok();
}

void RegisterTopologyInvariants(InvariantAuditor& auditor, const Topology* topo) {
  auditor.Register("topology/validate", [topo] { return topo->Validate(); });
}

void RegisterCacheInvariants(InvariantAuditor& auditor, const TopoCache* cache,
                             const PathTable* table, uint32_t host_index) {
  auditor.Register("host" + std::to_string(host_index) + "/cache-coherence",
                   [cache, table] { return AuditCacheCoherence(*cache, *table); });
}

void RegisterTopoDbInvariants(InvariantAuditor& auditor, const TopoDb* db,
                              const Topology* truth) {
  // Structural variant only: periodic audits run while failure notifications may
  // still be in flight, so link freshness is asserted at quiescent points instead.
  auditor.Register("controller/db-vs-truth", [db, truth] {
    return AuditTopoDbAgainstTruth(*db, *truth, /*require_fresh_links=*/false);
  });
}

}  // namespace dumbnet
