#include "src/analysis/fabric_check.h"

#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_set>

#include "src/analysis/invariants.h"
#include "src/routing/graph.h"
#include "src/routing/shortest_path.h"
#include "src/topo/serialize.h"

namespace dumbnet {
namespace {

std::string UidName(uint64_t uid) { return "uid=" + std::to_string(uid); }

std::string GraphName(const WirePathGraph& g) {
  return UidName(g.src_uid) + "->" + UidName(g.dst_uid);
}

// Looks up the ground-truth link between (uid_a, port_a) and (uid_b, port_b).
// Returns kInvalidLink when the fabric has no such link or it is wired elsewhere.
LinkIndex TruthLink(const Topology& topo, const WireLink& wl) {
  auto ia = topo.SwitchByUid(wl.uid_a);
  auto ib = topo.SwitchByUid(wl.uid_b);
  if (!ia.ok() || !ib.ok()) {
    return kInvalidLink;
  }
  LinkIndex li = topo.LinkAtPort(ia.value(), wl.port_a);
  if (li == kInvalidLink) {
    return kInvalidLink;
  }
  const Link& l = topo.link_at(li);
  const Endpoint& peer = l.Peer(NodeId::Switch(ia.value()));
  if (!peer.node.is_switch() || peer.node.index != ib.value() || peer.port != wl.port_b) {
    return kInvalidLink;
  }
  return li;
}

// Ground-truth link for a consecutive uid pair on a path (any up or down link).
LinkIndex TruthEdge(const Topology& topo, uint64_t uid_a, uint64_t uid_b) {
  auto ia = topo.SwitchByUid(uid_a);
  auto ib = topo.SwitchByUid(uid_b);
  if (!ia.ok() || !ib.ok()) {
    return kInvalidLink;
  }
  const SwitchInfo& sw = topo.switch_at(ia.value());
  for (PortNum p = 1; p <= sw.num_ports; ++p) {
    LinkIndex li = sw.port_link[p];
    if (li == kInvalidLink) {
      continue;
    }
    const Link& l = topo.link_at(li);
    if (l.detached) {
      continue;
    }
    const Endpoint& peer = l.Peer(NodeId::Switch(ia.value()));
    if (peer.node.is_switch() && peer.node.index == ib.value()) {
      return li;
    }
  }
  return kInvalidLink;
}

}  // namespace

std::vector<CheckFinding> CheckTopology(const Topology& topo,
                                        const FabricCheckOptions& opts) {
  (void)opts;
  std::vector<CheckFinding> findings;
  if (Status s = topo.Validate(); !s.ok()) {
    findings.push_back({"topology-invalid", s.error().ToString()});
    return findings;  // deeper checks assume a structurally sound topology
  }

  // Host reachability over up links: every host must have an up uplink, and all
  // uplink switches must sit in one connected component.
  SwitchGraph graph(topo);
  std::vector<uint32_t> dist;
  uint32_t reference_switch = UINT32_MAX;
  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    auto up = topo.HostUplink(h);
    if (!up.ok()) {
      findings.push_back({"host-detached", "H" + std::to_string(h) + " has no uplink"});
      continue;
    }
    const LinkIndex li = topo.host_at(h).link;
    if (!topo.link_at(li).up) {
      findings.push_back(
          {"host-uplink-down", "H" + std::to_string(h) + "'s uplink link is down"});
      continue;
    }
    const uint32_t sw = up.value().node.index;
    if (reference_switch == UINT32_MAX) {
      reference_switch = sw;
      dist = BfsDistances(graph, sw);
      continue;
    }
    if (dist[sw] == UINT32_MAX) {
      findings.push_back({"host-unreachable",
                          "H" + std::to_string(h) + " (S" + std::to_string(sw) +
                              ") cannot reach H0's switch S" +
                              std::to_string(reference_switch) + " over up links"});
    }
  }
  return findings;
}

std::vector<CheckFinding> CheckPathGraphs(const Topology& topo,
                                          const std::vector<WirePathGraph>& graphs,
                                          const FabricCheckOptions& opts) {
  std::vector<CheckFinding> findings;
  for (const WirePathGraph& g : graphs) {
    const std::string name = GraphName(g);

    // Well-formedness of the graph itself (endpoints, induced links, no port
    // conflicts inside the graph).
    if (Status s = AuditWirePathGraph(g); !s.ok()) {
      findings.push_back({"pathgraph-malformed", name + ": " + s.error().ToString()});
    }

    // Loops: a repeated switch on the primary.
    std::set<uint64_t> seen;
    for (uint64_t uid : g.primary) {
      if (!seen.insert(uid).second) {
        findings.push_back(
            {"primary-loop", name + ": primary revisits " + UidName(uid)});
        break;
      }
    }

    // Tag budget: one tag per switch on the path (final host port included) + ø.
    auto check_budget = [&](const std::vector<uint64_t>& path, const char* which) {
      if (!path.empty() && path.size() + 1 > opts.max_tag_depth) {
        findings.push_back(
            {"tag-budget-exceeded",
             name + ": " + which + " needs " + std::to_string(path.size() + 1) +
                 " header bytes, budget is " + std::to_string(opts.max_tag_depth)});
      }
    };
    check_budget(g.primary, "primary");
    check_budget(g.backup, "backup");

    // Each advertised link must exist in the fabric exactly as described.
    for (const WireLink& wl : g.links) {
      if (TruthLink(topo, wl) == kInvalidLink) {
        findings.push_back(
            {"link-conflict", name + ": advertised link " + UidName(wl.uid_a) + ":" +
                                  std::to_string(static_cast<int>(wl.port_a)) + "<->" +
                                  UidName(wl.uid_b) + ":" +
                                  std::to_string(static_cast<int>(wl.port_b)) +
                                  " is absent or wired differently in the fabric"});
      }
    }

    // Path hops over failed links; and the backup sharing a failed link with the
    // primary (the exact situation the backup exists to avoid).
    std::set<std::pair<uint64_t, uint64_t>> primary_down_edges;
    for (size_t i = 0; i + 1 < g.primary.size(); ++i) {
      LinkIndex li = TruthEdge(topo, g.primary[i], g.primary[i + 1]);
      if (li != kInvalidLink && !topo.link_at(li).up) {
        findings.push_back({"primary-on-failed-link",
                            name + ": primary hop " + UidName(g.primary[i]) + "->" +
                                UidName(g.primary[i + 1]) + " rides a down link"});
        uint64_t a = g.primary[i];
        uint64_t b = g.primary[i + 1];
        primary_down_edges.insert(a < b ? std::pair{a, b} : std::pair{b, a});
      }
    }
    for (size_t i = 0; i + 1 < g.backup.size(); ++i) {
      uint64_t a = g.backup[i];
      uint64_t b = g.backup[i + 1];
      auto key = a < b ? std::pair{a, b} : std::pair{b, a};
      if (primary_down_edges.count(key) > 0) {
        findings.push_back({"backup-shares-failed-link",
                            name + ": backup hop " + UidName(a) + "->" + UidName(b) +
                                " shares a failed link with the primary"});
      }
    }
  }
  return findings;
}

std::vector<CheckFinding> CheckFabric(const Topology& topo,
                                      const std::vector<WirePathGraph>& graphs,
                                      const FabricCheckOptions& opts) {
  std::vector<CheckFinding> findings = CheckTopology(topo, opts);
  std::vector<CheckFinding> pg = CheckPathGraphs(topo, graphs, opts);
  findings.insert(findings.end(), pg.begin(), pg.end());
  return findings;
}

std::string SerializeWirePathGraphs(const std::vector<WirePathGraph>& graphs) {
  std::ostringstream os;
  os << "# dumbnet path graphs: " << graphs.size() << "\n";
  for (const WirePathGraph& g : graphs) {
    os << "pathgraph " << g.src_uid << " " << g.dst_uid << "\n";
    auto emit_path = [&](const char* kind, const std::vector<uint64_t>& path) {
      if (path.empty()) {
        return;
      }
      os << kind;
      for (uint64_t uid : path) {
        os << " " << uid;
      }
      os << "\n";
    };
    emit_path("primary", g.primary);
    emit_path("backup", g.backup);
    for (const WireLink& l : g.links) {
      os << "plink " << l.uid_a << " " << static_cast<int>(l.port_a) << " " << l.uid_b
         << " " << static_cast<int>(l.port_b) << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

Result<std::vector<WirePathGraph>> ParseWirePathGraphs(const std::string& text) {
  auto parse_error = [](size_t line_no, const std::string& message) {
    return Error(ErrorCode::kMalformed,
                 "line " + std::to_string(line_no) + ": " + message);
  };
  std::vector<WirePathGraph> graphs;
  WirePathGraph current;
  bool open = false;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') {
      continue;
    }
    if (kind == "pathgraph") {
      if (open) {
        return parse_error(line_no, "pathgraph inside an unterminated pathgraph");
      }
      current = WirePathGraph{};
      if (!(ls >> current.src_uid >> current.dst_uid)) {
        return parse_error(line_no, "pathgraph needs <src_uid> <dst_uid>");
      }
      open = true;
      continue;
    }
    if (!open) {
      return parse_error(line_no, "'" + kind + "' outside a pathgraph block");
    }
    if (kind == "primary" || kind == "backup") {
      std::vector<uint64_t>& path = kind == "primary" ? current.primary : current.backup;
      uint64_t uid = 0;
      while (ls >> uid) {
        path.push_back(uid);
      }
      if (path.empty()) {
        return parse_error(line_no, kind + " needs at least one uid");
      }
      continue;
    }
    if (kind == "plink") {
      WireLink l;
      int port_a = 0;
      int port_b = 0;
      if (!(ls >> l.uid_a >> port_a >> l.uid_b >> port_b)) {
        return parse_error(line_no, "plink needs <uid_a> <port_a> <uid_b> <port_b>");
      }
      if (port_a < 0 || port_a > kMaxPorts || port_b < 0 || port_b > kMaxPorts) {
        return parse_error(line_no, "plink port out of range [0,254]");
      }
      l.port_a = static_cast<PortNum>(port_a);
      l.port_b = static_cast<PortNum>(port_b);
      current.links.push_back(l);
      continue;
    }
    if (kind == "end") {
      graphs.push_back(std::move(current));
      open = false;
      continue;
    }
    return parse_error(line_no, "unknown directive '" + kind + "'");
  }
  if (open) {
    return parse_error(line_no, "unterminated pathgraph block");
  }
  return graphs;
}

Status SaveWirePathGraphs(const std::vector<WirePathGraph>& graphs,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Error(ErrorCode::kUnavailable, "cannot open " + path);
  }
  out << SerializeWirePathGraphs(graphs);
  return out.good() ? Status::Ok()
                    : Status(Error(ErrorCode::kUnavailable, "write failed: " + path));
}

Result<std::vector<WirePathGraph>> LoadWirePathGraphs(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseWirePathGraphs(buffer.str());
}

int RunDumbnetCheck(const std::string& topo_path,
                    const std::vector<std::string>& pathgraph_paths,
                    const FabricCheckOptions& opts, std::ostream& out) {
  auto topo = LoadTopology(topo_path);
  if (!topo.ok()) {
    // A topology so broken it fails structural validation at parse time is itself
    // a (fatal) finding; report it as such rather than a usage error.
    out << "dumbnet-check: " << topo_path << ": " << topo.error().ToString() << "\n";
    return topo.error().code() == ErrorCode::kMalformed ? 1 : 2;
  }
  std::vector<WirePathGraph> graphs;
  for (const std::string& p : pathgraph_paths) {
    auto parsed = LoadWirePathGraphs(p);
    if (!parsed.ok()) {
      out << "dumbnet-check: " << p << ": " << parsed.error().ToString() << "\n";
      return 2;
    }
    graphs.insert(graphs.end(), parsed.value().begin(), parsed.value().end());
  }
  const std::vector<CheckFinding> findings = CheckFabric(topo.value(), graphs, opts);
  for (const CheckFinding& f : findings) {
    out << "[" << f.check << "] " << f.detail << "\n";
  }
  out << "dumbnet-check: " << topo.value().switch_count() << " switches, "
      << topo.value().host_count() << " hosts, " << graphs.size() << " path graphs, "
      << findings.size() << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
  return findings.empty() ? 0 : 1;
}

}  // namespace dumbnet
