#include "src/analysis/fabric_check.h"

#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_set>

#include "src/analysis/invariants.h"
#include "src/routing/graph.h"
#include "src/routing/shortest_path.h"
#include "src/topo/serialize.h"

namespace dumbnet {
namespace {

std::string UidName(uint64_t uid) { return "uid=" + std::to_string(uid); }

std::string GraphName(const WirePathGraph& g) {
  return UidName(g.src_uid) + "->" + UidName(g.dst_uid);
}

// Looks up the ground-truth link between (uid_a, port_a) and (uid_b, port_b).
// Returns kInvalidLink when the fabric has no such link or it is wired elsewhere.
LinkIndex TruthLink(const Topology& topo, const WireLink& wl) {
  auto ia = topo.SwitchByUid(wl.uid_a);
  auto ib = topo.SwitchByUid(wl.uid_b);
  if (!ia.ok() || !ib.ok()) {
    return kInvalidLink;
  }
  LinkIndex li = topo.LinkAtPort(ia.value(), wl.port_a);
  if (li == kInvalidLink) {
    return kInvalidLink;
  }
  const Link& l = topo.link_at(li);
  const Endpoint& peer = l.Peer(NodeId::Switch(ia.value()));
  if (!peer.node.is_switch() || peer.node.index != ib.value() || peer.port != wl.port_b) {
    return kInvalidLink;
  }
  return li;
}

// Ground-truth link for a consecutive uid pair on a path (any up or down link).
LinkIndex TruthEdge(const Topology& topo, uint64_t uid_a, uint64_t uid_b) {
  auto ia = topo.SwitchByUid(uid_a);
  auto ib = topo.SwitchByUid(uid_b);
  if (!ia.ok() || !ib.ok()) {
    return kInvalidLink;
  }
  const SwitchInfo& sw = topo.switch_at(ia.value());
  for (PortNum p = 1; p <= sw.num_ports; ++p) {
    LinkIndex li = sw.port_link[p];
    if (li == kInvalidLink) {
      continue;
    }
    const Link& l = topo.link_at(li);
    if (l.detached) {
      continue;
    }
    const Endpoint& peer = l.Peer(NodeId::Switch(ia.value()));
    if (peer.node.is_switch() && peer.node.index == ib.value()) {
      return li;
    }
  }
  return kInvalidLink;
}

}  // namespace

std::vector<CheckFinding> CheckTopology(const Topology& topo,
                                        const FabricCheckOptions& opts) {
  (void)opts;
  std::vector<CheckFinding> findings;
  if (Status s = topo.Validate(); !s.ok()) {
    findings.push_back({"topology-invalid", s.error().ToString()});
    return findings;  // deeper checks assume a structurally sound topology
  }

  // Host reachability over up links: every host must have an up uplink, and all
  // uplink switches must sit in one connected component.
  SwitchGraph graph(topo);
  std::vector<uint32_t> dist;
  uint32_t reference_switch = UINT32_MAX;
  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    auto up = topo.HostUplink(h);
    if (!up.ok()) {
      findings.push_back({"host-detached", "H" + std::to_string(h) + " has no uplink"});
      continue;
    }
    const LinkIndex li = topo.host_at(h).link;
    if (!topo.link_at(li).up) {
      findings.push_back(
          {"host-uplink-down", "H" + std::to_string(h) + "'s uplink link is down"});
      continue;
    }
    const uint32_t sw = up.value().node.index;
    if (reference_switch == UINT32_MAX) {
      reference_switch = sw;
      dist = BfsDistances(graph, sw);
      continue;
    }
    if (dist[sw] == UINT32_MAX) {
      findings.push_back({"host-unreachable",
                          "H" + std::to_string(h) + " (S" + std::to_string(sw) +
                              ") cannot reach H0's switch S" +
                              std::to_string(reference_switch) + " over up links"});
    }
  }
  return findings;
}

std::vector<CheckFinding> CheckPathGraphs(const Topology& topo,
                                          const std::vector<WirePathGraph>& graphs,
                                          const FabricCheckOptions& opts) {
  std::vector<CheckFinding> findings;
  for (const WirePathGraph& g : graphs) {
    const std::string name = GraphName(g);

    // Well-formedness of the graph itself (endpoints, induced links, no port
    // conflicts inside the graph).
    if (Status s = AuditWirePathGraph(g); !s.ok()) {
      findings.push_back({"pathgraph-malformed", name + ": " + s.error().ToString()});
    }

    // Loops: a repeated switch on the primary.
    std::set<uint64_t> seen;
    for (uint64_t uid : g.primary) {
      if (!seen.insert(uid).second) {
        findings.push_back(
            {"primary-loop", name + ": primary revisits " + UidName(uid)});
        break;
      }
    }

    // Tag budget: one tag per switch on the path (final host port included) + ø.
    auto check_budget = [&](const std::vector<uint64_t>& path, const char* which) {
      if (!path.empty() && path.size() + 1 > opts.max_tag_depth) {
        findings.push_back(
            {"tag-budget-exceeded",
             name + ": " + which + " needs " + std::to_string(path.size() + 1) +
                 " header bytes, budget is " + std::to_string(opts.max_tag_depth)});
      }
    };
    check_budget(g.primary, "primary");
    check_budget(g.backup, "backup");

    // Each advertised link must exist in the fabric exactly as described.
    for (const WireLink& wl : g.links) {
      if (TruthLink(topo, wl) == kInvalidLink) {
        findings.push_back(
            {"link-conflict", name + ": advertised link " + UidName(wl.uid_a) + ":" +
                                  std::to_string(static_cast<int>(wl.port_a)) + "<->" +
                                  UidName(wl.uid_b) + ":" +
                                  std::to_string(static_cast<int>(wl.port_b)) +
                                  " is absent or wired differently in the fabric"});
      }
    }

    // Path hops over failed links; and the backup sharing a failed link with the
    // primary (the exact situation the backup exists to avoid).
    std::set<std::pair<uint64_t, uint64_t>> primary_down_edges;
    for (size_t i = 0; i + 1 < g.primary.size(); ++i) {
      LinkIndex li = TruthEdge(topo, g.primary[i], g.primary[i + 1]);
      if (li != kInvalidLink && !topo.link_at(li).up) {
        findings.push_back({"primary-on-failed-link",
                            name + ": primary hop " + UidName(g.primary[i]) + "->" +
                                UidName(g.primary[i + 1]) + " rides a down link"});
        uint64_t a = g.primary[i];
        uint64_t b = g.primary[i + 1];
        primary_down_edges.insert(a < b ? std::pair{a, b} : std::pair{b, a});
      }
    }
    for (size_t i = 0; i + 1 < g.backup.size(); ++i) {
      uint64_t a = g.backup[i];
      uint64_t b = g.backup[i + 1];
      auto key = a < b ? std::pair{a, b} : std::pair{b, a};
      if (primary_down_edges.count(key) > 0) {
        findings.push_back({"backup-shares-failed-link",
                            name + ": backup hop " + UidName(a) + "->" + UidName(b) +
                                " shares a failed link with the primary"});
      }
    }
  }
  return findings;
}

std::vector<CheckFinding> CheckFabric(const Topology& topo,
                                      const std::vector<WirePathGraph>& graphs,
                                      const FabricCheckOptions& opts) {
  std::vector<CheckFinding> findings = CheckTopology(topo, opts);
  std::vector<CheckFinding> pg = CheckPathGraphs(topo, graphs, opts);
  findings.insert(findings.end(), pg.begin(), pg.end());
  if (opts.verify_semantics) {
    std::vector<CheckFinding> sem = VerifyPathGraphSemantics(topo, graphs, opts.verify);
    findings.insert(findings.end(), sem.begin(), sem.end());
  }
  return findings;
}

namespace {

// Hop distances from `src` over `graph`, truncated at `budget`, optionally
// skipping edges whose normalized (index, index) pair is in `excluded`.
// Unreached entries are UINT32_MAX. Small fabrics: a plain vector BFS is fine.
std::vector<uint32_t> BfsWithout(const SwitchGraph& graph, uint32_t src,
                                 uint32_t budget,
                                 const std::set<std::pair<uint32_t, uint32_t>>* excluded) {
  std::vector<uint32_t> dist(graph.size(), UINT32_MAX);
  if (src >= graph.size()) {
    return dist;
  }
  std::vector<uint32_t> frontier = {src};
  dist[src] = 0;
  while (!frontier.empty()) {
    std::vector<uint32_t> next;
    for (uint32_t u : frontier) {
      if (dist[u] >= budget) {
        continue;
      }
      for (const AdjEdge& e : graph.Neighbors(u)) {
        if (excluded != nullptr) {
          auto key = u < e.to ? std::pair{u, e.to} : std::pair{e.to, u};
          if (excluded->count(key) > 0) {
            continue;
          }
        }
        if (dist[e.to] == UINT32_MAX) {
          dist[e.to] = dist[u] + 1;
          next.push_back(e.to);
        }
      }
    }
    frontier = std::move(next);
  }
  return dist;
}

}  // namespace

std::vector<CheckFinding> VerifyPathGraphSemantics(
    const Topology& topo, const std::vector<WirePathGraph>& graphs,
    const PathGraphVerifyOptions& vopts) {
  std::vector<CheckFinding> findings;
  const SwitchGraph fabric(topo);

  for (const WirePathGraph& g : graphs) {
    const std::string name = GraphName(g);

    // Map every uid the graph mentions to a switch index; an unknown uid makes
    // the deeper semantic checks meaningless, so flag it and move on.
    bool uids_ok = true;
    auto index_of = [&](uint64_t uid, const char* where) -> uint32_t {
      auto idx = topo.SwitchByUid(uid);
      if (!idx.ok()) {
        findings.push_back({"pathgraph-unknown-switch",
                            name + ": " + where + " mentions " + UidName(uid) +
                                ", absent from the topology snapshot"});
        uids_ok = false;
        return kNoVertex;
      }
      return idx.value();
    };
    std::vector<uint32_t> primary;
    primary.reserve(g.primary.size());
    for (uint64_t uid : g.primary) {
      primary.push_back(index_of(uid, "primary"));
    }
    std::vector<uint32_t> backup;
    backup.reserve(g.backup.size());
    for (uint64_t uid : g.backup) {
      backup.push_back(index_of(uid, "backup"));
    }
    if (!uids_ok) {
      continue;
    }

    // Loop-freedom of the backup (primary loops are CheckPathGraphs' job).
    std::set<uint32_t> backup_seen;
    for (size_t i = 0; i < backup.size(); ++i) {
      if (!backup_seen.insert(backup[i]).second) {
        findings.push_back(
            {"backup-loop", name + ": backup revisits " + UidName(g.backup[i])});
        break;
      }
    }

    // Primary and backup must be real walks over up links.
    auto check_edges = [&](const std::vector<uint32_t>& path,
                           const std::vector<uint64_t>& uids, const char* which) {
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        bool adjacent = false;
        for (const AdjEdge& e : fabric.Neighbors(path[i])) {
          adjacent = adjacent || e.to == path[i + 1];
        }
        if (!adjacent) {
          findings.push_back({"path-broken-edge",
                              name + ": " + which + " hop " + UidName(uids[i]) + "->" +
                                  UidName(uids[i + 1]) + " has no up link"});
        }
      }
    };
    check_edges(primary, g.primary, "primary");
    check_edges(backup, g.backup, "backup");

    // The subgraph the host would cache: vertices from both paths plus every
    // advertised link endpoint; links restricted to ones the fabric confirms.
    std::set<uint32_t> members(primary.begin(), primary.end());
    members.insert(backup.begin(), backup.end());
    std::vector<LinkIndex> sub_links;
    for (const WireLink& wl : g.links) {
      LinkIndex li = TruthLink(topo, wl);
      if (li == kInvalidLink) {
        continue;  // CheckPathGraphs reports link-conflict for these
      }
      auto ia = topo.SwitchByUid(wl.uid_a);
      auto ib = topo.SwitchByUid(wl.uid_b);
      members.insert(ia.value());
      members.insert(ib.value());
      sub_links.push_back(li);
    }
    const SwitchGraph sub(topo, sub_links);

    if (primary.empty()) {
      continue;  // nothing further to verify without a primary
    }
    const uint32_t dst = primary.back();

    // Every subgraph vertex must be able to reach dst inside the subgraph:
    // packets detoured there during failover must not strand.
    {
      std::vector<uint32_t> dist = BfsWithout(sub, dst, UINT32_MAX, nullptr);
      for (uint32_t v : members) {
        if (dist[v] == UINT32_MAX) {
          auto uid = topo.switch_at(v).uid;
          findings.push_back({"vertex-cannot-reach-dst",
                              name + ": subgraph vertex " + UidName(uid) +
                                  " cannot reach the destination switch inside "
                                  "the subgraph"});
        }
      }
    }

    // Algorithm 1 windows, mirroring the builder exactly: [p_i, p_{i+s}] with
    // i advancing by s/2, detour budget s + epsilon.
    const size_t l = primary.size();
    const uint32_t s = std::max<uint32_t>(1, vopts.s);
    const uint32_t step = std::max<uint32_t>(1, s / 2);
    const uint32_t budget = s + vopts.epsilon;
    for (size_t i = 0; i < l; i += step) {
      const size_t j = std::min(i + s, l - 1);
      const uint32_t a = primary[i];
      const uint32_t b = primary[j];

      // (a) Completeness: every fabric vertex within the window budget must be
      // a member (this is exactly the builder's membership rule).
      std::vector<uint32_t> da = BfsWithout(fabric, a, budget, nullptr);
      std::vector<uint32_t> db = BfsWithout(fabric, b, budget, nullptr);
      for (uint32_t x = 0; x < fabric.size(); ++x) {
        if (da[x] != UINT32_MAX && db[x] != UINT32_MAX && da[x] + db[x] <= budget &&
            members.count(x) == 0) {
          findings.push_back(
              {"detour-incomplete",
               name + ": " + UidName(topo.switch_at(x).uid) + " is " +
                   std::to_string(da[x]) + "+" + std::to_string(db[x]) +
                   " hops from window [" + UidName(g.primary[i]) + ".." +
                   UidName(g.primary[j]) + "] (budget " + std::to_string(budget) +
                   ") but is not in the subgraph"});
        }
      }

      // (b) epsilon-goodness: if the fabric can route around this window's
      // primary segment within the budget, the cached subgraph must be able to
      // as well — otherwise a window failure forces a controller round-trip the
      // paper's design avoids (Section 4.3).
      std::set<std::pair<uint32_t, uint32_t>> window_edges;
      for (size_t k = i; k < j; ++k) {
        uint32_t u = primary[k];
        uint32_t v = primary[k + 1];
        window_edges.insert(u < v ? std::pair{u, v} : std::pair{v, u});
      }
      std::vector<uint32_t> fab_detour = BfsWithout(fabric, a, budget, &window_edges);
      if (fab_detour[b] != UINT32_MAX) {
        std::vector<uint32_t> sub_detour = BfsWithout(sub, a, budget, &window_edges);
        if (sub_detour[b] == UINT32_MAX) {
          findings.push_back(
              {"detour-not-eps-good",
               name + ": fabric admits a " + std::to_string(fab_detour[b]) +
                   "-hop detour around window [" + UidName(g.primary[i]) + ".." +
                   UidName(g.primary[j]) + "] (budget " + std::to_string(budget) +
                   ") but the subgraph does not"});
        }
      }
      if (i + s >= l - 1) {
        break;
      }
    }

    // Backup link-disjointness score: fraction of backup edges shared with the
    // primary. The builder only reuses primary links "unless it is unavoidable"
    // (16x penalty), so a high score on a multipath fabric is a red flag.
    if (backup.size() >= 2) {
      std::set<std::pair<uint32_t, uint32_t>> primary_edges;
      for (size_t i = 0; i + 1 < primary.size(); ++i) {
        uint32_t u = primary[i];
        uint32_t v = primary[i + 1];
        primary_edges.insert(u < v ? std::pair{u, v} : std::pair{v, u});
      }
      size_t shared = 0;
      const size_t backup_edges = backup.size() - 1;
      for (size_t i = 0; i + 1 < backup.size(); ++i) {
        uint32_t u = backup[i];
        uint32_t v = backup[i + 1];
        shared += primary_edges.count(u < v ? std::pair{u, v} : std::pair{v, u});
      }
      const double overlap = static_cast<double>(shared) / static_cast<double>(backup_edges);
      if (overlap > vopts.max_backup_overlap) {
        findings.push_back(
            {"backup-overlap",
             name + ": backup shares " + std::to_string(shared) + "/" +
                 std::to_string(backup_edges) + " edges with the primary (" +
                 std::to_string(overlap) + " > allowed " +
                 std::to_string(vopts.max_backup_overlap) + ")"});
      }
    }
  }
  return findings;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string CheckFindingsJson(const std::vector<CheckFinding>& findings) {
  std::ostringstream os;
  os << "{\"count\":" << findings.size() << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    os << (i > 0 ? "," : "") << "{\"check\":\"" << JsonEscape(findings[i].check)
       << "\",\"detail\":\"" << JsonEscape(findings[i].detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string SerializeWirePathGraphs(const std::vector<WirePathGraph>& graphs) {
  std::ostringstream os;
  os << "# dumbnet path graphs: " << graphs.size() << "\n";
  for (const WirePathGraph& g : graphs) {
    os << "pathgraph " << g.src_uid << " " << g.dst_uid << "\n";
    auto emit_path = [&](const char* kind, const std::vector<uint64_t>& path) {
      if (path.empty()) {
        return;
      }
      os << kind;
      for (uint64_t uid : path) {
        os << " " << uid;
      }
      os << "\n";
    };
    emit_path("primary", g.primary);
    emit_path("backup", g.backup);
    for (const WireLink& l : g.links) {
      os << "plink " << l.uid_a << " " << static_cast<int>(l.port_a) << " " << l.uid_b
         << " " << static_cast<int>(l.port_b) << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

Result<std::vector<WirePathGraph>> ParseWirePathGraphs(const std::string& text) {
  auto parse_error = [](size_t line_no, const std::string& message) {
    return Error(ErrorCode::kMalformed,
                 "line " + std::to_string(line_no) + ": " + message);
  };
  std::vector<WirePathGraph> graphs;
  WirePathGraph current;
  bool open = false;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') {
      continue;
    }
    if (kind == "pathgraph") {
      if (open) {
        return parse_error(line_no, "pathgraph inside an unterminated pathgraph");
      }
      current = WirePathGraph{};
      if (!(ls >> current.src_uid >> current.dst_uid)) {
        return parse_error(line_no, "pathgraph needs <src_uid> <dst_uid>");
      }
      open = true;
      continue;
    }
    if (!open) {
      return parse_error(line_no, "'" + kind + "' outside a pathgraph block");
    }
    if (kind == "primary" || kind == "backup") {
      std::vector<uint64_t>& path = kind == "primary" ? current.primary : current.backup;
      uint64_t uid = 0;
      while (ls >> uid) {
        path.push_back(uid);
      }
      if (path.empty()) {
        return parse_error(line_no, kind + " needs at least one uid");
      }
      continue;
    }
    if (kind == "plink") {
      WireLink l;
      int port_a = 0;
      int port_b = 0;
      if (!(ls >> l.uid_a >> port_a >> l.uid_b >> port_b)) {
        return parse_error(line_no, "plink needs <uid_a> <port_a> <uid_b> <port_b>");
      }
      if (port_a < 0 || port_a > kMaxPorts || port_b < 0 || port_b > kMaxPorts) {
        return parse_error(line_no, "plink port out of range [0,254]");
      }
      l.port_a = static_cast<PortNum>(port_a);
      l.port_b = static_cast<PortNum>(port_b);
      current.links.push_back(l);
      continue;
    }
    if (kind == "end") {
      graphs.push_back(std::move(current));
      open = false;
      continue;
    }
    return parse_error(line_no, "unknown directive '" + kind + "'");
  }
  if (open) {
    return parse_error(line_no, "unterminated pathgraph block");
  }
  return graphs;
}

Status SaveWirePathGraphs(const std::vector<WirePathGraph>& graphs,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Error(ErrorCode::kUnavailable, "cannot open " + path);
  }
  out << SerializeWirePathGraphs(graphs);
  return out.good() ? Status::Ok()
                    : Status(Error(ErrorCode::kUnavailable, "write failed: " + path));
}

Result<std::vector<WirePathGraph>> LoadWirePathGraphs(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseWirePathGraphs(buffer.str());
}

int RunDumbnetCheck(const std::string& topo_path,
                    const std::vector<std::string>& pathgraph_paths,
                    const FabricCheckOptions& opts, std::ostream& out) {
  auto topo = LoadTopology(topo_path);
  if (!topo.ok()) {
    // Exit-code contract: 1 is reserved for *findings about a loadable fabric*;
    // anything that prevents the checks from running at all — unreadable or
    // unparseable input included — is an input error, code 2. Callers scripting
    // the gate can therefore distinguish "checked and failed" from "never
    // checked".
    out << "dumbnet-check: " << topo_path << ": " << topo.error().ToString() << "\n";
    return 2;
  }
  std::vector<WirePathGraph> graphs;
  for (const std::string& p : pathgraph_paths) {
    auto parsed = LoadWirePathGraphs(p);
    if (!parsed.ok()) {
      out << "dumbnet-check: " << p << ": " << parsed.error().ToString() << "\n";
      return 2;
    }
    graphs.insert(graphs.end(), parsed.value().begin(), parsed.value().end());
  }
  const std::vector<CheckFinding> findings = CheckFabric(topo.value(), graphs, opts);
  for (const CheckFinding& f : findings) {
    out << "[" << f.check << "] " << f.detail << "\n";
  }
  if (!opts.json_path.empty()) {
    std::ofstream json_out(opts.json_path);
    if (!json_out) {
      out << "dumbnet-check: cannot write " << opts.json_path << "\n";
      return 2;
    }
    json_out << CheckFindingsJson(findings) << "\n";
  }
  out << "dumbnet-check: " << topo.value().switch_count() << " switches, "
      << topo.value().host_count() << " hosts, " << graphs.size() << " path graphs, "
      << findings.size() << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
  return findings.empty() ? 0 : 1;
}

}  // namespace dumbnet
