#include "src/analysis/explore.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "src/sim/footprint.h"
#include "src/util/logging.h"

namespace dumbnet {
namespace explore {

namespace {

// Canonical text signature of a schedule, used for sleep-set deduplication.
// SerializeSchedule is already canonical (map-ordered, one line per batch).
std::string Signature(const Schedule& schedule) { return SerializeSchedule(schedule); }

// The executed order of batch `c.batch_index` under `s` (explicit choice, or
// canonical identity).
std::vector<uint32_t> ExecutedOrder(const Schedule& s, const Conflict& c) {
  auto it = s.choices.find(c.batch_index);
  if (it != s.choices.end() && it->second.size() == c.batch_size) {
    return it->second;
  }
  std::vector<uint32_t> order(c.batch_size);
  for (uint32_t i = 0; i < c.batch_size; ++i) {
    order[i] = i;
  }
  return order;
}

// DPOR child: in the parent's executed order, hoist the later-executed member
// of the conflicting pair to just before the earlier one, reversing the pair's
// relative order while disturbing nothing else.
Schedule ChildSchedule(const Schedule& parent, const Conflict& c) {
  std::vector<uint32_t> order = ExecutedOrder(parent, c);
  size_t ia = 0;
  size_t ib = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == c.pos_a) {
      ia = i;
    }
    if (order[i] == c.pos_b) {
      ib = i;
    }
  }
  const size_t early = std::min(ia, ib);
  const size_t late = std::max(ia, ib);
  const uint32_t moved = order[late];
  order.erase(order.begin() + static_cast<std::ptrdiff_t>(late));
  order.insert(order.begin() + static_cast<std::ptrdiff_t>(early), moved);
  Schedule child = parent;
  child.choices[c.batch_index] = std::move(order);
  return child;
}

bool Diverges(const RunOutcome& base, const RunOutcome& out) {
  return out.state_hash != base.state_hash || out.violations != base.violations;
}

}  // namespace

std::string SerializeSchedule(const Schedule& schedule) {
  std::ostringstream out;
  out << "# dumbnet-explore schedule v1\n";
  for (const auto& [batch, order] : schedule.choices) {
    out << "batch " << batch << " order";
    for (uint32_t p : order) {
      out << ' ' << p;
    }
    out << '\n';
  }
  return out.str();
}

Result<Schedule> ParseSchedule(const std::string& text) {
  Schedule schedule;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string kw_batch;
    std::string kw_order;
    uint64_t batch = 0;
    if (!(fields >> kw_batch >> batch >> kw_order) || kw_batch != "batch" ||
        kw_order != "order") {
      return Error(ErrorCode::kMalformed,
                   "schedule line " + std::to_string(line_no) +
                       ": expected 'batch <index> order <p0> <p1> ...'");
    }
    std::vector<uint32_t> order;
    uint32_t p = 0;
    while (fields >> p) {
      order.push_back(p);
    }
    if (!fields.eof()) {
      return Error(ErrorCode::kMalformed, "schedule line " + std::to_string(line_no) +
                                              ": non-numeric position");
    }
    if (order.empty()) {
      return Error(ErrorCode::kMalformed,
                   "schedule line " + std::to_string(line_no) + ": empty order");
    }
    std::vector<bool> hit(order.size(), false);
    for (uint32_t pos : order) {
      if (pos >= order.size() || hit[pos]) {
        return Error(ErrorCode::kMalformed,
                     "schedule line " + std::to_string(line_no) +
                         ": order is not a permutation of 0.." +
                         std::to_string(order.size() - 1));
      }
      hit[pos] = true;
    }
    if (!schedule.choices.emplace(batch, std::move(order)).second) {
      return Error(ErrorCode::kMalformed, "schedule line " + std::to_string(line_no) +
                                              ": duplicate batch " +
                                              std::to_string(batch));
    }
  }
  return schedule;
}

Simulator::BatchPermuter MakePermuter(Schedule schedule) {
  return [schedule = std::move(schedule)](uint64_t batch_index, TimeNs /*at*/,
                                          std::vector<uint32_t>& order) {
    auto it = schedule.choices.find(batch_index);
    if (it == schedule.choices.end()) {
      return;
    }
    if (it->second.size() != order.size()) {
      DN_WARN << "schedule order for batch " << batch_index << " has "
              << it->second.size() << " entries, batch has " << order.size()
              << "; keeping canonical order";
      return;
    }
    order = it->second;
  };
}

HazardCollector::HazardCollector(Simulator* sim) : sim_(sim) {
  sim_->SetHazardHook([this](const footprint::BatchHazard& hazard) {
    Conflict c;
    c.batch_index = hazard.batch_index;
    c.batch_size = hazard.batch_size;
    c.pos_a = hazard.pos_a;
    c.pos_b = hazard.pos_b;
    if (!seen_.insert(c).second) {
      return;
    }
    conflicts_.push_back(c);
    std::string line;
    footprint::FormatHazard(hazard, line);
    lines_.push_back(std::move(line));
  });
}

HazardCollector::~HazardCollector() { sim_->SetHazardHook(nullptr); }

ExploreReport Explore(const ScenarioFn& run, const ExploreConfig& config) {
  ExploreReport report;
  report.base = run(Schedule{});
  report.schedules_run = 1;

  std::unordered_set<std::string> visited;  // sleep set: schedules already run
  visited.insert(Signature(Schedule{}));
  std::set<Conflict> all_conflicts(report.base.conflicts.begin(),
                                   report.base.conflicts.end());

  std::deque<Schedule> frontier;
  auto push_children = [&](const Schedule& parent, const RunOutcome& out) {
    for (const Conflict& c : out.conflicts) {
      all_conflicts.insert(c);
      Schedule child = ChildSchedule(parent, c);
      if (visited.insert(Signature(child)).second) {
        frontier.push_back(std::move(child));
      }
    }
  };
  push_children(Schedule{}, report.base);

  while (!frontier.empty() && !report.diverged) {
    if (report.schedules_run >= config.max_schedules) {
      report.budget_exhausted = true;
      break;
    }
    Schedule schedule = std::move(frontier.front());
    frontier.pop_front();
    RunOutcome out = run(schedule);
    ++report.schedules_run;
    for (const Conflict& c : out.conflicts) {
      all_conflicts.insert(c);
    }
    if (Diverges(report.base, out)) {
      report.diverged = true;
      report.counterexample = schedule;
      report.divergent_hash = out.state_hash;
      report.divergent_violations = out.violations;
      break;
    }
    push_children(schedule, out);
  }
  report.distinct_conflicts = all_conflicts.size();

  if (report.diverged && config.minimize) {
    // Greedy delta-debugging over batch choices: drop one choice at a time and
    // keep the drop whenever divergence persists. Counterexamples are typically
    // one or two choices, so the quadratic worst case never bites.
    bool shrunk = true;
    while (shrunk && report.counterexample.choices.size() > 1) {
      shrunk = false;
      for (const auto& [batch, order] : report.counterexample.choices) {
        Schedule trial = report.counterexample;
        trial.choices.erase(batch);
        RunOutcome out = run(trial);
        ++report.schedules_run;
        if (Diverges(report.base, out)) {
          report.counterexample = std::move(trial);
          report.divergent_hash = out.state_hash;
          report.divergent_violations = std::move(out.violations);
          shrunk = true;
          break;
        }
      }
    }
  }
  return report;
}

}  // namespace explore
}  // namespace dumbnet
