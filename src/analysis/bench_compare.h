// Benchmark regression gate: parses the JSON reports the bench/ binaries emit
// (bench_util.h's JsonReporter) and compares a current run against a committed
// baseline. Direction is inferred from the unit: time-like units regress by
// growing, everything else (rates, ratios, counts) regresses by shrinking.
// dumbnet-check --bench-json wires this into CI.
#ifndef DUMBNET_SRC_ANALYSIS_BENCH_COMPARE_H_
#define DUMBNET_SRC_ANALYSIS_BENCH_COMPARE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/analysis/fabric_check.h"
#include "src/util/result.h"

namespace dumbnet {

struct BenchRow {
  std::string bench;
  std::string metric;
  double value = 0.0;
  std::string unit;
  // Key/value qualifiers (topology, size, ...). Order-insensitive for matching.
  std::vector<std::pair<std::string, std::string>> params;

  // Stable identity: bench/metric plus sorted params.
  std::string Key() const;
};

// Parses a JsonReporter-format report: an array of flat row objects. Returns an
// error (with context) on malformed input.
Result<std::vector<BenchRow>> ParseBenchJson(const std::string& text);

// True for time-like units ("ns", "us", "ms", "s"), where smaller is better.
bool LowerIsBetter(const std::string& unit);

// Compares `current` against `baseline`. A row regresses when it is worse than
// baseline by more than `tolerance` (fractional, e.g. 0.20 = 20%). Baseline rows
// missing from `current` are findings too (a silently dropped benchmark is how
// regressions hide); new rows in `current` are fine.
std::vector<CheckFinding> CompareBenchRows(const std::vector<BenchRow>& baseline,
                                           const std::vector<BenchRow>& current,
                                           double tolerance = 0.20);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_ANALYSIS_BENCH_COMPARE_H_
