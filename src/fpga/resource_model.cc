#include "src/fpga/resource_model.h"

namespace dumbnet {

FpgaResources DumbNetSwitchResources(uint32_t ports, const FpgaModelParams& params) {
  FpgaResources out;
  out.luts = params.dn_base_luts + params.dn_pop_luts * ports +
             params.dn_demux_luts * ports * ports;
  out.registers = params.dn_base_regs + params.dn_pop_regs * ports +
                  params.dn_demux_regs * ports * ports;
  return out;
}

FpgaResources OpenFlowSwitchResources(uint32_t ports, const FpgaModelParams& params) {
  FpgaResources out;
  out.luts = params.of_base_luts + params.of_port_luts * ports +
             params.of_xbar_luts * ports * ports;
  out.registers = params.of_base_regs + params.of_port_regs * ports +
                  params.of_xbar_regs * ports * ports;
  return out;
}

}  // namespace dumbnet
