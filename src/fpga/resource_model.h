// Analytic FPGA resource model for Figure 7.
//
// Substitution note (see DESIGN.md): we have no FPGA toolchain, so instead of
// synthesizing Verilog we model LUT/flip-flop usage from the two architectures'
// structure and calibrate against the synthesis numbers the paper reports on the
// ONetSwitch45 (Zynq-7000):
//
//   DumbNet 4-port:   1,713 LUTs /  1,504 registers (1,228 lines of Verilog)
//   OpenFlow 4-port: 16,070 LUTs / 17,193 registers (NetFPGA OpenFlow switch)
//
// DumbNet's two-stage pipeline (Figure 5) has a per-port pop-label module (linear
// in P) and a P-way output demux per input port (quadratic in P, small constant).
// The OpenFlow reference needs a multi-protocol parser and flow-table/TCAM
// machinery per port plus its own crossbar, giving it a large constant and a much
// larger per-port cost. Both exclude I/O buffers and MACs (as the paper does).
#ifndef DUMBNET_SRC_FPGA_RESOURCE_MODEL_H_
#define DUMBNET_SRC_FPGA_RESOURCE_MODEL_H_

#include <cstdint>

namespace dumbnet {

struct FpgaResources {
  uint32_t luts = 0;
  uint32_t registers = 0;
};

struct FpgaModelParams {
  // DumbNet: base control + per-port pop-label + per-(port pair) demux leg.
  uint32_t dn_base_luts = 513;
  uint32_t dn_pop_luts = 200;
  uint32_t dn_demux_luts = 25;
  uint32_t dn_base_regs = 424;
  uint32_t dn_pop_regs = 150;
  uint32_t dn_demux_regs = 30;
  // OpenFlow: flow-table + parser base, heavy per-port cost, crossbar leg.
  uint32_t of_base_luts = 11990;
  uint32_t of_port_luts = 1000;
  uint32_t of_xbar_luts = 5;
  uint32_t of_base_regs = 12949;
  uint32_t of_port_regs = 1045;
  uint32_t of_xbar_regs = 4;
};

// Resources of a P-port DumbNet switch (Figure 5 architecture).
FpgaResources DumbNetSwitchResources(uint32_t ports,
                                     const FpgaModelParams& params = FpgaModelParams());

// Resources of the NetFPGA OpenFlow reference switch at P ports.
FpgaResources OpenFlowSwitchResources(uint32_t ports,
                                      const FpgaModelParams& params = FpgaModelParams());

}  // namespace dumbnet

#endif  // DUMBNET_SRC_FPGA_RESOURCE_MODEL_H_
