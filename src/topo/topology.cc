#include "src/topo/topology.h"

#include <cassert>
#include <deque>

namespace dumbnet {
namespace {

// Switch UIDs and host MACs are synthetic but stable: distinct spaces so a UID can
// never be mistaken for a MAC in tests.
constexpr uint64_t kSwitchUidBase = 0x5100'0000'0000'0000ULL;
constexpr uint64_t kHostMacBase = 0x02'00'00'00'00'00ULL;  // locally administered

}  // namespace

void Topology::SetIdSpace(uint32_t id_space) {
  assert(switches_.empty() && hosts_.empty());
  id_space_ = id_space;
}

uint64_t Topology::switch_uid_base() const {
  return kSwitchUidBase + (static_cast<uint64_t>(id_space_) << 24);
}

uint64_t Topology::host_mac_base() const {
  return kHostMacBase + (static_cast<uint64_t>(id_space_) << 24);
}

std::string NodeId::ToString() const {
  return (is_switch() ? "S" : "H") + std::to_string(index);
}

std::string Endpoint::ToString() const {
  return node.ToString() + "-" + std::to_string(static_cast<int>(port));
}

uint32_t Topology::AddSwitch(uint8_t num_ports) {
  SwitchInfo info;
  info.uid = switch_uid_base() + switches_.size();
  info.num_ports = num_ports;
  info.port_link.assign(static_cast<size_t>(num_ports) + 1, kInvalidLink);
  switches_.push_back(std::move(info));
  return static_cast<uint32_t>(switches_.size() - 1);
}

uint32_t Topology::AddHost() {
  HostInfo info;
  info.mac = host_mac_base() + hosts_.size();
  hosts_.push_back(info);
  return static_cast<uint32_t>(hosts_.size() - 1);
}

Result<LinkIndex> Topology::Connect(Endpoint a, Endpoint b, double bandwidth_gbps,
                                    int64_t propagation_ns) {
  if (a.node == b.node) {
    return Error(ErrorCode::kInvalidArgument, "self-link at " + a.ToString());
  }
  for (const Endpoint& e : {a, b}) {
    if (e.node.is_switch()) {
      if (e.node.index >= switches_.size()) {
        return Error(ErrorCode::kOutOfRange, "no such switch " + e.ToString());
      }
      const SwitchInfo& sw = switches_[e.node.index];
      if (e.port < 1 || e.port > sw.num_ports) {
        return Error(ErrorCode::kOutOfRange, "bad port " + e.ToString());
      }
      if (sw.port_link[e.port] != kInvalidLink) {
        return Error(ErrorCode::kAlreadyExists, "port in use " + e.ToString());
      }
    } else {
      if (e.node.index >= hosts_.size()) {
        return Error(ErrorCode::kOutOfRange, "no such host " + e.ToString());
      }
      if (hosts_[e.node.index].link != kInvalidLink) {
        return Error(ErrorCode::kAlreadyExists, "host already attached " + e.ToString());
      }
    }
  }

  Link link;
  link.a = a;
  link.b = b;
  link.bandwidth_gbps = bandwidth_gbps;
  link.propagation_ns = propagation_ns;
  links_.push_back(link);
  LinkIndex idx = static_cast<LinkIndex>(links_.size() - 1);

  for (const Endpoint& e : {a, b}) {
    if (e.node.is_switch()) {
      switches_[e.node.index].port_link[e.port] = idx;
    } else {
      hosts_[e.node.index].link = idx;
    }
  }
  return idx;
}

Result<LinkIndex> Topology::ConnectSwitches(uint32_t sw_a, PortNum port_a, uint32_t sw_b,
                                            PortNum port_b, double bandwidth_gbps) {
  return Connect(Endpoint{NodeId::Switch(sw_a), port_a}, Endpoint{NodeId::Switch(sw_b), port_b},
                 bandwidth_gbps);
}

Result<LinkIndex> Topology::AttachHost(uint32_t host, uint32_t sw, PortNum port,
                                       double bandwidth_gbps) {
  return Connect(Endpoint{NodeId::Host(host), 1}, Endpoint{NodeId::Switch(sw), port},
                 bandwidth_gbps);
}

LinkIndex Topology::LinkAtPort(uint32_t sw, PortNum port) const {
  if (sw >= switches_.size()) {
    return kInvalidLink;
  }
  const SwitchInfo& info = switches_[sw];
  if (port < 1 || port > info.num_ports) {
    return kInvalidLink;
  }
  return info.port_link[port];
}

Result<Endpoint> Topology::PeerOf(uint32_t sw, PortNum port) const {
  LinkIndex li = LinkAtPort(sw, port);
  if (li == kInvalidLink) {
    return Error(ErrorCode::kNotFound,
                 "nothing at S" + std::to_string(sw) + "-" + std::to_string(port));
  }
  return links_[li].Peer(NodeId::Switch(sw));
}

Result<Endpoint> Topology::HostUplink(uint32_t host) const {
  if (host >= hosts_.size()) {
    return Error(ErrorCode::kOutOfRange, "no such host H" + std::to_string(host));
  }
  LinkIndex li = hosts_[host].link;
  if (li == kInvalidLink) {
    return Error(ErrorCode::kNotFound, "host H" + std::to_string(host) + " not attached");
  }
  return links_[li].Peer(NodeId::Host(host));
}

Result<uint32_t> Topology::SwitchByUid(uint64_t uid) const {
  // UIDs are assigned densely from the base, so this is O(1).
  if (uid >= switch_uid_base() && uid < switch_uid_base() + switches_.size()) {
    return static_cast<uint32_t>(uid - switch_uid_base());
  }
  return Error(ErrorCode::kNotFound, "no switch with uid " + std::to_string(uid));
}

Result<uint32_t> Topology::HostByMac(uint64_t mac) const {
  if (mac >= host_mac_base() && mac < host_mac_base() + hosts_.size()) {
    return static_cast<uint32_t>(mac - host_mac_base());
  }
  return Error(ErrorCode::kNotFound, "no host with mac " + std::to_string(mac));
}

size_t Topology::InterSwitchLinkCount() const {
  size_t n = 0;
  for (const Link& l : links_) {
    if (l.a.node.is_switch() && l.b.node.is_switch()) {
      ++n;
    }
  }
  return n;
}

void Topology::SetLinkUp(LinkIndex i, bool up) {
  if (i >= links_.size() || links_[i].up == up) {
    return;
  }
  links_[i].up = up;
  for (const auto& observer : observers_) {
    observer(i, up);
  }
}

void Topology::DetachLink(LinkIndex i) {
  if (i >= links_.size() || links_[i].detached) {
    return;
  }
  Link& l = links_[i];
  l.up = false;
  l.detached = true;
  for (const Endpoint& e : {l.a, l.b}) {
    if (e.node.is_switch()) {
      switches_[e.node.index].port_link[e.port] = kInvalidLink;
    } else {
      hosts_[e.node.index].link = kInvalidLink;
    }
  }
}

Status Topology::Validate() const {
  for (uint32_t s = 0; s < switches_.size(); ++s) {
    const SwitchInfo& sw = switches_[s];
    if (sw.port_link.size() != static_cast<size_t>(sw.num_ports) + 1) {
      return Error(ErrorCode::kInternal, "port map size mismatch on S" + std::to_string(s));
    }
    for (PortNum p = 1; p <= sw.num_ports; ++p) {
      LinkIndex li = sw.port_link[p];
      if (li == kInvalidLink) {
        continue;
      }
      if (li >= links_.size()) {
        return Error(ErrorCode::kInternal, "dangling link index on S" + std::to_string(s));
      }
      const Link& l = links_[li];
      Endpoint self{NodeId::Switch(s), p};
      if (!(l.a == self) && !(l.b == self)) {
        return Error(ErrorCode::kInternal, "port map inconsistent at " + self.ToString());
      }
    }
  }
  for (uint32_t h = 0; h < hosts_.size(); ++h) {
    if (hosts_[h].link == kInvalidLink) {
      return Error(ErrorCode::kInternal, "host H" + std::to_string(h) + " unattached");
    }
    const Link& l = links_[hosts_[h].link];
    NodeId self = NodeId::Host(h);
    if (!(l.a.node == self) && !(l.b.node == self)) {
      return Error(ErrorCode::kInternal, "host link inconsistent H" + std::to_string(h));
    }
  }
  for (LinkIndex i = 0; i < links_.size(); ++i) {
    const Link& l = links_[i];
    if (l.a.node == l.b.node) {
      return Error(ErrorCode::kInternal, "self link " + std::to_string(i));
    }
  }
  return Status::Ok();
}

bool Topology::IsConnected() const {
  if (switches_.empty()) {
    return true;
  }
  std::vector<bool> seen(switches_.size(), false);
  std::deque<uint32_t> q;
  q.push_back(0);
  seen[0] = true;
  size_t count = 1;
  while (!q.empty()) {
    uint32_t s = q.front();
    q.pop_front();
    const SwitchInfo& sw = switches_[s];
    for (PortNum p = 1; p <= sw.num_ports; ++p) {
      LinkIndex li = sw.port_link[p];
      if (li == kInvalidLink || !links_[li].up) {
        continue;
      }
      const Endpoint& peer = links_[li].Peer(NodeId::Switch(s));
      if (peer.node.is_switch() && !seen[peer.node.index]) {
        seen[peer.node.index] = true;
        ++count;
        q.push_back(peer.node.index);
      }
    }
  }
  return count == switches_.size();
}

}  // namespace dumbnet
