// Physical topology model: switches with numbered ports, hosts with a single NIC,
// and point-to-point links. This is the ground truth the simulators execute against;
// the DumbNet controller builds its own *discovered* copy of it by probing.
//
// Port numbering: DumbNet reserves tag 0 for switch-ID queries and 0xFF for the
// end-of-path marker ø, so valid port numbers are 1..254 (Section 3.2/4.1 of the
// paper).
#ifndef DUMBNET_SRC_TOPO_TOPOLOGY_H_
#define DUMBNET_SRC_TOPO_TOPOLOGY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace dumbnet {

using PortNum = uint8_t;

// Reserved tag values (not valid port numbers).
constexpr PortNum kIdQueryTag = 0x00;   // "reply with your switch ID"
constexpr PortNum kPathEndTag = 0xFF;   // ø: end-of-path marker
constexpr PortNum kMaxPorts = 254;

// Node identifier: switches and hosts live in separate index spaces.
struct NodeId {
  enum class Kind : uint8_t { kSwitch, kHost };

  Kind kind = Kind::kSwitch;
  uint32_t index = 0;

  static NodeId Switch(uint32_t i) { return NodeId{Kind::kSwitch, i}; }
  static NodeId Host(uint32_t i) { return NodeId{Kind::kHost, i}; }

  bool is_switch() const { return kind == Kind::kSwitch; }
  bool is_host() const { return kind == Kind::kHost; }

  bool operator==(const NodeId&) const = default;

  std::string ToString() const;
};

// One end of a link: a node and the port it uses. Hosts always use port 1.
struct Endpoint {
  NodeId node;
  PortNum port = 1;

  bool operator==(const Endpoint&) const = default;
  std::string ToString() const;
};

using LinkIndex = uint32_t;
constexpr LinkIndex kInvalidLink = UINT32_MAX;

struct Link {
  Endpoint a;
  Endpoint b;
  bool up = true;
  bool detached = false;  // tombstone left behind by DetachLink()
  double bandwidth_gbps = 10.0;
  int64_t propagation_ns = 500;  // ~100 m of fiber
  // Gray failure (up-but-lossy): parts-per-million of packets the link eats
  // while it reports "up". 0 = healthy. The endpoints see no port alarm — the
  // whole point of a gray failure is that nothing notices at the physical layer.
  uint32_t loss_ppm = 0;

  // Returns the endpoint opposite to `from`.
  const Endpoint& Peer(const NodeId& from) const { return from == a.node ? b : a; }
  const Endpoint& Side(const NodeId& of) const { return of == a.node ? a : b; }
};

struct SwitchInfo {
  uint64_t uid = 0;    // burned-in unique ID, returned by tag-0 queries
  uint8_t num_ports = 0;
  // Port -> link index; kInvalidLink when nothing is plugged in. Index 0 unused.
  std::vector<LinkIndex> port_link;
};

struct HostInfo {
  uint64_t mac = 0;    // host identity (we use a synthetic 48-bit MAC)
  LinkIndex link = kInvalidLink;
};

// The physical network. Mutations (failing and restoring links) notify registered
// observers so simulated switches can raise port-state alarms.
class Topology {
 public:
  Topology() = default;

  // --- Construction -----------------------------------------------------------
  // Places this topology's switch UIDs and host MACs in a disjoint identifier
  // space (needed when several independent fabrics — e.g. the subnets of a
  // layer-3 deployment — coexist). Call before adding any node.
  void SetIdSpace(uint32_t id_space);

  uint32_t AddSwitch(uint8_t num_ports);
  uint32_t AddHost();

  // Connects two endpoints with a fresh link. Fails if a port is out of range or
  // already wired.
  Result<LinkIndex> Connect(Endpoint a, Endpoint b, double bandwidth_gbps = 10.0,
                            int64_t propagation_ns = 500);

  // Convenience overloads.
  Result<LinkIndex> ConnectSwitches(uint32_t sw_a, PortNum port_a, uint32_t sw_b,
                                    PortNum port_b, double bandwidth_gbps = 10.0);
  Result<LinkIndex> AttachHost(uint32_t host, uint32_t sw, PortNum port,
                               double bandwidth_gbps = 10.0);

  // --- Queries ----------------------------------------------------------------
  size_t switch_count() const { return switches_.size(); }
  size_t host_count() const { return hosts_.size(); }
  size_t link_count() const { return links_.size(); }

  const SwitchInfo& switch_at(uint32_t i) const { return switches_[i]; }
  const HostInfo& host_at(uint32_t i) const { return hosts_[i]; }
  const Link& link_at(LinkIndex i) const { return links_[i]; }
  Link& mutable_link(LinkIndex i) { return links_[i]; }

  // Link plugged into switch `sw` port `port`, or kInvalidLink.
  LinkIndex LinkAtPort(uint32_t sw, PortNum port) const;

  // The endpoint on the far side of (sw, port); error if unwired.
  Result<Endpoint> PeerOf(uint32_t sw, PortNum port) const;

  // Switch a host is attached to, with the switch-side port.
  Result<Endpoint> HostUplink(uint32_t host) const;

  // Looks up a switch index by burned-in UID.
  Result<uint32_t> SwitchByUid(uint64_t uid) const;
  // Looks up a host index by MAC.
  Result<uint32_t> HostByMac(uint64_t mac) const;

  // Number of switch-to-switch links (excludes host attachments).
  size_t InterSwitchLinkCount() const;

  // --- Mutation ----------------------------------------------------------------
  // Fails/restores a link, notifying observers. Idempotent.
  void SetLinkUp(LinkIndex i, bool up);

  // Overrides a link's propagation delay (cable length). Sharded experiments use
  // longer inter-tier cables: the shard plan's conservative lookahead is the
  // minimum cross-shard propagation, so this knob sets the window width.
  void SetLinkPropagation(LinkIndex i, int64_t propagation_ns) {
    links_[i].propagation_ns = propagation_ns;
  }

  // Sets a link's gray-failure loss rate (parts per million). No observer
  // notification: gray failures are silent — switches keep forwarding into the
  // lossy link and hosts only notice through end-to-end symptoms.
  void SetLinkLoss(LinkIndex i, uint32_t loss_ppm) { links_[i].loss_ppm = loss_ppm; }

  // Unplugs a link permanently: both ports become free for new connections and the
  // link entry is tombstoned (indices stay stable). Used by discovered-topology
  // mirrors when a port is re-wired. No observer notification (not a failure).
  void DetachLink(LinkIndex i);

  using LinkObserver = std::function<void(LinkIndex, bool up)>;
  void AddLinkObserver(LinkObserver observer) { observers_.push_back(std::move(observer)); }

  // --- Validation ---------------------------------------------------------------
  // Checks structural invariants: port maps consistent with links, no self-links,
  // every host attached. Returns the first violation found.
  Status Validate() const;

  // True if every pair of switches with any link up is connected through up links.
  bool IsConnected() const;

 private:
  uint64_t switch_uid_base() const;
  uint64_t host_mac_base() const;

  uint32_t id_space_ = 0;
  std::vector<SwitchInfo> switches_;
  std::vector<HostInfo> hosts_;
  std::vector<Link> links_;
  std::vector<LinkObserver> observers_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_TOPO_TOPOLOGY_H_
