#include "src/topo/serialize.h"

#include <fstream>
#include <sstream>

namespace dumbnet {

std::string SerializeTopology(const Topology& topo) {
  std::ostringstream os;
  os << "# dumbnet topology: " << topo.switch_count() << " switches, "
     << topo.host_count() << " hosts, " << topo.link_count() << " links\n";
  for (uint32_t s = 0; s < topo.switch_count(); ++s) {
    os << "switch " << static_cast<int>(topo.switch_at(s).num_ports) << "\n";
  }
  for (uint32_t h = 0; h < topo.host_count(); ++h) {
    os << "host\n";
  }
  // Links in index order so `down <index>` lines stay stable. Host attachments are
  // links too; emit whichever form matches.
  std::vector<LinkIndex> downs;
  std::vector<LinkIndex> emitted;  // original index -> emitted order
  for (LinkIndex li = 0; li < topo.link_count(); ++li) {
    const Link& l = topo.link_at(li);
    if (l.detached) {
      continue;
    }
    if (l.a.node.is_switch() && l.b.node.is_switch()) {
      os << "link S" << l.a.node.index << " " << static_cast<int>(l.a.port) << " S"
         << l.b.node.index << " " << static_cast<int>(l.b.port) << " "
         << l.bandwidth_gbps << " " << l.propagation_ns << "\n";
    } else {
      const Endpoint& host_end = l.a.node.is_host() ? l.a : l.b;
      const Endpoint& sw_end = l.a.node.is_host() ? l.b : l.a;
      os << "attach H" << host_end.node.index << " S" << sw_end.node.index << " "
         << static_cast<int>(sw_end.port) << " " << l.bandwidth_gbps << "\n";
    }
    if (!l.up) {
      downs.push_back(static_cast<LinkIndex>(emitted.size()));
    }
    emitted.push_back(li);
  }
  for (LinkIndex d : downs) {
    os << "down " << d << "\n";
  }
  return os.str();
}

namespace {

Error ParseError(size_t line_no, const std::string& message) {
  return Error(ErrorCode::kMalformed,
               "line " + std::to_string(line_no) + ": " + message);
}

// Parses "S12" / "H3" style node references.
Result<uint32_t> ParseIndex(const std::string& token, char prefix, size_t line_no) {
  if (token.size() < 2 || token[0] != prefix) {
    return ParseError(line_no, std::string("expected ") + prefix + "<index>, got '" +
                                   token + "'");
  }
  try {
    return static_cast<uint32_t>(std::stoul(token.substr(1)));
  } catch (...) {
    return ParseError(line_no, "bad index in '" + token + "'");
  }
}

}  // namespace

Result<Topology> ParseTopology(const std::string& text) {
  Topology topo;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool idspace_allowed = true;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') {
      continue;
    }
    if (kind == "idspace") {
      uint32_t space = 0;
      if (!(ls >> space)) {
        return ParseError(line_no, "idspace needs a number");
      }
      if (!idspace_allowed) {
        return ParseError(line_no, "idspace must precede all nodes");
      }
      topo.SetIdSpace(space);
      continue;
    }
    if (kind == "switch") {
      int ports = 0;
      if (!(ls >> ports) || ports < 1 || ports > kMaxPorts) {
        return ParseError(line_no, "switch needs a port count in [1,254]");
      }
      topo.AddSwitch(static_cast<uint8_t>(ports));
      idspace_allowed = false;
      continue;
    }
    if (kind == "host") {
      topo.AddHost();
      idspace_allowed = false;
      continue;
    }
    if (kind == "link") {
      std::string a, b;
      int port_a = 0, port_b = 0;
      double gbps = 10.0;
      int64_t prop = 500;
      if (!(ls >> a >> port_a >> b >> port_b)) {
        return ParseError(line_no, "link needs S<a> <port> S<b> <port>");
      }
      ls >> gbps >> prop;  // optional
      auto ia = ParseIndex(a, 'S', line_no);
      auto ib = ParseIndex(b, 'S', line_no);
      if (!ia.ok()) {
        return ia.error();
      }
      if (!ib.ok()) {
        return ib.error();
      }
      auto r = topo.Connect(Endpoint{NodeId::Switch(ia.value()), static_cast<PortNum>(port_a)},
                            Endpoint{NodeId::Switch(ib.value()), static_cast<PortNum>(port_b)},
                            gbps, prop);
      if (!r.ok()) {
        return ParseError(line_no, r.error().message());
      }
      continue;
    }
    if (kind == "attach") {
      std::string h, s;
      int port = 0;
      double gbps = 10.0;
      if (!(ls >> h >> s >> port)) {
        return ParseError(line_no, "attach needs H<h> S<s> <port>");
      }
      ls >> gbps;
      auto ih = ParseIndex(h, 'H', line_no);
      auto is = ParseIndex(s, 'S', line_no);
      if (!ih.ok()) {
        return ih.error();
      }
      if (!is.ok()) {
        return is.error();
      }
      auto r = topo.AttachHost(ih.value(), is.value(), static_cast<PortNum>(port), gbps);
      if (!r.ok()) {
        return ParseError(line_no, r.error().message());
      }
      continue;
    }
    if (kind == "down") {
      LinkIndex li = 0;
      if (!(ls >> li) || li >= topo.link_count()) {
        return ParseError(line_no, "down needs a valid link index");
      }
      topo.SetLinkUp(li, false);
      continue;
    }
    return ParseError(line_no, "unknown directive '" + kind + "'");
  }
  if (Status s = topo.Validate(); !s.ok()) {
    return Error(ErrorCode::kMalformed, "validation failed: " + s.error().message());
  }
  return topo;
}

Status SaveTopology(const Topology& topo, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Error(ErrorCode::kUnavailable, "cannot open " + path);
  }
  out << SerializeTopology(topo);
  return out.good() ? Status::Ok()
                    : Status(Error(ErrorCode::kUnavailable, "write failed: " + path));
}

Result<Topology> LoadTopology(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error(ErrorCode::kNotFound, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTopology(buffer.str());
}

}  // namespace dumbnet
