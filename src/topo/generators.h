// Topology generators for the shapes used in the paper's evaluation:
//   - leaf-spine (the 7-switch / 27-server testbed, Section 7),
//   - fat-tree(k) (Figure 8a, Table 2),
//   - 3-D cube / torus grids (Figures 8, 12),
//   - jellyfish-style random regular graphs (irregular-topology tests).
//
// Generators return the Topology plus role annotations (which switches are spines,
// cores, ...) so experiments can pick failure points and measure uplinks.
#ifndef DUMBNET_SRC_TOPO_GENERATORS_H_
#define DUMBNET_SRC_TOPO_GENERATORS_H_

#include <array>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace dumbnet {

struct LeafSpineConfig {
  uint32_t num_spine = 2;
  uint32_t num_leaf = 5;
  uint32_t hosts_per_leaf = 5;
  uint8_t switch_ports = 64;
  double uplink_gbps = 10.0;
  double host_gbps = 10.0;
  uint32_t id_space = 0;  // disjoint UID/MAC space (multi-fabric deployments)
};

struct LeafSpineTopo {
  Topology topo;
  std::vector<uint32_t> spines;
  std::vector<uint32_t> leaves;
  // hosts[i] = hosts attached to leaves[i].
  std::vector<std::vector<uint32_t>> hosts;
};

// Builds a 2-tier leaf-spine fabric; every leaf connects to every spine once.
Result<LeafSpineTopo> MakeLeafSpine(const LeafSpineConfig& config);

// The paper's testbed: 2 spines, 5 leaves, 5 servers per leaf (25 workload hosts),
// plus 2 extra hosts on the first leaf (27 total; one acts as controller).
Result<LeafSpineTopo> MakePaperTestbed();

struct FatTreeConfig {
  uint32_t k = 4;            // must be even; 5k^2/4 switches, k^3/4 hosts
  bool attach_hosts = true;  // large control-plane experiments skip hosts
  double link_gbps = 10.0;
  uint32_t id_space = 0;  // disjoint UID/MAC space (multi-fabric deployments)
};

struct FatTreeTopo {
  Topology topo;
  std::vector<uint32_t> core;
  std::vector<uint32_t> aggregation;
  std::vector<uint32_t> edge;
};

// Standard 3-tier fat-tree: k pods, (k/2)^2 cores, k/2 agg + k/2 edge per pod,
// k/2 hosts per edge switch.
Result<FatTreeTopo> MakeFatTree(const FatTreeConfig& config);

struct CubeConfig {
  std::array<uint32_t, 3> dims = {8, 8, 8};
  bool wrap = false;          // true = torus
  uint32_t hosts_per_switch = 1;
  uint8_t switch_ports = 64;  // physical ports; only 6+hosts are wired
  double link_gbps = 10.0;
  uint32_t id_space = 0;  // disjoint UID/MAC space (multi-fabric deployments)
};

struct CubeTopo {
  Topology topo;
  // switch index at grid coordinate (x, y, z).
  uint32_t At(uint32_t x, uint32_t y, uint32_t z) const {
    return (x * dims[1] + y) * dims[2] + z;
  }
  std::array<uint32_t, 3> dims;
  std::vector<uint32_t> hosts;
};

// 3-D grid of switches; each links to its +/-1 neighbors per axis (wrapping if
// torus). Matches the paper's "cube" emulation topologies.
Result<CubeTopo> MakeCube(const CubeConfig& config);

struct JellyfishConfig {
  uint32_t num_switches = 64;
  uint8_t switch_ports = 16;
  uint8_t network_degree = 8;  // ports used for switch-to-switch random wiring
  uint32_t hosts_per_switch = 2;
  uint64_t seed = 1;
  double link_gbps = 10.0;
  uint32_t id_space = 0;  // disjoint UID/MAC space (multi-fabric deployments)
};

struct JellyfishTopo {
  Topology topo;
  std::vector<uint32_t> hosts;
};

// Random regular-ish graph built with the standard jellyfish pairing procedure.
Result<JellyfishTopo> MakeJellyfish(const JellyfishConfig& config);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_TOPO_GENERATORS_H_
