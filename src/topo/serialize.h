// Topology (de)serialization in a line-oriented text format, so fabrics can be
// described in files, diffed, and loaded by tools:
//
//   # comment
//   idspace 0
//   switch <num_ports>            # index assigned in order, 0-based
//   host                          # index assigned in order, 0-based
//   link S<a> <port_a> S<b> <port_b> [gbps] [prop_ns]
//   attach H<h> S<s> <port> [gbps]
//   down <link_index>             # mark a previously declared link down
//
// Serialization round-trips everything Topology models (including down links);
// detached links are skipped.
#ifndef DUMBNET_SRC_TOPO_SERIALIZE_H_
#define DUMBNET_SRC_TOPO_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "src/topo/topology.h"
#include "src/util/result.h"

namespace dumbnet {

// Writes `topo` in the text format.
std::string SerializeTopology(const Topology& topo);

// Parses the text format. Returns the first error with a line number.
Result<Topology> ParseTopology(const std::string& text);

// File helpers.
Status SaveTopology(const Topology& topo, const std::string& path);
Result<Topology> LoadTopology(const std::string& path);

}  // namespace dumbnet

#endif  // DUMBNET_SRC_TOPO_SERIALIZE_H_
