#include "src/topo/generators.h"

#include <algorithm>
#include <set>

namespace dumbnet {

Result<LeafSpineTopo> MakeLeafSpine(const LeafSpineConfig& config) {
  if (config.num_spine == 0 || config.num_leaf == 0) {
    return Error(ErrorCode::kInvalidArgument, "leaf-spine needs at least one of each tier");
  }
  if (config.num_spine + config.hosts_per_leaf > config.switch_ports) {
    return Error(ErrorCode::kInvalidArgument, "leaf switch port budget exceeded");
  }
  if (config.num_leaf > config.switch_ports) {
    return Error(ErrorCode::kInvalidArgument, "spine switch port budget exceeded");
  }

  LeafSpineTopo out;
  out.topo.SetIdSpace(config.id_space);
  for (uint32_t i = 0; i < config.num_spine; ++i) {
    out.spines.push_back(out.topo.AddSwitch(config.switch_ports));
  }
  for (uint32_t i = 0; i < config.num_leaf; ++i) {
    out.leaves.push_back(out.topo.AddSwitch(config.switch_ports));
  }
  // Leaf port p (1..num_spine) -> spine p; spine port l+1 -> leaf l.
  for (uint32_t l = 0; l < config.num_leaf; ++l) {
    for (uint32_t s = 0; s < config.num_spine; ++s) {
      auto r = out.topo.ConnectSwitches(out.leaves[l], static_cast<PortNum>(s + 1),
                                        out.spines[s], static_cast<PortNum>(l + 1),
                                        config.uplink_gbps);
      if (!r.ok()) {
        return r.error();
      }
    }
  }
  out.hosts.resize(config.num_leaf);
  for (uint32_t l = 0; l < config.num_leaf; ++l) {
    for (uint32_t h = 0; h < config.hosts_per_leaf; ++h) {
      uint32_t host = out.topo.AddHost();
      auto r = out.topo.AttachHost(host, out.leaves[l],
                                   static_cast<PortNum>(config.num_spine + 1 + h),
                                   config.host_gbps);
      if (!r.ok()) {
        return r.error();
      }
      out.hosts[l].push_back(host);
    }
  }
  return out;
}

Result<LeafSpineTopo> MakePaperTestbed() {
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 5;
  config.hosts_per_leaf = 5;
  config.switch_ports = 64;
  auto base = MakeLeafSpine(config);
  if (!base.ok()) {
    return base;
  }
  LeafSpineTopo out = std::move(base.value());
  // Two extra servers on the first leaf bring the total to 27 (controller + spare).
  for (uint32_t i = 0; i < 2; ++i) {
    uint32_t host = out.topo.AddHost();
    auto r = out.topo.AttachHost(host, out.leaves[0],
                                 static_cast<PortNum>(config.num_spine + 6 + i));
    if (!r.ok()) {
      return r.error();
    }
    out.hosts[0].push_back(host);
  }
  return out;
}

Result<FatTreeTopo> MakeFatTree(const FatTreeConfig& config) {
  const uint32_t k = config.k;
  if (k < 2 || k % 2 != 0) {
    return Error(ErrorCode::kInvalidArgument, "fat-tree k must be even and >= 2");
  }
  if (k > kMaxPorts) {
    return Error(ErrorCode::kInvalidArgument, "fat-tree k exceeds max port count");
  }
  const uint32_t half = k / 2;

  FatTreeTopo out;
  out.topo.SetIdSpace(config.id_space);
  // Core: (k/2)^2 switches. Aggregation/edge: k/2 each per pod.
  for (uint32_t i = 0; i < half * half; ++i) {
    out.core.push_back(out.topo.AddSwitch(static_cast<uint8_t>(k)));
  }
  for (uint32_t pod = 0; pod < k; ++pod) {
    for (uint32_t i = 0; i < half; ++i) {
      out.aggregation.push_back(out.topo.AddSwitch(static_cast<uint8_t>(k)));
    }
    for (uint32_t i = 0; i < half; ++i) {
      out.edge.push_back(out.topo.AddSwitch(static_cast<uint8_t>(k)));
    }
  }

  // Wiring convention (all ports 1-based):
  //   edge:  ports 1..k/2 -> hosts, ports k/2+1..k -> aggs in pod
  //   agg:   ports 1..k/2 -> edges in pod, ports k/2+1..k -> cores
  //   core:  port (pod+1) -> pod
  // Core j (j = a*half + b) connects to aggregation switch a of every pod, using
  // agg port half+1+b.
  for (uint32_t pod = 0; pod < k; ++pod) {
    for (uint32_t a = 0; a < half; ++a) {
      uint32_t agg = out.aggregation[pod * half + a];
      for (uint32_t e = 0; e < half; ++e) {
        uint32_t edge = out.edge[pod * half + e];
        auto r = out.topo.ConnectSwitches(agg, static_cast<PortNum>(e + 1), edge,
                                          static_cast<PortNum>(half + 1 + a),
                                          config.link_gbps);
        if (!r.ok()) {
          return r.error();
        }
      }
      for (uint32_t b = 0; b < half; ++b) {
        uint32_t core = out.core[a * half + b];
        auto r = out.topo.ConnectSwitches(agg, static_cast<PortNum>(half + 1 + b), core,
                                          static_cast<PortNum>(pod + 1), config.link_gbps);
        if (!r.ok()) {
          return r.error();
        }
      }
    }
  }

  if (config.attach_hosts) {
    for (uint32_t pod = 0; pod < k; ++pod) {
      for (uint32_t e = 0; e < half; ++e) {
        uint32_t edge = out.edge[pod * half + e];
        for (uint32_t h = 0; h < half; ++h) {
          uint32_t host = out.topo.AddHost();
          auto r = out.topo.AttachHost(host, edge, static_cast<PortNum>(h + 1),
                                       config.link_gbps);
          if (!r.ok()) {
            return r.error();
          }
        }
      }
    }
  }
  return out;
}

Result<CubeTopo> MakeCube(const CubeConfig& config) {
  const auto [nx, ny, nz] = config.dims;
  if (nx == 0 || ny == 0 || nz == 0) {
    return Error(ErrorCode::kInvalidArgument, "cube dimensions must be positive");
  }
  if (6 + config.hosts_per_switch > config.switch_ports) {
    return Error(ErrorCode::kInvalidArgument, "cube switch port budget exceeded");
  }

  CubeTopo out;
  out.topo.SetIdSpace(config.id_space);
  out.dims = config.dims;
  for (uint32_t i = 0; i < nx * ny * nz; ++i) {
    out.topo.AddSwitch(config.switch_ports);
  }

  // Ports 1..6 carry the +x,-x,+y,-y,+z,-z neighbors; 7.. carry hosts.
  // We wire each positive-direction edge once, from the lower-coordinate side.
  auto wire = [&](uint32_t a, uint32_t b, PortNum pa, PortNum pb) -> Status {
    auto r = out.topo.ConnectSwitches(a, pa, b, pb, config.link_gbps);
    if (!r.ok()) {
      return r.error();
    }
    return Status::Ok();
  };

  for (uint32_t x = 0; x < nx; ++x) {
    for (uint32_t y = 0; y < ny; ++y) {
      for (uint32_t z = 0; z < nz; ++z) {
        uint32_t self = out.At(x, y, z);
        // +x neighbor: self port 1 <-> neighbor port 2.
        if (x + 1 < nx) {
          if (auto s = wire(self, out.At(x + 1, y, z), 1, 2); !s.ok()) {
            return s.error();
          }
        } else if (config.wrap && nx > 2) {
          if (auto s = wire(self, out.At(0, y, z), 1, 2); !s.ok()) {
            return s.error();
          }
        }
        // +y neighbor: port 3 <-> 4.
        if (y + 1 < ny) {
          if (auto s = wire(self, out.At(x, y + 1, z), 3, 4); !s.ok()) {
            return s.error();
          }
        } else if (config.wrap && ny > 2) {
          if (auto s = wire(self, out.At(x, 0, z), 3, 4); !s.ok()) {
            return s.error();
          }
        }
        // +z neighbor: port 5 <-> 6.
        if (z + 1 < nz) {
          if (auto s = wire(self, out.At(x, y, z + 1), 5, 6); !s.ok()) {
            return s.error();
          }
        } else if (config.wrap && nz > 2) {
          if (auto s = wire(self, out.At(x, y, 0), 5, 6); !s.ok()) {
            return s.error();
          }
        }
      }
    }
  }

  for (uint32_t s = 0; s < out.topo.switch_count(); ++s) {
    for (uint32_t h = 0; h < config.hosts_per_switch; ++h) {
      uint32_t host = out.topo.AddHost();
      auto r = out.topo.AttachHost(host, s, static_cast<PortNum>(7 + h), config.link_gbps);
      if (!r.ok()) {
        return r.error();
      }
      out.hosts.push_back(host);
    }
  }
  return out;
}

Result<JellyfishTopo> MakeJellyfish(const JellyfishConfig& config) {
  if (config.network_degree >= config.switch_ports) {
    return Error(ErrorCode::kInvalidArgument, "network degree must leave host ports free");
  }
  if (config.network_degree + config.hosts_per_switch > config.switch_ports) {
    return Error(ErrorCode::kInvalidArgument, "jellyfish switch port budget exceeded");
  }
  if (static_cast<uint64_t>(config.num_switches) * config.network_degree % 2 != 0) {
    return Error(ErrorCode::kInvalidArgument, "num_switches * degree must be even");
  }

  JellyfishTopo out;
  out.topo.SetIdSpace(config.id_space);
  Rng rng(config.seed);
  for (uint32_t i = 0; i < config.num_switches; ++i) {
    out.topo.AddSwitch(config.switch_ports);
  }

  // Standard jellyfish construction: repeatedly pair random free ports of distinct,
  // not-yet-adjacent switches. Free network ports on switch s are 1..network_degree.
  std::vector<uint8_t> used(config.num_switches, 0);  // network ports consumed so far
  std::set<std::pair<uint32_t, uint32_t>> adjacent;
  auto is_adjacent = [&](uint32_t a, uint32_t b) {
    return adjacent.count({std::min(a, b), std::max(a, b)}) > 0;
  };

  std::vector<uint32_t> open;
  for (uint32_t i = 0; i < config.num_switches; ++i) {
    open.push_back(i);
  }

  int stale = 0;
  while (open.size() >= 2 && stale < 10000) {
    uint32_t ai = static_cast<uint32_t>(rng.PickIndex(open.size()));
    uint32_t bi = static_cast<uint32_t>(rng.PickIndex(open.size()));
    uint32_t a = open[ai];
    uint32_t b = open[bi];
    if (a == b || is_adjacent(a, b)) {
      ++stale;
      continue;
    }
    stale = 0;
    auto r = out.topo.ConnectSwitches(a, static_cast<PortNum>(used[a] + 1), b,
                                      static_cast<PortNum>(used[b] + 1), config.link_gbps);
    if (!r.ok()) {
      return r.error();
    }
    adjacent.insert({std::min(a, b), std::max(a, b)});
    ++used[a];
    ++used[b];
    // Drop saturated switches from the open list (order matters: erase larger index
    // first so the smaller one stays valid).
    std::vector<uint32_t> victims;
    if (used[a] >= config.network_degree) {
      victims.push_back(a);
    }
    if (used[b] >= config.network_degree) {
      victims.push_back(b);
    }
    for (uint32_t v : victims) {
      open.erase(std::remove(open.begin(), open.end(), v), open.end());
    }
  }

  for (uint32_t s = 0; s < config.num_switches; ++s) {
    for (uint32_t h = 0; h < config.hosts_per_switch; ++h) {
      uint32_t host = out.topo.AddHost();
      auto r = out.topo.AttachHost(host, s,
                                   static_cast<PortNum>(config.network_degree + 1 + h),
                                   config.link_gbps);
      if (!r.ok()) {
        return r.error();
      }
      out.hosts.push_back(host);
    }
  }
  return out;
}

}  // namespace dumbnet
