#include "src/switch/mpls_switch.h"

namespace dumbnet {

MplsSwitch::MplsSwitch(Network* net, uint32_t index, MplsSwitchConfig config)
    : net_(net),
      sim_(&net->SimFor(NodeId::Switch(index))),
      index_(index),
      uid_(net->topo().switch_at(index).uid),
      num_ports_(net->topo().switch_at(index).num_ports),
      config_(config),
      last_alarm_(static_cast<size_t>(num_ports_) + 1, -Sec(1000)),
      alarm_seq_(static_cast<size_t>(num_ports_) + 1, 0) {
  net->RegisterSwitchNode(index, this);
}

bool MplsSwitch::PortIsUp(PortNum port) const {
  LinkIndex li = net_->topo().LinkAtPort(index_, port);
  return li != kInvalidLink && net_->topo().link_at(li).up;
}

void MplsSwitch::HandlePacket(const Packet& pkt, PortNum in_port) {
  if (pkt.eth.ether_type == kEtherTypeDumbNet) {
    if (pkt.tags.empty()) {
      // Port-event broadcast: the Arista testbed relays these with a monitoring
      // script; we relay in the pipeline like the dumb switch does.
      if (const auto* ev = pkt.As<PortEventPayload>(); ev != nullptr && ev->hops_left > 0) {
        Packet relay = pkt;
        std::get_if<PortEventPayload>(&relay.payload)->hops_left =
            static_cast<uint8_t>(ev->hops_left - 1);
        for (PortNum p = 1; p <= num_ports_; ++p) {
          if (p != in_port && PortIsUp(p)) {
            sim_->ScheduleAfter(config_.forwarding_delay,
                                [this, p, relay] { net_->SendFromSwitch(index_, p, relay); });
          }
        }
      }
      return;
    }
    uint64_t probe_id = 0;
    if (const auto* probe = pkt.As<ProbePayload>()) {
      probe_id = probe->probe_id;
    }
    ForwardLabeled(pkt, probe_id);
    return;
  }
  // Anything else is legacy traffic through the learning-bridge pipeline.
  BridgeEthernet(pkt, in_port);
}

void MplsSwitch::ForwardLabeled(Packet pkt, uint64_t transit_probe_id) {
  const PortNum label = pkt.tags.front();
  if (label == kPathEndTag) {
    ++stats_.dropped;
    return;
  }
  pkt.tags.erase(pkt.tags.begin());

  if (label == kIdQueryTag) {
    // Slow path: "the switch ID query packet is converted to a UDP packet and
    // handled by the switch's CPU" — same reply, extra latency.
    if (pkt.tags.empty()) {
      ++stats_.dropped;
      return;
    }
    ++stats_.cpu_id_replies;
    Packet reply;
    reply.eth.src_mac = uid_;
    reply.eth.dst_mac = kBroadcastMac;
    reply.eth.ether_type = kEtherTypeDumbNet;
    reply.tags = std::move(pkt.tags);
    reply.payload = IdReplyPayload{transit_probe_id, uid_};
    sim_->ScheduleAfter(config_.cpu_delay, [this, reply = std::move(reply),
                                            transit_probe_id]() mutable {
      ForwardLabeled(std::move(reply), transit_probe_id);
    });
    return;
  }

  // Static rule: label k -> port k.
  if (label > num_ports_ || !PortIsUp(label)) {
    ++stats_.dropped;
    return;
  }
  ++stats_.label_forwarded;
  sim_->ScheduleAfter(config_.forwarding_delay, [this, label, pkt = std::move(pkt)] {
    net_->SendFromSwitch(index_, label, pkt);
  });
}

void MplsSwitch::BridgeEthernet(const Packet& pkt, PortNum in_port) {
  mac_table_[pkt.eth.src_mac] = {in_port, sim_->Now()};
  auto forward = [this, &pkt](PortNum out) {
    sim_->ScheduleAfter(config_.forwarding_delay,
                        [this, out, pkt] { net_->SendFromSwitch(index_, out, pkt); });
  };
  if (pkt.eth.dst_mac != kBroadcastMac) {
    auto it = mac_table_.find(pkt.eth.dst_mac);
    if (it != mac_table_.end() && sim_->Now() - it->second.second < config_.mac_age_time &&
        it->second.first != in_port && PortIsUp(it->second.first)) {
      ++stats_.ethernet_forwarded;
      forward(it->second.first);
      return;
    }
  }
  ++stats_.ethernet_flooded;
  for (PortNum p = 1; p <= num_ports_; ++p) {
    if (p != in_port && PortIsUp(p)) {
      forward(p);
    }
  }
}

void MplsSwitch::HandlePortChange(PortNum port, bool up) {
  if (port >= last_alarm_.size()) {
    return;
  }
  // The testbed script sends one notification per event with simple suppression.
  if (sim_->Now() - last_alarm_[port] < config_.alarm_suppression) {
    return;
  }
  last_alarm_[port] = sim_->Now();
  Packet pkt;
  pkt.eth.src_mac = uid_;
  pkt.eth.dst_mac = kBroadcastMac;
  pkt.eth.ether_type = kEtherTypeDumbNet;
  pkt.payload = PortEventPayload{uid_,  port, up, config_.notify_hops,
                                 alarm_seq_[port]++, sim_->Now()};
  ++stats_.notifications_sent;
  for (PortNum p = 1; p <= num_ports_; ++p) {
    if (PortIsUp(p)) {
      sim_->ScheduleAfter(config_.forwarding_delay,
                          [this, p, pkt] { net_->SendFromSwitch(index_, p, pkt); });
    }
  }
}

}  // namespace dumbnet
