// The DumbNet switch (paper Sections 3, 4.2, 5.3). It keeps NO forwarding state and
// needs NO configuration. The complete behaviour:
//
//   1. Tag forwarding: pop the first routing tag, emit the packet out that port.
//   2. ID query: a first tag of 0 means "reply with your burned-in unique ID along
//      the remaining tags".
//   3. Port monitoring: on a physical port state change, broadcast a hop-limited
//      port-up/down notification out every port, suppressing duplicate alarms to at
//      most one per second per port.
//
// Anything else (unknown EtherType, ø at a switch, bad port) is dropped.
#ifndef DUMBNET_SRC_SWITCH_DUMB_SWITCH_H_
#define DUMBNET_SRC_SWITCH_DUMB_SWITCH_H_

#include <cstdint>
#include <vector>

#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace dumbnet {

struct DumbSwitchConfig {
  // ECN support (paper Section 8 future work: "these mechanisms either require no
  // state, or only soft state"). Marking reads the physical egress queue depth.
  bool enable_ecn = true;
  int64_t ecn_threshold_bytes = 48 * 1024;
  // Cut-through tag lookup plus demux; the FPGA prototype measures ~33 us per hop
  // at 1 GbE, commodity ASICs are ~0.5 us. This is pure pipeline latency.
  TimeNs forwarding_delay = 500;
  // Hop limit for port-state broadcast (paper: "a max of 5 hops is often enough").
  uint8_t notify_hops = 5;
  // Alarm suppression window: at most one alarm per port per this interval.
  TimeNs alarm_suppression = Sec(1);
};

struct DumbSwitchStats {
  uint64_t forwarded = 0;
  uint64_t id_replies = 0;
  uint64_t notifications_sent = 0;
  uint64_t notifications_relayed = 0;
  uint64_t alarms_suppressed = 0;
  uint64_t dropped_bad_tag = 0;
  uint64_t dropped_port_down = 0;
  uint64_t dropped_foreign = 0;
};

class DumbSwitch : public NetNode {
 public:
  DumbSwitch(Network* net, uint32_t index, DumbSwitchConfig config = DumbSwitchConfig());

  void HandlePacket(const Packet& pkt, PortNum in_port) override;
  // Forwarding fast path: takes ownership, so the tag pop / ECN mark /
  // provenance append all happen in place and the packet moves (never copies)
  // from ingress to the egress tx event.
  void HandlePacket(Packet&& pkt, PortNum in_port) override;
  void HandlePortChange(PortNum port, bool up) override;

  uint64_t uid() const { return uid_; }
  uint32_t index() const { return index_; }
  const DumbSwitchStats& stats() const { return stats_; }

  // Soft-state per-port transmit counters (packet statistics, Section 8 future
  // work): best-effort, lost on power cycle, never consulted for forwarding.
  uint64_t port_tx_packets(PortNum p) const { return port_tx_packets_[p]; }
  uint64_t port_tx_bytes(PortNum p) const { return port_tx_bytes_[p]; }

 private:
  // Pops the first tag and forwards; handles ID queries; shared by transit packets
  // and self-generated replies. `in_port` is recorded as the provenance ingress
  // (0 for self-generated packets such as ID replies).
  void ForwardTagged(Packet pkt, uint64_t transit_probe_id, PortNum in_port);

  // Floods a hop-limited notification out every wired, up port except `skip`
  // (kPathEndTag = no skip).
  void FloodNotification(const Packet& pkt, PortNum skip);

  void EmitAlarm(PortNum port, bool up);

  bool PortIsUp(PortNum port) const;

  Network* net_;
  Simulator* sim_;
  uint32_t index_;
  uint64_t uid_;
  uint8_t num_ports_;
  DumbSwitchConfig config_;
  DumbSwitchStats stats_;

  std::vector<uint64_t> port_tx_packets_;
  std::vector<uint64_t> port_tx_bytes_;

  struct AlarmState {
    TimeNs last_sent = -Sec(1000);
    bool pending = false;
    bool pending_state = false;
    uint64_t seq = 0;
  };
  std::vector<AlarmState> alarms_;  // indexed by port
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_SWITCH_DUMB_SWITCH_H_
