// The paper's first physical switch implementation (Section 5.3): a commodity
// Ethernet switch with static MPLS rules, "statically map[ping] the MPLS labels to
// the physical port numbers". DumbNet tags ride as an MPLS label stack; normal
// Ethernet traffic coexists through the legacy learning pipeline — this is the
// incremental-deployment story of Section 3.1.
//
// Differences from the pure DumbNet ASIC/FPGA switch:
//   * label (tag) forwarding goes through the same fast path — label k maps to
//     port k by static rule, so the data plane is still stateless;
//   * the tag-0 ID query is "converted to a UDP packet and handled by the switch's
//     CPU": the slow path costs extra latency;
//   * unknown EtherTypes are bridged by MAC learning instead of dropped.
#ifndef DUMBNET_SRC_SWITCH_MPLS_SWITCH_H_
#define DUMBNET_SRC_SWITCH_MPLS_SWITCH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace dumbnet {

struct MplsSwitchConfig {
  // Fast-path (label pop + static rule) latency: commodity ASIC cut-through.
  TimeNs forwarding_delay = 600;
  // Slow path: ID queries punt to the switch CPU.
  TimeNs cpu_delay = Us(200);
  uint8_t notify_hops = 5;
  TimeNs alarm_suppression = Sec(1);
  TimeNs mac_age_time = Sec(300);
};

struct MplsSwitchStats {
  uint64_t label_forwarded = 0;
  uint64_t ethernet_forwarded = 0;
  uint64_t ethernet_flooded = 0;
  uint64_t cpu_id_replies = 0;
  uint64_t notifications_sent = 0;
  uint64_t dropped = 0;
};

class MplsSwitch : public NetNode {
 public:
  MplsSwitch(Network* net, uint32_t index, MplsSwitchConfig config = MplsSwitchConfig());

  void HandlePacket(const Packet& pkt, PortNum in_port) override;
  void HandlePortChange(PortNum port, bool up) override;

  uint64_t uid() const { return uid_; }
  const MplsSwitchStats& stats() const { return stats_; }

 private:
  void ForwardLabeled(Packet pkt, uint64_t transit_probe_id);
  void BridgeEthernet(const Packet& pkt, PortNum in_port);
  bool PortIsUp(PortNum port) const;

  Network* net_;
  Simulator* sim_;
  uint32_t index_;
  uint64_t uid_;
  uint8_t num_ports_;
  MplsSwitchConfig config_;
  MplsSwitchStats stats_;

  std::unordered_map<uint64_t, std::pair<PortNum, TimeNs>> mac_table_;
  std::vector<TimeNs> last_alarm_;
  std::vector<uint64_t> alarm_seq_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_SWITCH_MPLS_SWITCH_H_
