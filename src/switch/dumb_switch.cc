#include "src/switch/dumb_switch.h"

#include "src/analysis/audit.h"
#include "src/sim/footprint.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/util/logging.h"

namespace dumbnet {

namespace {
// Footprint cell for the per-port alarm suppression window (last_sent / pending /
// pending_state / seq). Data-plane forwarding state is deliberately unrecorded:
// transient loss under in-flight failures is racy by design (Section 4.3).
constexpr uint64_t kSaltAlarm = 0xA1A2;
}  // namespace

DumbSwitch::DumbSwitch(Network* net, uint32_t index, DumbSwitchConfig config)
    : net_(net),
      sim_(&net->SimFor(NodeId::Switch(index))),
      index_(index),
      uid_(net->topo().switch_at(index).uid),
      num_ports_(net->topo().switch_at(index).num_ports),
      config_(config),
      port_tx_packets_(static_cast<size_t>(num_ports_) + 1, 0),
      port_tx_bytes_(static_cast<size_t>(num_ports_) + 1, 0),
      alarms_(static_cast<size_t>(num_ports_) + 1) {
  net->RegisterSwitchNode(index, this);
}

bool DumbSwitch::PortIsUp(PortNum port) const {
  LinkIndex li = net_->topo().LinkAtPort(index_, port);
  return li != kInvalidLink && net_->topo().link_at(li).up;
}

void DumbSwitch::HandlePacket(const Packet& pkt, PortNum in_port) {
  HandlePacket(Packet(pkt), in_port);
}

void DumbSwitch::HandlePacket(Packet&& pkt, PortNum in_port) {
  if (pkt.eth.ether_type != kEtherTypeDumbNet) {
    // The dumb switch speaks only DumbNet; a mixed MPLS deployment would pass other
    // traffic through the legacy pipeline, which we do not model here.
    ++stats_.dropped_foreign;
    return;
  }
  // Hop-limited broadcast notifications carry no tags.
  if (pkt.tags.empty()) {
    if (auto* ev = std::get_if<PortEventPayload>(&pkt.payload);
        ev != nullptr && ev->hops_left > 0) {
      ev->hops_left = static_cast<uint8_t>(ev->hops_left - 1);
      ++stats_.notifications_relayed;
      FloodNotification(pkt, in_port);
    }
    return;
  }
  // Invariant (Section 3.2): every tagged packet entering a switch carries a
  // ø-terminated stack within the one-byte-per-hop header budget.
  DUMBNET_AUDIT(pkt.tags.size() <= audit::kMaxTagStackDepth,
                "tag stack exceeds header budget at switch hop");
  DUMBNET_AUDIT(pkt.tags.back() == kPathEndTag,
                "tag stack not \xC3\xB8-terminated at switch hop");
  uint64_t probe_id = 0;
  if (const auto* probe = pkt.As<ProbePayload>()) {
    probe_id = probe->probe_id;
  }
  ForwardTagged(std::move(pkt), probe_id, in_port);
}

void DumbSwitch::ForwardTagged(Packet pkt, uint64_t transit_probe_id, PortNum in_port) {
  const PortNum tag = pkt.tags.front();
  if (tag == kPathEndTag) {
    // ø reached a switch: the path was one hop short. Drop.
    ++stats_.dropped_bad_tag;
    DN_COUNTER_INC("switch.dropped_bad_tag");
    DN_TRACE_EVENT(kSwitch, kDrop, sim_->Now(), uid_, tag);
    return;
  }
  pkt.tags.erase(pkt.tags.begin());

  if (tag == kIdQueryTag) {
    // Reply with our unique ID along the remaining tags (paper Section 4.1). The
    // reply is itself a tagged packet that we forward through the normal pipeline.
    if (pkt.tags.empty()) {
      ++stats_.dropped_bad_tag;
      DN_COUNTER_INC("switch.dropped_bad_tag");
      return;
    }
    Packet reply;
    reply.eth.src_mac = uid_;  // switches have no MAC; the UID is informational
    reply.eth.dst_mac = kBroadcastMac;
    reply.eth.ether_type = kEtherTypeDumbNet;
    reply.tags = std::move(pkt.tags);
    reply.payload = IdReplyPayload{transit_probe_id, uid_};
    reply.sent_time = pkt.sent_time;
    ++stats_.id_replies;
    ForwardTagged(std::move(reply), transit_probe_id, PortNum{0});
    return;
  }

  if (tag > num_ports_) {
    ++stats_.dropped_bad_tag;
    DN_COUNTER_INC("switch.dropped_bad_tag");
    DN_TRACE_EVENT(kSwitch, kDrop, sim_->Now(), uid_, tag);
    return;
  }
  if (!PortIsUp(tag)) {
    ++stats_.dropped_port_down;
    DN_COUNTER_INC("switch.dropped_port_down");
    DN_TRACE_EVENT(kSwitch, kDrop, sim_->Now(), uid_, tag);
    return;
  }
  // ECN marking: if the egress queue this packet is about to join is deep, set
  // Congestion Experienced on data packets. Reads the physical queue only — no
  // switch state involved.
  if (config_.enable_ecn) {
    if (auto* data = std::get_if<DataPayload>(&pkt.payload);
        data != nullptr && !data->is_ack) {
      LinkIndex li = net_->topo().LinkAtPort(index_, tag);
      if (li != kInvalidLink &&
          net_->QueueBacklog(li, NodeId::Switch(index_)) > config_.ecn_threshold_bytes) {
        data->ecn = true;
      }
    }
  }
  ++stats_.forwarded;
  ++port_tx_packets_[tag];
  port_tx_bytes_[tag] += static_cast<uint64_t>(pkt.WireSize());
  DN_COUNTER_INC("switch.forwarded");
  DN_TRACE_EVENT(kSwitch, kForward, sim_->Now(), uid_, tag);
  // Path provenance: record the hop actually taken so the receiving host can
  // compare it with the sender's promise. Only on armed packets — unarmed
  // traffic (and telemetry-off builds) skips the append entirely.
  if (telemetry::Enabled() && pkt.provenance.armed()) {
    pkt.provenance.hops.push_back(telemetry::PathHop{uid_, in_port, tag});
  }
  sim_->ScheduleAfter(config_.forwarding_delay, [this, tag, pkt = std::move(pkt)]() mutable {
    DN_FP_SCOPE("switch.tx", uid_);
    net_->SendFromSwitch(index_, tag, std::move(pkt));
  });
}

void DumbSwitch::HandlePortChange(PortNum port, bool up) {
  if (port >= alarms_.size()) {
    return;
  }
  DN_FP_SCOPE("switch.port_change", uid_);
  DN_FP_WRITE(kSwitch, footprint::FpKey(uid_, port, kSaltAlarm));
  AlarmState& alarm = alarms_[port];
  const TimeNs now = sim_->Now();
  if (now - alarm.last_sent >= config_.alarm_suppression) {
    EmitAlarm(port, up);
    return;
  }
  // Within the suppression window: remember the latest state and (once) schedule a
  // trailing alarm at the window edge. A flapping link thus produces one alarm per
  // second carrying its most recent state.
  ++stats_.alarms_suppressed;
  alarm.pending_state = up;
  if (!alarm.pending) {
    alarm.pending = true;
    TimeNs fire_at = alarm.last_sent + config_.alarm_suppression;
    sim_->ScheduleAt(fire_at, [this, port] {
      DN_FP_SCOPE("switch.alarm_trailing", uid_);
      DN_FP_WRITE(kSwitch, footprint::FpKey(uid_, port, kSaltAlarm));
      AlarmState& a = alarms_[port];
      if (a.pending) {
        a.pending = false;
        EmitAlarm(port, a.pending_state);
      }
    });
  }
}

void DumbSwitch::EmitAlarm(PortNum port, bool up) {
  AlarmState& alarm = alarms_[port];
  alarm.last_sent = sim_->Now();
  Packet pkt;
  pkt.eth.src_mac = uid_;
  pkt.eth.dst_mac = kBroadcastMac;
  pkt.eth.ether_type = kEtherTypeDumbNet;
  pkt.payload = PortEventPayload{uid_,        port,       up, config_.notify_hops,
                                 alarm.seq++, sim_->Now()};
  ++stats_.notifications_sent;
  FloodNotification(pkt, kPathEndTag);
}

void DumbSwitch::FloodNotification(const Packet& pkt, PortNum skip) {
  for (PortNum p = 1; p <= num_ports_; ++p) {
    if (p == skip || !PortIsUp(p)) {
      continue;
    }
    sim_->ScheduleAfter(config_.forwarding_delay, [this, p, pkt] {
      DN_FP_SCOPE("switch.tx", uid_);
      net_->SendFromSwitch(index_, p, pkt);
    });
  }
}

}  // namespace dumbnet
