#include "src/util/result.h"

namespace dumbnet {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kPermissionDenied:
      return "permission_denied";
    case ErrorCode::kExhausted:
      return "exhausted";
    case ErrorCode::kMalformed:
      return "malformed";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace dumbnet
