// Statistics collectors used by the benchmark harness and the telemetry
// subsystem: online mean/variance, exact-sample percentile/CDF collectors,
// fixed-bucket histograms, and the log-bucketed histogram latency percentiles
// ride on (bounded relative error at O(log range) memory).
#ifndef DUMBNET_SRC_UTIL_STATS_H_
#define DUMBNET_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dumbnet {

// Welford online mean/variance; O(1) memory.
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores every sample; supports exact percentiles and CDF dumps. Fine for the
// tens-of-thousands of samples our experiments produce.
class SampleSet {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  // Exact percentile with linear interpolation; p in [0,100].
  double Percentile(double p) const;

  // Returns (value, cumulative fraction) pairs at `points` evenly spaced quantiles,
  // suitable for printing a CDF curve.
  std::vector<std::pair<double, double>> Cdf(size_t points = 100) const;

  // Fraction of samples <= x.
  double FractionBelow(double x) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void SortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  uint64_t total() const { return total_; }

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Log-bucketed histogram: power-of-two major buckets (one per binary exponent)
// subdivided into `1 << sub_bucket_bits` linear sub-buckets, stored sparsely.
// Quantile estimates are bucket midpoints, so the relative error of any
// percentile is bounded by 1 / (2 * sub_buckets) — 1.6% at the default 32 —
// while memory stays proportional to the number of occupied buckets, not the
// value range. This is the collector behind both the fig10/fig11 CDF benches
// and the telemetry histogram metric, so the two report identical percentiles
// for the same sample stream. Non-positive samples land in a dedicated bucket
// represented by the exact minimum.
class LogHistogram {
 public:
  explicit LogHistogram(uint32_t sub_bucket_bits = 5);

  void Add(double x);
  void Merge(const LogHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }  // exact
  double max() const { return count_ == 0 ? 0.0 : max_; }  // exact
  double sum() const { return sum_; }
  double mean() const;

  // Value at percentile p in [0, 100], within the relative error bound.
  double Percentile(double p) const;

  // Fraction of samples <= x (bucket-resolution, same error bound).
  double FractionBelow(double x) const;

  // (value, cumulative fraction) pairs at `points` evenly spaced quantiles.
  std::vector<std::pair<double, double>> Cdf(size_t points = 100) const;

  double RelativeErrorBound() const {
    return 1.0 / static_cast<double>(2u << sub_bucket_bits_);
  }
  size_t occupied_buckets() const { return buckets_.size(); }

 private:
  // Global sub-bucket index for a positive x; INT64_MIN for x <= 0.
  int64_t BucketIndex(double x) const;
  // Representative (midpoint) value of a bucket.
  double BucketValue(int64_t index) const;

  uint32_t sub_bucket_bits_;
  std::map<int64_t, uint64_t> buckets_;  // sparse: index -> count
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_UTIL_STATS_H_
