// Statistics collectors used by the benchmark harness: online mean/variance,
// exact-sample percentile/CDF collectors, and fixed-bucket histograms.
#ifndef DUMBNET_SRC_UTIL_STATS_H_
#define DUMBNET_SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dumbnet {

// Welford online mean/variance; O(1) memory.
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores every sample; supports exact percentiles and CDF dumps. Fine for the
// tens-of-thousands of samples our experiments produce.
class SampleSet {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;

  // Exact percentile with linear interpolation; p in [0,100].
  double Percentile(double p) const;

  // Returns (value, cumulative fraction) pairs at `points` evenly spaced quantiles,
  // suitable for printing a CDF curve.
  std::vector<std::pair<double, double>> Cdf(size_t points = 100) const;

  // Fraction of samples <= x.
  double FractionBelow(double x) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void SortIfNeeded() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  uint64_t total() const { return total_; }

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_UTIL_STATS_H_
