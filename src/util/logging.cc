#include "src/util/logging.h"

#include <cstdio>

namespace dumbnet {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "-";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace dumbnet
