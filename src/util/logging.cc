#include "src/util/logging.h"

#include <cstdio>

namespace dumbnet {
namespace {

LogLevel g_level = LogLevel::kWarn;
// Thread-local: the wire runtime runs one simulator per node *thread*, and each
// thread's log lines should carry (and only ever read) its own clock. In the
// classic single-threaded world this is indistinguishable from a global.
thread_local LogClock g_clock = nullptr;
thread_local const void* g_clock_ctx = nullptr;
LogKvSink g_kv_sink = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "-";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

void AppendPrefix(std::ostringstream& os, LogLevel level, const char* file, int line) {
  os << "[" << LevelName(level);
  int64_t now = 0;
  if (CurrentLogTime(&now)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " t=%.3fms", static_cast<double>(now) / 1e6);
    os << buf;
  }
  os << " " << Basename(file) << ":" << line << "] ";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void SetLogClock(LogClock clock, const void* ctx) {
  g_clock = clock;
  g_clock_ctx = clock != nullptr ? ctx : nullptr;
}

const void* LogClockCtx() { return g_clock_ctx; }

bool CurrentLogTime(int64_t* out_ns) {
  if (g_clock == nullptr) {
    return false;
  }
  *out_ns = g_clock(g_clock_ctx);
  return true;
}

void SetLogKvSink(LogKvSink sink) { g_kv_sink = sink; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  AppendPrefix(stream_, level, file, line);
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

LogKv::LogKv(LogLevel level, const char* file, int line, const char* event)
    : level_(level),
      file_(file),
      line_(line),
      event_(event),
      to_stderr_(static_cast<int>(level) >= static_cast<int>(g_level)) {
  active_ = to_stderr_ || g_kv_sink != nullptr;
}

LogKv::~LogKv() {
  if (!active_) {
    return;
  }
  const std::string rendered = stream_.str();
  if (g_kv_sink != nullptr) {
    int64_t now = 0;
    const bool has_time = CurrentLogTime(&now);
    g_kv_sink(LogKvEvent{level_, event_, now, has_time, rendered});
  }
  if (to_stderr_) {
    std::ostringstream os;
    AppendPrefix(os, level_, file_, line_);
    os << event_ << rendered << "\n";
    std::fputs(os.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace dumbnet
