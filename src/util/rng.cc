#include "src/util/rng.h"

#include <cmath>

namespace dumbnet {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.Next();
  }
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  // Lemire's method: multiply and reject the biased low range.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::UniformDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  // Guard log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

double Rng::Pareto(double xm, double alpha) {
  double u = UniformDouble();
  if (u >= 1.0) {
    u = 1.0 - 0x1.0p-53;
  }
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

Rng Rng::Fork(uint64_t salt) {
  return Rng(Next64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
}

}  // namespace dumbnet
