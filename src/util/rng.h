// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the library (ECMP tie-breaking, workload arrivals,
// jellyfish wiring, flowlet path picks) draws from an explicitly seeded Rng so that
// simulations are reproducible bit-for-bit. We implement SplitMix64 (for seeding)
// and xoshiro256** (for the stream) rather than using std::mt19937 because their
// output is specified exactly and is stable across standard libraries.
#ifndef DUMBNET_SRC_UTIL_RNG_H_
#define DUMBNET_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dumbnet {

// SplitMix64: tiny generator used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  // Raw 64 random bits.
  uint64_t Next64();

  // Uniform integer in [0, bound) via Lemire's multiply-shift rejection method.
  // bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

  // Pareto-distributed double with scale xm (>0) and shape alpha (>0); heavy-tailed
  // flow sizes in workload models use this.
  double Pareto(double xm, double alpha);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Picks a uniformly random element index; container must be non-empty.
  size_t PickIndex(size_t size) { return static_cast<size_t>(UniformInt(size)); }

  // Derives an independent child generator (stable function of parent state+salt);
  // used to give each host/flow its own stream.
  Rng Fork(uint64_t salt);

 private:
  uint64_t state_[4];
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_UTIL_RNG_H_
