// A small fixed-size worker pool for fanning independent, index-addressed work
// across cores (the controller's batch path-graph precompute uses it). The calling
// thread participates as a worker, so a pool with zero threads still makes
// progress and ParallelFor degrades to a plain loop.
//
// Determinism contract: ParallelFor guarantees every index in [0, n) runs exactly
// once, but says nothing about order or which worker runs it. Callers that need
// reproducible results must make each index's work self-contained (own RNG, own
// output slot) — see BuildPathGraphBatch.
#ifndef DUMBNET_SRC_UTIL_THREAD_POOL_H_
#define DUMBNET_SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dumbnet {

class ThreadPool {
 public:
  // `threads` background workers (the caller makes threads + 1 total). 0 requests
  // a default of hardware_concurrency - 1, capped at 7.
  explicit ThreadPool(size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  // Worker slots, including the caller: ParallelFor passes worker ids in
  // [0, concurrency()). Id 0 is always the calling thread.
  size_t concurrency() const { return threads_.size() + 1; }

  // Runs fn(index, worker) for every index in [0, n), distributing indices over
  // the pool plus the calling thread; returns when all n calls have finished.
  // `fn` must not throw and must not call back into this pool.
  void ParallelFor(size_t n, const std::function<void(size_t index, size_t worker)>& fn);

 private:
  void WorkerLoop(size_t worker);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals a new job to workers
  std::condition_variable done_cv_;   // signals job completion to the caller
  const std::function<void(size_t, size_t)>* job_ = nullptr;  // guarded by mu_
  size_t job_n_ = 0;                  // guarded by mu_
  uint64_t job_id_ = 0;               // guarded by mu_; bumped per ParallelFor
  size_t active_ = 0;                 // guarded by mu_; workers still in the job
  bool stop_ = false;                 // guarded by mu_
  std::atomic<size_t> next_{0};       // next unclaimed index of the current job
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_UTIL_THREAD_POOL_H_
