#include "src/util/thread_pool.h"

#include <algorithm>

namespace dumbnet {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? std::min<size_t>(hw - 1, 7) : 0;
  }
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i + 1); });  // caller is worker 0
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t, size_t)>* job = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
      if (stop_) {
        return;
      }
      seen = job_id_;
      job = job_;
      n = job_n_;
    }
    for (size_t i = next_.fetch_add(1); i < n; i = next_.fetch_add(1)) {
      (*job)(i, worker);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i, 0);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0);
    active_ = threads_.size();
    ++job_id_;
  }
  work_cv_.notify_all();
  // The caller is worker 0; it drains indices alongside the pool.
  for (size_t i = next_.fetch_add(1); i < n; i = next_.fetch_add(1)) {
    fn(i, 0);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  job_ = nullptr;
}

}  // namespace dumbnet
