// Minimal leveled logger. Defaults to kWarn so simulations stay quiet; tests and
// examples raise verbosity explicitly. The level and sink are set once up front
// (before any worker threads); the log clock is thread-local (see below).
//
// Two observability hooks feed richer subsystems without reversing the layering:
//  - SetLogClock: an active Simulator registers its virtual clock so every line
//    carries simulated time ("[t=12.345ms]") instead of no time at all. The
//    registration is thread-local: each wire-node thread owns a private
//    simulator, and its log lines must read that clock and no other's.
//  - SetLogKvSink: DN_LOG_KV structured events are offered to a sink (the
//    telemetry flight recorder installs one) regardless of the stderr level, so
//    the recorder sees events even while the console stays quiet.
#ifndef DUMBNET_SRC_UTIL_LOGGING_H_
#define DUMBNET_SRC_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace dumbnet {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Global minimum level; messages below it are discarded (and their stream
// formatting skipped via the macro's level check).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Virtual-clock hook. `clock(ctx)` returns the current simulated time in
// nanoseconds. Registering a null clock clears it. The Simulator constructor
// registers itself when no clock is active and unregisters on destruction, so
// nested/sequential simulators behave (first one wins).
using LogClock = int64_t (*)(const void* ctx);
void SetLogClock(LogClock clock, const void* ctx);
const void* LogClockCtx();
// Current simulated time; false when no clock is registered.
bool CurrentLogTime(int64_t* out_ns);

// One structured DN_LOG_KV event, delivered to the sink after rendering.
// `event` points at the call site's string literal (static storage duration).
struct LogKvEvent {
  LogLevel level;
  const char* event;
  int64_t time_ns;   // simulated time, valid when has_time
  bool has_time;
  const std::string& rendered;  // " key=value key=value" suffix
};
using LogKvSink = void (*)(const LogKvEvent&);
void SetLogKvSink(LogKvSink sink);

namespace internal {

// Accumulates one message and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// One structured log statement: a named event plus key=value pairs. Emitted to
// stderr (when the level passes) and to the registered sink (always) on
// destruction. `event` must be a string literal — the sink keeps the pointer.
class LogKv {
 public:
  LogKv(LogLevel level, const char* file, int line, const char* event);
  ~LogKv();

  LogKv(const LogKv&) = delete;
  LogKv& operator=(const LogKv&) = delete;

  template <typename T>
  LogKv& Kv(const char* key, const T& value) {
    if (active_) {
      stream_ << ' ' << key << '=' << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  const char* event_;
  bool active_;    // something (stderr or sink) wants this event
  bool to_stderr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dumbnet

#define DN_LOG(level)                                                      \
  if (static_cast<int>(::dumbnet::LogLevel::level) <                       \
      static_cast<int>(::dumbnet::GetLogLevel())) {                        \
  } else                                                                   \
    ::dumbnet::internal::LogMessage(::dumbnet::LogLevel::level, __FILE__,  \
                                    __LINE__)                              \
        .stream()

#define DN_DEBUG DN_LOG(kDebug)
#define DN_INFO DN_LOG(kInfo)
#define DN_WARN DN_LOG(kWarn)
#define DN_ERROR DN_LOG(kError)

// Structured variant: DN_LOG_KV(kInfo, "host.failover").Kv("dst", mac).Kv(...).
// `event` must be a string literal; pairs render as "event k=v k=v".
#define DN_LOG_KV(level, event)                                             \
  ::dumbnet::internal::LogKv(::dumbnet::LogLevel::level, __FILE__, __LINE__, \
                             (event))

#endif  // DUMBNET_SRC_UTIL_LOGGING_H_
