// Minimal leveled logger. Defaults to kWarn so simulations stay quiet; tests and
// examples raise verbosity explicitly. Not thread-safe by design: the simulator is
// single-threaded and benchmarks set the level once up front.
#ifndef DUMBNET_SRC_UTIL_LOGGING_H_
#define DUMBNET_SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dumbnet {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Global minimum level; messages below it are discarded (and their stream
// formatting skipped via the macro's level check).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

// Accumulates one message and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dumbnet

#define DN_LOG(level)                                                      \
  if (static_cast<int>(::dumbnet::LogLevel::level) <                       \
      static_cast<int>(::dumbnet::GetLogLevel())) {                        \
  } else                                                                   \
    ::dumbnet::internal::LogMessage(::dumbnet::LogLevel::level, __FILE__,  \
                                    __LINE__)                              \
        .stream()

#define DN_DEBUG DN_LOG(kDebug)
#define DN_INFO DN_LOG(kInfo)
#define DN_WARN DN_LOG(kWarn)
#define DN_ERROR DN_LOG(kError)

#endif  // DUMBNET_SRC_UTIL_LOGGING_H_
