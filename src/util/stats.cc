#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dumbnet {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::AddAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void SampleSet::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  SortIfNeeded();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  SortIfNeeded();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  if (p <= 0.0) {
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> SampleSet::Cdf(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  SortIfNeeded();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    size_t idx = std::min(samples_.size() - 1,
                          static_cast<size_t>(frac * static_cast<double>(samples_.size())));
    out.emplace_back(samples_[idx], frac);
  }
  return out;
}

double SampleSet::FractionBelow(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
    return;
  }
  size_t i = static_cast<size_t>((x - lo_) / width_);
  if (i >= counts_.size()) {
    i = counts_.size() - 1;
  }
  ++counts_[i];
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << BucketLow(i) << ", " << BucketLow(i) + width_ << "): " << counts_[i] << "\n";
  }
  return os.str();
}

LogHistogram::LogHistogram(uint32_t sub_bucket_bits) : sub_bucket_bits_(sub_bucket_bits) {}

int64_t LogHistogram::BucketIndex(double x) const {
  if (!(x > 0.0)) {
    return INT64_MIN;  // dedicated non-positive bucket
  }
  int exp = 0;
  double m = std::frexp(x, &exp);  // m in [0.5, 1)
  const int64_t sub = int64_t{1} << sub_bucket_bits_;
  int64_t sub_idx = static_cast<int64_t>((m - 0.5) * 2.0 * static_cast<double>(sub));
  if (sub_idx >= sub) {
    sub_idx = sub - 1;  // guard m rounding up to 1.0
  }
  return static_cast<int64_t>(exp) * sub + sub_idx;
}

double LogHistogram::BucketValue(int64_t index) const {
  if (index == INT64_MIN) {
    return min();
  }
  const int64_t sub = int64_t{1} << sub_bucket_bits_;
  int64_t exp = index >= 0 ? index / sub : -((-index + sub - 1) / sub);
  int64_t sub_idx = index - exp * sub;
  double width = 1.0 / (2.0 * static_cast<double>(sub));  // mantissa bucket width
  double m_mid = 0.5 + (static_cast<double>(sub_idx) + 0.5) * width;
  return std::ldexp(m_mid, static_cast<int>(exp));
}

void LogHistogram::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  ++buckets_[BucketIndex(x)];
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [idx, n] : other.buckets_) {
    buckets_[idx] += n;
  }
}

void LogHistogram::Reset() {
  buckets_.clear();
  count_ = 0;
  min_ = max_ = sum_ = 0.0;
}

double LogHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LogHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  if (p <= 0.0) {
    return min_;
  }
  if (p >= 100.0) {
    return max_;
  }
  // Rank convention matches SampleSet::Percentile, so swapping collectors does
  // not shift reported percentiles beyond the bucket error bound.
  double target = p / 100.0 * static_cast<double>(count_ - 1) + 1.0;
  uint64_t cum = 0;
  for (const auto& [idx, n] : buckets_) {
    cum += n;
    if (static_cast<double>(cum) >= target) {
      return std::clamp(BucketValue(idx), min_, max_);
    }
  }
  return max_;
}

double LogHistogram::FractionBelow(double x) const {
  if (count_ == 0) {
    return 0.0;
  }
  const int64_t limit = BucketIndex(x);
  uint64_t below = 0;
  for (const auto& [idx, n] : buckets_) {
    if (idx > limit) {
      break;
    }
    below += n;
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

std::vector<std::pair<double, double>> LogHistogram::Cdf(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0 || points == 0) {
    return out;
  }
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(Percentile(100.0 * frac), frac);
  }
  return out;
}

}  // namespace dumbnet
