#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dumbnet {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::AddAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void SampleSet::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  SortIfNeeded();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  SortIfNeeded();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  if (p <= 0.0) {
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> SampleSet::Cdf(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  SortIfNeeded();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    size_t idx = std::min(samples_.size() - 1,
                          static_cast<size_t>(frac * static_cast<double>(samples_.size())));
    out.emplace_back(samples_[idx], frac);
  }
  return out;
}

double SampleSet::FractionBelow(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  SortIfNeeded();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
    return;
  }
  size_t i = static_cast<size_t>((x - lo_) / width_);
  if (i >= counts_.size()) {
    i = counts_.size() - 1;
  }
  ++counts_[i];
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << BucketLow(i) << ", " << BucketLow(i) + width_ << "): " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace dumbnet
