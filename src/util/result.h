// Lightweight Result<T> error handling used across all DumbNet module boundaries.
//
// Public APIs in this codebase do not throw exceptions; fallible operations return
// Result<T>, which either holds a value or an Error (code + human-readable message).
#ifndef DUMBNET_SRC_UTIL_RESULT_H_
#define DUMBNET_SRC_UTIL_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dumbnet {

// Error codes used across the library. Kept as one enum so call sites can switch on
// failure classes without caring which module produced them.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kUnavailable,      // e.g. link down, port down, controller unreachable
  kPermissionDenied, // e.g. path verifier rejects an application route
  kExhausted,        // e.g. queue full, tag stack overflow
  kMalformed,        // e.g. bad packet header
  kInternal,
};

// Returns a stable, lowercase identifier for an error code (for logs and tests).
const char* ErrorCodeName(ErrorCode code);

// An error: a code plus a message. Cheap to move, fine to copy.
class Error {
 public:
  Error(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Result<T>: holds either a T or an Error.
template <typename T>
class Result {
 public:
  // Implicit construction from values and errors keeps call sites terse:
  //   return Error(ErrorCode::kNotFound, "no such switch");
  //   return path;
  Result(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Error error) : value_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(value_);
  }

  // Returns the value or a fallback, never asserting.
  T value_or(T fallback) const& { return ok() ? std::get<T>(value_) : std::move(fallback); }

 private:
  std::variant<T, Error> value_;
};

// Result<void> analogue for operations with no payload.
class Status {
 public:
  Status() : error_(ErrorCode::kOk, "") {}
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status Ok() { return Status(); }

  bool ok() const { return error_.code() == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return error_;
  }
  ErrorCode code() const { return error_.code(); }

  std::string ToString() const { return ok() ? "ok" : error_.ToString(); }

 private:
  Error error_;
};

}  // namespace dumbnet

#endif  // DUMBNET_SRC_UTIL_RESULT_H_
