// In-band path provenance (telemetry tentpole, part 3).
//
// DumbNet sources *choose* the whole path by writing the tag stack, but the
// stateless switches never echo back which ports actually carried the packet —
// a misprogrammed tag or a miswired port forwards traffic silently down the
// wrong path as long as it still reaches a host. The provenance header closes
// that loop: when telemetry is enabled, the sending host stamps the *promised*
// path (the switch-UID sequence its cached route was computed from) onto the
// packet, each switch appends a (switch_uid, ingress, egress) hop record as it
// pops its tag, and the receiving host compares taken vs promised, bumping the
// host.path_divergence counter on mismatch.
//
// This is a simulation-side diagnosis header: it is not charged to WireSize(),
// so paper-figure byte counts are unchanged. (A real deployment would carry it
// as a small INT-style option; the paper's switches would need none of it to
// forward.) Types are plain integers so this header sits in the telemetry
// layer, below topo/net.
#ifndef DUMBNET_SRC_TELEMETRY_PROVENANCE_H_
#define DUMBNET_SRC_TELEMETRY_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dumbnet {
namespace telemetry {

// One switch traversal, recorded by the switch as it forwards.
struct PathHop {
  uint64_t switch_uid = 0;
  uint8_t ingress = 0;
  uint8_t egress = 0;

  bool operator==(const PathHop& o) const {
    return switch_uid == o.switch_uid && ingress == o.ingress && egress == o.egress;
  }
};

// Carried on simulated packets (empty and cost-free unless a sender arms it).
struct PathProvenance {
  // Switch UIDs the sender's route promised, source-side first.
  std::vector<uint64_t> promised;
  // Hops actually taken, appended by each switch.
  std::vector<PathHop> hops;

  // True once a sender stamped a promise; receivers only verify armed packets.
  bool armed() const { return !promised.empty(); }

  void Clear() {
    promised.clear();
    hops.clear();
  }
};

// True when the taken path matches the promise: same switch count, same UIDs
// in order. Ingress/egress ports are reported, not matched — the promise is a
// UID sequence.
bool ProvenanceMatches(const PathProvenance& p);

// "promised=[0x..,..] taken=[0x..(in->out),..]" for divergence logging.
std::string DescribeProvenance(const PathProvenance& p);

}  // namespace telemetry
}  // namespace dumbnet

#endif  // DUMBNET_SRC_TELEMETRY_PROVENANCE_H_
