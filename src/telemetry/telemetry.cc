#include "src/telemetry/telemetry.h"

#include <algorithm>
#include <fstream>

namespace dumbnet {
namespace telemetry {

#ifdef DUMBNET_TELEMETRY_ENABLED
namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

namespace {

void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

double RegistrySnapshot::Value(const std::string& name) const {
  const MetricValue* m = Find(name);
  return m == nullptr ? 0.0 : m->value;
}

const MetricValue* RegistrySnapshot::Find(const std::string& name) const {
  auto it = std::lower_bound(
      metrics_.begin(), metrics_.end(), name,
      [](const MetricValue& m, const std::string& n) { return m.name < n; });
  if (it == metrics_.end() || it->name != name) {
    return nullptr;
  }
  return &*it;
}

void RegistrySnapshot::WriteJson(std::ostream& os) const {
  auto write_section = [&](const char* title, MetricValue::Kind kind, bool first_section) {
    if (!first_section) {
      os << ",\n";
    }
    os << "  ";
    WriteJsonString(os, title);
    os << ": {";
    bool first = true;
    for (const MetricValue& m : metrics_) {
      if (m.kind != kind) {
        continue;
      }
      if (!first) {
        os << ",";
      }
      first = false;
      os << "\n    ";
      WriteJsonString(os, m.name);
      os << ": ";
      if (kind == MetricValue::Kind::kHistogram) {
        const LogHistogram& h = m.histogram;
        os << "{\"count\": " << h.count() << ", \"mean\": " << h.mean()
           << ", \"min\": " << h.min() << ", \"max\": " << h.max()
           << ", \"p50\": " << h.Percentile(50.0) << ", \"p90\": " << h.Percentile(90.0)
           << ", \"p99\": " << h.Percentile(99.0) << "}";
      } else {
        // Counter/gauge values are integral; print them losslessly (the default
        // ostream double format rounds large counts to 6 significant digits).
        os << static_cast<int64_t>(m.value);
      }
    }
    os << (first ? "}" : "\n  }");
  };
  os << "{\n";
  write_section("counters", MetricValue::Kind::kCounter, true);
  write_section("gauges", MetricValue::Kind::kGauge, false);
  write_section("histograms", MetricValue::Kind::kHistogram, false);
  os << "\n}\n";
}

RegistrySnapshot Diff(const RegistrySnapshot& before, const RegistrySnapshot& after) {
  RegistrySnapshot out;
  out.metrics_.reserve(after.metrics_.size());
  for (const MetricValue& m : after.metrics_) {
    MetricValue d = m;
    if (m.kind == MetricValue::Kind::kCounter ||
        m.kind == MetricValue::Kind::kHistogram) {
      const MetricValue* b = before.Find(m.name);
      if (b != nullptr && b->kind == m.kind) {
        d.value = std::max(0.0, m.value - b->value);
      }
    }
    out.metrics_.push_back(std::move(d));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>();
  }
  return slot.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  snap.metrics_.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kCounter;
    m.name = name;
    m.value = static_cast<double>(c->value());
    snap.metrics_.push_back(std::move(m));
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kGauge;
    m.name = name;
    m.value = static_cast<double>(g->value());
    snap.metrics_.push_back(std::move(m));
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kHistogram;
    m.name = name;
    m.histogram = h->Snapshot();
    m.value = static_cast<double>(m.histogram.count());
    snap.metrics_.push_back(std::move(m));
  }
  std::sort(snap.metrics_.begin(), snap.metrics_.end(),
            [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
  return snap;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteJson(out);
  return static_cast<bool>(out);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace telemetry
}  // namespace dumbnet
