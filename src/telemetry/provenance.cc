#include "src/telemetry/provenance.h"

#include <iomanip>
#include <sstream>

namespace dumbnet {
namespace telemetry {

bool ProvenanceMatches(const PathProvenance& p) {
  if (p.hops.size() != p.promised.size()) {
    return false;
  }
  for (size_t i = 0; i < p.hops.size(); ++i) {
    if (p.hops[i].switch_uid != p.promised[i]) {
      return false;
    }
  }
  return true;
}

std::string DescribeProvenance(const PathProvenance& p) {
  std::ostringstream os;
  os << std::hex;
  os << "promised=[";
  for (size_t i = 0; i < p.promised.size(); ++i) {
    os << (i == 0 ? "" : ",") << "0x" << p.promised[i];
  }
  os << "] taken=[";
  for (size_t i = 0; i < p.hops.size(); ++i) {
    const PathHop& h = p.hops[i];
    os << (i == 0 ? "" : ",") << "0x" << h.switch_uid << std::dec << "("
       << static_cast<unsigned>(h.ingress) << "->" << static_cast<unsigned>(h.egress)
       << ")" << std::hex;
  }
  os << "]";
  return os.str();
}

}  // namespace telemetry
}  // namespace dumbnet
