#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "src/util/logging.h"

namespace dumbnet {
namespace telemetry {

namespace {
constexpr size_t kDefaultCapacity = 64 * 1024;

const char* const kComponentNames[kComponentCount] = {
    "simulator", "network", "switch", "host", "controller", "transport", "audit", "log",
};

constexpr size_t kEventKindCount = 16;
const char* const kEventKindNames[kEventKindCount] = {
    "progress",   "send",       "receive", "forward", "drop",      "failover",
    "repair",     "retransmit", "timeout", "discovery", "path_serve", "patch",
    "gossip",     "divergence", "audit_failure", "log_event",
};

bool ParseComponent(const std::string& s, Component* out) {
  for (size_t i = 0; i < kComponentCount; ++i) {
    if (s == kComponentNames[i]) {
      *out = static_cast<Component>(i);
      return true;
    }
  }
  return false;
}

bool ParseEventKind(const std::string& s, EventKind* out) {
  for (size_t i = 0; i < kEventKindCount; ++i) {
    if (s == kEventKindNames[i]) {
      *out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

const char* ComponentName(Component c) {
  size_t i = static_cast<size_t>(c);
  return i < kComponentCount ? kComponentNames[i] : "unknown";
}

const char* EventKindName(EventKind k) {
  size_t i = static_cast<size_t>(k);
  return i < kEventKindCount ? kEventKindNames[i] : "unknown";
}

FlightRecorder::FlightRecorder() : capacity_(kDefaultCapacity) {
  ring_.reserve(capacity_);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

void FlightRecorder::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  wrapped_ = false;
}

size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void FlightRecorder::Record(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    return;
  }
  ring_[next_] = ev;
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
}

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  } else {
    out = ring_;
  }
  return out;
}

std::vector<TraceEvent> FlightRecorder::LastN(size_t n) const {
  std::vector<TraceEvent> all = Snapshot();
  if (all.size() > n) {
    all.erase(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(all.size() - n));
  }
  return all;
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  total_ = 0;
}

bool FlightRecorder::SaveTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteTextDump(out, Snapshot());
  return static_cast<bool>(out);
}

void FlightRecorder::DumpOnFailure(const char* why, size_t n) const {
  std::vector<TraceEvent> tail = LastN(n);
  std::ostringstream os;
  os << "=== flight recorder: last " << tail.size() << " events (" << why << ") ===\n";
  WriteTextDump(os, tail);
  os << "=== end flight recorder dump ===\n";
  std::fputs(os.str().c_str(), stderr);
}

namespace {

void RecordLogKv(const LogKvEvent& ev) {
  if (!Enabled()) {
    return;
  }
  TraceEvent trace;
  trace.ts_ns = ev.has_time ? ev.time_ns : 0;
  trace.name = ev.event;
  trace.component = Component::kLog;
  trace.kind = EventKind::kLogEvent;
  FlightRecorder::Global().Record(trace);
}

}  // namespace

void FlightRecorder::InstallLogCapture() { SetLogKvSink(&RecordLogKv); }

void WriteTextDump(std::ostream& os, const std::vector<TraceEvent>& events) {
  os << "dumbnet-flight-recorder v1\n";
  uint64_t seq = 0;
  for (const TraceEvent& ev : events) {
    os << seq++ << ' ' << ev.ts_ns << ' ' << ComponentName(ev.component) << ' '
       << EventKindName(ev.kind) << ' ' << ev.id << ' ' << ev.arg;
    if (ev.name != nullptr) {
      os << ' ' << ev.name;
    }
    os << '\n';
  }
}

bool TraceDump::Load(std::istream& is, TraceDump* out, std::string* error) {
  out->events.clear();
  out->names.clear();
  std::string line;
  if (!std::getline(is, line) || line != "dumbnet-flight-recorder v1") {
    *error = "missing 'dumbnet-flight-recorder v1' header";
    return false;
  }
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    uint64_t seq = 0;
    TraceEvent ev;
    std::string component;
    std::string kind;
    if (!(ls >> seq >> ev.ts_ns >> component >> kind >> ev.id >> ev.arg)) {
      *error = "malformed event at line " + std::to_string(line_no);
      return false;
    }
    if (!ParseComponent(component, &ev.component)) {
      *error = "unknown component '" + component + "' at line " + std::to_string(line_no);
      return false;
    }
    if (!ParseEventKind(kind, &ev.kind)) {
      *error = "unknown event kind '" + kind + "' at line " + std::to_string(line_no);
      return false;
    }
    std::string name;
    if (ls >> name) {
      out->names.push_back(name);
      ev.name = out->names.back().c_str();
    }
    out->events.push_back(ev);
  }
  return true;
}

void WriteChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events) {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  // Lane labels so chrome://tracing names each component's row.
  for (size_t i = 0; i < kComponentCount; ++i) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << i
       << ", \"args\": {\"name\": \"" << kComponentNames[i] << "\"}}";
  }
  for (const TraceEvent& ev : events) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    // ts is microseconds (double) in the trace_event format.
    const double ts_us = static_cast<double>(ev.ts_ns) / 1e3;
    os << "  {\"name\": \"";
    if (ev.name != nullptr) {
      os << ev.name;
    } else {
      os << EventKindName(ev.kind);
    }
    os << "\", \"cat\": \"" << EventKindName(ev.kind) << "\", \"ph\": \"i\", \"s\": \"t\""
       << ", \"ts\": " << ts_us << ", \"pid\": 1, \"tid\": "
       << static_cast<unsigned>(ev.component) << ", \"args\": {\"id\": " << ev.id
       << ", \"arg\": " << ev.arg << "}}";
  }
  os << "\n]}\n";
}

void PrintTopReport(std::ostream& os, const std::vector<TraceEvent>& events, size_t top_n) {
  uint64_t by_component[kComponentCount] = {};
  std::map<std::pair<std::string, std::string>, uint64_t> by_pair;
  int64_t ts_min = 0;
  int64_t ts_max = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    size_t c = static_cast<size_t>(ev.component);
    if (c < kComponentCount) {
      ++by_component[c];
    }
    ++by_pair[{ComponentName(ev.component),
               ev.name != nullptr ? ev.name : EventKindName(ev.kind)}];
    if (i == 0) {
      ts_min = ts_max = ev.ts_ns;
    } else {
      ts_min = std::min(ts_min, ev.ts_ns);
      ts_max = std::max(ts_max, ev.ts_ns);
    }
  }
  os << "events: " << events.size() << "  span: "
     << static_cast<double>(ts_max - ts_min) / 1e6 << " ms\n";
  os << "by component:\n";
  for (size_t i = 0; i < kComponentCount; ++i) {
    if (by_component[i] != 0) {
      os << "  " << kComponentNames[i] << ": " << by_component[i] << "\n";
    }
  }
  std::vector<std::pair<uint64_t, std::pair<std::string, std::string>>> ranked;
  ranked.reserve(by_pair.size());
  for (const auto& [key, n] : by_pair) {
    ranked.emplace_back(n, key);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  if (ranked.size() > top_n) {
    ranked.resize(top_n);
  }
  os << "top " << ranked.size() << " (component, event):\n";
  for (const auto& [n, key] : ranked) {
    os << "  " << key.first << " " << key.second << ": " << n << "\n";
  }
}

}  // namespace telemetry
}  // namespace dumbnet
