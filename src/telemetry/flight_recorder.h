// Flight recorder: a fixed-size ring buffer of structured trace events.
//
// Every layer of the stack (simulator core, switches, host agents, controller,
// transport) records cheap fixed-width events as it runs; the ring keeps the
// most recent `capacity` of them. Two consumers:
//   - On an audit/assert failure, the last N events are dumped to stderr so the
//     moments leading up to the violation are visible ("what was the fabric
//     doing right before this fired?").
//   - A run can save the ring to a text dump ("dumbnet-flight-recorder v1"),
//     which tools/dumbnet-trace converts to Chrome trace_event JSON for
//     chrome://tracing, or summarizes as a text top-N report.
//
// Events carry the *simulated* timestamp (TimeNs) — callers pass now_ns from
// the active Simulator; sites without a simulator handy fall back to the
// registered log clock (0 when none). `name` is an optional string literal
// (static storage duration) attached by DN_LOG_KV capture; the recorder keeps
// the pointer, never a copy.
//
// Recording is mutex-guarded (TSan-clean from pool workers) and gated on the
// same compile/runtime switches as the metrics registry, so a disabled build
// pays nothing and a runtime-disabled run pays one predicted branch per site.
#ifndef DUMBNET_SRC_TELEMETRY_FLIGHT_RECORDER_H_
#define DUMBNET_SRC_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace dumbnet {
namespace telemetry {

// Which layer recorded the event. Values are stable across runs (they appear
// in dumps); append only.
enum class Component : uint8_t {
  kSimulator = 0,
  kNetwork = 1,
  kSwitch = 2,
  kHost = 3,
  kController = 4,
  kTransport = 5,
  kAudit = 6,
  kLog = 7,  // DN_LOG_KV capture
};
constexpr size_t kComponentCount = 8;
const char* ComponentName(Component c);

// What happened. Shared vocabulary across components; append only.
enum class EventKind : uint8_t {
  kProgress = 0,      // periodic simulator heartbeat (id = events executed)
  kSend = 1,          // packet handed to the network
  kReceive = 2,       // packet delivered
  kForward = 3,       // switch forwarded a tagged packet (arg = egress port)
  kDrop = 4,          // packet dropped (dead link, bad tag, filter)
  kFailover = 5,      // host switched to a backup path (arg = path index)
  kRepair = 6,        // host repaired its path table after a link change
  kRetransmit = 7,    // transport retransmitted a segment (id = flow)
  kTimeout = 8,       // transport retransmission timer fired
  kDiscovery = 9,     // controller discovery probe activity
  kPathServe = 10,    // controller served a path-graph / route request
  kPatch = 11,        // controller pushed a repair patch
  kGossip = 12,       // host-to-host failure gossip hop
  kDivergence = 13,   // provenance mismatch: path taken != path promised
  kAuditFailure = 14, // invariant audit / assert failure
  kLogEvent = 15,     // structured DN_LOG_KV event (name = event literal)
};
const char* EventKindName(EventKind k);

// One fixed-width trace record. 32 bytes; copied into the ring by value.
struct TraceEvent {
  int64_t ts_ns = 0;          // simulated time
  uint64_t id = 0;            // packet/flow/switch id (component-defined)
  uint64_t arg = 0;           // secondary payload (port, count, path index)
  const char* name = nullptr; // optional string literal; nullptr for most events
  Component component = Component::kSimulator;
  EventKind kind = EventKind::kProgress;
};

class FlightRecorder {
 public:
  // Process-wide recorder used by DN_TRACE_EVENT. Never destroyed.
  static FlightRecorder& Global();

  // Ring size in events. Resizing clears the ring. Default 64 Ki events.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  void Record(const TraceEvent& ev);

  // Oldest-to-newest copy of the ring.
  std::vector<TraceEvent> Snapshot() const;
  // The most recent `n` events, oldest first.
  std::vector<TraceEvent> LastN(size_t n) const;

  size_t size() const;
  // Total events ever recorded (>= size(); the excess wrapped away).
  uint64_t total_recorded() const;
  void Clear();

  // Writes the "dumbnet-flight-recorder v1" text dump. Returns false on I/O
  // failure.
  bool SaveTo(const std::string& path) const;

  // Dumps the last `n` events to stderr, newest last, under a banner naming
  // `why`. Called from the audit layer on assert/invariant failure; safe to
  // call with an empty ring.
  void DumpOnFailure(const char* why, size_t n = 64) const;

  // Installs a DN_LOG_KV sink that records kLogEvent entries into this ring.
  // Idempotent; replaces any previous sink.
  static void InstallLogCapture();

 private:
  FlightRecorder();

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;       // ring_[next_] is the oldest once wrapped
  bool wrapped_ = false;
  uint64_t total_ = 0;
};

// Writes events oldest-first as "dumbnet-flight-recorder v1" text, one event
// per line: seq ts_ns component kind id arg [name].
void WriteTextDump(std::ostream& os, const std::vector<TraceEvent>& events);

// A dump re-loaded from text. Owns the name strings (TraceEvent::name points
// into `names`, which never reallocates).
struct TraceDump {
  std::vector<TraceEvent> events;
  std::deque<std::string> names;  // stable backing for event names

  // Parses a "dumbnet-flight-recorder v1" dump; returns false (with *error
  // set) on malformed input.
  static bool Load(std::istream& is, TraceDump* out, std::string* error);
};

// Chrome trace_event JSON: one instant event per record, one tid lane per
// component, with thread_name metadata so chrome://tracing labels the lanes.
void WriteChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events);

// Text report: per-component and per-kind event counts plus the top-N busiest
// (component, kind) pairs, sorted by count.
void PrintTopReport(std::ostream& os, const std::vector<TraceEvent>& events, size_t top_n);

}  // namespace telemetry
}  // namespace dumbnet

// Record one trace event. `component` and `kind` are bare enumerator names
// (e.g. kSwitch, kForward); `ts` is the simulated time in ns.
#ifdef DUMBNET_TELEMETRY_ENABLED

#define DN_TRACE_EVENT(comp_, kind_, ts_, id_, arg_)                         \
  do {                                                                       \
    if (::dumbnet::telemetry::Enabled()) {                                   \
      ::dumbnet::telemetry::TraceEvent _dn_ev;                               \
      _dn_ev.ts_ns = (ts_);                                                  \
      _dn_ev.id = (id_);                                                     \
      _dn_ev.arg = (arg_);                                                   \
      _dn_ev.component = ::dumbnet::telemetry::Component::comp_;             \
      _dn_ev.kind = ::dumbnet::telemetry::EventKind::kind_;                  \
      ::dumbnet::telemetry::FlightRecorder::Global().Record(_dn_ev);         \
    }                                                                        \
  } while (0)

#else

#define DN_TRACE_EVENT(comp_, kind_, ts_, id_, arg_) \
  do {                                               \
  } while (0)

#endif  // DUMBNET_TELEMETRY_ENABLED

#endif  // DUMBNET_SRC_TELEMETRY_FLIGHT_RECORDER_H_
