// Telemetry metrics registry: named counters, gauges, and log-bucketed
// histograms, designed for near-zero cost when disabled.
//
// Two gates stack:
//   - Compile time: CMake option DUMBNET_TELEMETRY (ON by default) defines
//     DUMBNET_TELEMETRY_ENABLED. When OFF, telemetry::Enabled() is a constexpr
//     false and every DN_COUNTER_INC / DN_TRACE_EVENT call site compiles away
//     entirely — the registry API stays linkable so tools still build.
//   - Runtime: a single relaxed-atomic enable bit, read branch-predictably at
//     each instrumented call site. telemetry::SetEnabled(false) turns the whole
//     subsystem into one well-predicted branch per call site.
//
// Metric objects are owned by the registry and never deallocated while the
// process lives, so call sites may cache raw pointers (the DN_*_INC macros
// cache one in a function-local static). Counters and gauges are relaxed
// atomics — safe to bump from ThreadPool workers; histograms take a light
// mutex and are meant for packet-level (not per-event) paths.
#ifndef DUMBNET_SRC_TELEMETRY_TELEMETRY_H_
#define DUMBNET_SRC_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/stats.h"

namespace dumbnet {
namespace telemetry {

#ifdef DUMBNET_TELEMETRY_ENABLED
inline constexpr bool kCompiledIn = true;
namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal
inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on);
#else
inline constexpr bool kCompiledIn = false;
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#endif

// Monotonic event count. Relaxed increments: TSan-clean from pool workers.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Point-in-time signed level (queue depth, cache size).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Log-bucketed distribution (latencies, sizes). Record takes a mutex; fine for
// per-packet paths, too heavy for the per-event simulator core.
class HistogramMetric {
 public:
  void Record(double x) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Add(x);
  }
  // Consistent copy for reading percentiles.
  LogHistogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Reset();
  }

 private:
  mutable std::mutex mu_;
  LogHistogram hist_;
};

// One metric's value at snapshot time.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  double value = 0.0;       // counter/gauge value; histogram sample count
  LogHistogram histogram;   // populated for histograms only
};

// A consistent-enough view of the whole registry (each metric is read
// atomically; the set is read under the registry lock).
class RegistrySnapshot {
 public:
  const std::vector<MetricValue>& metrics() const { return metrics_; }
  // Value by name; 0 when absent. For histograms, the sample count.
  double Value(const std::string& name) const;
  const MetricValue* Find(const std::string& name) const;

  // JSON object: {"counters": {...}, "gauges": {...}, "histograms": {name:
  // {count, mean, min, max, p50, p90, p99}}}.
  void WriteJson(std::ostream& os) const;

 private:
  friend class MetricsRegistry;
  friend RegistrySnapshot Diff(const RegistrySnapshot&, const RegistrySnapshot&);
  std::vector<MetricValue> metrics_;  // sorted by name
};

// after - before: counters and histogram counts subtract (clamped at zero),
// gauges keep the `after` value, histogram percentile detail keeps `after`.
// Metrics only present in `after` pass through unchanged.
RegistrySnapshot Diff(const RegistrySnapshot& before, const RegistrySnapshot& after);

class MetricsRegistry {
 public:
  // Process-wide registry used by all DN_* instrumentation macros.
  static MetricsRegistry& Global();

  // Find-or-create by name. Returned pointers stay valid for the registry's
  // lifetime; Reset() zeroes values but never removes registrations.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;
  void WriteJson(std::ostream& os) const { Snapshot().WriteJson(os); }
  bool WriteJsonFile(const std::string& path) const;

  // Zeroes every metric (tests; between bench phases). Registrations survive.
  void Reset();

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace telemetry
}  // namespace dumbnet

// Hot-path instrumentation macros. Each call site pays one predictable branch
// when telemetry is runtime-disabled and nothing at all when compiled out. The
// metric lookup happens once per call site (function-local static).
#ifdef DUMBNET_TELEMETRY_ENABLED

#define DN_COUNTER_INC_N(name, n)                                              \
  do {                                                                         \
    if (::dumbnet::telemetry::Enabled()) {                                     \
      static ::dumbnet::telemetry::Counter* _dn_counter =                      \
          ::dumbnet::telemetry::MetricsRegistry::Global().GetCounter(name);    \
      _dn_counter->Inc(n);                                                     \
    }                                                                          \
  } while (0)

#define DN_GAUGE_SET(name, v)                                                  \
  do {                                                                         \
    if (::dumbnet::telemetry::Enabled()) {                                     \
      static ::dumbnet::telemetry::Gauge* _dn_gauge =                          \
          ::dumbnet::telemetry::MetricsRegistry::Global().GetGauge(name);      \
      _dn_gauge->Set(v);                                                       \
    }                                                                          \
  } while (0)

#define DN_HISTOGRAM_RECORD(name, v)                                           \
  do {                                                                         \
    if (::dumbnet::telemetry::Enabled()) {                                     \
      static ::dumbnet::telemetry::HistogramMetric* _dn_hist =                 \
          ::dumbnet::telemetry::MetricsRegistry::Global().GetHistogram(name);  \
      _dn_hist->Record(v);                                                     \
    }                                                                          \
  } while (0)

#else

#define DN_COUNTER_INC_N(name, n) \
  do {                            \
  } while (0)
#define DN_GAUGE_SET(name, v) \
  do {                        \
  } while (0)
#define DN_HISTOGRAM_RECORD(name, v) \
  do {                               \
  } while (0)

#endif  // DUMBNET_TELEMETRY_ENABLED

#define DN_COUNTER_INC(name) DN_COUNTER_INC_N(name, 1)

#endif  // DUMBNET_SRC_TELEMETRY_TELEMETRY_H_
