// Flowlet traffic engineering demo (paper Section 6.2): an all-to-all shuffle on an
// oversubscribed leaf-spine, with and without flowlet-based TE, comparing makespan
// — the mechanism behind Figure 13's gap.
//
//   $ ./traffic_engineering
#include <cstdio>

#include "src/fluid/fluid_sim.h"
#include "src/topo/generators.h"
#include "src/workload/hibench.h"
#include "src/workload/job_runner.h"

using namespace dumbnet;

namespace {

TimeNs RunShuffle(PathPolicy policy, TimeNs flowlet_interval) {
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 4;
  config.hosts_per_leaf = 4;
  config.uplink_gbps = 1.0;  // oversubscribed: 16 hosts, 2x1G uplinks per leaf
  config.host_gbps = 10.0;
  auto ls = MakeLeafSpine(config);
  if (!ls.ok()) {
    return 0;
  }
  Simulator sim;
  Topology topo = std::move(ls.value().topo);
  FluidSimulator fluid(&sim, &topo);

  std::vector<uint32_t> hosts;
  for (const auto& leaf_hosts : ls.value().hosts) {
    hosts.insert(hosts.end(), leaf_hosts.begin(), leaf_hosts.end());
  }

  HiBenchJob job;
  job.name = "shuffle";
  JobStage stage;
  stage.name = "all-to-all";
  for (const FlowSpec& f : AllToAllTraffic(hosts, 4e6)) {
    stage.flows.push_back(f);
  }
  job.stages.push_back(stage);

  JobRunnerConfig runner_config;
  runner_config.flowlet_interval = flowlet_interval;
  FluidJobRunner runner(&sim, &topo, &fluid, std::move(policy), runner_config);
  TimeNs duration = 0;
  runner.RunJob(job, [&](const JobResult& r) { duration = r.duration; });
  sim.Run();
  return duration;
}

}  // namespace

int main() {
  LeafSpineConfig probe_config;  // only used to build policies against the topology
  probe_config.num_spine = 2;
  probe_config.num_leaf = 4;
  probe_config.hosts_per_leaf = 4;
  probe_config.uplink_gbps = 1.0;
  auto ls = MakeLeafSpine(probe_config);
  if (!ls.ok()) {
    return 1;
  }
  // NOTE: each run builds its own identical topology; policies are constructed per
  // run inside RunShuffle via these factories (same wiring, same indices).
  std::printf("all-to-all shuffle on oversubscribed 2-spine/4-leaf fabric (16 hosts)\n\n");

  struct Row {
    const char* name;
    TimeNs duration;
  };
  Topology topo_for_policy = std::move(ls.value().topo);
  Row rows[] = {
      {"DumbNet flowlet TE", RunShuffle(MakeFlowletPolicy(&topo_for_policy, 4, 1), Ms(50))},
      {"ECMP (per-flow hash)", RunShuffle(MakeEcmpPolicy(&topo_for_policy, 4, 1), 0)},
      {"Single path per host-pair", RunShuffle(MakeSinglePathPolicy(&topo_for_policy, 1), 0)},
  };

  std::printf("%-28s %12s %10s\n", "routing policy", "makespan (s)", "vs TE");
  for (const Row& row : rows) {
    std::printf("%-28s %12.2f %9.2fx\n", row.name, ToSec(row.duration),
                static_cast<double>(row.duration) / static_cast<double>(rows[0].duration));
  }
  std::printf("\nflowlet TE re-spreads flowlets over both spines whenever a gap opens,\n"
              "so no single uplink stays the straggler (paper Section 6.2).\n");
  return 0;
}
