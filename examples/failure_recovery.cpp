// Failure recovery demo (paper Section 4.2): a reliable flow runs across the
// testbed while a spine-leaf link is cut. The timeline shows the two-stage failure
// handling — switch hardware broadcast, host flooding, local failover to a cached
// path, and the controller's asynchronous topology patch.
//
// With telemetry compiled in, the run can also export its instrumentation:
//
//   $ ./failure_recovery --trace run.fr --metrics-json metrics.json
//   $ dumbnet-trace run.fr --chrome trace.json     # open via chrome://tracing
//
// For static verification, the post-failure fabric state can be exported and
// replayed through dumbnet-check:
//
//   $ ./failure_recovery --dump-topo fabric.topo --dump-pathgraphs graphs.pg
//   $ dumbnet-check fabric.topo graphs.pg --verify-pathgraph
#include <cstdio>
#include <cstring>

#include "src/analysis/fabric_check.h"
#include "src/core/fabric.h"
#include "src/topo/serialize.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/topo/generators.h"
#include "src/transport/reliable_flow.h"

using namespace dumbnet;

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string topo_path;
  std::string pathgraphs_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dump-topo") == 0 && i + 1 < argc) {
      topo_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dump-pathgraphs") == 0 && i + 1 < argc) {
      pathgraphs_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace <path>] [--metrics-json <path>]\n"
                   "          [--dump-topo <path>] [--dump-pathgraphs <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  telemetry::FlightRecorder::InstallLogCapture();

  auto testbed = MakePaperTestbed();
  if (!testbed.ok()) {
    return 1;
  }
  std::vector<uint32_t> leaves = testbed.value().leaves;
  SimulatedFabric fabric(std::move(testbed.value().topo));
  fabric.BringUpAdopted(/*controller_host=*/25);
  const TimeNs epoch = fabric.Now();  // bring-up consumed some virtual time
  auto rel_ms = [&] { return ToMs(fabric.Now() - epoch); };

  // A 16 MiB transfer from a host on leaf 0 to a host on leaf 2.
  DumbNetChannel src_channel(&fabric.agent(0));
  DumbNetChannel dst_channel(&fabric.agent(12));
  ReliableFlowReceiver receiver(&dst_channel, /*flow_id=*/1);
  FlowConfig flow;
  flow.total_bytes = 16u << 20;
  ReliableFlowSender sender(&src_channel, 1, fabric.agent(12).mac(), flow);

  // Instrument the receiving host's view of the failure.
  TimeNs cut_at = 0;
  fabric.agent(0).SetLinkEventHook([&](const LinkEventPayload& ev, bool from_fabric) {
    std::printf("[%8.3f ms] host 0 heard link event (switch %lx port %u %s) via %s\n",
                rel_ms(), static_cast<unsigned long>(ev.switch_uid),
                ev.port, ev.up ? "up" : "DOWN",
                from_fabric ? "fabric broadcast" : "host flood");
  });
  fabric.agent(0).SetPatchHook([&](const TopologyPatchPayload& patch) {
    std::printf("[%8.3f ms] host 0 received topology patch #%lu (%zu removed)\n",
                rel_ms(), static_cast<unsigned long>(patch.patch_seq),
                patch.removed != nullptr ? patch.removed->size() : 0);
  });

  bool done = false;
  sender.Start([&] {
    done = true;
    std::printf("[%8.3f ms] transfer complete (%lu retransmissions, %lu timeouts)\n",
                rel_ms(),
                static_cast<unsigned long>(sender.progress().retransmissions),
                static_cast<unsigned long>(sender.progress().timeouts));
  });

  // Progress sampler: print throughput every 5 ms around the failure.
  uint64_t last_bytes = 0;
  std::function<void()> sample = [&] {
    uint64_t bytes = sender.progress().bytes_acked;
    double mbps = static_cast<double>(bytes - last_bytes) * 8.0 / 5e3;  // per 5 ms
    std::printf("[%8.3f ms] goodput %.0f Mbps (%.1f%% done)\n", rel_ms(),
                mbps, 100.0 * static_cast<double>(bytes) /
                          static_cast<double>(flow.total_bytes));
    last_bytes = bytes;
    if (!done) {
      fabric.sim().ScheduleAfter(Ms(5), sample);
    }
  };
  fabric.sim().ScheduleAfter(Ms(5), sample);

  // Cut a leaf0 uplink at t = 12 ms.
  fabric.sim().ScheduleAfter(Ms(12), [&] {
    cut_at = fabric.Now();
    std::printf("[%8.3f ms] *** cutting leaf0 <-> spine0 link ***\n", rel_ms());
    fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(leaves[0], 1), false);
  });

  fabric.Run();
  std::printf("path table stats on host 0: %lu rebinds, %lu backup promotions\n",
              static_cast<unsigned long>(fabric.agent(0).path_table().stats().rebinds),
              static_cast<unsigned long>(
                  fabric.agent(0).path_table().stats().backup_promotions));

  if (!trace_path.empty()) {
    if (telemetry::FlightRecorder::Global().SaveTo(trace_path)) {
      std::printf("wrote flight-recorder dump to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 2;
    }
  }
  if (!metrics_path.empty()) {
    if (telemetry::MetricsRegistry::Global().WriteJsonFile(metrics_path)) {
      std::printf("wrote telemetry metrics to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 2;
    }
  }
  // Export the post-failure fabric for offline verification: the topology as the
  // controller sees it, and freshly recomputed path graphs from host 0 to every
  // other host (computed against the same snapshot, so a clean dumbnet-check
  // --verify-pathgraph run is the expected outcome).
  if (!topo_path.empty()) {
    if (Status s = SaveTopology(fabric.topo(), topo_path); !s.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", topo_path.c_str(),
                   s.error().ToString().c_str());
      return 2;
    }
    std::printf("wrote topology snapshot to %s\n", topo_path.c_str());
  }
  if (!pathgraphs_path.empty()) {
    std::vector<uint64_t> dst_macs;
    for (uint32_t h = 1; h < fabric.host_count(); ++h) {
      dst_macs.push_back(fabric.agent(h).mac());
    }
    auto graphs = fabric.controller().PrecomputePathGraphs(fabric.agent(0).mac(),
                                                           dst_macs);
    if (!graphs.ok()) {
      std::fprintf(stderr, "path-graph precompute failed: %s\n",
                   graphs.error().ToString().c_str());
      return 2;
    }
    if (Status s = SaveWirePathGraphs(graphs.value(), pathgraphs_path); !s.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", pathgraphs_path.c_str(),
                   s.error().ToString().c_str());
      return 2;
    }
    std::printf("wrote %zu path graphs to %s\n", graphs.value().size(),
                pathgraphs_path.c_str());
  }
  return done ? 0 : 1;
}
