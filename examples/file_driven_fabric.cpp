// File-driven fabric demo: load a topology from a text file (or generate one if
// missing), bring up DumbNet on it, and have a "freshly plugged-in" host use the
// join prober to find its attach point and the controller with nothing but
// data-plane probes (paper Section 4.1: "other hosts just probe until they learn
// the location of the controller").
//
//   $ ./file_driven_fabric [topology.topo]
#include <cstdio>

#include "src/core/fabric.h"
#include "src/host/join_prober.h"
#include "src/topo/generators.h"
#include "src/topo/serialize.h"

using namespace dumbnet;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/dumbnet_demo.topo";

  // Load the fabric description, creating a default one on first run.
  auto loaded = LoadTopology(path);
  if (!loaded.ok()) {
    std::printf("no topology at %s (%s); generating a jellyfish\n", path.c_str(),
                loaded.error().ToString().c_str());
    JellyfishConfig config;
    config.num_switches = 12;
    config.switch_ports = 10;
    config.network_degree = 4;
    config.hosts_per_switch = 2;
    config.seed = 7;
    auto jf = MakeJellyfish(config);
    if (!jf.ok() || !SaveTopology(jf.value().topo, path).ok()) {
      return 1;
    }
    loaded = LoadTopology(path);
  }
  Topology topo = std::move(loaded.value());
  std::printf("loaded %s: %zu switches, %zu hosts, %zu links (connected: %s)\n",
              path.c_str(), topo.switch_count(), topo.host_count(), topo.link_count(),
              topo.IsConnected() ? "yes" : "no");

  SimulatedFabric fabric(std::move(topo));
  DiscoveryConfig discovery;
  discovery.max_ports = 10;
  if (!fabric.BringUp(/*controller_host=*/0, ControllerConfig(), discovery)) {
    std::fprintf(stderr, "bring-up failed\n");
    return 1;
  }
  std::printf("controller discovered the fabric with %lu probe messages\n",
              static_cast<unsigned long>(
                  fabric.controller().discovery().stats().probes_sent));

  // A host "rejoins" from scratch: no cached state, just probes.
  uint32_t newcomer = static_cast<uint32_t>(fabric.host_count() - 1);
  JoinProber prober(&fabric.agent(newcomer), JoinProberConfig{10, Ms(50)});
  prober.Start([&](const JoinResult& result) {
    std::printf("host %lx probed its way in: attach switch %lx port %u, controller "
                "%lx (%lu probes)\n",
                static_cast<unsigned long>(fabric.agent(newcomer).mac()),
                static_cast<unsigned long>(result.self.switch_uid), result.self.port,
                static_cast<unsigned long>(result.controller_mac),
                static_cast<unsigned long>(result.probes_sent));
  });
  fabric.Run();

  // And traffic flows.
  int received = 0;
  uint32_t dst = 1;
  fabric.agent(dst).SetDataHandler(
      [&](const Packet&, const DataPayload&) { ++received; });
  (void)fabric.agent(newcomer).Send(fabric.agent(dst).mac(), 1, DataPayload{});
  fabric.Run();
  std::printf("newcomer -> host %u: %d packet(s) delivered\n", dst, received);
  return received == 1 ? 0 : 1;
}
