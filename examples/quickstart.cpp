// Quickstart: bring up a complete DumbNet fabric — dumb switches, host agents and a
// controller — on the paper's 7-switch/27-server testbed topology, run topology
// discovery with real probe messages, and send source-routed traffic between hosts.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/fabric.h"
#include "src/routing/tags.h"
#include "src/topo/generators.h"
#include "src/util/logging.h"

using namespace dumbnet;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // 1. The physical network: 2 spines, 5 leaves, 27 servers (paper Section 7).
  auto testbed = MakePaperTestbed();
  if (!testbed.ok()) {
    std::fprintf(stderr, "topology: %s\n", testbed.error().ToString().c_str());
    return 1;
  }
  SimulatedFabric fabric(std::move(testbed.value().topo));
  std::printf("fabric: %zu switches, %zu hosts, %zu links\n", fabric.switch_count(),
              fabric.host_count(), fabric.topo().link_count());

  // 2. Bring-up: host 25 becomes the controller, BFS-probes the whole fabric with
  //    source-routed probe messages, and bootstraps every host.
  DiscoveryConfig discovery;
  discovery.max_ports = 16;  // ports to probe per switch
  if (!fabric.BringUp(/*controller_host=*/25, ControllerConfig(), discovery)) {
    std::fprintf(stderr, "bring-up failed\n");
    return 1;
  }
  const DiscoveryStats& ds = fabric.controller().discovery().stats();
  std::printf("discovery: %zu switches, %zu hosts found with %lu probe messages in "
              "%.3f s (simulated)\n",
              fabric.controller().db().switch_count(),
              fabric.controller().db().host_count(),
              static_cast<unsigned long>(ds.probes_sent),
              ToSec(ds.finished_at - ds.started_at));

  // 3. Send data: host 0 (leaf 0) -> host 12 (leaf 2). The first packet triggers a
  //    path query; the controller answers with a path graph; the host caches k
  //    shortest paths and tags the packet with its route.
  HostAgent& src = fabric.agent(0);
  HostAgent& dst = fabric.agent(12);
  int received = 0;
  dst.SetDataHandler([&](const Packet& pkt, const DataPayload& data) {
    ++received;
    std::printf("  host %lx received flow %lu seq %lu (%ld bytes on the wire)\n",
                static_cast<unsigned long>(pkt.eth.dst_mac),
                static_cast<unsigned long>(data.flow_id),
                static_cast<unsigned long>(data.seq), pkt.WireSize());
  });
  for (uint64_t seq = 0; seq < 3; ++seq) {
    DataPayload payload;
    payload.flow_id = 7;
    payload.seq = seq;
    payload.bytes = 1460;
    (void)src.Send(dst.mac(), payload.flow_id, payload);
  }
  fabric.Run();

  // 4. Inspect the cache: the tag sequences that rode in the packet headers.
  const PathTableEntry* entry = src.path_table().Find(dst.mac());
  std::printf("delivered %d packets; cached %zu paths to the destination:\n", received,
              entry->paths.size());
  for (const CachedRoute& route : entry->paths) {
    std::printf("  tags %s (%zu switch hops)\n", TagsToString(route.tags).c_str(),
                route.uid_path.size());
  }
  std::printf("cold-path queries answered by controller: %lu\n",
              static_cast<unsigned long>(fabric.controller().stats().queries_served));
  return 0;
}
