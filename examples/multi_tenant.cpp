// Network virtualization + layer-3 routing demo (paper Sections 6.1 and 6.3):
// two tenants get disjoint slices of a fat-tree; the path verifier stops tenant A
// from routing through tenant B's pod, and a software L3 router (one host agent
// per subnet) relays traffic between two independent DumbNet fabrics.
//
//   $ ./multi_tenant
#include <cstdio>

#include "src/core/fabric.h"
#include "src/ext/l3_router.h"
#include "src/ext/virtualization.h"
#include "src/topo/generators.h"

using namespace dumbnet;

int main() {
  // --- Part 1: tenant slices on one fat-tree ------------------------------------
  FatTreeConfig config;
  config.k = 4;
  auto ft = MakeFatTree(config);
  if (!ft.ok()) {
    return 1;
  }
  FatTreeTopo shape = std::move(ft.value());
  SimulatedFabric fabric(std::move(shape.topo));
  fabric.BringUpAdopted(0);
  TopoDb& db = fabric.controller().db();

  // Tenant 1 owns pods 0-1, tenant 2 owns pods 2-3; cores are shared.
  auto uid = [&](uint32_t sw) { return fabric.topo().switch_at(sw).uid; };
  std::unordered_set<uint64_t> t1_switches;
  std::unordered_set<uint64_t> t2_switches;
  for (uint32_t c : shape.core) {
    t1_switches.insert(uid(c));
    t2_switches.insert(uid(c));
  }
  for (size_t i = 0; i < shape.aggregation.size(); ++i) {
    (i < shape.aggregation.size() / 2 ? t1_switches : t2_switches)
        .insert(uid(shape.aggregation[i]));
  }
  for (size_t i = 0; i < shape.edge.size(); ++i) {
    (i < shape.edge.size() / 2 ? t1_switches : t2_switches).insert(uid(shape.edge[i]));
  }
  std::unordered_set<uint64_t> t1_hosts;
  std::unordered_set<uint64_t> t2_hosts;
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    (h < fabric.host_count() / 2 ? t1_hosts : t2_hosts).insert(fabric.agent(h).mac());
  }

  VirtualizationService virtualization;
  virtualization.RegisterTenant(1, VirtualNetwork(t1_switches, t1_hosts));
  virtualization.RegisterTenant(2, VirtualNetwork(t2_switches, t2_hosts));

  auto tenant1 = virtualization.Tenant(1).value();
  TopoDb view = tenant1->FilterView(db);
  std::printf("tenant 1 sees %zu of %zu switches and %zu of %zu hosts\n",
              view.switch_count(), db.switch_count(), view.host_count(), db.host_count());

  // Tenant 1 tries to route through tenant 2's pod: the verifier says no.
  uint64_t inside = uid(shape.edge[0]);
  uint64_t agg1 = uid(shape.aggregation[0]);
  uint64_t foreign = uid(shape.aggregation[3]);  // pod 1... tenant 1's own pod
  std::vector<uint64_t> legal{inside, agg1};
  std::vector<uint64_t> smuggled{inside, agg1, uid(shape.core[0]),
                                 uid(shape.aggregation[5])};  // pod 2: tenant 2's
  (void)foreign;
  std::printf("tenant 1 path inside slice: %s\n",
              virtualization.VerifyTenantPath(1, db, legal).ToString().c_str());
  std::printf("tenant 1 path into tenant 2's pod: %s\n",
              virtualization.VerifyTenantPath(1, db, smuggled).ToString().c_str());

  // --- Part 2: layer-3 routing between two DumbNet subnets -----------------------
  LeafSpineConfig subnet_a;
  subnet_a.num_spine = 1;
  subnet_a.num_leaf = 2;
  subnet_a.hosts_per_leaf = 3;
  subnet_a.switch_ports = 16;
  LeafSpineConfig subnet_b = subnet_a;
  subnet_b.id_space = 1;  // disjoint MAC/UID space

  auto a = MakeLeafSpine(subnet_a);
  auto b = MakeLeafSpine(subnet_b);
  if (!a.ok() || !b.ok()) {
    return 1;
  }
  SimulatedFabric fab_a(std::move(a.value().topo));
  SimulatedFabric fab_b(std::move(b.value().topo));
  fab_a.BringUpAdopted(0);
  fab_b.BringUpAdopted(0);

  Layer3Router router;  // "a number of host agents running on the same node"
  router.AttachSubnet(1, &fab_a.agent(5));
  router.AttachSubnet(2, &fab_b.agent(5));
  for (uint32_t h = 0; h < fab_b.host_count(); ++h) {
    router.AddHostRoute(fab_b.agent(h).mac(), 2);
  }

  int relayed = 0;
  fab_b.agent(1).SetDataHandler([&](const Packet&, const DataPayload&) { ++relayed; });
  DataPayload cross;
  cross.flow_id = 9;
  cross.inner_dst_mac = fab_b.agent(1).mac();
  (void)fab_a.agent(0).Send(fab_a.agent(5).mac(), 9, cross);
  fab_a.Run();
  fab_b.Run();
  std::printf("cross-subnet packet relayed by L3 router: %s (%lu forwarded)\n",
              relayed == 1 ? "yes" : "NO",
              static_cast<unsigned long>(router.stats().forwarded));
  return relayed == 1 ? 0 : 1;
}
