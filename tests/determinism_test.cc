// Golden-trace determinism: two runs of the same seeded workload must execute
// the exact same events at the exact same virtual times, in the same order, and
// converge on the same topology database. This is what makes every simulated
// result in this repo reproducible — any divergence (unordered-container
// iteration, uninitialised reads, time-dependent randomness) shows up here as a
// trace mismatch long before it corrupts a figure.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/core/fabric.h"
#include "src/topo/generators.h"
#include "src/topo/serialize.h"

namespace dumbnet {
namespace {

using Trace = std::vector<std::pair<TimeNs, uint64_t>>;

struct RunResult {
  Trace trace;
  std::string db_topology;  // serialized controller mirror after the run
  TimeNs final_time = 0;
};

// One full life-cycle: probing discovery + bootstrap, then a link failure, a
// burst of host traffic (exercising query/notify/retry paths), and the link's
// restoration. Everything runs off `seed`.
RunResult RunLifecycle(uint64_t seed, bool with_failure) {
  auto testbed = MakePaperTestbed();
  EXPECT_TRUE(testbed.ok());
  uint32_t spine0 = testbed.value().spines[0];
  SimulatedFabric fabric(std::move(testbed.value().topo));

  RunResult result;
  fabric.sim().SetTraceHook(
      [&](TimeNs at, uint64_t seq) { result.trace.emplace_back(at, seq); });

  ControllerConfig config;
  config.rng_seed = seed;
  DiscoveryConfig discovery;
  discovery.max_ports = 16;
  EXPECT_TRUE(fabric.BringUp(25, config, discovery));

  if (with_failure) {
    // Fail a spine uplink, push traffic through the recovery machinery, restore.
    LinkIndex li = fabric.topo().LinkAtPort(spine0, 1);
    EXPECT_NE(li, kInvalidLink);
    fabric.topo().SetLinkUp(li, false);
    for (uint32_t h = 0; h < 8; ++h) {
      EXPECT_TRUE(fabric.agent(h)
                      .Send(fabric.agent(h + 10).mac(), h, DataPayload{})
                      .ok());
    }
    fabric.sim().Run();
    fabric.topo().SetLinkUp(li, true);
    fabric.sim().Run();
  }

  result.db_topology = SerializeTopology(fabric.controller().db().mirror());
  result.final_time = fabric.sim().Now();
  return result;
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.db_topology, b.db_topology);
  ASSERT_EQ(a.trace.size(), b.trace.size()) << "event counts diverged";
  for (size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i], b.trace[i]) << "trace diverged at event " << i;
  }
}

TEST(DeterminismTest, DiscoveryBringUpTraceIsReproducible) {
  RunResult first = RunLifecycle(7, /*with_failure=*/false);
  RunResult second = RunLifecycle(7, /*with_failure=*/false);
  ASSERT_GT(first.trace.size(), 1000u) << "bring-up ran suspiciously few events";
  ExpectIdentical(first, second);
}

TEST(DeterminismTest, FailureRecoveryTraceIsReproducible) {
  RunResult first = RunLifecycle(7, /*with_failure=*/true);
  RunResult second = RunLifecycle(7, /*with_failure=*/true);
  ASSERT_GT(first.trace.size(), 1000u);
  ExpectIdentical(first, second);
}

// Failure-recovery stress targeting the paths where hash-map iteration order
// could leak into the event stream: the ApplyBootstrap fan-out over pre-bootstrap
// queued destinations (HostAgent::pending_), and the PathTable::InvalidateEdge
// sweep (entry iteration decides starved-destination re-query order) driven
// twice by back-to-back link failures.
RunResult RunQueuedSendsAndDoubleFailure(uint64_t seed) {
  auto testbed = MakePaperTestbed();
  EXPECT_TRUE(testbed.ok());
  uint32_t spine0 = testbed.value().spines[0];
  uint32_t spine1 = testbed.value().spines[1];
  SimulatedFabric fabric(std::move(testbed.value().topo));

  RunResult result;
  fabric.sim().SetTraceHook(
      [&](TimeNs at, uint64_t seq) { result.trace.emplace_back(at, seq); });

  // Queue sends to several destinations BEFORE any bring-up: they sit in the
  // agent's pending map until the bootstrap lands, so the bootstrap's
  // request fan-out order is on the trace.
  for (uint32_t h : {17u, 4u, 22u, 9u, 13u}) {
    EXPECT_TRUE(fabric.agent(0).Send(fabric.agent(h).mac(), h, DataPayload{}).ok());
    EXPECT_TRUE(fabric.agent(3).Send(fabric.agent(h).mac(), h, DataPayload{}).ok());
  }

  ControllerConfig config;
  config.rng_seed = seed;
  DiscoveryConfig discovery;
  discovery.max_ports = 16;
  EXPECT_TRUE(fabric.BringUp(25, config, discovery));

  // Warm many path-table entries so the invalidation sweeps have real fan-out.
  for (uint32_t h = 0; h < 10; ++h) {
    EXPECT_TRUE(
        fabric.agent(h).Send(fabric.agent(h + 12).mac(), 100 + h, DataPayload{}).ok());
  }
  fabric.sim().Run();

  // Two failures back to back: every cached route crossing either spine edge is
  // swept out, starving some destinations into synchronous re-queries.
  LinkIndex l0 = fabric.topo().LinkAtPort(spine0, 1);
  LinkIndex l1 = fabric.topo().LinkAtPort(spine1, 1);
  EXPECT_NE(l0, kInvalidLink);
  EXPECT_NE(l1, kInvalidLink);
  fabric.topo().SetLinkUp(l0, false);
  fabric.topo().SetLinkUp(l1, false);
  for (uint32_t h = 0; h < 10; ++h) {
    EXPECT_TRUE(
        fabric.agent(h).Send(fabric.agent(h + 12).mac(), 200 + h, DataPayload{}).ok());
  }
  fabric.sim().Run();
  fabric.topo().SetLinkUp(l0, true);
  fabric.topo().SetLinkUp(l1, true);
  fabric.sim().Run();

  result.db_topology = SerializeTopology(fabric.controller().db().mirror());
  result.final_time = fabric.sim().Now();
  return result;
}

TEST(DeterminismTest, QueuedSendsAndDoubleFailureTraceIsReproducible) {
  RunResult first = RunQueuedSendsAndDoubleFailure(7);
  RunResult second = RunQueuedSendsAndDoubleFailure(7);
  ASSERT_GT(first.trace.size(), 1000u);
  ExpectIdentical(first, second);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the trace actually captures seed-dependent behaviour:
  // path randomization must show up as different event interleavings.
  RunResult a = RunLifecycle(7, /*with_failure=*/true);
  RunResult b = RunLifecycle(8, /*with_failure=*/true);
  EXPECT_NE(a.trace, b.trace);
}

}  // namespace
}  // namespace dumbnet
