// Golden-trace determinism: two runs of the same seeded workload must execute
// the exact same events at the exact same virtual times, in the same order, and
// converge on the same topology database. This is what makes every simulated
// result in this repo reproducible — any divergence (unordered-container
// iteration, uninitialised reads, time-dependent randomness) shows up here as a
// trace mismatch long before it corrupts a figure.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/core/fabric.h"
#include "src/routing/graph.h"
#include "src/routing/path_graph.h"
#include "src/sim/footprint.h"
#include "src/topo/generators.h"
#include "src/topo/serialize.h"
#include "src/util/rng.h"

namespace dumbnet {
namespace {

using Trace = std::vector<std::pair<TimeNs, uint64_t>>;

struct RunResult {
  Trace trace;
  std::string db_topology;  // serialized controller mirror after the run
  TimeNs final_time = 0;
};

// One full life-cycle: probing discovery + bootstrap, then a link failure, a
// burst of host traffic (exercising query/notify/retry paths), and the link's
// restoration. Everything runs off `seed`.
RunResult RunLifecycle(uint64_t seed, bool with_failure) {
  auto testbed = MakePaperTestbed();
  EXPECT_TRUE(testbed.ok());
  uint32_t spine0 = testbed.value().spines[0];
  SimulatedFabric fabric(std::move(testbed.value().topo));

  RunResult result;
  fabric.sim().SetTraceHook(
      [&](TimeNs at, uint64_t seq) { result.trace.emplace_back(at, seq); });

  ControllerConfig config;
  config.rng_seed = seed;
  DiscoveryConfig discovery;
  discovery.max_ports = 16;
  EXPECT_TRUE(fabric.BringUp(25, config, discovery));

  if (with_failure) {
    // Fail a spine uplink, push traffic through the recovery machinery, restore.
    LinkIndex li = fabric.topo().LinkAtPort(spine0, 1);
    EXPECT_NE(li, kInvalidLink);
    fabric.topo().SetLinkUp(li, false);
    for (uint32_t h = 0; h < 8; ++h) {
      EXPECT_TRUE(fabric.agent(h)
                      .Send(fabric.agent(h + 10).mac(), h, DataPayload{})
                      .ok());
    }
    fabric.Run();
    fabric.topo().SetLinkUp(li, true);
    fabric.Run();
  }

  result.db_topology = SerializeTopology(fabric.controller().db().mirror());
  result.final_time = fabric.Now();
  return result;
}

void ExpectIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.db_topology, b.db_topology);
  ASSERT_EQ(a.trace.size(), b.trace.size()) << "event counts diverged";
  for (size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i], b.trace[i]) << "trace diverged at event " << i;
  }
}

TEST(DeterminismTest, DiscoveryBringUpTraceIsReproducible) {
  RunResult first = RunLifecycle(7, /*with_failure=*/false);
  RunResult second = RunLifecycle(7, /*with_failure=*/false);
  ASSERT_GT(first.trace.size(), 1000u) << "bring-up ran suspiciously few events";
  ExpectIdentical(first, second);
}

TEST(DeterminismTest, FailureRecoveryTraceIsReproducible) {
  RunResult first = RunLifecycle(7, /*with_failure=*/true);
  RunResult second = RunLifecycle(7, /*with_failure=*/true);
  ASSERT_GT(first.trace.size(), 1000u);
  ExpectIdentical(first, second);
}

// Failure-recovery stress targeting the paths where hash-map iteration order
// could leak into the event stream: the ApplyBootstrap fan-out over pre-bootstrap
// queued destinations (HostAgent::pending_), and the PathTable::InvalidateEdge
// sweep (entry iteration decides starved-destination re-query order) driven
// twice by back-to-back link failures.
RunResult RunQueuedSendsAndDoubleFailure(uint64_t seed) {
  auto testbed = MakePaperTestbed();
  EXPECT_TRUE(testbed.ok());
  uint32_t spine0 = testbed.value().spines[0];
  uint32_t spine1 = testbed.value().spines[1];
  SimulatedFabric fabric(std::move(testbed.value().topo));

  RunResult result;
  fabric.sim().SetTraceHook(
      [&](TimeNs at, uint64_t seq) { result.trace.emplace_back(at, seq); });

  // Queue sends to several destinations BEFORE any bring-up: they sit in the
  // agent's pending map until the bootstrap lands, so the bootstrap's
  // request fan-out order is on the trace.
  for (uint32_t h : {17u, 4u, 22u, 9u, 13u}) {
    EXPECT_TRUE(fabric.agent(0).Send(fabric.agent(h).mac(), h, DataPayload{}).ok());
    EXPECT_TRUE(fabric.agent(3).Send(fabric.agent(h).mac(), h, DataPayload{}).ok());
  }

  ControllerConfig config;
  config.rng_seed = seed;
  DiscoveryConfig discovery;
  discovery.max_ports = 16;
  EXPECT_TRUE(fabric.BringUp(25, config, discovery));

  // Warm many path-table entries so the invalidation sweeps have real fan-out.
  for (uint32_t h = 0; h < 10; ++h) {
    EXPECT_TRUE(
        fabric.agent(h).Send(fabric.agent(h + 12).mac(), 100 + h, DataPayload{}).ok());
  }
  fabric.Run();

  // Two failures back to back: every cached route crossing either spine edge is
  // swept out, starving some destinations into synchronous re-queries.
  LinkIndex l0 = fabric.topo().LinkAtPort(spine0, 1);
  LinkIndex l1 = fabric.topo().LinkAtPort(spine1, 1);
  EXPECT_NE(l0, kInvalidLink);
  EXPECT_NE(l1, kInvalidLink);
  fabric.topo().SetLinkUp(l0, false);
  fabric.topo().SetLinkUp(l1, false);
  for (uint32_t h = 0; h < 10; ++h) {
    EXPECT_TRUE(
        fabric.agent(h).Send(fabric.agent(h + 12).mac(), 200 + h, DataPayload{}).ok());
  }
  fabric.Run();
  fabric.topo().SetLinkUp(l0, true);
  fabric.topo().SetLinkUp(l1, true);
  fabric.Run();

  result.db_topology = SerializeTopology(fabric.controller().db().mirror());
  result.final_time = fabric.Now();
  return result;
}

TEST(DeterminismTest, QueuedSendsAndDoubleFailureTraceIsReproducible) {
  RunResult first = RunQueuedSendsAndDoubleFailure(7);
  RunResult second = RunQueuedSendsAndDoubleFailure(7);
  ASSERT_GT(first.trace.size(), 1000u);
  ExpectIdentical(first, second);
}

// Gossip under concurrent link flaps: both spine uplinks flap down, up, and
// down again at identical virtual instants, so every flap lands as one
// same-timestamp batch of switch alarms whose gossip floods race across the
// fabric. The host-side observation merge is a last-writer-wins lattice keyed
// by origin time, so the converged host mirrors — not just the controller db —
// must be byte-identical across runs. This is the golden trace guarding the
// races the footprint detector is designed to catch.
RunResult RunGossipUnderConcurrentFlaps(uint64_t seed) {
  auto testbed = MakePaperTestbed();
  EXPECT_TRUE(testbed.ok());
  uint32_t spine0 = testbed.value().spines[0];
  uint32_t spine1 = testbed.value().spines[1];
  SimulatedFabric fabric(std::move(testbed.value().topo));

  RunResult result;
  fabric.sim().SetTraceHook(
      [&](TimeNs at, uint64_t seq) { result.trace.emplace_back(at, seq); });

  ControllerConfig config;
  config.rng_seed = seed;
  DiscoveryConfig discovery;
  discovery.max_ports = 16;
  EXPECT_TRUE(fabric.BringUp(25, config, discovery));

  for (uint32_t h = 0; h < 8; ++h) {
    EXPECT_TRUE(
        fabric.agent(h).Send(fabric.agent(h + 12).mac(), 300 + h, DataPayload{}).ok());
  }
  fabric.Run();

  LinkIndex l0 = fabric.topo().LinkAtPort(spine0, 1);
  LinkIndex l1 = fabric.topo().LinkAtPort(spine1, 1);
  EXPECT_NE(l0, kInvalidLink);
  EXPECT_NE(l1, kInvalidLink);
  // Three same-instant flap waves: down+down, up+up, down+down — each wave's
  // alarms, gossip floods, and controller patches are causally concurrent.
  fabric.topo().SetLinkUp(l0, false);
  fabric.topo().SetLinkUp(l1, false);
  for (uint32_t h = 0; h < 8; ++h) {
    EXPECT_TRUE(
        fabric.agent(h).Send(fabric.agent(h + 12).mac(), 400 + h, DataPayload{}).ok());
  }
  fabric.Run();
  fabric.topo().SetLinkUp(l0, true);
  fabric.topo().SetLinkUp(l1, true);
  fabric.Run();
  fabric.topo().SetLinkUp(l0, false);
  fabric.topo().SetLinkUp(l1, false);
  fabric.Run();
  fabric.topo().SetLinkUp(l0, true);
  fabric.topo().SetLinkUp(l1, true);
  fabric.Run();

  // Fold the converged host mirrors into the compared state, not only the
  // controller's: gossip races corrupt host caches first.
  result.db_topology = SerializeTopology(fabric.controller().db().mirror());
  for (uint32_t h = 0; h < static_cast<uint32_t>(fabric.host_count()); ++h) {
    result.db_topology += SerializeTopology(fabric.agent(h).topo_cache().db().mirror());
  }
  result.final_time = fabric.Now();
  return result;
}

TEST(DeterminismTest, GossipUnderConcurrentFlapsTraceIsReproducible) {
  RunResult first = RunGossipUnderConcurrentFlaps(7);
  RunResult second = RunGossipUnderConcurrentFlaps(7);
  ASSERT_GT(first.trace.size(), 1000u);
  ExpectIdentical(first, second);
}

// The controller seeds a fresh tie-break stream per query (seed ^ query key,
// ServePathRequest) instead of drawing from one shared stream, so that the
// order concurrent queries drain off the CPU queue cannot leak into route
// content (the shared-rng service-order race of DESIGN.md §11). Two properties
// replace the old "different seeds must diverge the whole trace" check, which
// held only *because* of that race:
//
//  1. Liveness — the seed knob still works: over a degraded fabric, different
//     seeds pick different equal-cost primaries for some queries.
//  2. Convergence — tie-break labels never reach persistent state: a path
//     graph enumerates the complete ε-good subgraph whichever member is
//     labelled primary, and hosts rebuild routes from their merged caches, so
//     the converged topology databases are identical across seeds.
TEST(DeterminismTest, SeedShapesTieBreaksButConvergedStateIsSeedInvariant) {
  auto testbed = MakePaperTestbed();
  ASSERT_TRUE(testbed.ok());
  uint32_t spine0 = testbed.value().spines[0];
  Topology topo = std::move(testbed.value().topo);
  LinkIndex li = topo.LinkAtPort(spine0, 1);
  ASSERT_NE(li, kInvalidLink);
  topo.SetLinkUp(li, false);
  SwitchGraph graph(topo);
  PathGraphParams params;
  PathGraphScratch scratch;
  int primary_diffs = 0;
  for (uint32_t s = 0; s < topo.switch_count(); ++s) {
    for (uint32_t d = 0; d < topo.switch_count(); ++d) {
      if (s == d) {
        continue;
      }
      // The same per-query derivation the controller uses, under two seeds.
      const uint64_t key = footprint::FpKey(1000 + s, 2000 + d, 0);
      Rng rng_a(7 ^ key);
      Rng rng_b(8 ^ key);
      auto a = BuildPathGraph(topo, graph, s, d, params, &rng_a, scratch);
      auto b = BuildPathGraph(topo, graph, s, d, params, &rng_b, scratch);
      ASSERT_EQ(a.ok(), b.ok());
      if (!a.ok()) {
        continue;
      }
      primary_diffs += a.value().primary != b.value().primary ? 1 : 0;
      // Same complete subgraph regardless of which member became primary.
      auto links_a = a.value().links;
      auto links_b = b.value().links;
      std::sort(links_a.begin(), links_a.end());
      std::sort(links_b.begin(), links_b.end());
      EXPECT_EQ(links_a, links_b) << "s=" << s << " d=" << d;
    }
  }
  EXPECT_GT(primary_diffs, 0) << "seed no longer influences equal-cost tie-breaks";

  RunResult a = RunLifecycle(7, /*with_failure=*/true);
  RunResult b = RunLifecycle(8, /*with_failure=*/true);
  EXPECT_EQ(a.db_topology, b.db_topology)
      << "tie-break seed leaked into converged topology state";
}

}  // namespace
}  // namespace dumbnet
