// Tests for the software extensions (paper Section 6): flowlet TE, the layer-3
// router, and network virtualization.
#include <gtest/gtest.h>

#include "src/ext/flowlet.h"
#include "src/ext/l3_router.h"
#include "src/ext/virtualization.h"
#include "src/topo/generators.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

TEST(FlowletTest, GapStartsNewFlowlet) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);

  FlowletConfig config;
  config.gap = Ms(1);
  FlowletRouter te(&fabric.agent(0), config);
  uint64_t dst = fabric.agent(12).mac();

  // Back-to-back packets: one flowlet.
  ASSERT_TRUE(te.Send(dst, 7, DataPayload{}).ok());
  ASSERT_TRUE(te.Send(dst, 7, DataPayload{}).ok());
  fabric.Run();
  EXPECT_EQ(te.FlowletIdOf(7), 0u);

  // Wait past the gap: next packet is a new flowlet.
  fabric.RunUntil(fabric.Now() + Ms(5));
  ASSERT_TRUE(te.Send(dst, 7, DataPayload{}).ok());
  fabric.Run();
  EXPECT_EQ(te.FlowletIdOf(7), 1u);
  EXPECT_EQ(te.stats().flowlets_started, 2u);
}

TEST(FlowletTest, FlowletsSpreadOverEqualCostPaths) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);

  FlowletConfig config;
  config.gap = Us(100);
  FlowletRouter te(&fabric.agent(0), config);
  uint64_t dst_mac = fabric.agent(12).mac();

  // Warm the cache.
  ASSERT_TRUE(te.Send(dst_mac, 5, DataPayload{}).ok());
  fabric.Run();

  // Many flowlets of the same flow: record which first-hop tag each uses.
  std::set<uint8_t> first_tags;
  for (int i = 0; i < 32; ++i) {
    fabric.RunUntil(fabric.Now() + Ms(1));  // exceed the gap
    ASSERT_TRUE(te.Send(dst_mac, 5, DataPayload{}).ok());
    fabric.Run();
    const PathTableEntry* entry = fabric.agent(0).path_table().Find(dst_mac);
    ASSERT_NE(entry, nullptr);
    auto binding = entry->flow_binding.find(5);
    ASSERT_NE(binding, entry->flow_binding.end());
    first_tags.insert(entry->paths[binding->second].tags[0]);
  }
  // Two spines: both uplink tags must have been used.
  EXPECT_EQ(first_tags.size(), 2u);
}

TEST(L3RouterTest, ForwardsAcrossSubnets) {
  // Two independent DumbNet subnets, one router host in each (the same logical
  // router node owns both agents).
  LeafSpineConfig cfg_a{1, 2, 3, 16, 10.0, 10.0, /*id_space=*/0};
  LeafSpineConfig cfg_b{1, 2, 3, 16, 10.0, 10.0, /*id_space=*/1};
  auto net_a = MakeLeafSpine(cfg_a);
  auto net_b = MakeLeafSpine(cfg_b);
  ASSERT_TRUE(net_a.ok());
  ASSERT_TRUE(net_b.ok());
  TestFabric fab_a(std::move(net_a.value().topo));
  TestFabric fab_b(std::move(net_b.value().topo));
  fab_a.BringUpAdopted(0);
  fab_b.BringUpAdopted(0);

  // Router = host 5 in subnet A + host 5 in subnet B.
  Layer3Router router;
  router.AttachSubnet(1, &fab_a.agent(5));
  router.AttachSubnet(2, &fab_b.agent(5));
  for (uint32_t h = 0; h < fab_b.host_count(); ++h) {
    router.AddHostRoute(fab_b.agent(h).mac(), 2);
  }
  for (uint32_t h = 0; h < fab_a.host_count(); ++h) {
    router.AddHostRoute(fab_a.agent(h).mac(), 1);
  }

  int received = 0;
  fab_b.agent(2).SetDataHandler([&](const Packet&, const DataPayload& d) {
    EXPECT_EQ(d.flow_id, 77u);
    ++received;
  });

  // Host 1 in subnet A sends to host 2 in subnet B via the router.
  DataPayload payload;
  payload.flow_id = 77;
  payload.inner_dst_mac = fab_b.agent(2).mac();
  ASSERT_TRUE(fab_a.agent(1).Send(fab_a.agent(5).mac(), 77, payload).ok());
  // Two decoupled simulators: run A (delivers to router), then B (relays).
  fab_a.Run();
  fab_b.Run();

  EXPECT_EQ(received, 1);
  EXPECT_EQ(router.stats().forwarded, 1u);
}

TEST(L3RouterTest, NoRouteCounted) {
  auto net_a = MakeLeafSpine(LeafSpineConfig{1, 1, 3, 16, 10.0, 10.0});
  ASSERT_TRUE(net_a.ok());
  TestFabric fab_a(std::move(net_a.value().topo));
  fab_a.BringUpAdopted(0);
  Layer3Router router;
  router.AttachSubnet(1, &fab_a.agent(2));

  DataPayload payload;
  payload.inner_dst_mac = 0xDEAD;
  ASSERT_TRUE(fab_a.agent(1).Send(fab_a.agent(2).mac(), 1, payload).ok());
  fab_a.Run();
  EXPECT_EQ(router.stats().no_route, 1u);
}

// --- Virtualization -------------------------------------------------------------

class VirtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Diamond of switches 100..103 with two hosts.
    WirePathGraph g;
    g.src_uid = 100;
    g.dst_uid = 103;
    g.primary = {100, 101, 103};
    g.backup = {100, 102, 103};
    g.links = {WireLink{100, 1, 101, 1}, WireLink{101, 2, 103, 1},
               WireLink{100, 2, 102, 1}, WireLink{102, 2, 103, 2}};
    ASSERT_TRUE(db_.MergePathGraph(g).ok());
    db_.UpsertHost(HostLocation{50, 100, 7});
    db_.UpsertHost(HostLocation{51, 103, 7});
    db_.UpsertHost(HostLocation{52, 102, 7});
    graph_ = g;
  }

  TopoDb db_;
  WirePathGraph graph_;
};

TEST_F(VirtTest, FilterViewHidesForbiddenSwitches) {
  VirtualNetwork tenant({100, 101, 103}, {50, 51});
  TopoDb view = tenant.FilterView(db_);
  EXPECT_TRUE(view.KnowsSwitch(100));
  EXPECT_TRUE(view.KnowsSwitch(101));
  EXPECT_FALSE(view.KnowsSwitch(102));
  EXPECT_TRUE(view.LocateHost(50).ok());
  EXPECT_FALSE(view.LocateHost(52).ok());  // host on a hidden switch
  // Links touching 102 are gone.
  EXPECT_FALSE(view.LinkAt(100, 2).ok());
  EXPECT_TRUE(view.LinkAt(100, 1).ok());
}

TEST_F(VirtTest, FilterPathGraphDropsForbiddenParts) {
  VirtualNetwork tenant({100, 101, 103}, {50, 51});
  auto filtered = tenant.FilterPathGraph(graph_);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered.value().primary, (std::vector<uint64_t>{100, 101, 103}));
  EXPECT_TRUE(filtered.value().backup.empty());  // backup used 102
  EXPECT_EQ(filtered.value().links.size(), 2u);
}

TEST_F(VirtTest, TenantPathVerification) {
  VirtualizationService service;
  service.RegisterTenant(1, VirtualNetwork({100, 101, 103}, {50, 51}));

  EXPECT_TRUE(service.VerifyTenantPath(1, db_, {100, 101, 103}).ok());
  // Escaping the slice through 102 is denied even though the path is physically
  // valid.
  EXPECT_EQ(service.VerifyTenantPath(1, db_, {100, 102, 103}).error().code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(service.VerifyTenantPath(9, db_, {100, 101, 103}).error().code(),
            ErrorCode::kNotFound);
}

TEST_F(VirtTest, EndpointOutsideSliceRejected) {
  VirtualNetwork tenant({101, 103}, {51});
  EXPECT_EQ(tenant.FilterPathGraph(graph_).error().code(), ErrorCode::kPermissionDenied);
}

}  // namespace
}  // namespace dumbnet
