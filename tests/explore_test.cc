// DPOR schedule explorer: a deliberately injected ordering race must be
// detected (footprint conflict), confirmed (divergent terminal hash under a
// permuted schedule), and minimized to the smallest schedule that reproduces
// it; the schedule file format must round-trip so counterexamples replay.
#include "src/analysis/explore.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/sim/footprint.h"
#include "src/sim/simulator.h"

namespace dumbnet {
namespace {

using explore::Conflict;
using explore::Explore;
using explore::ExploreConfig;
using explore::ExploreReport;
using explore::HazardCollector;
using explore::MakePermuter;
using explore::ParseSchedule;
using explore::RunOutcome;
using explore::Schedule;
using explore::SerializeSchedule;

// Toy scenario with two same-timestamp batches:
//   t=10: two DN_FP_COMMUTES max-merge writes (benign, must not be a hazard)
//   t=20: x = x*3 racing x = x+7 (declared writes; order changes the result)
// Terminal hash encodes both cells.
RunOutcome ToyScenario(const Schedule& schedule) {
  Simulator sim;
  sim.SetBatchPermuter(MakePermuter(schedule));
  HazardCollector collector(&sim);
  footprint::SetEnabled(true);
  uint64_t x = 1;
  uint64_t mx = 0;
  sim.ScheduleAt(10, [&mx] {
    DN_FP_SCOPE("toy.merge_a", 1);
    DN_FP_COMMUTES(kScenario, 2, "max-merge");
    mx = std::max<uint64_t>(mx, 5);
  });
  sim.ScheduleAt(10, [&mx] {
    DN_FP_SCOPE("toy.merge_b", 2);
    DN_FP_COMMUTES(kScenario, 2, "max-merge");
    mx = std::max<uint64_t>(mx, 9);
  });
  sim.ScheduleAt(20, [&x] {
    DN_FP_SCOPE("toy.scale", 1);
    DN_FP_WRITE(kScenario, 1);
    x = x * 3;
  });
  sim.ScheduleAt(20, [&x] {
    DN_FP_SCOPE("toy.add", 2);
    DN_FP_WRITE(kScenario, 1);
    x = x + 7;
  });
  sim.Run();
  footprint::SetEnabled(false);

  RunOutcome out;
  out.state_hash = x * 1000 + mx;
  out.events = sim.executed_events();
  out.batches = sim.batches_formed();
  out.conflicts = collector.TakeConflicts();
  out.hazard_lines = collector.TakeLines();
  return out;
}

TEST(ExploreTest, FindsAndMinimizesInjectedRace) {
  if (!footprint::kCompiledIn) {
    GTEST_SKIP() << "footprints compiled out";
  }
  ExploreReport report = Explore(ToyScenario, ExploreConfig{});
  // Canonical: x = (1*3)+7 = 10, mx = 9.
  EXPECT_EQ(report.base.state_hash, 10u * 1000 + 9);
  // Only the write/write pair is a hazard; the annotated max-merge pair is not.
  ASSERT_EQ(report.base.conflicts.size(), 1u);
  EXPECT_EQ(report.base.conflicts[0].batch_index, 1u);
  EXPECT_EQ(report.base.conflicts[0].pos_a, 0u);
  EXPECT_EQ(report.base.conflicts[0].pos_b, 1u);

  ASSERT_TRUE(report.diverged);
  // Reversed: x = (1+7)*3 = 24.
  EXPECT_EQ(report.divergent_hash, 24u * 1000 + 9);
  ASSERT_EQ(report.counterexample.choices.size(), 1u);
  const auto& [batch, order] = *report.counterexample.choices.begin();
  EXPECT_EQ(batch, 1u);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 0}));
}

TEST(ExploreTest, CounterexampleReplaysThroughPermuter) {
  if (!footprint::kCompiledIn) {
    GTEST_SKIP() << "footprints compiled out";
  }
  ExploreReport report = Explore(ToyScenario, ExploreConfig{});
  ASSERT_TRUE(report.diverged);
  // Round-trip the counterexample through its wire form, then replay.
  auto parsed = ParseSchedule(SerializeSchedule(report.counterexample));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == report.counterexample);
  RunOutcome replayed = ToyScenario(parsed.value());
  EXPECT_EQ(replayed.state_hash, report.divergent_hash);
}

TEST(ExploreTest, CommutingPairAloneProducesNoWork) {
  if (!footprint::kCompiledIn) {
    GTEST_SKIP() << "footprints compiled out";
  }
  auto scenario = [](const Schedule& schedule) {
    Simulator sim;
    sim.SetBatchPermuter(MakePermuter(schedule));
    HazardCollector collector(&sim);
    footprint::SetEnabled(true);
    uint64_t mx = 0;
    for (uint64_t v : {5u, 9u, 3u}) {
      sim.ScheduleAt(10, [&mx, v] {
        DN_FP_COMMUTES(kScenario, 2, "max-merge");
        mx = std::max(mx, v);
      });
    }
    sim.Run();
    footprint::SetEnabled(false);
    RunOutcome out;
    out.state_hash = mx;
    out.conflicts = collector.TakeConflicts();
    return out;
  };
  ExploreReport report = Explore(scenario, ExploreConfig{});
  EXPECT_TRUE(report.base.conflicts.empty());
  EXPECT_FALSE(report.diverged);
  EXPECT_EQ(report.schedules_run, 1u);  // nothing to permute: no conflicts
}

// A race only visible when BOTH batches are reordered: exploration must search
// past depth one, and minimization must keep both (necessary) choices.
TEST(ExploreTest, TwoChoiceRaceSurvivesMinimization) {
  if (!footprint::kCompiledIn) {
    GTEST_SKIP() << "footprints compiled out";
  }
  auto scenario = [](const Schedule& schedule) {
    Simulator sim;
    sim.SetBatchPermuter(MakePermuter(schedule));
    HazardCollector collector(&sim);
    footprint::SetEnabled(true);
    // o0 / o1 record whether batch 0 / batch 1 ran reversed.
    uint64_t y = 0;
    uint64_t z = 0;
    sim.ScheduleAt(10, [&y] {
      DN_FP_WRITE(kScenario, 10);
      if (y == 0) y = 1;  // canonical first
    });
    sim.ScheduleAt(10, [&y] {
      DN_FP_WRITE(kScenario, 10);
      if (y == 0) y = 2;  // reversed first
    });
    sim.ScheduleAt(20, [&z] {
      DN_FP_WRITE(kScenario, 20);
      if (z == 0) z = 1;
    });
    sim.ScheduleAt(20, [&z] {
      DN_FP_WRITE(kScenario, 20);
      if (z == 0) z = 2;
    });
    sim.Run();
    footprint::SetEnabled(false);
    RunOutcome out;
    out.state_hash = (y == 2 && z == 2) ? 1 : 0;  // diverges only when both flip
    out.conflicts = collector.TakeConflicts();
    return out;
  };
  ExploreReport report = Explore(scenario, ExploreConfig{});
  ASSERT_TRUE(report.diverged);
  EXPECT_EQ(report.divergent_hash, 1u);
  EXPECT_EQ(report.counterexample.choices.size(), 2u);
  EXPECT_EQ(report.counterexample.choices.count(0), 1u);
  EXPECT_EQ(report.counterexample.choices.count(1), 1u);
}

TEST(ExploreTest, BudgetBoundsExploration) {
  if (!footprint::kCompiledIn) {
    GTEST_SKIP() << "footprints compiled out";
  }
  ExploreConfig config;
  config.max_schedules = 1;  // base run only
  ExploreReport report = Explore(ToyScenario, config);
  EXPECT_FALSE(report.diverged);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_EQ(report.schedules_run, 1u);
}

TEST(ExploreTest, ScheduleSerializationRoundTrips) {
  Schedule schedule;
  schedule.choices[3] = {2, 0, 1};
  schedule.choices[17] = {1, 0};
  const std::string text = SerializeSchedule(schedule);
  EXPECT_NE(text.find("# dumbnet-explore schedule v1"), std::string::npos);
  EXPECT_NE(text.find("batch 3 order 2 0 1"), std::string::npos);
  EXPECT_NE(text.find("batch 17 order 1 0"), std::string::npos);
  auto parsed = ParseSchedule(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == schedule);
}

TEST(ExploreTest, ScheduleParserRejectsGarbage) {
  EXPECT_FALSE(ParseSchedule("batch x order 0 1").ok());
  EXPECT_FALSE(ParseSchedule("batch 1 order 0 0").ok());   // duplicate position
  EXPECT_FALSE(ParseSchedule("batch 1 order 0 2").ok());   // not 0..n-1
  EXPECT_FALSE(ParseSchedule("batch 1 order").ok());       // empty order
  EXPECT_FALSE(ParseSchedule("batch 1 order 1 0\nbatch 1 order 0 1").ok());
  EXPECT_TRUE(ParseSchedule("# comment only\n\n").ok());
  EXPECT_TRUE(ParseSchedule("").ok());
}

TEST(ExploreTest, PermuterIgnoresSizeMismatch) {
  Schedule schedule;
  schedule.choices[0] = {1, 0};  // batch will actually have 3 events
  auto permuter = MakePermuter(schedule);
  std::vector<uint32_t> order = {0, 1, 2};
  permuter(0, 10, order);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2}));
  order = {0, 1};
  permuter(0, 10, order);
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 0}));
}

}  // namespace
}  // namespace dumbnet
