// Robustness and invariant tests that cut across modules: discovery under
// mid-probe failures, fluid-simulator conservation laws, STP steady-state
// stability, gossip coverage, and transport edge cases.
#include <gtest/gtest.h>

#include "src/baseline/ethernet_switch.h"
#include "src/ctrl/discovery.h"
#include "src/fluid/fluid_sim.h"
#include "src/topo/generators.h"
#include "src/transport/reliable_flow.h"
#include "src/workload/hibench.h"
#include "tests/random_topo.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

DiscoveryConfig FastDiscovery(uint8_t max_ports) {
  DiscoveryConfig config;
  config.max_ports = max_ports;
  config.pm_send_cost = Us(1);
  config.pm_recv_cost = Us(1);
  config.probe_timeout = Ms(20);
  return config;
}

TEST(DiscoveryRobustnessTest, LinkFailureMidDiscoveryDoesNotHang) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  auto spines = tb.value().spines;
  TestFabric fabric(std::move(tb.value().topo));
  DiscoveryService discovery(&fabric.agent(25), FastDiscovery(16));
  bool done = false;
  discovery.Start([&] { done = true; });

  // Kill a link while probes are in flight.
  fabric.RunSteps(2000);
  fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(spines[0], 3), false);
  fabric.Run();  // must terminate (timeouts clean up lost probes)

  ASSERT_TRUE(done);
  // All switches and hosts are still found: only one redundant link was lost, and
  // every switch remains reachable.
  EXPECT_EQ(discovery.db().switch_count(), 7u);
  EXPECT_EQ(discovery.db().host_count(), 27u);
}

TEST(DiscoveryRobustnessTest, ExactOnRandomIrregularFabric) {
  // Discovery must be exact on adversarially-shaped graphs, not just the
  // regular generators — the shared random generator can produce hub switches
  // and long chains that the fat-tree/leaf-spine cases never exercise.
  for (uint64_t seed : {7u, 19u, 42u}) {
    Topology topo = testing_topo::RandomHostedTopology(seed, 10, 6, 1);
    const size_t switches = topo.switch_count();
    const size_t hosts = topo.host_count();
    TestFabric fabric(std::move(topo));
    DiscoveryService discovery(&fabric.agent(0), FastDiscovery(20));
    discovery.Start(nullptr);
    fabric.Run();
    ASSERT_TRUE(discovery.complete()) << "seed " << seed;
    EXPECT_EQ(discovery.db().switch_count(), switches) << "seed " << seed;
    EXPECT_EQ(discovery.db().host_count(), hosts) << "seed " << seed;
  }
}

TEST(DiscoveryRobustnessTest, ProbeCountMatchesComplexityFormula) {
  // Without verification/reprobe traffic, the BFS sends exactly
  // P (attach) + N * (P + P^2) probes, plus one verify per candidate.
  CubeConfig config;
  config.dims = {2, 2, 2};
  config.switch_ports = 8;
  config.hosts_per_switch = 1;
  auto cube = MakeCube(config);
  TestFabric fabric(std::move(cube.value().topo));
  DiscoveryService discovery(&fabric.agent(0), FastDiscovery(8));
  discovery.Start(nullptr);
  fabric.Run();

  const uint64_t p = 8, n = 8;
  uint64_t base = p + n * (p + p * p);
  EXPECT_EQ(discovery.stats().probes_sent,
            base + discovery.stats().verifies_sent);
  // Each confirmed link was verified at least once from each side's expansion.
  EXPECT_GE(discovery.stats().verifies_sent, fabric.topo().InterSwitchLinkCount());
}

TEST(FluidInvariantsTest, ByteConservationAcrossRandomWorkload) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  Simulator sim;
  Topology topo = std::move(tb.value().topo);
  FluidSimulator fluid(&sim, &topo);
  SwitchGraph graph(topo);
  Rng rng(99);

  std::vector<uint32_t> hosts;
  for (uint32_t h = 0; h < 25; ++h) {
    hosts.push_back(h);
  }
  double expected_bytes = 0;
  int finished = 0;
  int started = 0;
  for (const FlowSpec& spec : PermutationTraffic(hosts, 5e6, rng)) {
    auto src_sw = topo.HostUplink(spec.src_host).value().node.index;
    auto dst_sw = topo.HostUplink(spec.dst_host).value().node.index;
    auto path = ShortestPath(graph, src_sw, dst_sw, &rng);
    ASSERT_TRUE(path.ok());
    auto id = fluid.StartFlow(spec.src_host, spec.dst_host, spec.bytes, path.value(),
                              [&](uint64_t, TimeNs) { ++finished; });
    ASSERT_TRUE(id.ok());
    ++started;
    expected_bytes += spec.bytes;
  }
  sim.Run();
  EXPECT_EQ(finished, started);
  double delivered = 0;
  for (uint32_t h : hosts) {
    delivered += fluid.BytesDelivered(h);
  }
  EXPECT_NEAR(delivered, expected_bytes, expected_bytes * 1e-6);
}

TEST(FluidInvariantsTest, UtilizationNeverExceedsCapacity) {
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 2;
  config.hosts_per_leaf = 6;
  auto ls = MakeLeafSpine(config);
  Simulator sim;
  Topology topo = std::move(ls.value().topo);
  FluidSimulator fluid(&sim, &topo);
  Rng rng(5);
  uint32_t leaf0 = ls.value().leaves[0];
  uint32_t leaf1 = ls.value().leaves[1];
  for (size_t i = 0; i < 6; ++i) {
    uint32_t spine = ls.value().spines[rng.PickIndex(2)];
    (void)fluid.StartFlow(ls.value().hosts[0][i], ls.value().hosts[1][i],
                          kOpenEndedBytes, {leaf0, spine, leaf1});
  }
  sim.RunUntil(Ms(100));
  for (LinkIndex li = 0; li < topo.link_count(); ++li) {
    for (int dir = 0; dir < 2; ++dir) {
      EXPECT_LE(fluid.LinkUtilization(li, dir), 1.0 + 1e-9)
          << "link " << li << " dir " << dir;
    }
  }
}

TEST(StpStabilityTest, SteadyStateHasNoTopologyChurn) {
  // After convergence, hellos must refresh state without triggering re-elections
  // or MAC flushes.
  auto tb = MakePaperTestbed();
  Simulator sim;
  Topology topo = std::move(tb.value().topo);
  Network net(&sim, &topo);
  std::vector<std::unique_ptr<EthernetSwitch>> switches;
  for (uint32_t s = 0; s < topo.switch_count(); ++s) {
    switches.push_back(std::make_unique<EthernetSwitch>(&net, s));
  }
  sim.RunUntil(Sec(2));
  uint64_t tc_after_convergence = 0;
  for (auto& sw : switches) {
    tc_after_convergence += sw->stats().topology_changes;
  }
  sim.RunUntil(Sec(12));  // ten more seconds of hellos
  uint64_t tc_later = 0;
  int roots = 0;
  for (auto& sw : switches) {
    tc_later += sw->stats().topology_changes;
    roots += sw->IsRootBridge() ? 1 : 0;
  }
  EXPECT_EQ(tc_later, tc_after_convergence) << "steady-state TC churn";
  EXPECT_EQ(roots, 1);
  // The root is the lowest bridge id (switch 0 by UID construction).
  EXPECT_TRUE(switches[0]->IsRootBridge());
}

TEST(GossipCoverageTest, PeersSpanSameSwitchAndRing) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);

  // Host 0 is on leaf 0 with hosts 1..4 and 25/26: 6 same-switch peers + ring.
  const auto& peers = fabric.agent(0).gossip_peers();
  size_t same_switch = 0;
  uint64_t my_switch = fabric.agent(0).self_location().switch_uid;
  for (const HostLocation& peer : peers) {
    same_switch += peer.switch_uid == my_switch ? 1 : 0;
  }
  EXPECT_EQ(same_switch, 6u);
  EXPECT_GT(peers.size(), same_switch);  // plus ring successors elsewhere

  // Union-of-gossip-graph coverage: following peers from any host reaches all.
  std::unordered_map<uint64_t, std::vector<uint64_t>> edges;
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    for (const HostLocation& peer : fabric.agent(h).gossip_peers()) {
      edges[fabric.agent(h).mac()].push_back(peer.mac);
    }
  }
  std::set<uint64_t> reached;
  std::vector<uint64_t> stack{fabric.agent(3).mac()};
  while (!stack.empty()) {
    uint64_t mac = stack.back();
    stack.pop_back();
    if (!reached.insert(mac).second) {
      continue;
    }
    for (uint64_t next : edges[mac]) {
      stack.push_back(next);
    }
  }
  EXPECT_EQ(reached.size(), fabric.host_count());
}

TEST(TransportEdgeTest, NonMultipleOfSegmentSizeCompletes) {
  auto tb = MakePaperTestbed();
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);
  DumbNetChannel src(&fabric.agent(0));
  DumbNetChannel dst(&fabric.agent(6));
  ReliableFlowReceiver receiver(&dst, 1);
  FlowConfig config;
  config.total_bytes = 1460 * 10 + 123;  // trailing partial segment
  ReliableFlowSender sender(&src, 1, fabric.agent(6).mac(), config);
  bool done = false;
  sender.Start([&] { done = true; });
  fabric.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sender.progress().bytes_acked, config.total_bytes);
}

TEST(TransportEdgeTest, DuplicateAcksAreHarmless) {
  // Ack loss is recovered by the receiver re-acking on duplicate data; verify a
  // full blackhole-and-recover cycle where both directions lose traffic.
  auto tb = MakePaperTestbed();
  auto leaves = tb.value().leaves;
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);
  DumbNetChannel src(&fabric.agent(0));
  DumbNetChannel dst(&fabric.agent(6));
  ReliableFlowReceiver receiver(&dst, 1);
  FlowConfig config;
  config.total_bytes = 4 << 20;
  ReliableFlowSender sender(&src, 1, fabric.agent(6).mac(), config);
  bool done = false;
  sender.Start([&] { done = true; });

  // Multiple short blackholes (both uplinks) at staggered times.
  for (int i = 1; i <= 3; ++i) {
    fabric.RunUntil(fabric.Now() + Ms(2));
    LinkIndex l0 = fabric.topo().LinkAtPort(leaves[0], 1);
    LinkIndex l1 = fabric.topo().LinkAtPort(leaves[0], 2);
    fabric.topo().SetLinkUp(l0, false);
    fabric.topo().SetLinkUp(l1, false);
    fabric.RunUntil(fabric.Now() + Ms(5));
    fabric.topo().SetLinkUp(l0, true);
    fabric.topo().SetLinkUp(l1, true);
    fabric.RunUntil(fabric.Now() + Sec(2));
  }
  fabric.Run();
  EXPECT_TRUE(done);
  EXPECT_GE(receiver.segments_received(), config.total_bytes / 1460);
}

}  // namespace
}  // namespace dumbnet
