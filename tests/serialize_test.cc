#include "src/topo/serialize.h"

#include <gtest/gtest.h>

#include "src/topo/generators.h"

namespace dumbnet {
namespace {

TEST(SerializeTest, RoundTripsTestbed) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  Topology& original = tb.value().topo;
  original.SetLinkUp(original.LinkAtPort(tb.value().spines[0], 2), false);

  std::string text = SerializeTopology(original);
  auto parsed = ParseTopology(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  const Topology& copy = parsed.value();

  EXPECT_EQ(copy.switch_count(), original.switch_count());
  EXPECT_EQ(copy.host_count(), original.host_count());
  EXPECT_EQ(copy.link_count(), original.link_count());
  // Per-port wiring identical.
  for (uint32_t s = 0; s < original.switch_count(); ++s) {
    for (PortNum p = 1; p <= original.switch_at(s).num_ports; ++p) {
      auto a = original.PeerOf(s, p);
      auto b = copy.PeerOf(s, p);
      ASSERT_EQ(a.ok(), b.ok()) << "S" << s << "-" << int(p);
      if (a.ok()) {
        EXPECT_EQ(a.value(), b.value());
      }
    }
  }
  // Down link state preserved.
  size_t down_original = 0, down_copy = 0;
  for (LinkIndex li = 0; li < original.link_count(); ++li) {
    down_original += original.link_at(li).up ? 0u : 1u;
    down_copy += copy.link_at(li).up ? 0u : 1u;
  }
  EXPECT_EQ(down_original, 1u);
  EXPECT_EQ(down_copy, 1u);
  // Idempotence: serializing the copy yields the same text.
  EXPECT_EQ(SerializeTopology(copy), text);
}

TEST(SerializeTest, RoundTripsFatTreeWithBandwidths) {
  FatTreeConfig config;
  config.k = 4;
  config.link_gbps = 25.0;
  auto ft = MakeFatTree(config);
  ASSERT_TRUE(ft.ok());
  auto parsed = ParseTopology(SerializeTopology(ft.value().topo));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().link_count(), ft.value().topo.link_count());
  EXPECT_DOUBLE_EQ(parsed.value().link_at(0).bandwidth_gbps, 25.0);
}

TEST(SerializeTest, ParsesHandWrittenFile) {
  const char* text = R"(# two switches, two hosts
idspace 3
switch 4
switch 4
host
host
link S0 1 S1 1 40 700
attach H0 S0 2
attach H1 S1 2 25
)";
  auto parsed = ParseTopology(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  const Topology& topo = parsed.value();
  EXPECT_EQ(topo.switch_count(), 2u);
  EXPECT_EQ(topo.host_count(), 2u);
  EXPECT_DOUBLE_EQ(topo.link_at(0).bandwidth_gbps, 40.0);
  EXPECT_EQ(topo.link_at(0).propagation_ns, 700);
  EXPECT_DOUBLE_EQ(topo.link_at(2).bandwidth_gbps, 25.0);
  // idspace shifts the identifier ranges.
  Topology plain;
  plain.AddSwitch(4);
  EXPECT_NE(topo.switch_at(0).uid, plain.switch_at(0).uid);
}

TEST(SerializeTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseTopology("switch 0\n").ok());
  EXPECT_FALSE(ParseTopology("switch 4\nlink S0 1 S9 1\n").ok());
  EXPECT_FALSE(ParseTopology("frobnicate 1\n").ok());
  EXPECT_FALSE(ParseTopology("switch 4\nhost\n").ok());  // unattached host
  EXPECT_FALSE(ParseTopology("switch 4\ndown 5\n").ok());
  auto err = ParseTopology("switch 4\nswitch 4\nlink S0 9 S1 1\n");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.error().message().find("line 3"), std::string::npos);
}

TEST(SerializeTest, FileRoundTrip) {
  auto cube = MakeCube(CubeConfig{{2, 2, 2}, false, 1, 8, 10.0, 0});
  ASSERT_TRUE(cube.ok());
  const std::string path = "/tmp/dumbnet_topo_test.txt";
  ASSERT_TRUE(SaveTopology(cube.value().topo, path).ok());
  auto loaded = LoadTopology(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().switch_count(), 8u);
  EXPECT_FALSE(LoadTopology("/nonexistent/nope.txt").ok());
}

}  // namespace
}  // namespace dumbnet
