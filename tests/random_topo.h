// Shared random-topology generators for randomized tests (property, robustness,
// chaos). Kept out of src/ on purpose: these build adversarially-shaped graphs
// for checking, not realistic fabrics — production experiments use
// src/topo/generators.h.
#ifndef DUMBNET_TESTS_RANDOM_TOPO_H_
#define DUMBNET_TESTS_RANDOM_TOPO_H_

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/rng.h"

namespace dumbnet {
namespace testing_topo {

// Random connected switch-only topology: n switches, random extra edges beyond
// a spanning tree. No parallel edges (brute-force path enumerators work on
// vertex sequences, like Yen), no self-loops.
inline Topology RandomTopology(uint64_t seed, uint32_t n, uint32_t extra_edges) {
  Rng rng(seed);
  Topology topo;
  std::vector<uint8_t> used_ports(n, 0);
  std::set<std::pair<uint32_t, uint32_t>> adjacent;
  for (uint32_t i = 0; i < n; ++i) {
    topo.AddSwitch(kMaxPorts);
  }
  auto connect = [&](uint32_t a, uint32_t b) {
    if (a == b || adjacent.count({std::min(a, b), std::max(a, b)}) > 0) {
      return false;
    }
    auto r = topo.ConnectSwitches(a, static_cast<PortNum>(used_ports[a] + 1), b,
                                  static_cast<PortNum>(used_ports[b] + 1));
    if (r.ok()) {
      ++used_ports[a];
      ++used_ports[b];
      adjacent.insert({std::min(a, b), std::max(a, b)});
      return true;
    }
    return false;
  };
  // Spanning tree first.
  for (uint32_t i = 1; i < n; ++i) {
    connect(i, static_cast<uint32_t>(rng.UniformInt(i)));
  }
  // Random extra edges (parallel edges prevented implicitly by port bumping;
  // loops rejected by connect()).
  for (uint32_t e = 0; e < extra_edges; ++e) {
    connect(static_cast<uint32_t>(rng.UniformInt(n)),
            static_cast<uint32_t>(rng.UniformInt(n)));
  }
  return topo;
}

// RandomTopology plus `hosts_per_switch` hosts on every switch, for tests that
// need a full fabric (agents, controller) rather than just a switch graph.
// Hosts take the lowest free ports, keeping the port space compact so
// discovery sweeps with a small max_ports still see every attachment.
inline Topology RandomHostedTopology(uint64_t seed, uint32_t n, uint32_t extra_edges,
                                     uint32_t hosts_per_switch = 1) {
  Topology topo = RandomTopology(seed, n, extra_edges);
  for (uint32_t s = 0; s < n; ++s) {
    PortNum port = 1;
    for (uint32_t h = 0; h < hosts_per_switch; ++h) {
      while (topo.LinkAtPort(s, port) != kInvalidLink) {
        ++port;
      }
      const uint32_t host = topo.AddHost();
      auto r = topo.AttachHost(host, s, port);
      (void)r;
    }
  }
  return topo;
}

}  // namespace testing_topo
}  // namespace dumbnet

#endif  // DUMBNET_TESTS_RANDOM_TOPO_H_
