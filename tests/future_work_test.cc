// Tests for the paper's Section 8 future-work features implemented here: ECN
// marking + soft-state packet statistics on the dumb switch, congestion-avoiding
// rerouting, host join probing, and controller failover from the replicated log.
#include <gtest/gtest.h>

#include "src/ctrl/controller.h"
#include "src/ext/ecn_reroute.h"
#include "src/host/join_prober.h"
#include "src/topo/generators.h"
#include "src/transport/reliable_flow.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

TEST(SwitchStatsTest, SoftStateCountersTrackTraffic) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  uint32_t leaf0 = tb.value().leaves[0];
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);

  uint64_t before_p1 = fabric.dumb_switch(leaf0).port_tx_packets(1);
  uint64_t before_p2 = fabric.dumb_switch(leaf0).port_tx_packets(2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fabric.agent(0).Send(fabric.agent(12).mac(), 1000u + static_cast<uint64_t>(i), DataPayload{}).ok());
  }
  fabric.Run();
  uint64_t up1 = fabric.dumb_switch(leaf0).port_tx_packets(1) - before_p1;
  uint64_t up2 = fabric.dumb_switch(leaf0).port_tx_packets(2) - before_p2;
  // 50 flows spread across the two uplinks; counters see all of them.
  EXPECT_EQ(up1 + up2, 50u);
  EXPECT_GT(up1, 0u);
  EXPECT_GT(up2, 0u);
  EXPECT_GT(fabric.dumb_switch(leaf0).port_tx_bytes(1), 0u);
}

TEST(EcnTest, DeepQueueMarksPackets) {
  // A slow inter-switch link with a fast sender: the egress queue fills and ECN
  // marks appear at the receiver.
  Topology topo;
  uint32_t s0 = topo.AddSwitch(8);
  uint32_t s1 = topo.AddSwitch(8);
  (void)topo.ConnectSwitches(s0, 1, s1, 1, /*bandwidth_gbps=*/0.1);
  uint32_t h0 = topo.AddHost();
  uint32_t h1 = topo.AddHost();
  (void)topo.AttachHost(h0, s0, 5, 10.0);
  (void)topo.AttachHost(h1, s1, 5, 10.0);

  DumbSwitchConfig sw_config;
  sw_config.ecn_threshold_bytes = 16 * 1024;
  TestFabric fabric(std::move(topo), HostAgentConfig(), sw_config);
  fabric.BringUpAdopted(0);

  int marked = 0;
  int total = 0;
  fabric.agent(1).SetDataHandler([&](const Packet&, const DataPayload& data) {
    ++total;
    marked += data.ecn ? 1 : 0;
  });
  // Blast 200 MTU packets back to back: far more than the 16 KB threshold.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fabric.agent(0).Send(fabric.agent(1).mac(), 1, DataPayload{}).ok());
  }
  fabric.Run();
  EXPECT_EQ(total, 200);
  EXPECT_GT(marked, 50);   // most of the burst sits behind a deep queue
  EXPECT_LT(marked, 200);  // the head of the burst is unmarked
}

TEST(EcnTest, DisabledMeansNoMarks) {
  Topology topo;
  uint32_t s0 = topo.AddSwitch(8);
  uint32_t s1 = topo.AddSwitch(8);
  (void)topo.ConnectSwitches(s0, 1, s1, 1, 0.1);
  uint32_t h0 = topo.AddHost();
  uint32_t h1 = topo.AddHost();
  (void)topo.AttachHost(h0, s0, 5, 10.0);
  (void)topo.AttachHost(h1, s1, 5, 10.0);
  DumbSwitchConfig sw_config;
  sw_config.enable_ecn = false;
  TestFabric fabric(std::move(topo), HostAgentConfig(), sw_config);
  fabric.BringUpAdopted(0);
  int marked = 0;
  fabric.agent(1).SetDataHandler(
      [&](const Packet&, const DataPayload& d) { marked += d.ecn ? 1 : 0; });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fabric.agent(0).Send(fabric.agent(1).mac(), 1, DataPayload{}).ok());
  }
  fabric.Run();
  EXPECT_EQ(marked, 0);
}

// Returns the first-hop tag (uplink) the flow is currently bound to, 0 if unbound.
PortNum BoundUplink(HostAgent& agent, uint64_t dst_mac, uint64_t flow_id) {
  const PathTableEntry* entry = agent.path_table().Find(dst_mac);
  if (entry == nullptr) {
    return 0;
  }
  auto it = entry->flow_binding.find(flow_id);
  if (it == entry->flow_binding.end() || it->second >= entry->paths.size()) {
    return 0;
  }
  return entry->paths[it->second].tags.front();
}

TEST(EcnRerouteTest, CongestedFlowMovesToQuietSpine) {
  // A watched flow and a pinned background flow collide on one slow uplink; ECN
  // rerouting must move the watched flow to the other spine.
  LeafSpineConfig config;
  config.num_spine = 2;
  config.num_leaf = 2;
  config.hosts_per_leaf = 4;
  config.uplink_gbps = 0.3;
  config.host_gbps = 10.0;
  auto ls = MakeLeafSpine(config);
  ASSERT_TRUE(ls.ok());
  DumbSwitchConfig sw_config;
  sw_config.ecn_threshold_bytes = 8 * 1024;
  TestFabric fabric(std::move(ls.value().topo), HostAgentConfig(), sw_config);
  fabric.BringUpAdopted(0);

  DumbNetChannel watched_src(&fabric.agent(1));
  DumbNetChannel watched_dst(&fabric.agent(4));
  ReliableFlowReceiver watched_rx(&watched_dst, 1);
  FlowConfig flow;
  flow.total_bytes = 0;
  ReliableFlowSender watched_tx(&watched_src, 1, fabric.agent(4).mac(), flow);
  watched_tx.Start();
  fabric.RunUntil(fabric.Now() + Ms(20));
  PortNum initial_uplink = BoundUplink(fabric.agent(1), fabric.agent(4).mac(), 1);
  ASSERT_NE(initial_uplink, 0);

  // Pin the background flow onto the SAME uplink to force the collision.
  fabric.agent(2).SetRouteChooser(
      [initial_uplink](const PathTableEntry& entry, uint64_t) -> size_t {
        for (size_t i = 0; i < entry.paths.size(); ++i) {
          if (entry.paths[i].tags.front() == initial_uplink) {
            return i;
          }
        }
        return SIZE_MAX;
      });
  DumbNetChannel bg_src(&fabric.agent(2));
  DumbNetChannel bg_dst(&fabric.agent(5));
  ReliableFlowReceiver bg_rx(&bg_dst, 2);
  ReliableFlowSender bg_tx(&bg_src, 2, fabric.agent(5).mac(), flow);
  bg_tx.Start();
  fabric.RunUntil(fabric.Now() + Ms(100));

  EcnRerouteConfig ecn_config;
  ecn_config.sample_interval = Ms(5);
  ecn_config.mark_fraction_threshold = 0.2;
  EcnRerouter rerouter(&fabric.agent(1), &watched_tx, fabric.agent(4).mac(), ecn_config);
  rerouter.Start();
  fabric.RunUntil(fabric.Now() + Sec(2));

  EXPECT_GT(watched_tx.progress().ecn_acks, 0u) << "collision never materialized";
  EXPECT_GT(rerouter.stats().reroutes, 0u);
  PortNum final_uplink = BoundUplink(fabric.agent(1), fabric.agent(4).mac(), 1);
  EXPECT_NE(final_uplink, 0);
  EXPECT_NE(final_uplink, initial_uplink) << "flow never escaped the congested uplink";

  watched_tx.Stop();
  bg_tx.Stop();
  rerouter.Stop();
  fabric.RunUntil(fabric.Now() + Sec(1));
}

TEST(JoinProberTest, FindsAttachPointAndController) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);  // everyone is bootstrapped and knows the controller

  // Host 3 "rejoins": it probes from scratch.
  JoinProber prober(&fabric.agent(3), JoinProberConfig{16, Ms(50)});
  JoinResult result;
  bool done = false;
  prober.Start([&](const JoinResult& r) {
    result = r;
    done = true;
  });
  fabric.Run();

  ASSERT_TRUE(done);
  auto truth = fabric.topo().HostUplink(3);
  EXPECT_EQ(result.self.switch_uid,
            fabric.topo().switch_at(truth.value().node.index).uid);
  EXPECT_EQ(result.self.port, truth.value().port);
  EXPECT_EQ(result.controller_mac, fabric.agent(25).mac());
  EXPECT_GT(result.probes_sent, 16u);
}

TEST(JoinProberTest, NoControllerKnownYieldsZero) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  TestFabric fabric(std::move(tb.value().topo));
  // Nobody bootstrapped: neighbors reply but know no controller.
  JoinProber prober(&fabric.agent(3), JoinProberConfig{16, Ms(50)});
  JoinResult result;
  bool done = false;
  prober.Start([&](const JoinResult& r) {
    result = r;
    done = true;
  });
  fabric.Run();
  ASSERT_TRUE(done);
  EXPECT_NE(result.self.switch_uid, 0u);
  EXPECT_EQ(result.controller_mac, 0u);
}

TEST(FailoverTest, StandbyTakesOverFromReplicatedLog) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  auto spines = tb.value().spines;
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);  // primary on host 25

  ReplicatedLog log(&fabric.sim(), ReplicatedLogConfig{3, Us(200)});
  fabric.controller().AttachLog(&log);
  TopoDb base_snapshot = fabric.controller().db();  // standby's initial snapshot

  // Some topology history accumulates.
  LinkIndex li = fabric.topo().LinkAtPort(spines[0], 1);
  fabric.topo().SetLinkUp(li, false);
  fabric.Run();

  // Primary dies. A fresh host's query goes unanswered.
  fabric.controller().Stop();
  HostAgent& src = fabric.agent(1);
  HostAgent& dst = fabric.agent(17);
  int received = 0;
  dst.SetDataHandler([&](const Packet&, const DataPayload&) { ++received; });
  ASSERT_TRUE(src.Send(dst.mac(), 9, DataPayload{}).ok());
  fabric.RunUntil(fabric.Now() + Ms(100));
  EXPECT_EQ(received, 0);

  // Standby on host 26 rebuilds the database from snapshot + replica log and
  // takes over: it re-bootstraps every host with its own identity.
  ControllerService standby(&fabric.agent(26));
  TopoDb rebuilt = base_snapshot;
  ReplicatedLog::ApplyTo(log.ReplicaLog(1), rebuilt);
  standby.AdoptDatabase(std::move(rebuilt));
  fabric.Run();

  // The blocked flow drains through the new controller (host retry finds it).
  EXPECT_EQ(received, 1);
  EXPECT_GE(standby.stats().queries_served, 1u);
  // And the standby's view includes the pre-failover link state.
  uint64_t spine_uid = fabric.topo().switch_at(spines[0]).uid;
  auto idx = standby.db().IndexOf(spine_uid);
  ASSERT_TRUE(idx.ok());
  LinkIndex mirrored = standby.db().mirror().LinkAtPort(idx.value(), 1);
  ASSERT_NE(mirrored, kInvalidLink);
  EXPECT_FALSE(standby.db().mirror().link_at(mirrored).up);
}

}  // namespace
}  // namespace dumbnet
