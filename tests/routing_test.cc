#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <utility>

#include "src/analysis/invariants.h"
#include "src/routing/graph.h"
#include "src/routing/path_graph.h"
#include "src/routing/shortest_path.h"
#include "src/routing/tags.h"
#include "src/topo/generators.h"

namespace dumbnet {
namespace {

// A small diamond: 0 - {1,2} - 3, plus a long way around 0-4-5-3.
Topology Diamond() {
  Topology t;
  for (int i = 0; i < 6; ++i) {
    t.AddSwitch(8);
  }
  EXPECT_TRUE(t.ConnectSwitches(0, 1, 1, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(0, 2, 2, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(1, 2, 3, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(2, 2, 3, 2).ok());
  EXPECT_TRUE(t.ConnectSwitches(0, 3, 4, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(4, 2, 5, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(5, 2, 3, 3).ok());
  return t;
}

TEST(BfsTest, Distances) {
  Topology t = Diamond();
  SwitchGraph g(t);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_EQ(dist[4], 1u);
  EXPECT_EQ(dist[5], 2u);
}

TEST(BfsTest, UnreachableIsMax) {
  Topology t;
  t.AddSwitch(4);
  t.AddSwitch(4);
  SwitchGraph g(t);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], UINT32_MAX);
}

TEST(ShortestPathTest, FindsMinHops) {
  Topology t = Diamond();
  SwitchGraph g(t);
  auto path = ShortestPath(g, 0, 3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value().size(), 3u);
  EXPECT_EQ(path.value().front(), 0u);
  EXPECT_EQ(path.value().back(), 3u);
}

TEST(ShortestPathTest, DownLinksExcluded) {
  Topology t = Diamond();
  // Kill both short middle links; only the long way remains.
  t.SetLinkUp(t.LinkAtPort(1, 2), false);
  t.SetLinkUp(t.LinkAtPort(2, 2), false);
  SwitchGraph g(t);
  auto path = ShortestPath(g, 0, 3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), (SwitchPath{0, 4, 5, 3}));
}

TEST(ShortestPathTest, UnreachableErrors) {
  Topology t;
  t.AddSwitch(4);
  t.AddSwitch(4);
  SwitchGraph g(t);
  EXPECT_EQ(ShortestPath(g, 0, 1).error().code(), ErrorCode::kUnavailable);
}

TEST(ShortestPathTest, RandomTieBreakSpreadsOverEcmp) {
  Topology t = Diamond();
  SwitchGraph g(t);
  Rng rng(3);
  std::set<SwitchPath> seen;
  for (int i = 0; i < 64; ++i) {
    auto path = ShortestPath(g, 0, 3, &rng);
    ASSERT_TRUE(path.ok());
    seen.insert(path.value());
  }
  // Both 0-1-3 and 0-2-3 must appear.
  EXPECT_EQ(seen.size(), 2u);
}

TEST(KspTest, OrderedUniqueSimplePaths) {
  Topology t = Diamond();
  SwitchGraph g(t);
  auto paths = KShortestPaths(g, 0, 3, 5);
  ASSERT_TRUE(paths.ok());
  ASSERT_GE(paths.value().size(), 3u);
  std::set<SwitchPath> unique(paths.value().begin(), paths.value().end());
  EXPECT_EQ(unique.size(), paths.value().size());
  double prev = 0;
  for (const SwitchPath& p : paths.value()) {
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 3u);
    // Simple: no vertex repeats.
    std::set<uint32_t> verts(p.begin(), p.end());
    EXPECT_EQ(verts.size(), p.size());
    double cost = PathCost(g, p).value();
    EXPECT_GE(cost, prev);
    prev = cost;
  }
  // The two 2-hop paths come first, the 3-hop detour third.
  EXPECT_EQ(paths.value()[0].size(), 3u);
  EXPECT_EQ(paths.value()[1].size(), 3u);
  EXPECT_EQ(paths.value()[2].size(), 4u);
}

TEST(KspTest, FatTreeEcmpCount) {
  FatTreeConfig config;
  config.k = 4;
  config.attach_hosts = false;
  auto ft = MakeFatTree(config);
  ASSERT_TRUE(ft.ok());
  SwitchGraph g(ft.value().topo);
  // Between two edge switches in different pods there are exactly (k/2)^2 = 4
  // shortest 5-switch paths.
  auto paths = KShortestPaths(g, ft.value().edge[0], ft.value().edge[7], 8);
  ASSERT_TRUE(paths.ok());
  size_t minimal = 0;
  for (const SwitchPath& p : paths.value()) {
    if (p.size() == 5) {
      ++minimal;
    }
  }
  EXPECT_EQ(minimal, 4u);
}

TEST(TagsTest, CompileAndFormat) {
  Topology t = Diamond();
  uint32_t h0 = t.AddHost();
  uint32_t h1 = t.AddHost();
  ASSERT_TRUE(t.AttachHost(h0, 0, 5).ok());
  ASSERT_TRUE(t.AttachHost(h1, 3, 5).ok());
  auto tags = CompilePathTags(t, h0, {0, 1, 3}, h1);
  ASSERT_TRUE(tags.ok());
  // 0 exits to 1 via port 1; 1 exits to 3 via port 2; 3 reaches h1 via port 5.
  EXPECT_EQ(tags.value(), (TagList{1, 2, 5}));
  EXPECT_EQ(TagsToString(tags.value()), "1-2-5-\xC3\xB8");
}

TEST(TagsTest, RejectsMismatchedEndpoints) {
  Topology t = Diamond();
  uint32_t h0 = t.AddHost();
  uint32_t h1 = t.AddHost();
  ASSERT_TRUE(t.AttachHost(h0, 0, 5).ok());
  ASSERT_TRUE(t.AttachHost(h1, 3, 5).ok());
  EXPECT_FALSE(CompilePathTags(t, h0, {1, 3}, h1).ok());    // wrong start
  EXPECT_FALSE(CompilePathTags(t, h0, {0, 1}, h1).ok());    // wrong end
  EXPECT_FALSE(CompilePathTags(t, h0, {0, 3}, h1).ok());    // no direct link
}

TEST(TagsTest, SkipsDownLinks) {
  Topology t = Diamond();
  t.SetLinkUp(t.LinkAtPort(0, 1), false);
  auto tags = CompileSwitchTags(t, {0, 1});
  EXPECT_FALSE(tags.ok());
}

// --- Path graph (Algorithm 1) ------------------------------------------------------

class PathGraphEpsilonTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PathGraphEpsilonTest, InvariantsOnCube) {
  CubeConfig config;
  config.dims = {5, 5, 5};
  config.switch_ports = 16;
  auto cube = MakeCube(config);
  ASSERT_TRUE(cube.ok());
  const Topology& t = cube.value().topo;
  SwitchGraph g(t);

  PathGraphParams params;
  params.s = 2;
  params.epsilon = GetParam();
  uint32_t src = cube.value().At(0, 0, 0);
  uint32_t dst = cube.value().At(4, 4, 4);
  auto pg = BuildPathGraph(t, g, src, dst, params);
  ASSERT_TRUE(pg.ok());

  // Every constructed path graph must satisfy the structural invariant catalog.
  auto audit = AuditPathGraph(t, pg.value());
  EXPECT_TRUE(audit.ok()) << audit.error().message();

  // Primary is a shortest path (Manhattan distance = 12 hops -> 13 vertices).
  EXPECT_EQ(pg.value().primary.size(), 13u);
  // The subgraph contains primary and backup.
  std::set<uint32_t> verts(pg.value().vertices.begin(), pg.value().vertices.end());
  for (uint32_t v : pg.value().primary) {
    EXPECT_TRUE(verts.count(v)) << "primary vertex missing";
  }
  for (uint32_t v : pg.value().backup) {
    EXPECT_TRUE(verts.count(v)) << "backup vertex missing";
  }
  // The induced subgraph is connected and src->dst routable within it.
  SwitchGraph sub(t, pg.value().links);
  auto inner = ShortestPath(sub, src, dst);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner.value().size(), 13u);
  // Subgraph is much smaller than the full topology for small epsilon.
  if (GetParam() == 0) {
    EXPECT_LT(pg.value().vertices.size(), t.switch_count() / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, PathGraphEpsilonTest, ::testing::Values(0u, 1u, 2u, 4u));

TEST(PathGraphTest, SizeGrowsWithEpsilon) {
  CubeConfig config;
  config.dims = {6, 6, 6};
  config.switch_ports = 16;
  auto cube = MakeCube(config);
  ASSERT_TRUE(cube.ok());
  const Topology& t = cube.value().topo;
  SwitchGraph g(t);
  uint32_t src = cube.value().At(0, 0, 0);
  uint32_t dst = cube.value().At(5, 5, 5);
  size_t prev = 0;
  for (uint32_t eps : {0u, 1u, 2u, 3u}) {
    PathGraphParams params;
    params.s = 2;
    params.epsilon = eps;
    auto pg = BuildPathGraph(t, g, src, dst, params);
    ASSERT_TRUE(pg.ok());
    EXPECT_TRUE(AuditPathGraph(t, pg.value()).ok());
    EXPECT_GE(pg.value().vertices.size(), prev);
    prev = pg.value().vertices.size();
  }
}

TEST(PathGraphTest, BackupAvoidsPrimaryWherePossible) {
  Topology t = Diamond();
  SwitchGraph g(t);
  PathGraphParams params;
  auto pg = BuildPathGraph(t, g, 0, 3, params);
  ASSERT_TRUE(pg.ok());
  ASSERT_FALSE(pg.value().backup.empty());
  // Diamond has two disjoint 2-hop routes; backup must not reuse the primary's
  // middle vertex.
  ASSERT_EQ(pg.value().primary.size(), 3u);
  ASSERT_GE(pg.value().backup.size(), 3u);
  EXPECT_NE(pg.value().primary[1], pg.value().backup[1]);
}

TEST(PathGraphTest, CountPathsRespectsCap) {
  Topology t = Diamond();
  SwitchGraph g(t);
  PathGraphParams params;
  params.epsilon = 4;
  auto pg = BuildPathGraph(t, g, 0, 3, params);
  ASSERT_TRUE(pg.ok());
  uint64_t all = CountPathsInSubgraph(t, pg.value(), 1000);
  EXPECT_GE(all, 3u);
  EXPECT_EQ(CountPathsInSubgraph(t, pg.value(), 2), 2u);
}

TEST(PathGraphTest, SingleVertexPath) {
  Topology t = Diamond();
  SwitchGraph g(t);
  auto pg = BuildPathGraph(t, g, 2, 2, PathGraphParams{});
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(pg.value().primary, (SwitchPath{2}));
}

// ---------------------------------------------------------------------------
// CSR graph / scratch-SSSP / batch equivalence (the perf rework must not change
// any routing result).
// ---------------------------------------------------------------------------

Topology MediumCube() {
  CubeConfig config;
  config.dims = {4, 4, 4};
  config.hosts_per_switch = 0;
  config.switch_ports = 8;
  auto cube = MakeCube(config);
  EXPECT_TRUE(cube.ok());
  return std::move(cube.value().topo);
}

TEST(GraphTest, CsrNeighborsMatchTopologyLinks) {
  Topology t = MediumCube();
  // Knock one link down: it must disappear from the adjacency.
  t.SetLinkUp(0, false);
  SwitchGraph g(t);
  // Collect expected (switch, peer, link) triples straight from the link table.
  std::set<std::tuple<uint32_t, uint32_t, LinkIndex>> expected;
  for (LinkIndex li = 0; li < t.link_count(); ++li) {
    const Link& l = t.link_at(li);
    if (!l.up || !l.a.node.is_switch() || !l.b.node.is_switch()) {
      continue;
    }
    expected.insert({l.a.node.index, l.b.node.index, li});
    expected.insert({l.b.node.index, l.a.node.index, li});
  }
  std::set<std::tuple<uint32_t, uint32_t, LinkIndex>> actual;
  size_t edges = 0;
  for (uint32_t v = 0; v < g.size(); ++v) {
    for (const AdjEdge& e : g.Neighbors(v)) {
      actual.insert({v, e.to, e.link});
      ++edges;
    }
  }
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(edges, g.edge_count());
}

TEST(BfsTest, ScratchVariantMatchesAllocatingVariant) {
  Topology t = MediumCube();
  SwitchGraph g(t);
  std::vector<uint32_t> dist = BfsDistances(g, 0);
  SsspScratch scratch;
  BfsDistancesInto(g, 0, scratch);
  for (uint32_t v = 0; v < g.size(); ++v) {
    EXPECT_EQ(scratch.HopsOr(v, UINT32_MAX), dist[v]) << "vertex " << v;
  }
}

TEST(BfsTest, TruncationIsExactInsideHorizon) {
  Topology t = MediumCube();
  SwitchGraph g(t);
  std::vector<uint32_t> dist = BfsDistances(g, 0);
  const uint32_t kHorizon = 3;
  SsspScratch scratch;
  BfsDistancesInto(g, 0, scratch, kHorizon);
  for (uint32_t v = 0; v < g.size(); ++v) {
    if (dist[v] <= kHorizon) {
      EXPECT_EQ(scratch.HopsOr(v, UINT32_MAX), dist[v]) << "vertex " << v;
    } else {
      EXPECT_FALSE(scratch.Seen(v)) << "vertex " << v;
    }
  }
}

TEST(ShortestPathTest, ScaledVariantMatchesPlainWithSameSeed) {
  Topology t = MediumCube();
  SwitchGraph g(t);
  for (uint32_t dst : {7u, 21u, 63u}) {
    Rng rng_a(99);
    Rng rng_b(99);
    auto plain = ShortestPath(g, 0, dst, &rng_a);
    SsspScratch scratch;
    auto scaled = ShortestPathScaled(g, 0, dst, &rng_b, scratch, nullptr);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(scaled.ok());
    EXPECT_EQ(plain.value(), scaled.value()) << "dst " << dst;
  }
}

TEST(SsspTreeTest, TreePathsAreShortest) {
  Topology t = MediumCube();
  SwitchGraph g(t);
  Rng rng(5);
  SsspTree tree = BuildSsspTree(g, 0, &rng);
  std::vector<uint32_t> dist = BfsDistances(g, 0);
  for (uint32_t dst = 0; dst < g.size(); ++dst) {
    auto path = PathFromTree(tree, dst);
    ASSERT_TRUE(path.ok()) << "dst " << dst;
    // Unit weights: tree distance == BFS hop count, path length == distance + 1.
    EXPECT_EQ(path.value().size(), static_cast<size_t>(dist[dst]) + 1);
    EXPECT_EQ(tree.cost[dst], static_cast<double>(dist[dst]));
    EXPECT_EQ(path.value().front(), 0u);
    EXPECT_EQ(path.value().back(), dst);
    // Every step must be an actual edge.
    EXPECT_TRUE(PathCost(g, path.value()).ok());
  }
}

TEST(SsspTreeTest, PathFromTreeRejectsUnreachable) {
  Topology t = Diamond();
  t.AddSwitch(8);  // isolated
  SwitchGraph g(t);
  SsspTree tree = BuildSsspTree(g, 0);
  EXPECT_FALSE(PathFromTree(tree, 6).ok());
  EXPECT_FALSE(PathFromTree(tree, 99).ok());
}

TEST(PathGraphTest, ScratchOverloadMatchesAllocatingOverload) {
  Topology t = MediumCube();
  SwitchGraph g(t);
  PathGraphParams params;
  PathGraphScratch scratch;
  for (uint32_t dst : {21u, 42u, 63u}) {
    Rng rng_a(17);
    Rng rng_b(17);
    auto plain = BuildPathGraph(t, g, 0, dst, params, &rng_a);
    auto reused = BuildPathGraph(t, g, 0, dst, params, &rng_b, scratch);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(reused.ok());
    EXPECT_EQ(plain.value().primary, reused.value().primary);
    EXPECT_EQ(plain.value().backup, reused.value().backup);
    EXPECT_EQ(plain.value().vertices, reused.value().vertices);
    EXPECT_EQ(plain.value().links, reused.value().links);
  }
}

TEST(PathGraphBatchTest, MatchesSequentialBuildsWithForkedRngs) {
  Topology t = MediumCube();
  SwitchGraph g(t);
  PathGraphParams params;
  std::vector<uint32_t> dsts;
  for (uint32_t v = 1; v < g.size(); v += 3) {
    dsts.push_back(v);
  }
  Rng rng_tree_a(123);
  SsspTree tree = BuildSsspTree(g, 0, &rng_tree_a);
  // Reference: one sequential BuildPathGraphAround per destination, with the same
  // fork discipline the batch documents.
  Rng rng_a(55);
  std::vector<Rng> forks;
  for (size_t i = 0; i < dsts.size(); ++i) {
    forks.push_back(rng_a.Fork(i));
  }
  PathGraphScratch scratch;
  std::vector<Result<PathGraph>> expected;
  for (size_t i = 0; i < dsts.size(); ++i) {
    auto primary = PathFromTree(tree, dsts[i]);
    ASSERT_TRUE(primary.ok());
    expected.push_back(BuildPathGraphAround(t, g, std::move(primary.value()), params,
                                            &forks[i], scratch));
  }
  Rng rng_b(55);
  auto batch = BuildPathGraphBatch(t, g, tree, dsts, params, &rng_b, nullptr);
  ASSERT_EQ(batch.size(), expected.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    ASSERT_TRUE(expected[i].ok());
    EXPECT_EQ(batch[i].value().primary, expected[i].value().primary) << "dst " << dsts[i];
    EXPECT_EQ(batch[i].value().backup, expected[i].value().backup) << "dst " << dsts[i];
    EXPECT_EQ(batch[i].value().vertices, expected[i].value().vertices);
    EXPECT_EQ(batch[i].value().links, expected[i].value().links);
  }
}

TEST(PathGraphBatchTest, PooledMatchesInline) {
  Topology t = MediumCube();
  SwitchGraph g(t);
  PathGraphParams params;
  std::vector<uint32_t> dsts;
  for (uint32_t v = 1; v < g.size(); v += 2) {
    dsts.push_back(v);
  }
  SsspTree tree = BuildSsspTree(g, 0);
  Rng rng_a(9);
  auto inline_batch = BuildPathGraphBatch(t, g, tree, dsts, params, &rng_a, nullptr);
  ThreadPool pool(3);
  Rng rng_b(9);
  auto pooled_batch = BuildPathGraphBatch(t, g, tree, dsts, params, &rng_b, &pool);
  ASSERT_EQ(inline_batch.size(), pooled_batch.size());
  for (size_t i = 0; i < inline_batch.size(); ++i) {
    ASSERT_TRUE(inline_batch[i].ok());
    ASSERT_TRUE(pooled_batch[i].ok());
    EXPECT_EQ(inline_batch[i].value().primary, pooled_batch[i].value().primary);
    EXPECT_EQ(inline_batch[i].value().backup, pooled_batch[i].value().backup);
    EXPECT_EQ(inline_batch[i].value().vertices, pooled_batch[i].value().vertices);
    EXPECT_EQ(inline_batch[i].value().links, pooled_batch[i].value().links);
  }
}

TEST(PathGraphBatchTest, UnreachableDestinationYieldsErrorEntry) {
  Topology t = Diamond();
  t.AddSwitch(8);  // isolated switch 6
  SwitchGraph g(t);
  SsspTree tree = BuildSsspTree(g, 0);
  auto batch = BuildPathGraphBatch(t, g, tree, {3, 6, 1}, PathGraphParams{}, nullptr,
                                   nullptr);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_FALSE(batch[1].ok());
  EXPECT_TRUE(batch[2].ok());
}

}  // namespace
}  // namespace dumbnet
