#include <gtest/gtest.h>

#include <set>

#include "src/analysis/invariants.h"
#include "src/routing/graph.h"
#include "src/routing/path_graph.h"
#include "src/routing/shortest_path.h"
#include "src/routing/tags.h"
#include "src/topo/generators.h"

namespace dumbnet {
namespace {

// A small diamond: 0 - {1,2} - 3, plus a long way around 0-4-5-3.
Topology Diamond() {
  Topology t;
  for (int i = 0; i < 6; ++i) {
    t.AddSwitch(8);
  }
  EXPECT_TRUE(t.ConnectSwitches(0, 1, 1, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(0, 2, 2, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(1, 2, 3, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(2, 2, 3, 2).ok());
  EXPECT_TRUE(t.ConnectSwitches(0, 3, 4, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(4, 2, 5, 1).ok());
  EXPECT_TRUE(t.ConnectSwitches(5, 2, 3, 3).ok());
  return t;
}

TEST(BfsTest, Distances) {
  Topology t = Diamond();
  SwitchGraph g(t);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], 2u);
  EXPECT_EQ(dist[4], 1u);
  EXPECT_EQ(dist[5], 2u);
}

TEST(BfsTest, UnreachableIsMax) {
  Topology t;
  t.AddSwitch(4);
  t.AddSwitch(4);
  SwitchGraph g(t);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], UINT32_MAX);
}

TEST(ShortestPathTest, FindsMinHops) {
  Topology t = Diamond();
  SwitchGraph g(t);
  auto path = ShortestPath(g, 0, 3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value().size(), 3u);
  EXPECT_EQ(path.value().front(), 0u);
  EXPECT_EQ(path.value().back(), 3u);
}

TEST(ShortestPathTest, DownLinksExcluded) {
  Topology t = Diamond();
  // Kill both short middle links; only the long way remains.
  t.SetLinkUp(t.LinkAtPort(1, 2), false);
  t.SetLinkUp(t.LinkAtPort(2, 2), false);
  SwitchGraph g(t);
  auto path = ShortestPath(g, 0, 3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), (SwitchPath{0, 4, 5, 3}));
}

TEST(ShortestPathTest, UnreachableErrors) {
  Topology t;
  t.AddSwitch(4);
  t.AddSwitch(4);
  SwitchGraph g(t);
  EXPECT_EQ(ShortestPath(g, 0, 1).error().code(), ErrorCode::kUnavailable);
}

TEST(ShortestPathTest, RandomTieBreakSpreadsOverEcmp) {
  Topology t = Diamond();
  SwitchGraph g(t);
  Rng rng(3);
  std::set<SwitchPath> seen;
  for (int i = 0; i < 64; ++i) {
    auto path = ShortestPath(g, 0, 3, &rng);
    ASSERT_TRUE(path.ok());
    seen.insert(path.value());
  }
  // Both 0-1-3 and 0-2-3 must appear.
  EXPECT_EQ(seen.size(), 2u);
}

TEST(KspTest, OrderedUniqueSimplePaths) {
  Topology t = Diamond();
  SwitchGraph g(t);
  auto paths = KShortestPaths(g, 0, 3, 5);
  ASSERT_TRUE(paths.ok());
  ASSERT_GE(paths.value().size(), 3u);
  std::set<SwitchPath> unique(paths.value().begin(), paths.value().end());
  EXPECT_EQ(unique.size(), paths.value().size());
  double prev = 0;
  for (const SwitchPath& p : paths.value()) {
    EXPECT_EQ(p.front(), 0u);
    EXPECT_EQ(p.back(), 3u);
    // Simple: no vertex repeats.
    std::set<uint32_t> verts(p.begin(), p.end());
    EXPECT_EQ(verts.size(), p.size());
    double cost = PathCost(g, p).value();
    EXPECT_GE(cost, prev);
    prev = cost;
  }
  // The two 2-hop paths come first, the 3-hop detour third.
  EXPECT_EQ(paths.value()[0].size(), 3u);
  EXPECT_EQ(paths.value()[1].size(), 3u);
  EXPECT_EQ(paths.value()[2].size(), 4u);
}

TEST(KspTest, FatTreeEcmpCount) {
  FatTreeConfig config;
  config.k = 4;
  config.attach_hosts = false;
  auto ft = MakeFatTree(config);
  ASSERT_TRUE(ft.ok());
  SwitchGraph g(ft.value().topo);
  // Between two edge switches in different pods there are exactly (k/2)^2 = 4
  // shortest 5-switch paths.
  auto paths = KShortestPaths(g, ft.value().edge[0], ft.value().edge[7], 8);
  ASSERT_TRUE(paths.ok());
  size_t minimal = 0;
  for (const SwitchPath& p : paths.value()) {
    if (p.size() == 5) {
      ++minimal;
    }
  }
  EXPECT_EQ(minimal, 4u);
}

TEST(TagsTest, CompileAndFormat) {
  Topology t = Diamond();
  uint32_t h0 = t.AddHost();
  uint32_t h1 = t.AddHost();
  ASSERT_TRUE(t.AttachHost(h0, 0, 5).ok());
  ASSERT_TRUE(t.AttachHost(h1, 3, 5).ok());
  auto tags = CompilePathTags(t, h0, {0, 1, 3}, h1);
  ASSERT_TRUE(tags.ok());
  // 0 exits to 1 via port 1; 1 exits to 3 via port 2; 3 reaches h1 via port 5.
  EXPECT_EQ(tags.value(), (TagList{1, 2, 5}));
  EXPECT_EQ(TagsToString(tags.value()), "1-2-5-\xC3\xB8");
}

TEST(TagsTest, RejectsMismatchedEndpoints) {
  Topology t = Diamond();
  uint32_t h0 = t.AddHost();
  uint32_t h1 = t.AddHost();
  ASSERT_TRUE(t.AttachHost(h0, 0, 5).ok());
  ASSERT_TRUE(t.AttachHost(h1, 3, 5).ok());
  EXPECT_FALSE(CompilePathTags(t, h0, {1, 3}, h1).ok());    // wrong start
  EXPECT_FALSE(CompilePathTags(t, h0, {0, 1}, h1).ok());    // wrong end
  EXPECT_FALSE(CompilePathTags(t, h0, {0, 3}, h1).ok());    // no direct link
}

TEST(TagsTest, SkipsDownLinks) {
  Topology t = Diamond();
  t.SetLinkUp(t.LinkAtPort(0, 1), false);
  auto tags = CompileSwitchTags(t, {0, 1});
  EXPECT_FALSE(tags.ok());
}

// --- Path graph (Algorithm 1) ------------------------------------------------------

class PathGraphEpsilonTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PathGraphEpsilonTest, InvariantsOnCube) {
  CubeConfig config;
  config.dims = {5, 5, 5};
  config.switch_ports = 16;
  auto cube = MakeCube(config);
  ASSERT_TRUE(cube.ok());
  const Topology& t = cube.value().topo;
  SwitchGraph g(t);

  PathGraphParams params;
  params.s = 2;
  params.epsilon = GetParam();
  uint32_t src = cube.value().At(0, 0, 0);
  uint32_t dst = cube.value().At(4, 4, 4);
  auto pg = BuildPathGraph(t, g, src, dst, params);
  ASSERT_TRUE(pg.ok());

  // Every constructed path graph must satisfy the structural invariant catalog.
  auto audit = AuditPathGraph(t, pg.value());
  EXPECT_TRUE(audit.ok()) << audit.error().message();

  // Primary is a shortest path (Manhattan distance = 12 hops -> 13 vertices).
  EXPECT_EQ(pg.value().primary.size(), 13u);
  // The subgraph contains primary and backup.
  std::set<uint32_t> verts(pg.value().vertices.begin(), pg.value().vertices.end());
  for (uint32_t v : pg.value().primary) {
    EXPECT_TRUE(verts.count(v)) << "primary vertex missing";
  }
  for (uint32_t v : pg.value().backup) {
    EXPECT_TRUE(verts.count(v)) << "backup vertex missing";
  }
  // The induced subgraph is connected and src->dst routable within it.
  SwitchGraph sub(t, pg.value().links);
  auto inner = ShortestPath(sub, src, dst);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner.value().size(), 13u);
  // Subgraph is much smaller than the full topology for small epsilon.
  if (GetParam() == 0) {
    EXPECT_LT(pg.value().vertices.size(), t.switch_count() / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, PathGraphEpsilonTest, ::testing::Values(0u, 1u, 2u, 4u));

TEST(PathGraphTest, SizeGrowsWithEpsilon) {
  CubeConfig config;
  config.dims = {6, 6, 6};
  config.switch_ports = 16;
  auto cube = MakeCube(config);
  ASSERT_TRUE(cube.ok());
  const Topology& t = cube.value().topo;
  SwitchGraph g(t);
  uint32_t src = cube.value().At(0, 0, 0);
  uint32_t dst = cube.value().At(5, 5, 5);
  size_t prev = 0;
  for (uint32_t eps : {0u, 1u, 2u, 3u}) {
    PathGraphParams params;
    params.s = 2;
    params.epsilon = eps;
    auto pg = BuildPathGraph(t, g, src, dst, params);
    ASSERT_TRUE(pg.ok());
    EXPECT_TRUE(AuditPathGraph(t, pg.value()).ok());
    EXPECT_GE(pg.value().vertices.size(), prev);
    prev = pg.value().vertices.size();
  }
}

TEST(PathGraphTest, BackupAvoidsPrimaryWherePossible) {
  Topology t = Diamond();
  SwitchGraph g(t);
  PathGraphParams params;
  auto pg = BuildPathGraph(t, g, 0, 3, params);
  ASSERT_TRUE(pg.ok());
  ASSERT_FALSE(pg.value().backup.empty());
  // Diamond has two disjoint 2-hop routes; backup must not reuse the primary's
  // middle vertex.
  ASSERT_EQ(pg.value().primary.size(), 3u);
  ASSERT_GE(pg.value().backup.size(), 3u);
  EXPECT_NE(pg.value().primary[1], pg.value().backup[1]);
}

TEST(PathGraphTest, CountPathsRespectsCap) {
  Topology t = Diamond();
  SwitchGraph g(t);
  PathGraphParams params;
  params.epsilon = 4;
  auto pg = BuildPathGraph(t, g, 0, 3, params);
  ASSERT_TRUE(pg.ok());
  uint64_t all = CountPathsInSubgraph(t, pg.value(), 1000);
  EXPECT_GE(all, 3u);
  EXPECT_EQ(CountPathsInSubgraph(t, pg.value(), 2), 2u);
}

TEST(PathGraphTest, SingleVertexPath) {
  Topology t = Diamond();
  SwitchGraph g(t);
  auto pg = BuildPathGraph(t, g, 2, 2, PathGraphParams{});
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(pg.value().primary, (SwitchPath{2}));
}

}  // namespace
}  // namespace dumbnet
