// System-level integration and failure-injection tests: full bring-up through
// probing on a fat-tree, all-pairs connectivity, and randomized link-failure storms
// with the invariant that traffic keeps flowing whenever the fabric stays connected.
#include <gtest/gtest.h>

#include "src/ext/flowlet.h"
#include "src/topo/generators.h"
#include "src/util/rng.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

DiscoveryConfig FastDiscovery(uint8_t max_ports) {
  DiscoveryConfig config;
  config.max_ports = max_ports;
  config.pm_send_cost = Us(1);
  config.pm_recv_cost = Us(1);
  config.probe_timeout = Ms(20);
  return config;
}

TEST(IntegrationTest, FatTreeFullBringUpAndAllPairs) {
  FatTreeConfig config;
  config.k = 4;
  auto ft = MakeFatTree(config);
  ASSERT_TRUE(ft.ok());
  TestFabric fabric(std::move(ft.value().topo));
  ASSERT_TRUE(fabric.BringUp(0, ControllerConfig(), FastDiscovery(4)));

  // Every host pings every other host.
  std::vector<int> received(fabric.host_count(), 0);
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    fabric.agent(h).SetDataHandler(
        [&received, h](const Packet&, const DataPayload&) { ++received[h]; });
  }
  for (uint32_t src = 0; src < fabric.host_count(); ++src) {
    for (uint32_t dst = 0; dst < fabric.host_count(); ++dst) {
      if (src != dst) {
        ASSERT_TRUE(fabric.agent(src).Send(fabric.agent(dst).mac(), src * 100 + dst,
                                           DataPayload{}).ok());
      }
    }
  }
  fabric.Run();
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    EXPECT_EQ(received[h], static_cast<int>(fabric.host_count() - 1)) << "host " << h;
  }
}

TEST(IntegrationTest, RandomLinkFailureStorm) {
  // Property: after each random failure (fabric still connected), a fresh batch of
  // flows between random host pairs is still delivered.
  FatTreeConfig config;
  config.k = 4;
  auto ft = MakeFatTree(config);
  ASSERT_TRUE(ft.ok());
  TestFabric fabric(std::move(ft.value().topo));
  fabric.BringUpAdopted(0);
  InvariantAuditor& auditor = fabric.EnableAuditing();
  Rng rng(2024);

  int delivered = 0;
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    fabric.agent(h).SetDataHandler([&](const Packet&, const DataPayload&) { ++delivered; });
  }

  std::vector<LinkIndex> killable;
  for (LinkIndex li = 0; li < fabric.topo().link_count(); ++li) {
    const Link& l = fabric.topo().link_at(li);
    if (l.a.node.is_switch() && l.b.node.is_switch()) {
      killable.push_back(li);
    }
  }

  int sent = 0;
  std::vector<LinkIndex> dead;
  for (int round = 0; round < 6; ++round) {
    // Kill one more random link, keeping the switch fabric connected.
    for (int attempt = 0; attempt < 50; ++attempt) {
      LinkIndex li = killable[rng.PickIndex(killable.size())];
      if (!fabric.topo().link_at(li).up) {
        continue;
      }
      fabric.topo().SetLinkUp(li, false);
      if (fabric.topo().IsConnected()) {
        dead.push_back(li);
        break;
      }
      fabric.topo().SetLinkUp(li, true);  // would disconnect; pick another
    }
    fabric.RunUntil(fabric.Now() + Ms(50));  // let failover settle

    for (int i = 0; i < 20; ++i) {
      uint32_t src = static_cast<uint32_t>(rng.PickIndex(fabric.host_count()));
      uint32_t dst = static_cast<uint32_t>(rng.PickIndex(fabric.host_count()));
      if (src == dst) {
        continue;
      }
      ASSERT_TRUE(fabric.agent(src)
                      .Send(fabric.agent(dst).mac(),
                            static_cast<uint64_t>(round) * 1000 + static_cast<uint64_t>(i),
                            DataPayload{})
                      .ok());
      ++sent;
    }
    fabric.Run();
  }
  EXPECT_EQ(dead.size(), 6u);
  EXPECT_EQ(delivered, sent);
  EXPECT_GT(auditor.runs(), 0u);
  EXPECT_TRUE(auditor.clean()) << auditor.violations().front().detail;
}

TEST(IntegrationTest, FailureAndRecoveryCycle) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  auto leaves = tb.value().leaves;
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);
  InvariantAuditor& auditor = fabric.EnableAuditing();

  int delivered = 0;
  fabric.agent(12).SetDataHandler([&](const Packet&, const DataPayload&) { ++delivered; });
  auto blast = [&](uint64_t base) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          fabric.agent(0).Send(fabric.agent(12).mac(), base + static_cast<uint64_t>(i),
                               DataPayload{})
              .ok());
    }
    fabric.Run();
  };

  blast(0);
  EXPECT_EQ(delivered, 10);

  // Fail, blast, recover (wait out alarm suppression), blast again. Repeat.
  LinkIndex li = fabric.topo().LinkAtPort(leaves[0], 1);
  for (int cycle = 0; cycle < 3; ++cycle) {
    fabric.topo().SetLinkUp(li, false);
    fabric.RunUntil(fabric.Now() + Sec(2));
    blast(1000u + static_cast<uint64_t>(cycle) * 100);
    fabric.topo().SetLinkUp(li, true);
    fabric.RunUntil(fabric.Now() + Sec(2));
    blast(2000u + static_cast<uint64_t>(cycle) * 100);
  }
  EXPECT_EQ(delivered, 70);
  EXPECT_GT(auditor.runs(), 0u);
  EXPECT_TRUE(auditor.clean()) << auditor.violations().front().detail;
}

TEST(IntegrationTest, JellyfishIrregularTopologyWorks) {
  // DumbNet must not depend on topology regularity (Section 4.1: tolerance to
  // arbitrary wiring).
  JellyfishConfig config;
  config.num_switches = 12;
  config.switch_ports = 8;
  config.network_degree = 4;
  config.hosts_per_switch = 1;
  config.seed = 5;
  auto jf = MakeJellyfish(config);
  ASSERT_TRUE(jf.ok());
  ASSERT_TRUE(jf.value().topo.IsConnected());
  TestFabric fabric(std::move(jf.value().topo));
  ASSERT_TRUE(fabric.BringUp(0, ControllerConfig(), FastDiscovery(8)));

  int delivered = 0;
  for (uint32_t h = 0; h < fabric.host_count(); ++h) {
    fabric.agent(h).SetDataHandler([&](const Packet&, const DataPayload&) { ++delivered; });
  }
  int sent = 0;
  for (uint32_t src = 0; src < fabric.host_count(); ++src) {
    uint32_t dst = (src + 5) % static_cast<uint32_t>(fabric.host_count());
    if (src == dst) {
      continue;
    }
    ASSERT_TRUE(fabric.agent(src).Send(fabric.agent(dst).mac(), src, DataPayload{}).ok());
    ++sent;
  }
  fabric.Run();
  EXPECT_EQ(delivered, sent);
}

TEST(IntegrationTest, FlowletTeSurvivesFailure) {
  auto tb = MakePaperTestbed();
  ASSERT_TRUE(tb.ok());
  auto leaves = tb.value().leaves;
  TestFabric fabric(std::move(tb.value().topo));
  fabric.BringUpAdopted(25);
  InvariantAuditor& auditor = fabric.EnableAuditing();

  FlowletConfig te_config;
  te_config.gap = Us(200);
  FlowletRouter te(&fabric.agent(0), te_config);
  int delivered = 0;
  fabric.agent(12).SetDataHandler([&](const Packet&, const DataPayload&) { ++delivered; });

  uint64_t dst = fabric.agent(12).mac();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(te.Send(dst, 1, DataPayload{}).ok());
    fabric.RunUntil(fabric.Now() + Ms(1));
    if (i == 10) {
      fabric.topo().SetLinkUp(fabric.topo().LinkAtPort(leaves[0], 1), false);
    }
  }
  fabric.Run();
  // The packet in flight when the link died may be lost; everything after the
  // notification must arrive.
  EXPECT_GE(delivered, 19);
  EXPECT_GT(auditor.runs(), 0u);
  EXPECT_TRUE(auditor.clean()) << auditor.violations().front().detail;
}

}  // namespace
}  // namespace dumbnet
