// Tests of the pHost-style receiver-driven transport (the source-routing-friendly
// transport the paper names as a DumbNet extension) — including the incast
// scenario where receiver-driven pacing beats window-based senders.
#include "src/transport/phost.h"

#include <gtest/gtest.h>

#include "src/topo/generators.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

constexpr uint64_t kPHostFlowBase = 1ULL << 32;

// Pacing must match the sink's access-link rate (1 Gbps in the fixture).
PHostConfig FixtureConfig() {
  PHostConfig config;
  config.downlink_gbps = 1.0;
  return config;
}

struct IncastFixture {
  // 8 senders on distinct leaves, one sink; sink downlink is the bottleneck.
  IncastFixture() {
    LeafSpineConfig config;
    config.num_spine = 2;
    config.num_leaf = 3;
    config.hosts_per_leaf = 4;
    config.uplink_gbps = 10.0;
    config.host_gbps = 1.0;  // access links are the bottleneck
    auto ls = MakeLeafSpine(config);
    // Shallow queues: incast overruns are visible as drops.
    NetworkConfig net_config;
    net_config.queue_capacity_bytes = 32 * 1024;
    fabric = std::make_unique<TestFabric>(std::move(ls.value().topo), HostAgentConfig(),
                                          DumbSwitchConfig(), net_config);
    fabric->BringUpAdopted(0);
  }
  std::unique_ptr<TestFabric> fabric;
};

TEST(PHostTest, SingleFlowCompletes) {
  IncastFixture f;
  DumbNetChannel src(&f.fabric->agent(1));
  DumbNetChannel dst(&f.fabric->agent(5));
  PHostReceiver receiver(&dst, kPHostFlowBase, FixtureConfig());
  PHostSender sender(&src, kPHostFlowBase + 1, f.fabric->agent(5).mac(), 1 << 20,
                     FixtureConfig());
  bool done = false;
  sender.Start([&] { done = true; });
  f.fabric->Run();
  EXPECT_TRUE(done);
  EXPECT_GE(receiver.bytes_received(), 1u << 20);
}

TEST(PHostTest, ShortFlowFinishesOnFreeTokens) {
  IncastFixture f;
  DumbNetChannel src(&f.fabric->agent(1));
  DumbNetChannel dst(&f.fabric->agent(5));
  PHostReceiver receiver(&dst, kPHostFlowBase, FixtureConfig());
  // 4 segments < 8 free tokens: no granted token needed for the data.
  PHostSender sender(&src, kPHostFlowBase + 1, f.fabric->agent(5).mac(), 4 * 1460,
                     FixtureConfig());
  bool done = false;
  sender.Start([&] { done = true; });
  f.fabric->RunUntil(Ms(5) + f.fabric->Now());
  EXPECT_TRUE(done);
}

TEST(PHostTest, SurvivesSegmentLoss) {
  IncastFixture f;
  DumbNetChannel src(&f.fabric->agent(1));
  DumbNetChannel dst(&f.fabric->agent(5));
  PHostReceiver receiver(&dst, kPHostFlowBase, FixtureConfig());
  PHostSender sender(&src, kPHostFlowBase + 1, f.fabric->agent(5).mac(), 2 << 20,
                     FixtureConfig());
  bool done = false;
  sender.Start([&] { done = true; });
  // Blackhole the fabric briefly mid-flow: segments and tokens get lost.
  f.fabric->RunUntil(f.fabric->Now() + Ms(3));
  LinkIndex li = f.fabric->topo().host_at(5).link;
  f.fabric->topo().SetLinkUp(li, false);
  f.fabric->RunUntil(f.fabric->Now() + Ms(10));
  f.fabric->topo().SetLinkUp(li, true);
  f.fabric->Run();
  EXPECT_TRUE(done);
}

TEST(PHostTest, IncastAvoidsQueueDrops) {
  // 8 concurrent senders into one 1 Gbps access link with shallow queues.
  constexpr int kSenders = 8;
  constexpr uint64_t kBytes = 1 << 20;

  // --- receiver-driven pHost ---
  uint64_t phost_drops = 0;
  TimeNs phost_finish = 0;
  {
    IncastFixture f;
    uint32_t sink = 0 * 4 + 3;  // a host on leaf 0
    std::vector<std::unique_ptr<DumbNetChannel>> channels;
    DumbNetChannel sink_channel(&f.fabric->agent(sink));
    PHostReceiver receiver(&sink_channel, kPHostFlowBase, FixtureConfig());
    std::vector<std::unique_ptr<PHostSender>> senders;
    int done = 0;
    for (int i = 0; i < kSenders; ++i) {
      uint32_t src = 4 + static_cast<uint32_t>(i);  // leaves 1 and 2
      channels.push_back(std::make_unique<DumbNetChannel>(&f.fabric->agent(src)));
      senders.push_back(std::make_unique<PHostSender>(
          channels.back().get(), kPHostFlowBase + 10 + static_cast<uint64_t>(i),
          f.fabric->agent(sink).mac(), kBytes, FixtureConfig()));
    }
    TimeNs start = f.fabric->Now();
    for (auto& sender : senders) {
      sender->Start([&] { ++done; });
    }
    f.fabric->Run();
    EXPECT_EQ(done, kSenders);
    phost_drops = f.fabric->net().stats().dropped_queue_full;
    phost_finish = f.fabric->Now() - start;
  }

  // --- window-based go-back-N senders (what naive incast does) ---
  uint64_t window_drops = 0;
  {
    IncastFixture f;
    uint32_t sink = 3;
    std::vector<std::unique_ptr<DumbNetChannel>> channels;
    DumbNetChannel sink_channel(&f.fabric->agent(sink));
    std::vector<std::unique_ptr<ReliableFlowReceiver>> receivers;
    std::vector<std::unique_ptr<ReliableFlowSender>> senders;
    int done = 0;
    for (int i = 0; i < kSenders; ++i) {
      uint32_t src = 4 + static_cast<uint32_t>(i);
      channels.push_back(std::make_unique<DumbNetChannel>(&f.fabric->agent(src)));
      receivers.push_back(std::make_unique<ReliableFlowReceiver>(&sink_channel,
                                                                 100 + static_cast<uint64_t>(i)));
      FlowConfig flow;
      flow.total_bytes = kBytes;
      senders.push_back(std::make_unique<ReliableFlowSender>(
          channels.back().get(), 100 + static_cast<uint64_t>(i),
          f.fabric->agent(sink).mac(), flow));
    }
    for (auto& sender : senders) {
      sender->Start([&] { ++done; });
    }
    f.fabric->Run();
    EXPECT_EQ(done, kSenders);
    window_drops = f.fabric->net().stats().dropped_queue_full;
  }

  // Receiver-driven pacing must be near-lossless (a small startup burst of free
  // tokens may overrun the shallow queue once); the window senders keep
  // overrunning it for the whole transfer.
  EXPECT_LT(phost_drops, 100u);
  EXPECT_GT(window_drops, 5 * (phost_drops + 1));
  // And the incast should finish near line rate: 8 MiB over 1 Gbps ~ 67 ms.
  EXPECT_LT(ToMs(phost_finish), 250.0);
}

TEST(PHostTest, SrptPrefersShortFlows) {
  IncastFixture f;
  uint32_t sink = 3;
  DumbNetChannel sink_channel(&f.fabric->agent(sink));
  PHostReceiver receiver(&sink_channel, kPHostFlowBase, FixtureConfig());

  DumbNetChannel long_src(&f.fabric->agent(4));
  DumbNetChannel short_src(&f.fabric->agent(8));
  PHostSender long_flow(&long_src, kPHostFlowBase + 1, f.fabric->agent(sink).mac(),
                        8 << 20, FixtureConfig());
  PHostSender short_flow(&short_src, kPHostFlowBase + 2, f.fabric->agent(sink).mac(),
                         256 << 10, FixtureConfig());
  TimeNs long_done = 0, short_done = 0;
  TimeNs start = f.fabric->Now();
  long_flow.Start([&] { long_done = f.fabric->Now() - start; });
  // The short flow arrives while the long one is in progress.
  f.fabric->RunUntil(f.fabric->Now() + Ms(5));
  short_flow.Start([&] { short_done = f.fabric->Now() - start; });
  f.fabric->Run();

  ASSERT_GT(long_done, 0);
  ASSERT_GT(short_done, 0);
  // SRPT: the short flow overtakes and finishes long before the elephant.
  EXPECT_LT(short_done, long_done / 2);
}

}  // namespace
}  // namespace dumbnet
