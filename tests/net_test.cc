// Tests of the packet model and the simulated network fabric (links, queues,
// drops, timing, port-change notifications).
#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/net/packet.h"

namespace dumbnet {
namespace {

TEST(PacketTest, WireSizeAccounting) {
  Packet pkt = MakeDumbNetPacket(1, 2, {1, 2, 3}, DataPayload{0, 0, 0, false, 1000});
  // 14 eth + 4 tags (3 + ø) + 1000 payload.
  EXPECT_EQ(pkt.WireSize(), 14 + 4 + 1000);
  EXPECT_EQ(pkt.tags.back(), kPathEndTag);

  Packet eth = MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{0, 0, 0, false, 500});
  EXPECT_EQ(eth.WireSize(), 14 + 500);
  EXPECT_TRUE(eth.tags.empty());
}

TEST(PacketTest, ControlPayloadSizesScaleWithContent) {
  WirePathGraph small;
  small.links.resize(2);
  WirePathGraph big;
  big.links.resize(50);
  Packet a = MakeDumbNetPacket(1, 2, {1},
                               PathResponsePayload{2, {}, std::make_shared<WirePathGraph>(small)});
  Packet b = MakeDumbNetPacket(1, 2, {1},
                               PathResponsePayload{2, {}, std::make_shared<WirePathGraph>(big)});
  EXPECT_GT(b.WireSize(), a.WireSize());
}

TEST(PacketTest, DescribeNamesPayloads) {
  Packet pkt = MakeDumbNetPacket(1, 2, {3}, ProbePayload{});
  EXPECT_NE(pkt.Describe().find("probe"), std::string::npos);
  Packet ack = MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{0, 0, 0, true, 64});
  EXPECT_NE(ack.Describe().find("ack"), std::string::npos);
}

TEST(PacketTest, AsReturnsTypedPayload) {
  Packet pkt = MakeDumbNetPacket(1, 2, {3}, IdReplyPayload{7, 99});
  ASSERT_NE(pkt.As<IdReplyPayload>(), nullptr);
  EXPECT_EQ(pkt.As<IdReplyPayload>()->switch_uid, 99u);
  EXPECT_EQ(pkt.As<DataPayload>(), nullptr);
}

// One link between two registered sink nodes.
class NetFixture : public ::testing::Test {
 protected:
  class Sink : public NetNode {
   public:
    void HandlePacket(const Packet& pkt, PortNum in_port) override {
      packets.push_back({pkt, in_port});
      arrival_times.push_back(sim_->Now());
    }
    void HandlePortChange(PortNum port, bool up) override {
      port_changes.push_back({port, up});
    }
    Simulator* sim_ = nullptr;
    std::vector<std::pair<Packet, PortNum>> packets;
    std::vector<TimeNs> arrival_times;
    std::vector<std::pair<PortNum, bool>> port_changes;
  };

  void SetUp() override {
    s0_ = topo_.AddSwitch(4);
    s1_ = topo_.AddSwitch(4);
    li_ = topo_.ConnectSwitches(s0_, 1, s1_, 2, /*bandwidth_gbps=*/10.0).value();
    net_ = std::make_unique<Network>(&sim_, &topo_);
    sink0_.sim_ = &sim_;
    sink1_.sim_ = &sim_;
    net_->RegisterSwitchNode(s0_, &sink0_);
    net_->RegisterSwitchNode(s1_, &sink1_);
  }

  Topology topo_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  uint32_t s0_ = 0, s1_ = 0;
  LinkIndex li_ = 0;
  Sink sink0_, sink1_;
};

TEST_F(NetFixture, DeliversWithSerializationAndPropagation) {
  Packet pkt = MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{0, 0, 0, false, 1186});
  // wire = 14 + 1186 = 1200 bytes @10 Gbps = 960 ns + 500 ns propagation.
  net_->SendFromSwitch(s0_, 1, pkt);
  sim_.Run();
  ASSERT_EQ(sink1_.packets.size(), 1u);
  EXPECT_EQ(sink1_.packets[0].second, 2);  // arrives on S1 port 2
  EXPECT_EQ(sink1_.arrival_times[0], 960 + 500);
}

TEST_F(NetFixture, BackToBackPacketsQueue) {
  for (int i = 0; i < 3; ++i) {
    net_->SendFromSwitch(s0_, 1,
                         MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{0, 0, 0, false, 1186}));
  }
  sim_.Run();
  ASSERT_EQ(sink1_.packets.size(), 3u);
  // Serialization spaces arrivals by exactly one transmit time (960 ns).
  EXPECT_EQ(sink1_.arrival_times[1] - sink1_.arrival_times[0], 960);
  EXPECT_EQ(sink1_.arrival_times[2] - sink1_.arrival_times[1], 960);
}

TEST_F(NetFixture, QueueOverflowDrops) {
  NetworkConfig config;
  config.queue_capacity_bytes = 3000;  // fits two 1200-byte frames only
  net_ = std::make_unique<Network>(&sim_, &topo_, config);
  net_->RegisterSwitchNode(s1_, &sink1_);
  for (int i = 0; i < 5; ++i) {
    net_->SendFromSwitch(s0_, 1,
                         MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{0, 0, 0, false, 1186}));
  }
  sim_.Run();
  EXPECT_EQ(sink1_.packets.size(), 2u);
  EXPECT_EQ(net_->stats().dropped_queue_full, 3u);
}

TEST_F(NetFixture, DownLinkDropsAndNotifies) {
  topo_.SetLinkUp(li_, false);
  net_->SendFromSwitch(s0_, 1, MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{}));
  sim_.Run();
  EXPECT_TRUE(sink1_.packets.empty());
  EXPECT_EQ(net_->stats().dropped_link_down, 1u);
  // Both endpoints heard the port change after the detection delay.
  ASSERT_EQ(sink0_.port_changes.size(), 1u);
  ASSERT_EQ(sink1_.port_changes.size(), 1u);
  EXPECT_EQ(sink0_.port_changes[0], (std::pair<PortNum, bool>{1, false}));
  EXPECT_EQ(sink1_.port_changes[0], (std::pair<PortNum, bool>{2, false}));
}

TEST_F(NetFixture, UnwiredPortCountsDrop) {
  net_->SendFromSwitch(s0_, 3, MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{}));
  sim_.Run();
  EXPECT_EQ(net_->stats().dropped_unwired, 1u);
}

TEST_F(NetFixture, QueueBacklogVisible) {
  for (int i = 0; i < 4; ++i) {
    net_->SendFromSwitch(s0_, 1,
                         MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{0, 0, 0, false, 1186}));
  }
  // Before any virtual time passes, all four frames are queued.
  EXPECT_EQ(net_->QueueBacklog(li_, NodeId::Switch(s0_)), 4 * 1200);
  EXPECT_EQ(net_->QueueBacklog(li_, NodeId::Switch(s1_)), 0);  // other direction idle
  sim_.Run();
  EXPECT_EQ(net_->QueueBacklog(li_, NodeId::Switch(s0_)), 0);
}

TEST_F(NetFixture, BothDirectionsIndependent) {
  net_->SendFromSwitch(s0_, 1, MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{}));
  net_->SendFromSwitch(s1_, 2, MakeEthernetPacket(2, 1, kEtherTypeIpv4, DataPayload{}));
  sim_.Run();
  EXPECT_EQ(sink0_.packets.size(), 1u);
  EXPECT_EQ(sink1_.packets.size(), 1u);
}

}  // namespace
}  // namespace dumbnet
