// Shared test fixture: alias of the library's SimulatedFabric assembly.
#ifndef DUMBNET_TESTS_TEST_FABRIC_H_
#define DUMBNET_TESTS_TEST_FABRIC_H_

#include "src/core/fabric.h"

namespace dumbnet {

using TestFabric = SimulatedFabric;

}  // namespace dumbnet

#endif  // DUMBNET_TESTS_TEST_FABRIC_H_
