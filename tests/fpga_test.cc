// Tests of the FPGA resource model (Figure 7 substitution): calibration against
// the paper's synthesis numbers and the architectural scaling claims.
#include "src/fpga/resource_model.h"

#include <gtest/gtest.h>

namespace dumbnet {
namespace {

TEST(FpgaModelTest, CalibratedToPaperAtFourPorts) {
  FpgaResources dn = DumbNetSwitchResources(4);
  // Paper: 1,713 LUTs / 1,504 registers.
  EXPECT_NEAR(dn.luts, 1713, 20);
  EXPECT_NEAR(dn.registers, 1504, 20);

  FpgaResources of = OpenFlowSwitchResources(4);
  // Paper: 16,070 LUTs / 17,193 registers.
  EXPECT_NEAR(of.luts, 16070, 50);
  EXPECT_NEAR(of.registers, 17193, 80);
}

TEST(FpgaModelTest, DumbNetReducesResourcesByNinetyPercentAtFourPorts) {
  FpgaResources dn = DumbNetSwitchResources(4);
  FpgaResources of = OpenFlowSwitchResources(4);
  // "even the unoptimized design reduces the FPGA resources utilization by
  // almost 90%".
  EXPECT_LT(static_cast<double>(dn.luts), 0.12 * static_cast<double>(of.luts));
  EXPECT_LT(static_cast<double>(dn.registers), 0.12 * static_cast<double>(of.registers));
}

TEST(FpgaModelTest, MonotonicInPorts) {
  uint32_t prev_luts = 0;
  uint32_t prev_regs = 0;
  for (uint32_t p = 2; p <= 32; p += 2) {
    FpgaResources r = DumbNetSwitchResources(p);
    EXPECT_GT(r.luts, prev_luts);
    EXPECT_GT(r.registers, prev_regs);
    prev_luts = r.luts;
    prev_regs = r.registers;
  }
}

TEST(FpgaModelTest, DumbNetStaysWithinFigureSevenEnvelope) {
  // Figure 7 shows ~30K elements at ~30 ports for the DumbNet design.
  FpgaResources r = DumbNetSwitchResources(30);
  EXPECT_GT(r.luts, 15000u);
  EXPECT_LT(r.luts, 40000u);
  EXPECT_GT(r.registers, 15000u);
  EXPECT_LT(r.registers, 45000u);
}

TEST(FpgaModelTest, QuadraticDemuxTermDominatesAtHighPorts) {
  // Doubling ports should roughly quadruple the demux-dominated area.
  FpgaResources a = DumbNetSwitchResources(16);
  FpgaResources b = DumbNetSwitchResources(32);
  double ratio = static_cast<double>(b.luts) / static_cast<double>(a.luts);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 4.5);
}

TEST(FpgaModelTest, DumbNetPerPortAreaIsCheaperEverywhere) {
  for (uint32_t p = 2; p <= 48; p += 2) {
    EXPECT_LT(DumbNetSwitchResources(p).luts, OpenFlowSwitchResources(p).luts)
        << "at " << p << " ports";
  }
}

}  // namespace
}  // namespace dumbnet
