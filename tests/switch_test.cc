// Unit tests of the dumb switch: tag forwarding, ID queries, alarm suppression,
// hop-limited notification broadcast.
#include "src/switch/dumb_switch.h"

#include <gtest/gtest.h>

#include "src/topo/generators.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

// Captures everything delivered to a host.
class SinkHost : public NetNode {
 public:
  SinkHost(Network* net, uint32_t host_index) : net_(net), host_index_(host_index) {
    net->RegisterHostNode(host_index, this);
  }
  void HandlePacket(const Packet& pkt, PortNum) override { received.push_back(pkt); }
  void Send(Packet pkt) { net_->SendFromHost(host_index_, pkt); }

  std::vector<Packet> received;

 private:
  Network* net_;
  uint32_t host_index_;
};

// Two hosts on a 3-switch line: H0 - S0 - S1 - S2 - H1.
struct LineFixture {
  LineFixture() {
    for (int i = 0; i < 3; ++i) {
      topo.AddSwitch(8);
    }
    topo.ConnectSwitches(0, 1, 1, 1).value();
    topo.ConnectSwitches(1, 2, 2, 1).value();
    uint32_t h0 = topo.AddHost();
    uint32_t h1 = topo.AddHost();
    topo.AttachHost(h0, 0, 5).value();
    topo.AttachHost(h1, 2, 5).value();
    net = std::make_unique<Network>(&sim, &topo);
    for (uint32_t s = 0; s < 3; ++s) {
      switches.push_back(std::make_unique<DumbSwitch>(net.get(), s));
    }
    hosts.push_back(std::make_unique<SinkHost>(net.get(), 0));
    hosts.push_back(std::make_unique<SinkHost>(net.get(), 1));
  }

  Topology topo;
  Simulator sim;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<DumbSwitch>> switches;
  std::vector<std::unique_ptr<SinkHost>> hosts;
};

TEST(DumbSwitchTest, ForwardsByTagsAndConsumesThem) {
  LineFixture f;
  Packet pkt = MakeDumbNetPacket(1, 2, {1, 2, 5}, DataPayload{});
  f.hosts[0]->Send(pkt);
  f.sim.Run();
  ASSERT_EQ(f.hosts[1]->received.size(), 1u);
  // All transit tags consumed; only ø remains.
  EXPECT_EQ(f.hosts[1]->received[0].tags, (TagList{kPathEndTag}));
  EXPECT_EQ(f.switches[0]->stats().forwarded, 1u);
  EXPECT_EQ(f.switches[1]->stats().forwarded, 1u);
  EXPECT_EQ(f.switches[2]->stats().forwarded, 1u);
}

TEST(DumbSwitchTest, DropsOnBadPort) {
  LineFixture f;
  Packet pkt = MakeDumbNetPacket(1, 2, {7}, DataPayload{});  // port 7 unwired
  f.hosts[0]->Send(pkt);
  f.sim.Run();
  EXPECT_TRUE(f.hosts[1]->received.empty());
  EXPECT_EQ(f.switches[0]->stats().dropped_port_down, 1u);  // unwired = no signal

  Packet bad = MakeDumbNetPacket(1, 2, {99}, DataPayload{});  // beyond num_ports
  f.hosts[0]->Send(bad);
  f.sim.Run();
  EXPECT_EQ(f.switches[0]->stats().dropped_bad_tag, 1u);
}

TEST(DumbSwitchTest, DropsWhenPathEndsAtSwitch) {
  LineFixture f;
  Packet pkt = MakeDumbNetPacket(1, 2, {1}, DataPayload{});  // ø will hit S1
  f.hosts[0]->Send(pkt);
  f.sim.Run();
  EXPECT_EQ(f.switches[1]->stats().dropped_bad_tag, 1u);
}

TEST(DumbSwitchTest, DropsOnDownLink) {
  LineFixture f;
  f.topo.SetLinkUp(f.topo.LinkAtPort(1, 2), false);
  Packet pkt = MakeDumbNetPacket(1, 2, {1, 2, 5}, DataPayload{});
  f.hosts[0]->Send(pkt);
  f.sim.Run();
  // Only the port-down broadcast may arrive, never the data packet.
  for (const Packet& p : f.hosts[1]->received) {
    EXPECT_EQ(p.As<DataPayload>(), nullptr);
  }
  EXPECT_EQ(f.switches[1]->stats().dropped_port_down, 1u);
}

TEST(DumbSwitchTest, IdQueryRepliesWithUid) {
  LineFixture f;
  // 0-5-ø: S0 answers the ID query and routes the reply out port 5 back to H0.
  Packet pkt = MakeDumbNetPacket(1, kBroadcastMac, {kIdQueryTag, 5},
                                 ProbePayload{42, 1, {kIdQueryTag, 5, kPathEndTag}});
  f.hosts[0]->Send(pkt);
  f.sim.Run();
  ASSERT_EQ(f.hosts[0]->received.size(), 1u);
  const auto* reply = f.hosts[0]->received[0].As<IdReplyPayload>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->switch_uid, f.topo.switch_at(0).uid);
  EXPECT_EQ(reply->probe_id, 42u);
}

TEST(DumbSwitchTest, MultiHopIdQuery) {
  LineFixture f;
  // 1-0-1-5-ø: S0 forwards to S1; S1 replies its ID along 1-5-ø.
  Packet pkt =
      MakeDumbNetPacket(1, kBroadcastMac, {1, kIdQueryTag, 1, 5},
                        ProbePayload{43, 1, {1, kIdQueryTag, 1, 5, kPathEndTag}});
  f.hosts[0]->Send(pkt);
  f.sim.Run();
  ASSERT_EQ(f.hosts[0]->received.size(), 1u);
  const auto* reply = f.hosts[0]->received[0].As<IdReplyPayload>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->switch_uid, f.topo.switch_at(1).uid);
}

TEST(DumbSwitchTest, NonDumbNetEtherTypeDropped) {
  LineFixture f;
  Packet pkt = MakeEthernetPacket(1, 2, kEtherTypeIpv4, DataPayload{});
  f.hosts[0]->Send(pkt);
  f.sim.Run();
  EXPECT_EQ(f.switches[0]->stats().dropped_foreign, 1u);
}

TEST(DumbSwitchTest, PortDownBroadcastReachesHosts) {
  LineFixture f;
  f.topo.SetLinkUp(f.topo.LinkAtPort(1, 2), false);
  f.sim.Run();
  // Both S1 and S2 detect and broadcast; hosts on both sides hear something.
  auto count_events = [](const std::vector<Packet>& pkts) {
    int n = 0;
    for (const Packet& p : pkts) {
      if (p.As<PortEventPayload>() != nullptr) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GE(count_events(f.hosts[0]->received), 1);
  EXPECT_GE(count_events(f.hosts[1]->received), 1);
}

TEST(DumbSwitchTest, BroadcastHopLimitBounds) {
  // A long line of switches: notification must die after notify_hops hops.
  Topology topo;
  const uint32_t n = 10;
  for (uint32_t i = 0; i < n; ++i) {
    topo.AddSwitch(8);
  }
  for (uint32_t i = 0; i + 1 < n; ++i) {
    topo.ConnectSwitches(i, 2, i + 1, 1).value();
  }
  std::vector<uint32_t> host_ids;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t h = topo.AddHost();
    topo.AttachHost(h, i, 5).value();
    host_ids.push_back(h);
  }
  Simulator sim;
  Network net(&sim, &topo);
  DumbSwitchConfig sw_config;
  sw_config.notify_hops = 3;
  std::vector<std::unique_ptr<DumbSwitch>> switches;
  for (uint32_t i = 0; i < n; ++i) {
    switches.push_back(std::make_unique<DumbSwitch>(&net, i, sw_config));
  }
  std::vector<std::unique_ptr<SinkHost>> hosts;
  for (uint32_t i = 0; i < n; ++i) {
    hosts.push_back(std::make_unique<SinkHost>(&net, i));
  }
  // Fail the link at the far end (S0-S1).
  topo.SetLinkUp(topo.LinkAtPort(0, 2), false);
  sim.Run();
  auto heard = [&](size_t i) {
    for (const Packet& p : hosts[i]->received) {
      if (p.As<PortEventPayload>() != nullptr) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(heard(1));
  EXPECT_TRUE(heard(3));
  // S1's alarm has 3 hops: reaches hosts on S1..S4 but not S7+.
  EXPECT_FALSE(heard(7));
  EXPECT_FALSE(heard(9));
}

TEST(DumbSwitchTest, AlarmSuppressionLimitsRate) {
  LineFixture f;
  LinkIndex li = f.topo.LinkAtPort(1, 2);
  // Flap the link 10 times within one second.
  for (int i = 0; i < 10; ++i) {
    f.sim.ScheduleAt(Ms(10 * i), [&f, li, i] { f.topo.SetLinkUp(li, i % 2 == 0); });
  }
  f.sim.RunUntil(Sec(3));
  // At most 1 initial + trailing alarms per suppression window per endpoint; far
  // fewer than the 10 state changes.
  EXPECT_LE(f.switches[1]->stats().notifications_sent, 3u);
  EXPECT_GT(f.switches[1]->stats().alarms_suppressed, 0u);
  // The trailing alarm carried the latest state.
  EXPECT_GE(f.switches[1]->stats().notifications_sent, 2u);
}

}  // namespace
}  // namespace dumbnet
