// Footprint conflict semantics (MergeEffects / EffectsConflict) and the
// simulator's batch-level hazard detection built on top of them.
#include "src/sim/footprint.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"

namespace dumbnet {
namespace footprint {
namespace {

FpEffect Read() { return FpEffect{FpAccess::kRead, nullptr}; }
FpEffect Write() { return FpEffect{FpAccess::kWrite, nullptr}; }
FpEffect Commute(const char* reason) { return FpEffect{FpAccess::kCommute, reason}; }

TEST(FootprintEffectTest, MergeCollapsesWriteOverCommuteOverRead) {
  EXPECT_EQ(MergeEffects(Read(), Read()).access, FpAccess::kRead);
  EXPECT_EQ(MergeEffects(Read(), Write()).access, FpAccess::kWrite);
  EXPECT_EQ(MergeEffects(Write(), Read()).access, FpAccess::kWrite);
  const FpEffect rc = MergeEffects(Read(), Commute("max-merge"));
  EXPECT_EQ(rc.access, FpAccess::kCommute);
  EXPECT_STREQ(rc.reason, "max-merge");
  EXPECT_EQ(MergeEffects(Commute("max-merge"), Write()).access, FpAccess::kWrite);
}

TEST(FootprintEffectTest, TwoCommuteReasonsEscalateToWrite) {
  // One handler claiming membership in two different commuting families has no
  // single algebraic argument for the combined update.
  EXPECT_EQ(MergeEffects(Commute("max-merge"), Commute("set-union")).access,
            FpAccess::kWrite);
  const FpEffect same = MergeEffects(Commute("max-merge"), Commute("max-merge"));
  EXPECT_EQ(same.access, FpAccess::kCommute);
  EXPECT_STREQ(same.reason, "max-merge");
}

TEST(FootprintEffectTest, ConflictMatrix) {
  EXPECT_FALSE(EffectsConflict(Read(), Read()));
  EXPECT_TRUE(EffectsConflict(Read(), Write()));
  EXPECT_TRUE(EffectsConflict(Write(), Write()));
  EXPECT_TRUE(EffectsConflict(Write(), Commute("max-merge")));
  EXPECT_FALSE(EffectsConflict(Commute("max-merge"), Commute("max-merge")));
  EXPECT_TRUE(EffectsConflict(Commute("max-merge"), Commute("set-union")));
  // The commute claim covers other writers, not observers.
  EXPECT_TRUE(EffectsConflict(Read(), Commute("max-merge")));
}

TEST(FootprintEffectTest, SameReasonComparesContentNotAddress) {
  const std::string a = "max-merge";
  const std::string b = "max-merge";
  EXPECT_TRUE(SameReason(a.c_str(), b.c_str()));
  EXPECT_FALSE(SameReason("max-merge", "set-union"));
  EXPECT_TRUE(SameReason(nullptr, nullptr));
  EXPECT_FALSE(SameReason("max-merge", nullptr));
}

#ifdef DUMBNET_FOOTPRINTS_ENABLED

class FootprintSimTest : public ::testing::Test {
 protected:
  void TearDown() override { SetEnabled(false); }

  // Schedules two events at the same timestamp running `a` then `b`.
  void RunPair(std::function<void()> a, std::function<void()> b) {
    sim_.ScheduleAt(10, std::move(a));
    sim_.ScheduleAt(10, std::move(b));
    sim_.Run();
  }

  Simulator sim_;
};

TEST_F(FootprintSimTest, WriteWritePairIsAHazard) {
  SetEnabled(true);
  std::vector<BatchHazard> hazards;
  sim_.SetHazardHook([&hazards](const BatchHazard& h) { hazards.push_back(h); });
  RunPair(
      [] {
        DN_FP_SCOPE("test.a", 1);
        DN_FP_WRITE(kScenario, 42);
      },
      [] {
        DN_FP_SCOPE("test.b", 2);
        DN_FP_WRITE(kScenario, 42);
      });
  ASSERT_EQ(sim_.hazards_detected(), 1u);
  ASSERT_EQ(hazards.size(), 1u);
  EXPECT_EQ(hazards[0].at, 10);
  EXPECT_EQ(hazards[0].batch_size, 2u);
  EXPECT_EQ(hazards[0].pos_a, 0u);
  EXPECT_EQ(hazards[0].pos_b, 1u);
  EXPECT_EQ(hazards[0].space, FpSpace::kScenario);
  EXPECT_EQ(hazards[0].id, 42u);
  EXPECT_STREQ(hazards[0].label_a, "test.a");
  EXPECT_STREQ(hazards[0].label_b, "test.b");
  std::string line;
  FormatHazard(hazards[0], line);
  EXPECT_NE(line.find("test.a"), std::string::npos) << line;
}

TEST_F(FootprintSimTest, SameReasonCommutesAreClean) {
  SetEnabled(true);
  RunPair([] { DN_FP_COMMUTES(kScenario, 42, "max-merge"); },
          [] { DN_FP_COMMUTES(kScenario, 42, "max-merge"); });
  EXPECT_EQ(sim_.hazards_detected(), 0u);
}

TEST_F(FootprintSimTest, DifferentReasonCommutesConflict) {
  SetEnabled(true);
  RunPair([] { DN_FP_COMMUTES(kScenario, 42, "max-merge"); },
          [] { DN_FP_COMMUTES(kScenario, 42, "set-union"); });
  EXPECT_EQ(sim_.hazards_detected(), 1u);
}

TEST_F(FootprintSimTest, ReadAgainstCommuteConflicts) {
  SetEnabled(true);
  RunPair([] { DN_FP_READ(kScenario, 42); },
          [] { DN_FP_COMMUTES(kScenario, 42, "max-merge"); });
  EXPECT_EQ(sim_.hazards_detected(), 1u);
}

TEST_F(FootprintSimTest, ReadsAndDisjointEntitiesAreClean) {
  SetEnabled(true);
  RunPair([] { DN_FP_READ(kScenario, 42); }, [] { DN_FP_READ(kScenario, 42); });
  sim_.ScheduleAt(20, [] { DN_FP_WRITE(kScenario, 1); });
  sim_.ScheduleAt(20, [] { DN_FP_WRITE(kScenario, 2); });  // different entity
  sim_.ScheduleAt(30, [] { DN_FP_WRITE(kHost, 1); });
  sim_.ScheduleAt(30, [] { DN_FP_WRITE(kScenario, 1); });  // different space
  sim_.Run();
  EXPECT_EQ(sim_.hazards_detected(), 0u);
}

TEST_F(FootprintSimTest, MixedCommuteReasonsInOneEventEscalate) {
  SetEnabled(true);
  // Event A claims two commuting families for the same entity -> effective
  // Write; even a same-family commute in event B now conflicts.
  RunPair(
      [] {
        DN_FP_COMMUTES(kScenario, 42, "max-merge");
        DN_FP_COMMUTES(kScenario, 42, "set-union");
      },
      [] { DN_FP_COMMUTES(kScenario, 42, "max-merge"); });
  EXPECT_EQ(sim_.hazards_detected(), 1u);
}

TEST_F(FootprintSimTest, RuntimeDisabledCollectsNothing) {
  // Default state: compiled in but not enabled. Conflicting writes must not
  // be collected, and singleton batches never count toward batch indices.
  RunPair([] { DN_FP_WRITE(kScenario, 42); }, [] { DN_FP_WRITE(kScenario, 42); });
  EXPECT_EQ(sim_.hazards_detected(), 0u);
}

TEST_F(FootprintSimTest, SingletonBatchesDoNotAdvanceBatchIndex) {
  SetEnabled(true);
  sim_.ScheduleAt(10, [] { DN_FP_WRITE(kScenario, 42); });
  sim_.ScheduleAt(20, [] { DN_FP_WRITE(kScenario, 42); });
  sim_.Run();
  EXPECT_EQ(sim_.batches_formed(), 0u);
  EXPECT_EQ(sim_.hazards_detected(), 0u);
  sim_.ScheduleAt(30, [] {});
  sim_.ScheduleAt(30, [] {});
  sim_.Run();
  EXPECT_EQ(sim_.batches_formed(), 1u);
}

#endif  // DUMBNET_FOOTPRINTS_ENABLED

}  // namespace
}  // namespace footprint
}  // namespace dumbnet
