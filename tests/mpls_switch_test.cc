// Tests of the MPLS/commodity-switch implementation (Section 5.3): DumbNet runs
// unmodified over static label rules, ID queries take the switch-CPU slow path,
// and legacy Ethernet traffic coexists on the same fabric (incremental deployment).
#include "src/switch/mpls_switch.h"

#include "src/switch/dumb_switch.h"

#include <gtest/gtest.h>

#include "src/baseline/ethernet_switch.h"
#include "src/ctrl/controller.h"
#include "src/host/host_agent.h"
#include "src/topo/generators.h"

namespace dumbnet {
namespace {

DiscoveryConfig FastDiscovery(uint8_t max_ports) {
  DiscoveryConfig config;
  config.max_ports = max_ports;
  config.pm_send_cost = Us(1);
  config.pm_recv_cost = Us(1);
  config.probe_timeout = Ms(20);
  return config;
}

// A testbed fabric built from MPLS switches instead of dumb switches: DumbNet
// hosts 0..24, plus hosts 25 (controller) and 26, and we repurpose hosts 23/24 as
// legacy Ethernet endpoints in the mixed-traffic test.
struct MplsFabric {
  MplsFabric() {
    auto tb = MakePaperTestbed();
    topo = std::move(tb.value().topo);
    leaves = tb.value().leaves;
    net = std::make_unique<Network>(&sim, &topo);
    for (uint32_t s = 0; s < topo.switch_count(); ++s) {
      switches.push_back(std::make_unique<MplsSwitch>(net.get(), s));
    }
  }

  Topology topo;
  Simulator sim;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<MplsSwitch>> switches;
  std::vector<uint32_t> leaves;
};

TEST(MplsSwitchTest, FullControlPlaneRunsOverMpls) {
  MplsFabric fabric;
  std::vector<std::unique_ptr<HostAgent>> agents;
  for (uint32_t h = 0; h < fabric.topo.host_count(); ++h) {
    agents.push_back(std::make_unique<HostAgent>(fabric.net.get(), h));
  }
  ControllerService controller(agents[25].get(), ControllerConfig(), FastDiscovery(16));
  bool ready = false;
  controller.Start([&] { ready = true; });
  fabric.sim.Run();

  // Discovery worked through the CPU slow path.
  ASSERT_TRUE(ready);
  EXPECT_EQ(controller.db().switch_count(), 7u);
  EXPECT_EQ(controller.db().host_count(), 27u);
  uint64_t cpu_replies = 0;
  for (auto& sw : fabric.switches) {
    cpu_replies += sw->stats().cpu_id_replies;
  }
  EXPECT_GT(cpu_replies, 0u);

  // Data flows over static label rules.
  int received = 0;
  agents[12]->SetDataHandler([&](const Packet&, const DataPayload&) { ++received; });
  ASSERT_TRUE(agents[0]->Send(agents[12]->mac(), 1, DataPayload{}).ok());
  fabric.sim.Run();
  EXPECT_EQ(received, 1);
}

TEST(MplsSwitchTest, IdQuerySlowPathAddsLatency) {
  // Two fabrics differing only in switch type: the MPLS ID query must be slower
  // by about the CPU punt delay.
  auto run = [](bool mpls) {
    Topology topo;
    uint32_t sw = topo.AddSwitch(8);
    uint32_t h = topo.AddHost();
    (void)topo.AttachHost(h, sw, 3);
    Simulator sim;
    Network net(&sim, &topo);
    std::unique_ptr<NetNode> node;
    if (mpls) {
      node = std::make_unique<MplsSwitch>(&net, sw);
    } else {
      node = std::make_unique<DumbSwitch>(&net, sw);
    }
    HostAgent agent(&net, h);
    TimeNs replied_at = -1;
    agent.SetProbeEventHandler([&](const Packet& pkt) {
      if (pkt.As<IdReplyPayload>() != nullptr) {
        replied_at = sim.Now();
      }
    });
    agent.SendTags({kIdQueryTag, 3}, kBroadcastMac,
                   ProbePayload{1, agent.mac(), {kIdQueryTag, 3, kPathEndTag}});
    sim.Run();
    return replied_at;
  };
  TimeNs dumb = run(false);
  TimeNs mpls = run(true);
  ASSERT_GT(dumb, 0);
  ASSERT_GT(mpls, 0);
  EXPECT_GE(mpls - dumb, Us(150));  // the configured 200 us CPU delay dominates
}

TEST(MplsSwitchTest, LegacyEthernetCoexists) {
  // The MPLS switch bridges legacy traffic with plain MAC learning, so the legacy
  // VLAN must be loop-free (the paper's Arista testbed ran spanning tree for it):
  // use a single-spine (tree) fabric here.
  LeafSpineConfig config;
  config.num_spine = 1;
  config.num_leaf = 3;
  config.hosts_per_leaf = 3;
  config.switch_ports = 16;
  auto ls = MakeLeafSpine(config);
  ASSERT_TRUE(ls.ok());
  struct TreeFabric {
    Simulator sim;
    Topology topo;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<MplsSwitch>> switches;
  };
  TreeFabric fabric;
  fabric.topo = std::move(ls.value().topo);
  fabric.net = std::make_unique<Network>(&fabric.sim, &fabric.topo);
  for (uint32_t s = 0; s < fabric.topo.switch_count(); ++s) {
    fabric.switches.push_back(std::make_unique<MplsSwitch>(fabric.net.get(), s));
  }
  // DumbNet agents on hosts 0..6; plain Ethernet endpoints on hosts 7/8.
  std::vector<std::unique_ptr<HostAgent>> agents;
  for (uint32_t h = 0; h < 7; ++h) {
    agents.push_back(std::make_unique<HostAgent>(fabric.net.get(), h));
  }
  EthernetHost legacy_a(fabric.net.get(), 7);
  EthernetHost legacy_b(fabric.net.get(), 8);
  ControllerService controller(agents[0].get(), ControllerConfig(), FastDiscovery(16));
  controller.Start(nullptr);
  fabric.sim.Run();

  // Legacy unicast across the fabric (flood, then learned) while DumbNet runs.
  int legacy_received = 0;
  legacy_b.SetFrameHandler([&](const Packet&, const DataPayload&) { ++legacy_received; });
  legacy_a.SendFrame(legacy_b.mac(), DataPayload{});
  int dumbnet_received = 0;
  agents[5]->SetDataHandler([&](const Packet&, const DataPayload&) { ++dumbnet_received; });
  ASSERT_TRUE(agents[1]->Send(agents[5]->mac(), 1, DataPayload{}).ok());
  fabric.sim.Run();

  EXPECT_EQ(legacy_received, 1);
  EXPECT_EQ(dumbnet_received, 1);
  // The reverse direction travels unicast: every switch learned legacy_a's MAC
  // from the flooded first frame.
  int reverse_received = 0;
  legacy_a.SetFrameHandler([&](const Packet&, const DataPayload&) { ++reverse_received; });
  legacy_b.SendFrame(legacy_a.mac(), DataPayload{});
  fabric.sim.Run();
  EXPECT_EQ(reverse_received, 1);
  uint64_t eth_forwarded = 0;
  for (auto& sw : fabric.switches) {
    eth_forwarded += sw->stats().ethernet_forwarded;
  }
  EXPECT_GT(eth_forwarded, 0u);  // the reply went unicast via learned MACs
}

TEST(MplsSwitchTest, DiscoveryOfHostsBehindMplsIsExact) {
  // Exactness must hold with the slow-path too (ordering/latency differences must
  // not confuse the prober).
  MplsFabric fabric;
  std::vector<std::unique_ptr<HostAgent>> agents;
  for (uint32_t h = 0; h < fabric.topo.host_count(); ++h) {
    agents.push_back(std::make_unique<HostAgent>(fabric.net.get(), h));
  }
  DiscoveryService discovery(agents[25].get(), FastDiscovery(16));
  discovery.Start(nullptr);
  fabric.sim.Run();
  ASSERT_TRUE(discovery.complete());
  for (uint32_t h = 0; h < fabric.topo.host_count(); ++h) {
    auto loc = discovery.db().LocateHost(fabric.topo.host_at(h).mac);
    ASSERT_TRUE(loc.ok()) << "host " << h;
    auto truth = fabric.topo.HostUplink(h);
    EXPECT_EQ(loc.value().switch_uid, fabric.topo.switch_at(truth.value().node.index).uid);
    EXPECT_EQ(loc.value().port, truth.value().port);
  }
}

}  // namespace
}  // namespace dumbnet
