// End-to-end control-plane tests: controller bring-up (discovery + bootstrap),
// path queries answered with path graphs, host-to-host data delivery, and the
// two-stage failure handling pipeline of Section 4.2.
#include "src/ctrl/controller.h"

#include <gtest/gtest.h>

#include "src/analysis/invariants.h"
#include "src/topo/generators.h"
#include "tests/test_fabric.h"

namespace dumbnet {
namespace {

DiscoveryConfig FastDiscovery(uint8_t max_ports) {
  DiscoveryConfig config;
  config.max_ports = max_ports;
  config.pm_send_cost = Us(1);
  config.pm_recv_cost = Us(1);
  config.probe_timeout = Ms(20);
  return config;
}

class ControllerTest : public ::testing::Test {
 protected:
  void BringUp() {
    auto testbed = MakePaperTestbed();
    ASSERT_TRUE(testbed.ok());
    spines_ = testbed.value().spines;
    leaves_ = testbed.value().leaves;
    fabric_ = std::make_unique<TestFabric>(std::move(testbed.value().topo));
    controller_ =
        &fabric_->AddController(kControllerHost, ControllerConfig(), FastDiscovery(16));
    bool ready = false;
    controller_->Start([&] { ready = true; });
    fabric_->Run();
    ASSERT_TRUE(ready);
  }

  static constexpr uint32_t kControllerHost = 25;

  std::unique_ptr<TestFabric> fabric_;
  ControllerService* controller_ = nullptr;
  std::vector<uint32_t> spines_;
  std::vector<uint32_t> leaves_;
};

TEST_F(ControllerTest, BootstrapsEveryHost) {
  BringUp();
  for (uint32_t h = 0; h < fabric_->host_count(); ++h) {
    EXPECT_TRUE(fabric_->agent(h).bootstrapped()) << "host " << h;
  }
  // 26 remote bootstraps (the controller itself is local).
  EXPECT_EQ(controller_->stats().bootstraps_sent, 26u);
}

TEST_F(ControllerTest, ColdSendTriggersQueryThenDelivers) {
  BringUp();
  HostAgent& src = fabric_->agent(0);   // leaf 0
  HostAgent& dst = fabric_->agent(12);  // leaf 2

  int received = 0;
  dst.SetDataHandler([&](const Packet& pkt, const DataPayload& data) {
    EXPECT_EQ(pkt.eth.src_mac, src.mac());
    EXPECT_EQ(data.flow_id, 77u);
    ++received;
  });
  ASSERT_TRUE(src.Send(dst.mac(), 77, DataPayload{77, 1, 0, false, 1000}).ok());
  fabric_->Run();

  EXPECT_EQ(received, 1);
  EXPECT_GE(src.stats().path_requests, 1u);
  EXPECT_TRUE(src.path_table().Contains(dst.mac()));
}

TEST_F(ControllerTest, WarmSendsSkipController) {
  BringUp();
  HostAgent& src = fabric_->agent(0);
  HostAgent& dst = fabric_->agent(12);
  int received = 0;
  dst.SetDataHandler([&](const Packet&, const DataPayload&) { ++received; });

  ASSERT_TRUE(src.Send(dst.mac(), 1, DataPayload{}).ok());
  fabric_->Run();
  uint64_t queries_after_first = controller_->stats().queries_served;

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(src.Send(dst.mac(), 1, DataPayload{}).ok());
  }
  fabric_->Run();
  EXPECT_EQ(received, 11);
  EXPECT_EQ(controller_->stats().queries_served, queries_after_first);
}

TEST_F(ControllerTest, PathGraphGivesMultiplePathsAcrossSpines) {
  BringUp();
  HostAgent& src = fabric_->agent(0);
  HostAgent& dst = fabric_->agent(12);
  ASSERT_TRUE(src.Send(dst.mac(), 1, DataPayload{}).ok());
  fabric_->Run();

  const PathTableEntry* entry = src.path_table().Find(dst.mac());
  ASSERT_NE(entry, nullptr);
  // Two spines => at least two minimal (leaf-spine-leaf) paths among the cached k.
  EXPECT_GE(entry->paths.size(), 2u);
  size_t minimal = 0;
  for (const CachedRoute& route : entry->paths) {
    EXPECT_GE(route.uid_path.size(), 3u);
    minimal += route.uid_path.size() == 3u ? 1u : 0u;
  }
  EXPECT_EQ(minimal, 2u);
}

TEST_F(ControllerTest, StageOneNotificationReachesHostsBeforePatch) {
  BringUp();
  TimeNs fail_notify = 0;
  TimeNs patch_notify = 0;
  HostAgent& observer = fabric_->agent(20);  // leaf 4
  observer.SetLinkEventHook([&](const LinkEventPayload& ev, bool) {
    if (!ev.up && fail_notify == 0) {
      fail_notify = observer.sim().Now();
    }
  });
  observer.SetPatchHook([&](const TopologyPatchPayload&) {
    if (patch_notify == 0) {
      patch_notify = observer.sim().Now();
    }
  });

  // Cut spine0 <-> leaf0.
  LinkIndex li = fabric_->topo().LinkAtPort(spines_[0], 1);
  ASSERT_NE(li, kInvalidLink);
  TimeNs cut_at = fabric_->Now();
  fabric_->topo().SetLinkUp(li, false);
  fabric_->Run();

  ASSERT_GT(fail_notify, 0) << "stage-1 notification never arrived";
  ASSERT_GT(patch_notify, 0) << "stage-2 patch never arrived";
  EXPECT_LT(fail_notify, patch_notify);
  // Both within tens of milliseconds of the cut.
  EXPECT_LT(patch_notify - cut_at, Ms(100));
}

TEST_F(ControllerTest, FailoverReroutesTrafficAroundDeadSpine) {
  BringUp();
  HostAgent& src = fabric_->agent(0);   // leaf 0
  HostAgent& dst = fabric_->agent(12);  // leaf 2
  int received = 0;
  dst.SetDataHandler([&](const Packet&, const DataPayload&) { ++received; });

  ASSERT_TRUE(src.Send(dst.mac(), 5, DataPayload{}).ok());
  fabric_->Run();
  ASSERT_EQ(received, 1);

  // Cut BOTH links that leaf0 has to spine 0; all surviving paths go via spine 1.
  LinkIndex l0 = fabric_->topo().LinkAtPort(leaves_[0], 1);  // leaf0 -> spine0
  ASSERT_NE(l0, kInvalidLink);
  fabric_->topo().SetLinkUp(l0, false);
  fabric_->Run();

  // Every flow must still get through, whatever path the flow had been bound to.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(src.Send(dst.mac(), 100u + static_cast<uint64_t>(i), DataPayload{}).ok());
  }
  fabric_->Run();
  EXPECT_EQ(received, 9);

  // And no cached route may cross the dead edge.
  const PathTableEntry* entry = src.path_table().Find(dst.mac());
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->paths.empty());
  uint64_t leaf0_uid = fabric_->topo().switch_at(leaves_[0]).uid;
  uint64_t spine0_uid = fabric_->topo().switch_at(spines_[0]).uid;
  for (const CachedRoute& route : entry->paths) {
    EXPECT_FALSE(route.UsesEdge(leaf0_uid, spine0_uid));
  }
}

TEST_F(ControllerTest, LinkRestorationFlowsBackViaPatch) {
  BringUp();
  LinkIndex li = fabric_->topo().LinkAtPort(spines_[0], 1);
  fabric_->topo().SetLinkUp(li, false);
  fabric_->Run();

  int restored_patches = 0;
  fabric_->agent(10).SetPatchHook([&](const TopologyPatchPayload& patch) {
    if (patch.added != nullptr && !patch.added->empty()) {
      ++restored_patches;
    }
  });
  fabric_->topo().SetLinkUp(li, true);
  fabric_->Run();
  EXPECT_GE(restored_patches, 1);
  EXPECT_GE(controller_->stats().reprobes, 1u);
}

TEST_F(ControllerTest, ReplicatedLogMirrorsTopologyEvents) {
  BringUp();
  ReplicatedLog log(&fabric_->sim(), ReplicatedLogConfig{3, Us(200)});
  controller_->AttachLog(&log);

  LinkIndex li = fabric_->topo().LinkAtPort(spines_[0], 1);
  fabric_->topo().SetLinkUp(li, false);
  fabric_->Run();

  EXPECT_GE(log.committed_index(), 1u);
  // A standby applying replica 1's log sees the link down.
  TopoDb standby = controller_->db();
  ReplicatedLog::ApplyTo(log.ReplicaLog(1), standby);
  uint64_t spine_uid = fabric_->topo().switch_at(spines_[0]).uid;
  auto link = standby.LinkAt(spine_uid, 1);
  ASSERT_TRUE(link.ok());
}

TEST_F(ControllerTest, PrecomputePathGraphsServesEveryKnownDestination) {
  BringUp();
  HostAgent& src = fabric_->agent(0);
  std::vector<uint64_t> dst_macs;
  for (uint32_t h = 5; h < 15; ++h) {
    dst_macs.push_back(fabric_->agent(h).mac());
  }
  dst_macs.push_back(0xdeadbeefULL);  // unknown MAC: silently skipped
  auto graphs = controller_->PrecomputePathGraphs(src.mac(), dst_macs);
  ASSERT_TRUE(graphs.ok());
  EXPECT_EQ(graphs.value().size(), 10u);
  for (const WirePathGraph& wg : graphs.value()) {
    EXPECT_TRUE(AuditWirePathGraph(wg).ok());
    ASSERT_FALSE(wg.primary.empty());
    EXPECT_EQ(wg.primary.front(), wg.src_uid);
    EXPECT_EQ(wg.primary.back(), wg.dst_uid);
  }
  // Unknown source: hard error.
  EXPECT_FALSE(controller_->PrecomputePathGraphs(0xdeadbeefULL, dst_macs).ok());
}

TEST_F(ControllerTest, SsspCacheHitsOnRepeatAndInvalidatesOnLinkEvent) {
  BringUp();
  HostAgent& src = fabric_->agent(0);
  std::vector<uint64_t> dst_macs = {fabric_->agent(12).mac(), fabric_->agent(20).mac()};

  uint64_t misses0 = controller_->sssp_cache_stats().misses;
  ASSERT_TRUE(controller_->PrecomputePathGraphs(src.mac(), dst_macs).ok());
  EXPECT_EQ(controller_->sssp_cache_stats().misses, misses0 + 1);

  // Same source, unchanged topology: the tree is reused.
  uint64_t hits0 = controller_->sssp_cache_stats().hits;
  ASSERT_TRUE(controller_->PrecomputePathGraphs(src.mac(), dst_macs).ok());
  EXPECT_EQ(controller_->sssp_cache_stats().hits, hits0 + 1);
  EXPECT_EQ(controller_->sssp_cache_stats().misses, misses0 + 1);

  // A link event bumps the db version: the next precompute must recompute, and
  // its output must avoid the dead link.
  LinkIndex li = fabric_->topo().LinkAtPort(spines_[0], 1);
  ASSERT_NE(li, kInvalidLink);
  fabric_->topo().SetLinkUp(li, false);
  fabric_->Run();
  auto graphs = controller_->PrecomputePathGraphs(src.mac(), dst_macs);
  ASSERT_TRUE(graphs.ok());
  EXPECT_EQ(controller_->sssp_cache_stats().misses, misses0 + 2);
  uint64_t spine_uid = fabric_->topo().switch_at(spines_[0]).uid;
  uint64_t leaf_uid = fabric_->topo().switch_at(leaves_[0]).uid;
  for (const WirePathGraph& wg : graphs.value()) {
    for (const WireLink& wl : wg.links) {
      EXPECT_FALSE((wl.uid_a == spine_uid && wl.uid_b == leaf_uid) ||
                   (wl.uid_a == leaf_uid && wl.uid_b == spine_uid))
          << "path graph still uses the dead link";
    }
  }
}

}  // namespace
}  // namespace dumbnet
