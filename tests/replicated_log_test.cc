// Tests of the replicated topology log (the ZooKeeper stand-in).
#include "src/ctrl/replicated_log.h"

#include <gtest/gtest.h>

namespace dumbnet {
namespace {

TopoEvent LinkDown(uint64_t a, PortNum pa, uint64_t b, PortNum pb) {
  TopoEvent ev;
  ev.kind = TopoEvent::Kind::kLinkDown;
  ev.link = WireLink{a, pa, b, pb};
  return ev;
}

TopoEvent LinkAdded(uint64_t a, PortNum pa, uint64_t b, PortNum pb) {
  TopoEvent ev;
  ev.kind = TopoEvent::Kind::kLinkAdded;
  ev.link = WireLink{a, pa, b, pb};
  return ev;
}

TEST(ReplicatedLogTest, CommitsAtMajority) {
  Simulator sim;
  ReplicatedLog log(&sim, ReplicatedLogConfig{3, Us(100)});
  uint64_t committed = 0;
  log.Append(LinkAdded(1, 1, 2, 1), [&](uint64_t idx) { committed = idx; });
  EXPECT_EQ(committed, 0u);  // not yet: followers must ack
  sim.Run();
  EXPECT_EQ(committed, 1u);
  EXPECT_EQ(log.committed_index(), 1u);
}

TEST(ReplicatedLogTest, ReplicasConvergeInOrder) {
  Simulator sim;
  ReplicatedLog log(&sim, ReplicatedLogConfig{3, Us(100)});
  for (int i = 0; i < 5; ++i) {
    log.Append(LinkAdded(1, static_cast<PortNum>(i + 1), 2, 1));
  }
  sim.Run();
  for (size_t r = 0; r < log.num_replicas(); ++r) {
    ASSERT_EQ(log.ReplicaLog(r).size(), 5u) << "replica " << r;
    EXPECT_EQ(log.ReplicaLog(r), log.ReplicaLog(0));
  }
}

TEST(ReplicatedLogTest, ToleratesMinorityFailure) {
  Simulator sim;
  ReplicatedLog log(&sim, ReplicatedLogConfig{3, Us(100)});
  log.SetReplicaAlive(2, false);
  bool committed = false;
  log.Append(LinkAdded(1, 1, 2, 1), [&](uint64_t) { committed = true; });
  sim.Run();
  EXPECT_TRUE(committed);
  EXPECT_TRUE(log.HasQuorum());
  EXPECT_TRUE(log.ReplicaLog(2).empty());
}

TEST(ReplicatedLogTest, MajorityFailureBlocksCommit) {
  Simulator sim;
  ReplicatedLog log(&sim, ReplicatedLogConfig{5, Us(100)});
  log.SetReplicaAlive(1, false);
  log.SetReplicaAlive(2, false);
  log.SetReplicaAlive(3, false);
  EXPECT_FALSE(log.HasQuorum());
  bool committed = false;
  log.Append(LinkAdded(1, 1, 2, 1), [&](uint64_t) { committed = true; });
  sim.Run();
  EXPECT_FALSE(committed);
  EXPECT_EQ(log.committed_index(), 0u);
}

TEST(ReplicatedLogTest, StandbyRebuildsTopologyFromLog) {
  Simulator sim;
  ReplicatedLog log(&sim, ReplicatedLogConfig{3, Us(100)});
  log.Append(LinkAdded(10, 1, 11, 1));
  log.Append(LinkAdded(11, 2, 12, 1));
  log.Append(LinkDown(10, 1, 11, 1));
  TopoEvent host;
  host.kind = TopoEvent::Kind::kHostMoved;
  host.host = HostLocation{77, 12, 5};
  log.Append(host);
  sim.Run();

  TopoDb standby;
  ReplicatedLog::ApplyTo(log.ReplicaLog(1), standby);
  EXPECT_EQ(standby.switch_count(), 3u);
  EXPECT_TRUE(standby.LocateHost(77).ok());
  // The downed link must be down in the rebuilt mirror.
  auto idx = standby.IndexOf(10);
  ASSERT_TRUE(idx.ok());
  LinkIndex li = standby.mirror().LinkAtPort(idx.value(), 1);
  ASSERT_NE(li, kInvalidLink);
  EXPECT_FALSE(standby.mirror().link_at(li).up);
}

TEST(ReplicatedLogTest, SingleReplicaCommitsImmediately) {
  Simulator sim;
  ReplicatedLog log(&sim, ReplicatedLogConfig{1, Us(100)});
  bool committed = false;
  log.Append(LinkAdded(1, 1, 2, 1), [&](uint64_t) { committed = true; });
  EXPECT_TRUE(committed);
}

}  // namespace
}  // namespace dumbnet
